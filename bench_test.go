// Benchmarks regenerating the quantitative tables B1-B14 (see DESIGN.md).
// The paper (a vision paper) reports no absolute numbers; these benches
// substantiate its performance *claims* — principally "we have shown the
// LSM performance overhead to be minimal" (Section 8.2.1) — and expose the
// scaling behaviour of every mechanism the design depends on.
//
// Run with:
//
//	go test -bench=. -benchmem .
package lciot_test

import (
	"fmt"
	"strconv"
	"testing"
	"time"

	"lciot/internal/ac"
	"lciot/internal/audit"
	"lciot/internal/cep"
	"lciot/internal/core"
	"lciot/internal/ctxmodel"
	"lciot/internal/ifc"
	"lciot/internal/msg"
	"lciot/internal/names"
	"lciot/internal/oskernel"
	"lciot/internal/policy"
	"lciot/internal/sbus"
	"lciot/internal/sticky"
	"lciot/internal/store"
	"lciot/internal/transport"
)

// --- B1: kernel enforcement overhead (the paper's "minimal LSM overhead") ---

func benchKernel(b *testing.B, hooks bool) {
	k := oskernel.NewKernel("bench", audit.NewLog(nil))
	k.SetHooksEnabled(hooks)
	ctx := ifc.MustContext([]ifc.Tag{"medical", "ann"}, []ifc.Tag{"consent"})
	p := k.Boot("app", ctx)
	if err := k.Create(p.PID(), "/f"); err != nil {
		b.Fatal(err)
	}
	payload := []byte("reading")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := k.Write(p.PID(), "/f", payload); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkB1LSMOverheadHooksOff(b *testing.B) { benchKernel(b, false) }
func BenchmarkB1LSMOverheadHooksOn(b *testing.B)  { benchKernel(b, true) }

// --- B2: flow-check cost vs label size ---

func BenchmarkB2FlowCheck(b *testing.B) {
	for _, n := range []int{1, 10, 100, 1000} {
		b.Run(fmt.Sprintf("tags=%d", n), func(b *testing.B) {
			tags := make([]ifc.Tag, n)
			for i := range tags {
				tags[i] = ifc.Tag("tag-" + strconv.Itoa(i))
			}
			src := ifc.SecurityContext{Secrecy: ifc.MustLabel(tags...)}
			dst := ifc.SecurityContext{Secrecy: ifc.MustLabel(tags...).With("extra")}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if d := ifc.CheckFlow(src, dst); !d.Allowed {
					b.Fatal("flow should be allowed")
				}
			}
		})
	}
}

// BenchmarkB2FlowCheckDistinctPairs rotates through many distinct context
// pairs so most checks miss the bounded decision cache: the comparison
// against BenchmarkB2FlowCheck isolates what the cache is worth over the
// raw interned-label merge walk.
func BenchmarkB2FlowCheckDistinctPairs(b *testing.B) {
	const pairs = 4096 // well past the cache bound
	srcs := make([]ifc.SecurityContext, pairs)
	dsts := make([]ifc.SecurityContext, pairs)
	for i := range srcs {
		base := ifc.Tag("pair-" + strconv.Itoa(i))
		srcs[i] = ifc.SecurityContext{Secrecy: ifc.MustLabel(base, "medical")}
		dsts[i] = ifc.SecurityContext{Secrecy: ifc.MustLabel(base, "medical", "extra")}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if d := ifc.CheckFlow(srcs[i%pairs], dsts[i%pairs]); !d.Allowed {
			b.Fatal("flow should be allowed")
		}
	}
}

// --- B3: message-path enforcement overhead ---

func newBenchBus(b *testing.B, schema *msg.Schema, clearance ifc.Label) (*sbus.Bus, *sbus.Component) {
	b.Helper()
	var acl ac.ACL
	acl.DefineRole(ac.Role{Name: "any", Grants: []ac.Permission{{Action: "*", Resource: "**"}}})
	if err := acl.Assign(ac.Assignment{Principal: "p", Role: "any", Args: map[string]string{}}); err != nil {
		b.Fatal(err)
	}
	bus := sbus.NewBus("bench", &acl, nil, nil)
	ctx := ifc.MustContext([]ifc.Tag{"medical"}, nil)
	src, err := bus.Register("src", "p", ctx, nil,
		sbus.EndpointSpec{Name: "out", Dir: sbus.Source, Schema: schema})
	if err != nil {
		b.Fatal(err)
	}
	sink, err := bus.Register("dst", "p", ctx, func(*msg.Message, sbus.Delivery) {},
		sbus.EndpointSpec{Name: "in", Dir: sbus.Sink, Schema: schema})
	if err != nil {
		b.Fatal(err)
	}
	sink.SetClearance(clearance)
	if err := bus.Connect("p", "src.out", "dst.in"); err != nil {
		b.Fatal(err)
	}
	return bus, src
}

func benchSchema(withTags bool) *msg.Schema {
	sensitive := ifc.EmptyLabel
	if withTags {
		sensitive = ifc.MustLabel("pii")
	}
	return msg.MustSchema("vitals", ifc.EmptyLabel,
		msg.Field{Name: "patient", Type: msg.TString, Required: true, Secrecy: sensitive},
		msg.Field{Name: "heart-rate", Type: msg.TFloat, Required: true},
	)
}

func benchMessage() *msg.Message {
	m := msg.New("vitals").Set("patient", msg.Str("ann")).Set("heart-rate", msg.Float(72))
	m.DataID = "r"
	return m
}

func BenchmarkB3MessagePathLocal(b *testing.B) {
	_, src := newBenchBus(b, benchSchema(false), ifc.EmptyLabel)
	m := benchMessage()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if n, err := src.Publish("out", m); err != nil || n != 1 {
			b.Fatal(n, err)
		}
	}
}

func BenchmarkB3MessagePathWithQuench(b *testing.B) {
	// The receiver lacks the "pii" clearance, so every delivery quenches
	// the patient attribute.
	_, src := newBenchBus(b, benchSchema(true), ifc.EmptyLabel)
	m := benchMessage()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if n, err := src.Publish("out", m); err != nil || n != 1 {
			b.Fatal(n, err)
		}
	}
}

func BenchmarkB3MessagePathCrossBus(b *testing.B) {
	net := transport.NewMemNetwork()
	var acl ac.ACL
	acl.DefineRole(ac.Role{Name: "any", Grants: []ac.Permission{{Action: "*", Resource: "**"}}})
	if err := acl.Assign(ac.Assignment{Principal: "p", Role: "any", Args: map[string]string{}}); err != nil {
		b.Fatal(err)
	}
	home := sbus.NewBus("home", &acl, nil, nil)
	cloud := sbus.NewBus("cloud", &acl, nil, nil)
	l, err := net.Listen("cloud")
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	go cloud.Serve(l)
	if _, err := home.LinkTo(net, "cloud"); err != nil {
		b.Fatal(err)
	}

	schema := benchSchema(false)
	ctx := ifc.MustContext([]ifc.Tag{"medical"}, nil)
	src, err := home.Register("src", "p", ctx, nil,
		sbus.EndpointSpec{Name: "out", Dir: sbus.Source, Schema: schema})
	if err != nil {
		b.Fatal(err)
	}
	delivered := make(chan struct{}, 1024)
	if _, err := cloud.Register("dst", "p", ctx,
		func(*msg.Message, sbus.Delivery) { delivered <- struct{}{} },
		sbus.EndpointSpec{Name: "in", Dir: sbus.Sink, Schema: schema}); err != nil {
		b.Fatal(err)
	}
	if err := home.Connect("p", "src.out", "cloud:dst.in"); err != nil {
		b.Fatal(err)
	}
	m := benchMessage()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := src.Publish("out", m); err != nil {
			b.Fatal(err)
		}
		<-delivered
	}
}

func BenchmarkB3CodecJSON(b *testing.B) {
	m := benchMessage()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		data, err := msg.EncodeJSON(m)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := msg.DecodeJSON(data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkB3CodecBinary(b *testing.B) {
	m := benchMessage()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		data, err := msg.EncodeBinary(m)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := msg.DecodeBinary(data); err != nil {
			b.Fatal(err)
		}
	}
}

// --- B4: reconfiguration propagation vs fan-out ---

func BenchmarkB4Reconfiguration(b *testing.B) {
	for _, fanout := range []int{1, 10, 100} {
		b.Run(fmt.Sprintf("channels=%d", fanout), func(b *testing.B) {
			schema := benchSchema(false)
			var acl ac.ACL
			acl.DefineRole(ac.Role{Name: "any", Grants: []ac.Permission{{Action: "*", Resource: "**"}}})
			if err := acl.Assign(ac.Assignment{Principal: "p", Role: "any", Args: map[string]string{}}); err != nil {
				b.Fatal(err)
			}
			bus := sbus.NewBus("bench", &acl, nil, nil)
			// Sinks live in the *more* constrained {a,b} domain, so the
			// source may oscillate between {a} and {a,b} with every channel
			// staying legal — each SetContext re-evaluates all of them
			// without tearing any down.
			ctxA := ifc.MustContext([]ifc.Tag{"a"}, nil)
			ctxB := ifc.MustContext([]ifc.Tag{"a", "b"}, nil)
			src, err := bus.Register("src", "p", ctxA, nil,
				sbus.EndpointSpec{Name: "out", Dir: sbus.Source, Schema: schema})
			if err != nil {
				b.Fatal(err)
			}
			if err := src.Entity().GrantPrivileges(ifc.OwnerPrivileges("a", "b")); err != nil {
				b.Fatal(err)
			}
			for i := 0; i < fanout; i++ {
				name := "dst" + strconv.Itoa(i)
				if _, err := bus.Register(name, "p", ctxB, nil,
					sbus.EndpointSpec{Name: "in", Dir: sbus.Sink, Schema: schema}); err != nil {
					b.Fatal(err)
				}
				if err := bus.Connect("p", "src.out", name+".in"); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := src.SetContext(ctxB); err != nil {
					b.Fatal(err)
				}
				if err := src.SetContext(ctxA); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			if got := len(bus.Channels()); got != fanout {
				b.Fatalf("channels fell to %d during bench", got)
			}
		})
	}
}

// --- B5: audit ingest and provenance queries ---

func BenchmarkB5AuditAppend(b *testing.B) {
	l := audit.NewLog(nil)
	rec := audit.Record{
		Kind: audit.FlowAllowed, Layer: audit.LayerMessaging,
		Src: "a", Dst: "b", DataID: "d",
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Append(rec)
	}
}

// BenchmarkB5AuditAppendAsync measures the enforcement-path cost of an
// audit record when hashing is batched onto the background hasher: the
// number to compare against BenchmarkB5AuditAppend, whose synchronous
// chain-extend the message path no longer pays.
func BenchmarkB5AuditAppendAsync(b *testing.B) {
	l := audit.NewLog(nil)
	rec := audit.Record{
		Kind: audit.FlowAllowed, Layer: audit.LayerMessaging,
		Src: "a", Dst: "b", DataID: "d",
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.AppendAsync(rec)
	}
	l.Flush()
	b.StopTimer()
	if l.Len() != b.N {
		b.Fatalf("committed %d of %d records", l.Len(), b.N)
	}
}

func BenchmarkB5AuditVerify(b *testing.B) {
	l := audit.NewLog(nil)
	for i := 0; i < 10000; i++ {
		l.Append(audit.Record{Kind: audit.FlowAllowed, Src: "a", Dst: "b"})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if bad, err := l.Verify(); err != nil || bad != -1 {
			b.Fatal(bad, err)
		}
	}
}

func BenchmarkB5ProvenanceAncestry(b *testing.B) {
	for _, depth := range []int{10, 100, 1000} {
		b.Run(fmt.Sprintf("chain=%d", depth), func(b *testing.B) {
			l := audit.NewLog(nil)
			for i := 0; i < depth; i++ {
				l.Append(audit.Record{
					Kind:   audit.FlowAllowed,
					Src:    ifc.EntityID("proc" + strconv.Itoa(i)),
					Dst:    ifc.EntityID("proc" + strconv.Itoa(i+1)),
					DataID: "datum" + strconv.Itoa(i),
				})
			}
			g := audit.BuildGraph(l.Select(nil))
			leaf := "proc" + strconv.Itoa(depth)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := g.Ancestry(leaf); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- B6: global tag resolution, cold vs cached ---

func benchNamespace(b *testing.B, depth int) (*names.Resolver, ifc.Tag) {
	b.Helper()
	root := names.NewRoot()
	ns := "d0"
	for i := 1; i < depth; i++ {
		ns += "/d" + strconv.Itoa(i)
	}
	zone, err := root.DelegatePath(ns)
	if err != nil {
		b.Fatal(err)
	}
	tag := ifc.Tag(ns + "/medical")
	if err := zone.Register(names.TagRecord{Tag: tag, Owner: "o", TTL: time.Hour}); err != nil {
		b.Fatal(err)
	}
	return names.NewResolver(root), tag
}

func BenchmarkB6NameResolutionCold(b *testing.B) {
	for _, depth := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("depth=%d", depth), func(b *testing.B) {
			r, tag := benchNamespace(b, depth)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r.Flush() // force the authoritative walk every time
				if _, err := r.Resolve("p", tag); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkB6NameResolutionCached(b *testing.B) {
	r, tag := benchNamespace(b, 8)
	if _, err := r.Resolve("p", tag); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.Resolve("p", tag); err != nil {
			b.Fatal(err)
		}
	}
}

// --- B7: CEP throughput vs pattern count ---

func BenchmarkB7CEP(b *testing.B) {
	for _, patterns := range []int{1, 10, 100} {
		b.Run(fmt.Sprintf("patterns=%d", patterns), func(b *testing.B) {
			e := cep.NewEngine(func(cep.Detection) {})
			for i := 0; i < patterns; i++ {
				e.Register(&cep.Threshold{
					PatternName: "p" + strconv.Itoa(i),
					Match:       func(ev cep.Event) bool { return ev.Value > 1e12 }, // never fires
					Count:       3,
					Window:      time.Minute,
				})
			}
			t0 := time.Unix(0, 0)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e.Feed(cep.Event{Type: "hr", Time: t0.Add(time.Duration(i) * time.Millisecond), Value: 70})
			}
		})
	}
}

// --- B8: policy evaluation throughput vs rule-set size ---

func BenchmarkB8PolicyEvaluation(b *testing.B) {
	for _, rules := range []int{1, 10, 100, 1000} {
		b.Run(fmt.Sprintf("rules=%d", rules), func(b *testing.B) {
			src := ""
			for i := 0; i < rules; i++ {
				src += fmt.Sprintf(
					"rule \"r%d\" { on event \"hr\" when event.value > 1000 do alert \"x\" }\n", i)
			}
			store := ctxmodel.NewStore(nil)
			eng := policy.NewEngine(store, nil)
			eng.Load(policy.MustParse(src))
			det := cep.Detection{Pattern: "hr", Value: 70}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if errs := eng.HandleDetection(det); len(errs) != 0 {
					b.Fatal(errs)
				}
			}
		})
	}
}

// BenchmarkB8ConflictResolution measures the marginal cost of the
// Challenge 4 machinery: N rules firing on one trigger, all claiming the
// same resource, so every evaluation resolves N-1 conflicts.
func BenchmarkB8ConflictResolution(b *testing.B) {
	for _, rules := range []int{2, 10, 100} {
		b.Run(fmt.Sprintf("conflicting=%d", rules), func(b *testing.B) {
			src := ""
			for i := 0; i < rules; i++ {
				src += fmt.Sprintf(
					"rule \"r%d\" priority %d { on event \"e\" do set mode = \"m%d\" }\n", i, i, i)
			}
			store := ctxmodel.NewStore(nil)
			eng := policy.NewEngine(store, nil,
				policy.WithConflictHandler(func(policy.Conflict) {}))
			eng.Load(policy.MustParse(src))
			det := cep.Detection{Pattern: "e"}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if errs := eng.HandleDetection(det); len(errs) != 0 {
					b.Fatal(errs)
				}
			}
		})
	}
}

// --- Figure-level end-to-end benchmark ---

// BenchmarkFig7EndToEnd pushes sensor events through the whole Fig. 7
// pipeline — CEP detection, policy evaluation, context store — measuring
// the sustainable event rate of one domain's decision plane.
func BenchmarkFig7EndToEnd(b *testing.B) {
	now := time.Unix(1700000000, 0)
	d, err := core.NewDomain("bench", core.Options{Clock: func() time.Time { return now }})
	if err != nil {
		b.Fatal(err)
	}
	d.RegisterPattern(&cep.Threshold{
		PatternName: "tachycardia",
		Match:       func(e cep.Event) bool { return e.Value > 120 },
		Count:       3, Window: 10 * time.Minute,
	})
	d.Store().Set("emergency", ctxmodel.Bool(false))
	if err := d.LoadPolicy(`
rule "emergency" priority 10 {
    on event "tachycardia"
    when not ctx.emergency
    do set emergency = true; alert "emergency"
}`); err != nil {
		b.Fatal(err)
	}
	base := time.Unix(1700000000, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Normal readings: the common case that must stay cheap.
		d.FeedEvent(cep.Event{
			Type: "heart-rate", Source: "ann-sensor",
			Time:  base.Add(time.Duration(i) * time.Second),
			Value: 70,
		})
	}
}

// --- B9: durable audit append (group-committed WAL) ---

// BenchmarkB9DurableAppend drives the full durable pipeline — async
// hashing, ordered sink, WAL framing, group commit with one fsync per
// flushed batch — at the batch sizes BENCH_3.json records.
func BenchmarkB9DurableAppend(b *testing.B) {
	for _, batch := range []int{1, 64, 1024} {
		b.Run(fmt.Sprintf("batch%d", batch), func(b *testing.B) {
			s, err := store.OpenAudit(b.TempDir(), store.Options{})
			if err != nil {
				b.Fatal(err)
			}
			defer s.Close()
			l := audit.NewLog(nil)
			if err := s.AttachLog(l); err != nil {
				b.Fatal(err)
			}
			rec := audit.Record{
				Kind: audit.FlowAllowed, Layer: audit.LayerMessaging,
				Src: "sensor", Dst: "analyser", DataID: "reading-1",
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i += batch {
				for j := 0; j < batch; j++ {
					l.AppendAsync(rec)
				}
				l.Flush()
				if err := s.Sync(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkB10Recovery measures crash-recovery replay (segment scan, CRC,
// decode, chain verify) for a store of b.N records; benchharness records
// the 1M-record figure in BENCH_3.json.
func BenchmarkB10Recovery(b *testing.B) {
	dir := b.TempDir()
	s, err := store.OpenAudit(dir, store.Options{NoSync: true})
	if err != nil {
		b.Fatal(err)
	}
	l := audit.NewLog(nil)
	if err := s.AttachLog(l); err != nil {
		b.Fatal(err)
	}
	rec := audit.Record{
		Kind: audit.FlowAllowed, Layer: audit.LayerMessaging,
		Src: "sensor", Dst: "analyser", DataID: "reading-1",
	}
	for i := 0; i < b.N; i++ {
		l.AppendAsync(rec)
		if i%100000 == 99999 {
			if _, err := s.Offload(l); err != nil {
				b.Fatal(err)
			}
		}
	}
	l.Flush()
	if err := s.Close(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	s2, err := store.OpenAudit(dir, store.Options{})
	if err != nil {
		b.Fatal(err)
	}
	if got := s2.NextSeq(); got != uint64(b.N) {
		b.Fatalf("recovered %d, want %d", got, b.N)
	}
	s2.Close()
}

// --- B11: sticky-policy baseline vs IFC enforcement ---
//
// The paper (Section 10.2) positions sticky policies as the alternative
// end-to-end control. B11 quantifies the per-datum cost difference: sticky
// pays AES-GCM plus an authority interaction per protected datum; IFC pays
// a label subset check per flow.

func BenchmarkB11StickyProtectOpen(b *testing.B) {
	auth := sticky.NewAuthority()
	data := []byte("ann-vitals-reading-72bpm")
	pol := sticky.Policy{Text: "medical: treatment only"}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		bundle, err := auth.Seal(data, pol)
		if err != nil {
			b.Fatal(err)
		}
		if err := auth.Agree("clinic", bundle.ID); err != nil {
			b.Fatal(err)
		}
		if _, err := auth.Open("clinic", bundle); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkB11IFCProtectFlow(b *testing.B) {
	// The IFC equivalent of "protect and hand over one datum": a kernel
	// pipe write + read across the enforcement hook, audit included.
	k := oskernel.NewKernel("bench", nil)
	ctx := ifc.MustContext([]ifc.Tag{"medical", "ann"}, nil)
	producer := k.Boot("producer", ctx)
	consumer := k.Boot("consumer", ctx)
	pipe, err := k.MkPipe(producer.PID())
	if err != nil {
		b.Fatal(err)
	}
	data := []byte("ann-vitals-reading-72bpm")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := k.WritePipe(producer.PID(), pipe, data); err != nil {
			b.Fatal(err)
		}
		if _, err := k.ReadPipe(consumer.PID(), pipe); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkB8PolicyParse(b *testing.B) {
	src := `
rule "emergency-response" priority 10 {
    on event "tachycardia"
    when ctx.location == "home" and not ctx.emergency
    do set emergency = true; alert "emergency"; breakglass 30m;
       connect "a.out" -> "b.in"; actuate "s" "rate" 1
}`
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := policy.Parse(src); err != nil {
			b.Fatal(err)
		}
	}
}
