package lciot_test

import (
	"errors"
	"testing"

	"lciot"
)

// TestFacadeEndToEnd exercises the public API exactly as a downstream user
// would: build a domain, register components, load policy, observe
// enforcement and audit.
func TestFacadeEndToEnd(t *testing.T) {
	d, err := lciot.NewDomain("demo", lciot.Options{})
	if err != nil {
		t.Fatal(err)
	}

	vitals := lciot.MustSchema("vitals", lciot.Label{},
		lciot.Field{Name: "patient", Type: lciot.TString, Required: true},
		lciot.Field{Name: "heart-rate", Type: lciot.TFloat, Required: true},
	)
	annCtx := lciot.MustContext([]lciot.Tag{"medical", "ann"}, nil)

	if _, err := d.Bus().Register("sensor", "hospital", annCtx, nil,
		lciot.EndpointSpec{Name: "out", Dir: lciot.Source, Schema: vitals}); err != nil {
		t.Fatal(err)
	}
	received := 0
	if _, err := d.Bus().Register("analyser", "hospital", annCtx,
		func(m *lciot.Message, _ lciot.Delivery) { received++ },
		lciot.EndpointSpec{Name: "in", Dir: lciot.Sink, Schema: vitals}); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Bus().Register("public-sink", "hospital", lciot.SecurityContext{}, nil,
		lciot.EndpointSpec{Name: "in", Dir: lciot.Sink, Schema: vitals}); err != nil {
		t.Fatal(err)
	}

	if err := d.Bus().Connect(lciot.PolicyEnginePrincipal, "sensor.out", "analyser.in"); err != nil {
		t.Fatal(err)
	}
	if err := d.Bus().Connect(lciot.PolicyEnginePrincipal, "sensor.out", "public-sink.in"); !errors.Is(err, lciot.ErrFlowDenied) {
		t.Fatalf("public connect = %v", err)
	}

	sensor, err := d.Bus().Component("sensor")
	if err != nil {
		t.Fatal(err)
	}
	m := lciot.NewMessage("vitals").
		Set("patient", lciot.Str("ann")).
		Set("heart-rate", lciot.Float(71))
	if n, err := sensor.Publish("out", m); err != nil || n != 1 {
		t.Fatalf("publish = %d, %v", n, err)
	}
	if received != 1 {
		t.Fatalf("received = %d", received)
	}

	rep := lciot.Report(d.Log())
	if !rep.ChainIntact || rep.ByKind["flow-denied"] != 1 {
		t.Fatalf("report = %+v", rep)
	}
}

func TestFacadeIFCPrimitives(t *testing.T) {
	a := lciot.MustContext([]lciot.Tag{"s1"}, nil)
	b := lciot.MustContext([]lciot.Tag{"s1", "s2"}, nil)
	if !a.CanFlowTo(b) || b.CanFlowTo(a) {
		t.Fatal("flow rule broken through facade")
	}
	d := lciot.CheckFlow(b, a)
	if d.Allowed || d.MissingSecrecy.String() != "{s2}" {
		t.Fatalf("decision = %+v", d)
	}
	if err := lciot.EnforceFlow(a, b); err != nil {
		t.Fatal(err)
	}
	merged := lciot.MergeContexts(a, b)
	if !a.CanFlowTo(merged) || !b.CanFlowTo(merged) {
		t.Fatal("merge broken")
	}
	p := lciot.OwnerPrivileges("s1", "s2")
	if err := p.AuthoriseTransition(b, a); err != nil {
		t.Fatal(err)
	}
}

func TestFacadePolicyParse(t *testing.T) {
	set, err := lciot.ParsePolicy(`rule "r" { on event "e" do alert "x" }`)
	if err != nil {
		t.Fatal(err)
	}
	if len(set.Rules) != 1 {
		t.Fatalf("rules = %d", len(set.Rules))
	}
	if _, err := lciot.ParsePolicy("junk"); err == nil {
		t.Fatal("junk accepted")
	}
}

func TestFacadeTagNamespace(t *testing.T) {
	root := lciot.NewTagRoot()
	zone, err := root.DelegatePath("hospital.example")
	if err != nil {
		t.Fatal(err)
	}
	if err := zone.Register(lciot.TagRecord{
		Tag:   "hospital.example/medical",
		Owner: "hospital",
	}); err != nil {
		t.Fatal(err)
	}
	resolver := lciot.NewTagResolver(root)
	rec, err := resolver.Resolve("anyone", "hospital.example/medical")
	if err != nil {
		t.Fatal(err)
	}
	if rec.Owner != "hospital" {
		t.Fatalf("owner = %q", rec.Owner)
	}
}
