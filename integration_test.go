package lciot_test

// Integration tests spanning the whole stack: devices → gateways → domains
// → federation over real TCP, with policy reacting to live conditions and
// audit collected across tiers. These exercise the compositions that the
// per-package unit tests cannot.

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"lciot"
	"lciot/internal/attest"
	"lciot/internal/audit"
	"lciot/internal/core"
	"lciot/internal/ctxmodel"
	"lciot/internal/device"
	"lciot/internal/gateway"
	"lciot/internal/ifc"
	"lciot/internal/msg"
	"lciot/internal/sbus"
	"lciot/internal/transport"
)

func itVitals() *msg.Schema {
	return msg.MustSchema("vitals", ifc.EmptyLabel,
		msg.Field{Name: "patient", Type: msg.TString, Required: true},
		msg.Field{Name: "heart-rate", Type: msg.TFloat, Required: true},
	)
}

func itAnnCtx() ifc.SecurityContext {
	return ifc.MustContext([]ifc.Tag{"medical", "ann"}, nil)
}

type itRecorder struct {
	mu   sync.Mutex
	msgs []*msg.Message
}

func (r *itRecorder) handler() sbus.Handler {
	return func(m *msg.Message, _ sbus.Delivery) {
		r.mu.Lock()
		defer r.mu.Unlock()
		r.msgs = append(r.msgs, m)
	}
}

func (r *itRecorder) count() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.msgs)
}

func itWait(t *testing.T, cond func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("timed out waiting for ", what)
}

// TestIntegrationFederationOverRealTCP runs the full home→cloud path over
// actual sockets: attested federation, cross-domain channel, enforced and
// audited delivery.
func TestIntegrationFederationOverRealTCP(t *testing.T) {
	home, err := core.NewDomain("home", core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	hospital, err := core.NewDomain("hospital", core.Options{})
	if err != nil {
		t.Fatal(err)
	}

	listener, err := transport.TCPNetwork{}.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer listener.Close()
	go hospital.Serve(listener)

	home.EnrollPeer(hospital.TPM().DeviceID(), hospital.TPM().EndorsementKey())
	peer, err := home.Federate(transport.TCPNetwork{}, listener.Addr(),
		hospital.TPM(), attest.Policy{})
	if err != nil {
		t.Fatal(err)
	}
	if peer != "hospital" {
		t.Fatalf("peer = %q", peer)
	}

	if _, err := home.Bus().Register("ann-device", "hospital", itAnnCtx(), nil,
		sbus.EndpointSpec{Name: "out", Dir: sbus.Source, Schema: itVitals()}); err != nil {
		t.Fatal(err)
	}
	rec := &itRecorder{}
	if _, err := hospital.Bus().Register("analyser", "hospital", itAnnCtx(), rec.handler(),
		sbus.EndpointSpec{Name: "in", Dir: sbus.Sink, Schema: itVitals()}); err != nil {
		t.Fatal(err)
	}
	if err := home.Bus().Connect(core.PolicyEnginePrincipal,
		"ann-device.out", "hospital:analyser.in"); err != nil {
		t.Fatal(err)
	}

	dev, err := home.Bus().Component("ann-device")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		m := msg.New("vitals").Set("patient", msg.Str("ann")).Set("heart-rate", msg.Float(70+float64(i)))
		m.DataID = "tcp-reading"
		if _, err := dev.Publish("out", m); err != nil {
			t.Fatal(err)
		}
	}
	itWait(t, func() bool { return rec.count() == 5 }, "TCP deliveries")

	// Both domains audited; both chains verify.
	for _, d := range []*core.Domain{home, hospital} {
		if bad, err := d.Log().Verify(); err != nil || bad != -1 {
			t.Fatalf("%s log verify = %d, %v", d.Name(), bad, err)
		}
	}
}

// TestIntegrationGatewayPipeline runs constrained device → gateway
// (labelling, consent, store-and-forward) → analyser, with an uplink
// outage in the middle.
func TestIntegrationGatewayPipeline(t *testing.T) {
	d, err := core.NewDomain("home", core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	gw, err := gateway.New(d.Bus(), "gw", "hospital", itAnnCtx(), 64)
	if err != nil {
		t.Fatal(err)
	}
	if err := gw.Component().Entity().GrantPrivileges(ifc.OwnerPrivileges("medical", "ann")); err != nil {
		t.Fatal(err)
	}
	gw.AddDevice(gateway.DeviceEntry{DeviceID: "ann-sensor", Ctx: itAnnCtx(), Consent: true})

	rec := &itRecorder{}
	if _, err := d.Bus().Register("analyser", "hospital", itAnnCtx(), rec.handler(),
		sbus.EndpointSpec{Name: "in", Dir: sbus.Sink, Schema: gateway.ReadingSchema}); err != nil {
		t.Fatal(err)
	}
	if err := d.Bus().Connect(core.PolicyEnginePrincipal, "gw.readings", "analyser.in"); err != nil {
		t.Fatal(err)
	}

	sensor := device.NewVitalsSensor("ann-sensor", 70, 9, time.Unix(0, 0), time.Second)
	// Phase 1: online.
	for i := 0; i < 3; i++ {
		if err := gw.Ingest(sensor.Next()); err != nil {
			t.Fatal(err)
		}
	}
	// Phase 2: uplink outage buffers.
	gw.SetUplink(false)
	for i := 0; i < 4; i++ {
		if err := gw.Ingest(sensor.Next()); err != nil {
			t.Fatal(err)
		}
	}
	if rec.count() != 3 || gw.Buffered() != 4 {
		t.Fatalf("delivered=%d buffered=%d", rec.count(), gw.Buffered())
	}
	// Phase 3: recovery flushes in order.
	gw.SetUplink(true)
	if n, err := gw.Flush(); err != nil || n != 4 {
		t.Fatalf("Flush = %d, %v", n, err)
	}
	if rec.count() != 7 {
		t.Fatalf("total delivered = %d", rec.count())
	}
	// The provenance of the final reading reaches back to the sensor.
	g := audit.BuildGraph(d.Log().Select(nil))
	desc, err := g.Descendants("ann-sensor/heart-rate/0")
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, n := range desc {
		if strings.Contains(n, "analyser") {
			found = true
		}
	}
	if !found {
		t.Fatalf("descendants = %v", desc)
	}
}

// TestIntegrationAbsenceDrivenQuarantine closes a detect/respond loop on
// silence: when a sensor stops heartbeating, policy quarantines its
// component and raises an alert (Challenge 6's intermittently connected
// things surfaced to the policy plane).
func TestIntegrationAbsenceDrivenQuarantine(t *testing.T) {
	now := time.Unix(1700000000, 0)
	var mu sync.Mutex
	clock := func() time.Time { mu.Lock(); defer mu.Unlock(); return now }
	advance := func(dt time.Duration) { mu.Lock(); now = now.Add(dt); mu.Unlock() }

	d, err := core.NewDomain("home", core.Options{Clock: clock})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Bus().Register("flaky-sensor", "hospital", itAnnCtx(), nil,
		sbus.EndpointSpec{Name: "out", Dir: sbus.Source, Schema: itVitals()}); err != nil {
		t.Fatal(err)
	}
	d.RegisterPattern(&lciot.AbsencePattern{
		PatternName: "sensor-offline",
		Match:       func(e lciot.Event) bool { return e.Type == "heartbeat" && e.Source == "flaky-sensor" },
		Timeout:     time.Minute,
	})
	if err := d.LoadPolicy(`
rule "contain-offline" {
    on event "sensor-offline"
    do quarantine "flaky-sensor"; alert "flaky-sensor offline, quarantined"
}`); err != nil {
		t.Fatal(err)
	}

	d.FeedEvent(lciot.Event{Type: "heartbeat", Source: "flaky-sensor", Time: clock()})
	d.Tick() // silence not yet long enough
	comp, _ := d.Bus().Component("flaky-sensor")
	if comp.Quarantined() {
		t.Fatal("quarantined too early")
	}
	advance(2 * time.Minute)
	d.Tick()
	if !comp.Quarantined() {
		t.Fatal("offline sensor not quarantined")
	}
	if len(d.Alerts()) != 1 {
		t.Fatalf("alerts = %v", d.Alerts())
	}
}

// TestIntegrationDistributedAuditCollection builds the hierarchy of
// Challenge 6: a thing's log forwards into its domain's collector; the
// thing prunes its own history after offload and everything remains
// verifiable.
func TestIntegrationDistributedAuditCollection(t *testing.T) {
	collector := audit.NewLog(nil)
	thing := audit.NewLog(nil)
	thing.AddSink(func(r audit.Record) {
		r.Domain = "collected-from-thing"
		collector.Append(r)
	})

	for i := 0; i < 20; i++ {
		thing.Append(audit.Record{Kind: audit.FlowAllowed, Src: "s", Dst: "d", DataID: "x"})
	}
	// The thing offloads and prunes its first 15 records.
	segment := thing.Prune(15)
	if err := audit.VerifySegment(segment, nil); err != nil {
		t.Fatal(err)
	}
	first, err := thing.Get(15)
	if err != nil {
		t.Fatal(err)
	}
	if err := audit.VerifySegment(segment, &first); err != nil {
		t.Fatal(err)
	}
	// The retained tail and the collector both verify.
	if bad, err := thing.Verify(); err != nil || bad != -1 {
		t.Fatalf("thing verify = %d, %v", bad, err)
	}
	if bad, err := collector.Verify(); err != nil || bad != -1 {
		t.Fatalf("collector verify = %d, %v", bad, err)
	}
	if collector.Len() != 20 {
		t.Fatalf("collector has %d records", collector.Len())
	}
}

// TestIntegrationEmergencyAcrossDomains runs the Fig. 7 emergency where
// the emergency team lives in a *different* domain: the policy-driven
// replug crosses the federation link.
func TestIntegrationEmergencyAcrossDomains(t *testing.T) {
	net := transport.NewMemNetwork()
	home, err := core.NewDomain("home", core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	hospital, err := core.NewDomain("hospital", core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	listener, err := net.Listen("hospital")
	if err != nil {
		t.Fatal(err)
	}
	defer listener.Close()
	go hospital.Serve(listener)
	home.EnrollPeer(hospital.TPM().DeviceID(), hospital.TPM().EndorsementKey())
	if _, err := home.Federate(net, "hospital", hospital.TPM(), attest.Policy{}); err != nil {
		t.Fatal(err)
	}

	if _, err := home.Bus().Register("ann-device", "hospital", itAnnCtx(), nil,
		sbus.EndpointSpec{Name: "out", Dir: sbus.Source, Schema: itVitals()}); err != nil {
		t.Fatal(err)
	}
	rec := &itRecorder{}
	if _, err := hospital.Bus().Register("emergency-team", "hospital", itAnnCtx(), rec.handler(),
		sbus.EndpointSpec{Name: "in", Dir: sbus.Sink, Schema: itVitals()}); err != nil {
		t.Fatal(err)
	}

	home.Store().Set("emergency", ctxmodel.Bool(false))
	d := home
	d.RegisterPattern(&lciot.ThresholdPattern{
		PatternName: "tachycardia",
		Match:       func(e lciot.Event) bool { return e.Value > 120 },
		Count:       3, Window: 10 * time.Minute,
	})
	if err := d.LoadPolicy(`
rule "emergency" priority 10 {
    on event "tachycardia"
    when not ctx.emergency
    do set emergency = true;
       connect "ann-device.out" -> "hospital:emergency-team.in";
       alert "cross-domain emergency replug"
}`); err != nil {
		t.Fatal(err)
	}

	base := time.Unix(1700000000, 0)
	for i := 0; i < 3; i++ {
		d.FeedEvent(lciot.Event{Type: "hr", Time: base.Add(time.Duration(i) * time.Second), Value: 150})
	}
	if len(d.Alerts()) != 1 {
		t.Fatalf("alerts = %v", d.Alerts())
	}

	dev, _ := home.Bus().Component("ann-device")
	m := msg.New("vitals").Set("patient", msg.Str("ann")).Set("heart-rate", msg.Float(150))
	if _, err := dev.Publish("out", m); err != nil {
		t.Fatal(err)
	}
	itWait(t, func() bool { return rec.count() == 1 }, "cross-domain emergency delivery")
}

// TestIntegrationDeniedFlowNeverReachesHandler is the safety net property
// stated end-to-end: no combination of reconfiguration can make data reach
// a handler whose component's context does not dominate the source.
func TestIntegrationDeniedFlowNeverReachesHandler(t *testing.T) {
	d, err := core.NewDomain("dom", core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Bus().Register("secret-src", "hospital", itAnnCtx(), nil,
		sbus.EndpointSpec{Name: "out", Dir: sbus.Source, Schema: itVitals()}); err != nil {
		t.Fatal(err)
	}
	rec := &itRecorder{}
	if _, err := d.Bus().Register("public-sink", "hospital", ifc.SecurityContext{}, rec.handler(),
		sbus.EndpointSpec{Name: "in", Dir: sbus.Sink, Schema: itVitals()}); err != nil {
		t.Fatal(err)
	}

	// Attempt 1: direct connect.
	if err := d.Bus().Connect(core.PolicyEnginePrincipal, "secret-src.out", "public-sink.in"); !errors.Is(err, ifc.ErrFlowDenied) {
		t.Fatalf("direct connect = %v", err)
	}
	// Attempt 2: connect legally, then declassify the sink... which is
	// impossible without privileges; grant them, connect, then raise the
	// source again and verify the channel dies.
	sink, _ := d.Bus().Component("public-sink")
	if err := d.Bus().GrantPrivileges(core.PolicyEnginePrincipal, "public-sink",
		ifc.OwnerPrivileges("medical", "ann")); err != nil {
		t.Fatal(err)
	}
	if err := sink.SetContext(itAnnCtx()); err != nil {
		t.Fatal(err)
	}
	if err := d.Bus().Connect(core.PolicyEnginePrincipal, "secret-src.out", "public-sink.in"); err != nil {
		t.Fatal(err)
	}
	// The sink declassifies itself back to public: the channel must be torn
	// down before any further message can flow.
	if err := sink.SetContext(ifc.SecurityContext{}); err != nil {
		t.Fatal(err)
	}
	src, _ := d.Bus().Component("secret-src")
	m := msg.New("vitals").Set("patient", msg.Str("ann")).Set("heart-rate", msg.Float(70))
	if n, err := src.Publish("out", m); err != nil || n != 0 {
		t.Fatalf("publish after sink declassified = %d, %v", n, err)
	}
	if rec.count() != 0 {
		t.Fatal("labelled data reached a public handler")
	}
}
