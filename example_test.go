package lciot_test

import (
	"fmt"
	"time"

	"lciot"
)

// ExampleCheckFlow demonstrates the paper's flow rule on the Fig. 4
// contexts: Zeb's device fails both the secrecy and the integrity half
// against Ann's analyser.
func ExampleCheckFlow() {
	zebDevice := lciot.MustContext(
		[]lciot.Tag{"medical", "zeb"}, []lciot.Tag{"zeb-dev", "consent"})
	annAnalyser := lciot.MustContext(
		[]lciot.Tag{"medical", "ann"}, []lciot.Tag{"hosp-dev", "consent"})

	d := lciot.CheckFlow(zebDevice, annAnalyser)
	fmt.Println("allowed:", d.Allowed)
	fmt.Println("destination S lacks:", d.MissingSecrecy)
	fmt.Println("source I lacks:", d.MissingIntegrity)
	// Output:
	// allowed: false
	// destination S lacks: {zeb}
	// source I lacks: {hosp-dev}
}

// ExampleGate shows the Fig. 6 declassifier: anonymised statistics may
// leave the patient domain only through a privileged, transforming gate.
func ExampleGate() {
	patients := lciot.MustContext([]lciot.Tag{"medical", "ann", "zeb"}, nil)
	statistics := lciot.MustContext([]lciot.Tag{"medical", "stats"}, []lciot.Tag{"anon"})

	gate := &lciot.Gate{
		Name:   "statistics-generator",
		Input:  patients,
		Output: statistics,
		Transform: func([]byte) ([]byte, error) {
			return []byte("mean-hr=71.4 n=2"), nil
		},
	}
	// The operator needs exactly the privileges the crossing requires.
	operator := lciot.NewEntity("stats-proc", gate.Input)
	if err := operator.GrantPrivileges(gate.RequiredPrivileges()); err != nil {
		fmt.Println(err)
		return
	}
	out, err := gate.Pipe(operator, patients, statistics, []byte("raw-records"))
	fmt.Println(string(out), err)
	// Output:
	// mean-hr=71.4 n=2 <nil>
}

// ExampleNewDomain builds the smallest enforcing system: a confidential
// source, a matching sink, and an audited denial for a public one.
func ExampleNewDomain() {
	domain, err := lciot.NewDomain("demo", lciot.Options{})
	if err != nil {
		fmt.Println(err)
		return
	}
	vitals := lciot.MustSchema("vitals", lciot.Label{},
		lciot.Field{Name: "heart-rate", Type: lciot.TFloat, Required: true})
	confidential := lciot.MustContext([]lciot.Tag{"medical"}, nil)

	bus := domain.Bus()
	bus.Register("sensor", "hospital", confidential, nil,
		lciot.EndpointSpec{Name: "out", Dir: lciot.Source, Schema: vitals})
	bus.Register("analyser", "hospital", confidential,
		func(m *lciot.Message, _ lciot.Delivery) {
			hr, _ := m.Get("heart-rate")
			fmt.Printf("received %.0f\n", hr.Float)
		},
		lciot.EndpointSpec{Name: "in", Dir: lciot.Sink, Schema: vitals})
	bus.Register("public", "anyone", lciot.SecurityContext{}, nil,
		lciot.EndpointSpec{Name: "in", Dir: lciot.Sink, Schema: vitals})

	if err := bus.Connect(lciot.PolicyEnginePrincipal, "sensor.out", "analyser.in"); err != nil {
		fmt.Println(err)
	}
	if err := bus.Connect(lciot.PolicyEnginePrincipal, "sensor.out", "public.in"); err != nil {
		fmt.Println("public refused")
	}
	sensor, _ := bus.Component("sensor")
	sensor.Publish("out", lciot.NewMessage("vitals").Set("heart-rate", lciot.Float(71)))

	rep := lciot.Report(domain.Log())
	fmt.Println("audited denials:", len(rep.Denials))
	// Output:
	// public refused
	// received 71
	// audited denials: 1
}

// ExampleNewDomain_sharded runs a domain bus partitioned across four
// shards: components are homed by name hash, same-shard deliveries run
// inline, and deliveries whose sink lives on another shard hand off to
// that shard's dispatcher. Per-shard stats show where the work landed.
func ExampleNewDomain_sharded() {
	domain, err := lciot.NewDomain("plant", lciot.Options{Shards: 4})
	if err != nil {
		fmt.Println(err)
		return
	}
	defer domain.Close()
	readings := lciot.MustSchema("readings", lciot.Label{},
		lciot.Field{Name: "value", Type: lciot.TFloat, Required: true})
	confidential := lciot.MustContext([]lciot.Tag{"plant"}, nil)

	bus := domain.Bus()
	got := make(chan struct{}, 8)
	bus.Register("historian", "operator", confidential,
		func(*lciot.Message, lciot.Delivery) { got <- struct{}{} },
		lciot.EndpointSpec{Name: "in", Dir: lciot.Sink, Schema: readings})
	for _, sensor := range []string{"sensor-1", "sensor-2", "sensor-3"} {
		bus.Register(sensor, "operator", confidential, nil,
			lciot.EndpointSpec{Name: "out", Dir: lciot.Source, Schema: readings})
		bus.Connect(lciot.PolicyEnginePrincipal, sensor+".out", "historian.in")
		fmt.Printf("%s homed on shard %d\n", sensor, bus.ShardOf(sensor))
	}
	fmt.Printf("historian homed on shard %d\n", bus.ShardOf("historian"))

	for _, sensor := range []string{"sensor-1", "sensor-2", "sensor-3"} {
		src, _ := bus.Component(sensor)
		src.Publish("out", lciot.NewMessage("readings").Set("value", lciot.Float(42)))
	}
	for i := 0; i < 3; i++ {
		<-got // cross-shard deliveries are asynchronous; wait for all three
	}
	for _, s := range bus.ShardStats() {
		fmt.Printf("shard %d: components=%d channels=%d delivered=%d handoffs=%d\n",
			s.Shard, s.Components, s.Channels, s.Delivered, s.HandoffsIn)
	}
	// Output:
	// sensor-1 homed on shard 1
	// sensor-2 homed on shard 0
	// sensor-3 homed on shard 3
	// historian homed on shard 0
	// shard 0: components=2 channels=1 delivered=3 handoffs=2
	// shard 1: components=1 channels=1 delivered=0 handoffs=0
	// shard 2: components=0 channels=0 delivered=0 handoffs=0
	// shard 3: components=1 channels=1 delivered=0 handoffs=0
}

// ExampleParsePolicy parses a rule and prints its normalised form.
func ExampleParsePolicy() {
	set, err := lciot.ParsePolicy(`
rule "shift-end" priority 2 {
    on context on-duty
    when not ctx.on-duty
    do disconnect "nurse.app" -> "patient.db"; alert "access withdrawn"
}`)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println(set.Rules[0])
	// Output:
	// rule "shift-end" priority 2 { on context on-duty when not ctx.on-duty do disconnect "nurse.app" -> "patient.db"; alert "access withdrawn" }
}

// ExampleMergeContexts computes the context an aggregator over several
// patients' data must adopt.
func ExampleMergeContexts() {
	ann := lciot.MustContext([]lciot.Tag{"medical", "ann"}, []lciot.Tag{"consent"})
	zeb := lciot.MustContext([]lciot.Tag{"medical", "zeb"}, []lciot.Tag{"consent"})
	fmt.Println(lciot.MergeContexts(ann, zeb))
	// Output:
	// S={ann,medical,zeb} I={consent}
}

// ExampleThresholdPattern wires detection to policy: three elevated
// readings inside the window raise exactly one alert.
func ExampleThresholdPattern() {
	domain, err := lciot.NewDomain("demo2", lciot.Options{})
	if err != nil {
		fmt.Println(err)
		return
	}
	domain.RegisterPattern(&lciot.ThresholdPattern{
		PatternName: "tachycardia",
		Match:       func(e lciot.Event) bool { return e.Value > 120 },
		Count:       3,
		Window:      time.Minute,
	})
	domain.Store().Set("emergency", lciot.CtxBool(false))
	domain.LoadPolicy(`
rule "respond" {
    on event "tachycardia"
    when not ctx.emergency
    do set emergency = true; alert "emergency"
}`)
	base := time.Unix(0, 0)
	for i, v := range []float64{130, 90, 140, 150, 160} {
		domain.FeedEvent(lciot.Event{Type: "hr", Time: base.Add(time.Duration(i) * time.Second), Value: v})
	}
	fmt.Println(domain.Alerts())
	// Output:
	// [emergency]
}
