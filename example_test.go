package lciot_test

import (
	"fmt"
	"time"

	"lciot"
)

// ExampleCheckFlow demonstrates the paper's flow rule on the Fig. 4
// contexts: Zeb's device fails both the secrecy and the integrity half
// against Ann's analyser.
func ExampleCheckFlow() {
	zebDevice := lciot.MustContext(
		[]lciot.Tag{"medical", "zeb"}, []lciot.Tag{"zeb-dev", "consent"})
	annAnalyser := lciot.MustContext(
		[]lciot.Tag{"medical", "ann"}, []lciot.Tag{"hosp-dev", "consent"})

	d := lciot.CheckFlow(zebDevice, annAnalyser)
	fmt.Println("allowed:", d.Allowed)
	fmt.Println("destination S lacks:", d.MissingSecrecy)
	fmt.Println("source I lacks:", d.MissingIntegrity)
	// Output:
	// allowed: false
	// destination S lacks: {zeb}
	// source I lacks: {hosp-dev}
}

// ExampleGate shows the Fig. 6 declassifier: anonymised statistics may
// leave the patient domain only through a privileged, transforming gate.
func ExampleGate() {
	patients := lciot.MustContext([]lciot.Tag{"medical", "ann", "zeb"}, nil)
	statistics := lciot.MustContext([]lciot.Tag{"medical", "stats"}, []lciot.Tag{"anon"})

	gate := &lciot.Gate{
		Name:   "statistics-generator",
		Input:  patients,
		Output: statistics,
		Transform: func([]byte) ([]byte, error) {
			return []byte("mean-hr=71.4 n=2"), nil
		},
	}
	// The operator needs exactly the privileges the crossing requires.
	operator := lciot.NewEntity("stats-proc", gate.Input)
	if err := operator.GrantPrivileges(gate.RequiredPrivileges()); err != nil {
		fmt.Println(err)
		return
	}
	out, err := gate.Pipe(operator, patients, statistics, []byte("raw-records"))
	fmt.Println(string(out), err)
	// Output:
	// mean-hr=71.4 n=2 <nil>
}

// ExampleNewDomain builds the smallest enforcing system: a confidential
// source, a matching sink, and an audited denial for a public one.
func ExampleNewDomain() {
	domain, err := lciot.NewDomain("demo", lciot.Options{})
	if err != nil {
		fmt.Println(err)
		return
	}
	vitals := lciot.MustSchema("vitals", lciot.Label{},
		lciot.Field{Name: "heart-rate", Type: lciot.TFloat, Required: true})
	confidential := lciot.MustContext([]lciot.Tag{"medical"}, nil)

	bus := domain.Bus()
	bus.Register("sensor", "hospital", confidential, nil,
		lciot.EndpointSpec{Name: "out", Dir: lciot.Source, Schema: vitals})
	bus.Register("analyser", "hospital", confidential,
		func(m *lciot.Message, _ lciot.Delivery) {
			hr, _ := m.Get("heart-rate")
			fmt.Printf("received %.0f\n", hr.Float)
		},
		lciot.EndpointSpec{Name: "in", Dir: lciot.Sink, Schema: vitals})
	bus.Register("public", "anyone", lciot.SecurityContext{}, nil,
		lciot.EndpointSpec{Name: "in", Dir: lciot.Sink, Schema: vitals})

	if err := bus.Connect(lciot.PolicyEnginePrincipal, "sensor.out", "analyser.in"); err != nil {
		fmt.Println(err)
	}
	if err := bus.Connect(lciot.PolicyEnginePrincipal, "sensor.out", "public.in"); err != nil {
		fmt.Println("public refused")
	}
	sensor, _ := bus.Component("sensor")
	sensor.Publish("out", lciot.NewMessage("vitals").Set("heart-rate", lciot.Float(71)))

	rep := lciot.Report(domain.Log())
	fmt.Println("audited denials:", len(rep.Denials))
	// Output:
	// public refused
	// received 71
	// audited denials: 1
}

// ExampleParsePolicy parses a rule and prints its normalised form.
func ExampleParsePolicy() {
	set, err := lciot.ParsePolicy(`
rule "shift-end" priority 2 {
    on context on-duty
    when not ctx.on-duty
    do disconnect "nurse.app" -> "patient.db"; alert "access withdrawn"
}`)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println(set.Rules[0])
	// Output:
	// rule "shift-end" priority 2 { on context on-duty when not ctx.on-duty do disconnect "nurse.app" -> "patient.db"; alert "access withdrawn" }
}

// ExampleMergeContexts computes the context an aggregator over several
// patients' data must adopt.
func ExampleMergeContexts() {
	ann := lciot.MustContext([]lciot.Tag{"medical", "ann"}, []lciot.Tag{"consent"})
	zeb := lciot.MustContext([]lciot.Tag{"medical", "zeb"}, []lciot.Tag{"consent"})
	fmt.Println(lciot.MergeContexts(ann, zeb))
	// Output:
	// S={ann,medical,zeb} I={consent}
}

// ExampleThresholdPattern wires detection to policy: three elevated
// readings inside the window raise exactly one alert.
func ExampleThresholdPattern() {
	domain, err := lciot.NewDomain("demo2", lciot.Options{})
	if err != nil {
		fmt.Println(err)
		return
	}
	domain.RegisterPattern(&lciot.ThresholdPattern{
		PatternName: "tachycardia",
		Match:       func(e lciot.Event) bool { return e.Value > 120 },
		Count:       3,
		Window:      time.Minute,
	})
	domain.Store().Set("emergency", lciot.CtxBool(false))
	domain.LoadPolicy(`
rule "respond" {
    on event "tachycardia"
    when not ctx.emergency
    do set emergency = true; alert "emergency"
}`)
	base := time.Unix(0, 0)
	for i, v := range []float64{130, 90, 140, 150, 160} {
		domain.FeedEvent(lciot.Event{Type: "hr", Time: base.Add(time.Duration(i) * time.Second), Value: v})
	}
	fmt.Println(domain.Alerts())
	// Output:
	// [emergency]
}
