// Command smartcity demonstrates federated, cross-domain enforcement on
// the paper's smart-city motivation (Section 1): a city council's traffic
// sensors feed an external analytics provider, but
//
//   - the provider's platform must pass remote attestation, including an
//     EU geographic certification (the [39] "Europe-only cloud" policy),
//     before the domains federate;
//   - per-vehicle plate data is marked with a message-layer tag the
//     provider is not cleared for, so it is quenched at the boundary while
//     aggregate counts flow; and
//   - both domains keep independent audit logs of the same flows.
//
// Run with:
//
//	go run ./examples/smartcity
package main

import (
	"fmt"
	"log"
	"time"

	"lciot"
)

// trafficSchema carries an aggregate count (free-flowing) and a plate
// sample tagged "pii" at the message layer (quenched for the provider).
var trafficSchema = lciot.MustSchema("traffic", lciot.Label{},
	lciot.Field{Name: "junction", Type: lciot.TString, Required: true},
	lciot.Field{Name: "vehicle-count", Type: lciot.TFloat, Required: true},
	lciot.Field{Name: "plate-sample", Type: lciot.TString, Secrecy: lciot.MustLabel("pii")},
)

var cityCtx = lciot.MustContext([]lciot.Tag{"city/traffic"}, nil)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	network := lciot.NewMemNetwork()

	city, err := lciot.NewDomain("city", lciot.Options{})
	if err != nil {
		return err
	}
	euProvider, err := lciot.NewDomain("eu-analytics", lciot.Options{})
	if err != nil {
		return err
	}
	usProvider, err := lciot.NewDomain("us-analytics", lciot.Options{})
	if err != nil {
		return err
	}

	// Providers certify their regions (hardware-rooted, per [44]).
	euProvider.TPM().CertifyRegion("eu")
	usProvider.TPM().CertifyRegion("us")

	// The providers listen for federation links.
	euListener, err := network.Listen("eu-analytics-addr")
	if err != nil {
		return err
	}
	defer euListener.Close()
	go euProvider.Serve(euListener)

	// The council enrolls both providers' endorsement keys (out-of-band
	// provisioning), then applies its EU-only attestation policy.
	city.EnrollPeer("eu-analytics", euProvider.TPM().EndorsementKey())
	city.EnrollPeer("us-analytics", usProvider.TPM().EndorsementKey())
	euOnly := lciot.AttestationPolicy{Region: "eu"}

	if _, err := city.Federate(network, "eu-analytics-addr", usProvider.TPM(), euOnly); err != nil {
		fmt.Println("US provider refused:", err)
	}
	peer, err := city.Federate(network, "eu-analytics-addr", euProvider.TPM(), euOnly)
	if err != nil {
		return err
	}
	fmt.Println("federated with:", peer)

	// City side: junction sensors publish traffic messages.
	if _, err := city.Bus().Register("junction-a1", "council", cityCtx, nil,
		lciot.EndpointSpec{Name: "out", Dir: lciot.Source, Schema: trafficSchema}); err != nil {
		return err
	}
	// Provider side: the aggregator is in the city's traffic context but
	// holds no "pii" message-layer clearance.
	done := make(chan struct{}, 16)
	if _, err := euProvider.Bus().Register("aggregator", "eu-analytics", cityCtx,
		func(m *lciot.Message, d lciot.Delivery) {
			count, _ := m.Get("vehicle-count")
			_, hasPlate := m.Get("plate-sample")
			fmt.Printf("aggregator: junction-a1 count=%.0f plate-visible=%v quenched=%v\n",
				count.Float, hasPlate, d.Quenched)
			done <- struct{}{}
		},
		lciot.EndpointSpec{Name: "in", Dir: lciot.Sink, Schema: trafficSchema}); err != nil {
		return err
	}

	if err := city.Bus().Connect(lciot.PolicyEnginePrincipal,
		"junction-a1.out", "eu-analytics:aggregator.in"); err != nil {
		return err
	}

	junction, err := city.Bus().Component("junction-a1")
	if err != nil {
		return err
	}
	sensor := lciot.NewEnvironmentSensor("junction-a1", "vehicle-count", 120, 5, 7,
		time.Unix(1700000000, 0), time.Minute)
	for i := 0; i < 3; i++ {
		r := sensor.Next()
		m := lciot.NewMessage("traffic").
			Set("junction", lciot.Str("a1")).
			Set("vehicle-count", lciot.Float(r.Value)).
			Set("plate-sample", lciot.Str("EU-PLATE-1234"))
		m.DataID = r.DataID()
		if _, err := junction.Publish("out", m); err != nil {
			return err
		}
	}
	for i := 0; i < 3; i++ {
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			return fmt.Errorf("timed out waiting for delivery %d", i)
		}
	}

	// Both sides hold independent, verifiable audit evidence.
	cityRep := lciot.Report(city.Log())
	provRep := lciot.Report(euProvider.Log())
	fmt.Printf("city audit: %d records (chain intact: %v)\n", cityRep.Total, cityRep.ChainIntact)
	fmt.Printf("provider audit: %d records (chain intact: %v)\n", provRep.Total, provRep.ChainIntact)
	return nil
}
