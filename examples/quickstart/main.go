// Command quickstart is the smallest complete lciot program: one domain,
// a labelled sensor, a matching analyser, a public sink that the flow rule
// refuses, the audit trail that proves both outcomes — and, since the
// trail is durable, a simulated restart after which the provenance query
// still answers from the recovered store.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"

	"lciot"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// The audit trail persists here: a segmented, hash-chained,
	// group-committed store under dataDir/audit.
	dataDir, err := os.MkdirTemp("", "lciot-quickstart-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dataDir)

	if err := firstRun(dataDir); err != nil {
		return err
	}
	// The first process is gone; everything in memory with it. The
	// evidence is not.
	return replayAfterRestart(dataDir)
}

func firstRun(dataDir string) error {
	// A domain bundles a bus, policy engine, context store and audit log;
	// DataDir makes the audit log durable.
	domain, err := lciot.NewDomain("demo", lciot.Options{DataDir: dataDir})
	if err != nil {
		return err
	}
	defer domain.Close()

	// A strongly-typed message schema (paper Section 8.2.2).
	vitals := lciot.MustSchema("vitals", lciot.Label{},
		lciot.Field{Name: "patient", Type: lciot.TString, Required: true},
		lciot.Field{Name: "heart-rate", Type: lciot.TFloat, Required: true},
	)

	// Ann's data is confidential: S={medical, ann}. Only components in an
	// equally or more constrained context may receive it.
	annCtx := lciot.MustContext([]lciot.Tag{"medical", "ann"}, nil)

	bus := domain.Bus()
	if _, err := bus.Register("sensor", "hospital", annCtx, nil,
		lciot.EndpointSpec{Name: "out", Dir: lciot.Source, Schema: vitals}); err != nil {
		return err
	}
	if _, err := bus.Register("analyser", "hospital", annCtx,
		func(m *lciot.Message, d lciot.Delivery) {
			hr, _ := m.Get("heart-rate")
			fmt.Printf("analyser received heart-rate %.0f from %s\n", hr.Float, d.From)
		},
		lciot.EndpointSpec{Name: "in", Dir: lciot.Sink, Schema: vitals}); err != nil {
		return err
	}
	if _, err := bus.Register("advertiser", "adtech-inc", lciot.SecurityContext{}, nil,
		lciot.EndpointSpec{Name: "in", Dir: lciot.Sink, Schema: vitals}); err != nil {
		return err
	}

	// The legal channel is established; the illegal one is refused by IFC.
	if err := bus.Connect(lciot.PolicyEnginePrincipal, "sensor.out", "analyser.in"); err != nil {
		return err
	}
	err = bus.Connect(lciot.PolicyEnginePrincipal, "sensor.out", "advertiser.in")
	fmt.Printf("advertiser connect refused: %v\n", err)

	// Publish a reading.
	sensor, err := bus.Component("sensor")
	if err != nil {
		return err
	}
	m := lciot.NewMessage("vitals").
		Set("patient", lciot.Str("ann")).
		Set("heart-rate", lciot.Float(71))
	m.DataID = "reading-1"
	if _, err := sensor.Publish("out", m); err != nil {
		return err
	}

	// The audit log witnessed everything; the chain is tamper-evident.
	rep := lciot.Report(domain.Log())
	fmt.Printf("audit: %d records, chain intact: %v, denials: %d\n",
		rep.Total, rep.ChainIntact, len(rep.Denials))

	// Ask the provenance graph how reading-1 travelled, while the
	// original process is still alive.
	g := lciot.BuildProvenance(domain.Log().Select(nil))
	desc, err := g.Descendants("reading-1")
	if err != nil {
		return err
	}
	fmt.Printf("before restart: reading-1 reached %v\n", desc)
	return nil // deferred Close flushes the store
}

// replayAfterRestart opens the store a fresh process would find, verifies
// the recovered chain, and re-runs the provenance query purely from disk.
func replayAfterRestart(dataDir string) error {
	st, err := lciot.OpenAuditStore(dataDir+"/audit", lciot.AuditStoreOptions{})
	if err != nil {
		return fmt.Errorf("recovery: %w", err)
	}
	defer st.Close()

	recs, err := st.Records(0, 0)
	if err != nil {
		return err
	}
	fmt.Printf("after restart: recovered %d records, chain verified on open\n", len(recs))

	g := lciot.BuildProvenance(recs)
	desc, err := g.Descendants("reading-1")
	if err != nil {
		return err
	}
	fmt.Printf("after restart: reading-1 reached %v — the evidence survived\n", desc)
	return nil
}
