// Command quickstart is the smallest complete lciot program: one domain,
// a labelled sensor, a matching analyser, a public sink that the flow rule
// refuses, and the audit trail that proves both outcomes.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"lciot"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// A domain bundles a bus, policy engine, context store and audit log.
	domain, err := lciot.NewDomain("demo", lciot.Options{})
	if err != nil {
		return err
	}

	// A strongly-typed message schema (paper Section 8.2.2).
	vitals := lciot.MustSchema("vitals", lciot.Label{},
		lciot.Field{Name: "patient", Type: lciot.TString, Required: true},
		lciot.Field{Name: "heart-rate", Type: lciot.TFloat, Required: true},
	)

	// Ann's data is confidential: S={medical, ann}. Only components in an
	// equally or more constrained context may receive it.
	annCtx := lciot.MustContext([]lciot.Tag{"medical", "ann"}, nil)

	bus := domain.Bus()
	if _, err := bus.Register("sensor", "hospital", annCtx, nil,
		lciot.EndpointSpec{Name: "out", Dir: lciot.Source, Schema: vitals}); err != nil {
		return err
	}
	if _, err := bus.Register("analyser", "hospital", annCtx,
		func(m *lciot.Message, d lciot.Delivery) {
			hr, _ := m.Get("heart-rate")
			fmt.Printf("analyser received heart-rate %.0f from %s\n", hr.Float, d.From)
		},
		lciot.EndpointSpec{Name: "in", Dir: lciot.Sink, Schema: vitals}); err != nil {
		return err
	}
	if _, err := bus.Register("advertiser", "adtech-inc", lciot.SecurityContext{}, nil,
		lciot.EndpointSpec{Name: "in", Dir: lciot.Sink, Schema: vitals}); err != nil {
		return err
	}

	// The legal channel is established; the illegal one is refused by IFC.
	if err := bus.Connect(lciot.PolicyEnginePrincipal, "sensor.out", "analyser.in"); err != nil {
		return err
	}
	err = bus.Connect(lciot.PolicyEnginePrincipal, "sensor.out", "advertiser.in")
	fmt.Printf("advertiser connect refused: %v\n", err)

	// Publish a reading.
	sensor, err := bus.Component("sensor")
	if err != nil {
		return err
	}
	m := lciot.NewMessage("vitals").
		Set("patient", lciot.Str("ann")).
		Set("heart-rate", lciot.Float(71))
	m.DataID = "reading-1"
	if _, err := sensor.Publish("out", m); err != nil {
		return err
	}

	// The audit log witnessed everything; the chain is tamper-evident.
	rep := lciot.Report(domain.Log())
	fmt.Printf("audit: %d records, chain intact: %v, denials: %d\n",
		rep.Total, rep.ChainIntact, len(rep.Denials))
	return nil
}
