package main

import (
	"time"

	"lciot"
)

// newAnnSensor builds Ann's vitals sensor with a scripted tachycardia
// episode between samples 20 and 40 (deterministic seed).
func newAnnSensor() *lciot.VitalsSensor {
	s := lciot.NewVitalsSensor("ann-sensor", 70, 42, time.Unix(1700000000, 0), 10*time.Second)
	s.ScheduleEpisode(20, 40, 170)
	return s
}

// newAnnActuator models the actuatable sampling control on Ann's sensor.
func newAnnActuator() *lciot.Actuator {
	return lciot.NewActuator("ann-sensor", map[string][2]float64{
		"sample-interval": {1, 3600},
	})
}

// newTachycardiaPattern detects three readings over 120 bpm within ten
// minutes of event time.
func newTachycardiaPattern() lciot.Pattern {
	return &lciot.ThresholdPattern{
		PatternName: "tachycardia",
		Match: func(e lciot.Event) bool {
			return e.Type == "heart-rate" && e.Value > 120
		},
		Count:  3,
		Window: 10 * time.Minute,
	}
}
