// Command homemonitor reproduces the paper's Section 7 medical
// home-monitoring scenario end to end (Figs. 4-7):
//
//   - Ann's hospital-issued device streams vitals to her hospital data
//     analyser; Zeb's non-standard device cannot reach his analyser
//     directly (Fig. 4) and is bridged by the Device Input Sanitiser, an
//     endorser (Fig. 5).
//   - The Statistics Generator declassifies patient data into anonymised
//     ward statistics readable by the ward manager, who can never see raw
//     records (Fig. 6).
//   - The analyser detects a medical emergency; policy alerts the
//     emergency team, actuates the sensor to sample faster, and opens an
//     audited break-glass window that auto-reverts (Fig. 7).
//
// Run with:
//
//	go run ./examples/homemonitor
package main

import (
	"fmt"
	"log"

	"lciot"
)

// Security contexts from the paper's figures.
var (
	annCtx = lciot.MustContext(
		[]lciot.Tag{"medical", "ann"}, []lciot.Tag{"hosp-dev", "consent"})
	zebRawCtx = lciot.MustContext(
		[]lciot.Tag{"medical", "zeb"}, []lciot.Tag{"zeb-dev", "consent"})
	zebCleanCtx = lciot.MustContext(
		[]lciot.Tag{"medical", "zeb"}, []lciot.Tag{"hosp-dev", "consent"})
	statsCtx = lciot.MustContext(
		[]lciot.Tag{"medical", "stats"}, []lciot.Tag{"anon"})
)

var vitals = lciot.MustSchema("vitals", lciot.Label{},
	lciot.Field{Name: "patient", Type: lciot.TString, Required: true},
	lciot.Field{Name: "heart-rate", Type: lciot.TFloat, Required: true},
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	domain, err := lciot.NewDomain("hospital", lciot.Options{
		OnAlert: func(msg string) { fmt.Println("ALERT:", msg) },
	})
	if err != nil {
		return err
	}
	bus := domain.Bus()

	// --- Fig. 4: devices and analysers ---
	if _, err := bus.Register("ann-device", "hospital", annCtx, nil,
		lciot.EndpointSpec{Name: "out", Dir: lciot.Source, Schema: vitals}); err != nil {
		return err
	}
	if _, err := bus.Register("zeb-device", "zeb", zebRawCtx, nil,
		lciot.EndpointSpec{Name: "out", Dir: lciot.Source, Schema: vitals}); err != nil {
		return err
	}
	annAnalyser, err := registerAnalyser(domain, "ann-analyser", annCtx)
	if err != nil {
		return err
	}
	_ = annAnalyser
	if _, err = registerAnalyser(domain, "zeb-analyser", zebCleanCtx); err != nil {
		return err
	}

	if err := bus.Connect(lciot.PolicyEnginePrincipal, "ann-device.out", "ann-analyser.in"); err != nil {
		return err
	}
	// Zeb's raw device fails both halves of the flow rule against Ann's
	// analyser, and fails integrity against his own (needs hosp-dev).
	if err := bus.Connect(lciot.PolicyEnginePrincipal, "zeb-device.out", "ann-analyser.in"); err != nil {
		fmt.Println("Fig 4 — illegal flow prevented:", err)
	}
	if err := bus.Connect(lciot.PolicyEnginePrincipal, "zeb-device.out", "zeb-analyser.in"); err != nil {
		fmt.Println("Fig 5 — raw device refused, sanitiser required:", err)
	}

	// --- Fig. 5: the Device Input Sanitiser (an endorser) ---
	sanitiser, err := bus.Register("sanitiser", "hospital", zebRawCtx,
		nil, // handler set below: re-publishes in the clean context
		lciot.EndpointSpec{Name: "in", Dir: lciot.Sink, Schema: vitals},
		lciot.EndpointSpec{Name: "out", Dir: lciot.Source, Schema: vitals})
	if err != nil {
		return err
	}
	// The hospital grants exactly the privileges the endorsement needs.
	if err := sanitiser.Entity().GrantPrivileges(lciot.Privileges{
		AddIntegrity:    lciot.MustLabel("hosp-dev"),
		RemoveIntegrity: lciot.MustLabel("zeb-dev"),
	}); err != nil {
		return err
	}
	if err := bus.Connect(lciot.PolicyEnginePrincipal, "zeb-device.out", "sanitiser.in"); err != nil {
		return err
	}
	// The sanitiser endorses: change context, connect onward, forward.
	if err := sanitiser.SetContext(zebCleanCtx); err != nil {
		return err
	}
	if err := bus.Connect(lciot.PolicyEnginePrincipal, "sanitiser.out", "zeb-analyser.in"); err != nil {
		return err
	}
	fmt.Println("Fig 5 — sanitiser endorsed into", sanitiser.Context())

	// --- Fig. 6: the Statistics Generator (a declassifier) ---
	merged := lciot.MergeContexts(annCtx, zebCleanCtx)
	stats, err := bus.Register("stats-generator", "hospital", merged, nil,
		lciot.EndpointSpec{Name: "in", Dir: lciot.Sink, Schema: vitals},
		lciot.EndpointSpec{Name: "out", Dir: lciot.Source, Schema: vitals})
	if err != nil {
		return err
	}
	if _, err := bus.Register("ward-manager", "hospital", statsCtx,
		func(m *lciot.Message, _ lciot.Delivery) {
			hr, _ := m.Get("heart-rate")
			fmt.Printf("Fig 6 — ward manager sees anonymised mean %.1f\n", hr.Float)
		},
		lciot.EndpointSpec{Name: "in", Dir: lciot.Sink, Schema: vitals}); err != nil {
		return err
	}
	// Raw patient data cannot reach management.
	if err := bus.Connect(lciot.PolicyEnginePrincipal, "ann-device.out", "ward-manager.in"); err != nil {
		fmt.Println("Fig 6 — raw data to management prevented:", err)
	}
	// The generator holds the declassification privileges and crosses.
	if err := stats.Entity().GrantPrivileges(lciot.Privileges{
		AddSecrecy:      lciot.MustLabel("stats"),
		RemoveSecrecy:   lciot.MustLabel("ann", "zeb"),
		AddIntegrity:    lciot.MustLabel("anon"),
		RemoveIntegrity: lciot.MustLabel("hosp-dev", "consent"),
	}); err != nil {
		return err
	}
	if err := bus.Connect(lciot.PolicyEnginePrincipal, "ann-device.out", "stats-generator.in"); err != nil {
		return err
	}
	if err := stats.SetContext(statsCtx); err != nil {
		return err
	}
	if err := bus.Connect(lciot.PolicyEnginePrincipal, "stats-generator.out", "ward-manager.in"); err != nil {
		return err
	}
	anonMean := lciot.NewMessage("vitals").
		Set("patient", lciot.Str("<anonymised>")).
		Set("heart-rate", lciot.Float(71.4))
	if _, err := stats.Publish("out", anonMean); err != nil {
		return err
	}

	// --- Fig. 7: emergency detection, actuation, break-glass ---
	if err := setupEmergency(domain); err != nil {
		return err
	}
	// Stream Ann's vitals with a scripted emergency episode.
	annDevice, err := bus.Component("ann-device")
	if err != nil {
		return err
	}
	sensor := newAnnSensor()
	for i := 0; i < 45; i++ {
		r := sensor.Next()
		m := lciot.NewMessage("vitals").
			Set("patient", lciot.Str("ann")).
			Set("heart-rate", lciot.Float(r.Value))
		m.DataID = r.DataID()
		if _, err := annDevice.Publish("out", m); err != nil {
			return err
		}
		domain.FeedEvent(lciot.Event{Type: "heart-rate", Source: "ann-device", Time: r.At, Value: r.Value})
	}
	if rule, active := domain.PolicyEngine().OverrideActive(); active {
		fmt.Printf("Fig 7 — break-glass override open (rule %q)\n", rule)
	}

	// --- Audit: the compliance evidence (Section 8.3) ---
	rep := lciot.Report(domain.Log())
	fmt.Printf("audit: %d records, chain intact: %v, denials: %d, break-glass: %d\n",
		rep.Total, rep.ChainIntact, len(rep.Denials), len(rep.BreakGlass))
	graph := lciot.BuildProvenance(domain.Log().Select(nil))
	nodes, edges := graph.Len()
	fmt.Printf("provenance graph: %d nodes, %d edges\n", nodes, edges)

	// --- §3/§7: the obligations engine — GDPR-style lifecycle duties ---
	return gdprScenario(domain)
}

// registerAnalyser creates a patient data analyser that prints deliveries.
func registerAnalyser(domain *lciot.Domain, name string, ctx lciot.SecurityContext) (*lciot.Component, error) {
	return domain.Bus().Register(name, "hospital", ctx,
		func(m *lciot.Message, d lciot.Delivery) {
			p, _ := m.Get("patient")
			hr, _ := m.Get("heart-rate")
			if hr.Float > 120 {
				fmt.Printf("%s: %s heart-rate %.0f (elevated)\n", name, p.Str, hr.Float)
			}
		},
		lciot.EndpointSpec{Name: "in", Dir: lciot.Sink, Schema: vitals},
		lciot.EndpointSpec{Name: "alerts", Dir: lciot.Source, Schema: vitals})
}

// setupEmergency installs the Fig. 7 detection pattern, policy and devices.
func setupEmergency(domain *lciot.Domain) error {
	if _, err := domain.Bus().Register("emergency-team", "hospital", annCtx,
		func(m *lciot.Message, _ lciot.Delivery) {
			fmt.Println("Fig 7 — emergency team receiving live data")
		},
		lciot.EndpointSpec{Name: "in", Dir: lciot.Sink, Schema: vitals}); err != nil {
		return err
	}
	domain.Devices().RegisterActuator(newAnnActuator())
	domain.RegisterPattern(newTachycardiaPattern())
	domain.Store().Set("emergency", lciot.CtxBool(false))
	return domain.LoadPolicy(`
rule "emergency-response" priority 10 {
    on event "tachycardia"
    when not ctx.emergency
    do
        set emergency = true;
        alert "medical emergency detected for ann";
        breakglass 30m;
        connect "ann-analyser.alerts" -> "emergency-team.in";
        actuate "ann-sensor" "sample-interval" 1
}`)
}
