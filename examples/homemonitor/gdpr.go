package main

import (
	"errors"
	"fmt"
	"time"

	"lciot"
)

// gdprScenario exercises the obligations engine (§3/§7 of the paper): the
// lifecycle duties that come *after* a flow is allowed.
//
//  1. The hospital loads GDPR-style obligation clauses for Ann's tag:
//     retention, an erasure trigger, residency and purpose limitation.
//  2. Subject-access request: the provenance graph answers "where did
//     Ann's data end up, and who is responsible?".
//  3. Residency: a us-region cloud peer federates, but Ann's
//     eu-constrained stream is refused at link egress — the data never
//     leaves the allowed region, and the denial is audited.
//  4. Erasure request: an event triggers erasure of everything under the
//     tag; live state is purged, every derived record is tombstoned, and
//     the audit chain still verifies end to end.
func gdprScenario(domain *lciot.Domain) error {
	fmt.Println("--- GDPR scenario: retention, residency, erasure ---")

	// 1. Legal duties as policy. Loading compiles the clauses into the
	// obligation table; ApplyObligations then attaches the residency and
	// purpose facets wherever Ann's tag is used to label data.
	if err := domain.LoadPolicy(`
obligation "gdpr-ann" on ann {
  retain 720h;
  erase on "subject-erasure";
  residency eu;
  purpose treatment;
}`); err != nil {
		return err
	}
	tab := domain.ObligationTable()
	if s, ok := tab.Lookup("ann"); ok {
		fmt.Println("obligations —", s)
	}

	// A monitoring feed labelled under the obligation: the compiled
	// facets ride along automatically.
	feedCtx := domain.ApplyObligations(lciot.MustContext(
		[]lciot.Tag{"medical", "ann"}, []lciot.Tag{"hosp-dev", "consent"})).
		WithPurpose(lciot.MustLabel("treatment"))
	feed, err := domain.Bus().Register("ann-monitor-feed", "hospital", feedCtx, nil,
		lciot.EndpointSpec{Name: "out", Dir: lciot.Source, Schema: vitals})
	if err != nil {
		return err
	}
	fmt.Println("labelled under obligations —", feed.Context())

	// 2. Subject-access request: provenance over the audit trail (the
	// sensor's readings carry device/metric/seq provenance IDs).
	subject := "ann-sensor/heart-rate/1"
	desc, err := domain.Provenance().Descendants(subject)
	if err != nil {
		return fmt.Errorf("subject access: %w", err)
	}
	fmt.Printf("subject access — %s reached %d nodes\n", subject, len(desc))
	agents, err := domain.Provenance().Agents(subject)
	if err != nil {
		return fmt.Errorf("subject access: %w", err)
	}
	fmt.Printf("subject access — responsible agents: %v\n", agents)

	// 3. Residency: federate with a us-region cloud and try to ship Ann's
	// eu-constrained stream there. The hello carries the peer's declared
	// jurisdiction; egress is refused before any byte leaves.
	usCloud, err := lciot.NewDomain("us-cloud", lciot.Options{
		Jurisdiction: []lciot.Tag{"us"},
	})
	if err != nil {
		return err
	}
	if _, err := usCloud.Bus().Register("archive", "cloud",
		lciot.MustContext([]lciot.Tag{"medical", "ann"}, nil).
			WithJurisdiction(lciot.MustLabel("us")).WithPurpose(lciot.MustLabel("treatment")),
		nil, lciot.EndpointSpec{Name: "in", Dir: lciot.Sink, Schema: vitals}); err != nil {
		return err
	}
	net := lciot.NewMemNetwork()
	listener, err := net.Listen("us-cloud-addr")
	if err != nil {
		return err
	}
	defer listener.Close()
	go usCloud.Serve(listener)
	if _, err := domain.LinkPeer(net, "us-cloud-addr", 5*time.Second); err != nil {
		return err
	}
	err = domain.Bus().Connect(lciot.PolicyEnginePrincipal,
		"ann-monitor-feed.out", "us-cloud:archive.in")
	if errors.Is(err, lciot.ErrResidency) {
		fmt.Println("residency — egress to out-of-region peer blocked:", err)
	} else if err != nil {
		return err
	} else {
		return fmt.Errorf("residency-constrained data left the region")
	}

	// 4. The right to erasure: a subject-erasure detection triggers the
	// erase-on clause; everything under the tag — descendants included —
	// is purged and tombstoned.
	domain.RegisterPattern(&lciot.ThresholdPattern{
		PatternName: "subject-erasure", Types: []string{"erasure-request"}, Count: 1, Window: time.Hour,
	})
	domain.FeedEvent(lciot.Event{
		Type: "erasure-request", Source: "ann", Time: time.Now(), Value: 0,
	})
	rep := lciot.Report(domain.Log())
	fmt.Printf("erasure — %d records tombstoned, chain intact: %v\n",
		rep.Redacted, rep.ChainIntact)
	retention := lciot.RetentionReport(domain.Log().Select(nil), "ann", time.Now())
	fmt.Printf("erasure — retention report for tag ann: compliant=%v (checked %d, tombstoned %d)\n",
		retention.Compliant, retention.Checked, retention.Tombstoned)
	return nil
}
