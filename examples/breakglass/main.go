// Command breakglass isolates the paper's Concern 6 mechanism: "in an
// emergency, 'break-glass' policy overrides normal security constraints
// ... and replugging the sensor-data streams to make them available to the
// emergency response team", with the override audited and automatically
// reverted when it expires.
//
// It also shows the context-conditioned counterpart: a nurse's access that
// exists only while she is on duty, dropped by policy the moment her shift
// ends.
//
// Run with:
//
//	go run ./examples/breakglass
package main

import (
	"fmt"
	"log"
	"sync"
	"time"

	"lciot"
)

var vitals = lciot.MustSchema("vitals", lciot.Label{},
	lciot.Field{Name: "patient", Type: lciot.TString, Required: true},
	lciot.Field{Name: "heart-rate", Type: lciot.TFloat, Required: true},
)

var patientCtx = lciot.MustContext([]lciot.Tag{"medical", "ann"}, nil)

// simClock drives the scenario deterministically.
type simClock struct {
	mu  sync.Mutex
	now time.Time
}

func (c *simClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *simClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(d)
}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	clock := &simClock{now: time.Unix(1700000000, 0)}
	domain, err := lciot.NewDomain("home-care", lciot.Options{
		Clock:   clock.Now,
		OnAlert: func(m string) { fmt.Println("ALERT:", m) },
	})
	if err != nil {
		return err
	}
	bus := domain.Bus()

	for _, spec := range []struct {
		name string
		ctx  lciot.SecurityContext
		dir  lciot.EndpointSpec
	}{
		{"ann-sensors", patientCtx, lciot.EndpointSpec{Name: "out", Dir: lciot.Source, Schema: vitals}},
		{"nurse-app", patientCtx, lciot.EndpointSpec{Name: "in", Dir: lciot.Sink, Schema: vitals}},
		{"emergency-team", patientCtx, lciot.EndpointSpec{Name: "in", Dir: lciot.Sink, Schema: vitals}},
	} {
		if _, err := bus.Register(spec.name, "care-provider", spec.ctx, nil, spec.dir); err != nil {
			return err
		}
	}

	// Policy: shift-conditioned access plus the break-glass emergency rule.
	if err := domain.LoadPolicy(`
rule "shift-start" {
    on context nurse-on-duty
    when ctx.nurse-on-duty
    do connect "ann-sensors.out" -> "nurse-app.in"; alert "nurse connected"
}
rule "shift-end" {
    on context nurse-on-duty
    when not ctx.nurse-on-duty
    do disconnect "ann-sensors.out" -> "nurse-app.in"; alert "nurse disconnected"
}
rule "emergency" priority 10 {
    on context emergency
    when ctx.emergency
    do
        breakglass 15m;
        connect "ann-sensors.out" -> "emergency-team.in";
        alert "break-glass: emergency team plugged in"
}`); err != nil {
		return err
	}

	show := func(stage string) {
		fmt.Printf("%-28s channels: %v\n", stage, bus.Channels())
	}

	// Shift lifecycle.
	domain.Store().Set("nurse-on-duty", lciot.CtxBool(true))
	show("after shift start:")
	domain.Store().Set("nurse-on-duty", lciot.CtxBool(false))
	show("after shift end:")

	// Emergency: the override opens, the team is plugged in.
	domain.Store().Set("emergency", lciot.CtxBool(true))
	show("during emergency:")
	if rule, active := domain.PolicyEngine().OverrideActive(); active {
		fmt.Printf("override active (rule %q)\n", rule)
	}

	// Sixteen minutes later the override expires and the replug reverts.
	clock.Advance(16 * time.Minute)
	domain.Store().Set("emergency", lciot.CtxBool(false))
	domain.Tick()
	show("after override expiry:")

	rep := lciot.Report(domain.Log())
	fmt.Printf("audit: %d records, break-glass events: %d, chain intact: %v\n",
		rep.Total, len(rep.BreakGlass), rep.ChainIntact)
	return nil
}
