// Package lciot is policy-driven middleware for a legally-compliant
// Internet of Things: a Go implementation of the architecture proposed by
// Singh et al., "Big ideas paper: Policy-driven middleware for a
// legally-compliant Internet of Things" (Middleware 2016).
//
// The library provides, end to end:
//
//   - Decentralised Information Flow Control: tags, secrecy/integrity
//     labels, privileges, declassifier/endorser gates (Section 6 of the
//     paper).
//   - A reconfigurable, strongly-typed messaging substrate with IFC
//     enforcement at channel establishment and per message, message-layer
//     tags with attribute quenching, and third-party reconfiguration
//     (Sections 8.1, 8.2).
//   - A policy language and engine: ECA rules over events, context and
//     timers, with priority-based conflict resolution and break-glass
//     overrides that revert automatically (Sections 3.1, 5).
//   - Complex event detection, a context model, simulated devices,
//     gateways for constrained subsystems, and cloud hosts with an
//     IFC-enforcing kernel.
//   - Tamper-evident audit of every attempted flow and provenance graphs
//     derived from the logs (Section 8.3).
//   - Federation between administrative domains over TCP or an in-memory
//     simulated network, gated by remote attestation.
//
// The top-level entry point is Domain (see NewDomain). A minimal system:
//
//	d, err := lciot.NewDomain("hospital", lciot.Options{})
//	// register components on d.Bus(), load policy with d.LoadPolicy(...)
//
// See examples/quickstart for a complete runnable program, and DESIGN.md
// for the layer map, the substitution table and the mapping from the
// paper's figures to this implementation.
package lciot

import (
	"lciot/internal/ac"
	"lciot/internal/attest"
	"lciot/internal/audit"
	"lciot/internal/cep"
	"lciot/internal/core"
	"lciot/internal/ctxmodel"
	"lciot/internal/device"
	"lciot/internal/fault"
	"lciot/internal/gateway"
	"lciot/internal/ifc"
	"lciot/internal/msg"
	"lciot/internal/names"
	"lciot/internal/obligation"
	"lciot/internal/policy"
	"lciot/internal/sbus"
	"lciot/internal/store"
	"lciot/internal/telemetry"
	"lciot/internal/transport"
)

// --- IFC model (paper Section 6) ---

type (
	// Tag names one security concern, e.g. "medical" or "eu/personal-data".
	Tag = ifc.Tag
	// Label is an immutable set of tags.
	Label = ifc.Label
	// SecurityContext pairs a secrecy and an integrity label.
	SecurityContext = ifc.SecurityContext
	// Privileges are the four tag sets authorising label changes.
	Privileges = ifc.Privileges
	// Gate bridges security context domains (declassifier/endorser).
	Gate = ifc.Gate
	// GateRegistry holds a domain's installed gates and answers cached
	// routability queries.
	GateRegistry = ifc.GateRegistry
	// Entity is a labelled active or passive entity.
	Entity = ifc.Entity
	// PrincipalID identifies a principal (person, organisation, service).
	PrincipalID = ifc.PrincipalID
	// FlowDecision explains a flow check outcome.
	FlowDecision = ifc.FlowDecision
)

// IFC constructors and checks re-exported from the model.
var (
	// NewLabel builds a validated label.
	NewLabel = ifc.NewLabel
	// MustLabel builds a label from constant tags, panicking on error.
	MustLabel = ifc.MustLabel
	// NewContext builds a validated security context.
	NewContext = ifc.NewContext
	// MustContext builds a context from constant tags.
	MustContext = ifc.MustContext
	// CheckFlow evaluates the flow rule with a full explanation.
	CheckFlow = ifc.CheckFlow
	// EnforceFlow returns an error when the flow rule denies.
	EnforceFlow = ifc.EnforceFlow
	// MergeContexts computes the least upper bound of contexts.
	MergeContexts = ifc.MergeContexts
	// OwnerPrivileges returns full privileges over the given tags.
	OwnerPrivileges = ifc.OwnerPrivileges
	// NewEntity creates an active labelled entity (gate operators, ad hoc
	// processes); bus components get their entities automatically.
	NewEntity = ifc.NewEntity
	// ErrFlowDenied matches IFC denials via errors.Is.
	ErrFlowDenied = ifc.ErrFlowDenied
	// InvalidateFlowCache retires every cached flow decision in the
	// process; control planes call it when privileges or gates change.
	InvalidateFlowCache = ifc.InvalidateFlowCache
)

// --- Middleware core ---

type (
	// Domain is one administrative domain: bus, policy engine, context
	// store, audit log, devices, TPM.
	Domain = core.Domain
	// Options configures a Domain.
	Options = core.Options
	// SubsystemHealth is one subsystem's position on the degradation
	// ladder (Domain.Health reports them).
	SubsystemHealth = core.SubsystemHealth
	// HealthState is one rung of the ladder: ok, degraded or failed.
	HealthState = core.HealthState
)

// Degradation-ladder rungs.
const (
	HealthOK       = core.HealthOK
	HealthDegraded = core.HealthDegraded
	HealthFailed   = core.HealthFailed
)

var (
	// NewDomain assembles a domain.
	NewDomain = core.NewDomain
	// PolicyEnginePrincipal is the identity of the domain policy engine.
	PolicyEnginePrincipal = core.PolicyEnginePrincipal
)

// --- Messaging substrate (paper Sections 8.1, 8.2) ---

type (
	// Bus is one messaging substrate instance.
	Bus = sbus.Bus
	// Component is one "thing" on a bus.
	Component = sbus.Component
	// EndpointSpec declares a typed endpoint.
	EndpointSpec = sbus.EndpointSpec
	// Handler consumes delivered messages.
	Handler = sbus.Handler
	// Delivery carries delivery metadata.
	Delivery = sbus.Delivery
	// ControlOp is a serialisable reconfiguration instruction (Fig. 8).
	ControlOp = sbus.ControlOp
	// LinkConfig tunes cross-bus link behaviour (queue bound, backpressure
	// timeout, reconnect backoff and budget).
	LinkConfig = sbus.LinkConfig
	// LinkStatus is a point-in-time snapshot of one cross-bus link.
	LinkStatus = sbus.LinkStatus
	// LinkState is a link lifecycle state (up / reconnecting / closed).
	LinkState = sbus.LinkState
	// ShardStats is a point-in-time view of one bus shard.
	ShardStats = sbus.ShardStats
	// Message is a typed message instance.
	Message = msg.Message
	// Schema declares a message type.
	Schema = msg.Schema
	// Field declares one message attribute.
	Field = msg.Field
)

// Endpoint directions.
const (
	Source = sbus.Source
	Sink   = sbus.Sink
)

// Link lifecycle states.
const (
	LinkUp           = sbus.LinkUp
	LinkReconnecting = sbus.LinkReconnecting
	LinkClosed       = sbus.LinkClosed
)

// Message field types.
const (
	TString = msg.TString
	TFloat  = msg.TFloat
	TInt    = msg.TInt
	TBool   = msg.TBool
	TBytes  = msg.TBytes
)

// Messaging constructors.
var (
	// NewBus builds a standalone single-shard bus (Domains build their own).
	NewBus = sbus.NewBus
	// NewShardedBus builds a standalone bus with routing and dispatch
	// partitioned across the given number of shards.
	NewShardedBus = sbus.NewShardedBus
	// NewSchema builds a validated message schema.
	NewSchema = msg.NewSchema
	// MustSchema builds a schema from constant fields.
	MustSchema = msg.MustSchema
	// NewMessage builds an empty message of a type.
	NewMessage = msg.New
	// Str, Float, Int, Bool and Bytes build message values.
	Str   = msg.Str
	Float = msg.Float
	Int   = msg.Int
	Bool  = msg.Bool
	Bytes = msg.Bytes
)

// --- Policy (paper Sections 3.1, 5) ---

type (
	// PolicySet is a parsed rule collection.
	PolicySet = policy.PolicySet
	// PolicyEngine evaluates rules and emits actions.
	PolicyEngine = policy.Engine
	// Action is one reconfiguration instruction emitted by policy.
	Action = policy.Action
	// Conflict reports two rules contending for one resource.
	Conflict = policy.Conflict
)

var (
	// ParsePolicy compiles policy source.
	ParsePolicy = policy.Parse
)

// --- Events, context, devices ---

type (
	// Event is one observation fed to detection.
	Event = cep.Event
	// Detection is a matched pattern instance.
	Detection = cep.Detection
	// Pattern inspects the event stream.
	Pattern = cep.Pattern
	// ThresholdPattern fires on N matching events within a window.
	ThresholdPattern = cep.Threshold
	// SequencePattern fires on ordered steps within a window.
	SequencePattern = cep.Sequence
	// AbsencePattern fires when a stream goes silent.
	AbsencePattern = cep.Absence
	// AggregatePattern fires when a windowed aggregate crosses a limit.
	AggregatePattern = cep.Aggregate
	// ContextStore holds the environmental context.
	ContextStore = ctxmodel.Store
	// ContextValue is a typed context attribute value.
	ContextValue = ctxmodel.Value
	// VitalsSensor is a deterministic synthetic medical sensor.
	VitalsSensor = device.VitalsSensor
	// EnvironmentSensor is a deterministic random-walk sensor.
	EnvironmentSensor = device.EnvironmentSensor
	// Actuator accepts validated commands.
	Actuator = device.Actuator
	// Reading is one sensor sample.
	Reading = device.Reading
)

// Context value and device constructors.
var (
	CtxString = ctxmodel.String
	CtxNumber = ctxmodel.Number
	CtxBool   = ctxmodel.Bool
	CtxTime   = ctxmodel.Time
	// NewVitalsSensor builds a deterministic synthetic vitals sensor.
	NewVitalsSensor = device.NewVitalsSensor
	// NewEnvironmentSensor builds a deterministic environmental sensor.
	NewEnvironmentSensor = device.NewEnvironmentSensor
	// NewActuator builds a command-validated actuator.
	NewActuator = device.NewActuator
)

// --- Audit & provenance (paper Section 8.3) ---

type (
	// AuditLog is a tamper-evident flow log.
	AuditLog = audit.Log
	// AuditRecord is one audit event.
	AuditRecord = audit.Record
	// ProvenanceGraph is the derived audit graph (Fig. 11).
	ProvenanceGraph = audit.Graph
	// ComplianceReport summarises a log for a regulator.
	ComplianceReport = audit.ComplianceReport
	// AuditStoreOptions configures a durable store (segment size, retention).
	AuditStoreOptions = store.Options
	// DurableAuditStore is the disk tier of the audit log: a segmented,
	// hash-chained WAL with group commit and crash recovery.
	DurableAuditStore = store.AuditStore
)

var (
	// BuildProvenance derives a provenance graph from audit records.
	BuildProvenance = audit.BuildGraph
	// Report builds a compliance report over a log.
	Report = audit.Report
	// OpenAuditStore opens and recovers a durable audit store directory
	// (Domains with Options.DataDir do this automatically).
	OpenAuditStore = store.OpenAudit
	// ErrAuditDegraded matches the durable store's sticky degraded-mode
	// error via errors.Is; it wraps the root I/O cause (e.g. ENOSPC).
	ErrAuditDegraded = store.ErrDegraded
)

// --- Fault injection (chaos drills, robustness tests) ---

type (
	// FaultAction is what an armed failpoint does when it fires: inject an
	// error, delay, cap a write, or drop the operation.
	FaultAction = fault.Action
	// FaultProgram is a deterministic trigger program (once, every-N, ...).
	FaultProgram = fault.Program
	// FaultPointState snapshots one registered failpoint for status output.
	FaultPointState = fault.PointState
)

var (
	// SetFaults arms failpoints from a spec string — the same grammar as
	// lciotd's -faults flag, e.g. "store.wal.write=once(enospc)".
	SetFaults = fault.Set
	// ArmFault arms one named failpoint with a trigger program.
	ArmFault = fault.Arm
	// DisarmFaults disarms every armed failpoint.
	DisarmFaults = fault.DisarmAll
	// FaultSnapshot lists every registered failpoint and its state.
	FaultSnapshot = fault.Snapshot
	// ErrInjected matches injected failures via errors.Is (injected errors
	// also match their root cause, e.g. syscall.ENOSPC).
	ErrInjected = fault.ErrInjected
)

// --- Obligations: retention, erasure, residency, purpose limitation ---

type (
	// ObligationTable is a domain's compiled per-tag obligation sets.
	ObligationTable = obligation.Table
	// ObligationSet is the compiled duties attached to one tag.
	ObligationSet = obligation.Set
	// ObligationLintOptions configures LintObligations.
	ObligationLintOptions = obligation.LintOptions
	// RetentionCompliance is the regulator-facing retention proof for one
	// tag: "all data under T older than D is gone or tombstoned".
	RetentionCompliance = audit.RetentionCompliance
	// Gateway bridges constrained devices onto a bus (re-exported so
	// erasure propagation can be wired with Domain.AttachGateway).
	Gateway = gateway.Gateway
)

var (
	// CompileObligations builds an obligation table from parsed clauses.
	CompileObligations = obligation.Compile
	// LintObligations statically checks obligation declarations.
	LintObligations = obligation.Lint
	// DefaultJurisdictions is the linter's built-in jurisdiction registry.
	DefaultJurisdictions = obligation.DefaultJurisdictions
	// RetentionReport proves (or refutes) retention compliance for a tag.
	RetentionReport = audit.RetentionReport
	// NewGateway registers a gateway component on a bus.
	NewGateway = gateway.New
	// ErrResidency matches link-egress residency denials via errors.Is.
	ErrResidency = sbus.ErrResidency
)

// FacetNone is the reserved jurisdiction/purpose tag meaning "allowed
// nowhere": disjoint obligation constraints collapse to it when contexts
// merge.
const FacetNone = ifc.FacetNone

// --- Access control, naming, attestation, transport ---

type (
	// ACL is the role-based access-control list guarding PEPs.
	ACL = ac.ACL
	// Role is a parametrised role.
	Role = ac.Role
	// Permission grants an action over a resource pattern.
	Permission = ac.Permission
	// Assignment activates a role for a principal.
	Assignment = ac.Assignment
	// TagZone is an authoritative tag namespace zone.
	TagZone = names.Zone
	// TagRecord is the authoritative description of a tag.
	TagRecord = names.TagRecord
	// TagResolver resolves tags through the zone tree.
	TagResolver = names.Resolver
	// AttestationPolicy states what a verifier requires of a platform.
	AttestationPolicy = attest.Policy
	// Network abstracts the byte transport (TCP or in-memory).
	Network = transport.Network
)

var (
	// NewTagRoot creates an empty root zone.
	NewTagRoot = names.NewRoot
	// NewTagResolver builds a resolver over a zone tree.
	NewTagResolver = names.NewResolver
	// NewMemNetwork builds the in-memory simulated network.
	NewMemNetwork = transport.NewMemNetwork
)

// --- Telemetry: metrics and end-to-end flow tracing ---

type (
	// TelemetryRegistry holds named metric series; Domain.Metrics returns
	// the process-wide default registry lciotd's /metrics endpoint serves.
	TelemetryRegistry = telemetry.Registry
	// Metric is one series in a registry snapshot.
	Metric = telemetry.Metric
	// TraceID is a 128-bit flow identifier (32 hex digits in audit
	// records and span events).
	TraceID = telemetry.TraceID
	// TraceSpan is one timestamped event on a flow trace.
	TraceSpan = telemetry.Span
	// FlowTrace groups the buffered spans of one trace ID.
	FlowTrace = telemetry.Trace
	// SkewReport summarises lane-load imbalance across the parallel plane;
	// Domain.SkewReport builds one.
	SkewReport = telemetry.SkewReport
	// LaneLoad is one lane's row in a SkewReport.
	LaneLoad = telemetry.LaneLoad
	// HotComponent is one of a SkewReport's busiest components.
	HotComponent = telemetry.HotComponent
)

var (
	// EnableTelemetry turns recording instruments on process-wide.
	// Telemetry is off by default: a disabled instrument costs one atomic
	// load, so libraries embed instruments unconditionally and daemons
	// opt in at boot (lciotd does).
	EnableTelemetry = telemetry.Enable
	// DisableTelemetry turns recording instruments back off.
	DisableTelemetry = telemetry.Disable
	// TelemetrySnapshot reads every series in the default registry.
	TelemetrySnapshot = telemetry.Snapshot
	// FindMetric locates a series in a snapshot by name and label pairs.
	FindMetric = telemetry.Find
	// SetTraceSampling sets head-based flow-trace sampling: every n-th
	// publish starts a trace; 0 disables (error spans still record).
	SetTraceSampling = telemetry.SetTraceSampling
	// TraceSampling reports the current head-sampling rate.
	TraceSampling = telemetry.TraceSampling
	// FlowTraces groups the buffered span events by trace, oldest first.
	FlowTraces = telemetry.Traces
	// SetStageSampling arms per-message stage-latency attribution on every
	// n-th publish; 0 disables (the default — one atomic load per publish).
	SetStageSampling = telemetry.SetStageSampling
	// StageSampling reports the current stage-attribution sampling rate.
	StageSampling = telemetry.StageSampling
	// StageEdges lists the local stage-edge metric names in pipeline order.
	StageEdges = telemetry.StageEdges
)

// TCP is the production transport over real sockets.
var TCP transport.Network = transport.TCPNetwork{}

// ErrLinkDown is returned when a cross-bus operation has no live link and
// no prospect of one (peer never linked, retry budget exhausted, or link
// closed).
var ErrLinkDown = sbus.ErrLinkDown
