package main

import (
	"encoding/json"
	"os"
	"strings"
	"testing"

	"lciot"
)

// TestSampleConfigLoads builds a full domain from the shipped testdata
// configuration (everything except the blocking daemon loop).
func TestSampleConfigLoads(t *testing.T) {
	raw, err := os.ReadFile("testdata/hospital.json")
	if err != nil {
		t.Fatal(err)
	}
	var cfg config
	if err := json.Unmarshal(raw, &cfg); err != nil {
		t.Fatal(err)
	}
	if cfg.Domain != "hospital" || len(cfg.Schemas) != 1 || len(cfg.Components) != 2 {
		t.Fatalf("config = %+v", cfg)
	}
	domain, err := lciot.NewDomain(cfg.Domain, lciot.Options{})
	if err != nil {
		t.Fatal(err)
	}
	schemas, err := buildSchemas(cfg.Schemas)
	if err != nil {
		t.Fatal(err)
	}
	if err := registerComponents(domain, cfg.Components, schemas); err != nil {
		t.Fatal(err)
	}
	for _, ch := range cfg.Channels {
		if err := domain.Bus().Connect(lciot.PolicyEnginePrincipal, ch.Src, ch.Dst); err != nil {
			t.Fatalf("channel %s -> %s: %v", ch.Src, ch.Dst, err)
		}
	}
	src, err := os.ReadFile("testdata/hospital.lcp")
	if err != nil {
		t.Fatal(err)
	}
	if err := domain.LoadPolicy(string(src)); err != nil {
		t.Fatal(err)
	}
	if got := len(domain.Bus().Channels()); got != 1 {
		t.Fatalf("channels = %d", got)
	}
}

func TestBuildSchemas(t *testing.T) {
	schemas, err := buildSchemas([]schemaConfig{
		{Name: "vitals", Fields: []fieldConfig{
			{Name: "patient", Type: "string", Required: true},
			{Name: "heart-rate", Type: "float", Required: true},
			{Name: "count", Type: "int"},
			{Name: "ambulatory", Type: "bool"},
			{Name: "raw", Type: "bytes"},
			{Name: "plate", Type: "string", Secrecy: []string{"pii"}},
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	s := schemas["vitals"]
	if s == nil {
		t.Fatal("schema missing")
	}
	f, ok := s.Field("plate")
	if !ok || !f.Secrecy.Has("pii") {
		t.Fatalf("plate field = %+v, %v", f, ok)
	}
	if f, _ := s.Field("patient"); !f.Required {
		t.Fatal("required lost")
	}
}

func TestBuildSchemasErrors(t *testing.T) {
	if _, err := buildSchemas([]schemaConfig{
		{Name: "s", Fields: []fieldConfig{{Name: "x", Type: "quaternion"}}},
	}); err == nil || !strings.Contains(err.Error(), "unknown type") {
		t.Fatalf("unknown type = %v", err)
	}
	if _, err := buildSchemas([]schemaConfig{
		{Name: "s", Fields: []fieldConfig{{Name: "x", Type: "string", Secrecy: []string{"bad tag"}}}},
	}); err == nil {
		t.Fatal("invalid secrecy tag accepted")
	}
}

func TestRegisterComponents(t *testing.T) {
	domain, err := lciot.NewDomain("test", lciot.Options{})
	if err != nil {
		t.Fatal(err)
	}
	schemas, err := buildSchemas([]schemaConfig{
		{Name: "vitals", Fields: []fieldConfig{{Name: "patient", Type: "string", Required: true}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	cfgs := []componentConfig{
		{
			Name: "sensor", Principal: "hospital",
			Secrecy: []string{"medical", "ann"},
			Endpoints: []endpointConfig{
				{Name: "out", Dir: "source", Schema: "vitals"},
			},
		},
		{
			Name: "analyser", Principal: "hospital",
			Secrecy: []string{"medical", "ann"}, Clearance: []string{"A"},
			LogDeliveries: true,
			Endpoints: []endpointConfig{
				{Name: "in", Dir: "sink", Schema: "vitals"},
			},
		},
	}
	if err := registerComponents(domain, cfgs, schemas); err != nil {
		t.Fatal(err)
	}
	comp, err := domain.Bus().Component("analyser")
	if err != nil {
		t.Fatal(err)
	}
	if !comp.Clearance().Has("A") {
		t.Fatal("clearance not applied")
	}
	if err := domain.Bus().Connect(lciot.PolicyEnginePrincipal, "sensor.out", "analyser.in"); err != nil {
		t.Fatal(err)
	}
}

func TestRegisterComponentsErrors(t *testing.T) {
	domain, err := lciot.NewDomain("test2", lciot.Options{})
	if err != nil {
		t.Fatal(err)
	}
	schemas := map[string]*lciot.Schema{}
	tests := []struct {
		name string
		cfg  componentConfig
		frag string
	}{
		{
			"unknown-schema",
			componentConfig{Name: "c", Endpoints: []endpointConfig{{Name: "e", Dir: "source", Schema: "ghost"}}},
			"unknown schema",
		},
		{
			"bad-dir",
			componentConfig{Name: "c", Endpoints: []endpointConfig{{Name: "e", Dir: "sideways", Schema: "v"}}},
			"",
		},
		{
			"bad-tag",
			componentConfig{Name: "c", Secrecy: []string{"bad tag"}},
			"",
		},
	}
	vs, err := buildSchemas([]schemaConfig{{Name: "v", Fields: []fieldConfig{{Name: "x", Type: "int"}}}})
	if err != nil {
		t.Fatal(err)
	}
	schemas["v"] = vs["v"]
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := registerComponents(domain, []componentConfig{tt.cfg}, schemas)
			if err == nil {
				t.Fatal("bad config accepted")
			}
			if tt.frag != "" && !strings.Contains(err.Error(), tt.frag) {
				t.Fatalf("error %v missing %q", err, tt.frag)
			}
		})
	}
}
