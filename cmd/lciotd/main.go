// Command lciotd runs one lciot middleware node (an administrative domain)
// from a JSON configuration: it registers the declared schemas and
// components, loads policy, establishes the configured channels, serves
// federation links on TCP, and on shutdown (SIGINT/SIGTERM) exports the
// audit log for offline verification with auditview.
//
// Usage:
//
//	lciotd -config node.json [-data-dir DIR] [-pump comp.endpoint=HZ]
//	       [-listen HOST:PORT] [-peer HOST:PORT ...] [-sweep-every DUR]
//	       [-faults SPEC] [-metrics-addr HOST:PORT] [-trace-sample N]
//
// Two daemons federate over real TCP: one listens (-listen or "listen" in
// the configuration), the other dials it (-peer or "peers"). Peer links
// speak link protocol v2 (binary framed, batched) and self-heal: if the
// peer dies, the dialing side reconnects with exponential backoff and
// resumes the session — re-establishing every cross-node channel through
// the peer's ingress re-validation — and the daemon logs each link state
// transition. Channels whose "dst" names a peer bus ("peerdomain:comp.ep")
// are established after the links come up.
//
// With -data-dir (or "data_dir" in the configuration) the audit trail is
// durable: records are group-committed to a segmented hash-chained store
// under DIR/audit, and on boot the store is recovered — torn tail
// truncated, chain verified — and the in-memory log resumes the persisted
// chain, so a crash (even SIGKILL) loses at most the uncommitted tail.
// Inspect or verify the directory offline with "auditview verify DIR".
//
// -pump publishes synthetic messages on a configured source endpoint at
// the given rate — a self-contained ingest driver for soak and
// crash-recovery testing (the CI kill test uses it).
//
// -faults arms deterministic failpoints for chaos drills ("name=mode(args)"
// specs separated by ';', e.g. "store.wal.fsync=everyN(10,eio)"): the daemon
// then exercises its degradation ladder — a WAL failure flips the audit
// store to degraded in-memory buffering instead of wedging ingest — and
// every subsystem health transition (ok/degraded/failed) is logged. The
// periodic status line reports the overload counters (bus handoff
// overflows, per-link send-queue depth and high-water) so an operator can
// see pressure building before a rung drops.
//
// -metrics-addr starts the operator surface: an HTTP listener serving
// /metrics (Prometheus text), /healthz (the degradation ladder as JSON;
// 503 once any subsystem has failed), /traces (recent sampled flow traces
// as JSON) and net/http/pprof under /debug/pprof/. Telemetry recording is
// enabled at boot either way — the flag only controls the listener.
// -trace-sample N samples one publish in N into an end-to-end flow trace
// (0, the default, disables head sampling; denials and degradations are
// always traced).
//
// Obligation clauses in the policy file (retention, erasure, residency,
// purpose) are compiled on load; "jurisdiction" declares where the node
// resides (sent to federation peers for residency enforcement), and
// "sweep_every"/-sweep-every runs the retention sweep on a cadence. On
// boot, outstanding retention deadlines are rescheduled from the durable
// store, so an interrupted sweep resumes from the WAL. Verify erasure
// offline with "auditview retention DIR <tag> <age>".
//
// A minimal configuration:
//
//	{
//	  "domain": "hospital",
//	  "listen": "127.0.0.1:7000",
//	  "policy_file": "hospital.lcp",
//	  "audit_export": "audit.json",
//	  "schemas": [
//	    {"name": "vitals", "fields": [
//	      {"name": "patient", "type": "string", "required": true},
//	      {"name": "heart-rate", "type": "float", "required": true}]}
//	  ],
//	  "components": [
//	    {"name": "sensor", "principal": "hospital",
//	     "secrecy": ["medical","ann"], "integrity": [],
//	     "endpoints": [{"name": "out", "dir": "source", "schema": "vitals"}]},
//	    {"name": "analyser", "principal": "hospital",
//	     "secrecy": ["medical","ann"], "integrity": [], "log_deliveries": true,
//	     "endpoints": [{"name": "in", "dir": "sink", "schema": "vitals"}]}
//	  ],
//	  "channels": [{"src": "sensor.out", "dst": "analyser.in"}]
//	}
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"syscall"
	"time"

	"lciot"
	"lciot/internal/audit"
)

// config is the lciotd configuration file schema.
type config struct {
	Domain      string   `json:"domain"`
	Listen      string   `json:"listen,omitempty"`
	Peers       []string `json:"peers,omitempty"`
	PolicyFile  string   `json:"policy_file,omitempty"`
	AuditExport string   `json:"audit_export,omitempty"`
	DataDir     string   `json:"data_dir,omitempty"`
	// Jurisdiction declares where this node resides; it travels in the
	// federation hello so peers can enforce residency obligations before
	// data leaves a region.
	Jurisdiction []string `json:"jurisdiction,omitempty"`
	// SweepEvery is the obligation sweep cadence as a Go duration string
	// ("1s", "30s"); empty disables the background sweep loop (Tick-style
	// callers may still sweep manually).
	SweepEvery string `json:"sweep_every,omitempty"`
	// Shards partitions the bus's routing and dispatch across that many
	// shards (see the README scaling guide). 0 or 1 keeps the classic
	// single-shard bus.
	Shards int `json:"shards,omitempty"`
	// MetricsAddr starts the operator HTTP surface (/metrics, /healthz,
	// /traces, pprof) on this address; empty disables the listener.
	MetricsAddr string `json:"metrics_addr,omitempty"`
	// TraceSample samples one publish in N into a flow trace; 0 disables
	// head sampling (error spans still record).
	TraceSample int `json:"trace_sample,omitempty"`
	// StageSample arms the per-message stage clock on one publish in N,
	// attributing end-to-end latency to pipeline edges (the stage_*_ns
	// histograms and the /lanes endpoint); 0 disables — an unarmed publish
	// costs one atomic load.
	StageSample int               `json:"stage_sample,omitempty"`
	Schemas     []schemaConfig    `json:"schemas"`
	Components  []componentConfig `json:"components"`
	Channels    []channelConfig   `json:"channels"`
}

type schemaConfig struct {
	Name   string        `json:"name"`
	Fields []fieldConfig `json:"fields"`
}

type fieldConfig struct {
	Name     string   `json:"name"`
	Type     string   `json:"type"` // string, float, int, bool, bytes
	Required bool     `json:"required,omitempty"`
	Secrecy  []string `json:"secrecy,omitempty"` // message-layer tags
}

type componentConfig struct {
	Name      string   `json:"name"`
	Principal string   `json:"principal"`
	Secrecy   []string `json:"secrecy"`
	Integrity []string `json:"integrity"`
	// Jurisdiction and Purposes are the component's declared obligation
	// facets (where it resides, what it processes for); obligated data
	// only flows to components declaring facets within the allowed sets.
	Jurisdiction  []string         `json:"jurisdiction,omitempty"`
	Purposes      []string         `json:"purposes,omitempty"`
	Clearance     []string         `json:"clearance,omitempty"`
	LogDeliveries bool             `json:"log_deliveries,omitempty"`
	Endpoints     []endpointConfig `json:"endpoints"`
}

type endpointConfig struct {
	Name   string `json:"name"`
	Dir    string `json:"dir"` // source or sink
	Schema string `json:"schema"`
}

type channelConfig struct {
	Src string `json:"src"`
	Dst string `json:"dst"`
}

func main() {
	configPath := flag.String("config", "", "path to node configuration (JSON)")
	dataDir := flag.String("data-dir", "", "durable audit store directory (overrides config data_dir)")
	pump := flag.String("pump", "", "publish synthetic messages: component.endpoint=hz")
	listen := flag.String("listen", "", "federation listen address (overrides config listen)")
	sweepEvery := flag.String("sweep-every", "", "obligation sweep cadence, e.g. 1s (overrides config sweep_every)")
	shards := flag.Int("shards", 0, "bus shard count, 0 = config shards or single-shard (set near the core count on busy multi-core nodes)")
	faults := flag.String("faults", "", "arm deterministic failpoints for a chaos drill: name=mode(args);... (see internal/fault)")
	metricsAddr := flag.String("metrics-addr", "", "operator HTTP surface address: /metrics, /healthz, /traces, /debug/pprof (overrides config metrics_addr)")
	traceSample := flag.Int("trace-sample", 0, "sample one publish in N into a flow trace, 0 = off (overrides config trace_sample)")
	stageSample := flag.Int("stage-sample", 0, "attribute stage latency on one publish in N, 0 = off (overrides config stage_sample)")
	var peers peerList
	flag.Var(&peers, "peer", "peer bus address to federate with (repeatable; adds to config peers)")
	flag.Parse()
	if *configPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	if err := run(*configPath, *dataDir, *pump, *listen, *sweepEvery, *faults, *metricsAddr, *shards, *traceSample, *stageSample, peers); err != nil {
		log.Fatal("lciotd: ", err)
	}
}

// peerList collects repeated -peer flags.
type peerList []string

func (p *peerList) String() string { return strings.Join(*p, ",") }

func (p *peerList) Set(v string) error {
	if v == "" {
		return fmt.Errorf("empty peer address")
	}
	*p = append(*p, v)
	return nil
}

func run(configPath, dataDir, pump, listen, sweepEvery, faults, metricsAddr string, shards, traceSample, stageSample int, peers []string) error {
	// Failpoints arm before the domain exists so boot-path points (store
	// recovery, the first WAL writes) are already live.
	if faults != "" {
		if err := lciot.SetFaults(faults); err != nil {
			return fmt.Errorf("-faults: %w", err)
		}
		for _, p := range lciot.FaultSnapshot() {
			if p.Armed {
				log.Printf("failpoint armed: %s = %s", p.Name, p.Spec)
			}
		}
	}
	raw, err := os.ReadFile(configPath)
	if err != nil {
		return err
	}
	var cfg config
	if err := json.Unmarshal(raw, &cfg); err != nil {
		return fmt.Errorf("parse config: %w", err)
	}
	if cfg.Domain == "" {
		return fmt.Errorf("config: domain is required")
	}
	// Relative paths in the configuration resolve against the config
	// file's directory, so lciotd runs the same from any working dir.
	cfgDir := filepath.Dir(configPath)
	resolve := func(p string) string {
		if p == "" || filepath.IsAbs(p) {
			return p
		}
		return filepath.Join(cfgDir, p)
	}
	cfg.PolicyFile = resolve(cfg.PolicyFile)
	cfg.AuditExport = resolve(cfg.AuditExport)
	cfg.DataDir = resolve(cfg.DataDir)
	if dataDir != "" {
		cfg.DataDir = dataDir // flag paths are relative to the caller's cwd
	}
	if listen != "" {
		cfg.Listen = listen
	}
	if sweepEvery != "" {
		cfg.SweepEvery = sweepEvery
	}
	if shards != 0 {
		cfg.Shards = shards
	}
	if metricsAddr != "" {
		cfg.MetricsAddr = metricsAddr
	}
	if traceSample != 0 {
		cfg.TraceSample = traceSample
	}
	if stageSample != 0 {
		cfg.StageSample = stageSample
	}
	cfg.Peers = append(cfg.Peers, peers...)

	// Telemetry is compiled into every layer but off by default (one
	// atomic load per instrument); the daemon is the opt-in point.
	lciot.EnableTelemetry()
	lciot.SetTraceSampling(cfg.TraceSample)
	if cfg.TraceSample > 0 {
		log.Printf("flow tracing: sampling 1 in %d publishes", cfg.TraceSample)
	}
	lciot.SetStageSampling(cfg.StageSample)
	if cfg.StageSample > 0 {
		log.Printf("stage attribution: sampling 1 in %d publishes", cfg.StageSample)
	}

	jurisdiction := make([]lciot.Tag, 0, len(cfg.Jurisdiction))
	for _, j := range cfg.Jurisdiction {
		jurisdiction = append(jurisdiction, lciot.Tag(j))
	}
	domain, err := lciot.NewDomain(cfg.Domain, lciot.Options{
		OnAlert:      func(m string) { log.Printf("alert: %s", m) },
		DataDir:      cfg.DataDir,
		Jurisdiction: jurisdiction,
		Shards:       cfg.Shards,
	})
	if err != nil {
		return err
	}
	if n := domain.Bus().NumShards(); n > 1 {
		log.Printf("bus sharded across %d shards (GOMAXPROCS %d)", n, runtime.GOMAXPROCS(0))
		log.Printf("parallel dispatch plane: %d CEP lanes, %d policy index lanes, %d audit staging lanes",
			n, n, n)
	}
	// Error-path safety net; the normal path closes explicitly below so a
	// sticky store I/O error (the only place a WAL write failure
	// surfaces) fails the daemon loudly instead of vanishing in a defer.
	defer domain.Close()
	if st := domain.AuditStore(); st != nil {
		log.Printf("audit store %s: recovered %d records, chain intact, resuming at seq %d",
			cfg.DataDir, st.Len(), st.NextSeq())
	}
	if cfg.MetricsAddr != "" {
		if err := serveMetrics(domain, cfg.MetricsAddr); err != nil {
			return fmt.Errorf("metrics listener: %w", err)
		}
	}

	schemas, err := buildSchemas(cfg.Schemas)
	if err != nil {
		return err
	}
	// Policy before components: obligation clauses must be compiled when
	// component contexts are built, so obligated tags carry their
	// residency/purpose facets from the first registration. Loading also
	// reschedules retention deadlines from the recovered store, so an
	// interrupted sweep resumes from the WAL.
	if cfg.PolicyFile != "" {
		src, err := os.ReadFile(cfg.PolicyFile)
		if err != nil {
			return err
		}
		if err := domain.LoadPolicy(string(src)); err != nil {
			return err
		}
		log.Printf("policy loaded from %s", cfg.PolicyFile)
		if tab := domain.ObligationTable(); tab != nil {
			log.Printf("obligations: %d tags under management, %d retention deadlines resumed",
				tab.Len(), domain.ObligationBacklog())
		}
	}
	if err := registerComponents(domain, cfg.Components, schemas); err != nil {
		return err
	}
	// Local channels first; channels whose sink names a peer bus
	// ("bus:comp.ep") wait until the links are up.
	var remoteChannels []channelConfig
	for _, ch := range cfg.Channels {
		if strings.Contains(ch.Dst, ":") {
			remoteChannels = append(remoteChannels, ch)
			continue
		}
		if err := domain.Bus().Connect(lciot.PolicyEnginePrincipal, ch.Src, ch.Dst); err != nil {
			return fmt.Errorf("channel %s -> %s: %w", ch.Src, ch.Dst, err)
		}
		log.Printf("channel established: %s -> %s", ch.Src, ch.Dst)
	}

	if cfg.Listen != "" {
		listener, err := lciot.TCP.Listen(cfg.Listen)
		if err != nil {
			return err
		}
		defer listener.Close()
		go domain.Serve(listener)
		log.Printf("domain %q serving federation links on %s", cfg.Domain, listener.Addr())
	} else {
		log.Printf("domain %q running (no listener configured)", cfg.Domain)
	}

	if len(cfg.Peers) > 0 {
		// A daemon should ride out peer restarts measured in minutes, not
		// the default seconds-scale budget.
		domain.Bus().SetLinkConfig(lciot.LinkConfig{RetryBudget: 60})
		for _, addr := range cfg.Peers {
			peer, err := domain.LinkPeer(lciot.TCP, addr, 30*time.Second)
			if err != nil {
				return fmt.Errorf("peer %s: %w", addr, err)
			}
			log.Printf("link to %s: up (bus %q)", addr, peer)
		}
	}
	for _, ch := range remoteChannels {
		// The peer bus may not be linked yet — on a listen-only node the
		// link appears when the peer dials in — so wait for ErrLinkDown to
		// clear instead of failing the boot.
		deadline := time.Now().Add(30 * time.Second)
		for {
			err := domain.Bus().Connect(lciot.PolicyEnginePrincipal, ch.Src, ch.Dst)
			if err == nil {
				log.Printf("cross-bus channel established: %s -> %s", ch.Src, ch.Dst)
				break
			}
			if !errors.Is(err, lciot.ErrLinkDown) || !time.Now().Before(deadline) {
				return fmt.Errorf("channel %s -> %s: %w", ch.Src, ch.Dst, err)
			}
			log.Printf("channel %s -> %s: waiting for link (%v)", ch.Src, ch.Dst, err)
			time.Sleep(500 * time.Millisecond)
		}
	}

	stopWatch := make(chan struct{})
	defer close(stopWatch)
	if len(cfg.Peers) > 0 || cfg.Listen != "" {
		go watchLinks(domain, stopWatch)
	}
	go watchHealth(domain, stopWatch)
	go statusLoop(domain, stopWatch)

	if cfg.SweepEvery != "" {
		every, err := time.ParseDuration(cfg.SweepEvery)
		if err != nil {
			return fmt.Errorf("sweep_every: %w", err)
		}
		log.Printf("obligation sweep loop: every %s", every)
		go func() {
			t := time.NewTicker(every)
			defer t.Stop()
			for {
				select {
				case <-stopWatch:
					return
				case <-t.C:
					if n := domain.SweepObligations(); n > 0 {
						log.Printf("obligation sweep: executed %d (backlog %d)",
							n, domain.ObligationBacklog())
					}
				}
			}
		}()
	}

	stopPump := make(chan struct{})
	if pump != "" {
		if err := startPump(domain, cfg, schemas, pump, stopPump); err != nil {
			return err
		}
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	<-stop
	close(stopPump)

	if cfg.AuditExport != "" {
		data, err := audit.ExportJSON(domain.Log())
		if err != nil {
			return err
		}
		if err := os.WriteFile(cfg.AuditExport, data, 0o644); err != nil {
			return err
		}
		log.Printf("audit log exported to %s (%d records)", cfg.AuditExport, domain.Log().Len())
	}
	if err := domain.Close(); err != nil {
		return fmt.Errorf("audit store shutdown: %w", err)
	}
	return nil
}

// buildSchemas compiles schema configs.
func buildSchemas(cfgs []schemaConfig) (map[string]*lciot.Schema, error) {
	out := make(map[string]*lciot.Schema, len(cfgs))
	for _, sc := range cfgs {
		fields := make([]lciot.Field, 0, len(sc.Fields))
		for _, fc := range sc.Fields {
			var ft = lciot.TString
			switch fc.Type {
			case "string":
				ft = lciot.TString
			case "float":
				ft = lciot.TFloat
			case "int":
				ft = lciot.TInt
			case "bool":
				ft = lciot.TBool
			case "bytes":
				ft = lciot.TBytes
			default:
				return nil, fmt.Errorf("schema %q field %q: unknown type %q", sc.Name, fc.Name, fc.Type)
			}
			secrecy, err := lciot.NewLabel(toTags(fc.Secrecy)...)
			if err != nil {
				return nil, fmt.Errorf("schema %q field %q: %w", sc.Name, fc.Name, err)
			}
			fields = append(fields, lciot.Field{
				Name: fc.Name, Type: ft, Required: fc.Required, Secrecy: secrecy,
			})
		}
		s, err := lciot.NewSchema(sc.Name, lciot.Label{}, fields...)
		if err != nil {
			return nil, err
		}
		out[sc.Name] = s
	}
	return out, nil
}

// registerComponents registers the configured components on the domain bus.
func registerComponents(domain *lciot.Domain, cfgs []componentConfig, schemas map[string]*lciot.Schema) error {
	for _, cc := range cfgs {
		ctx, err := lciot.NewContext(toTags(cc.Secrecy), toTags(cc.Integrity))
		if err != nil {
			return fmt.Errorf("component %q: %w", cc.Name, err)
		}
		if len(cc.Jurisdiction) > 0 {
			jur, err := lciot.NewLabel(toTags(cc.Jurisdiction)...)
			if err != nil {
				return fmt.Errorf("component %q jurisdiction: %w", cc.Name, err)
			}
			ctx = ctx.WithJurisdiction(jur)
		}
		if len(cc.Purposes) > 0 {
			pur, err := lciot.NewLabel(toTags(cc.Purposes)...)
			if err != nil {
				return fmt.Errorf("component %q purposes: %w", cc.Name, err)
			}
			ctx = ctx.WithPurpose(pur)
		}
		// Obligated tags attach their compiled residency/purpose facets
		// here, at the labelling point — policy is loaded before
		// registration, so the hot path enforces them from the first flow.
		ctx = domain.ApplyObligations(ctx)
		specs := make([]lciot.EndpointSpec, 0, len(cc.Endpoints))
		for _, ec := range cc.Endpoints {
			schema, ok := schemas[ec.Schema]
			if !ok {
				return fmt.Errorf("component %q endpoint %q: unknown schema %q", cc.Name, ec.Name, ec.Schema)
			}
			var dir = lciot.Source
			switch ec.Dir {
			case "source":
				dir = lciot.Source
			case "sink":
				dir = lciot.Sink
			default:
				return fmt.Errorf("component %q endpoint %q: dir must be source or sink", cc.Name, ec.Name)
			}
			specs = append(specs, lciot.EndpointSpec{Name: ec.Name, Dir: dir, Schema: schema})
		}
		var handler lciot.Handler
		if cc.LogDeliveries {
			name := cc.Name
			handler = func(m *lciot.Message, d lciot.Delivery) {
				log.Printf("%s received %s from %s (quenched: %v)", name, m.Type, d.From, d.Quenched)
			}
		}
		comp, err := domain.Bus().Register(cc.Name, lciot.PrincipalID(cc.Principal), ctx, handler, specs...)
		if err != nil {
			return err
		}
		if len(cc.Clearance) > 0 {
			clearance, err := lciot.NewLabel(toTags(cc.Clearance)...)
			if err != nil {
				return fmt.Errorf("component %q clearance: %w", cc.Name, err)
			}
			comp.SetClearance(clearance)
		}
	}
	return nil
}

// watchLinks polls the domain's link table and logs state transitions —
// up, reconnecting, resumed, removed — so an operator (and the CI
// federation smoke test) can follow link health from the daemon's log.
func watchLinks(domain *lciot.Domain, stop <-chan struct{}) {
	t := time.NewTicker(250 * time.Millisecond)
	defer t.Stop()
	last := map[string]lciot.LinkStatus{}
	for {
		select {
		case <-stop:
			return
		case <-t.C:
		}
		seen := map[string]bool{}
		for _, st := range domain.LinkStatus() {
			seen[st.Peer] = true
			prev, known := last[st.Peer]
			if !known || prev.State != st.State || prev.Reconnects != st.Reconnects {
				log.Printf("link to bus %q: %s (queue %d/%d, high-water %d, resumes %d)",
					st.Peer, st.State, st.QueueDepth, st.QueueCap, st.QueueHighWater, st.Reconnects)
			}
			last[st.Peer] = st
		}
		for peer := range last {
			if !seen[peer] {
				log.Printf("link to bus %q: removed", peer)
				delete(last, peer)
			}
		}
	}
}

// watchHealth polls the domain's degradation ladder and logs every
// subsystem state transition (ok -> degraded -> failed and back), so an
// operator tailing the log sees a WAL failure flip the audit store to
// in-memory buffering the moment it happens — not when ingest wedges.
func watchHealth(domain *lciot.Domain, stop <-chan struct{}) {
	t := time.NewTicker(500 * time.Millisecond)
	defer t.Stop()
	last := map[string]lciot.HealthState{}
	for {
		select {
		case <-stop:
			return
		case <-t.C:
		}
		for _, h := range domain.Health() {
			prev, known := last[h.Subsystem]
			switch {
			case !known && h.State != lciot.HealthOK:
				// Already off the ok rung at first sight (e.g. a -faults
				// drill that bites during boot): log it as a finding, not
				// silently as the baseline.
				log.Printf("health: %s %s: %s", h.Subsystem, h.State, h.Detail)
			case known && prev != h.State:
				log.Printf("health: %s %s -> %s: %s", h.Subsystem, prev, h.State, h.Detail)
			}
			last[h.Subsystem] = h.State
		}
	}
}

// statusLoop periodically logs the overload counters an operator needs to
// see pressure building: shard handoff overflows (deliveries falling back
// inline), per-link send-queue depth and high-water, and any subsystem off
// the ok rung. The line is built from the same telemetry registry snapshot
// /metrics serves, so the log and the scrape can never disagree; the
// format is kept grep-stable for the soak harnesses.
func statusLoop(domain *lciot.Domain, stop <-chan struct{}) {
	t := time.NewTicker(10 * time.Second)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
		}
		log.Print(statusLine(domain))
	}
}

// statusLine renders one status line from a telemetry registry snapshot.
func statusLine(domain *lciot.Domain) string {
	bus := domain.Bus().Name()
	snap := domain.Metrics().Snapshot()
	var delivered, overflow, shards float64
	var slowStage string
	var slowP99 int64
	type linkStat struct{ depth, qcap, hw float64 }
	links := map[string]*linkStat{}
	linkFor := func(m lciot.Metric) *linkStat {
		peer := m.Label("peer")
		st := links[peer]
		if st == nil {
			st = &linkStat{}
			links[peer] = st
		}
		return st
	}
	for _, m := range snap {
		// The local stage-edge histograms carry no bus label; track the
		// slowest edge by P99 before the bus filter. Link-hop edges are
		// per-bus and pass the filter on their own.
		if strings.HasPrefix(m.Name, "stage_") && m.Hist != nil && m.Hist.Count > 0 &&
			(m.Labels == "" || m.Label("bus") == bus) && m.Hist.P99 > slowP99 {
			slowStage, slowP99 = m.Name, m.Hist.P99
		}
		if m.Label("bus") != bus {
			continue
		}
		switch m.Name {
		case "sbus_shard_delivered_total":
			delivered += m.Value
		case "sbus_shard_overflow_total":
			overflow += m.Value
		case "sbus_shards":
			shards = m.Value
		case "sbus_link_queue_depth":
			linkFor(m).depth = m.Value
		case "sbus_link_queue_cap":
			linkFor(m).qcap = m.Value
		case "sbus_link_queue_highwater":
			linkFor(m).hw = m.Value
		}
	}
	line := fmt.Sprintf("status: bus delivered=%d overflow=%d shards=%d skew=%.2f",
		uint64(delivered), uint64(overflow), int(shards), domain.SkewReport().Imbalance)
	if slowStage != "" {
		line += fmt.Sprintf(" slowest_stage=%s p99=%s", slowStage, time.Duration(slowP99))
	}
	peers := make([]string, 0, len(links))
	for p := range links {
		peers = append(peers, p)
	}
	sort.Strings(peers)
	for _, p := range peers {
		st := links[p]
		line += fmt.Sprintf("; link %s queue=%d/%d hw=%d", p, int(st.depth), int(st.qcap), uint64(st.hw))
	}
	for _, h := range domain.Health() {
		if h.State != lciot.HealthOK {
			line += fmt.Sprintf("; %s=%s", h.Subsystem, h.State)
		}
	}
	return line
}

// serveMetrics starts the operator HTTP surface: Prometheus metrics, the
// degradation ladder as JSON, recent flow traces, and pprof. It runs on
// its own mux so the pprof registration does not leak onto
// http.DefaultServeMux.
func serveMetrics(domain *lciot.Domain, addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		if err := domain.Metrics().WritePrometheus(w); err != nil {
			log.Printf("metrics: write: %v", err)
		}
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		type sub struct {
			Subsystem string `json:"subsystem"`
			State     string `json:"state"`
			Detail    string `json:"detail"`
		}
		report := domain.Health()
		worst := lciot.HealthOK
		subs := make([]sub, 0, len(report))
		for _, h := range report {
			if h.State > worst {
				worst = h.State
			}
			subs = append(subs, sub{Subsystem: h.Subsystem, State: h.State.String(), Detail: h.Detail})
		}
		w.Header().Set("Content-Type", "application/json")
		if worst == lciot.HealthFailed {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		json.NewEncoder(w).Encode(map[string]any{
			"state":      worst.String(),
			"subsystems": subs,
			"skew":       domain.SkewReport().Imbalance,
		})
	})
	mux.HandleFunc("/lanes", func(w http.ResponseWriter, r *http.Request) {
		// Per-peer link-hop stage rows from the registry snapshot: one row
		// per federated peer, present from link establishment (count 0
		// until a stage-attributed message crosses).
		type linkRow struct {
			Peer  string `json:"peer"`
			Count uint64 `json:"count"`
			P50Ns int64  `json:"p50_ns"`
			P99Ns int64  `json:"p99_ns"`
			SumNs uint64 `json:"sum_ns"`
		}
		busName := domain.Bus().Name()
		var rows []linkRow
		for _, m := range domain.Metrics().Snapshot() {
			if m.Name != "stage_link_hop_ns" || m.Hist == nil || m.Label("bus") != busName {
				continue
			}
			rows = append(rows, linkRow{
				Peer: m.Label("peer"), Count: m.Hist.Count,
				P50Ns: m.Hist.P50, P99Ns: m.Hist.P99, SumNs: m.Hist.Sum,
			})
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(map[string]any{
			"skew":         domain.SkewReport(),
			"stage_sample": lciot.StageSampling(),
			"stage_links":  rows,
		})
	})
	mux.HandleFunc("/traces", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(map[string]any{
			"sample_every": lciot.TraceSampling(),
			"traces":       lciot.FlowTraces(),
		})
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	go func() {
		if err := http.Serve(ln, mux); err != nil {
			log.Printf("metrics: serve: %v", err)
		}
	}()
	log.Printf("operator surface on http://%s (/metrics /healthz /traces /lanes /debug/pprof)", ln.Addr())
	return nil
}

// startPump launches a synthetic publisher on a configured source
// endpoint: a self-contained ingest driver so soak and crash-recovery
// tests need no external client. Messages are synthesised from the
// endpoint's schema (every field populated with a deterministic value).
func startPump(domain *lciot.Domain, cfg config, schemas map[string]*lciot.Schema, spec string, stop <-chan struct{}) error {
	target, rateStr, ok := strings.Cut(spec, "=")
	if !ok {
		return fmt.Errorf("pump: want component.endpoint=hz, got %q", spec)
	}
	hz, err := strconv.Atoi(rateStr)
	if err != nil || hz <= 0 {
		return fmt.Errorf("pump: bad rate %q", rateStr)
	}
	compName, epName, ok := strings.Cut(target, ".")
	if !ok {
		return fmt.Errorf("pump: want component.endpoint=hz, got %q", spec)
	}
	var schema *lciot.Schema
	for _, cc := range cfg.Components {
		if cc.Name != compName {
			continue
		}
		for _, ec := range cc.Endpoints {
			if ec.Name == epName && ec.Dir == "source" {
				schema = schemas[ec.Schema]
			}
		}
	}
	if schema == nil {
		return fmt.Errorf("pump: no configured source endpoint %q", target)
	}
	comp, err := domain.Bus().Component(compName)
	if err != nil {
		return err
	}
	go func() {
		t := time.NewTicker(time.Second / time.Duration(hz))
		defer t.Stop()
		for i := int64(0); ; i++ {
			select {
			case <-stop:
				return
			case <-t.C:
			}
			if _, err := comp.Publish(epName, syntheticMessage(schema, i)); err != nil {
				log.Printf("pump: publish: %v", err)
			}
		}
	}()
	log.Printf("pump: publishing on %s at %d msg/s", target, hz)
	return nil
}

// syntheticMessage fills every schema field with a deterministic value.
func syntheticMessage(schema *lciot.Schema, i int64) *lciot.Message {
	m := lciot.NewMessage(schema.Name)
	for _, f := range schema.Fields {
		switch f.Type {
		case lciot.TString:
			m.Set(f.Name, lciot.Str(fmt.Sprintf("pump-%d", i)))
		case lciot.TFloat:
			m.Set(f.Name, lciot.Float(float64(i%100)))
		case lciot.TInt:
			m.Set(f.Name, lciot.Int(i))
		case lciot.TBool:
			m.Set(f.Name, lciot.Bool(i%2 == 0))
		case lciot.TBytes:
			m.Set(f.Name, lciot.Bytes([]byte{byte(i)}))
		}
	}
	m.DataID = fmt.Sprintf("pump/%s/%d", schema.Name, i)
	return m
}

func toTags(ss []string) []lciot.Tag {
	out := make([]lciot.Tag, len(ss))
	for i, s := range ss {
		out[i] = lciot.Tag(s)
	}
	return out
}
