package main

import (
	"os"
	"path/filepath"
	"testing"

	"lciot/internal/audit"
	"lciot/internal/ifc"
	"lciot/internal/store"
)

// writeLog exports a small log with one allowed flow, one denial and one
// break-glass record.
func writeLog(t *testing.T) string {
	t.Helper()
	l := audit.NewLog(nil)
	l.Append(audit.Record{
		Kind: audit.FlowAllowed, Layer: audit.LayerMessaging,
		Src: "sensor", Dst: "analyser", DataID: "r1", Agent: ifc.PrincipalID("hospital"),
	})
	l.Append(audit.Record{
		Kind: audit.FlowDenied, Layer: audit.LayerMessaging,
		Src: "sensor", Dst: "advertiser", DataID: "r1", Note: "IFC denial",
	})
	l.Append(audit.Record{Kind: audit.BreakGlass, Note: "override"})
	data, err := audit.ExportJSON(l)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "log.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunVerifyAndReport(t *testing.T) {
	path := writeLog(t)
	if code := run([]string{"verify", path}); code != 0 {
		t.Fatalf("verify exit = %d", code)
	}
	if code := run([]string{"report", path}); code != 0 {
		t.Fatalf("report exit = %d", code)
	}
	if code := run([]string{"dot", path}); code != 0 {
		t.Fatalf("dot exit = %d", code)
	}
}

func TestRunVerifyTampered(t *testing.T) {
	path := writeLog(t)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	recs, err := audit.ImportRecords(data)
	if err != nil {
		t.Fatal(err)
	}
	recs[0].Note = "doctored"
	doctored := filepath.Join(t.TempDir(), "bad.json")
	out, err := audit.ExportJSONRecords(recs)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(doctored, out, 0o644); err != nil {
		t.Fatal(err)
	}
	if code := run([]string{"verify", doctored}); code != 1 {
		t.Fatalf("tampered verify exit = %d", code)
	}
	if code := run([]string{"report", doctored}); code != 1 {
		t.Fatalf("tampered report exit = %d", code)
	}
}

func TestRunQueries(t *testing.T) {
	path := writeLog(t)
	if code := run([]string{"descendants", path, "r1"}); code != 0 {
		t.Fatalf("descendants exit = %d", code)
	}
	if code := run([]string{"ancestry", path, "analyser"}); code != 0 {
		t.Fatalf("ancestry exit = %d", code)
	}
	if code := run([]string{"agents", path, "analyser"}); code != 0 {
		t.Fatalf("agents exit = %d", code)
	}
	if code := run([]string{"ancestry", path, "ghost"}); code != 1 {
		t.Fatalf("ghost query exit = %d", code)
	}
	if code := run([]string{"ancestry", path}); code != 2 {
		t.Fatalf("missing node arg exit = %d", code)
	}
}

func TestRunUsageErrors(t *testing.T) {
	if code := run(nil); code != 2 {
		t.Fatalf("no args = %d", code)
	}
	if code := run([]string{"verify", "/nonexistent"}); code != 1 {
		t.Fatalf("missing file = %d", code)
	}
	garbage := filepath.Join(t.TempDir(), "g.json")
	if err := os.WriteFile(garbage, []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	if code := run([]string{"verify", garbage}); code != 1 {
		t.Fatalf("garbage = %d", code)
	}
	if code := run([]string{"bogus", writeLog(t)}); code != 2 {
		t.Fatalf("unknown cmd = %d", code)
	}
}

// writeStore persists the same small trail into a durable store directory
// (under an audit/ subdirectory, as lciotd lays it out).
func writeStore(t *testing.T) string {
	t.Helper()
	dataDir := t.TempDir()
	// Tiny segments so the trail spans several files (sealed + active).
	s, err := store.OpenAudit(filepath.Join(dataDir, "audit"), store.Options{SegmentBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	l := audit.NewLog(nil)
	if err := s.AttachLog(l); err != nil {
		t.Fatal(err)
	}
	l.Append(audit.Record{
		Kind: audit.FlowAllowed, Layer: audit.LayerMessaging,
		Src: "sensor", Dst: "analyser", DataID: "r1", Agent: ifc.PrincipalID("hospital"),
	})
	l.Append(audit.Record{
		Kind: audit.FlowDenied, Layer: audit.LayerMessaging,
		Src: "sensor", Dst: "advertiser", DataID: "r1", Note: "IFC denial",
	})
	for i := 0; i < 10; i++ {
		l.Append(audit.Record{
			Kind: audit.FlowAllowed, Layer: audit.LayerMessaging,
			Src: "analyser", Dst: "archive", DataID: "r1", Note: "padding so segments rotate",
		})
	}
	l.Flush()
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	if s.WAL().Segments() < 2 {
		t.Fatal("test store did not rotate; tamper test needs a sealed segment")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	return dataDir
}

func TestRunStoreDirectory(t *testing.T) {
	dir := writeStore(t)
	// Both the data dir and the audit/ subdirectory are accepted.
	if code := run([]string{"verify", dir}); code != 0 {
		t.Fatalf("verify store dir exit = %d", code)
	}
	if code := run([]string{"verify", filepath.Join(dir, "audit")}); code != 0 {
		t.Fatalf("verify audit subdir exit = %d", code)
	}
	if code := run([]string{"report", dir}); code != 0 {
		t.Fatalf("report store dir exit = %d", code)
	}
	if code := run([]string{"dot", dir}); code != 0 {
		t.Fatalf("dot store dir exit = %d", code)
	}
	if code := run([]string{"descendants", dir, "r1"}); code != 0 {
		t.Fatalf("descendants store dir exit = %d", code)
	}
}

func TestRunStoreDirectoryTampered(t *testing.T) {
	dir := writeStore(t)
	// Flip one byte in a *sealed* segment: only the final segment may
	// carry a torn tail, so recovery must refuse the store outright.
	seg := filepath.Join(dir, "audit")
	names, err := filepath.Glob(filepath.Join(seg, "wal-*.seg"))
	if err != nil || len(names) == 0 {
		t.Fatalf("no segments: %v", err)
	}
	data, err := os.ReadFile(names[0])
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xFF
	if err := os.WriteFile(names[0], data, 0o644); err != nil {
		t.Fatal(err)
	}
	if code := run([]string{"verify", dir}); code != 1 {
		t.Fatalf("tampered store verify exit = %d", code)
	}
}
