// Command auditview inspects lciot audit trails — either the JSON
// produced by audit.ExportJSON / lciotd's shutdown export, or a durable
// store directory written by lciotd -data-dir (the directory itself or
// its audit/ subdirectory): verification of the tamper-evident chain,
// compliance reporting, provenance graph export, and the forensic queries
// of the paper's Section 8.3. Provenance queries over a store directory
// span every persisted record, including segments retired from process
// memory by pruning.
//
// Usage:
//
//	auditview verify <log.json|dir>              check the hash chain
//	auditview report <log.json|dir>              print a compliance summary
//	auditview dot <log.json|dir>                 emit the provenance graph (DOT)
//	auditview ancestry <log.json|dir> <node>     how was this produced?
//	auditview descendants <log.json|dir> <node>  where did this end up?
//	auditview agents <log.json|dir> <node>       who is responsible for it?
//	auditview retention <log.json|dir> <tag> <age>
//	                                             prove "all data under <tag>
//	                                             older than <age> is gone or
//	                                             tombstoned"
//
// Chains containing tombstones (records redacted in place by erasure
// obligations) verify by linkage: the payload is gone — that is the point
// — while the sequence of hashes still proves nothing else was touched.
package main

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"

	"lciot/internal/audit"
	"lciot/internal/ifc"
	"lciot/internal/store"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

// loadRecords reads records from an exported JSON file or a durable store
// directory. For directories the store's recovery already verifies the
// whole persisted chain — a failure there is reported as a broken chain.
func loadRecords(path string) (recs []audit.Record, fromStore bool, err error) {
	fi, err := os.Stat(path)
	if err != nil {
		return nil, false, err
	}
	if fi.IsDir() {
		dir := path
		if sub := filepath.Join(path, "audit"); store.IsWALDir(sub) {
			dir = sub
		}
		s, err := store.OpenAudit(dir, store.Options{})
		if err != nil {
			return nil, true, err
		}
		defer s.Close()
		recs, err := s.Records(0, 0)
		return recs, true, err
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, false, err
	}
	recs, err = audit.ImportRecords(data)
	return recs, false, err
}

func run(args []string) int {
	if len(args) < 2 {
		usage()
		return 2
	}
	cmd, path := args[0], args[1]
	// verify over a store directory streams: recovery chain-verifies the
	// whole store in bounded memory, so nothing needs materialising.
	if cmd == "verify" {
		if fi, err := os.Stat(path); err == nil && fi.IsDir() {
			return verifyStoreDir(path)
		}
	}
	recs, fromStore, err := loadRecords(path)
	if err != nil {
		if fromStore {
			fmt.Println("chain BROKEN:", err)
			return 1
		}
		fmt.Fprintln(os.Stderr, "auditview:", err)
		return 1
	}

	switch cmd {
	case "verify":
		if err := audit.VerifySegment(recs, nil); err != nil {
			fmt.Println("chain BROKEN:", err)
			return 1
		}
		if fromStore {
			fmt.Printf("chain intact: %d records (store verified on recovery)\n", len(recs))
		} else {
			fmt.Printf("chain intact: %d records\n", len(recs))
		}
		return 0
	case "report":
		return report(recs)
	case "dot":
		printChainStatus(os.Stderr, recs, fromStore)
		fmt.Print(audit.BuildGraph(recs).DOT())
		return 0
	case "ancestry", "descendants", "agents":
		if len(args) != 3 {
			usage()
			return 2
		}
		printChainStatus(os.Stderr, recs, fromStore)
		return query(recs, cmd, args[2])
	case "retention":
		if len(args) != 4 {
			usage()
			return 2
		}
		age, err := time.ParseDuration(args[3])
		if err != nil {
			fmt.Fprintln(os.Stderr, "auditview: bad age:", err)
			return 2
		}
		return retention(recs, ifc.Tag(args[2]), age)
	default:
		usage()
		return 2
	}
}

// retention prints the regulator-facing retention proof for one tag.
func retention(recs []audit.Record, tag ifc.Tag, age time.Duration) int {
	rep := audit.RetentionReport(recs, tag, time.Now().Add(-age))
	fmt.Printf("retention report: tag %s, cutoff %s\n", rep.Tag, rep.Cutoff.UTC().Format(time.RFC3339))
	fmt.Printf("  checked: %d records older than cutoff (tombstoned: %d)\n", rep.Checked, rep.Tombstoned)
	if rep.Compliant {
		fmt.Println("retention compliant: all data under the tag is gone or tombstoned")
		return 0
	}
	fmt.Printf("retention VIOLATIONS: %d live records under %s older than the cutoff\n",
		len(rep.Violations), rep.Tag)
	for _, r := range rep.Violations {
		fmt.Printf("  seq=%d time=%s data=%s %s -> %s\n",
			r.Seq, r.Time.UTC().Format(time.RFC3339), r.DataID, r.Src, r.Dst)
	}
	return 1
}

// verifyStoreDir opens (and thereby chain-verifies) a store directory
// without materialising its records.
func verifyStoreDir(path string) int {
	dir := path
	if sub := filepath.Join(path, "audit"); store.IsWALDir(sub) {
		dir = sub
	}
	s, err := store.OpenAudit(dir, store.Options{})
	if err != nil {
		fmt.Println("chain BROKEN:", err)
		return 1
	}
	n := s.Len()
	s.Close()
	fmt.Printf("chain intact: %d records (store verified on recovery)\n", n)
	return 0
}

// printChainStatus reports the chain-verification outcome alongside graph
// output (on stderr, so stdout stays machine-consumable).
func printChainStatus(w *os.File, recs []audit.Record, fromStore bool) {
	source := "export"
	if fromStore {
		source = "store"
	}
	if err := audit.VerifySegment(recs, nil); err != nil {
		fmt.Fprintf(w, "chain BROKEN (%s): %v\n", source, err)
		return
	}
	fmt.Fprintf(w, "chain intact (%s): %d records\n", source, len(recs))
}

func usage() {
	fmt.Fprintln(os.Stderr,
		"usage: auditview verify|report|dot <log.json|store-dir> | auditview ancestry|descendants|agents <log.json|store-dir> <node> | auditview retention <log.json|store-dir> <tag> <age>")
}

func report(recs []audit.Record) int {
	byKind := map[string]int{}
	byLayer := map[string]int{}
	redacted := 0
	for _, r := range recs {
		byKind[r.Kind.String()]++
		byLayer[r.Layer.String()]++
		if r.Redacted {
			redacted++
		}
	}
	fmt.Printf("records: %d (tombstoned: %d)\n", len(recs), redacted)
	printCounts("by kind", byKind)
	printCounts("by layer", byLayer)
	if err := audit.VerifySegment(recs, nil); err != nil {
		fmt.Println("chain: BROKEN —", err)
		return 1
	}
	fmt.Println("chain: intact")
	for _, r := range recs {
		switch {
		case r.Redacted:
			// Tombstones are listed nowhere else: their remaining metadata
			// (seq, time, why) is exactly the erasure evidence.
			fmt.Printf("tombstone seq=%d: %s\n", r.Seq, r.Note)
		case r.Kind == audit.FlowDenied:
			fmt.Printf("denial seq=%d %s -> %s: %s\n", r.Seq, r.Src, r.Dst, r.Note)
		case r.Kind == audit.BreakGlass:
			fmt.Printf("break-glass seq=%d: %s\n", r.Seq, r.Note)
		case r.Kind == audit.ObligationExecuted || r.Kind == audit.ObligationRefused:
			fmt.Printf("obligation seq=%d: %s\n", r.Seq, r.Note)
		}
	}
	return 0
}

func printCounts(title string, counts map[string]int) {
	keys := make([]string, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	fmt.Println(title + ":")
	for _, k := range keys {
		fmt.Printf("  %-16s %d\n", k, counts[k])
	}
}

func query(recs []audit.Record, kind, node string) int {
	g := audit.BuildGraph(recs)
	var (
		out []string
		err error
	)
	switch kind {
	case "ancestry":
		out, err = g.Ancestry(node)
	case "descendants":
		out, err = g.Descendants(node)
	case "agents":
		out, err = g.Agents(node)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "auditview:", err)
		return 1
	}
	for _, n := range out {
		fmt.Println(n)
	}
	return 0
}
