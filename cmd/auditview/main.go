// Command auditview inspects exported lciot audit logs (the JSON produced
// by audit.ExportJSON / lciotd's shutdown export): verification of the
// tamper-evident chain, compliance reporting, provenance graph export, and
// the forensic queries of the paper's Section 8.3.
//
// Usage:
//
//	auditview verify <log.json>              check the hash chain
//	auditview report <log.json>              print a compliance summary
//	auditview dot <log.json>                 emit the provenance graph (DOT)
//	auditview ancestry <log.json> <node>     how was this produced?
//	auditview descendants <log.json> <node>  where did this end up?
//	auditview agents <log.json> <node>       who is responsible for it?
package main

import (
	"fmt"
	"os"
	"sort"

	"lciot/internal/audit"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	if len(args) < 2 {
		usage()
		return 2
	}
	cmd, path := args[0], args[1]
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "auditview:", err)
		return 1
	}
	recs, err := audit.ImportRecords(data)
	if err != nil {
		fmt.Fprintln(os.Stderr, "auditview:", err)
		return 1
	}

	switch cmd {
	case "verify":
		if err := audit.VerifySegment(recs, nil); err != nil {
			fmt.Println("chain BROKEN:", err)
			return 1
		}
		fmt.Printf("chain intact: %d records\n", len(recs))
		return 0
	case "report":
		return report(recs)
	case "dot":
		fmt.Print(audit.BuildGraph(recs).DOT())
		return 0
	case "ancestry", "descendants", "agents":
		if len(args) != 3 {
			usage()
			return 2
		}
		return query(recs, cmd, args[2])
	default:
		usage()
		return 2
	}
}

func usage() {
	fmt.Fprintln(os.Stderr,
		"usage: auditview verify|report|dot <log.json> | auditview ancestry|descendants|agents <log.json> <node>")
}

func report(recs []audit.Record) int {
	byKind := map[string]int{}
	byLayer := map[string]int{}
	for _, r := range recs {
		byKind[r.Kind.String()]++
		byLayer[r.Layer.String()]++
	}
	fmt.Printf("records: %d\n", len(recs))
	printCounts("by kind", byKind)
	printCounts("by layer", byLayer)
	if err := audit.VerifySegment(recs, nil); err != nil {
		fmt.Println("chain: BROKEN —", err)
		return 1
	}
	fmt.Println("chain: intact")
	for _, r := range recs {
		if r.Kind == audit.FlowDenied {
			fmt.Printf("denial seq=%d %s -> %s: %s\n", r.Seq, r.Src, r.Dst, r.Note)
		}
		if r.Kind == audit.BreakGlass {
			fmt.Printf("break-glass seq=%d: %s\n", r.Seq, r.Note)
		}
	}
	return 0
}

func printCounts(title string, counts map[string]int) {
	keys := make([]string, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	fmt.Println(title + ":")
	for _, k := range keys {
		fmt.Printf("  %-16s %d\n", k, counts[k])
	}
}

func query(recs []audit.Record, kind, node string) int {
	g := audit.BuildGraph(recs)
	var (
		out []string
		err error
	)
	switch kind {
	case "ancestry":
		out, err = g.Ancestry(node)
	case "descendants":
		out, err = g.Descendants(node)
	case "agents":
		out, err = g.Agents(node)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "auditview:", err)
		return 1
	}
	for _, n := range out {
		fmt.Println(n)
	}
	return 0
}
