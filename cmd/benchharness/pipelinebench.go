package main

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"lciot/internal/cep"
	"lciot/internal/core"
	"lciot/internal/ifc"
	"lciot/internal/msg"
	"lciot/internal/sbus"
)

// B16: the parallel dispatch plane, end to end. Each lane runs the whole
// pipeline — bus delivery → CEP detection → policy dispatch over 1000
// armed rules → audit staging — on its own shard, and the capacity sum
// across lanes is the domain's concurrent throughput (the same
// methodology B14 established for bare deliveries). A broadcast-pattern
// row prices the one cross-lane serialization point.
func measureB16() {
	schema := msg.MustSchema("vitals", ifc.EmptyLabel,
		msg.Field{Name: "patient", Type: msg.TString, Required: true},
		msg.Field{Name: "heart-rate", Type: msg.TFloat, Required: true},
	)
	ctx := ifc.MustContext([]ifc.Tag{"medical"}, nil)
	mkMsg := func() *msg.Message {
		return msg.New("vitals").Set("patient", msg.Str("ann")).Set("heart-rate", msg.Float(72))
	}

	// armedPolicy spreads 1000 rules over the lanes' hot patterns (3 per
	// lane, guards evaluated but never true — the cost is dispatch +
	// guard, not action storms) with the remainder on cold patterns no
	// detection ever names.
	armedPolicy := func(lanes int) string {
		const total = 1000
		src := ""
		n := 0
		for lane := 0; lane < lanes; lane++ {
			for j := 0; j < 3; j++ {
				src += fmt.Sprintf("rule \"hot-%d-%d\" { on event \"pat-%d\" when event.value > 1000 do alert \"x\" }\n", lane, j, lane)
				n++
			}
		}
		for ; n < total; n++ {
			src += fmt.Sprintf("rule \"cold-%d\" { on event \"cold-%d\" when event.value > 1000 do alert \"x\" }\n", n, n)
		}
		return src
	}

	// buildDomain wires one full lane per shard: a source and a sink homed
	// on shard i, the sink's handler feeding the event stream, and a
	// Threshold pattern pinned to that sink's lane by its Sources
	// declaration. The feed names the sink component as the event source,
	// so the detection runs on the CEP lane aligned with the bus shard.
	buildDomain := func(name string, shards int) (*core.Domain, []*sbus.Component, []string) {
		d, err := core.NewDomain(name, core.Options{ACL: benchACL(), Shards: shards})
		if err != nil {
			panic(err)
		}
		if err := d.LoadPolicy(armedPolicy(shards)); err != nil {
			panic(err)
		}
		bus := d.Bus()
		srcs := make([]*sbus.Component, shards)
		sinks := make([]string, shards)
		for i := 0; i < shards; i++ {
			srcName := nameOnShard(bus, fmt.Sprintf("s16src-%d-", i), i)
			dstName := nameOnShard(bus, fmt.Sprintf("s16dst-%d-", i), i)
			sinks[i] = dstName
			lane := i
			src, err := bus.Register(srcName, "p", ctx, nil,
				sbus.EndpointSpec{Name: "out", Dir: sbus.Source, Schema: schema})
			if err != nil {
				panic(err)
			}
			if _, err := bus.Register(dstName, "p", ctx,
				func(m *msg.Message, del sbus.Delivery) {
					d.FeedEvent(cep.Event{
						Type: "vitals", Source: dstName,
						Time: time.Now(), Value: 72,
					})
				},
				sbus.EndpointSpec{Name: "in", Dir: sbus.Sink, Schema: schema}); err != nil {
				panic(err)
			}
			if err := bus.Connect("p", srcName+".out", dstName+".in"); err != nil {
				panic(err)
			}
			d.RegisterPattern(&cep.Threshold{
				PatternName: fmt.Sprintf("pat-%d", lane),
				Sources:     []string{dstName},
				Count:       1, Window: time.Minute,
			})
			srcs[i] = src
		}
		return d, srcs, sinks
	}

	// Capacity sum, B14 methodology: every lane of every shard count
	// measured alone, rounds interleaved so host slow phases hit all rows
	// equally, best of 5 kept, audit backlogs flushed before each lane.
	const perLane = 4000
	counts := shardCountsFlag
	if counts == nil {
		counts = []int{1, 4, 32}
	}
	domains := make([]*core.Domain, len(counts))
	lanes := make([][]*sbus.Component, len(counts))
	for ci, shards := range counts {
		domains[ci], lanes[ci], _ = buildDomain(fmt.Sprintf("bench16-%d", shards), shards)
	}
	best := make([][]time.Duration, len(counts))
	type laneRef struct{ ci, li int }
	var order []laneRef
	for ci := range counts {
		best[ci] = make([]time.Duration, len(lanes[ci]))
		for li := range lanes[ci] {
			order = append(order, laneRef{ci, li})
		}
	}
	runtime.GC()
	const reps = 5
	for rep := 0; rep < reps; rep++ {
		off := rep * len(order) / reps
		for k := 0; k < len(order); k++ {
			ref := order[(k+off)%len(order)]
			src := lanes[ref.ci][ref.li]
			for _, dom := range domains {
				dom.Log().Flush()
			}
			m := mkMsg()
			d, _ := timeOpAllocsN(100, perLane, func() {
				if _, err := src.Publish("out", m); err != nil {
					panic(err)
				}
			})
			if rep == 0 || d < best[ref.ci][ref.li] {
				best[ref.ci][ref.li] = d
			}
		}
	}
	var baseRate float64
	for ci, shards := range counts {
		var aggregate float64
		for _, d := range best[ci] {
			aggregate += 1e9 / float64(d.Nanoseconds())
		}
		mode := "delivery+CEP+policy(1000 rules, 3/bucket)+audit per op; per-lane rates summed, best of 5"
		if runtime.NumCPU() >= 2 && shards > 1 {
			domains[ci].Log().Flush()
			procs := runtime.NumCPU()
			if shards < procs {
				procs = shards
			}
			prev := runtime.GOMAXPROCS(procs)
			var wg sync.WaitGroup
			start := time.Now()
			for _, src := range lanes[ci] {
				wg.Add(1)
				go func(c *sbus.Component) {
					defer wg.Done()
					lm := mkMsg()
					for i := 0; i < perLane; i++ {
						if _, err := c.Publish("out", lm); err != nil {
							panic(err)
						}
					}
				}(src)
			}
			wg.Wait()
			wall := time.Since(start)
			runtime.GOMAXPROCS(prev)
			concRate := float64(shards*perLane) / wall.Seconds()
			mode = fmt.Sprintf("%s; concurrent pass at GOMAXPROCS=%d measured %.2fM/s",
				mode, procs, concRate/1e6)
		}
		perOp := time.Duration(1e9 / aggregate)
		note := fmt.Sprintf("%.2fM pipeline ops/s aggregate; %s", aggregate/1e6, mode)
		if shards == 1 {
			baseRate = aggregate
		} else if baseRate > 0 {
			note = fmt.Sprintf("%.2fx vs 1 shard; %s", aggregate/baseRate, note)
		}
		row("B16", fmt.Sprintf("end-to-end pipeline, %d shards", shards), perOp, note)
	}

	// The broadcast residue: register one sourceless pattern on the
	// 4-shard domain (it sees every event, under the one shared lock) and
	// re-price a single lane's op. The delta against the homed row above
	// is the cost rule authors pay for a cross-lane correlation.
	for ci, shards := range counts {
		if shards == 1 || len(lanes[ci]) == 0 {
			continue
		}
		domains[ci].RegisterPattern(&cep.Threshold{
			PatternName: "bcast-watch",
			Match:       func(ev cep.Event) bool { return ev.Value > 1e12 },
			Count:       3, Window: time.Minute,
		})
		domains[ci].Log().Flush()
		m := mkMsg()
		src := lanes[ci][0]
		d, _ := minOf5(func() (time.Duration, float64) {
			return timeOpAllocsN(100, perLane, func() {
				if _, err := src.Publish("out", m); err != nil {
					panic(err)
				}
			})
		})
		row("B16", fmt.Sprintf("pipeline + broadcast pattern, %d shards", shards), d,
			"one sourceless pattern: every lane also takes the broadcast lock; min of 5")
		break // one broadcast row is enough; price it at the first multi-shard count
	}
	for _, dom := range domains {
		dom.Close()
	}
}
