package main

import (
	"fmt"
	"runtime"
	"time"

	"lciot/internal/ifc"
	"lciot/internal/msg"
	"lciot/internal/sbus"
	"lciot/internal/telemetry"
)

// B15: the telemetry layer's own overhead, measured end to end on the
// publish+delivery path. The B3..B14 tables run dark (the gate is off, as
// it is for every library embedder), so their trajectory stays comparable
// across the telemetry introduction; B15 is where the enabled cost is
// accounted for. Three rows: the dark baseline, metrics armed, and
// metrics armed with every-publish flow tracing (the worst case — lciotd
// operators run 1-in-N). The acceptance bar is metrics-armed within 5%
// of dark.
func measureB15() {
	schema := msg.MustSchema("vitals", ifc.EmptyLabel,
		msg.Field{Name: "patient", Type: msg.TString, Required: true},
		msg.Field{Name: "heart-rate", Type: msg.TFloat, Required: true},
	)
	ctx := ifc.MustContext([]ifc.Tag{"medical"}, nil)

	bus := sbus.NewBus("b15", benchACL(), nil, nil)
	defer bus.Close()
	src, err := bus.Register("b15-src", "p", ctx, nil,
		sbus.EndpointSpec{Name: "out", Dir: sbus.Source, Schema: schema})
	if err != nil {
		panic(err)
	}
	sink := 0
	if _, err := bus.Register("b15-dst", "p", ctx,
		func(*msg.Message, sbus.Delivery) { sink++ },
		sbus.EndpointSpec{Name: "in", Dir: sbus.Sink, Schema: schema}); err != nil {
		panic(err)
	}
	if err := bus.Connect("p", "b15-src.out", "b15-dst.in"); err != nil {
		panic(err)
	}
	m := msg.New("vitals").Set("patient", msg.Str("ann")).Set("heart-rate", msg.Float(72))
	publish := func() {
		// Publish stamps the trace context onto the message; clear it so
		// a reused message doesn't turn every later pass (dark included)
		// into a relay-path measurement.
		m.Trace = telemetry.TraceContext{}
		if _, err := src.Publish("out", m); err != nil {
			panic(err)
		}
	}

	// Interleaved min-of-3 per mode. Before each pass the audit backlog is
	// flushed, the in-memory record chain pruned, and the GC forced: the
	// log otherwise grows by ~200k records across the passes, and a
	// monotonically growing live heap taxes whichever mode happens to run
	// later — a systematic bias against the armed rows, since dark is
	// measured first in every rep.
	levelHeap := func() {
		log := bus.Log()
		log.Flush()
		next, _ := log.Checkpoint()
		log.Prune(next)
		runtime.GC()
	}
	type mode struct {
		name   string
		arm    func()
		disarm func()
	}
	modes := []mode{
		{"publish+delivery, telemetry disabled", func() {}, func() {}},
		{"publish+delivery, metrics enabled",
			func() { telemetry.Enable() },
			func() { telemetry.Disable() }},
		{"publish+delivery, metrics + tracing every publish",
			func() { telemetry.Enable(); telemetry.SetTraceSampling(1) },
			func() { telemetry.Disable(); telemetry.SetTraceSampling(0); telemetry.ResetSpans() }},
	}
	// The mode order rotates across reps so every mode is measured in every
	// position: the first pass after a GC behaves differently from the third,
	// and a fixed order would fold that positional cost into the ratio.
	const reps = 6
	bestNs := make([]float64, len(modes))
	bestAllocs := make([]float64, len(modes))
	seen := make([]bool, len(modes))
	for rep := 0; rep < reps; rep++ {
		for k := range modes {
			i := (rep + k) % len(modes)
			md := modes[i]
			levelHeap()
			md.arm()
			// 100k ops per pass (~0.4s): long enough that whole GC
			// cycles from the async audit drain amortize instead of
			// landing on one unlucky mode.
			d, a := timeOpAllocsN(5000, 100000, publish)
			md.disarm()
			if !seen[i] || float64(d.Nanoseconds()) < bestNs[i] {
				bestNs[i], bestAllocs[i], seen[i] = float64(d.Nanoseconds()), a, true
			}
		}
	}
	for i, md := range modes {
		note := fmt.Sprintf("dark baseline; min of %d", reps)
		if i > 0 {
			note = fmt.Sprintf("%+.1f%% vs dark; min of %d", 100*(bestNs[i]-bestNs[0])/bestNs[0], reps)
		}
		rowAllocs("B15", md.name, time.Duration(int64(bestNs[i])), bestAllocs[i], note)
	}
}
