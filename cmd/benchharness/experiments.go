package main

import (
	"errors"
	"fmt"
	"strings"
	"time"

	"lciot/internal/ac"
	"lciot/internal/audit"
	"lciot/internal/cep"
	"lciot/internal/core"
	"lciot/internal/ctxmodel"
	"lciot/internal/device"
	"lciot/internal/ifc"
	"lciot/internal/msg"
	"lciot/internal/sbus"
	"lciot/internal/transport"
)

// An experiment reproduces one figure of the paper.
type experiment struct {
	id    string
	title string
	run   func() (observation string, err error)
}

var experiments = []experiment{
	{"E1", "Fig 1: policy->enforce->audit loop", runE1},
	{"E2", "Fig 2: five-hop component chain", runE2},
	{"E3", "Fig 3: declass/endorse flow matrix", runE3},
	{"E4", "Fig 4: illegal flow prevented", runE4},
	{"E5", "Fig 5: sanitiser endorsement", runE5},
	{"E6", "Fig 6: statistics declassification", runE6},
	{"E7", "Fig 7: full home-monitoring system", runE7},
	{"E8", "Fig 8: third-party reconfiguration", runE8},
	{"E9", "Fig 9: cross-machine enforcement", runE9},
	{"E10", "Fig 10: message-layer tags", runE10},
	{"E11", "Fig 11: audit graph queries", runE11},
}

var vitalsSchema = msg.MustSchema("vitals", ifc.EmptyLabel,
	msg.Field{Name: "patient", Type: msg.TString, Required: true},
	msg.Field{Name: "heart-rate", Type: msg.TFloat, Required: true},
)

func annCtx() ifc.SecurityContext {
	return ifc.MustContext([]ifc.Tag{"medical", "ann"}, []ifc.Tag{"hosp-dev", "consent"})
}

func zebCtx() ifc.SecurityContext {
	return ifc.MustContext([]ifc.Tag{"medical", "zeb"}, []ifc.Tag{"zeb-dev", "consent"})
}

func openACL(principals ...ifc.PrincipalID) *ac.ACL {
	var a ac.ACL
	a.DefineRole(ac.Role{Name: "any", Grants: []ac.Permission{{Action: "*", Resource: "**"}}})
	for _, p := range principals {
		_ = a.Assign(ac.Assignment{Principal: p, Role: "any", Args: map[string]string{}})
	}
	return &a
}

func vitalsMsg(patient string, hr float64) *msg.Message {
	m := msg.New("vitals").Set("patient", msg.Str(patient)).Set("heart-rate", msg.Float(hr))
	m.DataID = "reading/" + patient
	return m
}

// runE1 exercises the Fig. 1 loop: policy drives a connection, enforcement
// blocks an illegal one, audit proves both.
func runE1() (string, error) {
	d, err := core.NewDomain("e1", core.Options{})
	if err != nil {
		return "", err
	}
	if _, err := d.Bus().Register("sensor", "h", annCtx(), nil,
		sbus.EndpointSpec{Name: "out", Dir: sbus.Source, Schema: vitalsSchema}); err != nil {
		return "", err
	}
	delivered := 0
	if _, err := d.Bus().Register("analyser", "h", annCtx(),
		func(*msg.Message, sbus.Delivery) { delivered++ },
		sbus.EndpointSpec{Name: "in", Dir: sbus.Sink, Schema: vitalsSchema}); err != nil {
		return "", err
	}
	if _, err := d.Bus().Register("advertiser", "h", ifc.SecurityContext{},
		nil, sbus.EndpointSpec{Name: "in", Dir: sbus.Sink, Schema: vitalsSchema}); err != nil {
		return "", err
	}
	if err := d.LoadPolicy(`rule "p" { on context go when ctx.go do connect "sensor.out" -> "analyser.in" }`); err != nil {
		return "", err
	}
	d.Store().Set("go", ctxmodel.Bool(true))
	if err := d.Bus().Connect(core.PolicyEnginePrincipal, "sensor.out", "advertiser.in"); !errors.Is(err, ifc.ErrFlowDenied) {
		return "", fmt.Errorf("advertiser connect = %v, want denial", err)
	}
	sensor, _ := d.Bus().Component("sensor")
	if _, err := sensor.Publish("out", vitalsMsg("ann", 72)); err != nil {
		return "", err
	}
	rep := audit.Report(d.Log())
	if delivered != 1 || !rep.ChainIntact || rep.ByKind["flow-denied"] != 1 {
		return "", fmt.Errorf("loop incomplete: delivered=%d report=%v", delivered, rep.ByKind)
	}
	return fmt.Sprintf("policy connected channel; 1 delivery, 1 audited denial, chain intact over %d records", rep.Total), nil
}

// runE2 reproduces the Fig. 2 chain with policy persisting end to end.
func runE2() (string, error) {
	bus := sbus.NewBus("e2", openACL("h"), nil, nil)
	names := []string{"home", "gateway", "app", "db", "analyser"}
	counts := make([]int, len(names))
	for i, n := range names {
		i := i
		var specs []sbus.EndpointSpec
		if i > 0 {
			specs = append(specs, sbus.EndpointSpec{Name: "in", Dir: sbus.Sink, Schema: vitalsSchema})
		}
		if i < len(names)-1 {
			specs = append(specs, sbus.EndpointSpec{Name: "out", Dir: sbus.Source, Schema: vitalsSchema})
		}
		if _, err := bus.Register(n, "h", annCtx(),
			func(*msg.Message, sbus.Delivery) { counts[i]++ }, specs...); err != nil {
			return "", err
		}
	}
	for i := 0; i+1 < len(names); i++ {
		if err := bus.Connect("h", names[i]+".out", names[i+1]+".in"); err != nil {
			return "", err
		}
	}
	m := vitalsMsg("ann", 70)
	for i := 0; i+1 < len(names); i++ {
		comp, _ := bus.Component(names[i])
		if _, err := comp.Publish("out", m); err != nil {
			return "", err
		}
	}
	for i := 1; i < len(names); i++ {
		if counts[i] != 1 {
			return "", fmt.Errorf("hop %s received %d", names[i], counts[i])
		}
	}
	// Public exporter cannot be appended.
	if _, err := bus.Register("exporter", "h", ifc.SecurityContext{}, nil,
		sbus.EndpointSpec{Name: "in", Dir: sbus.Sink, Schema: vitalsSchema}); err != nil {
		return "", err
	}
	if err := bus.Connect("h", "analyser.out", "exporter.in"); err == nil {
		return "", errors.New("chain leaked to public exporter")
	}
	return "4 hops delivered under one policy regime; public 5th hop refused", nil
}

// runE3 checks the Fig. 3 flow matrix.
func runE3() (string, error) {
	s1 := ifc.MustContext([]ifc.Tag{"s1"}, nil)
	s1s2 := ifc.MustContext([]ifc.Tag{"s1", "s2"}, nil)
	s3 := ifc.MustContext([]ifc.Tag{"s3"}, nil)
	i1 := ifc.MustContext(nil, []ifc.Tag{"i1"})
	type flow struct {
		src, dst ifc.SecurityContext
		want     bool
	}
	flows := []flow{
		{s1, s1s2, true}, {s1, s3, false}, {s1s2, s1, false}, {s1, i1, false},
	}
	for _, f := range flows {
		if got := f.src.CanFlowTo(f.dst); got != f.want {
			return "", fmt.Errorf("flow %v -> %v = %v, want %v", f.src, f.dst, got, f.want)
		}
	}
	return "allowed: {s1}->{s1,s2}; prevented: cross-domain, reverse, integrity-demanding", nil
}

// runE4 reproduces Fig. 4 with the exact missing tags.
func runE4() (string, error) {
	d := ifc.CheckFlow(zebCtx(), annCtx())
	if d.Allowed {
		return "", errors.New("Zeb->Ann allowed")
	}
	if d.MissingSecrecy.String() != "{zeb}" || d.MissingIntegrity.String() != "{hosp-dev}" {
		return "", fmt.Errorf("missing = %v / %v", d.MissingSecrecy, d.MissingIntegrity)
	}
	if !annCtx().CanFlowTo(annCtx()) {
		return "", errors.New("Ann->Ann denied")
	}
	return "denied with destination S lacking {zeb}, source I lacking {hosp-dev} — exactly Fig 4's annotation", nil
}

// runE5 reproduces the Fig. 5 sanitiser.
func runE5() (string, error) {
	gate := &ifc.Gate{
		Name:   "device-input-sanitiser",
		Input:  zebCtx(),
		Output: ifc.MustContext([]ifc.Tag{"medical", "zeb"}, []ifc.Tag{"hosp-dev", "consent"}),
		Transform: func(b []byte) ([]byte, error) {
			return append([]byte("hosp-format:"), b...), nil
		},
	}
	if gate.Kind() != ifc.GateEndorser {
		return "", fmt.Errorf("gate kind = %v", gate.Kind())
	}
	op := ifc.NewEntity("sanitiser", gate.Input)
	if err := op.GrantPrivileges(gate.RequiredPrivileges()); err != nil {
		return "", err
	}
	out, err := gate.Pipe(op, zebCtx(), gate.Output, []byte("raw"))
	if err != nil {
		return "", err
	}
	if !strings.HasPrefix(string(out), "hosp-format:") {
		return "", errors.New("transform not applied")
	}
	return "endorser bridged zeb-dev -> hosp-dev with mandatory format conversion", nil
}

// runE6 reproduces the Fig. 6 declassifier.
func runE6() (string, error) {
	merged := ifc.MergeContexts(annCtx(), zebCtx())
	statsCtx := ifc.MustContext([]ifc.Tag{"medical", "stats"}, []ifc.Tag{"anon"})
	gate := &ifc.Gate{
		Name:      "statistics-generator",
		Input:     merged,
		Output:    statsCtx,
		Transform: func([]byte) ([]byte, error) { return []byte("aggregate"), nil },
	}
	if err := ifc.EnforceFlow(annCtx(), statsCtx); err == nil {
		return "", errors.New("raw data reached management")
	}
	op := ifc.NewEntity("stats", gate.Input)
	if err := op.GrantPrivileges(gate.RequiredPrivileges()); err != nil {
		return "", err
	}
	out, err := gate.Pipe(op, annCtx(), statsCtx, []byte("ann-raw"))
	if err != nil {
		return "", err
	}
	if string(out) != "aggregate" {
		return "", errors.New("anonymisation skipped")
	}
	return "raw->manager denied; anonymised aggregate flows to S={medical,stats} I={anon}", nil
}

// runE7 reproduces the full Fig. 7 system (condensed from the example).
func runE7() (string, error) {
	now := time.Unix(1700000000, 0)
	clock := func() time.Time { return now }
	d, err := core.NewDomain("e7", core.Options{Clock: clock})
	if err != nil {
		return "", err
	}
	if _, err := d.Bus().Register("ann-analyser", "h", annCtx(), nil,
		sbus.EndpointSpec{Name: "alerts", Dir: sbus.Source, Schema: vitalsSchema}); err != nil {
		return "", err
	}
	if _, err := d.Bus().Register("emergency-team", "h", annCtx(), nil,
		sbus.EndpointSpec{Name: "in", Dir: sbus.Sink, Schema: vitalsSchema}); err != nil {
		return "", err
	}
	actuator := device.NewActuator("ann-sensor", map[string][2]float64{"sample-interval": {1, 3600}})
	d.Devices().RegisterActuator(actuator)
	d.RegisterPattern(&cep.Threshold{
		PatternName: "tachycardia",
		Match:       func(e cep.Event) bool { return e.Value > 120 },
		Count:       3, Window: 10 * time.Minute,
	})
	d.Store().Set("emergency", ctxmodel.Bool(false))
	if err := d.LoadPolicy(`
rule "emergency" priority 10 {
    on event "tachycardia"
    when not ctx.emergency
    do set emergency = true; alert "emergency"; breakglass 30m;
       connect "ann-analyser.alerts" -> "emergency-team.in";
       actuate "ann-sensor" "sample-interval" 1
}`); err != nil {
		return "", err
	}
	sensor := device.NewVitalsSensor("ann-sensor", 70, 42, now, 10*time.Second)
	sensor.ScheduleEpisode(20, 40, 170)
	for i := 0; i < 45; i++ {
		r := sensor.Next()
		d.FeedEvent(cep.Event{Type: "heart-rate", Source: r.DeviceID, Time: r.At, Value: r.Value})
	}
	if len(d.Alerts()) != 1 {
		return "", fmt.Errorf("alerts = %v", d.Alerts())
	}
	if v, _ := actuator.State("sample-interval"); v != 1 {
		return "", errors.New("sensor not actuated")
	}
	if _, active := d.PolicyEngine().OverrideActive(); !active {
		return "", errors.New("break-glass not open")
	}
	now = now.Add(31 * time.Minute)
	d.Tick()
	if len(d.Bus().Channels()) != 0 {
		return "", errors.New("emergency channel not reverted")
	}
	return "emergency detected once; team plugged in under break-glass; sensor re-actuated; reverted after 30m", nil
}

// runE8 reproduces Fig. 8 third-party reconfiguration.
func runE8() (string, error) {
	bus := sbus.NewBus("e8", openACL("policy-engine"), nil, nil)
	if _, err := bus.Register("a", "h", annCtx(), nil,
		sbus.EndpointSpec{Name: "out", Dir: sbus.Source, Schema: vitalsSchema}); err != nil {
		return "", err
	}
	got := 0
	if _, err := bus.Register("b", "h", annCtx(),
		func(*msg.Message, sbus.Delivery) { got++ },
		sbus.EndpointSpec{Name: "in", Dir: sbus.Sink, Schema: vitalsSchema}); err != nil {
		return "", err
	}
	if err := bus.Apply(sbus.ControlOp{Op: "connect", By: "policy-engine", Src: "a.out", Dst: "b.in"}); err != nil {
		return "", err
	}
	if err := bus.Apply(sbus.ControlOp{Op: "connect", By: "mallory", Src: "a.out", Dst: "b.in"}); !errors.Is(err, ac.ErrDenied) {
		return "", fmt.Errorf("mallory = %v", err)
	}
	a, _ := bus.Component("a")
	if _, err := a.Publish("out", vitalsMsg("ann", 70)); err != nil {
		return "", err
	}
	if got != 1 {
		return "", errors.New("resulting interaction missing")
	}
	return "control message by trusted engine created A->B; untrusted issuer refused by AC", nil
}

// runE9 reproduces Fig. 9 cross-machine enforcement.
func runE9() (string, error) {
	net := transport.NewMemNetwork()
	home := sbus.NewBus("home", openACL("h"), nil, nil)
	cloud := sbus.NewBus("cloud", openACL("h"), nil, nil)
	l, err := net.Listen("cloud")
	if err != nil {
		return "", err
	}
	defer l.Close()
	go cloud.Serve(l)
	if _, err := home.LinkTo(net, "cloud"); err != nil {
		return "", err
	}
	if _, err := home.Register("dev", "h", annCtx(), nil,
		sbus.EndpointSpec{Name: "out", Dir: sbus.Source, Schema: vitalsSchema}); err != nil {
		return "", err
	}
	got := make(chan struct{}, 16)
	if _, err := cloud.Register("analyser", "h", annCtx(),
		func(*msg.Message, sbus.Delivery) { got <- struct{}{} },
		sbus.EndpointSpec{Name: "in", Dir: sbus.Sink, Schema: vitalsSchema}); err != nil {
		return "", err
	}
	if err := home.Connect("h", "dev.out", "cloud:analyser.in"); err != nil {
		return "", err
	}
	dev, _ := home.Component("dev")
	if _, err := dev.Publish("out", vitalsMsg("ann", 70)); err != nil {
		return "", err
	}
	select {
	case <-got:
	case <-time.After(5 * time.Second):
		return "", errors.New("no cross-bus delivery")
	}
	egress := home.Log().Select(func(r audit.Record) bool { return r.Kind == audit.FlowAllowed })
	ingress := cloud.Log().Select(func(r audit.Record) bool { return r.Kind == audit.FlowAllowed })
	if len(egress) == 0 || len(ingress) == 0 {
		return "", errors.New("one side did not audit")
	}
	return "message crossed substrates; both sides enforced and audited independently", nil
}

// runE10 reproduces Fig. 10 message-layer tags with quenching.
func runE10() (string, error) {
	person := msg.MustSchema("person", ifc.MustLabel("A", "B"),
		msg.Field{Name: "name", Type: msg.TString, Secrecy: ifc.MustLabel("C")},
		msg.Field{Name: "country", Type: msg.TString},
	)
	bus := sbus.NewBus("e10", openACL("h"), nil, nil)
	if _, err := bus.Register("app", "h", ifc.SecurityContext{}, nil,
		sbus.EndpointSpec{Name: "out", Dir: sbus.Source, Schema: person}); err != nil {
		return "", err
	}
	var quenched []string
	partial, err := bus.Register("partial", "h", ifc.SecurityContext{},
		func(_ *msg.Message, d sbus.Delivery) { quenched = d.Quenched },
		sbus.EndpointSpec{Name: "in", Dir: sbus.Sink, Schema: person})
	if err != nil {
		return "", err
	}
	partial.SetClearance(ifc.MustLabel("A", "B"))
	none, err := bus.Register("none", "h", ifc.SecurityContext{},
		func(*msg.Message, sbus.Delivery) {},
		sbus.EndpointSpec{Name: "in", Dir: sbus.Sink, Schema: person})
	if err != nil {
		return "", err
	}
	none.SetClearance(ifc.MustLabel("A"))
	for _, dst := range []string{"partial.in", "none.in"} {
		if err := bus.Connect("h", "app.out", dst); err != nil {
			return "", err
		}
	}
	app, _ := bus.Component("app")
	m := msg.New("person").Set("name", msg.Str("ann")).Set("country", msg.Str("uk"))
	n, err := app.Publish("out", m)
	if err != nil {
		return "", err
	}
	if n != 1 || len(quenched) != 1 || quenched[0] != "name" {
		return "", fmt.Errorf("n=%d quenched=%v", n, quenched)
	}
	return "type tags {A,B} blocked the uncleared sink; attribute tag C quenched 'name' for the partial sink", nil
}

// runE11 reproduces the Fig. 11 audit-graph queries.
func runE11() (string, error) {
	g := &audit.Graph{}
	for _, n := range []audit.Node{
		{ID: "F1", Kind: audit.NodeData}, {ID: "F2", Kind: audit.NodeData},
		{ID: "F3", Kind: audit.NodeData}, {ID: "F4", Kind: audit.NodeData},
		{ID: "P1", Kind: audit.NodeProcess}, {ID: "P2", Kind: audit.NodeProcess},
		{ID: "A1", Kind: audit.NodeAgent}, {ID: "A2", Kind: audit.NodeAgent},
	} {
		g.AddNode(n)
	}
	edges := []audit.Edge{
		{Src: "P1", Dst: "F1", Kind: audit.EdgeUsed},
		{Src: "P1", Dst: "F2", Kind: audit.EdgeUsed},
		{Src: "F3", Dst: "P1", Kind: audit.EdgeGeneratedBy},
		{Src: "P2", Dst: "F3", Kind: audit.EdgeUsed},
		{Src: "F4", Dst: "P2", Kind: audit.EdgeGeneratedBy},
		{Src: "P2", Dst: "P1", Kind: audit.EdgeInformedBy},
		{Src: "P1", Dst: "A1", Kind: audit.EdgeControlledBy},
		{Src: "P2", Dst: "A2", Kind: audit.EdgeControlledBy},
	}
	for _, e := range edges {
		if err := g.AddEdge(e); err != nil {
			return "", err
		}
	}
	anc, err := g.Ancestry("F4")
	if err != nil {
		return "", err
	}
	agents, err := g.Agents("F4")
	if err != nil {
		return "", err
	}
	if len(anc) != 7 || len(agents) != 2 {
		return "", fmt.Errorf("ancestry=%d agents=%d", len(anc), len(agents))
	}
	return fmt.Sprintf("F4's ancestry reaches %d nodes incl. sources F1,F2; responsible agents: %s",
		len(anc), strings.Join(agents, ",")), nil
}
