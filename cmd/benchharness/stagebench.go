package main

import (
	"fmt"
	"runtime"
	"time"

	"lciot/internal/cep"
	"lciot/internal/core"
	"lciot/internal/ifc"
	"lciot/internal/msg"
	"lciot/internal/sbus"
	"lciot/internal/telemetry"
)

// B17: stage-level latency attribution priced on the B16 pipeline lane
// (delivery → CEP detection → policy dispatch over 1000 armed rules →
// audit staging). Four rows: the dark baseline; metrics enabled with
// stage sampling OFF — stage attribution's whole cost on this path is
// one atomic load at publish, so the row's delta over dark must track
// the metrics-enablement cost B15 already prices to within ±5%, leaving
// attribution's own disabled-path cost ≈ 0; the 1-in-8 mode; and the
// every-publish worst case, where each op allocates a clock and feeds
// four histogram edges. The armed rows report their delta over the
// metrics-on row, which isolates attribution itself from enablement.
func measureB17() {
	schema := msg.MustSchema("vitals", ifc.EmptyLabel,
		msg.Field{Name: "patient", Type: msg.TString, Required: true},
		msg.Field{Name: "heart-rate", Type: msg.TFloat, Required: true},
	)
	ctx := ifc.MustContext([]ifc.Tag{"medical"}, nil)

	// One full B16-style lane, with the sink handler threading the
	// message's stage clock into the event so detect/decide/audit marks
	// land on armed passes.
	armedPolicy := func() string {
		const total = 1000
		src := ""
		n := 0
		for j := 0; j < 3; j++ {
			src += fmt.Sprintf("rule \"hot-%d\" { on event \"pat-0\" when event.value > 1000 do alert \"x\" }\n", j)
			n++
		}
		for ; n < total; n++ {
			src += fmt.Sprintf("rule \"cold-%d\" { on event \"cold-%d\" when event.value > 1000 do alert \"x\" }\n", n, n)
		}
		return src
	}
	d, err := core.NewDomain("bench17", core.Options{ACL: benchACL()})
	if err != nil {
		panic(err)
	}
	defer d.Close()
	if err := d.LoadPolicy(armedPolicy()); err != nil {
		panic(err)
	}
	bus := d.Bus()
	src, err := bus.Register("b17-src", "p", ctx, nil,
		sbus.EndpointSpec{Name: "out", Dir: sbus.Source, Schema: schema})
	if err != nil {
		panic(err)
	}
	if _, err := bus.Register("b17-dst", "p", ctx,
		func(m *msg.Message, _ sbus.Delivery) {
			d.FeedEvent(cep.Event{
				Type: "vitals", Source: "b17-dst",
				Time: time.Now(), Value: 72, Stage: m.Stage,
			})
		},
		sbus.EndpointSpec{Name: "in", Dir: sbus.Sink, Schema: schema}); err != nil {
		panic(err)
	}
	if err := bus.Connect("p", "b17-src.out", "b17-dst.in"); err != nil {
		panic(err)
	}
	d.RegisterPattern(&cep.Threshold{
		PatternName: "pat-0", Sources: []string{"b17-dst"},
		Count: 1, Window: time.Minute,
	})

	m := msg.New("vitals").Set("patient", msg.Str("ann")).Set("heart-rate", msg.Float(72))
	publish := func() {
		// Publish stamps trace context and stage clock onto the message;
		// clear both so every op makes a fresh sampling decision instead
		// of riding the previous op's clock.
		m.Trace = telemetry.TraceContext{}
		m.Stage = nil
		if _, err := src.Publish("out", m); err != nil {
			panic(err)
		}
	}

	// B15 methodology: interleaved min-of-N with the mode order rotating
	// across reps, heap leveled (audit backlog flushed, chain pruned, GC
	// forced) before every pass so no mode inherits another's garbage.
	levelHeap := func() {
		log := d.Log()
		log.Flush()
		next, _ := log.Checkpoint()
		log.Prune(next)
		runtime.GC()
	}
	type mode struct {
		name   string
		arm    func()
		disarm func()
	}
	modes := []mode{
		{"pipeline lane, telemetry disabled", func() {}, func() {}},
		{"pipeline lane, metrics on, stage sampling off",
			func() { telemetry.Enable() },
			func() { telemetry.Disable() }},
		{"pipeline lane, stage attribution 1-in-8",
			func() { telemetry.Enable(); telemetry.SetStageSampling(8) },
			func() { telemetry.Disable(); telemetry.SetStageSampling(0) }},
		{"pipeline lane, stage attribution every publish",
			func() { telemetry.Enable(); telemetry.SetStageSampling(1) },
			func() { telemetry.Disable(); telemetry.SetStageSampling(0) }},
	}
	// Like B16's pipeline rows, no allocs/op: the async audit committer
	// runs concurrently with the measured loop, so per-op alloc counts
	// wander with drain timing (B15 prices the stable per-instrument
	// allocation story on a synchronous lane).
	const reps = 6
	bestNs := make([]float64, len(modes))
	seen := make([]bool, len(modes))
	for rep := 0; rep < reps; rep++ {
		for k := range modes {
			i := (rep + k) % len(modes)
			md := modes[i]
			levelHeap()
			md.arm()
			dur, _ := timeOpAllocsN(1000, 20000, publish)
			md.disarm()
			if !seen[i] || float64(dur.Nanoseconds()) < bestNs[i] {
				bestNs[i], seen[i] = float64(dur.Nanoseconds()), true
			}
		}
	}
	for i, md := range modes {
		var note string
		switch i {
		case 0:
			note = fmt.Sprintf("dark baseline; min of %d", reps)
		case 1:
			note = fmt.Sprintf("%+.1f%% vs dark (metrics enablement, cf. B15; stage dark path = 1 atomic load); min of %d",
				100*(bestNs[i]-bestNs[0])/bestNs[0], reps)
		default:
			note = fmt.Sprintf("%+.1f%% vs metrics-on; min of %d", 100*(bestNs[i]-bestNs[1])/bestNs[1], reps)
		}
		row("B17", md.name, time.Duration(int64(bestNs[i])), note)
	}
}
