package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"sync"
	"time"

	"lciot/internal/ac"
	"lciot/internal/audit"
	"lciot/internal/cep"
	"lciot/internal/ctxmodel"
	"lciot/internal/ifc"
	"lciot/internal/msg"
	"lciot/internal/names"
	"lciot/internal/obligation"
	"lciot/internal/oskernel"
	"lciot/internal/policy"
	"lciot/internal/sbus"
	"lciot/internal/sticky"
	"lciot/internal/store"
	"lciot/internal/transport"
)

// timeOp measures the mean time of one op over enough iterations to be
// stable without a testing.B harness.
func timeOp(f func()) time.Duration {
	d, _ := timeOpAllocs(f)
	return d
}

// timeOpAllocs additionally reports mean heap allocations per op, read from
// the runtime outside the timed window.
func timeOpAllocs(f func()) (time.Duration, float64) {
	return timeOpAllocsN(100, 5000, f)
}

// timeOpAllocsN is timeOpAllocs with explicit warmup/run counts, for
// workloads (fsync-bound, bulk I/O) where 5000 iterations would be
// wasteful.
func timeOpAllocsN(warmup, runs int, f func()) (time.Duration, float64) {
	for i := 0; i < warmup; i++ {
		f()
	}
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	for i := 0; i < runs; i++ {
		f()
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	return elapsed / time.Duration(runs), float64(after.Mallocs-before.Mallocs) / float64(runs)
}

// A benchRow is one measured workload, also emitted to the -json baseline
// file so successive PRs leave a perf trajectory (BENCH_1.json, ...).
// AllocsPerOp is -1 for workloads that don't report allocations.
type benchRow struct {
	Table       string  `json:"table"`
	Workload    string  `json:"workload"`
	NsPerOp     int64   `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	Note        string  `json:"note,omitempty"`
}

var benchRows []benchRow

func row(table, workload string, perOp time.Duration, note string) {
	benchRows = append(benchRows, benchRow{
		Table: table, Workload: workload, NsPerOp: perOp.Nanoseconds(), AllocsPerOp: -1, Note: note,
	})
	fmt.Printf("%-4s %-44s %12s/op  %s\n", table, workload, perOp, note)
}

// rowAllocs is row for workloads measured with timeOpAllocs.
func rowAllocs(table, workload string, perOp time.Duration, allocs float64, note string) {
	benchRows = append(benchRows, benchRow{
		Table: table, Workload: workload, NsPerOp: perOp.Nanoseconds(), AllocsPerOp: allocs, Note: note,
	})
	fmt.Printf("%-4s %-44s %12s/op  %6.1f allocs/op  %s\n", table, workload, perOp, allocs, note)
}

func runMeasurements() {
	measureB1()
	measureB2()
	measureB3()
	measureB4()
	measureB5()
	measureB6()
	measureB7()
	measureB8()
	measureB9()
	measureB10()
	measureB11()
	measureB12()
	measureB13()
	measureB14()
	measureB15()
	measureB16()
	measureB17()
}

// B13: the obligations engine. The flow-check rows show the hot-path cost
// of residency/purpose facets (the acceptance target: within 15% of the
// facet-free B2 check — same cache, two more label keys); the sweep row
// measures the sharded timer wheel popping one million scheduled retention
// deadlines; the redaction row measures chain-preserving tombstoning
// through the batched segment rewrite.
func measureB13() {
	// Facet-carrying flow check vs the plain check on identical tag sets.
	tags := make([]ifc.Tag, 10)
	for i := range tags {
		tags[i] = ifc.Tag("t" + strconv.Itoa(i))
	}
	plainSrc := ifc.SecurityContext{Secrecy: ifc.MustLabel(tags...)}
	plainDst := ifc.SecurityContext{Secrecy: ifc.MustLabel(tags...).With("x")}
	pd := timeOp(func() { ifc.CheckFlow(plainSrc, plainDst) })
	row("B13", "flow check, 10 tags, no facets", pd, "B2 workload re-measured as the baseline")

	jur := ifc.MustLabel("eu", "uk")
	pur := ifc.MustLabel("research", "treatment")
	facetSrc := plainSrc.WithJurisdiction(jur).WithPurpose(pur)
	facetDst := plainDst.WithJurisdiction(ifc.MustLabel("eu")).WithPurpose(ifc.MustLabel("research"))
	fd := timeOp(func() { ifc.CheckFlow(facetSrc, facetDst) })
	row("B13", "flow check, 10 tags + residency/purpose facets", fd,
		"residency+purpose checked by the same cached flow rule")

	denySrc := facetSrc
	denyDst := plainDst.WithJurisdiction(ifc.MustLabel("us")).WithPurpose(ifc.MustLabel("research"))
	dd := timeOp(func() { ifc.CheckFlow(denySrc, denyDst) })
	row("B13", "flow check, residency violation (cached deny)", dd,
		"denied like a secrecy violation, same cache")

	// Sweep throughput: one million scheduled deadlines popped in batches
	// (min of 2 full passes, like the one-shot B10/B12 measurements).
	const deadlines = 1_000_000
	base := time.Unix(3_000_000, 0)
	var sweepBest time.Duration
	for attempt := 0; attempt < 2; attempt++ {
		sched := obligation.NewScheduler(time.Second, 16)
		for i := 0; i < deadlines; i++ {
			sched.Schedule(obligation.Entry{
				Tag:    ifc.Tag("telemetry"),
				DataID: "dev" + strconv.Itoa(i%1024) + "/m/" + strconv.Itoa(i),
				Due:    base.Add(time.Duration(i%3600) * time.Second),
			})
		}
		if sched.Len() != deadlines {
			panic("B13: scheduler lost deadlines")
		}
		start := time.Now()
		popped := 0
		for {
			batch := sched.Due(base.Add(2*time.Hour), 4096)
			if len(batch) == 0 {
				break
			}
			popped += len(batch)
		}
		elapsed := time.Since(start)
		if popped != deadlines {
			panic(fmt.Sprintf("B13: swept %d of %d deadlines", popped, deadlines))
		}
		if attempt == 0 || elapsed < sweepBest {
			sweepBest = elapsed
		}
	}
	row("B13", "sweep pop, 1M scheduled deadlines", sweepBest/time.Duration(deadlines),
		fmt.Sprintf("%.1fM deadlines/s in 4096-entry batches, 16 shards, min of 2",
			float64(deadlines)/sweepBest.Seconds()/1e6))

	// Redaction rate: tombstone half of a 20k-record store in one batched
	// segment-rewrite pass, chain verified afterwards. NoSync isolates the
	// decode/rewrite/rename cost — fsync pricing is B9's job — so the row
	// is stable enough to gate.
	dir, err := os.MkdirTemp("", "lciot-bench-b13-")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)
	s, err := store.OpenAudit(dir, store.Options{SegmentBytes: 4 << 20, NoSync: true})
	if err != nil {
		panic(err)
	}
	l := audit.NewLog(nil)
	if err := s.AttachLog(l); err != nil {
		panic(err)
	}
	const records = 20_000
	rec := audit.Record{
		Kind: audit.FlowAllowed, Layer: audit.LayerMessaging,
		Src: "sensor", Dst: "analyser",
		SrcCtx: ifc.MustContext([]ifc.Tag{"telemetry"}, nil),
		Agent:  "plant",
	}
	for i := 0; i < records; i++ {
		rec.DataID = "dev/m/" + strconv.Itoa(i)
		l.AppendAsync(rec)
	}
	l.Flush()
	if err := s.Sync(); err != nil {
		panic(err)
	}
	// Two equal-sized passes (even seqs, then odd) over the same store;
	// min of the two smooths fsync jitter, as elsewhere in the one-shot
	// I/O measurements.
	var redactBest time.Duration
	half := records / 2
	for pass := 0; pass < 2; pass++ {
		seqs := make([]uint64, 0, half)
		for i := pass; i < records; i += 2 {
			seqs = append(seqs, uint64(i))
		}
		start := time.Now()
		n, err := s.RedactMany(seqs, "retention expired")
		elapsed := time.Since(start)
		if err != nil || n != len(seqs) {
			panic(fmt.Sprintf("B13: redacted %d (%v)", n, err))
		}
		if pass == 0 || elapsed < redactBest {
			redactBest = elapsed
		}
	}
	if bad, err := s.Verify(); err != nil {
		panic(fmt.Sprintf("B13: chain broken at %d after redaction: %v", bad, err))
	}
	row("B13", fmt.Sprintf("redaction, %d of %d records", half, records),
		redactBest/time.Duration(half),
		fmt.Sprintf("%.0fk records/s, one rewrite per segment, chain verified, min of 2, excl. fsync (B9 prices durability)",
			float64(half)/redactBest.Seconds()/1000))
	if err := s.Close(); err != nil {
		panic(err)
	}
}

// B12: the cross-bus path (link protocol v2). The codec rows compare the
// binary v2 frame encoding against the legacy per-frame JSON of v1; the
// delivery rows measure the full federated pipeline — egress stamping,
// bounded queue, writer batching, transport, ingress re-validation —
// over the in-memory network (zero latency, so the numbers are protocol
// cost, not wire time), 1-hop and through a relay bus (2 hops).
func measureB12() {
	schema := msg.MustSchema("vitals", ifc.EmptyLabel,
		msg.Field{Name: "patient", Type: msg.TString, Required: true},
		msg.Field{Name: "heart-rate", Type: msg.TFloat, Required: true},
	)
	m := msg.New("vitals").Set("patient", msg.Str("ann")).Set("heart-rate", msg.Float(72))
	payload, err := msg.EncodeBinary(m)
	if err != nil {
		panic(err)
	}
	frame := &sbus.LinkFrame{
		Kind: "message", ID: 7,
		Src: "home-bus:ann-device.out", Dst: "ann-analyser.in",
		SrcSecrecy:   ifc.MustLabel("medical", "ann"),
		SrcIntegrity: ifc.MustLabel("hosp-dev"),
		Schema:       "vitals", Payload: payload, Agent: "hospital",
	}
	jd, ja := minOf5(func() (time.Duration, float64) {
		return timeOpAllocs(func() {
			b, err := json.Marshal(frame)
			if err != nil {
				panic(err)
			}
			var f sbus.LinkFrame
			if err := json.Unmarshal(b, &f); err != nil {
				panic(err)
			}
		})
	})
	var buf []byte
	bd, ba := minOf5(func() (time.Duration, float64) {
		return timeOpAllocs(func() {
			buf = sbus.AppendBatchHeader(buf[:0], 1)
			var err error
			if buf, err = sbus.AppendLinkFrame(buf, frame); err != nil {
				panic(err)
			}
			if _, err := sbus.DecodeBatch(buf); err != nil {
				panic(err)
			}
		})
	})
	rowAllocs("B12", "link frame codec, JSON (v1 wire)", jd, ja, "legacy: one JSON object per frame")
	rowAllocs("B12", "link frame codec, binary v2", bd, ba,
		fmt.Sprintf("%.1fx faster than v1 JSON", float64(jd)/float64(bd)))

	ctx := ifc.MustContext([]ifc.Tag{"medical"}, nil)
	// buildNode registers a bus named `name` on the shared network, serving
	// on its own address.
	net := transport.NewMemNetwork()
	buildNode := func(name string) *sbus.Bus {
		bus := sbus.NewBus(name, benchACL(), nil, nil)
		l, err := net.Listen(name + "-addr")
		if err != nil {
			panic(err)
		}
		go bus.Serve(l)
		return bus
	}
	home := buildNode("home")
	cloud := buildNode("cloud")
	relay := buildNode("relay")

	delivered := make(chan struct{}, 16384)
	if _, err := home.Register("dev", "p", ctx, nil,
		sbus.EndpointSpec{Name: "out", Dir: sbus.Source, Schema: schema}); err != nil {
		panic(err)
	}
	if _, err := cloud.Register("analyser", "p", ctx,
		func(*msg.Message, sbus.Delivery) { delivered <- struct{}{} },
		sbus.EndpointSpec{Name: "in", Dir: sbus.Sink, Schema: schema}); err != nil {
		panic(err)
	}
	if _, err := home.LinkTo(net, "cloud-addr"); err != nil {
		panic(err)
	}
	if err := home.Connect("p", "dev.out", "cloud:analyser.in"); err != nil {
		panic(err)
	}
	dev, _ := home.Component("dev")

	// 1-hop round-trip latency: publish, then wait for the remote handler.
	d, allocs := timeOpAllocs(func() {
		if _, err := dev.Publish("out", m); err != nil {
			panic(err)
		}
		<-delivered
	})
	rowAllocs("B12", "cross-bus delivery, 1 hop (latency)", d, allocs,
		"publish -> remote ingress re-check -> handler")

	// 1-hop pipelined throughput: a burst outruns the round trip; the
	// writer goroutine coalesces it into batched transport frames.
	const burst = 5000
	start := time.Now()
	for i := 0; i < burst; i++ {
		if _, err := dev.Publish("out", m); err != nil {
			panic(err)
		}
	}
	for i := 0; i < burst; i++ {
		<-delivered
	}
	per := time.Since(start) / burst
	row("B12", "cross-bus delivery, 1 hop (pipelined)", per,
		fmt.Sprintf("%.0fk msg/s; egress batching amortises the transport", float64(time.Second)/float64(per)/1000))

	// Relay: home -> relay (re-publish) -> cloud, i.e. two federated hops.
	relayDone := make(chan struct{}, 16384)
	var relayComp *sbus.Component
	rc, err := relay.Register("fwd", "p", ctx,
		func(fm *msg.Message, _ sbus.Delivery) {
			if _, err := relayComp.Publish("out", fm); err != nil {
				panic(err)
			}
		},
		sbus.EndpointSpec{Name: "in", Dir: sbus.Sink, Schema: schema},
		sbus.EndpointSpec{Name: "out", Dir: sbus.Source, Schema: schema})
	if err != nil {
		panic(err)
	}
	relayComp = rc
	if _, err := cloud.Register("archive", "p", ctx,
		func(*msg.Message, sbus.Delivery) { relayDone <- struct{}{} },
		sbus.EndpointSpec{Name: "in", Dir: sbus.Sink, Schema: schema}); err != nil {
		panic(err)
	}
	if _, err := home.LinkTo(net, "relay-addr"); err != nil {
		panic(err)
	}
	if _, err := relay.LinkTo(net, "cloud-addr"); err != nil {
		panic(err)
	}
	if _, err := home.Register("dev2", "p", ctx, nil,
		sbus.EndpointSpec{Name: "out", Dir: sbus.Source, Schema: schema}); err != nil {
		panic(err)
	}
	if err := home.Connect("p", "dev2.out", "relay:fwd.in"); err != nil {
		panic(err)
	}
	if err := relay.Connect("p", "fwd.out", "cloud:archive.in"); err != nil {
		panic(err)
	}
	dev2, _ := home.Component("dev2")
	rd, rAllocs := timeOpAllocs(func() {
		if _, err := dev2.Publish("out", m); err != nil {
			panic(err)
		}
		<-relayDone
	})
	rowAllocs("B12", "cross-bus delivery, relay (2 hops, latency)", rd, rAllocs,
		"each hop re-validates ingress independently")
}

// B9: durable audit append throughput vs commit batch size. Records flow
// through the full pipeline — audit.Log async hashing, ordered sink,
// WAL framing, group commit — with one fsync per batch, so per-record
// cost drops as the batch amortises the sync.
func measureB9() {
	rec := audit.Record{
		Kind: audit.FlowAllowed, Layer: audit.LayerMessaging,
		Src: "sensor", Dst: "analyser",
		SrcCtx: ifc.MustContext([]ifc.Tag{"medical", "ann"}, nil),
		DstCtx: ifc.MustContext([]ifc.Tag{"medical", "ann"}, nil),
		DataID: "reading-1", Agent: "hospital",
	}
	for _, batch := range []int{1, 64, 1024} {
		dir, err := os.MkdirTemp("", "lciot-bench-b9-")
		if err != nil {
			panic(err)
		}
		s, err := store.OpenAudit(dir, store.Options{})
		if err != nil {
			panic(err)
		}
		l := audit.NewLog(nil)
		if err := s.AttachLog(l); err != nil {
			panic(err)
		}
		// Scale iteration counts so every batch size writes a comparable
		// volume; each iteration ends in exactly one Sync (group commit).
		runs := 2048 / batch
		if runs < 16 {
			runs = 16
		}
		// fsync latency on shared storage is bursty; take the best of five
		// short windows so the row tracks the code path, not the neighbors.
		d, allocs := minOf5(func() (time.Duration, float64) {
			return timeOpAllocsN(2, runs, func() {
				for i := 0; i < batch; i++ {
					l.AppendAsync(rec)
				}
				l.Flush()
				if err := s.Sync(); err != nil {
					panic(err)
				}
			})
		})
		perRec := d / time.Duration(batch)
		rate := float64(time.Second) / float64(perRec)
		rowAllocs("B9", fmt.Sprintf("durable append, batch %d", batch), perRec, allocs/float64(batch),
			fmt.Sprintf("%.0fk records/s, 1 fsync per batch", rate/1000))
		if err := s.Close(); err != nil {
			panic(err)
		}
		os.RemoveAll(dir)
	}
}

// B10: crash-recovery replay time for a 1M-record store: segment scan,
// CRC validation, record decode and full hash-chain verification — the
// cost of the first boot after a crash. The store is built with periodic
// Offload so the builder's memory stays flat.
func measureB10() {
	const n = 1_000_000
	dir, err := os.MkdirTemp("", "lciot-bench-b10-")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)
	s, err := store.OpenAudit(dir, store.Options{NoSync: true})
	if err != nil {
		panic(err)
	}
	l := audit.NewLog(nil)
	if err := s.AttachLog(l); err != nil {
		panic(err)
	}
	rec := audit.Record{
		Kind: audit.FlowAllowed, Layer: audit.LayerMessaging,
		Src: "sensor", Dst: "analyser",
		SrcCtx: ifc.MustContext([]ifc.Tag{"medical", "ann"}, nil),
		DstCtx: ifc.MustContext([]ifc.Tag{"medical", "ann"}, nil),
		DataID: "reading", Agent: "hospital",
	}
	for i := 0; i < n; i++ {
		l.AppendAsync(rec)
		if i%100000 == 99999 {
			if _, err := s.Offload(l); err != nil {
				panic(err)
			}
		}
	}
	l.Flush()
	if err := s.Close(); err != nil {
		panic(err)
	}

	startAt := time.Now()
	s2, err := store.OpenAudit(dir, store.Options{})
	if err != nil {
		panic(err)
	}
	elapsed := time.Since(startAt)
	if got := s2.NextSeq(); got != n {
		panic(fmt.Sprintf("B10: recovered %d records, want %d", got, n))
	}
	s2.Close()
	row("B10", "recovery replay, 1M-record store", elapsed,
		fmt.Sprintf("%.2f M records/s; includes CRC + full chain verify", n/elapsed.Seconds()/1e6))
}

// B11: sticky-policy baseline vs IFC per-datum protection. The comparison
// the paper makes qualitatively (Section 10.2): sticky pays cryptography
// that scales with payload size and loses all control after decryption;
// IFC pays a size-independent label check per flow and keeps control.
func measureB11() {
	for _, size := range []int{32, 64 * 1024} {
		data := make([]byte, size)
		for i := range data {
			data[i] = byte(i)
		}
		auth := sticky.NewAuthority()
		pol := sticky.Policy{Text: "medical: treatment only"}
		sd := timeOp(func() {
			b, err := auth.Seal(data, pol)
			if err != nil {
				panic(err)
			}
			if err := auth.Agree("clinic", b.ID); err != nil {
				panic(err)
			}
			if _, err := auth.Open("clinic", b); err != nil {
				panic(err)
			}
		})

		k := oskernel.NewKernel("bench", nil)
		ctx := ifc.MustContext([]ifc.Tag{"medical", "ann"}, nil)
		producer := k.Boot("producer", ctx)
		consumer := k.Boot("consumer", ctx)
		pipe, err := k.MkPipe(producer.PID())
		if err != nil {
			panic(err)
		}
		id := timeOp(func() {
			if err := k.WritePipe(producer.PID(), pipe, data); err != nil {
				panic(err)
			}
			if _, err := k.ReadPipe(consumer.PID(), pipe); err != nil {
				panic(err)
			}
		})
		row("B11", fmt.Sprintf("sticky seal+agree+open, %dB", size), sd, "crypto scales with payload; no post-open control")
		row("B11", fmt.Sprintf("IFC enforced hand-over, %dB", size), id,
			fmt.Sprintf("%.1fx vs sticky; control persists after delivery", float64(sd)/float64(id)))
	}
}

// B1: kernel write with and without the LSM hook layer.
func measureB1() {
	setup := func(hooks bool) func() {
		k := oskernel.NewKernel("bench", nil)
		k.SetHooksEnabled(hooks)
		p := k.Boot("app", ifc.MustContext([]ifc.Tag{"medical"}, nil))
		if err := k.Create(p.PID(), "/f"); err != nil {
			panic(err)
		}
		payload := []byte("x")
		return func() {
			if err := k.Write(p.PID(), "/f", payload); err != nil {
				panic(err)
			}
		}
	}
	off := timeOp(setup(false))
	on := timeOp(setup(true))
	row("B1", "kernel write, hooks off", off, "baseline")
	row("B1", "kernel write, hooks on", on, fmt.Sprintf(
		"+%s absolute per op, incl. the audit record — small against µs-scale I/O (paper: 'minimal')",
		on-off))
}

// B2: flow check vs label size.
func measureB2() {
	for _, n := range []int{1, 10, 100, 1000} {
		tags := make([]ifc.Tag, n)
		for i := range tags {
			tags[i] = ifc.Tag("t" + strconv.Itoa(i))
		}
		src := ifc.SecurityContext{Secrecy: ifc.MustLabel(tags...)}
		dst := ifc.SecurityContext{Secrecy: ifc.MustLabel(tags...).With("x")}
		d := timeOp(func() { ifc.CheckFlow(src, dst) })
		row("B2", fmt.Sprintf("flow check, %d tags", n), d, "linear merge walk, 0 allocs")
	}
}

func benchACL() *ac.ACL {
	var a ac.ACL
	a.DefineRole(ac.Role{Name: "any", Grants: []ac.Permission{{Action: "*", Resource: "**"}}})
	_ = a.Assign(ac.Assignment{Principal: "p", Role: "any", Args: map[string]string{}})
	return &a
}

// B3: message-path variants.
func measureB3() {
	schema := msg.MustSchema("vitals", ifc.EmptyLabel,
		msg.Field{Name: "patient", Type: msg.TString, Required: true},
		msg.Field{Name: "heart-rate", Type: msg.TFloat, Required: true},
	)
	build := func() *sbus.Component {
		bus := sbus.NewBus("bench", benchACL(), nil, nil)
		ctx := ifc.MustContext([]ifc.Tag{"medical"}, nil)
		src, err := bus.Register("src", "p", ctx, nil,
			sbus.EndpointSpec{Name: "out", Dir: sbus.Source, Schema: schema})
		if err != nil {
			panic(err)
		}
		if _, err := bus.Register("dst", "p", ctx, func(*msg.Message, sbus.Delivery) {},
			sbus.EndpointSpec{Name: "in", Dir: sbus.Sink, Schema: schema}); err != nil {
			panic(err)
		}
		if err := bus.Connect("p", "src.out", "dst.in"); err != nil {
			panic(err)
		}
		return src
	}
	src := build()
	m := msg.New("vitals").Set("patient", msg.Str("ann")).Set("heart-rate", msg.Float(72))
	d, da := timeOpAllocs(func() {
		if _, err := src.Publish("out", m); err != nil {
			panic(err)
		}
	})
	rowAllocs("B3", "local delivery (IFC + audit)", d, da, "per message, one sink")

	jd, ja := minOf5(func() (time.Duration, float64) {
		return timeOpAllocs(func() {
			b, err := msg.EncodeJSON(m)
			if err != nil {
				panic(err)
			}
			if _, err := msg.DecodeJSON(b); err != nil {
				panic(err)
			}
		})
	})
	bd, ba := minOf5(func() (time.Duration, float64) {
		return timeOpAllocs(func() {
			b, err := msg.EncodeBinary(m)
			if err != nil {
				panic(err)
			}
			if _, err := msg.DecodeBinary(b); err != nil {
				panic(err)
			}
		})
	})
	rowAllocs("B3", "codec round trip, JSON", jd, ja, "pooled encode scratch")
	rowAllocs("B3", "codec round trip, binary", bd, ba,
		fmt.Sprintf("%.1fx faster than JSON", float64(jd)/float64(bd)))

	ed, ea := minOf5(func() (time.Duration, float64) {
		return timeOpAllocs(func() {
			if _, err := msg.EncodeBinary(m); err != nil {
				panic(err)
			}
		})
	})
	rowAllocs("B3", "binary encode only", ed, ea, "1 alloc: the returned buffer")

	jed, jea := minOf5(func() (time.Duration, float64) {
		return timeOpAllocs(func() {
			if _, err := msg.EncodeJSON(m); err != nil {
				panic(err)
			}
		})
	})
	rowAllocs("B3", "JSON encode only", jed, jea, "hand-rolled in pooled scratch (was map+reflection)")
}

// B4: context-change re-evaluation. Two scalings: against the changed
// component's own fan-out (inherent work — each of its channels must be
// re-checked), and against *unaffected* channels between other components,
// which the byComp index must never visit.
func measureB4() {
	schema := msg.MustSchema("vitals", ifc.EmptyLabel,
		msg.Field{Name: "patient", Type: msg.TString},
	)
	ctxA := ifc.MustContext([]ifc.Tag{"a"}, nil)
	ctxB := ifc.MustContext([]ifc.Tag{"a", "b"}, nil)

	// build returns a bus with one source whose fan-out channels are all
	// legal in both ctxA and ctxB, plus `spectators` channel pairs between
	// other components.
	build := func(fanout, spectators int) (*sbus.Bus, *sbus.Component) {
		bus := sbus.NewBus("bench", benchACL(), nil, nil)
		// Sinks live in the more constrained {a,b} domain so both source
		// states keep every channel legal; each SetContext re-evaluates
		// the full fan-out without teardown.
		src, err := bus.Register("src", "p", ctxA, nil,
			sbus.EndpointSpec{Name: "out", Dir: sbus.Source, Schema: schema})
		if err != nil {
			panic(err)
		}
		if err := src.Entity().GrantPrivileges(ifc.OwnerPrivileges("a", "b")); err != nil {
			panic(err)
		}
		for i := 0; i < fanout; i++ {
			name := "dst" + strconv.Itoa(i)
			if _, err := bus.Register(name, "p", ctxB, nil,
				sbus.EndpointSpec{Name: "in", Dir: sbus.Sink, Schema: schema}); err != nil {
				panic(err)
			}
			if err := bus.Connect("p", "src.out", name+".in"); err != nil {
				panic(err)
			}
		}
		for i := 0; i < spectators; i++ {
			so := "so" + strconv.Itoa(i)
			si := "si" + strconv.Itoa(i)
			if _, err := bus.Register(so, "p", ctxA, nil,
				sbus.EndpointSpec{Name: "out", Dir: sbus.Source, Schema: schema}); err != nil {
				panic(err)
			}
			if _, err := bus.Register(si, "p", ctxA, nil,
				sbus.EndpointSpec{Name: "in", Dir: sbus.Sink, Schema: schema}); err != nil {
				panic(err)
			}
			if err := bus.Connect("p", so+".out", si+".in"); err != nil {
				panic(err)
			}
		}
		return bus, src
	}

	// Min of 5 passes, audit backlog flushed between them: re-evaluation
	// cost couples to the async audit drain once its bounded queue fills,
	// which makes single-pass numbers bimodal on a busy host.
	measure := func(bus *sbus.Bus, src *sbus.Component, want int) (time.Duration, float64) {
		cur := false
		var best time.Duration
		var allocs float64
		for rep := 0; rep < 5; rep++ {
			bus.Log().Flush()
			d, a := timeOpAllocs(func() {
				target := ctxB
				if cur {
					target = ctxA
				}
				cur = !cur
				if err := src.SetContext(target); err != nil {
					panic(err)
				}
			})
			if rep == 0 || d < best {
				best, allocs = d, a
			}
		}
		if got := len(bus.Channels()); got != want {
			panic(fmt.Sprintf("B4: channels fell to %d, want %d", got, want))
		}
		return best, allocs
	}

	for _, fanout := range []int{1, 10, 100, 1000} {
		bus, src := build(fanout, 0)
		d, allocs := measure(bus, src, fanout)
		rowAllocs("B4", fmt.Sprintf("context change, %d channels", fanout), d, allocs,
			"re-evaluates only the changed component's channels")
	}
	for _, spectators := range []int{0, 99, 999} {
		bus, src := build(1, spectators)
		d, allocs := measure(bus, src, 1+spectators)
		rowAllocs("B4", fmt.Sprintf("context change, 1 affected + %d unaffected", spectators), d, allocs,
			"byComp index: unaffected channels never visited")
	}
}

// B5: audit ingest and provenance ancestry.
func measureB5() {
	l := audit.NewLog(nil)
	rec := audit.Record{Kind: audit.FlowAllowed, Src: "a", Dst: "b", DataID: "d"}
	d := timeOp(func() { l.Append(rec) })
	row("B5", "audit append (hash-chained)", d, "")

	for _, depth := range []int{10, 100, 1000} {
		lg := audit.NewLog(nil)
		for i := 0; i < depth; i++ {
			lg.Append(audit.Record{
				Kind:   audit.FlowAllowed,
				Src:    ifc.EntityID("proc" + strconv.Itoa(i)),
				Dst:    ifc.EntityID("proc" + strconv.Itoa(i+1)),
				DataID: "datum" + strconv.Itoa(i),
			})
		}
		records := lg.Select(nil)
		g := audit.BuildGraph(records)
		leaf := "proc" + strconv.Itoa(depth)
		q := timeOp(func() {
			if _, err := g.Ancestry(leaf); err != nil {
				panic(err)
			}
		})
		row("B5", fmt.Sprintf("ancestry query, %d-hop chain", depth), q,
			"repeated queries served from the epoch-stamped memo")

		if depth == 1000 {
			// Cold cost per query when every query follows an append — the
			// pre-memo behaviour, retained for an honest comparison.
			cold := timeOp(func() {
				fresh := audit.BuildGraph(records)
				if _, err := fresh.Ancestry(leaf); err != nil {
					panic(err)
				}
			})
			row("B5", "build graph + first ancestry, 1000 records", cold,
				"cold path: one full walk per topology change")
		}
	}
}

// B6: tag resolution cold vs cached.
func measureB6() {
	root := names.NewRoot()
	zone, err := root.DelegatePath("a/b/c/d/e/f/g")
	if err != nil {
		panic(err)
	}
	tag := ifc.Tag("a/b/c/d/e/f/g/medical")
	if err := zone.Register(names.TagRecord{Tag: tag, Owner: "o", TTL: time.Hour}); err != nil {
		panic(err)
	}
	r := names.NewResolver(root)
	cold := timeOp(func() {
		r.Flush()
		if _, err := r.Resolve("p", tag); err != nil {
			panic(err)
		}
	})
	if _, err := r.Resolve("p", tag); err != nil {
		panic(err)
	}
	cached := timeOp(func() {
		if _, err := r.Resolve("p", tag); err != nil {
			panic(err)
		}
	})
	row("B6", "tag resolution, cold (8 zones)", cold, "authoritative walk")
	row("B6", "tag resolution, cached", cached,
		fmt.Sprintf("%.1fx faster — caching makes global tags viable", float64(cold)/float64(cached)))
}

// B7: CEP throughput vs pattern count. Typed patterns exercise the by-type
// index (one pattern subscribed to the fed type, the rest registered but
// never touched); the untyped row keeps the old linear catch-all behaviour
// measurable for comparison.
func measureB7() {
	for _, patterns := range []int{1, 10, 100, 1000} {
		e := cep.NewEngine(func(cep.Detection) {})
		for i := 0; i < patterns; i++ {
			e.Register(&cep.Threshold{
				PatternName: "p" + strconv.Itoa(i),
				Types:       []string{"t" + strconv.Itoa(i)},
				Match:       func(ev cep.Event) bool { return ev.Value > 1e12 },
				Count:       3, Window: time.Minute,
			})
		}
		t0 := time.Unix(0, 0)
		i := 0
		d, allocs := timeOpAllocs(func() {
			i++
			e.Feed(cep.Event{Type: "t0", Time: t0.Add(time.Duration(i) * time.Millisecond), Value: 70})
		})
		rowAllocs("B7", fmt.Sprintf("event feed, %d typed patterns (1 matching)", patterns), d, allocs,
			"by-type index: cost tracks matching, not registered")
	}
	e := cep.NewEngine(func(cep.Detection) {})
	for i := 0; i < 100; i++ {
		e.Register(&cep.Threshold{
			PatternName: "p" + strconv.Itoa(i),
			Match:       func(ev cep.Event) bool { return ev.Value > 1e12 },
			Count:       3, Window: time.Minute,
		})
	}
	t0 := time.Unix(0, 0)
	i := 0
	d, allocs := timeOpAllocs(func() {
		i++
		e.Feed(cep.Event{Type: "hr", Time: t0.Add(time.Duration(i) * time.Millisecond), Value: 70})
	})
	rowAllocs("B7", "event feed, 100 untyped patterns", d, allocs,
		"catch-all bucket: linear, as before the index")
}

// B8: policy evaluation vs rule count. Each rule triggers on its own
// pattern except three on the hot one, so dispatch cost should track the
// matching bucket (≤3 rules), not the loaded rule count. The all-matching
// row keeps the worst case (every rule in one bucket) measurable.
func measureB8() {
	for _, rules := range []int{1, 10, 100, 1000} {
		src := ""
		matching := 0
		for i := 0; i < rules; i++ {
			pattern := "p" + strconv.Itoa(i)
			if i < 3 {
				pattern = "hr"
				matching++
			}
			src += fmt.Sprintf("rule \"r%d\" { on event %q when event.value > 1000 do alert \"x\" }\n", i, pattern)
		}
		eng := policy.NewEngine(ctxmodel.NewStore(nil), nil)
		eng.Load(policy.MustParse(src))
		det := cep.Detection{Pattern: "hr", Value: 70}
		d, allocs := minOf5(func() (time.Duration, float64) {
			return timeOpAllocs(func() {
				if errs := eng.HandleDetection(det); len(errs) != 0 {
					panic(errs[0])
				}
			})
		})
		rowAllocs("B8", fmt.Sprintf("detection dispatch, %d rules (%d matching)", rules, matching), d, allocs,
			"trigger index: only the pattern's bucket evaluated")
	}

	src := ""
	for i := 0; i < 1000; i++ {
		src += fmt.Sprintf("rule \"r%d\" { on event \"hr\" when event.value > 1000 do alert \"x\" }\n", i)
	}
	eng := policy.NewEngine(ctxmodel.NewStore(nil), nil)
	eng.Load(policy.MustParse(src))
	det := cep.Detection{Pattern: "hr", Value: 70}
	d, allocs := minOf5(func() (time.Duration, float64) {
		return timeOpAllocs(func() {
			if errs := eng.HandleDetection(det); len(errs) != 0 {
				panic(errs[0])
			}
		})
	})
	rowAllocs("B8", "detection dispatch, 1000 rules (1000 matching)", d, allocs,
		"worst case: every rule in the hot bucket")

	// Concurrent dispatch: G goroutines hammer the same hot bucket while
	// the engine runs with partitioned lanes. The per-op cost (wall clock
	// over total dispatches) must stay flat from 1 to 1000 loaded rules —
	// the snapshot read is lock-free and per-rule bookkeeping is atomic,
	// so rule count only matters through the matching bucket, concurrency
	// only through the host's core count.
	const workers = 4
	for _, rules := range []int{1, 10, 100, 1000} {
		src := ""
		matching := 0
		for i := 0; i < rules; i++ {
			pattern := "p" + strconv.Itoa(i)
			if i < 3 {
				pattern = "hr"
				matching++
			}
			src += fmt.Sprintf("rule \"r%d\" { on event %q when event.value > 1000 do alert \"x\" }\n", i, pattern)
		}
		eng := policy.NewEngine(ctxmodel.NewStore(nil), nil, policy.WithDispatchLanes(workers))
		eng.Load(policy.MustParse(src))
		const perWorker = 20000
		var wall time.Duration
		for rep := 0; rep < 3; rep++ { // min of 3: goroutine wakeups are noisy
			var wg sync.WaitGroup
			start := time.Now()
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					det := cep.Detection{Pattern: "hr", Value: 70}
					for i := 0; i < perWorker; i++ {
						if errs := eng.HandleDetection(det); len(errs) != 0 {
							panic(errs[0])
						}
					}
				}()
			}
			wg.Wait()
			if w := time.Since(start); rep == 0 || w < wall {
				wall = w
			}
		}
		row("B8", fmt.Sprintf("detection dispatch, %d rules (%d matching), concurrent x%d", rules, matching, workers),
			wall/time.Duration(workers*perWorker),
			"lock-free snapshot dispatch: flat vs rule count under contention; min of 3")
	}
}

// minOf5 repeats a measurement five times and keeps the fastest pass —
// for pure-CPU sub-µs rows whose single-pass numbers are dominated by
// host scheduling noise.
func minOf5(measure func() (time.Duration, float64)) (time.Duration, float64) {
	var best time.Duration
	var allocs float64
	for rep := 0; rep < 5; rep++ {
		d, a := measure()
		if rep == 0 || d < best {
			best, allocs = d, a
		}
	}
	return best, allocs
}
