// Command benchharness regenerates the experiment suite (see DESIGN.md,
// "Experiments"): the eleven figure reproductions E1-E11 (scenario checks
// with observable outcomes) and the quantitative tables B1-B17. Absolute
// numbers depend on the host; the *shapes* (who wins, what scales how)
// are the reproduction targets.
//
// Usage:
//
//	benchharness            run everything
//	benchharness -e         run only the E-series scenarios
//	benchharness -b         run only the B-series measurements
//	benchharness -json F    also write the B-series rows to F as JSON
//	                        (the repo keeps BENCH_<n>.json baselines so
//	                        successive PRs have a perf trajectory)
//	benchharness -shards L  shard counts for B14's aggregate rows as a
//	                        comma list (default "1,4,32"); on multi-core
//	                        hosts each count also sweeps GOMAXPROCS up to
//	                        the lane count
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"

	"lciot/internal/telemetry"
)

func main() {
	eOnly := flag.Bool("e", false, "run only the E-series figure reproductions")
	bOnly := flag.Bool("b", false, "run only the B-series measurements")
	jsonPath := flag.String("json", "", "write B-series measurements to this file as JSON")
	shards := flag.String("shards", "", "comma-separated shard counts for the B14 aggregate rows (default 1,4,32)")
	flag.Parse()
	if *shards != "" {
		for _, part := range strings.Split(*shards, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil || n < 1 {
				fmt.Fprintf(os.Stderr, "benchharness: bad -shards entry %q\n", part)
				os.Exit(2)
			}
			shardCountsFlag = append(shardCountsFlag, n)
		}
	}

	failed := 0
	if !*bOnly {
		fmt.Println("=== E-series: figure reproductions ===")
		for _, exp := range experiments {
			obs, err := exp.run()
			status := "PASS"
			if err != nil {
				status = "FAIL: " + err.Error()
				failed++
			}
			fmt.Printf("%-4s %-34s %s\n", exp.id, exp.title, status)
			if obs != "" {
				fmt.Printf("     %s\n", obs)
			}
		}
		fmt.Println()
	}
	if !*eOnly {
		fmt.Println("=== B-series: quantitative tables ===")
		runMeasurements()
	}
	if *jsonPath != "" {
		if err := writeBaseline(*jsonPath); err != nil {
			fmt.Fprintf(os.Stderr, "benchharness: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("baseline written to %s (%d rows)\n", *jsonPath, len(benchRows))
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "benchharness: %d experiments failed\n", failed)
		os.Exit(1)
	}
}

// writeBaseline records the B-series rows with enough host context to make
// cross-PR comparisons honest, plus the run's own telemetry snapshot (the
// func-backed series stay live even though the B-series runs dark, so the
// baseline records what the harness actually did — deliveries, WAL
// appends, flow-cache traffic).
func writeBaseline(path string) error {
	out := struct {
		GoVersion string             `json:"go_version"`
		GOOS      string             `json:"goos"`
		GOARCH    string             `json:"goarch"`
		NumCPU    int                `json:"num_cpu"`
		Rows      []benchRow         `json:"rows"`
		Telemetry []telemetry.Metric `json:"telemetry,omitempty"`
	}{
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
		Rows:      benchRows,
		Telemetry: telemetry.Snapshot(),
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
