// Command benchharness regenerates every experiment in EXPERIMENTS.md: the
// eleven figure reproductions E1-E11 (scenario checks with observable
// outcomes) and the quantitative tables B1-B8. Absolute numbers depend on
// the host; the *shapes* (who wins, what scales how) are the reproduction
// targets.
//
// Usage:
//
//	benchharness            run everything
//	benchharness -e         run only the E-series scenarios
//	benchharness -b         run only the B-series measurements
package main

import (
	"flag"
	"fmt"
	"os"
)

func main() {
	eOnly := flag.Bool("e", false, "run only the E-series figure reproductions")
	bOnly := flag.Bool("b", false, "run only the B-series measurements")
	flag.Parse()

	failed := 0
	if !*bOnly {
		fmt.Println("=== E-series: figure reproductions ===")
		for _, exp := range experiments {
			obs, err := exp.run()
			status := "PASS"
			if err != nil {
				status = "FAIL: " + err.Error()
				failed++
			}
			fmt.Printf("%-4s %-34s %s\n", exp.id, exp.title, status)
			if obs != "" {
				fmt.Printf("     %s\n", obs)
			}
		}
		fmt.Println()
	}
	if !*eOnly {
		fmt.Println("=== B-series: quantitative tables ===")
		runMeasurements()
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "benchharness: %d experiments failed\n", failed)
		os.Exit(1)
	}
}
