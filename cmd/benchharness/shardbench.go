package main

import (
	"fmt"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"lciot/internal/ifc"
	"lciot/internal/msg"
	"lciot/internal/sbus"
)

// shardCountsFlag holds the -shards override for B14's aggregate rows
// (nil means the default 1/4/32 sweep).
var shardCountsFlag []int

// nameOnShard generates a component name with the given prefix that the
// bus homes on the wanted shard (placement is a pure function of the
// name, so trial names converge quickly).
func nameOnShard(bus *sbus.Bus, prefix string, shard int) string {
	for k := 0; ; k++ {
		name := prefix + strconv.Itoa(k)
		if bus.ShardOf(name) == shard {
			return name
		}
	}
}

// nameOffShard generates a name homed on any shard except the given one.
func nameOffShard(bus *sbus.Bus, prefix string, notShard int) string {
	for k := 0; ; k++ {
		name := prefix + strconv.Itoa(k)
		if bus.ShardOf(name) != notShard {
			return name
		}
	}
}

// B14: the sharded bus core. Aggregate delivery capacity at several shard
// counts, cross-shard handoff cost, and the two flatness claims: publish
// and context-change latency must not grow with channels on other shards.
func measureB14() {
	schema := msg.MustSchema("vitals", ifc.EmptyLabel,
		msg.Field{Name: "patient", Type: msg.TString, Required: true},
		msg.Field{Name: "heart-rate", Type: msg.TFloat, Required: true},
	)
	ctx := ifc.MustContext([]ifc.Tag{"medical"}, nil)
	mkMsg := func() *msg.Message {
		return msg.New("vitals").Set("patient", msg.Str("ann")).Set("heart-rate", msg.Float(72))
	}

	// buildLanes returns one source per shard, each connected to a sink on
	// its own shard: S independent delivery lanes through one bus, sharing
	// no routing state (only the process-wide audit queue).
	buildLanes := func(shards int) (*sbus.Bus, []*sbus.Component, *atomic.Uint64) {
		bus := sbus.NewShardedBus("bench", shards, benchACL(), nil, nil)
		var delivered atomic.Uint64
		handler := func(*msg.Message, sbus.Delivery) { delivered.Add(1) }
		srcs := make([]*sbus.Component, shards)
		for i := 0; i < shards; i++ {
			srcName := nameOnShard(bus, fmt.Sprintf("src-%d-", i), i)
			dstName := nameOnShard(bus, fmt.Sprintf("dst-%d-", i), i)
			src, err := bus.Register(srcName, "p", ctx, nil,
				sbus.EndpointSpec{Name: "out", Dir: sbus.Source, Schema: schema})
			if err != nil {
				panic(err)
			}
			if _, err := bus.Register(dstName, "p", ctx, handler,
				sbus.EndpointSpec{Name: "in", Dir: sbus.Sink, Schema: schema}); err != nil {
				panic(err)
			}
			if err := bus.Connect("p", srcName+".out", dstName+".in"); err != nil {
				panic(err)
			}
			srcs[i] = src
		}
		return bus, srcs, &delivered
	}

	// Aggregate delivery capacity. The gated ns/op is the per-lane cost
	// divided across lanes (each lane measured alone, rates summed) —
	// deterministic on any host, so baseline and CI rows stay comparable.
	// That sum is valid as capacity because the lanes share no mutable
	// routing state; on multi-core hosts a second, concurrent pass with
	// GOMAXPROCS swept to the lane count demonstrates it and its measured
	// parallel rate is appended to the row's note. All shard counts'
	// lanes are measured interleaved (3 round-robin passes, best kept),
	// so slow phases of the host hit every row equally and the
	// N-vs-1-shard ratio isn't skewed by when each row happened to run.
	// Every audit backlog is flushed before each lane: publish cost is
	// coupled to the async audit drain once its bounded queue fills, so
	// lanes must start from the same queue state and run long enough
	// (4x the queue bound) that the steady state dominates — the same
	// regime B3 measures.
	const perLane = 20000
	counts := shardCountsFlag
	if counts == nil {
		counts = []int{1, 4, 32}
	}
	buses := make([]*sbus.Bus, len(counts))
	lanes := make([][]*sbus.Component, len(counts))
	for ci, shards := range counts {
		buses[ci], lanes[ci], _ = buildLanes(shards)
	}
	best := make([][]time.Duration, len(counts))
	type laneRef struct{ ci, li int }
	var order []laneRef
	for ci := range counts {
		best[ci] = make([]time.Duration, len(lanes[ci]))
		for li := range lanes[ci] {
			order = append(order, laneRef{ci, li})
		}
	}
	runtime.GC() // don't let earlier tables' garbage tax the lanes
	const reps = 5
	for rep := 0; rep < reps; rep++ {
		// Rotate the starting lane each pass so no lane is pinned to one
		// position in the cycle (host slow phases are position-correlated).
		off := rep * len(order) / reps
		for k := 0; k < len(order); k++ {
			ref := order[(k+off)%len(order)]
			src := lanes[ref.ci][ref.li]
			for _, b := range buses {
				b.Log().Flush() // no bus hashes a backlog during another lane's run
			}
			m := mkMsg()
			d, _ := timeOpAllocsN(200, perLane, func() {
				if _, err := src.Publish("out", m); err != nil {
					panic(err)
				}
			})
			if rep == 0 || d < best[ref.ci][ref.li] {
				best[ref.ci][ref.li] = d
			}
		}
	}
	var baseRate float64
	for ci, shards := range counts {
		var aggregate float64 // deliveries per second, capacity sum
		for _, d := range best[ci] {
			aggregate += 1e9 / float64(d.Nanoseconds())
		}
		mode := "per-lane rates summed, lanes interleaved, best of 5 (lanes share no routing state)"
		if runtime.NumCPU() >= 2 && shards > 1 {
			buses[ci].Log().Flush()
			procs := runtime.NumCPU()
			if shards < procs {
				procs = shards
			}
			prev := runtime.GOMAXPROCS(procs)
			var wg sync.WaitGroup
			start := time.Now()
			for _, src := range lanes[ci] {
				wg.Add(1)
				go func(c *sbus.Component) {
					defer wg.Done()
					lm := mkMsg()
					for i := 0; i < perLane; i++ {
						if _, err := c.Publish("out", lm); err != nil {
							panic(err)
						}
					}
				}(src)
			}
			wg.Wait()
			wall := time.Since(start)
			runtime.GOMAXPROCS(prev)
			concRate := float64(shards*perLane) / wall.Seconds()
			mode = fmt.Sprintf("%s; concurrent pass at GOMAXPROCS=%d measured %.2fM/s",
				mode, procs, concRate/1e6)
		}
		perOp := time.Duration(1e9 / aggregate)
		note := fmt.Sprintf("%.2fM deliveries/s aggregate; %s", aggregate/1e6, mode)
		if shards == 1 {
			baseRate = aggregate
		} else if baseRate > 0 {
			note = fmt.Sprintf("%.2fx vs 1 shard; %s", aggregate/baseRate, note)
		}
		row("B14", fmt.Sprintf("aggregate local delivery, %d shards", shards), perOp, note)
		buses[ci].Close()
	}

	// Cross-shard handoff: source and sink on different shards, end-to-end
	// through the destination shard's ring and dispatcher. Publishes are
	// paced in ring-sized batches so the measurement covers queued
	// dispatch, not the overflow fallback.
	{
		bus := sbus.NewShardedBus("bench", 4, benchACL(), nil, nil)
		var delivered atomic.Uint64
		srcName := nameOnShard(bus, "xsrc-", 0)
		dstName := nameOnShard(bus, "xdst-", 2)
		src, err := bus.Register(srcName, "p", ctx, nil,
			sbus.EndpointSpec{Name: "out", Dir: sbus.Source, Schema: schema})
		if err != nil {
			panic(err)
		}
		if _, err := bus.Register(dstName, "p", ctx,
			func(*msg.Message, sbus.Delivery) { delivered.Add(1) },
			sbus.EndpointSpec{Name: "in", Dir: sbus.Sink, Schema: schema}); err != nil {
			panic(err)
		}
		if err := bus.Connect("p", srcName+".out", dstName+".in"); err != nil {
			panic(err)
		}
		m := mkMsg()
		const total, batch = 20000, 2000
		for i := 0; i < 500; i++ { // warmup
			src.Publish("out", m)
		}
		for delivered.Load() < 500 {
			time.Sleep(time.Millisecond)
		}
		var wall time.Duration // min of 3: handoff wakeups are scheduler-noisy
		for rep := 0; rep < 3; rep++ {
			delivered.Store(0)
			start := time.Now()
			sent := 0
			for sent < total {
				for i := 0; i < batch; i++ {
					if _, err := src.Publish("out", m); err != nil {
						panic(err)
					}
				}
				sent += batch
				for delivered.Load() < uint64(sent) {
					runtime.Gosched()
				}
			}
			if w := time.Since(start); rep == 0 || w < wall {
				wall = w
			}
		}
		stats := bus.ShardStats()
		row("B14", "cross-shard handoff, end-to-end", wall/total,
			fmt.Sprintf("publish on shard 0, deliver on shard 2; %d ring overflows; min of 3", stats[2].Overflow))
		bus.Close()
	}

	// Flatness at scale: a 16-shard bus carrying one million registered
	// channels. Neither a single publish nor one component's context
	// change may scale with the channels held by other shards.
	{
		const shards = 16
		const specSrcs, specSinks = 1000, 1000 // bipartite: 1M spectator channels
		bus := sbus.NewShardedBus("bench", shards, benchACL(), nil, nil)
		var delivered atomic.Uint64
		handler := func(*msg.Message, sbus.Delivery) { delivered.Add(1) }

		// The hot components live on shard 0; every spectator component is
		// homed elsewhere, so shard 0 owns only the hot channels.
		probeSrcName := nameOnShard(bus, "probe-src-", 0)
		probeDstName := nameOnShard(bus, "probe-dst-", 0)
		probe, err := bus.Register(probeSrcName, "p", ctx, nil,
			sbus.EndpointSpec{Name: "out", Dir: sbus.Source, Schema: schema})
		if err != nil {
			panic(err)
		}
		if _, err := bus.Register(probeDstName, "p", ctx, handler,
			sbus.EndpointSpec{Name: "in", Dir: sbus.Sink, Schema: schema}); err != nil {
			panic(err)
		}

		ctxA := ifc.MustContext([]ifc.Tag{"a"}, nil)
		ctxB := ifc.MustContext([]ifc.Tag{"a", "b"}, nil)
		hotName := nameOnShard(bus, "hot-src-", 0)
		hot, err := bus.Register(hotName, "p", ctxA, nil,
			sbus.EndpointSpec{Name: "out", Dir: sbus.Source, Schema: schema})
		if err != nil {
			panic(err)
		}
		if err := hot.Entity().GrantPrivileges(ifc.OwnerPrivileges("a", "b")); err != nil {
			panic(err)
		}
		const hotFanout = 1000
		hotPairs := make([][2]string, 0, hotFanout)
		for i := 0; i < hotFanout; i++ {
			name := "hot-dst" + strconv.Itoa(i)
			if _, err := bus.Register(name, "p", ctxB, nil,
				sbus.EndpointSpec{Name: "in", Dir: sbus.Sink, Schema: schema}); err != nil {
				panic(err)
			}
			hotPairs = append(hotPairs, [2]string{hotName + ".out", name + ".in"})
		}

		buildStart := time.Now()
		srcNames := make([]string, specSrcs)
		sinkNames := make([]string, specSinks)
		for i := range srcNames {
			srcNames[i] = nameOffShard(bus, fmt.Sprintf("spec-src-%d-", i), 0)
			if _, err := bus.Register(srcNames[i], "p", ctx, nil,
				sbus.EndpointSpec{Name: "out", Dir: sbus.Source, Schema: schema}); err != nil {
				panic(err)
			}
		}
		for i := range sinkNames {
			sinkNames[i] = nameOffShard(bus, fmt.Sprintf("spec-dst-%d-", i), 0)
			if _, err := bus.Register(sinkNames[i], "p", ctx, nil,
				sbus.EndpointSpec{Name: "in", Dir: sbus.Sink, Schema: schema}); err != nil {
				panic(err)
			}
		}
		pairs := make([][2]string, 0, specSrcs*specSinks)
		for _, s := range srcNames {
			for _, d := range sinkNames {
				pairs = append(pairs, [2]string{s + ".out", d + ".in"})
			}
		}
		if err := bus.ConnectMany("p", pairs); err != nil {
			panic(err)
		}
		if err := bus.ConnectMany("p", hotPairs); err != nil {
			panic(err)
		}
		if err := bus.ConnectMany("p", [][2]string{{probeSrcName + ".out", probeDstName + ".in"}}); err != nil {
			panic(err)
		}
		buildWall := time.Since(buildStart)
		totalChannels := specSrcs*specSinks + hotFanout + 1

		// The bulk build leaves a concurrent mark cycle in flight over the
		// ~GB heap; let it finish so mark assists don't tax the probes.
		runtime.GC()
		bus.Log().Flush()

		m := mkMsg()
		d, da := timeOpAllocs(func() {
			if _, err := probe.Publish("out", m); err != nil {
				panic(err)
			}
		})
		rowAllocs("B14", fmt.Sprintf("local delivery, %dk registered channels", totalChannels/1000), d, da,
			fmt.Sprintf("per-shard latency flat vs B3's 1-channel bus; bulk build %.1fs", buildWall.Seconds()))

		cur := false
		var cd time.Duration
		var ca float64
		for rep := 0; rep < 3; rep++ { // min of 3, audit backlog flushed between
			bus.Log().Flush()
			d2, a2 := timeOpAllocsN(10, 300, func() {
				target := ctxB
				if cur {
					target = ctxA
				}
				cur = !cur
				if err := hot.SetContext(target); err != nil {
					panic(err)
				}
			})
			if rep == 0 || d2 < cd {
				cd, ca = d2, a2
			}
		}
		rowAllocs("B14", fmt.Sprintf("context change, %d channels + %dk on other shards", hotFanout, (specSrcs*specSinks)/1000),
			cd, ca, "re-evaluation never visits other shards' channels; min of 3")
		bus.Close()
	}
}
