package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"lciot/internal/policy"
)

func writeTemp(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "p.lcp")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const goodPolicy = `
rule "a" priority 2 { on event "e" when ctx.x do connect "p.out" -> "q.in" }
rule "b" priority 1 { on event "e" do disconnect "p.out" -> "q.in" }
rule "c" { on timer 5m do alert "heartbeat" }
`

func TestRunValidate(t *testing.T) {
	path := writeTemp(t, goodPolicy)
	if code := run([]string{"validate", path}); code != 0 {
		t.Fatalf("validate exit = %d", code)
	}
}

func TestRunShow(t *testing.T) {
	path := writeTemp(t, goodPolicy)
	if code := run([]string{"show", path}); code != 0 {
		t.Fatalf("show exit = %d", code)
	}
}

func TestRunLintFindsConflicts(t *testing.T) {
	path := writeTemp(t, goodPolicy)
	// Rules "a" and "b" claim the same channel on the same trigger.
	if code := run([]string{"lint", path}); code != 1 {
		t.Fatalf("lint exit = %d, want 1 (findings)", code)
	}
	clean := writeTemp(t, `rule "only" { on event "e" do alert "x" }`)
	if code := run([]string{"lint", clean}); code != 0 {
		t.Fatalf("clean lint exit = %d", code)
	}
}

func TestRunErrors(t *testing.T) {
	if code := run(nil); code != 2 {
		t.Fatalf("no args exit = %d", code)
	}
	if code := run([]string{"validate", "/nonexistent/file"}); code != 1 {
		t.Fatalf("missing file exit = %d", code)
	}
	bad := writeTemp(t, "rule {")
	if code := run([]string{"validate", bad}); code != 1 {
		t.Fatalf("parse error exit = %d", code)
	}
	good := writeTemp(t, `rule "r" { on event "e" do alert "x" }`)
	if code := run([]string{"explode", good}); code != 2 {
		t.Fatalf("unknown command exit = %d", code)
	}
}

func TestLintDetails(t *testing.T) {
	set := policy.MustParse(`
rule "high" priority 5 { on event "e" do set mode = "a" }
rule "low" priority 5 { on event "e" do set mode = "b" }
rule "other-trigger" { on event "f" do set mode = "c" }
`)
	findings := lint(set)
	if len(findings) != 1 {
		t.Fatalf("findings = %v", findings)
	}
	if !strings.Contains(findings[0], "equal priority") {
		t.Fatalf("finding %q should flag the tie", findings[0])
	}
	// Identical trigger but different resources: no conflict.
	set2 := policy.MustParse(`
rule "a" { on event "e" do set x = 1 }
rule "b" { on event "e" do set y = 1 }
`)
	if findings := lint(set2); len(findings) != 0 {
		t.Fatalf("spurious findings = %v", findings)
	}
}

const obligationPolicy = `
rule "r" { on timer 5m do alert "tick" }
obligation "gdpr" on medical {
  retain 720h;
  erase on "subject-erasure";
  residency eu uk;
  purpose research;
}
`

func TestRunLintObligations(t *testing.T) {
	// Clean declarations (purpose registered via -purposes) lint clean.
	path := writeTemp(t, obligationPolicy)
	if code := run([]string{"-purposes", "research", "lint", path}); code != 0 {
		t.Fatalf("clean obligations lint exit = %d", code)
	}
	// Unknown jurisdiction, zero retention and unregistered purpose are
	// each flagged.
	bad := writeTemp(t, `
obligation "a" on x { retain 0s; residency atlantis; purpose unheard-of; }
`)
	if code := run([]string{"-purposes", "research", "lint", bad}); code != 1 {
		t.Fatalf("bad obligations lint exit = %d, want 1", code)
	}
	findings := lintObligations(policy.MustParse(`
obligation "a" on x { retain 0s; residency atlantis; purpose unheard-of; }
`), "research")
	joined := strings.Join(findings, "\n")
	for _, want := range []string{"retain 0s", "atlantis", "unheard-of"} {
		if !strings.Contains(joined, want) {
			t.Errorf("lint findings missing %q:\n%s", want, joined)
		}
	}
}

func TestRunExplain(t *testing.T) {
	path := writeTemp(t, obligationPolicy)
	if code := run([]string{"-explain", "validate", path}); code != 0 {
		t.Fatalf("-explain validate exit = %d", code)
	}
}
