// Command policyctl validates and inspects lciot policy files.
//
// Usage:
//
//	policyctl validate <file.lcp>   parse and report rule statistics
//	policyctl show <file.lcp>       print the normalised rules
//	policyctl lint <file.lcp>       warn about statically detectable
//	                                conflicts (two rules on the same
//	                                trigger claiming the same resource)
//
// Exit status is non-zero on parse errors or (for lint) findings.
package main

import (
	"fmt"
	"os"
	"sort"

	"lciot/internal/policy"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	if len(args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: policyctl validate|show|lint <file.lcp>")
		return 2
	}
	cmd, path := args[0], args[1]
	src, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "policyctl:", err)
		return 1
	}
	set, err := policy.Parse(string(src))
	if err != nil {
		fmt.Fprintln(os.Stderr, "policyctl:", err)
		return 1
	}

	switch cmd {
	case "validate":
		validate(set)
		return 0
	case "show":
		for _, r := range set.Rules {
			fmt.Println(r)
		}
		return 0
	case "lint":
		findings := lint(set)
		for _, f := range findings {
			fmt.Println("warning:", f)
		}
		if len(findings) > 0 {
			return 1
		}
		fmt.Println("no conflicts found")
		return 0
	default:
		fmt.Fprintf(os.Stderr, "policyctl: unknown command %q\n", cmd)
		return 2
	}
}

// validate prints summary statistics.
func validate(set *policy.PolicySet) {
	triggers := map[string]int{}
	actions := 0
	guarded := 0
	for _, r := range set.Rules {
		triggers[r.Trigger.Kind.String()]++
		actions += len(r.Do)
		if r.When != nil {
			guarded++
		}
	}
	fmt.Printf("rules: %d (guarded: %d), actions: %d\n", len(set.Rules), guarded, actions)
	kinds := make([]string, 0, len(triggers))
	for k := range triggers {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	for _, k := range kinds {
		fmt.Printf("  on %s: %d\n", k, triggers[k])
	}
}

// lint reports pairs of rules that share a trigger and claim the same
// resource — candidates for runtime conflicts (Challenge 4). Guards cannot
// be evaluated statically, so these are warnings, not errors.
func lint(set *policy.PolicySet) []string {
	type claim struct {
		rule     string
		priority int
	}
	var findings []string
	// Group rules by trigger signature.
	byTrigger := map[string][]int{}
	for i, r := range set.Rules {
		sig := fmt.Sprintf("%s/%s/%s/%s", r.Trigger.Kind, r.Trigger.Pattern, r.Trigger.Key, r.Trigger.Every)
		byTrigger[sig] = append(byTrigger[sig], i)
	}
	for _, idxs := range byTrigger {
		claimed := map[string]claim{}
		for _, i := range idxs {
			r := set.Rules[i]
			for _, a := range r.Do {
				res := policy.ResourceOf(a)
				if res == "" {
					continue
				}
				if prior, ok := claimed[res]; ok && prior.rule != r.Name {
					tiebreak := ""
					if prior.priority == r.Priority {
						tiebreak = " (equal priority: name order decides)"
					}
					findings = append(findings, fmt.Sprintf(
						"rules %q and %q both act on %s%s", prior.rule, r.Name, res, tiebreak))
					continue
				}
				claimed[res] = claim{rule: r.Name, priority: r.Priority}
			}
		}
	}
	sort.Strings(findings)
	return findings
}
