// Command policyctl validates and inspects lciot policy files.
//
// Usage:
//
//	policyctl [flags] validate <file.lcp>   parse and report rule statistics
//	policyctl [flags] show <file.lcp>       print the normalised rules and obligations
//	policyctl [flags] lint <file.lcp>       warn about statically detectable
//	                                        conflicts (two rules on the same
//	                                        trigger claiming the same resource)
//	                                        and ill-formed obligation clauses
//	                                        (unknown jurisdiction, zero
//	                                        retention, unregistered purpose)
//
// Flags:
//
//	-explain          print the compiled obligation set per tag
//	-purposes a,b,c   extra purpose tags to treat as registered (stands in
//	                  for the global names registry when linting offline)
//
// Exit status is non-zero on parse errors or (for lint) findings.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"lciot/internal/ifc"
	"lciot/internal/obligation"
	"lciot/internal/policy"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: policyctl [-explain] [-purposes a,b,c] validate|show|lint <file.lcp>")
}

func run(args []string) int {
	fs := flag.NewFlagSet("policyctl", flag.ContinueOnError)
	explain := fs.Bool("explain", false, "print the compiled obligation set per tag")
	purposes := fs.String("purposes", "", "comma-separated purpose tags to treat as registered")
	fs.Usage = usage
	if err := fs.Parse(args); err != nil {
		return 2
	}
	rest := fs.Args()
	if len(rest) != 2 {
		usage()
		return 2
	}
	cmd, path := rest[0], rest[1]
	src, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "policyctl:", err)
		return 1
	}
	set, err := policy.Parse(string(src))
	if err != nil {
		fmt.Fprintln(os.Stderr, "policyctl:", err)
		return 1
	}

	status := 0
	switch cmd {
	case "validate":
		validate(set)
	case "show":
		for _, r := range set.Rules {
			fmt.Println(r)
		}
		for _, o := range set.Obligations {
			fmt.Println(o)
		}
	case "lint":
		findings := lint(set)
		findings = append(findings, lintObligations(set, *purposes)...)
		for _, f := range findings {
			fmt.Println("warning:", f)
		}
		if len(findings) > 0 {
			status = 1
		} else {
			fmt.Println("no conflicts found")
		}
	default:
		fmt.Fprintf(os.Stderr, "policyctl: unknown command %q\n", cmd)
		return 2
	}
	if *explain {
		if err := explainObligations(set); err != nil {
			fmt.Fprintln(os.Stderr, "policyctl:", err)
			return 1
		}
	}
	return status
}

// validate prints summary statistics.
func validate(set *policy.PolicySet) {
	triggers := map[string]int{}
	actions := 0
	guarded := 0
	for _, r := range set.Rules {
		triggers[r.Trigger.Kind.String()]++
		actions += len(r.Do)
		if r.When != nil {
			guarded++
		}
	}
	fmt.Printf("rules: %d (guarded: %d), actions: %d, obligations: %d\n",
		len(set.Rules), guarded, actions, len(set.Obligations))
	kinds := make([]string, 0, len(triggers))
	for k := range triggers {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	for _, k := range kinds {
		fmt.Printf("  on %s: %d\n", k, triggers[k])
	}
}

// explainObligations compiles the obligation clauses and prints the
// per-tag obligation set — what the middleware will actually enforce.
func explainObligations(set *policy.PolicySet) error {
	if len(set.Obligations) == 0 {
		fmt.Println("obligations: none")
		return nil
	}
	tab, err := obligation.Compile(set.Obligations)
	if err != nil {
		return err
	}
	fmt.Printf("obligations: %d tags under management\n", tab.Len())
	for _, tag := range tab.Tags() {
		s, _ := tab.Lookup(tag)
		fmt.Println(" ", s)
	}
	return nil
}

// lintObligations runs the obligation linter. The purpose-tag "registry"
// is the union of tags referenced anywhere in the policy file plus the
// -purposes flag — an offline stand-in for the global names registry.
func lintObligations(set *policy.PolicySet, extra string) []string {
	known := map[ifc.Tag]bool{}
	for _, p := range strings.Split(extra, ",") {
		if p = strings.TrimSpace(p); p != "" {
			known[ifc.Tag(p)] = true
		}
	}
	for _, r := range set.Rules {
		for _, a := range r.Do {
			switch x := a.(type) {
			case policy.SetContextAction:
				for _, t := range x.Ctx.Secrecy.Tags() {
					known[t] = true
				}
				for _, t := range x.Ctx.Integrity.Tags() {
					known[t] = true
				}
			case policy.GrantAction:
				for _, l := range []ifc.Label{
					x.Privs.AddSecrecy, x.Privs.RemoveSecrecy,
					x.Privs.AddIntegrity, x.Privs.RemoveIntegrity,
				} {
					for _, t := range l.Tags() {
						known[t] = true
					}
				}
			}
		}
	}
	opts := obligation.LintOptions{}
	if len(known) > 0 {
		opts.KnownPurposes = known
	}
	return obligation.Lint(set, opts)
}

// lint reports pairs of rules that share a trigger and claim the same
// resource — candidates for runtime conflicts (Challenge 4). Guards cannot
// be evaluated statically, so these are warnings, not errors.
func lint(set *policy.PolicySet) []string {
	type claim struct {
		rule     string
		priority int
	}
	var findings []string
	// Group rules by trigger signature.
	byTrigger := map[string][]int{}
	for i, r := range set.Rules {
		sig := fmt.Sprintf("%s/%s/%s/%s", r.Trigger.Kind, r.Trigger.Pattern, r.Trigger.Key, r.Trigger.Every)
		byTrigger[sig] = append(byTrigger[sig], i)
	}
	for _, idxs := range byTrigger {
		claimed := map[string]claim{}
		for _, i := range idxs {
			r := set.Rules[i]
			for _, a := range r.Do {
				res := policy.ResourceOf(a)
				if res == "" {
					continue
				}
				if prior, ok := claimed[res]; ok && prior.rule != r.Name {
					tiebreak := ""
					if prior.priority == r.Priority {
						tiebreak = " (equal priority: name order decides)"
					}
					findings = append(findings, fmt.Sprintf(
						"rules %q and %q both act on %s%s", prior.rule, r.Name, res, tiebreak))
					continue
				}
				claimed[res] = claim{rule: r.Name, priority: r.Priority}
			}
		}
	}
	sort.Strings(findings)
	return findings
}
