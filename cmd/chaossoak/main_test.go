package main

import (
	"log"
	"os"
	"os/exec"
	"strconv"
	"testing"
	"time"

	"lciot/internal/chaos"
)

// TestChaosSoak is the integration soak: it re-execs this test binary as
// the sacrificial child for each phase (the same pattern as the store's
// SIGKILL crash test), kills it on schedule, and requires the final
// drain to exit cleanly and both chains plus the retention report to
// verify. The schedule is seeded, so a failure here reproduces exactly.
func TestChaosSoak(t *testing.T) {
	if os.Getenv("CHAOS_SOAK_CHILD") != "" {
		t.Skip("child mode is driven via TestChaosSoakChild")
	}
	if testing.Short() {
		t.Skip("multi-second subprocess soak")
	}
	dir := t.TempDir()
	const seed, phases = 42, 3
	phaseDur := 1500 * time.Millisecond
	rep, err := chaos.RunSoak(chaos.Options{
		Seed: seed, Phases: phases, PhaseDur: phaseDur, Dir: dir,
		Child: func(phase int) *exec.Cmd {
			cmd := exec.Command(os.Args[0], "-test.run", "TestChaosSoakChild$")
			cmd.Env = append(os.Environ(),
				"CHAOS_SOAK_CHILD=1",
				"CHAOS_SOAK_DIR="+dir,
				"CHAOS_SOAK_SEED="+strconv.Itoa(seed),
				"CHAOS_SOAK_PHASES="+strconv.Itoa(phases),
				"CHAOS_SOAK_PHASE_DUR="+phaseDur.String(),
				"CHAOS_SOAK_PHASE="+strconv.Itoa(phase),
			)
			cmd.Stdout = os.Stdout
			cmd.Stderr = os.Stderr
			return cmd
		},
		Logf: t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range rep.Nodes {
		if n.Records == 0 {
			t.Errorf("%s: empty chain after soak", n.Node)
		}
		if n.Tombstoned == 0 {
			t.Errorf("%s: no retention tombstones after soak", n.Node)
		}
	}
}

// TestChaosSoakChild is the re-exec entry point: in child mode it runs
// one phase of the soak and exits with RunChild's verdict (kill phases
// never reach the exit — the parent SIGKILLs them mid-flight).
func TestChaosSoakChild(t *testing.T) {
	if os.Getenv("CHAOS_SOAK_CHILD") == "" {
		t.Skip("re-exec child; driven by TestChaosSoak")
	}
	seed, _ := strconv.ParseInt(os.Getenv("CHAOS_SOAK_SEED"), 10, 64)
	phases, _ := strconv.Atoi(os.Getenv("CHAOS_SOAK_PHASES"))
	phaseDur, _ := time.ParseDuration(os.Getenv("CHAOS_SOAK_PHASE_DUR"))
	phase, _ := strconv.Atoi(os.Getenv("CHAOS_SOAK_PHASE"))
	sched := chaos.Generate(seed, phases, phaseDur)
	if err := chaos.RunChild(os.Getenv("CHAOS_SOAK_DIR"), sched, phase, log.Printf); err != nil {
		log.Print("chaos child: ", err)
		os.Exit(1)
	}
	os.Exit(0)
}
