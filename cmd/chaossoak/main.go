// Command chaossoak runs the seeded chaos soak: a two-node federated
// domain (alpha listens, beta dials, telemetry pumping across both buses)
// driven through a failure schedule derived entirely from -seed —
// failpoints arming mid-flight, partitions opening and healing, and a
// SIGKILL ending every phase but the last. The final phase drains
// gracefully under a deadlock watchdog, and the parent then verifies the
// wreckage: both audit chains must verify end to end and the retention
// report must be clean.
//
// Usage:
//
//	chaossoak [-seed N] [-phases N] [-phase-dur DUR] [-dir DIR]
//	chaossoak -print-schedule [-seed N] [-phases N] [-phase-dur DUR]
//
// The same seed always produces the same schedule (byte for byte —
// compare two -print-schedule runs), so any failure this harness finds is
// reproducible by rerunning with the seed from its log.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/exec"
	"strconv"
	"time"

	"lciot/internal/chaos"
)

func main() {
	seed := flag.Int64("seed", 1, "schedule seed; same seed, same failure schedule")
	phases := flag.Int("phases", 4, "number of phases (all but the last end in SIGKILL)")
	phaseDur := flag.Duration("phase-dur", 2*time.Second, "duration of each phase")
	dir := flag.String("dir", "", "persistent soak directory (default: a temp dir, removed on success)")
	printSchedule := flag.Bool("print-schedule", false, "print the derived schedule and exit")
	childPhase := flag.Int("child-phase", -1, "internal: run one phase as the sacrificial child")
	flag.Parse()
	log.SetFlags(log.Ltime | log.Lmicroseconds)

	if *printSchedule {
		fmt.Print(chaos.Generate(*seed, *phases, *phaseDur).String())
		return
	}
	if *childPhase >= 0 {
		// Child mode: this process is sacrificial; the parent SIGKILLs it
		// mid-phase unless this is the final, graceful phase.
		sched := chaos.Generate(*seed, *phases, *phaseDur)
		if err := chaos.RunChild(*dir, sched, *childPhase, log.Printf); err != nil {
			log.Fatal("chaossoak child: ", err)
		}
		return
	}

	root := *dir
	cleanup := false
	if root == "" {
		var err error
		root, err = os.MkdirTemp("", "chaossoak-*")
		if err != nil {
			log.Fatal("chaossoak: ", err)
		}
		cleanup = true
	}
	rep, err := chaos.RunSoak(chaos.Options{
		Seed: *seed, Phases: *phases, PhaseDur: *phaseDur, Dir: root,
		Child: func(phase int) *exec.Cmd {
			cmd := exec.Command(os.Args[0],
				"-child-phase", strconv.Itoa(phase),
				"-seed", strconv.FormatInt(*seed, 10),
				"-phases", strconv.Itoa(*phases),
				"-phase-dur", phaseDur.String(),
				"-dir", root)
			cmd.Stdout = os.Stdout
			cmd.Stderr = os.Stderr
			return cmd
		},
		Logf: log.Printf,
	})
	if err != nil {
		log.Fatalf("chaossoak: FAILED (seed %d, state kept in %s): %v", *seed, root, err)
	}
	if cleanup {
		os.RemoveAll(root)
	}
	for _, n := range rep.Nodes {
		fmt.Printf("chaossoak: %s chain verified: %d records, %d tombstoned\n", n.Node, n.Records, n.Tombstoned)
	}
	fmt.Printf("chaossoak: OK seed=%d phases=%d\n", *seed, *phases)
}
