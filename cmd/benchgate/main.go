// Command benchgate compares a fresh benchharness -json run against a
// checked-in BENCH_<n>.json baseline and exits non-zero when selected
// rows regress beyond a tolerance — turning the bench artifacts CI has
// been archiving into an enforced gate.
//
// Usage:
//
//	benchgate -baseline BENCH_4.json -current bench1.json,bench2.json \
//	          [-tables B3,B7,B9,B12] [-tol 0.30] [-alloc-tol 0.10] \
//	          [-min-ns 100] [-no-normalize]
//
// Baselines are recorded on whatever machine produced them, so absolute
// ns/op comparisons across hosts would gate on hardware, not code. Unless
// -no-normalize is given, benchgate first scales the baseline by the
// median ns/op ratio across every compared row (the "this host is ~1.7x
// slower" factor), then applies the tolerance to the normalized values:
// a row regresses when it slows down relative to the rest of the suite.
// Allocations per op are hardware-independent and are compared without
// normalization, with their own (tighter) tolerance.
//
// Two further defenses against scheduler noise: -current accepts several
// runs (comma-separated) and takes the per-row minimum — interference
// only ever slows a row down, so the min across runs estimates the true
// cost — and -min-ns acts as an additive jitter allowance: a row only
// regresses when it exceeds the normalized baseline by BOTH the
// fractional tolerance and -min-ns nanoseconds. OS scheduling noise is
// additive (~tens of ns even under best-of-N), so on a 140ns row a 50ns
// excursion is jitter while a genuine 2x regression still trips the
// gate; on µs-scale rows the absolute term is negligible and the
// fractional tolerance governs. Allocs are always gated.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
)

// benchRow mirrors the benchharness JSON schema.
type benchRow struct {
	Table       string  `json:"table"`
	Workload    string  `json:"workload"`
	NsPerOp     int64   `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	Note        string  `json:"note,omitempty"`
}

type baselineFile struct {
	GoVersion string     `json:"go_version"`
	Rows      []benchRow `json:"rows"`
}

func main() {
	baselinePath := flag.String("baseline", "", "checked-in baseline JSON (required)")
	currentPath := flag.String("current", "", "fresh benchharness -json outputs, comma-separated; per-row min is compared (required)")
	tables := flag.String("tables", "B3,B7,B9,B12", "comma-separated tables to gate on")
	tol := flag.Float64("tol", 0.30, "allowed fractional ns/op regression after normalization")
	allocTol := flag.Float64("alloc-tol", 0.10, "allowed fractional allocs/op regression")
	minNs := flag.Int64("min-ns", 100, "additive jitter allowance: fail only rows exceeding the baseline by both -tol and this many ns")
	noNormalize := flag.Bool("no-normalize", false, "compare raw ns/op (same-host baselines only)")
	flag.Parse()
	if *baselinePath == "" || *currentPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	base, err := readRows(*baselinePath)
	if err != nil {
		fatal(err)
	}
	var cur []benchRow
	for _, path := range strings.Split(*currentPath, ",") {
		rows, err := readRows(strings.TrimSpace(path))
		if err != nil {
			fatal(err)
		}
		cur = mergeMin(cur, rows)
	}

	selected := map[string]bool{}
	for _, t := range strings.Split(*tables, ",") {
		if t = strings.TrimSpace(t); t != "" {
			selected[t] = true
		}
	}
	baseByKey := map[string]benchRow{}
	for _, r := range base {
		baseByKey[r.Table+"|"+r.Workload] = r
	}

	type pair struct{ base, cur benchRow }
	var pairs []pair
	var ratios []float64
	gatedTables := map[string]bool{}
	for _, r := range cur {
		if !selected[r.Table] {
			continue
		}
		b, ok := baseByKey[r.Table+"|"+r.Workload]
		if !ok {
			continue // new workload: no baseline yet
		}
		pairs = append(pairs, pair{base: b, cur: r})
		if b.NsPerOp > 0 && r.NsPerOp > 0 {
			ratios = append(ratios, float64(r.NsPerOp)/float64(b.NsPerOp))
		}
		gatedTables[r.Table] = true
	}
	if len(pairs) == 0 {
		fatal(fmt.Errorf("no comparable rows for tables %s", *tables))
	}
	for t := range selected {
		if !gatedTables[t] {
			fmt.Printf("warning: table %s has no comparable rows\n", t)
		}
	}

	scale := 1.0
	if !*noNormalize && len(ratios) > 0 {
		sort.Float64s(ratios)
		scale = ratios[len(ratios)/2]
	}
	fmt.Printf("benchgate: %d rows, host scale %.2fx, ns tolerance %.0f%%, alloc tolerance %.0f%%\n",
		len(pairs), scale, *tol*100, *allocTol*100)

	var regressions []string
	for _, p := range pairs {
		normBase := float64(p.base.NsPerOp) * scale
		nsDelta := float64(p.cur.NsPerOp)/normBase - 1
		status := "ok"
		if float64(p.cur.NsPerOp) <= normBase+float64(*minNs) {
			if float64(p.cur.NsPerOp) > normBase*(1+*tol) {
				status = "ok (under jitter floor)"
			}
		} else if float64(p.cur.NsPerOp) > normBase*(1+*tol) {
			status = "REGRESSION"
			regressions = append(regressions, fmt.Sprintf("%s %q: %dns/op vs normalized baseline %.0fns/op (%+.0f%%)",
				p.base.Table, p.base.Workload, p.cur.NsPerOp, normBase, nsDelta*100))
		}
		// Allocations are deterministic per code path: compare unscaled.
		// The +0.5 absolute slack forgives sub-allocation jitter from
		// pooling warmup on rows with a handful of allocs.
		if p.base.AllocsPerOp >= 0 && p.cur.AllocsPerOp > p.base.AllocsPerOp*(1+*allocTol)+0.5 {
			status = "REGRESSION"
			regressions = append(regressions, fmt.Sprintf("%s %q: %.1f allocs/op vs baseline %.1f",
				p.base.Table, p.base.Workload, p.cur.AllocsPerOp, p.base.AllocsPerOp))
		}
		fmt.Printf("  %-4s %-46s %8dns (base %8dns, norm %+5.0f%%) %6.1f allocs (base %6.1f)  %s\n",
			p.base.Table, p.base.Workload, p.cur.NsPerOp, p.base.NsPerOp, nsDelta*100,
			p.cur.AllocsPerOp, p.base.AllocsPerOp, status)
	}
	if len(regressions) > 0 {
		fmt.Fprintf(os.Stderr, "benchgate: %d regression(s):\n", len(regressions))
		for _, r := range regressions {
			fmt.Fprintln(os.Stderr, "  "+r)
		}
		os.Exit(1)
	}
	fmt.Println("benchgate: no regressions")
}

// mergeMin folds rows into acc keyed by table+workload, keeping the
// minimum ns/op and allocs/op seen for each row across runs.
func mergeMin(acc, rows []benchRow) []benchRow {
	if acc == nil {
		return append(acc, rows...)
	}
	index := map[string]int{}
	for i, r := range acc {
		index[r.Table+"|"+r.Workload] = i
	}
	for _, r := range rows {
		i, ok := index[r.Table+"|"+r.Workload]
		if !ok {
			index[r.Table+"|"+r.Workload] = len(acc)
			acc = append(acc, r)
			continue
		}
		if r.NsPerOp < acc[i].NsPerOp {
			acc[i].NsPerOp = r.NsPerOp
		}
		if r.AllocsPerOp < acc[i].AllocsPerOp {
			acc[i].AllocsPerOp = r.AllocsPerOp
		}
	}
	return acc
}

func readRows(path string) ([]benchRow, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f baselineFile
	if err := json.Unmarshal(raw, &f); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(f.Rows) == 0 {
		return nil, fmt.Errorf("%s: no rows", path)
	}
	return f.Rows, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchgate: ", err)
	os.Exit(1)
}
