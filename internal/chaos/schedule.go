// Package chaos is the seeded chaos-soak harness: it derives a fully
// deterministic failure schedule from one integer seed, drives a two-node
// federated domain through it — failpoints arming and disarming, network
// partitions opening and healing, SIGKILL mid-phase — and then verifies
// that the system kept its promises: both audit chains verify, the
// retention report is clean, and shutdown does not deadlock.
//
// The package is split the way the process tree is split: Generate and
// Schedule are pure (shared by parent and child, so both sides agree on
// the schedule without communicating); RunChild runs one phase of the
// node pair inside a sacrificial process; RunSoak is the parent that
// spawns a child per phase, kills it on cue, and audits the wreckage.
// cmd/chaossoak and the integration test are thin shells over these.
package chaos

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"time"
)

// EventKind says what a scheduled event does to the running node pair.
type EventKind int

const (
	// EventFault arms failpoints from a Spec in the fault.Set grammar.
	EventFault EventKind = iota
	// EventPartition cuts the network between the two nodes.
	EventPartition
	// EventHeal restores the network.
	EventHeal
)

// String renders the kind for schedule listings.
func (k EventKind) String() string {
	switch k {
	case EventFault:
		return "fault"
	case EventPartition:
		return "partition"
	case EventHeal:
		return "heal"
	}
	return fmt.Sprintf("EventKind(%d)", int(k))
}

// An Event is one scheduled action within a phase, at a fixed offset from
// the phase's start.
type Event struct {
	At   time.Duration
	Kind EventKind
	// Spec is the fault.Set program for EventFault ("" otherwise).
	Spec string
}

// A Phase is one child-process lifetime. Kill phases end in SIGKILL at
// KillAt; the final phase instead runs a graceful drain-and-verify
// shutdown, which is where deadlocks would surface.
type Phase struct {
	Index  int
	Dur    time.Duration
	Kill   bool
	KillAt time.Duration
	Events []Event
}

// A Schedule is the complete, reproducible failure plan for one soak.
type Schedule struct {
	Seed     int64
	PhaseDur time.Duration
	Phases   []Phase
}

// killFaults are the failure programs only injected into phases that end
// in SIGKILL: they corrupt or refuse durable I/O, and the point of the
// drill is proving recovery repairs the damage on the next boot. Each
// entry is a template instantiated with deterministic parameters.
func killFaults(rng *rand.Rand) string {
	switch rng.Intn(5) {
	case 0:
		return fmt.Sprintf("store.wal.fsync=every(%d,eio)", 4+rng.Intn(8))
	case 1:
		return fmt.Sprintf("store.wal.write=after(%d,enospc+partial:%d)",
			50+rng.Intn(300), 1+rng.Intn(24))
	case 2:
		return "store.wal.rotate=once(enospc)"
	case 3:
		return fmt.Sprintf("store.wal.write=after(%d,enospc)", 50+rng.Intn(300))
	default:
		return fmt.Sprintf("store.wal.fsync=times(%d,%dms+eio)", 2+rng.Intn(4), 5+rng.Intn(40))
	}
}

// benignFaults are survivable programs safe in any phase, including the
// final one: stalls, dropped frames, forced handoff overflow, deferred
// sweeps. They degrade service but never durability, so the final phase's
// retention report stays clean.
func benignFaults(rng *rand.Rand) string {
	switch rng.Intn(5) {
	case 0:
		return fmt.Sprintf("sbus.link.send=times(%d,%dms)", 2+rng.Intn(5), 20+rng.Intn(100))
	case 1:
		return fmt.Sprintf("sbus.link.send=every(%d,drop)", 7+rng.Intn(14))
	case 2:
		return fmt.Sprintf("sbus.shard.handoff=times(%d)", 50+rng.Intn(350))
	case 3:
		return fmt.Sprintf("audit.sink.stall=times(%d,%dms)", 2+rng.Intn(5), 10+rng.Intn(50))
	default:
		return fmt.Sprintf("core.obligation.sweep=times(%d,err)", 1+rng.Intn(4))
	}
}

// Generate derives the soak's complete failure schedule from the seed.
// Same seed, phase count and duration — same schedule, byte for byte
// (assert with String); that is the property that makes a chaos failure
// reproducible by rerunning with the seed from the log.
func Generate(seed int64, phases int, phaseDur time.Duration) Schedule {
	if phases < 2 {
		phases = 2
	}
	rng := rand.New(rand.NewSource(seed))
	s := Schedule{Seed: seed, PhaseDur: phaseDur}
	for i := 0; i < phases; i++ {
		ph := Phase{Index: i, Dur: phaseDur, Kill: i < phases-1, KillAt: phaseDur}
		offset := func(lo, hi float64) time.Duration {
			f := lo + rng.Float64()*(hi-lo)
			return time.Duration(f * float64(phaseDur)).Truncate(time.Millisecond)
		}
		n := 2 + rng.Intn(3)
		for e := 0; e < n; e++ {
			ev := Event{At: offset(0.1, 0.8), Kind: EventFault}
			if ph.Kill && rng.Intn(2) == 0 {
				ev.Spec = killFaults(rng)
			} else {
				ev.Spec = benignFaults(rng)
			}
			ph.Events = append(ph.Events, ev)
		}
		// Roughly every other phase also suffers a partition, healed a
		// deterministic slice of the phase later (the final phase always
		// heals well before its graceful drain begins).
		if rng.Intn(2) == 0 {
			at := offset(0.1, 0.5)
			ph.Events = append(ph.Events,
				Event{At: at, Kind: EventPartition},
				Event{At: at + offset(0.05, 0.25), Kind: EventHeal})
		}
		sort.SliceStable(ph.Events, func(a, b int) bool { return ph.Events[a].At < ph.Events[b].At })
		s.Phases = append(s.Phases, ph)
	}
	return s
}

// String renders the schedule in a stable, diffable form. Two soaks ran
// with the same seed print identical schedules — the reproducibility
// contract, checked by tests and the CI smoke step.
func (s Schedule) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "schedule seed=%d phases=%d phase-dur=%s\n", s.Seed, len(s.Phases), s.PhaseDur)
	for _, ph := range s.Phases {
		end := "graceful drain"
		if ph.Kill {
			end = fmt.Sprintf("SIGKILL@%s", ph.KillAt)
		}
		fmt.Fprintf(&b, "phase %d (%s, %s):\n", ph.Index, ph.Dur, end)
		for _, ev := range ph.Events {
			if ev.Kind == EventFault {
				fmt.Fprintf(&b, "  +%-8s fault %s\n", ev.At, ev.Spec)
			} else {
				fmt.Fprintf(&b, "  +%-8s %s\n", ev.At, ev.Kind)
			}
		}
	}
	return b.String()
}
