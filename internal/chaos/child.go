package chaos

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"sync/atomic"
	"time"

	"lciot/internal/core"
	"lciot/internal/fault"
	"lciot/internal/ifc"
	"lciot/internal/msg"
	"lciot/internal/sbus"
	"lciot/internal/transport"
)

// Retain is the soak's retention window: short enough that the final
// phase's drain can wait it out in real time, long enough that data is
// genuinely live between sweeps.
const Retain = time.Second

// chaosPolicy puts every telemetry-tagged flow under a retention
// obligation, so the soak's final retention report has teeth: each
// persisted reading must be tombstoned once Retain elapses.
const chaosPolicy = `
obligation "chaos-retention" on telemetry {
  retain 1s;
  erase on "subject-erasure";
}
`

// cutoffFile is where the child records the instant its final retention
// sweep began. Every data record predates it (the pump stopped a full
// drain earlier); the sweep's own bookkeeping records postdate it — so it
// is exactly the cutoff the parent's retention report should use.
const cutoffFile = "retention-cutoff"

func chaosSchema() *msg.Schema {
	return msg.MustSchema("telemetry", ifc.EmptyLabel,
		msg.Field{Name: "device", Type: msg.TString, Required: true},
		msg.Field{Name: "value", Type: msg.TFloat, Required: true},
	)
}

// RunChild runs one phase of the soak inside the current (sacrificial)
// process: it boots the two-node federated pair from the persistent
// directories under dir — recovering whatever the previous phase's
// SIGKILL left behind — pumps telemetry across both buses, and applies
// the phase's scheduled events. Kill phases then simply wait to die; the
// final phase executes the graceful drain (disarm, heal, retention sweep,
// offload, close) under a watchdog that dumps all goroutines and exits
// non-zero if shutdown deadlocks.
func RunChild(dir string, sched Schedule, phase int, logf func(string, ...any)) error {
	if phase < 0 || phase >= len(sched.Phases) {
		return fmt.Errorf("chaos: phase %d out of range (schedule has %d)", phase, len(sched.Phases))
	}
	ph := sched.Phases[phase]
	start := time.Now()

	net := transport.NewMemNetwork()
	alpha, err := core.NewDomain("alpha", core.Options{DataDir: filepath.Join(dir, "alpha")})
	if err != nil {
		return fmt.Errorf("chaos: boot alpha: %w", err)
	}
	beta, err := core.NewDomain("beta", core.Options{DataDir: filepath.Join(dir, "beta")})
	if err != nil {
		return fmt.Errorf("chaos: boot beta: %w", err)
	}
	// Policy before components (lciotd's rule): loading also reschedules
	// retention deadlines from the recovered WALs, which is how deadlines
	// orphaned by the previous phase's SIGKILL resume.
	for _, d := range []*core.Domain{alpha, beta} {
		if err := d.LoadPolicy(chaosPolicy); err != nil {
			return fmt.Errorf("chaos: policy on %s: %w", d.Name(), err)
		}
	}
	logf("phase %d: alpha recovered %d records (next seq %d); beta recovered %d (next seq %d)",
		phase, alpha.AuditStore().Len(), alpha.AuditStore().NextSeq(),
		beta.AuditStore().Len(), beta.AuditStore().NextSeq())

	ctx := ifc.MustContext([]ifc.Tag{"telemetry"}, nil)
	schema := chaosSchema()
	if _, err := alpha.Bus().Register("collector", "alpha", ctx, nil,
		sbus.EndpointSpec{Name: "in", Dir: sbus.Sink, Schema: schema}); err != nil {
		return err
	}
	listener, err := net.Listen("alpha")
	if err != nil {
		return err
	}
	defer listener.Close()
	go alpha.Serve(listener)

	src, err := beta.Bus().Register("sensor", "beta", ctx, nil,
		sbus.EndpointSpec{Name: "out", Dir: sbus.Source, Schema: schema})
	if err != nil {
		return err
	}
	if _, err := beta.Bus().Register("sink", "beta", ctx, nil,
		sbus.EndpointSpec{Name: "in", Dir: sbus.Sink, Schema: schema}); err != nil {
		return err
	}
	if err := beta.Bus().Connect(core.PolicyEnginePrincipal, "sensor.out", "sink.in"); err != nil {
		return err
	}
	if _, err := beta.LinkPeer(net, "alpha", 10*time.Second); err != nil {
		return err
	}
	// The cross-bus channel may race the link's ingress re-validation;
	// retry briefly like lciotd does.
	deadline := time.Now().Add(5 * time.Second)
	for {
		err := beta.Bus().Connect(core.PolicyEnginePrincipal, "sensor.out", "alpha:collector.in")
		if err == nil {
			break
		}
		if !time.Now().Before(deadline) {
			return fmt.Errorf("chaos: cross-bus channel: %w", err)
		}
		time.Sleep(50 * time.Millisecond)
	}

	// Pump: a steady telemetry stream with phase-unique DataIDs, fanning
	// to the local sink and across the link. Publish errors are expected
	// under injected faults; they are counted, not fatal.
	stopPump := make(chan struct{})
	pumpDone := make(chan struct{})
	var published, pubErrs atomic.Uint64
	go func() {
		defer close(pumpDone)
		t := time.NewTicker(2 * time.Millisecond)
		defer t.Stop()
		for i := 0; ; i++ {
			select {
			case <-stopPump:
				return
			case <-t.C:
			}
			m := msg.New("telemetry").
				Set("device", msg.Str("chaos-sensor")).
				Set("value", msg.Float(float64(i%100)))
			m.DataID = "chaos/p" + strconv.Itoa(phase) + "/" + strconv.Itoa(i)
			if _, err := src.Publish("out", m); err != nil {
				pubErrs.Add(1)
			} else {
				published.Add(1)
			}
		}
	}()
	// Tick loop: real-clock domains, so ticking drives CEP timers and the
	// retention sweep on both nodes throughout the phase.
	stopTick := make(chan struct{})
	tickDone := make(chan struct{})
	go func() {
		defer close(tickDone)
		t := time.NewTicker(50 * time.Millisecond)
		defer t.Stop()
		for {
			select {
			case <-stopTick:
				return
			case <-t.C:
				alpha.Tick()
				beta.Tick()
				// Health polls make degradation transitions observable —
				// and, because both domains have DataDirs, each transition
				// triggers a diagnostic capture under <DataDir>/diag that
				// the smoke harness asserts on. The report is fingerprint-
				// cached, so the poll is cheap when nothing moved.
				alpha.Health()
				beta.Health()
			}
		}
	}()

	for _, ev := range ph.Events {
		if d := time.Until(start.Add(ev.At)); d > 0 {
			time.Sleep(d)
		}
		switch ev.Kind {
		case EventFault:
			if err := fault.Set(ev.Spec); err != nil {
				return fmt.Errorf("chaos: bad scheduled fault %q: %w", ev.Spec, err)
			}
			logf("phase %d +%s: armed %s", phase, ev.At, ev.Spec)
		case EventPartition:
			net.SetDown("alpha", true)
			logf("phase %d +%s: partition", phase, ev.At)
		case EventHeal:
			net.SetDown("alpha", false)
			logf("phase %d +%s: heal", phase, ev.At)
		}
	}

	if ph.Kill {
		// Keep running under fire until the parent delivers SIGKILL; the
		// generous grace period only expires if the parent itself died.
		time.Sleep(time.Until(start.Add(ph.Dur + 60*time.Second)))
		return fmt.Errorf("chaos: phase %d expected SIGKILL but outlived the schedule", phase)
	}

	// Final phase: the graceful drain. A deadlock anywhere below is a
	// finding — the watchdog turns it into a goroutine dump and a non-zero
	// exit instead of a hung harness.
	if d := time.Until(start.Add(ph.Dur)); d > 0 {
		time.Sleep(d)
	}
	watchdog := time.AfterFunc(45*time.Second, func() {
		buf := make([]byte, 1<<20)
		n := runtime.Stack(buf, true)
		fmt.Fprintf(os.Stderr, "chaos: graceful drain deadlocked; goroutines:\n%s\n", buf[:n])
		os.Exit(3)
	})
	defer watchdog.Stop()

	fault.DisarmAll()
	net.SetDown("alpha", false)
	close(stopPump)
	<-pumpDone
	logf("phase %d: drain begins (published %d, publish errors %d)",
		phase, published.Load(), pubErrs.Load())

	// Let in-flight deliveries land and every outstanding retention
	// deadline come due, then sweep both nodes dry.
	time.Sleep(2*Retain + 500*time.Millisecond)
	close(stopTick)
	<-tickDone
	cutoff := time.Now()
	for i := 0; i < 50 && (alpha.ObligationBacklog() > 0 || beta.ObligationBacklog() > 0); i++ {
		alpha.SweepObligations()
		beta.SweepObligations()
		time.Sleep(100 * time.Millisecond)
	}
	if a, b := alpha.ObligationBacklog(), beta.ObligationBacklog(); a > 0 || b > 0 {
		logf("phase %d: WARNING: backlog not drained (alpha %d, beta %d)", phase, a, b)
	}
	for _, d := range []*core.Domain{alpha, beta} {
		for _, h := range d.Health() {
			if h.State != core.HealthOK {
				logf("phase %d: %s health: %s %s: %s", phase, d.Name(), h.Subsystem, h.State, h.Detail)
			}
		}
		if _, err := d.OffloadAudit(); err != nil {
			return fmt.Errorf("chaos: offload %s: %w", d.Name(), err)
		}
		if err := d.Close(); err != nil {
			return fmt.Errorf("chaos: close %s: %w", d.Name(), err)
		}
	}
	if err := os.WriteFile(filepath.Join(dir, cutoffFile),
		[]byte(strconv.FormatInt(cutoff.UnixNano(), 10)), 0o644); err != nil {
		return err
	}
	logf("phase %d: drain complete", phase)
	return nil
}

// readCutoff loads the retention cutoff the final child recorded.
func readCutoff(dir string) (time.Time, error) {
	raw, err := os.ReadFile(filepath.Join(dir, cutoffFile))
	if err != nil {
		return time.Time{}, err
	}
	ns, err := strconv.ParseInt(string(raw), 10, 64)
	if err != nil {
		return time.Time{}, fmt.Errorf("chaos: bad cutoff file: %w", err)
	}
	return time.Unix(0, ns), nil
}
