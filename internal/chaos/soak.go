package chaos

import (
	"fmt"
	"os/exec"
	"path/filepath"
	"time"

	"lciot/internal/audit"
	"lciot/internal/store"
)

// Options configures one soak run.
type Options struct {
	Seed     int64
	Phases   int
	PhaseDur time.Duration
	// Dir is the persistent root shared by every phase's child: each node
	// keeps its durable store under Dir/<node>, surviving the kills.
	Dir string
	// Child builds the command that runs RunChild for the given phase in a
	// fresh process (cmd/chaossoak re-execs itself; the integration test
	// re-execs the test binary). The command must exit 0 only when
	// RunChild returned nil.
	Child func(phase int) *exec.Cmd
	// Logf receives progress lines (required).
	Logf func(string, ...any)
}

// NodeReport is the post-mortem verdict for one node's durable store.
type NodeReport struct {
	Node string
	// Records is the persisted chain length at verification.
	Records int
	// Tombstoned counts retention tombstones among them.
	Tombstoned int
}

// Report is the soak's overall verdict; RunSoak only returns one when
// every assertion held.
type Report struct {
	Schedule Schedule
	Nodes    []NodeReport
}

// RunSoak drives the full soak: generate the seeded schedule, run one
// child process per phase — SIGKILLing every phase but the last at its
// scheduled instant, requiring a clean, deadlock-free exit from the final
// drain — then open both nodes' stores offline and assert the soak's
// postconditions: chains verify end to end and the retention report is
// clean.
func RunSoak(o Options) (*Report, error) {
	sched := Generate(o.Seed, o.Phases, o.PhaseDur)
	o.Logf("%s", sched.String())
	for _, ph := range sched.Phases {
		cmd := o.Child(ph.Index)
		begin := time.Now()
		if err := cmd.Start(); err != nil {
			return nil, fmt.Errorf("chaos: start phase %d child: %w", ph.Index, err)
		}
		if ph.Kill {
			if d := time.Until(begin.Add(ph.KillAt)); d > 0 {
				time.Sleep(d)
			}
			o.Logf("phase %d: SIGKILL (pid %d)", ph.Index, cmd.Process.Pid)
			_ = cmd.Process.Kill()
			_ = cmd.Wait() // reaps; a kill-phase child never exits cleanly
			continue
		}
		// Final phase: the child must exit on its own. Its internal
		// watchdog fires at 45s past the drain; the outer budget here only
		// trips if the child is wedged too hard even to dump stacks.
		done := make(chan error, 1)
		go func() { done <- cmd.Wait() }()
		select {
		case err := <-done:
			if err != nil {
				return nil, fmt.Errorf("chaos: final phase child failed: %w", err)
			}
		case <-time.After(ph.Dur + 90*time.Second):
			_ = cmd.Process.Kill()
			<-done
			return nil, fmt.Errorf("chaos: final phase deadlocked (child never exited)")
		}
	}

	cutoff, err := readCutoff(o.Dir)
	if err != nil {
		return nil, fmt.Errorf("chaos: final child left no cutoff marker: %w", err)
	}
	rep := &Report{Schedule: sched}
	for _, node := range []string{"alpha", "beta"} {
		nr, err := verifyNode(filepath.Join(o.Dir, node, "audit"), node, cutoff)
		if err != nil {
			return nil, err
		}
		o.Logf("%s: chain verified (%d records, %d tombstoned), retention clean", node, nr.Records, nr.Tombstoned)
		rep.Nodes = append(rep.Nodes, nr)
	}
	return rep, nil
}

// verifyNode opens one node's store offline (recovering any tail the last
// kill left torn), re-checks the whole hash chain, and audits retention:
// every telemetry record older than the cutoff must be tombstoned.
func verifyNode(dir, node string, cutoff time.Time) (NodeReport, error) {
	nr := NodeReport{Node: node}
	st, err := store.OpenAudit(dir, store.Options{})
	if err != nil {
		return nr, fmt.Errorf("chaos: reopen %s: %w", node, err)
	}
	defer st.Close()
	if bad, err := st.Verify(); err != nil || bad != -1 {
		return nr, fmt.Errorf("chaos: %s chain verify failed at seq %d: %v", node, bad, err)
	}
	recs, err := st.Records(st.FirstSeq(), 0)
	if err != nil {
		return nr, fmt.Errorf("chaos: read %s records: %w", node, err)
	}
	nr.Records = len(recs)
	for _, r := range recs {
		if r.Redacted {
			nr.Tombstoned++
		}
	}
	comp := audit.RetentionReport(recs, "telemetry", cutoff)
	if !comp.Compliant {
		return nr, fmt.Errorf("chaos: %s retention report dirty: %d violations (checked %d under tag, %d tombstoned)",
			node, len(comp.Violations), comp.UnderTag, comp.Tombstoned)
	}
	return nr, nil
}
