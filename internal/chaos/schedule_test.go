package chaos

import (
	"strings"
	"testing"
	"time"

	"lciot/internal/fault"
)

// TestScheduleDeterministic is the reproducibility contract: the same
// seed derives the same failure schedule, byte for byte, while a
// different seed diverges. This is what lets a soak failure be re-run
// exactly from the seed in its log.
func TestScheduleDeterministic(t *testing.T) {
	a := Generate(42, 4, 2*time.Second).String()
	b := Generate(42, 4, 2*time.Second).String()
	if a != b {
		t.Fatalf("same seed, different schedules:\n%s\nvs\n%s", a, b)
	}
	if c := Generate(43, 4, 2*time.Second).String(); c == a {
		t.Fatal("different seeds produced identical schedules")
	}
}

// TestScheduleShape checks the generator's invariants across many seeds:
// every phase but the last kills; events are ordered and fall inside the
// phase; every emitted fault spec parses in the fault.Set grammar; and
// durable-store faults never land in the final (graceful, verified)
// phase, whose retention report must come out clean.
func TestScheduleShape(t *testing.T) {
	defer fault.DisarmAll()
	for seed := int64(0); seed < 200; seed++ {
		s := Generate(seed, 4, 2*time.Second)
		if len(s.Phases) != 4 {
			t.Fatalf("seed %d: %d phases", seed, len(s.Phases))
		}
		for i, ph := range s.Phases {
			final := i == len(s.Phases)-1
			if ph.Kill == final {
				t.Fatalf("seed %d phase %d: Kill=%v", seed, i, ph.Kill)
			}
			last := time.Duration(0)
			for _, ev := range ph.Events {
				if ev.At < last || ev.At > ph.Dur {
					t.Fatalf("seed %d phase %d: event at %s out of order/range", seed, i, ev.At)
				}
				last = ev.At
				if ev.Kind != EventFault {
					continue
				}
				if err := fault.Set(ev.Spec); err != nil {
					t.Fatalf("seed %d phase %d: generated unparsable spec %q: %v", seed, i, ev.Spec, err)
				}
				if final && strings.HasPrefix(ev.Spec, "store.") {
					t.Fatalf("seed %d: durable-store fault %q scheduled in the graceful phase", seed, ev.Spec)
				}
			}
		}
		fault.DisarmAll()
	}
}
