package attest

import (
	"crypto/ed25519"
	"fmt"
	"math/rand"
	"sync"
)

// A Policy states what a verifier requires of a remote platform before
// interacting (Section 4: "can I trust this remote host to handle my
// data?").
type Policy struct {
	// ExpectedPCRs maps register index to the required value. Platforms
	// whose measured state differs are rejected.
	ExpectedPCRs map[int][32]byte
	// Region, when non-empty, requires the platform to be certified for
	// this geographic region (e.g. "eu" for EU-only data, per [39]).
	Region string
}

// A Verifier performs remote attestation: it issues nonces, validates
// quotes against known endorsement keys, and applies measurement policy.
type Verifier struct {
	mu sync.Mutex
	// known maps device IDs to their certified endorsement keys.
	known map[string]ed25519.PublicKey
	// outstanding nonces per device, to detect replays.
	nonces map[string]uint64
	rng    *rand.Rand
}

// NewVerifier builds a verifier. The seed makes nonce sequences
// reproducible in tests and simulations.
func NewVerifier(seed int64) *Verifier {
	return &Verifier{
		known:  make(map[string]ed25519.PublicKey),
		nonces: make(map[string]uint64),
		rng:    rand.New(rand.NewSource(seed)),
	}
}

// Enroll registers a device's certified endorsement key.
func (v *Verifier) Enroll(deviceID string, key ed25519.PublicKey) {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.known[deviceID] = key
}

// Challenge issues a fresh nonce for the device. The caller passes it to
// the platform's TPM and returns the quote to Validate.
func (v *Verifier) Challenge(deviceID string) uint64 {
	v.mu.Lock()
	defer v.mu.Unlock()
	n := v.rng.Uint64()
	v.nonces[deviceID] = n
	return n
}

// Validate checks a quote: known device, fresh nonce, valid signature, and
// conformance with the policy. A successful validation consumes the nonce.
func (v *Verifier) Validate(q *Quote, p Policy) error {
	v.mu.Lock()
	key, known := v.known[q.DeviceID]
	nonce, issued := v.nonces[q.DeviceID]
	v.mu.Unlock()

	if !known {
		return fmt.Errorf("attest: unknown device %q", q.DeviceID)
	}
	if !issued || nonce != q.Nonce {
		return fmt.Errorf("%w: device %q", ErrStaleNonce, q.DeviceID)
	}
	if !ed25519.Verify(key, quoteBody(q), q.Sig) {
		return fmt.Errorf("%w: device %q", ErrBadQuote, q.DeviceID)
	}
	for idx, want := range p.ExpectedPCRs {
		got, ok := q.PCRs[idx]
		if !ok || got != want {
			return fmt.Errorf("%w: pcr %d", ErrMeasurement, idx)
		}
	}
	if p.Region != "" && q.Region != p.Region {
		return fmt.Errorf("%w: need %q, platform certified for %q", ErrNoSuchRegion, p.Region, q.Region)
	}

	v.mu.Lock()
	delete(v.nonces, q.DeviceID)
	v.mu.Unlock()
	return nil
}

// Attest runs the whole challenge/quote/validate round against a local TPM,
// the in-process convenience used by simulations.
func (v *Verifier) Attest(t *TPM, pcrs []int, p Policy) error {
	nonce := v.Challenge(t.DeviceID())
	q, err := t.GenerateQuote(nonce, pcrs)
	if err != nil {
		return err
	}
	return v.Validate(q, p)
}
