// Package attest simulates the hardware roots of trust the paper leans on
// (Section 4): TPM-style platform configuration registers and quotes,
// remote attestation of a platform's integrity before interaction, and the
// geographical-fencing certification of [44] ("Trustworthy Geographically
// Fenced Hybrid Clouds").
//
// Substitution note (see DESIGN.md): real deployments would use TPM 2.0,
// SGX or TrustZone. The middleware only consumes the *protocol* surface —
// "produce a signed statement binding this platform's identity to its
// measured configuration, fresh for my nonce" — which this package
// reproduces in software with Ed25519 signatures.
package attest

import (
	"crypto/ed25519"
	"crypto/sha256"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"time"

	"lciot/internal/pki"
)

// Errors reported by attestation.
var (
	ErrBadQuote     = errors.New("attest: quote signature invalid")
	ErrStaleNonce   = errors.New("attest: nonce mismatch")
	ErrMeasurement  = errors.New("attest: measurement does not match policy")
	ErrSealed       = errors.New("attest: platform state changed, unseal refused")
	ErrNoSuchRegion = errors.New("attest: platform not certified for region")
)

// NumPCRs is the number of platform configuration registers, matching the
// TPM 1.2 minimum.
const NumPCRs = 24

// A TPM is a simulated trusted platform module: a key that never leaves the
// device, a bank of PCRs extended with code/config measurements, and sealed
// storage bound to PCR state.
type TPM struct {
	deviceID string
	keys     *pki.KeyPair

	mu     sync.Mutex
	pcrs   [NumPCRs][32]byte
	sealed map[string]sealedBlob
	// region is the geographic region a provisioning authority certified
	// for this platform (empty when uncertified).
	region string
}

type sealedBlob struct {
	pcrIndex int
	pcrValue [32]byte
	data     []byte
}

// NewTPM manufactures a TPM with a fresh endorsement key.
func NewTPM(deviceID string) (*TPM, error) {
	keys, err := pki.GenerateKeyPair()
	if err != nil {
		return nil, fmt.Errorf("attest: %w", err)
	}
	return &TPM{deviceID: deviceID, keys: keys, sealed: make(map[string]sealedBlob)}, nil
}

// DeviceID returns the platform identifier.
func (t *TPM) DeviceID() string { return t.deviceID }

// EndorsementKey returns the public half of the TPM's identity key, which a
// manufacturer or domain authority certifies out of band.
func (t *TPM) EndorsementKey() ed25519.PublicKey { return t.keys.Public }

// Extend folds a measurement into a PCR: pcr = H(pcr || measurement). This
// is how boot stages and loaded components are recorded.
func (t *TPM) Extend(pcr int, measurement []byte) error {
	if pcr < 0 || pcr >= NumPCRs {
		return fmt.Errorf("attest: pcr %d out of range", pcr)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	h := sha256.New()
	h.Write(t.pcrs[pcr][:])
	h.Write(measurement)
	copy(t.pcrs[pcr][:], h.Sum(nil))
	return nil
}

// PCR returns the current value of a register.
func (t *TPM) PCR(pcr int) ([32]byte, error) {
	if pcr < 0 || pcr >= NumPCRs {
		return [32]byte{}, fmt.Errorf("attest: pcr %d out of range", pcr)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.pcrs[pcr], nil
}

// CertifyRegion records a provisioning authority's geographic certification
// (per [44]); it becomes part of every subsequent quote.
func (t *TPM) CertifyRegion(region string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.region = region
}

// A Quote is a signed statement of platform state, fresh for a verifier's
// nonce.
type Quote struct {
	DeviceID string           `json:"device_id"`
	Nonce    uint64           `json:"nonce"`
	PCRs     map[int][32]byte `json:"pcrs"`
	Region   string           `json:"region,omitempty"`
	IssuedAt time.Time        `json:"issued_at"`
	Sig      []byte           `json:"sig"`
}

// quoteBody serialises the signed portion deterministically.
func quoteBody(q *Quote) []byte {
	// Hash PCRs in index order for determinism.
	h := sha256.New()
	h.Write([]byte(q.DeviceID))
	var nb [8]byte
	binary.BigEndian.PutUint64(nb[:], q.Nonce)
	h.Write(nb[:])
	for i := 0; i < NumPCRs; i++ {
		if v, ok := q.PCRs[i]; ok {
			binary.Write(h, binary.BigEndian, uint32(i)) //nolint:errcheck // hash writes cannot fail
			h.Write(v[:])
		}
	}
	h.Write([]byte(q.Region))
	b, _ := q.IssuedAt.UTC().MarshalBinary() // cannot fail for valid times
	h.Write(b)
	return h.Sum(nil)
}

// GenerateQuote signs the requested PCRs together with the verifier's nonce.
func (t *TPM) GenerateQuote(nonce uint64, pcrs []int) (*Quote, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	q := &Quote{
		DeviceID: t.deviceID,
		Nonce:    nonce,
		PCRs:     make(map[int][32]byte, len(pcrs)),
		Region:   t.region,
		IssuedAt: time.Now(),
	}
	for _, i := range pcrs {
		if i < 0 || i >= NumPCRs {
			return nil, fmt.Errorf("attest: pcr %d out of range", i)
		}
		q.PCRs[i] = t.pcrs[i]
	}
	q.Sig = t.keys.Sign(quoteBody(q))
	return q, nil
}

// Seal stores data retrievable only while the named PCR retains its current
// value — the TPM sealed-storage primitive.
func (t *TPM) Seal(name string, pcr int, data []byte) error {
	if pcr < 0 || pcr >= NumPCRs {
		return fmt.Errorf("attest: pcr %d out of range", pcr)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	owned := make([]byte, len(data))
	copy(owned, data)
	t.sealed[name] = sealedBlob{pcrIndex: pcr, pcrValue: t.pcrs[pcr], data: owned}
	return nil
}

// Unseal returns sealed data if the platform state still matches.
func (t *TPM) Unseal(name string) ([]byte, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	blob, ok := t.sealed[name]
	if !ok {
		return nil, fmt.Errorf("attest: no sealed blob %q", name)
	}
	if t.pcrs[blob.pcrIndex] != blob.pcrValue {
		return nil, fmt.Errorf("%w: blob %q bound to pcr %d", ErrSealed, name, blob.pcrIndex)
	}
	out := make([]byte, len(blob.data))
	copy(out, blob.data)
	return out, nil
}

// Marshal serialises a quote for transport.
func (q *Quote) Marshal() ([]byte, error) { return json.Marshal(q) }

// UnmarshalQuote parses a serialised quote.
func UnmarshalQuote(b []byte) (*Quote, error) {
	var q Quote
	if err := json.Unmarshal(b, &q); err != nil {
		return nil, fmt.Errorf("attest: parse quote: %w", err)
	}
	return &q, nil
}
