package attest

import (
	"bytes"
	"errors"
	"testing"
)

func mustTPM(t *testing.T, id string) *TPM {
	t.Helper()
	tpm, err := NewTPM(id)
	if err != nil {
		t.Fatal(err)
	}
	return tpm
}

func TestPCRExtendChangesValue(t *testing.T) {
	tpm := mustTPM(t, "dev")
	before, err := tpm.PCR(0)
	if err != nil {
		t.Fatal(err)
	}
	if err := tpm.Extend(0, []byte("bootloader-v1")); err != nil {
		t.Fatal(err)
	}
	after, err := tpm.PCR(0)
	if err != nil {
		t.Fatal(err)
	}
	if before == after {
		t.Fatal("Extend did not change PCR")
	}
	// Extension is order-sensitive: same measurements, different order,
	// different result.
	a := mustTPM(t, "a")
	b := mustTPM(t, "b")
	_ = a.Extend(1, []byte("x"))
	_ = a.Extend(1, []byte("y"))
	_ = b.Extend(1, []byte("y"))
	_ = b.Extend(1, []byte("x"))
	av, _ := a.PCR(1)
	bv, _ := b.PCR(1)
	if av == bv {
		t.Fatal("PCR extension is not order-sensitive")
	}
}

func TestPCRRangeChecks(t *testing.T) {
	tpm := mustTPM(t, "dev")
	if err := tpm.Extend(-1, nil); err == nil {
		t.Fatal("negative pcr accepted")
	}
	if err := tpm.Extend(NumPCRs, nil); err == nil {
		t.Fatal("out-of-range pcr accepted")
	}
	if _, err := tpm.PCR(NumPCRs); err == nil {
		t.Fatal("out-of-range read accepted")
	}
	if err := tpm.Seal("x", NumPCRs, nil); err == nil {
		t.Fatal("out-of-range seal accepted")
	}
	if _, err := tpm.GenerateQuote(1, []int{NumPCRs}); err == nil {
		t.Fatal("out-of-range quote accepted")
	}
}

func TestRemoteAttestationRound(t *testing.T) {
	tpm := mustTPM(t, "ann-device")
	_ = tpm.Extend(0, []byte("firmware-v7"))
	goodPCR, _ := tpm.PCR(0)

	v := NewVerifier(1)
	v.Enroll("ann-device", tpm.EndorsementKey())

	policy := Policy{ExpectedPCRs: map[int][32]byte{0: goodPCR}}
	if err := v.Attest(tpm, []int{0}, policy); err != nil {
		t.Fatalf("attestation failed: %v", err)
	}

	// Platform compromise: firmware changed, measurement mismatch.
	_ = tpm.Extend(0, []byte("malware"))
	if err := v.Attest(tpm, []int{0}, policy); !errors.Is(err, ErrMeasurement) {
		t.Fatalf("compromised platform = %v, want ErrMeasurement", err)
	}
}

func TestAttestationRejectsUnknownDeviceAndReplay(t *testing.T) {
	tpm := mustTPM(t, "dev")
	v := NewVerifier(1)

	// Unknown device.
	nonce := v.Challenge("dev")
	q, err := tpm.GenerateQuote(nonce, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	if err := v.Validate(q, Policy{}); err == nil {
		t.Fatal("unknown device accepted")
	}

	v.Enroll("dev", tpm.EndorsementKey())
	if err := v.Validate(q, Policy{}); err != nil {
		t.Fatal(err)
	}
	// Replaying the same quote must fail: the nonce was consumed.
	if err := v.Validate(q, Policy{}); !errors.Is(err, ErrStaleNonce) {
		t.Fatalf("replay = %v, want ErrStaleNonce", err)
	}
}

func TestAttestationRejectsForgedQuote(t *testing.T) {
	tpm := mustTPM(t, "dev")
	imposter := mustTPM(t, "dev") // same ID, different key
	v := NewVerifier(1)
	v.Enroll("dev", tpm.EndorsementKey())

	nonce := v.Challenge("dev")
	forged, err := imposter.GenerateQuote(nonce, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	if err := v.Validate(forged, Policy{}); !errors.Is(err, ErrBadQuote) {
		t.Fatalf("forged quote = %v, want ErrBadQuote", err)
	}
}

func TestGeofencePolicy(t *testing.T) {
	tpm := mustTPM(t, "eu-server")
	v := NewVerifier(1)
	v.Enroll("eu-server", tpm.EndorsementKey())

	// Uncertified platform fails an EU-only policy.
	if err := v.Attest(tpm, nil, Policy{Region: "eu"}); !errors.Is(err, ErrNoSuchRegion) {
		t.Fatalf("uncertified platform = %v, want ErrNoSuchRegion", err)
	}
	tpm.CertifyRegion("eu")
	if err := v.Attest(tpm, nil, Policy{Region: "eu"}); err != nil {
		t.Fatalf("certified platform rejected: %v", err)
	}
	if err := v.Attest(tpm, nil, Policy{Region: "us"}); !errors.Is(err, ErrNoSuchRegion) {
		t.Fatalf("wrong region = %v, want ErrNoSuchRegion", err)
	}
}

func TestSealUnseal(t *testing.T) {
	tpm := mustTPM(t, "dev")
	_ = tpm.Extend(7, []byte("app-v1"))
	secret := []byte("ifc-signing-key")
	if err := tpm.Seal("key", 7, secret); err != nil {
		t.Fatal(err)
	}
	got, err := tpm.Unseal("key")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, secret) {
		t.Fatalf("unsealed %q", got)
	}
	// Data is copied, not aliased.
	got[0] = 'X'
	again, err := tpm.Unseal("key")
	if err != nil || !bytes.Equal(again, secret) {
		t.Fatal("sealed data aliased caller buffer")
	}
	// Platform state change blocks unsealing.
	_ = tpm.Extend(7, []byte("app-v2"))
	if _, err := tpm.Unseal("key"); !errors.Is(err, ErrSealed) {
		t.Fatalf("unseal after state change = %v, want ErrSealed", err)
	}
	if _, err := tpm.Unseal("missing"); err == nil {
		t.Fatal("unseal of missing blob succeeded")
	}
}

func TestQuoteMarshalRoundTrip(t *testing.T) {
	tpm := mustTPM(t, "dev")
	tpm.CertifyRegion("eu")
	_ = tpm.Extend(0, []byte("m"))
	v := NewVerifier(1)
	v.Enroll("dev", tpm.EndorsementKey())

	nonce := v.Challenge("dev")
	q, err := tpm.GenerateQuote(nonce, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	b, err := q.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalQuote(b)
	if err != nil {
		t.Fatal(err)
	}
	if err := v.Validate(back, Policy{Region: "eu"}); err != nil {
		t.Fatalf("round-tripped quote rejected: %v", err)
	}
	if _, err := UnmarshalQuote([]byte("nope")); err == nil {
		t.Fatal("garbage quote accepted")
	}
}
