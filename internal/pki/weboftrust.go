package pki

import (
	"sync"

	"lciot/internal/ifc"
)

// WebOfTrust implements the paper's decentralised alternative to a central
// CA (Section 4): principals endorse each other's keys, and a key is
// trusted if enough endorsement paths of bounded length connect it to the
// verifier. This supports ad hoc IoT federations where no global root
// exists.
//
// The zero value is ready to use.
type WebOfTrust struct {
	mu sync.RWMutex
	// endorsements[a][b] means a vouches for b's key.
	endorsements map[ifc.PrincipalID]map[ifc.PrincipalID]struct{}
}

// Endorse records that endorser vouches for subject's key binding.
func (w *WebOfTrust) Endorse(endorser, subject ifc.PrincipalID) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.endorsements == nil {
		w.endorsements = make(map[ifc.PrincipalID]map[ifc.PrincipalID]struct{})
	}
	if w.endorsements[endorser] == nil {
		w.endorsements[endorser] = make(map[ifc.PrincipalID]struct{})
	}
	w.endorsements[endorser][subject] = struct{}{}
}

// Retract removes an endorsement.
func (w *WebOfTrust) Retract(endorser, subject ifc.PrincipalID) {
	w.mu.Lock()
	defer w.mu.Unlock()
	delete(w.endorsements[endorser], subject)
}

// Trusts reports whether verifier can reach subject through at most
// maxDepth endorsement hops. Depth 1 means a direct endorsement.
func (w *WebOfTrust) Trusts(verifier, subject ifc.PrincipalID, maxDepth int) bool {
	if verifier == subject {
		return true
	}
	w.mu.RLock()
	defer w.mu.RUnlock()

	frontier := []ifc.PrincipalID{verifier}
	seen := map[ifc.PrincipalID]struct{}{verifier: {}}
	for depth := 0; depth < maxDepth && len(frontier) > 0; depth++ {
		var next []ifc.PrincipalID
		for _, p := range frontier {
			for endorsed := range w.endorsements[p] {
				if endorsed == subject {
					return true
				}
				if _, ok := seen[endorsed]; ok {
					continue
				}
				seen[endorsed] = struct{}{}
				next = append(next, endorsed)
			}
		}
		frontier = next
	}
	return false
}

// PathCount returns the number of distinct endorsers of subject that
// verifier trusts within maxDepth-1 hops; requiring PathCount >= k gives
// k-redundant trust, resisting a single compromised endorser.
func (w *WebOfTrust) PathCount(verifier, subject ifc.PrincipalID, maxDepth int) int {
	w.mu.RLock()
	endorsers := make([]ifc.PrincipalID, 0, 8)
	for e, subjects := range w.endorsements {
		if _, ok := subjects[subject]; ok {
			endorsers = append(endorsers, e)
		}
	}
	w.mu.RUnlock()

	count := 0
	for _, e := range endorsers {
		if w.Trusts(verifier, e, maxDepth-1) {
			count++
		}
	}
	return count
}
