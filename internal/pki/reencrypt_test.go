package pki

import (
	"bytes"
	"errors"
	"testing"

	"lciot/internal/ifc"
)

func newPREWorld(t *testing.T) (*KEKStore, *Proxy) {
	t.Helper()
	s := NewKEKStore()
	for _, p := range []ifc.PrincipalID{"ann-device", "hospital-analyser", "mallory"} {
		if err := s.Provision(p); err != nil {
			t.Fatal(err)
		}
	}
	return s, NewProxy()
}

func TestPRERoundTrip(t *testing.T) {
	s, proxy := newPREWorld(t)
	plaintext := []byte("ann-vitals: 72bpm")

	ct, err := s.Encrypt("ann-device", plaintext)
	if err != nil {
		t.Fatal(err)
	}
	// The owner decrypts its own ciphertext.
	pt, err := s.Decrypt("ann-device", ct)
	if err != nil || !bytes.Equal(pt, plaintext) {
		t.Fatalf("owner decrypt = %q, %v", pt, err)
	}
	// The analyser cannot decrypt before re-encryption.
	if _, err := s.Decrypt("hospital-analyser", ct); !errors.Is(err, ErrWrongKey) {
		t.Fatalf("foreign decrypt = %v", err)
	}

	// The device mints a re-key for the analyser; the proxy transforms.
	rk, err := s.NewReKey("ann-device", "hospital-analyser")
	if err != nil {
		t.Fatal(err)
	}
	proxy.Install(rk)
	ct2, err := proxy.ReEncrypt("ann-device", "hospital-analyser", ct)
	if err != nil {
		t.Fatal(err)
	}
	pt2, err := s.Decrypt("hospital-analyser", ct2)
	if err != nil || !bytes.Equal(pt2, plaintext) {
		t.Fatalf("re-encrypted decrypt = %q, %v", pt2, err)
	}
	// The original remains addressed to the device.
	if _, err := s.Decrypt("hospital-analyser", ct); !errors.Is(err, ErrWrongKey) {
		t.Fatal("original ciphertext became readable")
	}
}

func TestPREProxyCannotTransformWithoutReKey(t *testing.T) {
	s, proxy := newPREWorld(t)
	ct, err := s.Encrypt("ann-device", []byte("secret"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := proxy.ReEncrypt("ann-device", "mallory", ct); !errors.Is(err, ErrNoReKey) {
		t.Fatalf("unkeyed re-encryption = %v", err)
	}
	// A re-key for one pair does not work for another.
	rk, err := s.NewReKey("ann-device", "hospital-analyser")
	if err != nil {
		t.Fatal(err)
	}
	proxy.Install(rk)
	if _, err := proxy.ReEncrypt("ann-device", "mallory", ct); !errors.Is(err, ErrNoReKey) {
		t.Fatalf("wrong-pair re-encryption = %v", err)
	}
}

func TestPREOwnerMismatch(t *testing.T) {
	s, proxy := newPREWorld(t)
	ct, err := s.Encrypt("hospital-analyser", []byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	rk, err := s.NewReKey("ann-device", "hospital-analyser")
	if err != nil {
		t.Fatal(err)
	}
	proxy.Install(rk)
	// The ciphertext is not owned by the re-key's source.
	if _, err := proxy.ReEncrypt("ann-device", "hospital-analyser", ct); !errors.Is(err, ErrWrongKey) {
		t.Fatalf("owner mismatch = %v", err)
	}
}

func TestPREPayloadUntouchedByProxy(t *testing.T) {
	s, proxy := newPREWorld(t)
	ct, err := s.Encrypt("ann-device", []byte("payload"))
	if err != nil {
		t.Fatal(err)
	}
	rk, err := s.NewReKey("ann-device", "hospital-analyser")
	if err != nil {
		t.Fatal(err)
	}
	proxy.Install(rk)
	ct2, err := proxy.ReEncrypt("ann-device", "hospital-analyser", ct)
	if err != nil {
		t.Fatal(err)
	}
	// The proxy re-wraps the key but never re-encrypts the payload: bytes
	// are identical (and it has no key that opens them).
	if !bytes.Equal(ct.Payload, ct2.Payload) || !bytes.Equal(ct.Nonce, ct2.Nonce) {
		t.Fatal("proxy modified the payload")
	}
	// Mutating the copy must not affect the original (no aliasing).
	ct2.Payload[0] ^= 0xFF
	if ct.Payload[0] == ct2.Payload[0] {
		t.Fatal("payload aliased between ciphertexts")
	}
}

func TestPREUnprovisionedPrincipal(t *testing.T) {
	s := NewKEKStore()
	if _, err := s.Encrypt("ghost", []byte("x")); err == nil {
		t.Fatal("unprovisioned encrypt succeeded")
	}
	if _, err := s.NewReKey("ghost", "also-ghost"); err == nil {
		t.Fatal("unprovisioned re-key succeeded")
	}
}
