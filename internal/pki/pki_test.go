package pki

import (
	"errors"
	"testing"
	"time"

	"lciot/internal/ifc"
)

// newHierarchy builds root CA → hospital CA (intermediate) and returns
// both plus the root's verify options.
func newHierarchy(t *testing.T) (root, hospital *Authority, opts VerifyOptions) {
	t.Helper()
	root, err := NewAuthority("root-ca")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := root.SelfSign(24 * time.Hour); err != nil {
		t.Fatal(err)
	}
	hospital, err = NewAuthority("hospital-ca")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := root.IssueIntermediate(hospital, 0, 24*time.Hour); err != nil {
		t.Fatal(err)
	}
	opts = VerifyOptions{Roots: map[ifc.PrincipalID][]byte{"root-ca": root.PublicKey()}}
	return root, hospital, opts
}

func TestIdentityChainVerification(t *testing.T) {
	_, hospital, opts := newHierarchy(t)

	device, err := GenerateKeyPair()
	if err != nil {
		t.Fatal(err)
	}
	leaf, err := hospital.IssueIdentity("ann-device", device.Public, time.Hour)
	if err != nil {
		t.Fatal(err)
	}

	tbs, err := VerifyChain([]*Certificate{leaf, hospital.Certificate()}, opts)
	if err != nil {
		t.Fatalf("chain verification failed: %v", err)
	}
	if tbs.Subject != "ann-device" {
		t.Fatalf("leaf subject = %q", tbs.Subject)
	}
}

func TestChainRejectsTamperedCertificate(t *testing.T) {
	_, hospital, opts := newHierarchy(t)
	device, err := GenerateKeyPair()
	if err != nil {
		t.Fatal(err)
	}
	leaf, err := hospital.IssueIdentity("ann-device", device.Public, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	leaf.TBS.Subject = "mallory-device" // tamper

	_, err = VerifyChain([]*Certificate{leaf, hospital.Certificate()}, opts)
	if !errors.Is(err, ErrBadSignature) {
		t.Fatalf("tampered chain = %v, want ErrBadSignature", err)
	}
}

func TestChainRejectsExpired(t *testing.T) {
	_, hospital, opts := newHierarchy(t)
	device, err := GenerateKeyPair()
	if err != nil {
		t.Fatal(err)
	}
	leaf, err := hospital.IssueIdentity("d", device.Public, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	opts.At = time.Now().Add(48 * time.Hour)
	if _, err := VerifyChain([]*Certificate{leaf, hospital.Certificate()}, opts); !errors.Is(err, ErrExpired) {
		t.Fatalf("expired chain = %v, want ErrExpired", err)
	}
}

func TestChainRejectsUnknownRoot(t *testing.T) {
	_, hospital, _ := newHierarchy(t)
	device, err := GenerateKeyPair()
	if err != nil {
		t.Fatal(err)
	}
	leaf, err := hospital.IssueIdentity("d", device.Public, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	opts := VerifyOptions{Roots: map[ifc.PrincipalID][]byte{}}
	if _, err := VerifyChain([]*Certificate{leaf, hospital.Certificate()}, opts); !errors.Is(err, ErrUntrusted) {
		t.Fatalf("unknown root = %v, want ErrUntrusted", err)
	}
	if _, err := VerifyChain(nil, opts); !errors.Is(err, ErrUntrusted) {
		t.Fatalf("empty chain = %v, want ErrUntrusted", err)
	}
}

func TestChainRejectsNonCAIssuer(t *testing.T) {
	root, _, opts := newHierarchy(t)
	// A leaf (non-CA) pretending to be an issuer.
	imposterKeys, err := GenerateKeyPair()
	if err != nil {
		t.Fatal(err)
	}
	imposterCert, err := root.IssueIdentity("imposter", imposterKeys.Public, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	victim := &Certificate{TBS: TBS{
		Kind: KindIdentity, Subject: "victim", Issuer: "imposter",
		NotBefore: time.Now().Add(-time.Minute), NotAfter: time.Now().Add(time.Hour),
	}}
	body, err := encodeTBS(&victim.TBS)
	if err != nil {
		t.Fatal(err)
	}
	victim.Signature = imposterKeys.Sign(body)

	if _, err := VerifyChain([]*Certificate{victim, imposterCert}, opts); !errors.Is(err, ErrNotCA) {
		t.Fatalf("non-CA issuer = %v, want ErrNotCA", err)
	}
}

func TestChainPathLenConstraint(t *testing.T) {
	root, hospital, opts := newHierarchy(t) // hospital has MaxPathLen 0
	_ = root

	ward, err := NewAuthority("ward-ca")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := hospital.IssueIntermediate(ward, 0, time.Hour); err != nil {
		t.Fatal(err)
	}
	device, err := GenerateKeyPair()
	if err != nil {
		t.Fatal(err)
	}
	leaf, err := ward.IssueIdentity("d", device.Public, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	// hospital allows 0 CAs below it, but ward sits below it in the chain.
	chain := []*Certificate{leaf, ward.Certificate(), hospital.Certificate()}
	if _, err := VerifyChain(chain, opts); !errors.Is(err, ErrPathLen) {
		t.Fatalf("over-deep chain = %v, want ErrPathLen", err)
	}
}

func TestRevocation(t *testing.T) {
	_, hospital, opts := newHierarchy(t)
	device, err := GenerateKeyPair()
	if err != nil {
		t.Fatal(err)
	}
	leaf, err := hospital.IssueIdentity("d", device.Public, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	hospital.Revoke(leaf.TBS.Serial)
	opts.CheckRevocation = func(issuer ifc.PrincipalID, serial uint64) bool {
		return issuer == "hospital-ca" && hospital.IsRevoked(serial)
	}
	if _, err := VerifyChain([]*Certificate{leaf, hospital.Certificate()}, opts); !errors.Is(err, ErrRevoked) {
		t.Fatalf("revoked chain = %v, want ErrRevoked", err)
	}
	if !hospital.IsRevoked(leaf.TBS.Serial) {
		t.Fatal("IsRevoked = false after Revoke")
	}
}

func TestAttributeCertificateCarriesPrivileges(t *testing.T) {
	_, hospital, opts := newHierarchy(t)
	privs := ifc.Privileges{
		RemoveSecrecy: ifc.MustLabel("ann", "zeb"),
		AddIntegrity:  ifc.MustLabel("anon"),
	}
	cert, err := hospital.IssueAttributes("stats-generator",
		map[string]string{"role": "declassifier"}, privs, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	tbs, err := VerifyChain([]*Certificate{cert, hospital.Certificate()}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if tbs.Kind != KindAttribute {
		t.Fatalf("kind = %v", tbs.Kind)
	}
	if got := tbs.Privileges(); !got.Equal(privs) {
		t.Fatalf("privileges = %v, want %v", got, privs)
	}
	if tbs.Attributes["role"] != "declassifier" {
		t.Fatalf("attributes = %v", tbs.Attributes)
	}
}

func TestCertificateMarshalRoundTrip(t *testing.T) {
	_, hospital, _ := newHierarchy(t)
	cert, err := hospital.IssueAttributes("svc", map[string]string{"role": "nurse", "ward": "a"},
		ifc.Privileges{AddSecrecy: ifc.MustLabel("medical")}, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	b, err := cert.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalCertificate(b)
	if err != nil {
		t.Fatal(err)
	}
	// Signature must still verify after the round trip (encoding is canonical).
	if err := back.VerifySignature(hospital.PublicKey()); err != nil {
		t.Fatalf("round-tripped signature invalid: %v", err)
	}
	if back.TBS.Attributes["ward"] != "a" {
		t.Fatalf("attributes lost: %v", back.TBS.Attributes)
	}
	if _, err := UnmarshalCertificate([]byte("{garbage")); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestCertKindString(t *testing.T) {
	if KindIdentity.String() != "identity" || KindAttribute.String() != "attribute" {
		t.Fatal("kind strings wrong")
	}
	if CertKind(9).String() != "CertKind(9)" {
		t.Fatal("unknown kind string wrong")
	}
}

func TestFingerprintStable(t *testing.T) {
	k, err := GenerateKeyPair()
	if err != nil {
		t.Fatal(err)
	}
	if k.Fingerprint() != Fingerprint(k.Public) {
		t.Fatal("fingerprint mismatch")
	}
	if len(k.Fingerprint()) != 16 {
		t.Fatalf("fingerprint length = %d", len(k.Fingerprint()))
	}
}

func TestWebOfTrust(t *testing.T) {
	var w WebOfTrust
	// alice -> bob -> carol -> dave
	w.Endorse("alice", "bob")
	w.Endorse("bob", "carol")
	w.Endorse("carol", "dave")

	tests := []struct {
		verifier, subject ifc.PrincipalID
		depth             int
		want              bool
	}{
		{"alice", "alice", 0, true}, // self-trust
		{"alice", "bob", 1, true},
		{"alice", "carol", 1, false},
		{"alice", "carol", 2, true},
		{"alice", "dave", 2, false},
		{"alice", "dave", 3, true},
		{"dave", "alice", 3, false}, // endorsement is directed
	}
	for _, tt := range tests {
		if got := w.Trusts(tt.verifier, tt.subject, tt.depth); got != tt.want {
			t.Errorf("Trusts(%s, %s, %d) = %v, want %v", tt.verifier, tt.subject, tt.depth, got, tt.want)
		}
	}

	w.Retract("bob", "carol")
	if w.Trusts("alice", "carol", 5) {
		t.Error("retracted endorsement still trusted")
	}
}

func TestWebOfTrustPathCount(t *testing.T) {
	var w WebOfTrust
	w.Endorse("alice", "x")
	w.Endorse("alice", "y")
	w.Endorse("x", "target")
	w.Endorse("y", "target")
	if got := w.PathCount("alice", "target", 2); got != 2 {
		t.Fatalf("PathCount = %d, want 2", got)
	}
	if got := w.PathCount("alice", "target", 1); got != 0 {
		t.Fatalf("PathCount depth 1 = %d, want 0", got)
	}
}

func TestWebOfTrustCycleTermination(t *testing.T) {
	var w WebOfTrust
	w.Endorse("a", "b")
	w.Endorse("b", "a")
	if w.Trusts("a", "zzz", 100) {
		t.Fatal("phantom trust in cyclic graph")
	}
}
