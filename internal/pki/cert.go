package pki

import (
	"crypto/ed25519"
	"crypto/rand"
	"encoding/base64"
	"encoding/json"
	"errors"
	"fmt"
	"time"

	"lciot/internal/ifc"
)

// Errors reported by certificate operations.
var (
	ErrBadSignature = errors.New("pki: bad signature")
	ErrExpired      = errors.New("pki: certificate expired or not yet valid")
	ErrRevoked      = errors.New("pki: certificate revoked")
	ErrUntrusted    = errors.New("pki: no trust path to a root")
	ErrNotCA        = errors.New("pki: issuer is not a CA")
	ErrPathLen      = errors.New("pki: delegation path length exceeded")
)

// A KeyPair is an Ed25519 signing identity.
type KeyPair struct {
	Public  ed25519.PublicKey
	private ed25519.PrivateKey
}

// GenerateKeyPair creates a fresh Ed25519 key pair.
func GenerateKeyPair() (*KeyPair, error) {
	pub, priv, err := ed25519.GenerateKey(rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("pki: generate key: %w", err)
	}
	return &KeyPair{Public: pub, private: priv}, nil
}

// Sign signs the message with the private key.
func (k *KeyPair) Sign(msg []byte) []byte {
	return ed25519.Sign(k.private, msg)
}

// Fingerprint returns a short printable identifier for the public key.
func (k *KeyPair) Fingerprint() string { return Fingerprint(k.Public) }

// Fingerprint returns a short printable identifier for any public key.
func Fingerprint(pub ed25519.PublicKey) string {
	return base64.RawStdEncoding.EncodeToString(pub)[:16]
}

// CertKind distinguishes identity certificates (binding a key to a subject)
// from attribute certificates (binding privileges/roles to a subject).
type CertKind int

// Certificate kinds.
const (
	KindIdentity CertKind = iota + 1
	KindAttribute
)

// String implements fmt.Stringer.
func (k CertKind) String() string {
	switch k {
	case KindIdentity:
		return "identity"
	case KindAttribute:
		return "attribute"
	default:
		return fmt.Sprintf("CertKind(%d)", int(k))
	}
}

// TBS is the to-be-signed body of a certificate.
type TBS struct {
	Kind       CertKind        `json:"kind"`
	Serial     uint64          `json:"serial"`
	Subject    ifc.PrincipalID `json:"subject"`
	SubjectKey []byte          `json:"subject_key,omitempty"` // identity certs only
	Issuer     ifc.PrincipalID `json:"issuer"`
	NotBefore  time.Time       `json:"not_before"`
	NotAfter   time.Time       `json:"not_after"`
	IsCA       bool            `json:"is_ca,omitempty"`
	// MaxPathLen bounds further delegation below this CA; -1 means
	// unlimited. Only meaningful when IsCA is set.
	MaxPathLen int `json:"max_path_len,omitempty"`
	// Attributes carries role/context bindings for attribute certificates,
	// e.g. {"role": "nurse", "ward": "a"} (parametrised roles, Section 4).
	Attributes map[string]string `json:"attributes,omitempty"`
	// Privileges carries IFC privilege grants for attribute certificates,
	// in the canonical "S+{..} S-{..} I+{..} I-{..}" rendering split into
	// the four labels.
	PrivAddSecrecy      ifc.Label `json:"priv_add_s,omitempty"`
	PrivRemoveSecrecy   ifc.Label `json:"priv_remove_s,omitempty"`
	PrivAddIntegrity    ifc.Label `json:"priv_add_i,omitempty"`
	PrivRemoveIntegrity ifc.Label `json:"priv_remove_i,omitempty"`
}

// Privileges reassembles the IFC privilege sets carried by an attribute
// certificate.
func (t *TBS) Privileges() ifc.Privileges {
	return ifc.Privileges{
		AddSecrecy:      t.PrivAddSecrecy,
		RemoveSecrecy:   t.PrivRemoveSecrecy,
		AddIntegrity:    t.PrivAddIntegrity,
		RemoveIntegrity: t.PrivRemoveIntegrity,
	}
}

// A Certificate is a signed TBS.
type Certificate struct {
	TBS       TBS    `json:"tbs"`
	Signature []byte `json:"sig"`
}

// encodeTBS produces the deterministic byte representation that is signed.
// encoding/json marshals struct fields in declaration order, which makes
// the encoding canonical for our purposes.
func encodeTBS(t *TBS) ([]byte, error) {
	b, err := json.Marshal(t)
	if err != nil {
		return nil, fmt.Errorf("pki: encode tbs: %w", err)
	}
	return b, nil
}

// VerifySignature checks the certificate's signature against the issuer's
// public key.
func (c *Certificate) VerifySignature(issuerKey ed25519.PublicKey) error {
	body, err := encodeTBS(&c.TBS)
	if err != nil {
		return err
	}
	if !ed25519.Verify(issuerKey, body, c.Signature) {
		return fmt.Errorf("%w: cert serial %d subject %q", ErrBadSignature, c.TBS.Serial, c.TBS.Subject)
	}
	return nil
}

// ValidAt checks the certificate's validity window.
func (c *Certificate) ValidAt(at time.Time) error {
	if at.Before(c.TBS.NotBefore) || at.After(c.TBS.NotAfter) {
		return fmt.Errorf("%w: serial %d valid %s..%s, checked at %s",
			ErrExpired, c.TBS.Serial,
			c.TBS.NotBefore.Format(time.RFC3339), c.TBS.NotAfter.Format(time.RFC3339),
			at.Format(time.RFC3339))
	}
	return nil
}

// Marshal serialises the certificate for transport.
func (c *Certificate) Marshal() ([]byte, error) {
	return json.Marshal(c)
}

// UnmarshalCertificate parses a serialised certificate.
func UnmarshalCertificate(b []byte) (*Certificate, error) {
	var c Certificate
	if err := json.Unmarshal(b, &c); err != nil {
		return nil, fmt.Errorf("pki: parse certificate: %w", err)
	}
	return &c, nil
}
