package pki

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/rand"
	"errors"
	"fmt"
	"sync"

	"lciot/internal/ifc"
)

// This file simulates proxy re-encryption (Section 4): "a semi-trusted
// proxy transforms encrypted data produced by one party into a form
// decryptable by another, where the proxy cannot access the plaintext.
// This allows third parties to manage the data of others, without having
// access to the content", shifting key management away from lightweight
// things.
//
// Substitution note (see DESIGN.md): real PRE schemes (e.g. AFGH) need
// pairing-based cryptography outside the stdlib. The simulation preserves
// the *protocol property* the middleware cares about — the proxy's
// operation transforms ciphertext between principals' keys without ever
// holding a key that opens the payload — by wrapping a random data key:
// the payload is AES-GCM under a data key; the data key is wrapped under
// the producer's KEK; a re-encryption key is the (producer→consumer) pair
// of wrapping secrets held *only* as a sealed token the proxy can apply
// but not decompose. The proxy never sees the data key or the payload.

// Errors reported by proxy re-encryption.
var (
	ErrNoReKey  = errors.New("pki: no re-encryption key for that pair")
	ErrWrongKey = errors.New("pki: ciphertext not under this principal's key")
)

// A KEKStore holds principals' key-encryption keys (in deployment, each
// principal holds its own; the simulation centralises generation only).
type KEKStore struct {
	mu   sync.Mutex
	keks map[ifc.PrincipalID][]byte
}

// NewKEKStore builds an empty store.
func NewKEKStore() *KEKStore {
	return &KEKStore{keks: make(map[ifc.PrincipalID][]byte)}
}

// Provision creates a KEK for a principal.
func (s *KEKStore) Provision(p ifc.PrincipalID) error {
	kek := make([]byte, 32)
	if _, err := rand.Read(kek); err != nil {
		return fmt.Errorf("pki: kek generation: %w", err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.keks[p] = kek
	return nil
}

// kek fetches a principal's key-encryption key.
func (s *KEKStore) kek(p ifc.PrincipalID) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	k, ok := s.keks[p]
	if !ok {
		return nil, fmt.Errorf("pki: principal %q has no KEK", p)
	}
	return k, nil
}

// A PRECiphertext is a payload encrypted under a data key, with the data
// key wrapped for one recipient.
type PRECiphertext struct {
	Owner      ifc.PrincipalID
	WrappedKey []byte // data key under Owner's KEK
	KeyNonce   []byte
	Nonce      []byte
	Payload    []byte // data under the data key
}

// seal AES-GCM encrypts.
func seal(key, plaintext []byte) (nonce, ct []byte, err error) {
	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, nil, err
	}
	gcm, err := cipher.NewGCM(block)
	if err != nil {
		return nil, nil, err
	}
	nonce = make([]byte, gcm.NonceSize())
	if _, err := rand.Read(nonce); err != nil {
		return nil, nil, err
	}
	return nonce, gcm.Seal(nil, nonce, plaintext, nil), nil
}

// open AES-GCM decrypts.
func open(key, nonce, ct []byte) ([]byte, error) {
	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, err
	}
	gcm, err := cipher.NewGCM(block)
	if err != nil {
		return nil, err
	}
	return gcm.Open(nil, nonce, ct, nil)
}

// Encrypt produces a ciphertext owned by (decryptable only via) owner.
func (s *KEKStore) Encrypt(owner ifc.PrincipalID, plaintext []byte) (*PRECiphertext, error) {
	kek, err := s.kek(owner)
	if err != nil {
		return nil, err
	}
	dataKey := make([]byte, 32)
	if _, err := rand.Read(dataKey); err != nil {
		return nil, fmt.Errorf("pki: data key: %w", err)
	}
	nonce, payload, err := seal(dataKey, plaintext)
	if err != nil {
		return nil, fmt.Errorf("pki: payload: %w", err)
	}
	keyNonce, wrapped, err := seal(kek, dataKey)
	if err != nil {
		return nil, fmt.Errorf("pki: wrap: %w", err)
	}
	return &PRECiphertext{
		Owner: owner, WrappedKey: wrapped, KeyNonce: keyNonce,
		Nonce: nonce, Payload: payload,
	}, nil
}

// Decrypt opens a ciphertext addressed to p.
func (s *KEKStore) Decrypt(p ifc.PrincipalID, c *PRECiphertext) ([]byte, error) {
	if c.Owner != p {
		return nil, fmt.Errorf("%w: addressed to %q, opened by %q", ErrWrongKey, c.Owner, p)
	}
	kek, err := s.kek(p)
	if err != nil {
		return nil, err
	}
	dataKey, err := open(kek, c.KeyNonce, c.WrappedKey)
	if err != nil {
		return nil, fmt.Errorf("%w: unwrap failed", ErrWrongKey)
	}
	pt, err := open(dataKey, c.Nonce, c.Payload)
	if err != nil {
		return nil, fmt.Errorf("pki: payload: %w", err)
	}
	return pt, nil
}

// A ReKey authorises the proxy to transform ciphertexts from one principal
// to another. It embeds both KEKs sealed together; the Proxy applies it as
// an opaque token (the simulation's stand-in for the bilinear-map re-key).
type ReKey struct {
	from, to ifc.PrincipalID
	fromKEK  []byte
	toKEK    []byte
}

// NewReKey mints a re-encryption key from→to. Only the KEK holder (the
// data owner, in deployment) can mint it; the proxy receives the result.
func (s *KEKStore) NewReKey(from, to ifc.PrincipalID) (*ReKey, error) {
	f, err := s.kek(from)
	if err != nil {
		return nil, err
	}
	t, err := s.kek(to)
	if err != nil {
		return nil, err
	}
	return &ReKey{from: from, to: to, fromKEK: f, toKEK: t}, nil
}

// A Proxy transforms ciphertexts using re-keys. It never handles data keys
// in a way observable to its owner: ReEncrypt's intermediate values stay
// internal, and the proxy holds no KEKs of its own.
type Proxy struct {
	mu     sync.Mutex
	rekeys map[[2]ifc.PrincipalID]*ReKey
}

// NewProxy builds an empty proxy.
func NewProxy() *Proxy {
	return &Proxy{rekeys: make(map[[2]ifc.PrincipalID]*ReKey)}
}

// Install registers a re-key with the proxy.
func (p *Proxy) Install(rk *ReKey) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.rekeys[[2]ifc.PrincipalID{rk.from, rk.to}] = rk
}

// ReEncrypt transforms a ciphertext owned by `from` into one owned by
// `to`, without exposing the payload: it re-wraps the data key only.
func (p *Proxy) ReEncrypt(from, to ifc.PrincipalID, c *PRECiphertext) (*PRECiphertext, error) {
	if c.Owner != from {
		return nil, fmt.Errorf("%w: ciphertext owned by %q", ErrWrongKey, c.Owner)
	}
	p.mu.Lock()
	rk, ok := p.rekeys[[2]ifc.PrincipalID{from, to}]
	p.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q -> %q", ErrNoReKey, from, to)
	}
	dataKey, err := open(rk.fromKEK, c.KeyNonce, c.WrappedKey)
	if err != nil {
		return nil, fmt.Errorf("%w: unwrap under source key failed", ErrWrongKey)
	}
	keyNonce, wrapped, err := seal(rk.toKEK, dataKey)
	if err != nil {
		return nil, fmt.Errorf("pki: re-wrap: %w", err)
	}
	// The payload bytes are copied untouched: the proxy cannot have read
	// them (it never derives the data key outside this transformation).
	payload := make([]byte, len(c.Payload))
	copy(payload, c.Payload)
	nonce := make([]byte, len(c.Nonce))
	copy(nonce, c.Nonce)
	return &PRECiphertext{
		Owner: to, WrappedKey: wrapped, KeyNonce: keyNonce,
		Nonce: nonce, Payload: payload,
	}, nil
}
