package pki

import (
	"fmt"
	"sync"
	"time"

	"lciot/internal/ifc"
)

// An Authority is a certificate authority: it holds a signing key and
// issues identity and attribute certificates. Authorities form chains: a
// root authority signs intermediate authorities' identity certificates
// (with IsCA set), which in turn certify leaf subjects.
type Authority struct {
	id   ifc.PrincipalID
	keys *KeyPair
	// cert is this authority's own identity certificate (nil for a
	// self-signed root before SelfSign).
	cert *Certificate

	mu      sync.Mutex
	serial  uint64
	revoked map[uint64]time.Time // serial -> revocation time
	now     func() time.Time
}

// NewAuthority creates an authority with a fresh key pair.
func NewAuthority(id ifc.PrincipalID) (*Authority, error) {
	keys, err := GenerateKeyPair()
	if err != nil {
		return nil, err
	}
	return &Authority{
		id:      id,
		keys:    keys,
		revoked: make(map[uint64]time.Time),
		now:     time.Now,
	}, nil
}

// SetClock overrides the authority's clock (tests).
func (a *Authority) SetClock(now func() time.Time) { a.now = now }

// ID returns the authority's principal identifier.
func (a *Authority) ID() ifc.PrincipalID { return a.id }

// PublicKey returns the authority's verification key.
func (a *Authority) PublicKey() []byte { return a.keys.Public }

// Certificate returns this authority's own identity certificate.
func (a *Authority) Certificate() *Certificate { return a.cert }

// nextSerial allocates a serial number.
func (a *Authority) nextSerial() uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.serial++
	return a.serial
}

// sign completes and signs a TBS.
func (a *Authority) sign(tbs TBS) (*Certificate, error) {
	tbs.Issuer = a.id
	tbs.Serial = a.nextSerial()
	body, err := encodeTBS(&tbs)
	if err != nil {
		return nil, err
	}
	return &Certificate{TBS: tbs, Signature: a.keys.Sign(body)}, nil
}

// SelfSign issues the authority's own root certificate, valid for the given
// duration.
func (a *Authority) SelfSign(validity time.Duration) (*Certificate, error) {
	now := a.now()
	cert, err := a.sign(TBS{
		Kind:       KindIdentity,
		Subject:    a.id,
		SubjectKey: a.keys.Public,
		NotBefore:  now,
		NotAfter:   now.Add(validity),
		IsCA:       true,
		MaxPathLen: -1,
	})
	if err != nil {
		return nil, err
	}
	a.cert = cert
	return cert, nil
}

// IssueIdentity certifies that subject controls the given public key.
func (a *Authority) IssueIdentity(subject ifc.PrincipalID, subjectKey []byte, validity time.Duration) (*Certificate, error) {
	now := a.now()
	return a.sign(TBS{
		Kind:       KindIdentity,
		Subject:    subject,
		SubjectKey: subjectKey,
		NotBefore:  now,
		NotAfter:   now.Add(validity),
	})
}

// IssueIntermediate certifies a subordinate authority. maxPathLen bounds
// how many further CA levels may hang below it (0 = leaf-issuing only).
func (a *Authority) IssueIntermediate(sub *Authority, maxPathLen int, validity time.Duration) (*Certificate, error) {
	now := a.now()
	cert, err := a.sign(TBS{
		Kind:       KindIdentity,
		Subject:    sub.id,
		SubjectKey: sub.keys.Public,
		NotBefore:  now,
		NotAfter:   now.Add(validity),
		IsCA:       true,
		MaxPathLen: maxPathLen,
	})
	if err != nil {
		return nil, err
	}
	sub.cert = cert
	return cert, nil
}

// IssueAttributes certifies role/context attributes and IFC privileges for
// a subject (the paper's X.509 attribute certificates).
func (a *Authority) IssueAttributes(subject ifc.PrincipalID, attrs map[string]string, privs ifc.Privileges, validity time.Duration) (*Certificate, error) {
	now := a.now()
	return a.sign(TBS{
		Kind:                KindAttribute,
		Subject:             subject,
		NotBefore:           now,
		NotAfter:            now.Add(validity),
		Attributes:          attrs,
		PrivAddSecrecy:      privs.AddSecrecy,
		PrivRemoveSecrecy:   privs.RemoveSecrecy,
		PrivAddIntegrity:    privs.AddIntegrity,
		PrivRemoveIntegrity: privs.RemoveIntegrity,
	})
}

// Revoke adds a serial to the authority's revocation list.
func (a *Authority) Revoke(serial uint64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.revoked[serial] = a.now()
}

// IsRevoked reports whether the serial appears on the revocation list.
func (a *Authority) IsRevoked(serial uint64) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	_, ok := a.revoked[serial]
	return ok
}

// A VerifyOptions bundle controls chain verification.
type VerifyOptions struct {
	// Roots maps trusted root principal IDs to their public keys.
	Roots map[ifc.PrincipalID][]byte
	// At is the verification time; zero means now.
	At time.Time
	// CheckRevocation, when non-nil, reports whether (issuer, serial) is
	// revoked; typically it consults the issuing authorities' CRLs.
	CheckRevocation func(issuer ifc.PrincipalID, serial uint64) bool
}

// VerifyChain validates chain[0] (the leaf) up through intermediates to a
// trusted root. chain[i]'s issuer must be chain[i+1]'s subject; the last
// element must be issued by (or be) a trusted root. It returns the leaf's
// TBS on success.
func VerifyChain(chain []*Certificate, opts VerifyOptions) (*TBS, error) {
	if len(chain) == 0 {
		return nil, fmt.Errorf("%w: empty chain", ErrUntrusted)
	}
	at := opts.At
	if at.IsZero() {
		at = time.Now()
	}
	for i, cert := range chain {
		if err := cert.ValidAt(at); err != nil {
			return nil, err
		}
		if opts.CheckRevocation != nil && opts.CheckRevocation(cert.TBS.Issuer, cert.TBS.Serial) {
			return nil, fmt.Errorf("%w: serial %d issued by %q", ErrRevoked, cert.TBS.Serial, cert.TBS.Issuer)
		}
		// Locate the issuer's key: next element of the chain, or a root.
		var issuerKey []byte
		switch {
		case i+1 < len(chain):
			next := chain[i+1]
			if next.TBS.Subject != cert.TBS.Issuer {
				return nil, fmt.Errorf("%w: chain break at %d: issuer %q, next subject %q",
					ErrUntrusted, i, cert.TBS.Issuer, next.TBS.Subject)
			}
			if !next.TBS.IsCA {
				return nil, fmt.Errorf("%w: %q", ErrNotCA, next.TBS.Subject)
			}
			// MaxPathLen counts CA certificates allowed *below* this CA,
			// excluding the leaf.
			if below := i; next.TBS.MaxPathLen >= 0 && below > next.TBS.MaxPathLen {
				return nil, fmt.Errorf("%w: CA %q allows %d, found %d",
					ErrPathLen, next.TBS.Subject, next.TBS.MaxPathLen, below)
			}
			issuerKey = next.TBS.SubjectKey
		default:
			rootKey, ok := opts.Roots[cert.TBS.Issuer]
			if !ok {
				return nil, fmt.Errorf("%w: issuer %q is not a trusted root", ErrUntrusted, cert.TBS.Issuer)
			}
			issuerKey = rootKey
		}
		if err := cert.VerifySignature(issuerKey); err != nil {
			return nil, err
		}
	}
	return &chain[0].TBS, nil
}
