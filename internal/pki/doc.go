// Package pki provides the certificate infrastructure the paper assumes for
// a wide-scale security regime (Section 4): "a PKI where 'things' have
// private keys and public key certificates, signed by a certificate
// authority linking them to their owners", plus the X.509-style *attribute*
// certificates SBUS uses to carry privileges, credentials and context
// (Section 8.1, footnote 2), and a decentralised web-of-trust alternative.
//
// Substitution note (see DESIGN.md): certificates here are our own compact
// encoding signed with stdlib Ed25519 rather than ASN.1 X.509. The trust
// semantics the middleware depends on — CA chains, expiry, revocation,
// attribute binding, delegation-limited path lengths — are preserved; only
// the wire syntax differs.
package pki
