// Package device simulates the physical end of the IoT (Section 2):
// sensors producing data streams and actuators accepting commands with
// real-world effect (Concern 2). Generators are deterministic (seeded), so
// every benchharness experiment (see DESIGN.md) reproduces exactly.
//
// Substitution note (see DESIGN.md): replaces real sensor hardware. The
// scenarios only need workload *shape* — steady vitals with occasional
// emergency episodes, configurable sampling rates — which the synthetic
// generators provide.
package device

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"
	"time"
)

// Errors reported by devices.
var (
	ErrUnknownCommand = errors.New("device: unknown command")
	ErrBadValue       = errors.New("device: command value out of range")
	ErrUnknownDevice  = errors.New("device: unknown device")
)

// A Reading is one sensor sample.
type Reading struct {
	DeviceID string
	Metric   string
	Value    float64
	At       time.Time
	// Seq numbers readings per device for provenance IDs.
	Seq uint64
}

// DataID derives a stable provenance identifier.
func (r Reading) DataID() string {
	return fmt.Sprintf("%s/%s/%d", r.DeviceID, r.Metric, r.Seq)
}

// A VitalsSensor generates heart-rate readings: a stable baseline with
// noise, plus scripted emergency episodes during which the rate ramps up —
// the workload behind the Fig. 7 emergency-detection scenario.
type VitalsSensor struct {
	id       string
	baseline float64
	noise    float64
	rng      *rand.Rand

	mu sync.Mutex
	// interval is the sampling period, actuatable at runtime ("the home
	// sensors may be actuated to sample more frequently").
	interval time.Duration
	// episodes holds [start, end) sample-sequence windows with elevated rate.
	episodes []episode
	seq      uint64
	clock    time.Time
}

type episode struct {
	from, to uint64
	peak     float64
}

// NewVitalsSensor builds a deterministic vitals sensor.
func NewVitalsSensor(id string, baseline float64, seed int64, start time.Time, interval time.Duration) *VitalsSensor {
	return &VitalsSensor{
		id:       id,
		baseline: baseline,
		noise:    2.0,
		rng:      rand.New(rand.NewSource(seed)),
		interval: interval,
		clock:    start,
	}
}

// ID returns the device identifier.
func (s *VitalsSensor) ID() string { return s.id }

// ScheduleEpisode injects an emergency between two sample sequence numbers,
// ramping the heart rate towards peak.
func (s *VitalsSensor) ScheduleEpisode(fromSeq, toSeq uint64, peak float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.episodes = append(s.episodes, episode{from: fromSeq, to: toSeq, peak: peak})
}

// Interval returns the current sampling period.
func (s *VitalsSensor) Interval() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.interval
}

// Next produces the next reading, advancing the sensor's virtual clock by
// the sampling interval.
func (s *VitalsSensor) Next() Reading {
	s.mu.Lock()
	defer s.mu.Unlock()
	value := s.baseline + s.rng.NormFloat64()*s.noise
	for _, ep := range s.episodes {
		if s.seq >= ep.from && s.seq < ep.to {
			// Sinusoidal ramp into the episode peak.
			progress := float64(s.seq-ep.from+1) / float64(ep.to-ep.from)
			value += (ep.peak - s.baseline) * math.Sin(progress*math.Pi/2)
		}
	}
	r := Reading{
		DeviceID: s.id,
		Metric:   "heart-rate",
		Value:    value,
		At:       s.clock,
		Seq:      s.seq,
	}
	s.seq++
	s.clock = s.clock.Add(s.interval)
	return r
}

// Actuate applies a command (Concern 2: actuation has real-world effect,
// so commands are validated). Supported: "sample-interval" (seconds,
// 0 < v <= 3600).
func (s *VitalsSensor) Actuate(command string, value float64) error {
	switch command {
	case "sample-interval":
		if value <= 0 || value > 3600 {
			return fmt.Errorf("%w: sample-interval %g", ErrBadValue, value)
		}
		s.mu.Lock()
		s.interval = time.Duration(value * float64(time.Second))
		s.mu.Unlock()
		return nil
	default:
		return fmt.Errorf("%w: %q on %q", ErrUnknownCommand, command, s.id)
	}
}

// An EnvironmentSensor produces slowly-drifting environmental values
// (temperature, traffic counts) for the smart-city scenarios.
type EnvironmentSensor struct {
	id     string
	metric string
	level  float64
	drift  float64
	rng    *rand.Rand

	mu    sync.Mutex
	seq   uint64
	clock time.Time
	step  time.Duration
}

// NewEnvironmentSensor builds a deterministic environmental sensor.
func NewEnvironmentSensor(id, metric string, level, drift float64, seed int64, start time.Time, step time.Duration) *EnvironmentSensor {
	return &EnvironmentSensor{
		id: id, metric: metric, level: level, drift: drift,
		rng: rand.New(rand.NewSource(seed)), clock: start, step: step,
	}
}

// ID returns the device identifier.
func (s *EnvironmentSensor) ID() string { return s.id }

// Next produces the next reading (random walk).
func (s *EnvironmentSensor) Next() Reading {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.level += s.rng.NormFloat64() * s.drift
	r := Reading{DeviceID: s.id, Metric: s.metric, Value: s.level, At: s.clock, Seq: s.seq}
	s.seq++
	s.clock = s.clock.Add(s.step)
	return r
}

// An Actuator accepts validated commands and records its state; the Fig. 7
// "emergency actuations" target these.
type Actuator struct {
	id string
	// limits maps command name to [min, max] acceptable values.
	limits map[string][2]float64

	mu    sync.Mutex
	state map[string]float64
	// applied counts accepted commands, for test assertions.
	applied uint64
}

// NewActuator builds an actuator accepting the given commands.
func NewActuator(id string, limits map[string][2]float64) *Actuator {
	cp := make(map[string][2]float64, len(limits))
	for k, v := range limits {
		cp[k] = v
	}
	return &Actuator{id: id, limits: cp, state: make(map[string]float64)}
}

// ID returns the device identifier.
func (a *Actuator) ID() string { return a.id }

// Apply executes a command after range validation.
func (a *Actuator) Apply(command string, value float64) error {
	lim, ok := a.limits[command]
	if !ok {
		return fmt.Errorf("%w: %q on %q", ErrUnknownCommand, command, a.id)
	}
	if value < lim[0] || value > lim[1] {
		return fmt.Errorf("%w: %q=%g outside [%g, %g]", ErrBadValue, command, value, lim[0], lim[1])
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	a.state[command] = value
	a.applied++
	return nil
}

// State returns the last applied value for a command.
func (a *Actuator) State(command string) (float64, bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	v, ok := a.state[command]
	return v, ok
}

// Applied returns the number of accepted commands.
func (a *Actuator) Applied() uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.applied
}

// A Registry indexes devices by ID (one per gateway or domain).
type Registry struct {
	mu        sync.RWMutex
	actuators map[string]*Actuator
}

// RegisterActuator adds an actuator.
func (r *Registry) RegisterActuator(a *Actuator) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.actuators == nil {
		r.actuators = make(map[string]*Actuator)
	}
	r.actuators[a.ID()] = a
}

// Actuator looks an actuator up.
func (r *Registry) Actuator(id string) (*Actuator, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	a, ok := r.actuators[id]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownDevice, id)
	}
	return a, nil
}

// Actuators lists registered actuator IDs, sorted.
func (r *Registry) Actuators() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.actuators))
	for id := range r.actuators {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}
