package device

import (
	"errors"
	"testing"
	"time"
)

var start = time.Unix(1700000000, 0)

func TestVitalsSensorDeterministic(t *testing.T) {
	a := NewVitalsSensor("ann-sensor", 70, 42, start, time.Second)
	b := NewVitalsSensor("ann-sensor", 70, 42, start, time.Second)
	for i := 0; i < 50; i++ {
		ra, rb := a.Next(), b.Next()
		if ra.Value != rb.Value || ra.At != rb.At || ra.Seq != rb.Seq {
			t.Fatalf("divergence at sample %d: %+v vs %+v", i, ra, rb)
		}
	}
}

func TestVitalsSensorBaseline(t *testing.T) {
	s := NewVitalsSensor("s", 70, 1, start, time.Second)
	sum := 0.0
	const n = 500
	for i := 0; i < n; i++ {
		r := s.Next()
		sum += r.Value
		if r.Metric != "heart-rate" || r.DeviceID != "s" {
			t.Fatalf("reading = %+v", r)
		}
	}
	avg := sum / n
	if avg < 65 || avg > 75 {
		t.Fatalf("average %g far from baseline 70", avg)
	}
}

func TestVitalsSensorEpisode(t *testing.T) {
	s := NewVitalsSensor("s", 70, 7, start, time.Second)
	s.ScheduleEpisode(10, 20, 160)
	var calm, peak float64
	for i := 0; i < 25; i++ {
		r := s.Next()
		switch {
		case r.Seq < 10:
			calm = maxF(calm, r.Value)
		case r.Seq >= 15 && r.Seq < 20:
			peak = maxF(peak, r.Value)
		}
	}
	if peak < 120 {
		t.Fatalf("episode peak %g too low", peak)
	}
	if calm > 100 {
		t.Fatalf("calm phase %g too high", calm)
	}
}

func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

func TestVitalsSensorTimestampsAdvance(t *testing.T) {
	s := NewVitalsSensor("s", 70, 1, start, 2*time.Second)
	r0 := s.Next()
	r1 := s.Next()
	if r1.At.Sub(r0.At) != 2*time.Second {
		t.Fatalf("interval = %v", r1.At.Sub(r0.At))
	}
}

func TestVitalsSensorActuation(t *testing.T) {
	s := NewVitalsSensor("s", 70, 1, start, 10*time.Second)
	if err := s.Actuate("sample-interval", 1); err != nil {
		t.Fatal(err)
	}
	if s.Interval() != time.Second {
		t.Fatalf("interval = %v", s.Interval())
	}
	if err := s.Actuate("sample-interval", 0); !errors.Is(err, ErrBadValue) {
		t.Fatalf("zero interval = %v", err)
	}
	if err := s.Actuate("sample-interval", 4000); !errors.Is(err, ErrBadValue) {
		t.Fatalf("huge interval = %v", err)
	}
	if err := s.Actuate("self-destruct", 1); !errors.Is(err, ErrUnknownCommand) {
		t.Fatalf("unknown command = %v", err)
	}
}

func TestReadingDataID(t *testing.T) {
	r := Reading{DeviceID: "d", Metric: "heart-rate", Seq: 7}
	if r.DataID() != "d/heart-rate/7" {
		t.Fatalf("DataID = %q", r.DataID())
	}
}

func TestEnvironmentSensor(t *testing.T) {
	s := NewEnvironmentSensor("tmp-1", "temperature", 20, 0.1, 3, start, time.Minute)
	r0 := s.Next()
	if r0.Metric != "temperature" || r0.Seq != 0 {
		t.Fatalf("reading = %+v", r0)
	}
	// The walk stays near the level for small drift.
	last := r0
	for i := 0; i < 100; i++ {
		last = s.Next()
	}
	if last.Value < 10 || last.Value > 30 {
		t.Fatalf("drifted to %g", last.Value)
	}
	if last.Seq != 100 {
		t.Fatalf("seq = %d", last.Seq)
	}
}

func TestActuatorValidation(t *testing.T) {
	a := NewActuator("hvac", map[string][2]float64{"target-temp": {10, 30}})
	if err := a.Apply("target-temp", 22); err != nil {
		t.Fatal(err)
	}
	if v, ok := a.State("target-temp"); !ok || v != 22 {
		t.Fatalf("state = %g, %v", v, ok)
	}
	if err := a.Apply("target-temp", 99); !errors.Is(err, ErrBadValue) {
		t.Fatalf("out of range = %v", err)
	}
	if err := a.Apply("explode", 1); !errors.Is(err, ErrUnknownCommand) {
		t.Fatalf("unknown = %v", err)
	}
	if a.Applied() != 1 {
		t.Fatalf("applied = %d", a.Applied())
	}
	if _, ok := a.State("explode"); ok {
		t.Fatal("rejected command changed state")
	}
}

func TestRegistry(t *testing.T) {
	var r Registry
	r.RegisterActuator(NewActuator("b", nil))
	r.RegisterActuator(NewActuator("a", nil))
	if _, err := r.Actuator("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Actuator("ghost"); !errors.Is(err, ErrUnknownDevice) {
		t.Fatalf("ghost = %v", err)
	}
	ids := r.Actuators()
	if len(ids) != 2 || ids[0] != "a" {
		t.Fatalf("Actuators = %v", ids)
	}
}
