package fault

import (
	"errors"
	"io"
	"sync"
	"syscall"
	"testing"
	"time"
)

// points get process-global state; every test disarms what it arms.

func TestDisarmedCheckIsNil(t *testing.T) {
	p := New("test.disarmed")
	for i := 0; i < 100; i++ {
		if act := p.Check(); act != nil {
			t.Fatalf("disarmed point fired: %+v", act)
		}
	}
	if p.Fires() != 0 {
		t.Fatalf("fires = %d, want 0", p.Fires())
	}
}

func TestTriggerPrograms(t *testing.T) {
	cases := []struct {
		name string
		prog Program
		want []bool // fire pattern over sequential hits
	}{
		{"once", Once(Action{}), []bool{true, false, false, false}},
		{"every3", EveryN(3, Action{}), []bool{false, false, true, false, false, true}},
		{"after2", AfterN(2, Action{}), []bool{false, false, true, true, true}},
		{"times2", TimesN(2, Action{}), []bool{true, true, false, false}},
		{"always", Always(Action{}), []bool{true, true, true}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := New("test.prog." + tc.name)
			defer p.disarm()
			p.arm(tc.prog, tc.name)
			for i, want := range tc.want {
				got := p.Check() != nil
				if got != want {
					t.Fatalf("hit %d: fired=%v, want %v", i+1, got, want)
				}
			}
		})
	}
}

func TestRearmRestartsCounters(t *testing.T) {
	p := New("test.rearm")
	defer p.disarm()
	p.arm(Once(Action{}), "once")
	if p.Check() == nil || p.Check() != nil {
		t.Fatal("once program misfired")
	}
	p.arm(Once(Action{}), "once")
	if p.Check() == nil {
		t.Fatal("re-armed once program did not fire on first hit")
	}
}

func TestDeterministicUnderIdenticalSequences(t *testing.T) {
	run := func() []bool {
		p := New("test.determinism")
		p.arm(EveryN(7, Action{}), "every(7)")
		out := make([]bool, 100)
		for i := range out {
			out[i] = p.Check() != nil
		}
		p.disarm()
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverge at hit %d", i)
		}
	}
}

func TestSetGrammar(t *testing.T) {
	defer DisarmAll()
	err := Set("test.set.a=once(enospc); test.set.b=every(5,eio); " +
		"test.set.c=times(3,200ms); test.set.d=once(partial:7+enospc); " +
		"test.set.e=once(drop); test.set.f=always")
	if err != nil {
		t.Fatal(err)
	}

	act := Lookup("test.set.a").Check()
	if act == nil || !errors.Is(act.Err, syscall.ENOSPC) || !errors.Is(act.Err, ErrInjected) {
		t.Fatalf("enospc action = %+v", act)
	}
	b := Lookup("test.set.b")
	for i := 1; i <= 10; i++ {
		act := b.Check()
		if (i%5 == 0) != (act != nil) {
			t.Fatalf("every(5): hit %d fired=%v", i, act != nil)
		}
		if act != nil && !errors.Is(act.Err, syscall.EIO) {
			t.Fatalf("every(5) err = %v", act.Err)
		}
	}
	if act := Lookup("test.set.c").Check(); act == nil || act.Delay != 200*time.Millisecond || act.Err != nil {
		t.Fatalf("stall action = %+v", act)
	}
	if act := Lookup("test.set.d").Check(); act == nil || act.Bytes != 7 || !errors.Is(act.Err, syscall.ENOSPC) {
		t.Fatalf("partial action = %+v", act)
	}
	if act := Lookup("test.set.e").Check(); act == nil || !act.Drop {
		t.Fatalf("drop action = %+v", act)
	}
	if act := Lookup("test.set.f").Check(); act == nil || !errors.Is(act.Err, ErrInjected) {
		t.Fatalf("bare action = %+v", act)
	}
}

func TestSetPartialWithoutErrorFailsShortWrite(t *testing.T) {
	defer DisarmAll()
	if err := Set("test.set.partial=once(partial:3)"); err != nil {
		t.Fatal(err)
	}
	act := Lookup("test.set.partial").Check()
	if act == nil || act.Bytes != 3 || !errors.Is(act.Err, io.ErrShortWrite) {
		t.Fatalf("partial-only action = %+v", act)
	}
}

func TestSetOff(t *testing.T) {
	defer DisarmAll()
	if err := Set("test.set.off=always"); err != nil {
		t.Fatal(err)
	}
	if err := Set("test.set.off=off"); err != nil {
		t.Fatal(err)
	}
	if act := Lookup("test.set.off").Check(); act != nil {
		t.Fatalf("disarmed point fired: %+v", act)
	}
}

func TestSetErrors(t *testing.T) {
	for _, bad := range []string{
		"noequals", "x=", "x=bogus", "x=every", "x=every(zero)",
		"x=every(0)", "x=once(wat)", "x=once(partial:-1)", "x=once(enospc",
	} {
		if err := Set(bad); err == nil {
			t.Errorf("Set(%q) accepted", bad)
		}
	}
	DisarmAll()
}

func TestSnapshot(t *testing.T) {
	defer DisarmAll()
	New("test.snap.idle")
	if err := Set("test.snap.armed=every(2,eio)"); err != nil {
		t.Fatal(err)
	}
	Lookup("test.snap.armed").Check()
	Lookup("test.snap.armed").Check() // second hit fires
	var armed, idle *PointState
	for i, st := range Snapshot() {
		switch st.Name {
		case "test.snap.armed":
			armed = &Snapshot()[i]
		case "test.snap.idle":
			idle = &Snapshot()[i]
		}
	}
	if armed == nil || !armed.Armed || armed.Spec != "every(2,eio)" || armed.Fires != 1 {
		t.Fatalf("armed state = %+v", armed)
	}
	if idle == nil || idle.Armed || idle.Fires != 0 {
		t.Fatalf("idle state = %+v", idle)
	}
}

func TestConcurrentCheckArmRace(t *testing.T) {
	p := New("test.race")
	defer p.disarm()
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					if act := p.Check(); act != nil {
						act.Wait()
						_ = act.Err
					}
				}
			}
		}()
	}
	for i := 0; i < 200; i++ {
		p.arm(EveryN(3, Action{Err: ErrInjected}), "every(3)")
		p.disarm()
	}
	close(stop)
	wg.Wait()
}

func TestArmBeforeSiteRegisters(t *testing.T) {
	defer DisarmAll()
	Arm("test.early", Once(Action{Err: Wrap(syscall.EIO)}))
	// The "site" registers afterwards and must see the armed program.
	p := New("test.early")
	if act := p.Check(); act == nil || !errors.Is(act.Err, syscall.EIO) {
		t.Fatalf("early-armed point did not fire: %+v", act)
	}
}

func TestWrapNil(t *testing.T) {
	if !errors.Is(Wrap(nil), ErrInjected) {
		t.Fatal("Wrap(nil) does not match ErrInjected")
	}
}
