// Package fault is a deterministic failpoint framework: named injection
// points compiled into the risky seams of the system (WAL writes, link
// sends, handoff rings, sink drains), armed at run time with counted
// trigger programs. The design goals, in order:
//
//  1. Zero overhead when disabled. A disarmed point costs one atomic
//     pointer load per Check — no map lookup, no lock, no allocation —
//     so failpoints can live permanently in production code paths.
//  2. Determinism. Trigger programs are pure counter machines (fire
//     once, every Nth, after N, N times, always); given the same
//     sequence of Check calls they fire at exactly the same hits. All
//     randomness lives in the caller's schedule (cmd/chaossoak derives
//     its whole failure schedule from a seed), never in this package.
//  3. Operability. Programs have a string form ("store.wal.write=
//     once(enospc)") parsed by Set, so a daemon flag (lciotd -faults)
//     can arm any point for a drill, and Snapshot renders the armed
//     state back for status displays.
//
// A site declares its point once and consults it on the hot path:
//
//	var fpWrite = fault.New("store.wal.write")
//
//	if act := fpWrite.Check(); act != nil {
//		act.Wait()                 // optional injected delay
//		if act.Err != nil { ... }  // injected failure
//	}
//
// Check returns nil (one atomic load) unless the point is armed and the
// program fires. Actions carry an error to inject, a delay to impose, a
// partial-write byte cap, and a drop marker; each site interprets the
// fields it understands and ignores the rest.
package fault

import (
	"errors"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"
)

// ErrInjected is the sentinel wrapped into every injected error, so code
// and tests can distinguish a drill from a real failure with errors.Is.
var ErrInjected = errors.New("fault: injected")

// An Action is what a firing failpoint tells its site to do. Sites read
// the fields they understand:
//
//   - Err: fail the operation with this error (already wrapped with
//     ErrInjected by the parser; Wrap does the same for API callers).
//   - Delay: sleep this long first (a stall). Delay composes with the
//     other fields: stall-then-fail is Delay+Err.
//   - Bytes: for write sites, perform a partial write of at most Bytes
//     bytes before failing (0 = write nothing). Only meaningful when > 0.
//   - Drop: for delivery sites, silently discard the unit of work
//     (a frame, a batch) instead of failing loudly.
type Action struct {
	Err   error
	Delay time.Duration
	Bytes int
	Drop  bool
}

// Wait imposes the action's injected delay, if any.
func (a *Action) Wait() {
	if a != nil && a.Delay > 0 {
		time.Sleep(a.Delay)
	}
}

// trigger modes: pure counter machines over the point's hit count.
type mode int

const (
	modeOnce mode = iota
	modeEvery
	modeAfter
	modeTimes
	modeAlways
)

// A Program pairs a trigger mode with the action it injects. Build one
// with Once/EveryN/AfterN/TimesN/Always and arm it with Arm.
type Program struct {
	m   mode
	n   uint64
	act Action
}

// Once fires on the first hit only.
func Once(act Action) Program { return Program{m: modeOnce, act: act} }

// EveryN fires on every nth hit (n >= 1).
func EveryN(n uint64, act Action) Program {
	if n == 0 {
		n = 1
	}
	return Program{m: modeEvery, n: n, act: act}
}

// AfterN fires on every hit after the first n.
func AfterN(n uint64, act Action) Program { return Program{m: modeAfter, n: n, act: act} }

// TimesN fires on the first n hits.
func TimesN(n uint64, act Action) Program { return Program{m: modeTimes, n: n, act: act} }

// Always fires on every hit.
func Always(act Action) Program { return Program{m: modeAlways, act: act} }

// program is an armed Program plus its private hit counter. Re-arming
// swaps in a fresh program, so counters restart — deterministic per arm.
type program struct {
	Program
	spec string // rendered form for Snapshot
	hits atomic.Uint64
}

// A Point is one named failpoint. Sites hold the pointer returned by New
// (never look points up on the hot path) and call Check per operation.
type Point struct {
	name  string
	prog  atomic.Pointer[program]
	fires atomic.Uint64
}

// Name returns the point's registered name.
func (p *Point) Name() string { return p.name }

// Check consults the point: nil means "proceed normally" (the common
// case: one atomic load), a non-nil Action means the armed program fired
// this hit. The returned Action is shared and must be treated read-only.
func (p *Point) Check() *Action {
	pr := p.prog.Load()
	if pr == nil {
		return nil
	}
	return p.eval(pr)
}

// eval runs the armed trigger program for one hit (cold path).
func (p *Point) eval(pr *program) *Action {
	hit := pr.hits.Add(1)
	fire := false
	switch pr.m {
	case modeOnce:
		fire = hit == 1
	case modeEvery:
		fire = hit%pr.n == 0
	case modeAfter:
		fire = hit > pr.n
	case modeTimes:
		fire = hit <= pr.n
	case modeAlways:
		fire = true
	}
	if !fire {
		return nil
	}
	p.fires.Add(1)
	return &pr.act
}

// Fires returns how many times this point has fired since process start.
func (p *Point) Fires() uint64 { return p.fires.Load() }

// arm installs a program on this point (replacing any armed one and
// restarting its counters).
func (p *Point) arm(pr Program, spec string) {
	p.prog.Store(&program{Program: pr, spec: spec})
}

// disarm removes any armed program; subsequent Checks are free again.
func (p *Point) disarm() { p.prog.Store(nil) }

// --- registry ---

var (
	regMu sync.Mutex
	reg   = map[string]*Point{}
)

// New registers (or returns the existing) point with the given name.
// Sites call it once at init; Arm may also create points by name before
// the site's package is touched, and both get the same Point.
func New(name string) *Point {
	regMu.Lock()
	defer regMu.Unlock()
	if p, ok := reg[name]; ok {
		return p
	}
	p := &Point{name: name}
	reg[name] = p
	return p
}

// Lookup returns the named point, or nil if it was never created.
func Lookup(name string) *Point {
	regMu.Lock()
	defer regMu.Unlock()
	return reg[name]
}

// Arm installs a trigger program on the named point, creating the point
// if no site has registered it yet (arming before init order reaches the
// site is fine). Re-arming replaces the program and restarts counters.
func Arm(name string, pr Program) {
	New(name).arm(pr, renderProgram(pr))
}

// Disarm removes the program from the named point, reporting whether one
// was armed.
func Disarm(name string) bool {
	p := Lookup(name)
	if p == nil {
		return false
	}
	armed := p.prog.Load() != nil
	p.disarm()
	return armed
}

// DisarmAll disarms every registered point (tests and drill teardown).
func DisarmAll() {
	regMu.Lock()
	pts := make([]*Point, 0, len(reg))
	for _, p := range reg {
		pts = append(pts, p)
	}
	regMu.Unlock()
	for _, p := range pts {
		p.disarm()
	}
}

// PointState is one point's snapshot for status displays.
type PointState struct {
	Name  string
	Armed bool
	// Spec is the armed program in the Set grammar ("" when disarmed).
	Spec string
	// Fires counts how many times the point has fired since process start
	// (across re-arms).
	Fires uint64
}

// Snapshot lists every registered point, sorted by name.
func Snapshot() []PointState {
	regMu.Lock()
	pts := make([]*Point, 0, len(reg))
	for _, p := range reg {
		pts = append(pts, p)
	}
	regMu.Unlock()
	out := make([]PointState, 0, len(pts))
	for _, p := range pts {
		st := PointState{Name: p.name, Fires: p.fires.Load()}
		if pr := p.prog.Load(); pr != nil {
			st.Armed = true
			st.Spec = pr.spec
		}
		out = append(out, st)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Wrap marks an error as injected: the result matches both the original
// error and ErrInjected via errors.Is.
func Wrap(cause error) error {
	if cause == nil {
		return ErrInjected
	}
	return fmt.Errorf("%w: %w", ErrInjected, cause)
}

// --- string grammar ---

// namedErrors is the error vocabulary of the Set grammar. Each injects
// the matching syscall (or io) error, wrapped with ErrInjected, so site
// code reacting to e.g. errors.Is(err, syscall.ENOSPC) behaves exactly
// as it would on the real failure.
var namedErrors = map[string]error{
	"enospc":     syscall.ENOSPC,
	"eio":        syscall.EIO,
	"epipe":      syscall.EPIPE,
	"econnreset": syscall.ECONNRESET,
	"shortwrite": io.ErrShortWrite,
	"err":        nil, // bare ErrInjected
}

// Set arms points from a spec string — the lciotd -faults grammar:
//
//	spec     := entry (';' entry)*
//	entry    := point '=' prog | point '=off'
//	prog     := mode | mode '(' args ')'
//	mode     := 'once' | 'every' | 'after' | 'times' | 'always'
//	args     := [count ','] action | count
//	action   := token ('+' token)*
//	token    := named-error | duration | 'partial:' bytes | 'drop'
//
// Examples:
//
//	store.wal.write=once(enospc)         fail the first write with ENOSPC
//	store.wal.write=once(partial:7+enospc)  7-byte torn write, then ENOSPC
//	store.wal.fsync=every(5,eio)         every 5th fsync fails with EIO
//	sbus.link.send=times(3,200ms)        stall the first 3 sends 200ms
//	sbus.link.send=once(drop)            silently lose one egress batch
//	sbus.shard.handoff=always            force every handoff to overflow
//	store.wal.write=off                  disarm
//
// Entries are applied left to right; the first malformed entry aborts
// with an error (earlier entries stay armed).
func Set(specs string) error {
	for _, entry := range strings.Split(specs, ";") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		name, prog, ok := strings.Cut(entry, "=")
		name, prog = strings.TrimSpace(name), strings.TrimSpace(prog)
		if !ok || name == "" || prog == "" {
			return fmt.Errorf("fault: bad entry %q (want point=prog)", entry)
		}
		if prog == "off" {
			Disarm(name)
			continue
		}
		pr, err := parseProgram(prog)
		if err != nil {
			return fmt.Errorf("fault: %s: %w", name, err)
		}
		New(name).arm(pr, prog)
	}
	return nil
}

// parseProgram parses one prog in the Set grammar.
func parseProgram(s string) (Program, error) {
	mod := s
	args := ""
	if i := strings.IndexByte(s, '('); i >= 0 {
		if !strings.HasSuffix(s, ")") {
			return Program{}, fmt.Errorf("bad program %q", s)
		}
		mod, args = s[:i], s[i+1:len(s)-1]
	}
	var m mode
	needN := false
	switch mod {
	case "once":
		m = modeOnce
	case "every":
		m, needN = modeEvery, true
	case "after":
		m, needN = modeAfter, true
	case "times":
		m, needN = modeTimes, true
	case "always":
		m = modeAlways
	default:
		return Program{}, fmt.Errorf("unknown mode %q", mod)
	}
	var n uint64
	action := args
	if needN {
		count, rest, _ := strings.Cut(args, ",")
		v, err := strconv.ParseUint(strings.TrimSpace(count), 10, 64)
		if err != nil {
			return Program{}, fmt.Errorf("mode %s needs a count: %q", mod, args)
		}
		n, action = v, strings.TrimSpace(rest)
		if m == modeEvery && n == 0 {
			return Program{}, fmt.Errorf("every(0) never fires")
		}
	}
	act, err := parseAction(action)
	if err != nil {
		return Program{}, err
	}
	return Program{m: m, n: n, act: act}, nil
}

// parseAction parses a '+'-joined token list into an Action. An empty
// action is a bare fire (Err = ErrInjected), which generic sites treat
// as a failure and marker-driven sites interpret themselves.
func parseAction(s string) (Action, error) {
	act := Action{}
	if s == "" {
		act.Err = ErrInjected
		return act, nil
	}
	marked := false
	for _, tok := range strings.Split(s, "+") {
		tok = strings.TrimSpace(tok)
		switch {
		case tok == "drop":
			act.Drop = true
			marked = true
		case strings.HasPrefix(tok, "partial:"):
			v, err := strconv.Atoi(tok[len("partial:"):])
			if err != nil || v < 0 {
				return Action{}, fmt.Errorf("bad partial token %q", tok)
			}
			act.Bytes = v
			marked = true
		default:
			if cause, ok := namedErrors[tok]; ok {
				act.Err = Wrap(cause)
				marked = true
				break
			}
			d, err := time.ParseDuration(tok)
			if err != nil || d < 0 {
				return Action{}, fmt.Errorf("unknown action token %q", tok)
			}
			act.Delay = d
			marked = true
		}
	}
	// partial writes are failures: a short write with no error would be
	// silent corruption, which no real disk produces.
	if act.Bytes > 0 && act.Err == nil {
		act.Err = Wrap(io.ErrShortWrite)
	}
	if !marked {
		act.Err = ErrInjected
	}
	return act, nil
}

// renderProgram renders a Program built through the API back into the
// grammar, best effort, for Snapshot.
func renderProgram(pr Program) string {
	var mod string
	switch pr.m {
	case modeOnce:
		mod = "once"
	case modeEvery:
		mod = "every"
	case modeAfter:
		mod = "after"
	case modeTimes:
		mod = "times"
	case modeAlways:
		mod = "always"
	}
	var toks []string
	if pr.act.Bytes > 0 {
		toks = append(toks, "partial:"+strconv.Itoa(pr.act.Bytes))
	}
	if pr.act.Delay > 0 {
		toks = append(toks, pr.act.Delay.String())
	}
	if pr.act.Drop {
		toks = append(toks, "drop")
	}
	if pr.act.Err != nil {
		toks = append(toks, pr.act.Err.Error())
	}
	args := strings.Join(toks, "+")
	switch pr.m {
	case modeEvery, modeAfter, modeTimes:
		if args != "" {
			args = strconv.FormatUint(pr.n, 10) + "," + args
		} else {
			args = strconv.FormatUint(pr.n, 10)
		}
	}
	if args == "" {
		return mod
	}
	return mod + "(" + args + ")"
}
