// Package lanehash is the placement function shared by every sharded
// tier: the bus homes components on shards, the CEP engine homes
// patterns on dispatch lanes, and the policy engine partitions its
// trigger indexes — all with the same FNV-1a hash over the same names,
// so a component's messages, its events' detections and the rules they
// trigger all land on the same lane index. Keeping the function in one
// package makes that alignment a compile-time fact rather than a
// convention.
package lanehash

// Index maps a name to a lane in [0, n) by FNV-1a hash. The mapping is
// pure — a function of the name and the lane count only — so callers can
// predict placement (shard affinity) and tests can construct names that
// land on chosen lanes. n <= 1 always maps to lane 0.
func Index(name string, n int) int {
	if n <= 1 {
		return 0
	}
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for i := 0; i < len(name); i++ {
		h ^= uint32(name[i])
		h *= prime32
	}
	return int(h % uint32(n))
}
