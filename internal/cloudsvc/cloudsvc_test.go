package cloudsvc

import (
	"bytes"
	"errors"
	"testing"

	"lciot/internal/attest"
	"lciot/internal/ifc"
)

func annCtx() ifc.SecurityContext {
	return ifc.MustContext([]ifc.Tag{"medical", "ann"}, nil)
}

func zebCtx() ifc.SecurityContext {
	return ifc.MustContext([]ifc.Tag{"medical", "zeb"}, nil)
}

func newHost(t *testing.T) *Host {
	t.Helper()
	h, err := NewHost("eu-host-1", "eu", 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestDeployAndCapacity(t *testing.T) {
	h, err := NewCloudlet("edge-1", "eu", nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, err := h.Deploy(string(rune('a'+i)), ifc.SecurityContext{}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := h.Deploy("overflow", ifc.SecurityContext{}); !errors.Is(err, ErrCapacity) {
		t.Fatalf("over-capacity deploy = %v", err)
	}
	// Undeploy frees a slot.
	if err := h.Undeploy("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Deploy("replacement", ifc.SecurityContext{}); err != nil {
		t.Fatalf("deploy after undeploy = %v", err)
	}
	if err := h.Undeploy("ghost"); !errors.Is(err, ErrNoApp) {
		t.Fatalf("undeploy ghost = %v", err)
	}
	if _, err := h.App("ghost"); !errors.Is(err, ErrNoApp) {
		t.Fatalf("App(ghost) = %v", err)
	}
	apps := h.Apps()
	if len(apps) != 4 {
		t.Fatalf("apps = %v", apps)
	}
}

func TestDuplicateDeploy(t *testing.T) {
	h := newHost(t)
	if _, err := h.Deploy("a", ifc.SecurityContext{}); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Deploy("a", ifc.SecurityContext{}); !errors.Is(err, ErrDupApp) {
		t.Fatalf("duplicate = %v", err)
	}
}

// TestTenantIsolation verifies the Section 8.2 trust argument: two tenants
// that do not trust each other cannot exchange data except through the
// host's enforcement.
func TestTenantIsolation(t *testing.T) {
	h := newHost(t)
	store := NewStorage(h)
	ann, err := h.Deploy("ann-app", annCtx())
	if err != nil {
		t.Fatal(err)
	}
	zeb, err := h.Deploy("zeb-app", zebCtx())
	if err != nil {
		t.Fatal(err)
	}

	if err := store.Put(ann, "ann-record", []byte("vitals")); err != nil {
		t.Fatal(err)
	}
	// Ann reads her own data.
	got, err := store.Get(ann, "ann-record")
	if err != nil || !bytes.Equal(got, []byte("vitals")) {
		t.Fatalf("Get = %q, %v", got, err)
	}
	// Zeb cannot read Ann's object.
	if _, err := store.Get(zeb, "ann-record"); !errors.Is(err, ifc.ErrFlowDenied) {
		t.Fatalf("cross-tenant read = %v", err)
	}
	// Zeb cannot overwrite it either (his context is not a subset).
	if err := store.Put(zeb, "ann-record", []byte("junk")); !errors.Is(err, ifc.ErrFlowDenied) {
		t.Fatalf("cross-tenant write = %v", err)
	}
	if _, err := store.Get(ann, "missing"); !errors.Is(err, ErrNoObject) {
		t.Fatalf("missing object = %v", err)
	}
	if keys := store.Keys(); len(keys) != 1 || keys[0] != "ann-record" {
		t.Fatalf("keys = %v", keys)
	}
}

// TestAnalyticsWithDeclassifierGate runs the Fig. 6 pattern in the cloud:
// a worker cleared for all patients aggregates their records and releases
// only the anonymised result.
func TestAnalyticsWithDeclassifierGate(t *testing.T) {
	h := newHost(t)
	store := NewStorage(h)

	ann, err := h.Deploy("ann-app", annCtx())
	if err != nil {
		t.Fatal(err)
	}
	zeb, err := h.Deploy("zeb-app", zebCtx())
	if err != nil {
		t.Fatal(err)
	}
	if err := store.Put(ann, "ann-record", []byte("70")); err != nil {
		t.Fatal(err)
	}
	if err := store.Put(zeb, "zeb-record", []byte("80")); err != nil {
		t.Fatal(err)
	}

	merged := ifc.MergeContexts(annCtx(), zebCtx())
	worker, err := h.Deploy("stats-worker", merged)
	if err != nil {
		t.Fatal(err)
	}
	gate := &ifc.Gate{
		Name:   "anonymiser",
		Input:  merged,
		Output: ifc.MustContext([]ifc.Tag{"medical", "stats"}, []ifc.Tag{"anon"}),
		Transform: func([]byte) ([]byte, error) {
			return []byte("count=2"), nil
		},
	}
	if err := worker.Process().Entity().GrantPrivileges(gate.RequiredPrivileges()); err != nil {
		t.Fatal(err)
	}

	err = a(h, store).Aggregate(worker, []string{"ann-record", "zeb-record"}, "stats",
		func(inputs [][]byte) []byte { return bytes.Join(inputs, []byte{','}) }, gate)
	if err != nil {
		t.Fatal(err)
	}

	// A ward manager in the stats context can read the result...
	manager, err := h.Deploy("ward-manager", gate.Output)
	if err != nil {
		t.Fatal(err)
	}
	got, err := store.Get(manager, "stats")
	if err != nil || string(got) != "count=2" {
		t.Fatalf("manager Get = %q, %v", got, err)
	}
	// ...but cannot read the raw records.
	if _, err := store.Get(manager, "ann-record"); !errors.Is(err, ifc.ErrFlowDenied) {
		t.Fatalf("manager raw read = %v", err)
	}
}

func a(h *Host, s *Storage) *Analytics { return NewAnalytics(h, s) }

func TestAnalyticsWithoutGateStaysConfined(t *testing.T) {
	h := newHost(t)
	store := NewStorage(h)
	ann, err := h.Deploy("ann-app", annCtx())
	if err != nil {
		t.Fatal(err)
	}
	if err := store.Put(ann, "r", []byte("x")); err != nil {
		t.Fatal(err)
	}
	worker, err := h.Deploy("worker", annCtx())
	if err != nil {
		t.Fatal(err)
	}
	if err := a(h, store).Aggregate(worker, []string{"r"}, "out",
		func(in [][]byte) []byte { return in[0] }, nil); err != nil {
		t.Fatal(err)
	}
	// The output stays in Ann's context: public readers are refused.
	public, err := h.Deploy("public", ifc.SecurityContext{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := store.Get(public, "out"); !errors.Is(err, ifc.ErrFlowDenied) {
		t.Fatalf("public read of confined output = %v", err)
	}
}

func TestAnalyticsErrors(t *testing.T) {
	h := newHost(t)
	store := NewStorage(h)
	worker, err := h.Deploy("worker", ifc.SecurityContext{})
	if err != nil {
		t.Fatal(err)
	}
	svc := a(h, store)
	if err := svc.Aggregate(worker, nil, "out", nil, nil); !errors.Is(err, ErrNoInputs) {
		t.Fatalf("no inputs = %v", err)
	}
	if err := svc.Aggregate(worker, []string{"ghost"}, "out",
		func(in [][]byte) []byte { return nil }, nil); !errors.Is(err, ErrNoObject) {
		t.Fatalf("ghost input = %v", err)
	}
	// Worker without gate privileges cannot cross.
	gate := &ifc.Gate{Input: ifc.MustContext([]ifc.Tag{"x"}, nil), Output: ifc.SecurityContext{}}
	if err := store.Put(worker, "in", []byte("1")); err != nil {
		t.Fatal(err)
	}
	if err := svc.Aggregate(worker, []string{"in"}, "out",
		func(in [][]byte) []byte { return in[0] }, gate); !errors.Is(err, ifc.ErrPrivilege) {
		t.Fatalf("unprivileged gate = %v", err)
	}
}

// TestHostAttestationWithRegion reproduces the EU-geofence check of [39]:
// a verifier requiring region "eu" accepts the EU host and rejects a US
// host.
func TestHostAttestationWithRegion(t *testing.T) {
	eu := newHost(t)
	us, err := NewHost("us-host-1", "us", 0, nil)
	if err != nil {
		t.Fatal(err)
	}

	v := attest.NewVerifier(1)
	v.Enroll(eu.Name(), eu.TPM().EndorsementKey())
	v.Enroll(us.Name(), us.TPM().EndorsementKey())

	policy := attest.Policy{Region: "eu"}
	if err := v.Attest(eu.TPM(), []int{0}, policy); err != nil {
		t.Fatalf("EU host rejected: %v", err)
	}
	if err := v.Attest(us.TPM(), []int{0}, policy); !errors.Is(err, attest.ErrNoSuchRegion) {
		t.Fatalf("US host = %v", err)
	}
}
