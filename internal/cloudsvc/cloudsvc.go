// Package cloudsvc simulates the cloud end of the IoT (Section 2.2): PaaS
// hosts that run tenant application processes above an IFC-enforcing
// kernel (CamFlow's deployment model), a labelled storage service, an
// analytics service that computes over labelled inputs, and cloudlets —
// "smaller, mobile, and personal/application-specific clouds" that are
// simply capacity-bounded hosts.
//
// The trust argument of Section 8.2 is reproduced structurally: tenants do
// not trust each other, only the host's enforcement mechanism; every
// cross-tenant flow goes through the kernel hook or the storage service's
// checks, and each host carries a TPM for attestation (with geographic
// certification per [44], so an "EU-only" policy is checkable).
package cloudsvc

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"lciot/internal/attest"
	"lciot/internal/audit"
	"lciot/internal/ifc"
	"lciot/internal/oskernel"
)

// Errors reported by cloud services.
var (
	ErrCapacity = errors.New("cloudsvc: host at capacity")
	ErrNoObject = errors.New("cloudsvc: no such object")
	ErrNoInputs = errors.New("cloudsvc: analytics needs at least one input")
	ErrNoApp    = errors.New("cloudsvc: unknown application")
	ErrDupApp   = errors.New("cloudsvc: application name in use")
)

// A Host is one PaaS machine: kernel, TPM, storage, tenant apps.
type Host struct {
	name   string
	kernel *oskernel.Kernel
	tpm    *attest.TPM
	// maxApps bounds deployments; cloudlets use small values.
	maxApps int

	mu   sync.Mutex
	apps map[string]*App
}

// An App is a tenant application process deployed on a host.
type App struct {
	name string
	host *Host
	proc *oskernel.Process
}

// Name returns the application name.
func (a *App) Name() string { return a.name }

// Process exposes the app's kernel process.
func (a *App) Process() *oskernel.Process { return a.proc }

// NewHost provisions a host in the given region. maxApps <= 0 means
// unbounded (a full datacentre host); cloudlets pass a small bound.
func NewHost(name, region string, maxApps int, log *audit.Log) (*Host, error) {
	tpm, err := attest.NewTPM(name)
	if err != nil {
		return nil, err
	}
	tpm.CertifyRegion(region)
	// Measure the "platform" into PCR 0 so attestation has something to
	// verify.
	if err := tpm.Extend(0, []byte("lciot-host:"+name)); err != nil {
		return nil, err
	}
	return &Host{
		name:    name,
		kernel:  oskernel.NewKernel(name, log),
		tpm:     tpm,
		maxApps: maxApps,
		apps:    make(map[string]*App),
	}, nil
}

// NewCloudlet provisions a small edge host (per [78]/[26]) with room for a
// handful of apps.
func NewCloudlet(name, region string, log *audit.Log) (*Host, error) {
	return NewHost(name, region, 4, log)
}

// Name returns the host name.
func (h *Host) Name() string { return h.name }

// Kernel exposes the host's kernel.
func (h *Host) Kernel() *oskernel.Kernel { return h.kernel }

// TPM exposes the host's trusted platform module.
func (h *Host) TPM() *attest.TPM { return h.tpm }

// Deploy starts a tenant application in the given security context.
func (h *Host) Deploy(name string, ctx ifc.SecurityContext) (*App, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.maxApps > 0 && len(h.apps) >= h.maxApps {
		return nil, fmt.Errorf("%w: %d apps", ErrCapacity, len(h.apps))
	}
	if _, dup := h.apps[name]; dup {
		return nil, fmt.Errorf("%w: %q", ErrDupApp, name)
	}
	app := &App{name: name, host: h, proc: h.kernel.Boot(name, ctx)}
	h.apps[name] = app
	return app, nil
}

// App looks a deployed application up.
func (h *Host) App(name string) (*App, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	app, ok := h.apps[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoApp, name)
	}
	return app, nil
}

// Undeploy stops an application.
func (h *Host) Undeploy(name string) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	app, ok := h.apps[name]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNoApp, name)
	}
	h.kernel.Exit(app.proc.PID())
	delete(h.apps, name)
	return nil
}

// Apps lists deployed application names, sorted.
func (h *Host) Apps() []string {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]string, 0, len(h.apps))
	for n := range h.apps {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// A Storage is the labelled object store: objects carry the security
// context of the data they hold, and Put/Get are flow-checked against the
// calling app's context through the host's kernel-file machinery, so every
// access is audited at the kernel layer.
type Storage struct {
	host *Host

	mu   sync.Mutex
	keys map[string]struct{}
}

// NewStorage builds a store on a host.
func NewStorage(h *Host) *Storage {
	return &Storage{host: h, keys: make(map[string]struct{})}
}

// Put stores an object; the object inherits the writing app's context (a
// creation flow) unless it already exists, in which case the write is
// flow-checked against the existing object's label.
func (s *Storage) Put(app *App, key string, data []byte) error {
	path := "/storage/" + key
	s.mu.Lock()
	_, exists := s.keys[key]
	if !exists {
		s.keys[key] = struct{}{}
	}
	s.mu.Unlock()
	if !exists {
		if err := s.host.kernel.Create(app.proc.PID(), path); err != nil {
			return err
		}
	}
	return s.host.kernel.Write(app.proc.PID(), path, data)
}

// Get retrieves an object, flow-checked object→app.
func (s *Storage) Get(app *App, key string) ([]byte, error) {
	s.mu.Lock()
	_, exists := s.keys[key]
	s.mu.Unlock()
	if !exists {
		return nil, fmt.Errorf("%w: %q", ErrNoObject, key)
	}
	return s.host.kernel.Read(app.proc.PID(), "/storage/"+key)
}

// Keys lists stored object keys, sorted.
func (s *Storage) Keys() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.keys))
	for k := range s.keys {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Analytics runs computations over labelled inputs. The worker process
// first raises itself into the merge of the input contexts (it must hold
// the privileges to do so), computes, and optionally crosses a declassifier
// gate before writing the result — the cloud-scale version of Fig. 6.
type Analytics struct {
	host    *Host
	storage *Storage
}

// NewAnalytics builds an analytics service over a host and its store.
func NewAnalytics(h *Host, s *Storage) *Analytics {
	return &Analytics{host: h, storage: s}
}

// Aggregate reads the input objects as worker, applies fn to their
// concatenated contents, and writes the result to outKey. When gate is
// non-nil the result crosses it (declassification/endorsement) before the
// write; otherwise the result stays in the worker's (merged) context.
func (a *Analytics) Aggregate(worker *App, inputKeys []string, outKey string,
	fn func(inputs [][]byte) []byte, gate *ifc.Gate) error {
	if len(inputKeys) == 0 {
		return ErrNoInputs
	}
	inputs := make([][]byte, 0, len(inputKeys))
	for _, k := range inputKeys {
		data, err := a.storage.Get(worker, k)
		if err != nil {
			return fmt.Errorf("cloudsvc: input %q: %w", k, err)
		}
		inputs = append(inputs, data)
	}
	result := fn(inputs)
	if gate != nil {
		out, err := gate.Cross(worker.proc.Entity(), result)
		if err != nil {
			return err
		}
		// The gate's output context becomes the worker's context for the
		// write, so the stored object is labelled with the declassified
		// context.
		if err := a.host.kernel.SetContext(worker.proc.PID(), gate.Output); err != nil {
			return err
		}
		result = out
	}
	return a.storage.Put(worker, outKey, result)
}
