package cloudsvc

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync"
)

// This file adds the differential-privacy mechanism the paper lists among
// the common approaches (Section 4): "Differential privacy regulates the
// queries on a dataset and modifies result sets to balance the provision
// of useful, statistical-based results with the probability of identifying
// individual records. This is useful for data analytics."
//
// DPQuerier implements the Laplace mechanism with a per-analyst privacy
// budget: each query spends epsilon; when the budget is exhausted further
// queries are refused — the "regulates the queries" half of the sentence.

// Errors reported by the DP layer.
var (
	ErrBudgetExhausted = errors.New("cloudsvc: privacy budget exhausted")
	ErrBadEpsilon      = errors.New("cloudsvc: epsilon must be positive")
	ErrNoData          = errors.New("cloudsvc: empty dataset")
)

// A DPQuerier answers aggregate queries over float datasets with Laplace
// noise calibrated to the query sensitivity, tracking a per-analyst budget.
type DPQuerier struct {
	rng *rand.Rand

	mu sync.Mutex
	// remaining maps analyst -> remaining epsilon.
	remaining map[string]float64
}

// NewDPQuerier builds a querier. The seed fixes the noise stream so
// experiments reproduce; production would use crypto randomness.
func NewDPQuerier(seed int64) *DPQuerier {
	return &DPQuerier{
		rng:       rand.New(rand.NewSource(seed)),
		remaining: make(map[string]float64),
	}
}

// GrantBudget assigns an analyst a total epsilon budget.
func (q *DPQuerier) GrantBudget(analyst string, epsilon float64) {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.remaining[analyst] = epsilon
}

// Remaining returns the analyst's unspent budget.
func (q *DPQuerier) Remaining(analyst string) float64 {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.remaining[analyst]
}

// spend debits epsilon or refuses.
func (q *DPQuerier) spend(analyst string, epsilon float64) error {
	if epsilon <= 0 {
		return fmt.Errorf("%w: %g", ErrBadEpsilon, epsilon)
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.remaining[analyst] < epsilon {
		return fmt.Errorf("%w: analyst %q has %g, needs %g",
			ErrBudgetExhausted, analyst, q.remaining[analyst], epsilon)
	}
	q.remaining[analyst] -= epsilon
	return nil
}

// laplace draws Laplace(0, scale) noise.
func (q *DPQuerier) laplace(scale float64) float64 {
	q.mu.Lock()
	u := q.rng.Float64() - 0.5
	q.mu.Unlock()
	return -scale * sign(u) * math.Log(1-2*math.Abs(u))
}

func sign(f float64) float64 {
	if f < 0 {
		return -1
	}
	return 1
}

// Count answers a noisy count (sensitivity 1), spending epsilon.
func (q *DPQuerier) Count(analyst string, data []float64, epsilon float64) (float64, error) {
	if err := q.spend(analyst, epsilon); err != nil {
		return 0, err
	}
	return float64(len(data)) + q.laplace(1/epsilon), nil
}

// Mean answers a noisy mean of values clamped to [lo, hi] (sensitivity
// (hi-lo)/n), spending epsilon.
func (q *DPQuerier) Mean(analyst string, data []float64, lo, hi, epsilon float64) (float64, error) {
	if len(data) == 0 {
		return 0, ErrNoData
	}
	if err := q.spend(analyst, epsilon); err != nil {
		return 0, err
	}
	sum := 0.0
	for _, v := range data {
		sum += math.Min(hi, math.Max(lo, v))
	}
	mean := sum / float64(len(data))
	sensitivity := (hi - lo) / float64(len(data))
	return mean + q.laplace(sensitivity/epsilon), nil
}
