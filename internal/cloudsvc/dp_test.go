package cloudsvc

import (
	"errors"
	"math"
	"testing"
)

func TestDPBudgetLifecycle(t *testing.T) {
	q := NewDPQuerier(1)
	q.GrantBudget("researcher", 1.0)
	data := []float64{70, 72, 68, 75}

	if _, err := q.Count("researcher", data, 0.5); err != nil {
		t.Fatal(err)
	}
	if got := q.Remaining("researcher"); got != 0.5 {
		t.Fatalf("remaining = %g", got)
	}
	if _, err := q.Count("researcher", data, 0.5); err != nil {
		t.Fatal(err)
	}
	// Budget exhausted: the query regime refuses.
	if _, err := q.Count("researcher", data, 0.1); !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("over-budget query = %v", err)
	}
	// Unknown analysts have zero budget.
	if _, err := q.Count("stranger", data, 0.1); !errors.Is(err, ErrBudgetExhausted) {
		t.Fatalf("stranger query = %v", err)
	}
}

func TestDPEpsilonValidation(t *testing.T) {
	q := NewDPQuerier(1)
	q.GrantBudget("a", 1)
	if _, err := q.Count("a", nil, 0); !errors.Is(err, ErrBadEpsilon) {
		t.Fatalf("zero epsilon = %v", err)
	}
	if _, err := q.Mean("a", []float64{1}, 0, 1, -1); !errors.Is(err, ErrBadEpsilon) {
		t.Fatalf("negative epsilon = %v", err)
	}
	if _, err := q.Mean("a", nil, 0, 1, 0.1); !errors.Is(err, ErrNoData) {
		t.Fatalf("empty mean = %v", err)
	}
}

func TestDPCountAccuracy(t *testing.T) {
	q := NewDPQuerier(42)
	q.GrantBudget("a", 1000)
	data := make([]float64, 100)

	// With a large epsilon the noisy count concentrates near the truth.
	sum := 0.0
	const runs = 200
	for i := 0; i < runs; i++ {
		c, err := q.Count("a", data, 5)
		if err != nil {
			t.Fatal(err)
		}
		sum += c
	}
	avg := sum / runs
	if math.Abs(avg-100) > 1 {
		t.Fatalf("mean noisy count = %g, want ~100", avg)
	}
}

func TestDPNoiseScalesWithEpsilon(t *testing.T) {
	spread := func(epsilon float64) float64 {
		q := NewDPQuerier(7)
		q.GrantBudget("a", math.Inf(1))
		data := make([]float64, 50)
		const runs = 300
		var devSum float64
		for i := 0; i < runs; i++ {
			c, err := q.Count("a", data, epsilon)
			if err != nil {
				t.Fatal(err)
			}
			devSum += math.Abs(c - 50)
		}
		return devSum / runs
	}
	loose := spread(0.1) // strong privacy, big noise
	tight := spread(10)  // weak privacy, small noise
	if loose < 5*tight {
		t.Fatalf("noise at eps=0.1 (%g) should dwarf eps=10 (%g)", loose, tight)
	}
}

func TestDPMeanClampsOutliers(t *testing.T) {
	q := NewDPQuerier(3)
	q.GrantBudget("a", math.Inf(1))
	// One adversarial outlier; clamping bounds its influence.
	data := []float64{70, 71, 69, 1e9}
	sum := 0.0
	const runs = 200
	for i := 0; i < runs; i++ {
		m, err := q.Mean("a", data, 0, 200, 5)
		if err != nil {
			t.Fatal(err)
		}
		sum += m
	}
	avg := sum / runs
	// Clamped mean is (70+71+69+200)/4 = 102.5; without clamping it would
	// be ~2.5e8.
	if math.Abs(avg-102.5) > 5 {
		t.Fatalf("clamped mean = %g, want ~102.5", avg)
	}
}

func TestDPDeterministicWithSeed(t *testing.T) {
	run := func() []float64 {
		q := NewDPQuerier(99)
		q.GrantBudget("a", 100)
		var out []float64
		for i := 0; i < 5; i++ {
			c, err := q.Count("a", make([]float64, 10), 1)
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, c)
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("seeded runs diverge at %d: %g vs %g", i, a[i], b[i])
		}
	}
}
