// Package obligation is the data-management layer the paper's legal
// analysis demands (Singh et al. §3/§7, Challenge 6): policy must express
// not only who may see a flow now, but what must happen to data *after* it
// flows — retention limits, the right to erasure, jurisdictional residency,
// purpose limitation — and the middleware must both enforce those duties
// and demonstrate enforcement through audit.
//
// The package compiles obligation clauses (an extension of the policy
// language, see policy.Obligation) into per-tag obligation sets and
// supports the three enforcement layers:
//
//   - Hot path: Apply attaches the compiled residency/purpose facets to a
//     security context, so violations are denied by the ordinary cached
//     flow check (ifc.CheckFlow) at no extra cost.
//   - Background path: Scheduler (scheduler.go) tracks retention deadlines
//     per tag in a sharded timer wheel; the domain core sweeps it and
//     executes expiry and erasure.
//   - Evidence path: the core records every obligation action in the audit
//     log, and audit.RetentionReport proves the outcome.
package obligation

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"lciot/internal/ifc"
	"lciot/internal/policy"
)

// A Set is the compiled obligation set for one tag: everything the
// middleware must do to (and may never do with) data carrying the tag.
type Set struct {
	Tag ifc.Tag
	// Retain bounds how long data under the tag may be kept; 0 means no
	// retention limit.
	Retain time.Duration
	// EraseOn lists detection pattern names whose firing erases the tag.
	EraseOn []string
	// Residency is the allowed-jurisdiction facet (empty = anywhere).
	Residency ifc.Label
	// Purpose is the allowed-purpose facet (empty = any purpose).
	Purpose ifc.Label
}

// String renders the compiled set for operators (policyctl -explain).
func (s *Set) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "tag %s:", s.Tag)
	if s.Retain > 0 {
		fmt.Fprintf(&b, " retain %s;", s.Retain)
	}
	for _, ev := range s.EraseOn {
		fmt.Fprintf(&b, " erase on %q;", ev)
	}
	if !s.Residency.IsEmpty() {
		fmt.Fprintf(&b, " residency %s;", s.Residency)
	}
	if !s.Purpose.IsEmpty() {
		fmt.Fprintf(&b, " purpose %s;", s.Purpose)
	}
	if s.Retain == 0 && len(s.EraseOn) == 0 && s.Residency.IsEmpty() && s.Purpose.IsEmpty() {
		b.WriteString(" (no duties)")
	}
	return b.String()
}

// A Table holds the compiled obligation sets of one domain, immutable
// after Compile (the core swaps whole tables atomically on policy load).
type Table struct {
	sets map[ifc.Tag]*Set
	// eraseOn indexes tags by the detection pattern that erases them.
	eraseOn map[string][]ifc.Tag
}

// Compile builds a table from parsed obligation declarations. Declaring
// two obligations for the same tag is an error: obligations are legal
// duties, and silently merging two sources of law invites exactly the
// ambiguity the linter exists to prevent.
func Compile(decls []*policy.Obligation) (*Table, error) {
	t := &Table{sets: make(map[ifc.Tag]*Set, len(decls)), eraseOn: make(map[string][]ifc.Tag)}
	for _, d := range decls {
		if _, dup := t.sets[d.Tag]; dup {
			return nil, fmt.Errorf("obligation: duplicate obligation for tag %q", d.Tag)
		}
		if d.HasRetain && d.Retain <= 0 {
			return nil, fmt.Errorf("obligation: %q: retain %v is not a retention period", d.Name, d.Retain)
		}
		residency, err := ifc.NewLabel(d.Residency...)
		if err != nil {
			return nil, fmt.Errorf("obligation: %q: residency: %w", d.Name, err)
		}
		purpose, err := ifc.NewLabel(d.Purpose...)
		if err != nil {
			return nil, fmt.Errorf("obligation: %q: purpose: %w", d.Name, err)
		}
		s := &Set{
			Tag:       d.Tag,
			EraseOn:   append([]string(nil), d.EraseOn...),
			Residency: residency,
			Purpose:   purpose,
		}
		if d.HasRetain {
			s.Retain = d.Retain
		}
		t.sets[d.Tag] = s
		for _, ev := range d.EraseOn {
			t.eraseOn[ev] = append(t.eraseOn[ev], d.Tag)
		}
	}
	return t, nil
}

// Lookup returns the obligation set for a tag.
func (t *Table) Lookup(tag ifc.Tag) (*Set, bool) {
	if t == nil {
		return nil, false
	}
	s, ok := t.sets[tag]
	return s, ok
}

// Len returns the number of obligated tags.
func (t *Table) Len() int {
	if t == nil {
		return 0
	}
	return len(t.sets)
}

// HasRetention reports whether any obligated tag carries a retention
// limit (whether a store rescan on policy load could schedule anything).
func (t *Table) HasRetention() bool {
	if t == nil {
		return false
	}
	for _, s := range t.sets {
		if s.Retain > 0 {
			return true
		}
	}
	return false
}

// Tags returns the obligated tags in sorted order.
func (t *Table) Tags() []ifc.Tag {
	if t == nil {
		return nil
	}
	out := make([]ifc.Tag, 0, len(t.sets))
	for tag := range t.sets {
		out = append(out, tag)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// EraseTriggers returns the tags whose obligations erase on the given
// detection pattern, in sorted order.
func (t *Table) EraseTriggers(pattern string) []ifc.Tag {
	if t == nil {
		return nil
	}
	tags := append([]ifc.Tag(nil), t.eraseOn[pattern]...)
	sort.Slice(tags, func(i, j int) bool { return tags[i] < tags[j] })
	return tags
}

// Apply attaches the obligations of every secrecy tag in ctx to the
// context's facets: residency and purpose constraints of all obligated
// tags narrow whatever facets the context already carries. Contexts
// without obligated tags are returned unchanged, so unobligated domains
// pay a label walk and nothing else.
func (t *Table) Apply(ctx ifc.SecurityContext) ifc.SecurityContext {
	if t == nil || len(t.sets) == 0 {
		return ctx
	}
	for _, tag := range ctx.Secrecy.Tags() {
		s, ok := t.sets[tag]
		if !ok {
			continue
		}
		if !s.Residency.IsEmpty() {
			ctx.Jurisdiction = ifc.MergeFacet(ctx.Jurisdiction, s.Residency)
		}
		if !s.Purpose.IsEmpty() {
			ctx.Purpose = ifc.MergeFacet(ctx.Purpose, s.Purpose)
		}
	}
	return ctx
}

// Retention returns the tightest retention limit any secrecy tag of the
// label carries, together with the tag imposing it; ok is false when no
// tag is retention-limited.
func (t *Table) Retention(secrecy ifc.Label) (d time.Duration, tag ifc.Tag, ok bool) {
	if t == nil || len(t.sets) == 0 {
		return 0, "", false
	}
	for _, candidate := range secrecy.Tags() {
		s, found := t.sets[candidate]
		if !found || s.Retain <= 0 {
			continue
		}
		if !ok || s.Retain < d {
			d, tag, ok = s.Retain, candidate, true
		}
	}
	return d, tag, ok
}

// DefaultJurisdictions returns the jurisdictions the linter recognises out
// of the box. Callers extend the returned map (it is a fresh copy) with
// deployment-specific regions via LintOptions.
func DefaultJurisdictions() map[ifc.Tag]bool {
	out := make(map[ifc.Tag]bool, 16)
	for _, j := range []ifc.Tag{
		"eu", "eea", "uk", "us", "ca", "ch", "jp", "au", "nz", "sg", "kr", "br", "in", "global",
	} {
		out[j] = true
	}
	return out
}

// LintOptions configures Lint.
type LintOptions struct {
	// KnownJurisdictions is the recognised jurisdiction registry; nil means
	// DefaultJurisdictions().
	KnownJurisdictions map[ifc.Tag]bool
	// KnownPurposes, when non-nil, is the purpose-tag registry (typically
	// the tags registered in the names zone tree, or referenced elsewhere
	// in the policy set); purposes outside it are flagged. Nil skips the
	// registry check.
	KnownPurposes map[ifc.Tag]bool
}

// Lint statically checks the obligation declarations of a policy set:
// zero retention periods, unknown jurisdictions, purposes missing from the
// registry, duplicate declarations, and reserved facet tags. Findings are
// warnings in sorted order — guards and context cannot be evaluated
// statically, so none of this replaces runtime enforcement.
func Lint(set *policy.PolicySet, opts LintOptions) []string {
	jur := opts.KnownJurisdictions
	if jur == nil {
		jur = DefaultJurisdictions()
	}
	var findings []string
	seen := make(map[ifc.Tag]string)
	for _, d := range set.Obligations {
		if prev, dup := seen[d.Tag]; dup {
			findings = append(findings, fmt.Sprintf(
				"obligations %q and %q both bind tag %q (duties must have one source)", prev, d.Name, d.Tag))
		} else {
			seen[d.Tag] = d.Name
		}
		if d.HasRetain && d.Retain <= 0 {
			findings = append(findings, fmt.Sprintf(
				"obligation %q: retain %v keeps nothing — use erase, or drop the clause", d.Name, d.Retain))
		}
		for _, j := range d.Residency {
			if j == ifc.FacetNone {
				findings = append(findings, fmt.Sprintf(
					"obligation %q: residency %s is the reserved deny-everywhere sentinel", d.Name, j))
				continue
			}
			if !jur[j] {
				findings = append(findings, fmt.Sprintf(
					"obligation %q: unknown jurisdiction %q", d.Name, j))
			}
		}
		for _, p := range d.Purpose {
			if p == ifc.FacetNone {
				findings = append(findings, fmt.Sprintf(
					"obligation %q: purpose %s is the reserved deny-everything sentinel", d.Name, p))
				continue
			}
			if opts.KnownPurposes != nil && !opts.KnownPurposes[p] {
				findings = append(findings, fmt.Sprintf(
					"obligation %q: purpose tag %q not in names registry", d.Name, p))
			}
		}
		if !d.HasRetain && len(d.EraseOn) == 0 && len(d.Residency) == 0 && len(d.Purpose) == 0 {
			findings = append(findings, fmt.Sprintf("obligation %q declares no duties", d.Name))
		}
	}
	sort.Strings(findings)
	return findings
}
