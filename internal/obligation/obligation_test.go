package obligation

import (
	"strings"
	"testing"
	"time"

	"lciot/internal/ifc"
	"lciot/internal/policy"
)

const gdprSrc = `
obligation "gdpr-medical" on medical {
  retain 720h;
  erase on "subject-erasure";
  residency eu uk;
  purpose research treatment;
}
obligation "telemetry" on telemetry {
  retain 24h;
}
`

func compile(t *testing.T, src string) *Table {
	t.Helper()
	set := policy.MustParse(src)
	tab, err := Compile(set.Obligations)
	if err != nil {
		t.Fatal(err)
	}
	return tab
}

func TestCompileAndLookup(t *testing.T) {
	tab := compile(t, gdprSrc)
	if tab.Len() != 2 {
		t.Fatalf("table holds %d tags", tab.Len())
	}
	s, ok := tab.Lookup("medical")
	if !ok {
		t.Fatal("medical not compiled")
	}
	if s.Retain != 720*time.Hour || !s.Residency.Equal(ifc.MustLabel("eu", "uk")) ||
		!s.Purpose.Equal(ifc.MustLabel("research", "treatment")) {
		t.Fatalf("set = %s", s)
	}
	if got := tab.EraseTriggers("subject-erasure"); len(got) != 1 || got[0] != "medical" {
		t.Fatalf("erase triggers = %v", got)
	}
	if got := tab.EraseTriggers("nothing"); got != nil {
		t.Fatalf("phantom triggers = %v", got)
	}
}

func TestCompileRejectsDuplicatesAndZeroRetain(t *testing.T) {
	set := policy.MustParse(`
obligation "a" on x { retain 1h; }
obligation "b" on x { retain 2h; }`)
	if _, err := Compile(set.Obligations); err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Fatalf("duplicate compile = %v", err)
	}
	set2 := policy.MustParse(`obligation "a" on x { retain 0s; }`)
	if _, err := Compile(set2.Obligations); err == nil {
		t.Fatal("retain 0 compiled")
	}
}

func TestApplyAttachesFacets(t *testing.T) {
	tab := compile(t, gdprSrc)
	ctx := ifc.MustContext([]ifc.Tag{"ann", "medical"}, nil)
	got := tab.Apply(ctx)
	if !got.Jurisdiction.Equal(ifc.MustLabel("eu", "uk")) {
		t.Fatalf("jurisdiction = %s", got.Jurisdiction)
	}
	if !got.Purpose.Equal(ifc.MustLabel("research", "treatment")) {
		t.Fatalf("purpose = %s", got.Purpose)
	}
	// Unobligated contexts come back unchanged.
	plain := ifc.MustContext([]ifc.Tag{"ann"}, nil)
	if !tab.Apply(plain).Equal(plain) {
		t.Fatal("unobligated context changed")
	}
	// An existing narrower facet narrows further, never widens.
	narrowed := ctx.WithJurisdiction(ifc.MustLabel("eu"))
	if got := tab.Apply(narrowed); !got.Jurisdiction.Equal(ifc.MustLabel("eu")) {
		t.Fatalf("pre-narrowed jurisdiction widened to %s", got.Jurisdiction)
	}
	// Disjoint constraints collapse to the deny-everywhere sentinel.
	offshore := ctx.WithJurisdiction(ifc.MustLabel("us"))
	if got := tab.Apply(offshore); !got.Jurisdiction.Equal(ifc.MustLabel(ifc.FacetNone)) {
		t.Fatalf("disjoint jurisdictions = %s", got.Jurisdiction)
	}
}

func TestFacetFlowDenial(t *testing.T) {
	tab := compile(t, gdprSrc)
	src := tab.Apply(ifc.MustContext([]ifc.Tag{"medical"}, nil))
	inEU := ifc.MustContext([]ifc.Tag{"medical"}, nil).
		WithJurisdiction(ifc.MustLabel("eu")).WithPurpose(ifc.MustLabel("research"))
	inUS := ifc.MustContext([]ifc.Tag{"medical"}, nil).
		WithJurisdiction(ifc.MustLabel("us")).WithPurpose(ifc.MustLabel("research"))
	adTech := ifc.MustContext([]ifc.Tag{"medical"}, nil).
		WithJurisdiction(ifc.MustLabel("eu")).WithPurpose(ifc.MustLabel("advertising"))
	undeclared := ifc.MustContext([]ifc.Tag{"medical"}, nil)

	if d := ifc.CheckFlow(src, inEU); !d.Allowed {
		t.Fatalf("eu/research flow denied: %+v", d)
	}
	if d := ifc.CheckFlow(src, inUS); d.Allowed || d.DisallowedJurisdiction.IsEmpty() {
		t.Fatalf("us flow = %+v, want residency denial", d)
	}
	if d := ifc.CheckFlow(src, adTech); d.Allowed || d.DisallowedPurpose.IsEmpty() {
		t.Fatalf("advertising flow = %+v, want purpose denial", d)
	}
	// Fail closed: a destination declaring nothing cannot hold
	// residency-constrained data.
	if d := ifc.CheckFlow(src, undeclared); d.Allowed {
		t.Fatalf("undeclared destination accepted constrained data: %+v", d)
	}
	if err := ifc.EnforceFlow(src, inUS); err == nil ||
		!strings.Contains(err.Error(), "residency restricted") {
		t.Fatalf("residency error = %v", err)
	}
}

func TestRetention(t *testing.T) {
	tab := compile(t, gdprSrc)
	d, tag, ok := tab.Retention(ifc.MustLabel("ann", "medical", "telemetry"))
	if !ok || tag != "telemetry" || d != 24*time.Hour {
		t.Fatalf("retention = %v %q %v", d, tag, ok)
	}
	if _, _, ok := tab.Retention(ifc.MustLabel("ann")); ok {
		t.Fatal("unobligated label has retention")
	}
}

func TestLint(t *testing.T) {
	set := policy.MustParse(`
obligation "a" on x { residency atlantis; }
obligation "b" on x { retain 1h; }
obligation "c" on y { purpose undeclared-purpose; }
obligation "d" on z { }
`)
	findings := Lint(set, LintOptions{KnownPurposes: map[ifc.Tag]bool{"research": true}})
	joined := strings.Join(findings, "\n")
	for _, want := range []string{
		`unknown jurisdiction "atlantis"`,
		`both bind tag "x"`,
		`purpose tag "undeclared-purpose" not in names registry`,
		`"d" declares no duties`,
	} {
		if !strings.Contains(joined, want) {
			t.Errorf("lint findings missing %q:\n%s", want, joined)
		}
	}
	// A clean declaration lints clean.
	clean := policy.MustParse(`obligation "g" on medical { retain 1h; residency eu; purpose research; }`)
	if got := Lint(clean, LintOptions{KnownPurposes: map[ifc.Tag]bool{"research": true}}); len(got) != 0 {
		t.Fatalf("clean set flagged: %v", got)
	}
}
