package obligation

import (
	"sync"
	"time"

	"lciot/internal/ifc"
)

// An Entry is one scheduled obligation deadline: at Due, the datum
// identified by DataID (ingested under Tag, audited at sequence Seq) must
// be erased.
type Entry struct {
	Tag    ifc.Tag
	DataID string
	// Seq is the audit sequence number of the record that scheduled the
	// deadline — the redaction sweep's starting hint.
	Seq uint64
	Due time.Time
}

// entryKey identifies a deadline by what it erases.
type entryKey struct {
	tag    ifc.Tag
	dataID string
}

// A Scheduler is a sharded hashed timer wheel over tag→deadline sets.
// Deadlines land in coarse time buckets (Granularity wide); each shard
// keeps a min-heap of bucket indexes, so a sweep pops whole buckets in
// deadline order and stops at the first future one — cost proportional
// to due work plus entries popped, never to the total backlog — while
// the shard map keeps concurrent ingest from serialising on one lock. A
// (tag, dataID) pair is scheduled at most once, at its earliest deadline
// — retention runs from first collection, and re-observing a datum must
// not extend its life.
//
// The scheduler is in-memory state rebuilt from the audit WAL on boot
// (core.Domain does the rebuild), so deadlines survive crashes without a
// second durability mechanism.
type Scheduler struct {
	granularity time.Duration
	shards      []schedShard
}

type schedShard struct {
	mu sync.Mutex
	// buckets maps bucket index (unixNano / granularity) to its entries.
	buckets map[int64][]Entry
	// byKey maps a scheduled datum to its bucket, for dedup and Cancel.
	byKey map[entryKey]int64
	// order is a min-heap of bucket indexes, pushed when a bucket is
	// created and lazily popped by Due: a sweep inspects buckets in
	// deadline order and stops at the first future one, so its cost is
	// proportional to due work, never to the total backlog. Cancel may
	// leave a stale index (bucket already deleted); Due skips it on pop.
	order []int64
}

// heapPush inserts b into the shard's bucket-order heap.
func (sh *schedShard) heapPush(b int64) {
	sh.order = append(sh.order, b)
	i := len(sh.order) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if sh.order[parent] <= sh.order[i] {
			break
		}
		sh.order[parent], sh.order[i] = sh.order[i], sh.order[parent]
		i = parent
	}
}

// heapPop removes the smallest bucket index.
func (sh *schedShard) heapPop() {
	n := len(sh.order) - 1
	sh.order[0] = sh.order[n]
	sh.order = sh.order[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && sh.order[l] < sh.order[small] {
			small = l
		}
		if r < n && sh.order[r] < sh.order[small] {
			small = r
		}
		if small == i {
			return
		}
		sh.order[i], sh.order[small] = sh.order[small], sh.order[i]
		i = small
	}
}

// NewScheduler builds a scheduler with the given bucket width and shard
// count. granularity <= 0 means one second; shards <= 0 means 16.
func NewScheduler(granularity time.Duration, shards int) *Scheduler {
	if granularity <= 0 {
		granularity = time.Second
	}
	if shards <= 0 {
		shards = 16
	}
	s := &Scheduler{granularity: granularity, shards: make([]schedShard, shards)}
	for i := range s.shards {
		s.shards[i].buckets = make(map[int64][]Entry)
		s.shards[i].byKey = make(map[entryKey]int64)
	}
	return s
}

// shardFor hashes a key onto its shard (FNV-1a over tag and dataID).
func (s *Scheduler) shardFor(k entryKey) *schedShard {
	h := uint64(14695981039346656037)
	for i := 0; i < len(k.tag); i++ {
		h = (h ^ uint64(k.tag[i])) * 1099511628211
	}
	for i := 0; i < len(k.dataID); i++ {
		h = (h ^ uint64(k.dataID[i])) * 1099511628211
	}
	return &s.shards[h%uint64(len(s.shards))]
}

// bucketOf maps a deadline to its wheel bucket.
func (s *Scheduler) bucketOf(t time.Time) int64 {
	return t.UnixNano() / int64(s.granularity)
}

// Schedule registers a deadline. Returns true when the entry was newly
// scheduled, false when the datum was already tracked (the earlier
// deadline wins; an earlier re-schedule moves the entry).
func (s *Scheduler) Schedule(e Entry) bool {
	k := entryKey{tag: e.Tag, dataID: e.DataID}
	sh := s.shardFor(k)
	b := s.bucketOf(e.Due)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if prev, ok := sh.byKey[k]; ok {
		if b >= prev {
			return false // existing (earlier or equal) deadline wins
		}
		sh.removeLocked(k, prev)
	}
	if _, exists := sh.buckets[b]; !exists {
		sh.heapPush(b)
	}
	sh.buckets[b] = append(sh.buckets[b], e)
	sh.byKey[k] = b
	return true
}

// Cancel drops a scheduled deadline (the datum was erased early), and
// reports whether it was tracked.
func (s *Scheduler) Cancel(tag ifc.Tag, dataID string) bool {
	k := entryKey{tag: tag, dataID: dataID}
	sh := s.shardFor(k)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	b, ok := sh.byKey[k]
	if !ok {
		return false
	}
	sh.removeLocked(k, b)
	return true
}

// removeLocked deletes the entry for k from bucket b; the shard lock must
// be held.
func (sh *schedShard) removeLocked(k entryKey, b int64) {
	entries := sh.buckets[b]
	for i := range entries {
		if entries[i].Tag == k.tag && entries[i].DataID == k.dataID {
			entries[i] = entries[len(entries)-1]
			entries = entries[:len(entries)-1]
			break
		}
	}
	if len(entries) == 0 {
		delete(sh.buckets, b)
	} else {
		sh.buckets[b] = entries
	}
	delete(sh.byKey, k)
}

// PurgeIf drops every tracked deadline the predicate accepts (e.g. the
// obligations it was scheduled under were retired by a policy reload),
// returning how many were dropped. Emptied buckets leave stale heap
// indexes behind; Due skips them lazily.
func (s *Scheduler) PurgeIf(drop func(Entry) bool) int {
	n := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		for b, entries := range sh.buckets {
			kept := entries[:0]
			for _, e := range entries {
				if drop(e) {
					delete(sh.byKey, entryKey{tag: e.Tag, dataID: e.DataID})
					n++
					continue
				}
				kept = append(kept, e)
			}
			if len(kept) == 0 {
				delete(sh.buckets, b)
			} else {
				clear(entries[len(kept):])
				sh.buckets[b] = kept
			}
		}
		sh.mu.Unlock()
	}
	return n
}

// Len returns the number of tracked deadlines.
func (s *Scheduler) Len() int {
	n := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		n += len(sh.byKey)
		sh.mu.Unlock()
	}
	return n
}

// Due pops up to max entries whose deadline has passed at now (max <= 0
// means all). The sweep visits whole buckets — the wheel's batched-sweep
// property: cost is proportional to elapsed buckets plus entries popped,
// never to the total backlog. Entries popped are no longer tracked; the
// caller owns executing (and auditing) them.
func (s *Scheduler) Due(now time.Time, max int) []Entry {
	nowBucket := s.bucketOf(now)
	var out []Entry
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		for len(sh.order) > 0 {
			b := sh.order[0]
			if b > nowBucket {
				break // everything else in this shard is in the future
			}
			entries, live := sh.buckets[b]
			if !live {
				sh.heapPop() // stale index: Cancel emptied the bucket
				continue
			}
			// Partition the bucket: entries still ahead of now
			// (sub-granularity skew) or beyond the max cut stay tracked.
			kept := entries[:0]
			for _, e := range entries {
				if e.Due.After(now) || (max > 0 && len(out) >= max) {
					kept = append(kept, e)
					continue
				}
				delete(sh.byKey, entryKey{tag: e.Tag, dataID: e.DataID})
				out = append(out, e)
			}
			if len(kept) == 0 {
				delete(sh.buckets, b)
				sh.heapPop()
			} else {
				// Skew or max cut left residents: keep the index and stop
				// here — the next sweep retries this bucket first.
				sh.buckets[b] = kept
				break
			}
			if max > 0 && len(out) >= max {
				break
			}
		}
		sh.mu.Unlock()
		if max > 0 && len(out) >= max {
			break
		}
	}
	return out
}
