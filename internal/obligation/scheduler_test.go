package obligation

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestSchedulerSweep(t *testing.T) {
	s := NewScheduler(time.Second, 4)
	base := time.Unix(1000, 0)
	for i := 0; i < 100; i++ {
		s.Schedule(Entry{
			Tag: "medical", DataID: fmt.Sprintf("d-%d", i), Seq: uint64(i),
			Due: base.Add(time.Duration(i) * time.Second),
		})
	}
	if s.Len() != 100 {
		t.Fatalf("len = %d", s.Len())
	}
	due := s.Due(base.Add(9*time.Second), 0)
	if len(due) != 10 {
		t.Fatalf("due popped %d entries, want 10", len(due))
	}
	for _, e := range due {
		if e.Due.After(base.Add(9 * time.Second)) {
			t.Fatalf("popped future entry %+v", e)
		}
	}
	if s.Len() != 90 {
		t.Fatalf("len after sweep = %d", s.Len())
	}
	// Nothing else is due yet.
	if again := s.Due(base.Add(9*time.Second), 0); len(again) != 0 {
		t.Fatalf("second sweep popped %d", len(again))
	}
	// Batched sweeps honour max and leave the remainder tracked.
	batch := s.Due(base.Add(time.Hour), 25)
	if len(batch) != 25 || s.Len() != 65 {
		t.Fatalf("batched sweep = %d popped, %d left", len(batch), s.Len())
	}
	rest := s.Due(base.Add(time.Hour), 0)
	if len(rest) != 65 || s.Len() != 0 {
		t.Fatalf("final sweep = %d popped, %d left", len(rest), s.Len())
	}
}

func TestSchedulerDedupEarliestWins(t *testing.T) {
	s := NewScheduler(time.Second, 4)
	base := time.Unix(2000, 0)
	if !s.Schedule(Entry{Tag: "t", DataID: "d", Due: base.Add(10 * time.Second)}) {
		t.Fatal("first schedule rejected")
	}
	// A later deadline for the same datum must not extend its life.
	if s.Schedule(Entry{Tag: "t", DataID: "d", Due: base.Add(time.Hour)}) {
		t.Fatal("later re-schedule accepted")
	}
	// An earlier one moves it forward.
	if !s.Schedule(Entry{Tag: "t", DataID: "d", Due: base.Add(2 * time.Second)}) {
		t.Fatal("earlier re-schedule rejected")
	}
	if s.Len() != 1 {
		t.Fatalf("len = %d", s.Len())
	}
	due := s.Due(base.Add(5*time.Second), 0)
	if len(due) != 1 {
		t.Fatalf("entry not due at moved deadline (%d popped)", len(due))
	}
}

func TestSchedulerCancel(t *testing.T) {
	s := NewScheduler(time.Second, 4)
	base := time.Unix(3000, 0)
	s.Schedule(Entry{Tag: "t", DataID: "d", Due: base})
	if !s.Cancel("t", "d") {
		t.Fatal("cancel missed tracked entry")
	}
	if s.Cancel("t", "d") {
		t.Fatal("double cancel reported tracked")
	}
	if got := s.Due(base.Add(time.Hour), 0); len(got) != 0 {
		t.Fatalf("cancelled entry swept: %v", got)
	}
}

func TestSchedulerConcurrent(t *testing.T) {
	s := NewScheduler(time.Millisecond, 8)
	base := time.Unix(4000, 0)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				s.Schedule(Entry{
					Tag: "t", DataID: fmt.Sprintf("g%d-%d", g, i),
					Due: base.Add(time.Duration(i) * time.Millisecond),
				})
			}
		}(g)
	}
	var popped sync.Map
	var sweeps sync.WaitGroup
	for g := 0; g < 4; g++ {
		sweeps.Add(1)
		go func() {
			defer sweeps.Done()
			for i := 0; i < 50; i++ {
				for _, e := range s.Due(base.Add(time.Hour), 100) {
					if _, dup := popped.LoadOrStore(string(e.Tag)+"/"+e.DataID, true); dup {
						t.Errorf("entry %s/%s popped twice", e.Tag, e.DataID)
					}
				}
			}
		}()
	}
	wg.Wait()
	sweeps.Wait()
	for _, e := range s.Due(base.Add(time.Hour), 0) {
		if _, dup := popped.LoadOrStore(string(e.Tag)+"/"+e.DataID, true); dup {
			t.Errorf("entry %s/%s popped twice", e.Tag, e.DataID)
		}
	}
	n := 0
	popped.Range(func(_, _ any) bool { n++; return true })
	if n != 8000 {
		t.Fatalf("popped %d distinct entries, want 8000", n)
	}
}
