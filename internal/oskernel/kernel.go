// Package oskernel simulates the OS-level enforcement layer of CamFlow
// (Section 8.2.1): a kernel whose objects — processes, files, pipes — all
// carry IFC security metadata, with an LSM-style security hook interposed
// on every inter-entity transfer. The hook both enforces the flow rule and
// records the attempt, so "all data flows can be tracked to enable audit,
// provenance and potentially demonstrate compliance".
//
// Substitution note (see DESIGN.md): this replaces the Linux kernel + LSM
// module. The paper's argument depends on *where* enforcement happens
// (below applications, unavoidable, on every flow), which the simulation
// preserves: there is no API for moving bytes between kernel objects that
// bypasses the hook. Hooks can be disabled wholesale to measure their cost
// (benchmark B1), mirroring the paper's "LSM performance overhead is
// minimal" claim.
package oskernel

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"lciot/internal/audit"
	"lciot/internal/ifc"
)

// Errors reported by the kernel.
var (
	ErrNoProcess  = errors.New("oskernel: no such process")
	ErrNoFile     = errors.New("oskernel: no such file")
	ErrNoPipe     = errors.New("oskernel: no such pipe")
	ErrExists     = errors.New("oskernel: file exists")
	ErrUnmediated = errors.New("oskernel: unmediated external communication prevented")
)

// A PID identifies a process.
type PID uint64

// A PipeID identifies a pipe.
type PipeID uint64

// A Process is an active kernel entity.
type Process struct {
	pid    PID
	entity *ifc.Entity
	// substrateDelegate marks the messaging-substrate process allowed to
	// perform external transfers on behalf of labelled processes (Fig. 9).
	substrateDelegate bool
}

// PID returns the process identifier.
func (p *Process) PID() PID { return p.pid }

// Entity exposes the process's IFC entity.
func (p *Process) Entity() *ifc.Entity { return p.entity }

// A file is a passive kernel object with content.
type file struct {
	entity *ifc.Entity
	data   []byte
}

// A pipe is a unidirectional kernel buffer between processes.
type pipe struct {
	entity *ifc.Entity
	buf    [][]byte
}

// A Kernel is one simulated OS instance.
type Kernel struct {
	name string
	log  *audit.Log
	// hooksEnabled gates the LSM layer; disabling it removes both checks
	// and audit, the baseline for benchmark B1.
	hooksEnabled bool

	mu       sync.Mutex
	procs    map[PID]*Process
	files    map[string]*file
	pipes    map[PipeID]*pipe
	nextPID  PID
	nextPipe PipeID
}

// NewKernel boots a kernel with LSM hooks enabled. A nil log allocates a
// private one.
func NewKernel(name string, log *audit.Log) *Kernel {
	if log == nil {
		log = audit.NewLog(nil)
	}
	return &Kernel{
		name:         name,
		log:          log,
		hooksEnabled: true,
		procs:        make(map[PID]*Process),
		files:        make(map[string]*file),
		pipes:        make(map[PipeID]*pipe),
	}
}

// SetHooksEnabled toggles the LSM layer (benchmarking only; a production
// kernel would never expose this).
func (k *Kernel) SetHooksEnabled(on bool) {
	k.mu.Lock()
	defer k.mu.Unlock()
	k.hooksEnabled = on
}

// Log exposes the kernel's audit log.
func (k *Kernel) Log() *audit.Log { return k.log }

// Boot creates an initial process with the given context (e.g. an
// application manager); it is the only way to obtain a process without a
// parent.
func (k *Kernel) Boot(name string, ctx ifc.SecurityContext) *Process {
	k.mu.Lock()
	defer k.mu.Unlock()
	k.nextPID++
	p := &Process{
		pid:    k.nextPID,
		entity: ifc.NewEntity(ifc.EntityID(fmt.Sprintf("%s:pid%d:%s", k.name, k.nextPID, name)), ctx),
	}
	k.procs[p.pid] = p
	return p
}

// Process looks a process up.
func (k *Kernel) Process(pid PID) (*Process, error) {
	k.mu.Lock()
	defer k.mu.Unlock()
	p, ok := k.procs[pid]
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrNoProcess, pid)
	}
	return p, nil
}

// Fork spawns a child of the given process. Creation flows: the child
// inherits the parent's labels but never its privileges (Section 6).
func (k *Kernel) Fork(parent PID, name string) (*Process, error) {
	p, err := k.Process(parent)
	if err != nil {
		return nil, err
	}
	k.mu.Lock()
	defer k.mu.Unlock()
	k.nextPID++
	child := &Process{
		pid: k.nextPID,
		entity: ifc.NewEntity(
			ifc.EntityID(fmt.Sprintf("%s:pid%d:%s", k.name, k.nextPID, name)),
			ifc.CreationContext(p.entity.Context()),
		),
	}
	k.procs[child.pid] = child
	return child, nil
}

// Exit removes a process.
func (k *Kernel) Exit(pid PID) {
	k.mu.Lock()
	defer k.mu.Unlock()
	delete(k.procs, pid)
}

// MarkSubstrate designates a process as the messaging-substrate delegate
// permitted to perform external transfers (Fig. 9's CamFlow-Messaging).
func (k *Kernel) MarkSubstrate(pid PID) error {
	p, err := k.Process(pid)
	if err != nil {
		return err
	}
	p.substrateDelegate = true
	return nil
}

// hook is the LSM security hook: it enforces the IFC flow rule between a
// subject and an object and audits the outcome. Every kernel operation that
// moves data passes through here.
func (k *Kernel) hook(op string, src, dst *ifc.Entity, dataID string) error {
	if !k.hooksEnabled {
		return nil
	}
	srcCtx, dstCtx := src.Context(), dst.Context()
	if err := ifc.EnforceFlow(srcCtx, dstCtx); err != nil {
		k.log.AppendAsync(audit.Record{
			Kind: audit.FlowDenied, Layer: audit.LayerKernel, Domain: k.name,
			Src: src.ID(), Dst: dst.ID(), SrcCtx: srcCtx, DstCtx: dstCtx,
			DataID: dataID, Note: op + " denied: " + err.Error(),
		})
		return fmt.Errorf("%s: %w", op, err)
	}
	// The hook runs on every data-moving kernel operation; the audit
	// record is batched onto the background hasher (audit.Log.AppendAsync)
	// so enforcement does not serialise behind the hash chain.
	k.log.AppendAsync(audit.Record{
		Kind: audit.FlowAllowed, Layer: audit.LayerKernel, Domain: k.name,
		Src: src.ID(), Dst: dst.ID(), SrcCtx: srcCtx, DstCtx: dstCtx,
		DataID: dataID, Note: op,
	})
	return nil
}

// Create makes a new file owned by the process; per the creation-flow rule
// it inherits the process's labels.
func (k *Kernel) Create(pid PID, path string) error {
	p, err := k.Process(pid)
	if err != nil {
		return err
	}
	k.mu.Lock()
	defer k.mu.Unlock()
	if _, dup := k.files[path]; dup {
		return fmt.Errorf("%w: %q", ErrExists, path)
	}
	k.files[path] = &file{
		entity: ifc.NewPassiveEntity(
			ifc.EntityID(k.name+":file:"+path),
			ifc.CreationContext(p.entity.Context()),
		),
	}
	return nil
}

// Write appends data to a file, subject to the process→file flow check.
func (k *Kernel) Write(pid PID, path string, data []byte) error {
	p, err := k.Process(pid)
	if err != nil {
		return err
	}
	k.mu.Lock()
	f, ok := k.files[path]
	k.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %q", ErrNoFile, path)
	}
	if err := k.hook("write", p.entity, f.entity, path); err != nil {
		return err
	}
	k.mu.Lock()
	f.data = append(f.data, data...)
	k.mu.Unlock()
	return nil
}

// Read returns a file's content, subject to the file→process flow check.
func (k *Kernel) Read(pid PID, path string) ([]byte, error) {
	p, err := k.Process(pid)
	if err != nil {
		return nil, err
	}
	k.mu.Lock()
	f, ok := k.files[path]
	k.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoFile, path)
	}
	if err := k.hook("read", f.entity, p.entity, path); err != nil {
		return nil, err
	}
	k.mu.Lock()
	out := make([]byte, len(f.data))
	copy(out, f.data)
	k.mu.Unlock()
	return out, nil
}

// MkPipe creates a pipe labelled with the creating process's context.
func (k *Kernel) MkPipe(pid PID) (PipeID, error) {
	p, err := k.Process(pid)
	if err != nil {
		return 0, err
	}
	k.mu.Lock()
	defer k.mu.Unlock()
	k.nextPipe++
	k.pipes[k.nextPipe] = &pipe{
		entity: ifc.NewPassiveEntity(
			ifc.EntityID(fmt.Sprintf("%s:pipe%d", k.name, k.nextPipe)),
			ifc.CreationContext(p.entity.Context()),
		),
	}
	return k.nextPipe, nil
}

// WritePipe sends one datagram into a pipe (process→pipe flow).
func (k *Kernel) WritePipe(pid PID, id PipeID, data []byte) error {
	p, err := k.Process(pid)
	if err != nil {
		return err
	}
	k.mu.Lock()
	pp, ok := k.pipes[id]
	k.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %d", ErrNoPipe, id)
	}
	if err := k.hook("pipe-write", p.entity, pp.entity, fmt.Sprintf("pipe%d", id)); err != nil {
		return err
	}
	owned := make([]byte, len(data))
	copy(owned, data)
	k.mu.Lock()
	pp.buf = append(pp.buf, owned)
	k.mu.Unlock()
	return nil
}

// ReadPipe receives the oldest datagram from a pipe (pipe→process flow).
func (k *Kernel) ReadPipe(pid PID, id PipeID) ([]byte, error) {
	p, err := k.Process(pid)
	if err != nil {
		return nil, err
	}
	k.mu.Lock()
	pp, ok := k.pipes[id]
	k.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrNoPipe, id)
	}
	if err := k.hook("pipe-read", pp.entity, p.entity, fmt.Sprintf("pipe%d", id)); err != nil {
		return nil, err
	}
	k.mu.Lock()
	defer k.mu.Unlock()
	if len(pp.buf) == 0 {
		return nil, nil
	}
	out := pp.buf[0]
	pp.buf = pp.buf[1:]
	return out, nil
}

// SetContext relabels a process via its own privileges, audited as a
// context change.
func (k *Kernel) SetContext(pid PID, to ifc.SecurityContext) error {
	p, err := k.Process(pid)
	if err != nil {
		return err
	}
	from := p.entity.Context()
	if err := p.entity.SetContext(to); err != nil {
		return err
	}
	if k.hooksEnabled {
		k.log.Append(audit.Record{
			Kind: audit.ContextChange, Layer: audit.LayerKernel, Domain: k.name,
			Src: p.entity.ID(), SrcCtx: from, DstCtx: to, Note: "setcontext",
		})
	}
	return nil
}

// ExternalSend models a process attempting network I/O outside the managed
// substrate. CamFlow prevents "unmediated external communication of
// labelled processes, since the context of security across the remote
// machine is unknown to the kernel": only public processes or the marked
// substrate delegate may pass.
func (k *Kernel) ExternalSend(pid PID, data []byte) error {
	p, err := k.Process(pid)
	if err != nil {
		return err
	}
	ctx := p.entity.Context()
	if ctx.IsPublic() || p.substrateDelegate {
		if k.hooksEnabled {
			k.log.AppendAsync(audit.Record{
				Kind: audit.FlowAllowed, Layer: audit.LayerKernel, Domain: k.name,
				Src: p.entity.ID(), Dst: "external", SrcCtx: ctx, Note: "external send",
			})
		}
		return nil
	}
	if k.hooksEnabled {
		k.log.AppendAsync(audit.Record{
			Kind: audit.FlowDenied, Layer: audit.LayerKernel, Domain: k.name,
			Src: p.entity.ID(), Dst: "external", SrcCtx: ctx,
			Note: "unmediated external communication prevented",
		})
	}
	return fmt.Errorf("%w: pid %d %s", ErrUnmediated, pid, ctx)
}

// Files lists file paths, sorted (diagnostics).
func (k *Kernel) Files() []string {
	k.mu.Lock()
	defer k.mu.Unlock()
	out := make([]string, 0, len(k.files))
	for p := range k.files {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}
