package oskernel

import (
	"bytes"
	"errors"
	"testing"

	"lciot/internal/audit"
	"lciot/internal/ifc"
)

func medicalCtx() ifc.SecurityContext {
	return ifc.MustContext([]ifc.Tag{"medical", "ann"}, nil)
}

func TestForkInheritsLabelsNotPrivileges(t *testing.T) {
	k := NewKernel("node", nil)
	parent := k.Boot("manager", medicalCtx())
	if err := parent.Entity().GrantPrivileges(ifc.OwnerPrivileges("ann")); err != nil {
		t.Fatal(err)
	}
	child, err := k.Fork(parent.PID(), "worker")
	if err != nil {
		t.Fatal(err)
	}
	if !child.Entity().Context().Equal(medicalCtx()) {
		t.Fatalf("child context = %v", child.Entity().Context())
	}
	if !child.Entity().Privileges().IsEmpty() {
		t.Fatal("child inherited privileges")
	}
	if _, err := k.Fork(9999, "x"); !errors.Is(err, ErrNoProcess) {
		t.Fatalf("fork of ghost = %v", err)
	}
}

func TestFileFlowEnforcement(t *testing.T) {
	k := NewKernel("node", nil)
	medical := k.Boot("medical-app", medicalCtx())
	public := k.Boot("public-app", ifc.SecurityContext{})

	if err := k.Create(medical.PID(), "/data/ann"); err != nil {
		t.Fatal(err)
	}
	if err := k.Create(medical.PID(), "/data/ann"); !errors.Is(err, ErrExists) {
		t.Fatalf("duplicate create = %v", err)
	}
	if err := k.Write(medical.PID(), "/data/ann", []byte("vitals")); err != nil {
		t.Fatal(err)
	}
	got, err := k.Read(medical.PID(), "/data/ann")
	if err != nil || !bytes.Equal(got, []byte("vitals")) {
		t.Fatalf("read = %q, %v", got, err)
	}

	// A public process cannot read the labelled file...
	if _, err := k.Read(public.PID(), "/data/ann"); !errors.Is(err, ifc.ErrFlowDenied) {
		t.Fatalf("public read = %v", err)
	}
	// ...but may write into it (public flows anywhere).
	if err := k.Write(public.PID(), "/data/ann", []byte("!")); err != nil {
		t.Fatalf("public write = %v", err)
	}
	// And the medical process cannot write to a public file.
	if err := k.Create(public.PID(), "/tmp/pub"); err != nil {
		t.Fatal(err)
	}
	if err := k.Write(medical.PID(), "/tmp/pub", []byte("leak")); !errors.Is(err, ifc.ErrFlowDenied) {
		t.Fatalf("leaking write = %v", err)
	}
	if _, err := k.Read(medical.PID(), "/ghost"); !errors.Is(err, ErrNoFile) {
		t.Fatalf("read of ghost = %v", err)
	}
}

func TestFileReadIsolatesBuffer(t *testing.T) {
	k := NewKernel("node", nil)
	p := k.Boot("app", ifc.SecurityContext{})
	if err := k.Create(p.PID(), "/f"); err != nil {
		t.Fatal(err)
	}
	if err := k.Write(p.PID(), "/f", []byte("abc")); err != nil {
		t.Fatal(err)
	}
	got, err := k.Read(p.PID(), "/f")
	if err != nil {
		t.Fatal(err)
	}
	got[0] = 'X'
	again, err := k.Read(p.PID(), "/f")
	if err != nil || again[0] != 'a' {
		t.Fatal("Read aliases kernel buffer")
	}
}

func TestPipeFlowEnforcement(t *testing.T) {
	k := NewKernel("node", nil)
	producer := k.Boot("producer", medicalCtx())
	consumer := k.Boot("consumer", medicalCtx())
	outsider := k.Boot("outsider", ifc.SecurityContext{})

	id, err := k.MkPipe(producer.PID())
	if err != nil {
		t.Fatal(err)
	}
	if err := k.WritePipe(producer.PID(), id, []byte("m1")); err != nil {
		t.Fatal(err)
	}
	if err := k.WritePipe(producer.PID(), id, []byte("m2")); err != nil {
		t.Fatal(err)
	}
	got, err := k.ReadPipe(consumer.PID(), id)
	if err != nil || string(got) != "m1" {
		t.Fatalf("ReadPipe = %q, %v", got, err)
	}
	// FIFO order.
	got, _ = k.ReadPipe(consumer.PID(), id)
	if string(got) != "m2" {
		t.Fatalf("second ReadPipe = %q", got)
	}
	// Empty pipe returns nil without error.
	if got, err := k.ReadPipe(consumer.PID(), id); err != nil || got != nil {
		t.Fatalf("empty ReadPipe = %q, %v", got, err)
	}
	// The outsider cannot read from the labelled pipe.
	if err := k.WritePipe(producer.PID(), id, []byte("secret")); err != nil {
		t.Fatal(err)
	}
	if _, err := k.ReadPipe(outsider.PID(), id); !errors.Is(err, ifc.ErrFlowDenied) {
		t.Fatalf("outsider ReadPipe = %v", err)
	}
	if _, err := k.ReadPipe(consumer.PID(), 999); !errors.Is(err, ErrNoPipe) {
		t.Fatalf("ghost pipe = %v", err)
	}
}

func TestSetContextRequiresPrivilege(t *testing.T) {
	k := NewKernel("node", nil)
	p := k.Boot("app", medicalCtx())
	if err := k.SetContext(p.PID(), ifc.SecurityContext{}); !errors.Is(err, ifc.ErrPrivilege) {
		t.Fatalf("unprivileged setcontext = %v", err)
	}
	if err := p.Entity().GrantPrivileges(ifc.Privileges{
		RemoveSecrecy: ifc.MustLabel("ann", "medical"),
	}); err != nil {
		t.Fatal(err)
	}
	if err := k.SetContext(p.PID(), ifc.SecurityContext{}); err != nil {
		t.Fatal(err)
	}
	changes := k.Log().Select(func(r audit.Record) bool { return r.Kind == audit.ContextChange })
	if len(changes) != 1 {
		t.Fatalf("context-change records = %d", len(changes))
	}
}

func TestUnmediatedExternalCommunicationPrevented(t *testing.T) {
	k := NewKernel("node", nil)
	labelled := k.Boot("app", medicalCtx())
	public := k.Boot("web", ifc.SecurityContext{})
	substrate := k.Boot("camflow-messaging", medicalCtx())
	if err := k.MarkSubstrate(substrate.PID()); err != nil {
		t.Fatal(err)
	}

	if err := k.ExternalSend(labelled.PID(), []byte("x")); !errors.Is(err, ErrUnmediated) {
		t.Fatalf("labelled external send = %v", err)
	}
	if err := k.ExternalSend(public.PID(), []byte("x")); err != nil {
		t.Fatalf("public external send = %v", err)
	}
	if err := k.ExternalSend(substrate.PID(), []byte("x")); err != nil {
		t.Fatalf("substrate external send = %v", err)
	}
}

func TestEveryFlowIsAudited(t *testing.T) {
	k := NewKernel("node", nil)
	p := k.Boot("app", medicalCtx())
	outsider := k.Boot("outsider", ifc.SecurityContext{})
	if err := k.Create(p.PID(), "/f"); err != nil {
		t.Fatal(err)
	}
	_ = k.Write(p.PID(), "/f", []byte("1")) // allowed
	_, _ = k.Read(outsider.PID(), "/f")     // denied
	_, _ = k.Read(p.PID(), "/f")            // allowed

	recs := k.Log().Select(nil)
	var allowed, denied int
	for _, r := range recs {
		switch r.Kind {
		case audit.FlowAllowed:
			allowed++
		case audit.FlowDenied:
			denied++
		}
		if r.Layer != audit.LayerKernel {
			t.Fatalf("record layer = %v", r.Layer)
		}
	}
	if allowed != 2 || denied != 1 {
		t.Fatalf("allowed = %d, denied = %d", allowed, denied)
	}
	if bad, err := k.Log().Verify(); err != nil || bad != -1 {
		t.Fatalf("log verify = %d, %v", bad, err)
	}
}

func TestHooksDisabledSkipsEnforcementAndAudit(t *testing.T) {
	k := NewKernel("node", nil)
	k.SetHooksEnabled(false)
	medical := k.Boot("app", medicalCtx())
	public := k.Boot("pub", ifc.SecurityContext{})
	if err := k.Create(medical.PID(), "/f"); err != nil {
		t.Fatal(err)
	}
	if err := k.Write(medical.PID(), "/f", []byte("x")); err != nil {
		t.Fatal(err)
	}
	// Without hooks the (illegal) read passes and nothing is logged —
	// the baseline world the paper argues against.
	if _, err := k.Read(public.PID(), "/f"); err != nil {
		t.Fatalf("unhooked read = %v", err)
	}
	if k.Log().Len() != 0 {
		t.Fatalf("log has %d records with hooks off", k.Log().Len())
	}
}

func TestExitRemovesProcess(t *testing.T) {
	k := NewKernel("node", nil)
	p := k.Boot("app", ifc.SecurityContext{})
	k.Exit(p.PID())
	if _, err := k.Process(p.PID()); !errors.Is(err, ErrNoProcess) {
		t.Fatalf("process after exit = %v", err)
	}
}

func TestFilesListing(t *testing.T) {
	k := NewKernel("node", nil)
	p := k.Boot("app", ifc.SecurityContext{})
	for _, path := range []string{"/b", "/a"} {
		if err := k.Create(p.PID(), path); err != nil {
			t.Fatal(err)
		}
	}
	files := k.Files()
	if len(files) != 2 || files[0] != "/a" {
		t.Fatalf("Files = %v", files)
	}
}
