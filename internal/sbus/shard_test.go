package sbus

import (
	"fmt"
	"math/rand"
	"strconv"
	"sync"
	"testing"
	"time"

	"lciot/internal/ifc"
	"lciot/internal/msg"
)

// nameOnShard finds a component name with the given prefix that hashes to
// the wanted shard — shard placement is a pure function of the name, so
// tests can construct topologies with known affinity.
func nameOnShard(b *Bus, prefix string, shard int) string {
	for k := 0; ; k++ {
		name := prefix + strconv.Itoa(k)
		if b.ShardOf(name) == shard {
			return name
		}
	}
}

func seqSchema() *msg.Schema {
	return msg.MustSchema("seq", ifc.EmptyLabel,
		msg.Field{Name: "src", Type: msg.TString, Required: true},
		msg.Field{Name: "n", Type: msg.TFloat, Required: true},
	)
}

// seqRecorder records, per source, the order sequence numbers arrived in.
type seqRecorder struct {
	mu    sync.Mutex
	seqs  map[string][]int
	total int
}

func (r *seqRecorder) handler() Handler {
	return func(m *msg.Message, _ Delivery) {
		src, _ := m.Get("src")
		n, _ := m.Get("n")
		r.mu.Lock()
		if r.seqs == nil {
			r.seqs = map[string][]int{}
		}
		r.seqs[src.Str] = append(r.seqs[src.Str], int(n.Float))
		r.total++
		r.mu.Unlock()
	}
}

func (r *seqRecorder) count() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// TestCrossShardHandoffOrdering is the handoff property test: sources on
// several shards publish numbered messages to sinks on other shards, and
// every sink must observe each source's sequence exactly once, in publish
// order — the per-channel FIFO guarantee the ring handoff provides while
// it has capacity. Topologies are randomized across seeds; run under
// -race this also pins the handoff path's memory discipline.
func TestCrossShardHandoffOrdering(t *testing.T) {
	const shards = 4
	for seed := int64(0); seed < 5; seed++ {
		r := rand.New(rand.NewSource(seed))
		bus := NewShardedBus("sharded", shards, permissiveACL(), nil, nil)

		nSrc := r.Intn(3) + 2
		nSink := r.Intn(2) + 1
		const perSrc = 500

		recs := make([]*seqRecorder, nSink)
		sinkNames := make([]string, nSink)
		for i := range recs {
			recs[i] = &seqRecorder{}
			sinkNames[i] = nameOnShard(bus, fmt.Sprintf("sink-%d-", i), r.Intn(shards))
			if _, err := bus.Register(sinkNames[i], "p", ifc.SecurityContext{}, recs[i].handler(),
				EndpointSpec{Name: "in", Dir: Sink, Schema: seqSchema()}); err != nil {
				t.Fatal(err)
			}
		}
		srcs := make([]*Component, nSrc)
		for i := range srcs {
			// Place each source on a different shard than at least its first
			// sink, so handoffs actually cross shards.
			shard := (bus.ShardOf(sinkNames[0]) + 1 + r.Intn(shards-1)) % shards
			name := nameOnShard(bus, fmt.Sprintf("src-%d-", i), shard)
			c, err := bus.Register(name, "p", ifc.SecurityContext{}, nil,
				EndpointSpec{Name: "out", Dir: Source, Schema: seqSchema()})
			if err != nil {
				t.Fatal(err)
			}
			srcs[i] = c
			for _, sink := range sinkNames {
				if err := bus.Connect("p", name+".out", sink+".in"); err != nil {
					t.Fatal(err)
				}
			}
		}

		var wg sync.WaitGroup
		for _, src := range srcs {
			wg.Add(1)
			go func(c *Component) {
				defer wg.Done()
				for n := 0; n < perSrc; n++ {
					m := msg.New("seq").Set("src", msg.Str(c.Name())).Set("n", msg.Float(float64(n)))
					if _, err := c.Publish("out", m); err != nil {
						t.Error(err)
						return
					}
				}
			}(src)
		}
		wg.Wait()

		want := nSrc * perSrc
		for _, rec := range recs {
			rec := rec
			waitFor(t, func() bool { return rec.count() == want }, "all handoffs delivered")
			rec.mu.Lock()
			for src, got := range rec.seqs {
				if len(got) != perSrc {
					t.Fatalf("seed %d: sink saw %d messages from %s, want %d", seed, len(got), src, perSrc)
				}
				for n, v := range got {
					if v != n {
						t.Fatalf("seed %d: sink saw %s seq %d at position %d — handoff reordered", seed, src, v, n)
					}
				}
			}
			rec.mu.Unlock()
		}

		// Some deliveries must actually have crossed shards.
		var handoffs uint64
		for _, s := range bus.ShardStats() {
			handoffs += s.HandoffsIn + s.Overflow
		}
		if handoffs == 0 {
			t.Fatalf("seed %d: no cross-shard handoffs occurred; topology did not exercise the ring", seed)
		}
		bus.Close()
	}
}

// TestSetContextStormLeavesOtherShardsUncontended proves re-evaluation
// isolation directly: with one shard's write lock held hostage, a storm
// of SetContext calls on components homed on *other* shards must complete
// — their re-evaluation never touches the victim shard's lock, snapshot
// or stamps. On the old single-lock bus this test would deadlock.
func TestSetContextStormLeavesOtherShardsUncontended(t *testing.T) {
	const shards = 4
	bus := NewShardedBus("sharded", shards, permissiveACL(), nil, nil)
	defer bus.Close()
	schema := seqSchema()
	ctxA := ifc.MustContext([]ifc.Tag{"a"}, nil)

	mk := func(name string, ctx ifc.SecurityContext) *Component {
		c, err := bus.Register(name, "p", ctx, nil,
			EndpointSpec{Name: "out", Dir: Source, Schema: schema},
			EndpointSpec{Name: "in", Dir: Sink, Schema: schema})
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Entity().GrantPrivileges(ifc.OwnerPrivileges("a")); err != nil {
			t.Fatal(err)
		}
		return c
	}

	// Victim topology on shard 3: a connected pair that must stay untouched.
	victimShard := 3
	vSrc := mk(nameOnShard(bus, "victim-src-", victimShard), ctxA)
	vDst := mk(nameOnShard(bus, "victim-dst-", victimShard), ctxA)
	if bus.ShardOf(vDst.Name()) != victimShard {
		t.Fatalf("victim sink landed on shard %d", bus.ShardOf(vDst.Name()))
	}
	if err := bus.Connect("p", vSrc.Name()+".out", vDst.Name()+".in"); err != nil {
		t.Fatal(err)
	}

	// Storm topology on shards 0-2: sources with channels whose legality
	// flips with every context change, forcing real re-evaluation work.
	var stormers []*Component
	for s := 0; s < victimShard; s++ {
		src := mk(nameOnShard(bus, fmt.Sprintf("storm-src-%d-", s), s), ctxA)
		dst := mk(nameOnShard(bus, fmt.Sprintf("storm-dst-%d-", s), s), ctxA)
		if err := bus.Connect("p", src.Name()+".out", dst.Name()+".in"); err != nil {
			t.Fatal(err)
		}
		stormers = append(stormers, src)
	}

	// Hold the victim shard's write lock for the whole storm. Any storm
	// code path that needed it would deadlock (the test would time out).
	victim := bus.shards[victimShard]
	victim.mu.Lock()
	beforeRouting := victim.routing.Load()
	beforeReevals := victim.reevals.Load()
	beforeStamp := bus.channelByKey(channelKey{
		src: vSrc.Name() + ".out", dst: vDst.Name() + ".in"}).verified.Load()

	var wg sync.WaitGroup
	for _, c := range stormers {
		wg.Add(1)
		go func(c *Component) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				target := ctxA
				if i%2 == 0 {
					target = ifc.SecurityContext{}
				}
				if err := c.SetContext(target); err != nil {
					t.Error(err)
					return
				}
			}
		}(c)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("SetContext storm blocked while another shard's lock was held")
	}

	victim.mu.Unlock()

	if victim.routing.Load() != beforeRouting {
		t.Fatal("storm on other shards swapped the victim shard's routing snapshot")
	}
	if got := victim.reevals.Load(); got != beforeReevals {
		t.Fatalf("victim shard recorded %d re-evaluations during a storm that never touched it", got-beforeReevals)
	}
	if bus.channelByKey(channelKey{src: vSrc.Name() + ".out", dst: vDst.Name() + ".in"}).verified.Load() != beforeStamp {
		t.Fatal("victim channel was re-stamped by a storm on other shards")
	}
}

// TestShardedConcurrentPublishAndReconfigure is the multi-shard analogue
// of TestConcurrentPublishAndReconfigure: publishers on every shard drive
// same- and cross-shard channels while the control plane churns
// registrations, connections and re-evaluations. Run under -race this
// pins the per-shard copy-on-write discipline and the ring handoff.
func TestShardedConcurrentPublishAndReconfigure(t *testing.T) {
	const shards = 4
	bus := NewShardedBus("sharded", shards, openACL(), nil, nil)
	defer bus.Close()
	rec := &sinkRecorder{}
	sinkName := nameOnShard(bus, "analyser-", 2)
	if _, err := bus.Register(sinkName, "hospital", annCtx(), rec.handler(),
		EndpointSpec{Name: "in", Dir: Sink, Schema: vitalsSchema()}); err != nil {
		t.Fatal(err)
	}
	var srcs []*Component
	for s := 0; s < shards; s++ {
		name := nameOnShard(bus, fmt.Sprintf("device-%d-", s), s)
		src, err := bus.Register(name, "hospital", annCtx(), nil,
			EndpointSpec{Name: "out", Dir: Source, Schema: vitalsSchema()})
		if err != nil {
			t.Fatal(err)
		}
		if err := bus.Connect("hospital", name+".out", sinkName+".in"); err != nil {
			t.Fatal(err)
		}
		srcs = append(srcs, src)
	}

	var wg sync.WaitGroup
	for _, src := range srcs {
		wg.Add(1)
		go func(c *Component) {
			defer wg.Done()
			m := vitalsMessage("ann", 72)
			for i := 0; i < 300; i++ {
				if _, err := c.Publish("out", m); err != nil {
					t.Error(err)
					return
				}
			}
		}(src)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			name := "extra-sink" + strconv.Itoa(i)
			if _, err := bus.Register(name, "hospital", annCtx(), nil,
				EndpointSpec{Name: "in", Dir: Sink, Schema: vitalsSchema()}); err != nil {
				t.Error(err)
				return
			}
			if err := bus.Connect("hospital", srcs[0].Name()+".out", name+".in"); err != nil {
				t.Error(err)
				return
			}
			if i%2 == 0 {
				if err := bus.Disconnect("hospital", srcs[0].Name()+".out", name+".in"); err != nil {
					t.Error(err)
					return
				}
			}
			bus.reevaluate(srcs[0].Name())
		}
	}()
	wg.Wait()

	want := shards * 300
	waitFor(t, func() bool { return rec.count() >= want }, "all publishes delivered")
	if bad, err := bus.Log().Verify(); err != nil || bad != -1 {
		t.Fatalf("audit Verify = %d, %v", bad, err)
	}
}

// TestPublishAfterCloseDeliversInline pins Close's usability contract:
// after Close the shard dispatchers are gone, so cross-shard deliveries
// must fall back to inline execution on the publisher's goroutine. A
// post-Close publish must never park messages on an undrained ring while
// reporting them delivered — the regression this guards against lost up
// to a full ring per shard silently.
func TestPublishAfterCloseDeliversInline(t *testing.T) {
	const shards = 4
	bus := NewShardedBus("sharded", shards, permissiveACL(), nil, nil)
	rec := &seqRecorder{}
	sink := nameOnShard(bus, "sink-", 0)
	if _, err := bus.Register(sink, "p", ifc.SecurityContext{}, rec.handler(),
		EndpointSpec{Name: "in", Dir: Sink, Schema: seqSchema()}); err != nil {
		t.Fatal(err)
	}
	src, err := bus.Register(nameOnShard(bus, "src-", 1), "p", ifc.SecurityContext{}, nil,
		EndpointSpec{Name: "out", Dir: Source, Schema: seqSchema()})
	if err != nil {
		t.Fatal(err)
	}
	if err := bus.Connect("p", src.Name()+".out", sink+".in"); err != nil {
		t.Fatal(err)
	}

	bus.Close()
	bus.Close() // idempotent

	// Publish more than a ring could absorb: if any message were still
	// being enqueued the count below could not be reached synchronously.
	const n = 2 * handoffRingSize
	for i := 0; i < n; i++ {
		m := msg.New("seq").Set("src", msg.Str(src.Name())).Set("n", msg.Float(float64(i)))
		got, err := src.Publish("out", m)
		if err != nil {
			t.Fatal(err)
		}
		if got != 1 {
			t.Fatalf("post-Close publish reported %d deliveries, want 1", got)
		}
	}
	// Inline deliveries are synchronous — no waitFor: every message must
	// already have reached the handler.
	if got := rec.count(); got != n {
		t.Fatalf("post-Close bus delivered %d of %d messages — handoffs stranded on a dead ring", got, n)
	}
}

// TestConnectManyConcurrentConnectNoDuplicates races the bulk path
// against single Connects on the same keys, with predecessors installed
// so both sides retire-and-replace. Whatever interleaving wins, each key
// must end with exactly one live bySrc entry — one delivery per publish
// — and Disconnect must remove it completely. Run under -race this also
// pins mutateN's locking against mutate2's.
func TestConnectManyConcurrentConnectNoDuplicates(t *testing.T) {
	const shards = 4
	const comps = 8
	for round := 0; round < 20; round++ {
		bus := NewShardedBus("sharded", shards, permissiveACL(), nil, nil)
		schema := seqSchema()
		var pairs [][2]string
		for i := 0; i < comps; i++ {
			name := "c" + strconv.Itoa(i)
			if _, err := bus.Register(name, "p", ifc.SecurityContext{}, nil,
				EndpointSpec{Name: "out", Dir: Source, Schema: schema},
				EndpointSpec{Name: "in", Dir: Sink, Schema: schema}); err != nil {
				t.Fatal(err)
			}
			pairs = append(pairs, [2]string{name + ".out", "c" + strconv.Itoa((i+1)%comps) + ".in"})
		}
		// Pre-install every channel so both racers have predecessors to retire.
		if err := bus.ConnectMany("p", pairs); err != nil {
			t.Fatal(err)
		}

		var wg sync.WaitGroup
		wg.Add(2)
		go func() {
			defer wg.Done()
			if err := bus.ConnectMany("p", pairs); err != nil {
				t.Error(err)
			}
		}()
		go func() {
			defer wg.Done()
			for _, p := range pairs {
				if err := bus.Connect("p", p[0], p[1]); err != nil {
					t.Error(err)
				}
			}
		}()
		wg.Wait()

		m := msg.New("seq").Set("src", msg.Str("x")).Set("n", msg.Float(0))
		for i, p := range pairs {
			c, _ := bus.Component("c" + strconv.Itoa(i))
			got, err := c.Publish("out", m)
			if err != nil {
				t.Fatal(err)
			}
			if got != 1 {
				t.Fatalf("round %d: publish on %s hit %d channels, want 1 — duplicate bySrc entry", round, p[0], got)
			}
			if err := bus.Disconnect("p", p[0], p[1]); err != nil {
				t.Fatal(err)
			}
			if got, _ := c.Publish("out", m); got != 0 {
				t.Fatalf("round %d: %d deliveries after Disconnect — orphaned bySrc entry survived", round, got)
			}
		}
		bus.Close()
	}
}

// TestConnectManyMatchesConnect checks the bulk establishment path against
// the one-at-a-time path: same channel set, same routing behaviour, and
// publish traverses bulk-established channels normally.
func TestConnectManyMatchesConnect(t *testing.T) {
	for _, shards := range []int{1, 4} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			a := NewShardedBus("a", shards, permissiveACL(), nil, nil)
			b := NewShardedBus("b", shards, permissiveACL(), nil, nil)
			defer a.Close()
			defer b.Close()
			schema := seqSchema()
			var pairs [][2]string
			for _, bus := range []*Bus{a, b} {
				for i := 0; i < 6; i++ {
					if _, err := bus.Register("c"+strconv.Itoa(i), "p", ifc.SecurityContext{}, nil,
						EndpointSpec{Name: "out", Dir: Source, Schema: schema},
						EndpointSpec{Name: "in", Dir: Sink, Schema: schema}); err != nil {
						t.Fatal(err)
					}
				}
			}
			for i := 0; i < 6; i++ {
				for j := 0; j < 6; j++ {
					if i == j {
						continue
					}
					pairs = append(pairs, [2]string{
						"c" + strconv.Itoa(i) + ".out", "c" + strconv.Itoa(j) + ".in"})
				}
			}
			for _, p := range pairs {
				if err := a.Connect("p", p[0], p[1]); err != nil {
					t.Fatal(err)
				}
			}
			// Duplicate a few pairs: ConnectMany must dedup like repeated Connect.
			if err := b.ConnectMany("p", append(pairs, pairs[0], pairs[1])); err != nil {
				t.Fatal(err)
			}
			got, want := fmt.Sprint(b.Channels()), fmt.Sprint(a.Channels())
			if got != want {
				t.Fatalf("ConnectMany channels = %v\nConnect channels = %v", got, want)
			}

			rec := &seqRecorder{}
			if _, err := b.Register("probe-sink", "p", ifc.SecurityContext{}, rec.handler(),
				EndpointSpec{Name: "in", Dir: Sink, Schema: schema}); err != nil {
				t.Fatal(err)
			}
			if err := b.ConnectMany("p", [][2]string{{"c0.out", "probe-sink.in"}}); err != nil {
				t.Fatal(err)
			}
			c0, _ := b.Component("c0")
			m := msg.New("seq").Set("src", msg.Str("c0")).Set("n", msg.Float(1))
			if _, err := c0.Publish("out", m); err != nil {
				t.Fatal(err)
			}
			waitFor(t, func() bool { return rec.count() == 1 }, "bulk channel delivered")

			// Teardown still works channel-by-channel on bulk-established state.
			if err := b.Disconnect("p", "c0.out", "probe-sink.in"); err != nil {
				t.Fatal(err)
			}
			if _, err := c0.Publish("out", m); err != nil {
				t.Fatal(err)
			}
			time.Sleep(10 * time.Millisecond)
			if rec.count() != 1 {
				t.Fatal("delivery after Disconnect of bulk-established channel")
			}
		})
	}
}
