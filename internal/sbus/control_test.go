package sbus

import (
	"errors"
	"testing"
	"time"

	"lciot/internal/ifc"
	"lciot/internal/transport"
)

func TestBusAccessors(t *testing.T) {
	bus := NewBus("accessors", openACL(), nil, nil)
	if bus.Name() != "accessors" {
		t.Fatalf("Name = %q", bus.Name())
	}
	if bus.Store() == nil || bus.ACL() == nil || bus.Log() == nil {
		t.Fatal("nil accessors")
	}
}

func TestControlSetClearanceAndDisconnect(t *testing.T) {
	bus, _ := newHomeBus(t)
	if err := bus.Apply(ControlOp{
		Op: "setclearance", By: "policy-engine",
		Component: "ann-analyser", Secrecy: ifc.MustLabel("C"),
	}); err != nil {
		t.Fatal(err)
	}
	analyser, _ := bus.Component("ann-analyser")
	if !analyser.Clearance().Equal(ifc.MustLabel("C")) {
		t.Fatalf("clearance = %v", analyser.Clearance())
	}
	// Clearance on an unknown component fails.
	if err := bus.Apply(ControlOp{
		Op: "setclearance", By: "policy-engine", Component: "ghost",
	}); !errors.Is(err, ErrNoComponent) {
		t.Fatalf("ghost clearance = %v", err)
	}

	// connect + disconnect through the control plane.
	if err := bus.Apply(ControlOp{Op: "connect", By: "policy-engine",
		Src: "ann-device.out", Dst: "ann-analyser.in"}); err != nil {
		t.Fatal(err)
	}
	if err := bus.Apply(ControlOp{Op: "disconnect", By: "policy-engine",
		Src: "ann-device.out", Dst: "ann-analyser.in"}); err != nil {
		t.Fatal(err)
	}
	if len(bus.Channels()) != 0 {
		t.Fatal("disconnect via control plane failed")
	}
}

func TestControlQuarantineRelease(t *testing.T) {
	bus, _ := newHomeBus(t)
	if err := bus.Apply(ControlOp{Op: "quarantine", By: "policy-engine", Component: "zeb-device"}); err != nil {
		t.Fatal(err)
	}
	zeb, _ := bus.Component("zeb-device")
	if !zeb.Quarantined() {
		t.Fatal("not quarantined")
	}
	if err := bus.Apply(ControlOp{Op: "release", By: "policy-engine", Component: "zeb-device"}); err != nil {
		t.Fatal(err)
	}
	if zeb.Quarantined() {
		t.Fatal("not released")
	}
	// Control ops against unknown components error cleanly.
	for _, op := range []string{"quarantine", "release", "grant", "setcontext"} {
		if err := bus.Apply(ControlOp{Op: op, By: "policy-engine", Component: "ghost"}); !errors.Is(err, ErrNoComponent) {
			t.Fatalf("%s ghost = %v", op, err)
		}
	}
}

func TestControlGrantDeniedByAC(t *testing.T) {
	bus := NewBus("b", restrictedACL(), nil, nil)
	if _, err := bus.Register("c", "hospital", ifc.SecurityContext{}, nil); err != nil {
		t.Fatal(err)
	}
	err := bus.Apply(ControlOp{Op: "grant", By: "mallory", Component: "c",
		AddSecrecy: ifc.MustLabel("x")})
	if err == nil {
		t.Fatal("mallory granted privileges")
	}
	err = bus.Apply(ControlOp{Op: "setclearance", By: "mallory", Component: "c"})
	if err == nil {
		t.Fatal("mallory set clearance")
	}
	err = bus.Apply(ControlOp{Op: "quarantine", By: "mallory", Component: "c"})
	if err == nil {
		t.Fatal("mallory quarantined")
	}
}

func TestLinkToFailures(t *testing.T) {
	net := transport.NewMemNetwork()
	bus := NewBus("b", openACL(), nil, nil)
	// No listener.
	if _, err := bus.LinkTo(net, "nowhere"); err == nil {
		t.Fatal("link to nowhere succeeded")
	}
	// Listener that speaks garbage instead of hello.
	l, err := net.Listen("garbage")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() {
		c, err := l.Accept()
		if err != nil {
			return
		}
		_, _ = c.Recv()            // swallow the hello
		_ = c.Send([]byte("{bad")) // reply with junk
	}()
	if _, err := bus.LinkTo(net, "garbage"); err == nil {
		t.Fatal("garbage hello accepted")
	}
}

func TestServeLinkBadHello(t *testing.T) {
	net := transport.NewMemNetwork()
	bus := NewBus("b", openACL(), nil, nil)
	l, err := net.Listen("bus")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	errCh := make(chan error, 1)
	go func() {
		c, err := l.Accept()
		if err != nil {
			errCh <- err
			return
		}
		errCh <- bus.ServeLink(c)
	}()
	c, err := net.Dial("bus")
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Send([]byte(`{"kind":"message"}`)); err != nil { // not a hello
		t.Fatal(err)
	}
	select {
	case err := <-errCh:
		if err == nil {
			t.Fatal("bad hello accepted")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("ServeLink hung")
	}
}

func TestLinkDropOnConnectionClose(t *testing.T) {
	net := transport.NewMemNetwork()
	a := NewBus("a", openACL(), nil, nil)
	b := NewBus("b", openACL(), nil, nil)
	l, err := net.Listen("b")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go b.Serve(l)
	if _, err := a.LinkTo(net, "b"); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return len(b.Links()) == 1 }, "link establishment")

	// Kill the transport: both sides drop the link.
	link := a.routing.Load().links["b"]
	link.conn.Close()
	waitFor(t, func() bool { return len(a.Links()) == 0 }, "initiator drop")
	waitFor(t, func() bool { return len(b.Links()) == 0 }, "acceptor drop")
}

func TestSendRemoteWithLinkDown(t *testing.T) {
	home, _, _ := linkedBuses(t)
	if err := home.Connect("hospital", "ann-device.out", "cloud-bus:ann-analyser.in"); err != nil {
		t.Fatal(err)
	}
	// Tear the link down under the channel.
	link := home.routing.Load().links["cloud-bus"]
	link.conn.Close()
	waitFor(t, func() bool { return len(home.Links()) == 0 }, "link drop")

	annDev, _ := home.Component("ann-device")
	// Publish still succeeds overall (no local sinks fail) but delivers 0.
	if n, err := annDev.Publish("out", vitalsMessage("ann", 72)); err != nil || n != 0 {
		t.Fatalf("publish over dead link = %d, %v", n, err)
	}
}
