package sbus

import (
	"errors"
	"testing"
	"time"

	"lciot/internal/ifc"
	"lciot/internal/transport"
)

func TestBusAccessors(t *testing.T) {
	bus := NewBus("accessors", openACL(), nil, nil)
	if bus.Name() != "accessors" {
		t.Fatalf("Name = %q", bus.Name())
	}
	if bus.Store() == nil || bus.ACL() == nil || bus.Log() == nil {
		t.Fatal("nil accessors")
	}
}

func TestControlSetClearanceAndDisconnect(t *testing.T) {
	bus, _ := newHomeBus(t)
	if err := bus.Apply(ControlOp{
		Op: "setclearance", By: "policy-engine",
		Component: "ann-analyser", Secrecy: ifc.MustLabel("C"),
	}); err != nil {
		t.Fatal(err)
	}
	analyser, _ := bus.Component("ann-analyser")
	if !analyser.Clearance().Equal(ifc.MustLabel("C")) {
		t.Fatalf("clearance = %v", analyser.Clearance())
	}
	// Clearance on an unknown component fails.
	if err := bus.Apply(ControlOp{
		Op: "setclearance", By: "policy-engine", Component: "ghost",
	}); !errors.Is(err, ErrNoComponent) {
		t.Fatalf("ghost clearance = %v", err)
	}

	// connect + disconnect through the control plane.
	if err := bus.Apply(ControlOp{Op: "connect", By: "policy-engine",
		Src: "ann-device.out", Dst: "ann-analyser.in"}); err != nil {
		t.Fatal(err)
	}
	if err := bus.Apply(ControlOp{Op: "disconnect", By: "policy-engine",
		Src: "ann-device.out", Dst: "ann-analyser.in"}); err != nil {
		t.Fatal(err)
	}
	if len(bus.Channels()) != 0 {
		t.Fatal("disconnect via control plane failed")
	}
}

func TestControlQuarantineRelease(t *testing.T) {
	bus, _ := newHomeBus(t)
	if err := bus.Apply(ControlOp{Op: "quarantine", By: "policy-engine", Component: "zeb-device"}); err != nil {
		t.Fatal(err)
	}
	zeb, _ := bus.Component("zeb-device")
	if !zeb.Quarantined() {
		t.Fatal("not quarantined")
	}
	if err := bus.Apply(ControlOp{Op: "release", By: "policy-engine", Component: "zeb-device"}); err != nil {
		t.Fatal(err)
	}
	if zeb.Quarantined() {
		t.Fatal("not released")
	}
	// Control ops against unknown components error cleanly.
	for _, op := range []string{"quarantine", "release", "grant", "setcontext"} {
		if err := bus.Apply(ControlOp{Op: op, By: "policy-engine", Component: "ghost"}); !errors.Is(err, ErrNoComponent) {
			t.Fatalf("%s ghost = %v", op, err)
		}
	}
}

func TestControlGrantDeniedByAC(t *testing.T) {
	bus := NewBus("b", restrictedACL(), nil, nil)
	if _, err := bus.Register("c", "hospital", ifc.SecurityContext{}, nil); err != nil {
		t.Fatal(err)
	}
	err := bus.Apply(ControlOp{Op: "grant", By: "mallory", Component: "c",
		AddSecrecy: ifc.MustLabel("x")})
	if err == nil {
		t.Fatal("mallory granted privileges")
	}
	err = bus.Apply(ControlOp{Op: "setclearance", By: "mallory", Component: "c"})
	if err == nil {
		t.Fatal("mallory set clearance")
	}
	err = bus.Apply(ControlOp{Op: "quarantine", By: "mallory", Component: "c"})
	if err == nil {
		t.Fatal("mallory quarantined")
	}
}

func TestLinkToFailures(t *testing.T) {
	net := transport.NewMemNetwork()
	bus := NewBus("b", openACL(), nil, nil)
	// No listener.
	if _, err := bus.LinkTo(net, "nowhere"); err == nil {
		t.Fatal("link to nowhere succeeded")
	}
	// Listener that speaks garbage instead of hello.
	l, err := net.Listen("garbage")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go func() {
		c, err := l.Accept()
		if err != nil {
			return
		}
		_, _ = c.Recv()            // swallow the hello
		_ = c.Send([]byte("{bad")) // reply with junk
	}()
	if _, err := bus.LinkTo(net, "garbage"); err == nil {
		t.Fatal("garbage hello accepted")
	}
}

func TestServeLinkBadHello(t *testing.T) {
	net := transport.NewMemNetwork()
	bus := NewBus("b", openACL(), nil, nil)
	l, err := net.Listen("bus")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	errCh := make(chan error, 1)
	go func() {
		c, err := l.Accept()
		if err != nil {
			errCh <- err
			return
		}
		errCh <- bus.ServeLink(c)
	}()
	c, err := net.Dial("bus")
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Send([]byte(`{"kind":"message"}`)); err != nil { // not a hello
		t.Fatal(err)
	}
	select {
	case err := <-errCh:
		if err == nil {
			t.Fatal("bad hello accepted")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("ServeLink hung")
	}
}

func TestLinkReconnectOnConnectionClose(t *testing.T) {
	net := transport.NewMemNetwork()
	a := NewBus("a", openACL(), nil, nil)
	a.SetLinkConfig(LinkConfig{BackoffBase: time.Millisecond, BackoffMax: 5 * time.Millisecond})
	b := NewBus("b", openACL(), nil, nil)
	l, err := net.Listen("b")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go b.Serve(l)
	if _, err := a.LinkTo(net, "b"); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return len(b.Links()) == 1 }, "link establishment")

	// Kill the transport: the dialer redials, and the link self-heals on
	// both sides instead of dropping (protocol v2 semantics).
	link := a.linkTo("b")
	link.mu.Lock()
	conn := link.conn
	link.mu.Unlock()
	conn.Close()
	waitFor(t, func() bool {
		st := a.LinkStatus()
		return len(st) == 1 && st[0].State == LinkUp && st[0].Reconnects >= 1
	}, "initiator reconnect")
	waitFor(t, func() bool { return len(b.Links()) == 1 }, "acceptor re-link")
}

func TestSendRemoteWithLinkDown(t *testing.T) {
	net := transport.NewMemNetwork()
	home := NewBus("home-bus", openACL(), nil, nil)
	// A tiny retry budget so the link gives up quickly once the peer is
	// unreachable for good.
	home.SetLinkConfig(LinkConfig{
		RetryBudget: 2, BackoffBase: time.Millisecond, BackoffMax: 2 * time.Millisecond,
	})
	cloud := NewBus("cloud-bus", openACL(), nil, nil)
	listener, err := net.Listen("cloud-addr")
	if err != nil {
		t.Fatal(err)
	}
	go cloud.Serve(listener)
	if _, err := home.Register("ann-device", "hospital", annCtx(), nil,
		EndpointSpec{Name: "out", Dir: Source, Schema: vitalsSchema()}); err != nil {
		t.Fatal(err)
	}
	if _, err := cloud.Register("ann-analyser", "hospital", annCtx(), nil,
		EndpointSpec{Name: "in", Dir: Sink, Schema: vitalsSchema()}); err != nil {
		t.Fatal(err)
	}
	if _, err := home.LinkTo(net, "cloud-addr"); err != nil {
		t.Fatal(err)
	}
	if err := home.Connect("hospital", "ann-device.out", "cloud-bus:ann-analyser.in"); err != nil {
		t.Fatal(err)
	}
	// Take the peer away for good and tear the connection down: once the
	// retry budget is exhausted the link is dropped.
	listener.Close()
	net.SetDown("cloud-addr", true)
	link := home.linkTo("cloud-bus")
	link.mu.Lock()
	conn := link.conn
	link.mu.Unlock()
	conn.Close()
	waitFor(t, func() bool { return len(home.Links()) == 0 }, "link drop")

	annDev, _ := home.Component("ann-device")
	// Publish still succeeds overall (no local sinks fail) but delivers 0.
	if n, err := annDev.Publish("out", vitalsMessage("ann", 72)); err != nil || n != 0 {
		t.Fatalf("publish over dead link = %d, %v", n, err)
	}
}
