package sbus

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"lciot/internal/ifc"
	"lciot/internal/msg"
)

// Direction tells whether an endpoint emits or receives messages.
type Direction int

// Endpoint directions.
const (
	Source Direction = iota + 1
	Sink
)

// String implements fmt.Stringer.
func (d Direction) String() string {
	switch d {
	case Source:
		return "source"
	case Sink:
		return "sink"
	default:
		return fmt.Sprintf("Direction(%d)", int(d))
	}
}

// Errors reported by components and buses.
var (
	ErrNoComponent  = errors.New("sbus: unknown component")
	ErrNoEndpoint   = errors.New("sbus: unknown endpoint")
	ErrDirection    = errors.New("sbus: endpoint direction mismatch")
	ErrSchema       = errors.New("sbus: schema mismatch")
	ErrQuarantined  = errors.New("sbus: component quarantined")
	ErrNoChannel    = errors.New("sbus: no such channel")
	ErrDupComponent = errors.New("sbus: component name in use")
	ErrClearance    = errors.New("sbus: message-layer clearance insufficient")
)

// A Delivery carries metadata alongside a received message.
type Delivery struct {
	// From is the fully-qualified source endpoint ("bus:component.endpoint").
	From string
	// Endpoint is the local sink endpoint that received the message.
	Endpoint string
	// Quenched lists attribute names removed by source quenching.
	Quenched []string
}

// A Handler consumes messages delivered to a component's sinks. Handlers
// run on the delivering goroutine and must not block.
type Handler func(m *msg.Message, d Delivery)

// An EndpointSpec declares one endpoint at registration time.
type EndpointSpec struct {
	Name   string
	Dir    Direction
	Schema *msg.Schema
}

// A Component is one "thing" attached to a bus: an application process, a
// sensor driver, a gateway proxy. It carries an IFC entity (OS-level
// security context and privileges), a principal identity for access
// control, and a message-layer clearance label (Fig. 10).
type Component struct {
	name string
	bus  *Bus
	// shard is the index of the component's home shard — a pure function
	// of the name and the bus's shard count, cached at registration so the
	// publish hot path never hashes.
	shard     int
	entity    *ifc.Entity
	principal ifc.PrincipalID
	handler   Handler
	// endpoints is immutable after registration and so read without locks
	// on the publish/delivery hot path.
	endpoints map[string]EndpointSpec

	mu          sync.RWMutex
	clearance   ifc.Label
	quarantined atomic.Bool

	// delivered counts messages delivered to this component (local and
	// link ingress), unconditionally — one uncontended atomic add per
	// delivery — so skew reports can name the hottest components without
	// telemetry armed.
	delivered atomic.Uint64
}

// Delivered returns the component's lifetime delivery count.
func (c *Component) Delivered() uint64 { return c.delivered.Load() }

// Name returns the component's bus-local name.
func (c *Component) Name() string { return c.name }

// Principal returns the identity the component acts as.
func (c *Component) Principal() ifc.PrincipalID { return c.principal }

// Entity exposes the component's IFC entity.
func (c *Component) Entity() *ifc.Entity { return c.entity }

// Context returns the component's current IFC security context.
func (c *Component) Context() ifc.SecurityContext { return c.entity.Context() }

// Clearance returns the component's message-layer clearance label.
func (c *Component) Clearance() ifc.Label {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.clearance
}

// SetClearance replaces the message-layer clearance label.
func (c *Component) SetClearance(l ifc.Label) {
	c.mu.Lock()
	c.clearance = l
	c.mu.Unlock()
}

// Quarantined reports whether the component has been isolated.
func (c *Component) Quarantined() bool {
	return c.quarantined.Load()
}

// setQuarantined flips isolation (bus-internal; reached via control plane).
func (c *Component) setQuarantined(q bool) {
	c.quarantined.Store(q)
}

// Endpoint returns the endpoint spec.
func (c *Component) Endpoint(name string) (EndpointSpec, bool) {
	ep, ok := c.endpoints[name]
	return ep, ok
}

// Endpoints lists endpoint names, sorted.
func (c *Component) Endpoints() []string {
	out := make([]string, 0, len(c.endpoints))
	for n := range c.endpoints {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// SetContext transitions the component's IFC context (subject to its
// privileges) and then asks the bus to re-evaluate every channel touching
// this component, tearing down those the new context makes illegal — the
// "monitored throughout the connection's lifetime" behaviour of
// Section 8.2.2. Re-evaluation reads only this component's home shard, so
// concurrent context changes on components homed elsewhere proceed
// without any shared lock.
func (c *Component) SetContext(to ifc.SecurityContext) error {
	if err := c.entity.SetContext(to); err != nil {
		return err
	}
	c.bus.reevaluate(c.name)
	return nil
}

// Publish emits a message from one of the component's source endpoints to
// every connected sink, enforcing IFC and message-layer policy per
// delivery. It returns the number of successful deliveries. On a
// single-shard bus every delivery is synchronous and the count is exact.
// On a multi-shard bus a sink homed on another shard counts as delivered
// when its shard accepts the handoff — quarantine, IFC and clearance are
// then enforced, and any denial audited, asynchronously on that shard's
// dispatcher — so the count is an upper bound on actual deliveries and
// must not be used as synchronous enforcement feedback; watch the audit
// log for denials instead.
//
// The message must be treated as immutable once handed to Publish: a
// cross-shard handoff retains it after Publish returns, and mutating it
// afterwards races with the delivering dispatcher.
func (c *Component) Publish(endpoint string, m *msg.Message) (int, error) {
	return c.bus.publish(c, endpoint, m)
}
