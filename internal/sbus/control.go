package sbus

import (
	"fmt"

	"lciot/internal/audit"
	"lciot/internal/ifc"
)

// This file is the control plane: the third-party reconfiguration of
// Fig. 8. Policy engines (or administrators) issue control operations that
// the bus executes on components "as though the application had initiated
// them; though they occur independently from the application logic of the
// component being reconfigured". Every operation is subject to the bus's
// access-control regime, "to ensure that reconfigurations are only actioned
// when received from trusted third parties", and every operation is
// audited.

// SetComponentContext changes a component's IFC security context on behalf
// of a third party. The transition is authorised against the *component's*
// privileges — exactly as if the component had called SetContext itself —
// after the third party passes the AC check.
func (b *Bus) SetComponentContext(by ifc.PrincipalID, component string, to ifc.SecurityContext) error {
	if err := b.acl.Authorize(by, "setcontext", "component/"+component, b.store.Snapshot()); err != nil {
		return err
	}
	c, err := b.Component(component)
	if err != nil {
		return err
	}
	from := c.Context()
	if err := c.SetContext(to); err != nil {
		return err
	}
	b.log.Append(audit.Record{
		Kind: audit.ContextChange, Layer: audit.LayerMessaging, Domain: b.name,
		Src: c.entity.ID(), SrcCtx: from, DstCtx: to, Agent: by,
		Note: "context changed by third-party reconfiguration",
	})
	return nil
}

// GrantPrivileges passes IFC privileges to a component on behalf of a third
// party (Section 6: "privileges are not inherited and have to be passed
// explicitly").
func (b *Bus) GrantPrivileges(by ifc.PrincipalID, component string, p ifc.Privileges) error {
	if err := b.acl.Authorize(by, "grant", "component/"+component, b.store.Snapshot()); err != nil {
		return err
	}
	c, err := b.Component(component)
	if err != nil {
		return err
	}
	if err := c.entity.GrantPrivileges(p); err != nil {
		return err
	}
	// GrantPrivileges advanced the entity's privilege generation and the
	// process-wide flow-cache generation: every cached decision derived
	// from the old privilege sets is now stale and will be re-derived.
	b.log.Append(audit.Record{
		Kind: audit.PrivilegeGrant, Layer: audit.LayerMessaging, Domain: b.name,
		Src: c.entity.ID(), Agent: by,
		Note: "privileges granted: " + p.String(),
	})
	return nil
}

// InstallGate installs a declassifier/endorser gate into the bus's gate
// registry on behalf of a third party. Installation invalidates every
// cached flow-routability decision (the registry's generation advances), so
// a previously denied route becomes available immediately.
func (b *Bus) InstallGate(by ifc.PrincipalID, g *ifc.Gate) error {
	if g == nil || g.Name == "" {
		return fmt.Errorf("sbus: gate needs a name")
	}
	if err := b.acl.Authorize(by, "installgate", "gate/"+g.Name, b.store.Snapshot()); err != nil {
		return err
	}
	b.gates.Install(g)
	b.log.Append(audit.Record{
		Kind: audit.Reconfiguration, Layer: audit.LayerMessaging, Domain: b.name,
		Agent: by, Note: fmt.Sprintf("gate %q installed (%s): %s -> %s",
			g.Name, g.Kind(), g.Input, g.Output),
	})
	return nil
}

// RemoveGate removes an installed gate on behalf of a third party.
func (b *Bus) RemoveGate(by ifc.PrincipalID, name string) error {
	if err := b.acl.Authorize(by, "removegate", "gate/"+name, b.store.Snapshot()); err != nil {
		return err
	}
	if !b.gates.Remove(name) {
		return fmt.Errorf("sbus: no gate %q installed", name)
	}
	b.log.Append(audit.Record{
		Kind: audit.Reconfiguration, Layer: audit.LayerMessaging, Domain: b.name,
		Agent: by, Note: fmt.Sprintf("gate %q removed", name),
	})
	return nil
}

// SetComponentClearance changes a component's message-layer clearance
// (Fig. 10's additional tags) on behalf of a third party.
func (b *Bus) SetComponentClearance(by ifc.PrincipalID, component string, clearance ifc.Label) error {
	if err := b.acl.Authorize(by, "setclearance", "component/"+component, b.store.Snapshot()); err != nil {
		return err
	}
	c, err := b.Component(component)
	if err != nil {
		return err
	}
	c.SetClearance(clearance)
	b.log.Append(audit.Record{
		Kind: audit.Reconfiguration, Layer: audit.LayerMessaging, Domain: b.name,
		Src: c.entity.ID(), Agent: by,
		Note: "message-layer clearance set to " + clearance.String(),
	})
	return nil
}

// Quarantine isolates (or releases) a component: all its publications and
// inbound deliveries are refused while quarantined (Section 5.2:
// "preventing a rogue 'thing' from causing more damage").
func (b *Bus) Quarantine(by ifc.PrincipalID, component string, isolated bool) error {
	if err := b.acl.Authorize(by, "quarantine", "component/"+component, b.store.Snapshot()); err != nil {
		return err
	}
	c, err := b.Component(component)
	if err != nil {
		return err
	}
	c.setQuarantined(isolated)
	note := "component quarantined"
	if !isolated {
		note = "component released from quarantine"
	}
	b.log.Append(audit.Record{
		Kind: audit.Reconfiguration, Layer: audit.LayerMessaging, Domain: b.name,
		Src: c.entity.ID(), Agent: by, Note: note,
	})
	return nil
}

// A ControlOp is a serialisable control-plane instruction, so that policy
// engines can issue reconfiguration through the same message plane they
// govern (Fig. 8's control message).
type ControlOp struct {
	Op string `json:"op"` // connect, disconnect, setcontext, grant, setclearance, quarantine, release
	// By is the issuing principal; the bus authorises Op against it.
	By ifc.PrincipalID `json:"by"`
	// Src/Dst are endpoint addresses for connect/disconnect.
	Src string `json:"src,omitempty"`
	Dst string `json:"dst,omitempty"`
	// Component targets component-scoped operations.
	Component string `json:"component,omitempty"`
	// Secrecy/Integrity carry the new context for setcontext, or the
	// clearance (Secrecy only) for setclearance.
	Secrecy   ifc.Label `json:"secrecy,omitempty"`
	Integrity ifc.Label `json:"integrity,omitempty"`
	// Privileges for grant.
	AddSecrecy      ifc.Label `json:"priv_add_s,omitempty"`
	RemoveSecrecy   ifc.Label `json:"priv_remove_s,omitempty"`
	AddIntegrity    ifc.Label `json:"priv_add_i,omitempty"`
	RemoveIntegrity ifc.Label `json:"priv_remove_i,omitempty"`
}

// Apply executes a control operation.
func (b *Bus) Apply(op ControlOp) error {
	switch op.Op {
	case "connect":
		return b.Connect(op.By, op.Src, op.Dst)
	case "disconnect":
		return b.Disconnect(op.By, op.Src, op.Dst)
	case "setcontext":
		return b.SetComponentContext(op.By, op.Component,
			ifc.SecurityContext{Secrecy: op.Secrecy, Integrity: op.Integrity})
	case "grant":
		return b.GrantPrivileges(op.By, op.Component, ifc.Privileges{
			AddSecrecy:      op.AddSecrecy,
			RemoveSecrecy:   op.RemoveSecrecy,
			AddIntegrity:    op.AddIntegrity,
			RemoveIntegrity: op.RemoveIntegrity,
		})
	case "setclearance":
		return b.SetComponentClearance(op.By, op.Component, op.Secrecy)
	case "quarantine":
		return b.Quarantine(op.By, op.Component, true)
	case "release":
		return b.Quarantine(op.By, op.Component, false)
	default:
		return fmt.Errorf("sbus: unknown control op %q", op.Op)
	}
}
