package sbus

import (
	"strconv"

	"lciot/internal/telemetry"
)

// registerBusMetrics wires the bus into the telemetry registry. Everything
// here is either func-backed (reading counters the shards maintain anyway,
// so the data path pays nothing for the series) or gated recording
// instruments (the publish histogram costs one atomic load while telemetry
// is disabled). A bus constructed later under the same name takes the
// series over — in lciotd there is exactly one bus per process, and tests
// that build many short-lived buses just keep the newest one visible.
func registerBusMetrics(b *Bus) {
	reg := telemetry.Default()
	// Publish is the per-message hot path, so its latency is sampled
	// 1-in-8: the unsampled publishes pay one atomic add instead of two
	// clock reads (B15 prices the armed cost).
	b.pubHist = reg.Histogram("sbus_publish_ns", "bus", b.name).SampleEvery(3)
	reg.GaugeFunc("sbus_shards", func() float64 { return float64(len(b.shards)) },
		"bus", b.name)
	for _, sh := range b.shards {
		sh := sh
		shard := strconv.Itoa(sh.idx)
		reg.CounterFunc("sbus_shard_delivered_total",
			func() float64 { return float64(sh.delivered.Load()) },
			"bus", b.name, "shard", shard)
		reg.CounterFunc("sbus_shard_handoffs_total",
			func() float64 { return float64(sh.handoffsIn.Load()) },
			"bus", b.name, "shard", shard)
		reg.CounterFunc("sbus_shard_overflow_total",
			func() float64 { return float64(sh.overflow.Load()) },
			"bus", b.name, "shard", shard)
	}
}
