package sbus

import (
	"strconv"
	"sync"
	"testing"

	"lciot/internal/ifc"
)

// TestConcurrentPublishAndReconfigure drives the lock-free routing
// snapshot: publishers hammer the hot path while the control plane
// registers components, connects, disconnects and re-evaluates channels.
// Run under -race this pins the copy-on-write discipline.
func TestConcurrentPublishAndReconfigure(t *testing.T) {
	bus := NewBus("hospital-bus", openACL(), nil, nil)
	rec := &sinkRecorder{}
	src, err := bus.Register("ann-device", "hospital", annCtx(), nil,
		EndpointSpec{Name: "out", Dir: Source, Schema: vitalsSchema()})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bus.Register("ann-analyser", "hospital", annCtx(), rec.handler(),
		EndpointSpec{Name: "in", Dir: Sink, Schema: vitalsSchema()}); err != nil {
		t.Fatal(err)
	}
	if err := bus.Connect("hospital", "ann-device.out", "ann-analyser.in"); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			m := vitalsMessage("ann", 72)
			for i := 0; i < 300; i++ {
				if _, err := src.Publish("out", m); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			name := "sink" + strconv.Itoa(i)
			if _, err := bus.Register(name, "hospital", annCtx(), nil,
				EndpointSpec{Name: "in", Dir: Sink, Schema: vitalsSchema()}); err != nil {
				t.Error(err)
				return
			}
			if err := bus.Connect("hospital", "ann-device.out", name+".in"); err != nil {
				t.Error(err)
				return
			}
			if i%2 == 0 {
				if err := bus.Disconnect("hospital", "ann-device.out", name+".in"); err != nil {
					t.Error(err)
					return
				}
			}
			bus.reevaluate("ann-device")
		}
	}()
	wg.Wait()

	// The original channel must have survived every snapshot swap, and the
	// audit chain (fed asynchronously from the delivery path) must verify.
	if rec.count() < 4*300 {
		t.Fatalf("recorder saw %d deliveries, want >= 1200", rec.count())
	}
	if bad, err := bus.Log().Verify(); err != nil || bad != -1 {
		t.Fatalf("audit Verify = %d, %v", bad, err)
	}
}

// TestRepeatedConnectStaysSingleRoute pins the bySrc index against
// duplicate accumulation: reconnecting an existing channel must not create
// a second delivery route, and disconnecting must actually stop delivery.
func TestRepeatedConnectStaysSingleRoute(t *testing.T) {
	bus := NewBus("hospital-bus", openACL(), nil, nil)
	rec := &sinkRecorder{}
	src, err := bus.Register("ann-device", "hospital", annCtx(), nil,
		EndpointSpec{Name: "out", Dir: Source, Schema: vitalsSchema()})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bus.Register("ann-analyser", "hospital", annCtx(), rec.handler(),
		EndpointSpec{Name: "in", Dir: Sink, Schema: vitalsSchema()}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := bus.Connect("hospital", "ann-device.out", "ann-analyser.in"); err != nil {
			t.Fatal(err)
		}
	}
	if n, err := src.Publish("out", vitalsMessage("ann", 72)); err != nil || n != 1 {
		t.Fatalf("publish after repeated connect delivered %d times, err %v; want 1", n, err)
	}
	if err := bus.Disconnect("hospital", "ann-device.out", "ann-analyser.in"); err != nil {
		t.Fatal(err)
	}
	if n, err := src.Publish("out", vitalsMessage("ann", 72)); err != nil || n != 0 {
		t.Fatalf("publish after disconnect delivered %d times, err %v; want 0", n, err)
	}
	if rec.count() != 1 {
		t.Fatalf("recorder saw %d deliveries, want 1", rec.count())
	}
}

// TestInstallGateControlPlane checks the gate control ops: AC enforcement,
// audit records, and route-cache invalidation visible through the bus.
func TestInstallGateControlPlane(t *testing.T) {
	bus := NewBus("hospital-bus", openACL(), nil, nil)
	med := ifc.MustContext([]ifc.Tag{"medical", "ann"}, nil)
	research := ifc.MustContext([]ifc.Tag{"research"}, nil)

	if _, ok := bus.Gates().Route(med, research); ok {
		t.Fatal("route existed before any gate")
	}
	if err := bus.InstallGate("nobody", &ifc.Gate{Name: "anon", Input: med, Output: research}); err == nil {
		t.Fatal("unauthorised gate install accepted")
	}
	if err := bus.InstallGate("hospital", &ifc.Gate{Name: "anon", Input: med, Output: research}); err != nil {
		t.Fatal(err)
	}
	if via, ok := bus.Gates().Route(med, research); !ok || via != "anon" {
		t.Fatalf("route after install = %q, %v", via, ok)
	}
	if err := bus.RemoveGate("hospital", "anon"); err != nil {
		t.Fatal(err)
	}
	if err := bus.RemoveGate("hospital", "anon"); err == nil {
		t.Fatal("double remove succeeded")
	}
	if _, ok := bus.Gates().Route(med, research); ok {
		t.Fatal("route survived gate removal")
	}
}
