package sbus

import (
	"errors"
	"strconv"
	"sync/atomic"
	"testing"
	"time"

	"lciot/internal/audit"
	"lciot/internal/ifc"
	"lciot/internal/transport"
)

// fastLinkConfig keeps reconnect machinery snappy for tests.
func fastLinkConfig() LinkConfig {
	return LinkConfig{
		QueueLen:    256,
		SendTimeout: 250 * time.Millisecond,
		RetryBudget: 50,
		BackoffBase: time.Millisecond,
		BackoffMax:  5 * time.Millisecond,
	}
}

// fedPair builds home←→cloud over an in-memory network with a cross-bus
// channel ann-device.out → cloud-bus:ann-analyser.in established.
func fedPair(t *testing.T, cfg LinkConfig) (net *transport.MemNetwork, home, cloud *Bus, rec *sinkRecorder) {
	t.Helper()
	net = transport.NewMemNetwork()
	home = NewBus("home-bus", openACL(), nil, nil)
	home.SetLinkConfig(cfg)
	cloud = NewBus("cloud-bus", openACL(), nil, nil)
	cloud.SetLinkConfig(cfg)

	listener, err := net.Listen("cloud-addr")
	if err != nil {
		t.Fatal(err)
	}
	go cloud.Serve(listener)
	t.Cleanup(func() { listener.Close() })

	if _, err := home.Register("ann-device", "hospital", annCtx(), nil,
		EndpointSpec{Name: "out", Dir: Source, Schema: vitalsSchema()}); err != nil {
		t.Fatal(err)
	}
	rec = &sinkRecorder{}
	if _, err := cloud.Register("ann-analyser", "hospital", annCtx(), rec.handler(),
		EndpointSpec{Name: "in", Dir: Sink, Schema: vitalsSchema()}); err != nil {
		t.Fatal(err)
	}
	if _, err := home.LinkTo(net, "cloud-addr"); err != nil {
		t.Fatal(err)
	}
	if err := home.Connect("hospital", "ann-device.out", "cloud-bus:ann-analyser.in"); err != nil {
		t.Fatal(err)
	}
	return net, home, cloud, rec
}

// TestPartitionHealResume is the headline v2 behaviour: a partition kills
// the connection, messages published during the outage queue on the
// bounded egress buffer, and once the network heals the link reconnects,
// replays the connect handshake (the acceptor's fresh ingress table is
// rebuilt) and delivers the buffered traffic.
func TestPartitionHealResume(t *testing.T) {
	net, home, cloud, rec := fedPair(t, fastLinkConfig())
	annDev, _ := home.Component("ann-device")

	if _, err := annDev.Publish("out", vitalsMessage("ann", 72)); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return rec.count() == 1 }, "pre-partition delivery")

	net.SetDown("cloud-addr", true)
	// Force the failure to be noticed immediately rather than on the next
	// keepalive-less write.
	link := home.linkTo("cloud-bus")
	link.mu.Lock()
	conn := link.conn
	link.mu.Unlock()
	conn.Close()
	waitFor(t, func() bool {
		st := home.LinkStatus()
		return len(st) == 1 && st[0].State == LinkReconnecting
	}, "reconnecting state")

	// Publish during the outage: the frames buffer on the send queue.
	for i := 0; i < 5; i++ {
		if _, err := annDev.Publish("out", vitalsMessage("ann", float64(80+i))); err != nil {
			t.Fatal(err)
		}
	}
	if st := home.LinkStatus(); st[0].QueueDepth == 0 {
		t.Fatal("outage traffic did not queue")
	}

	net.SetDown("cloud-addr", false)
	waitFor(t, func() bool { return rec.count() == 6 }, "buffered traffic after heal")

	st := home.LinkStatus()
	if st[0].State != LinkUp || st[0].Reconnects < 1 || !st[0].Dialer {
		t.Fatalf("post-heal status = %+v", st[0])
	}
	// The acceptor re-validated ingress on resume: a second accept record.
	accepts := cloud.Log().Select(func(r audit.Record) bool {
		return r.Note == "cross-bus ingress accepted"
	})
	if len(accepts) < 2 {
		t.Fatalf("ingress accepts = %d, want >= 2 (original + resume)", len(accepts))
	}
	// And the dialer audited the resume.
	resumed := home.Log().Select(func(r audit.Record) bool {
		return r.Kind == audit.Reconfiguration && containsAll(r.Note, "link resumed", "channels replayed")
	})
	if len(resumed) == 0 {
		t.Fatal("no resume audit record")
	}
}

// TestResumeRefusedTearsChannelDown: if the sink's context changed during
// the outage so the flow is now illegal, the resume handshake is refused
// and the stale egress channel is torn down instead of silently dropping
// every message.
func TestResumeRefusedTearsChannelDown(t *testing.T) {
	net, home, cloud, rec := fedPair(t, fastLinkConfig())
	annDev, _ := home.Component("ann-device")
	if _, err := annDev.Publish("out", vitalsMessage("ann", 72)); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return rec.count() == 1 }, "pre-partition delivery")

	net.SetDown("cloud-addr", true)
	link := home.linkTo("cloud-bus")
	link.mu.Lock()
	conn := link.conn
	link.mu.Unlock()
	conn.Close()

	// While partitioned, the analyser declassifies: Ann's data must no
	// longer flow to it.
	analyser, _ := cloud.Component("ann-analyser")
	if err := analyser.Entity().GrantPrivileges(ifc.Privileges{
		RemoveSecrecy:   ifc.MustLabel("ann", "medical"),
		RemoveIntegrity: ifc.MustLabel("hosp-dev", "consent"),
	}); err != nil {
		t.Fatal(err)
	}
	if err := analyser.SetContext(ifc.SecurityContext{}); err != nil {
		t.Fatal(err)
	}

	net.SetDown("cloud-addr", false)
	waitFor(t, func() bool { return len(home.Channels()) == 0 }, "stale channel teardown")
	torn := home.Log().Select(func(r audit.Record) bool {
		return containsAll(r.Note, "resume refused")
	})
	if len(torn) != 1 {
		t.Fatalf("teardown audit records = %d, want 1", len(torn))
	}
}

// TestRetryBudgetExhaustedReportsLinkDown: when the peer never comes back,
// the link retries its whole budget, then is removed; egress reports
// ErrLinkDown from that point on.
func TestRetryBudgetExhaustedReportsLinkDown(t *testing.T) {
	cfg := fastLinkConfig()
	cfg.RetryBudget = 3
	net, home, _, _ := fedPair(t, cfg)
	annDev, _ := home.Component("ann-device")

	net.SetDown("cloud-addr", true)
	link := home.linkTo("cloud-bus")
	link.mu.Lock()
	conn := link.conn
	link.mu.Unlock()
	conn.Close()

	waitFor(t, func() bool { return len(home.Links()) == 0 }, "link removal")
	exhausted := home.Log().Select(func(r audit.Record) bool {
		return containsAll(r.Note, "link closed", "retry budget exhausted")
	})
	if len(exhausted) != 1 {
		t.Fatalf("budget-exhausted audit records = %d, want 1", len(exhausted))
	}
	if n, err := annDev.Publish("out", vitalsMessage("ann", 72)); err != nil || n != 0 {
		t.Fatalf("publish after budget exhaustion = %d, %v", n, err)
	}
	if _, err := home.linkFor("cloud-bus"); !errors.Is(err, ErrLinkDown) {
		t.Fatalf("linkFor = %v, want ErrLinkDown", err)
	}
}

// TestBackpressureBoundsEgress: with the peer partitioned and the queue
// full, enqueueing fails with ErrBackpressure after SendTimeout instead of
// blocking forever or growing without bound.
func TestBackpressureBoundsEgress(t *testing.T) {
	cfg := fastLinkConfig()
	cfg.QueueLen = 4
	cfg.SendTimeout = 30 * time.Millisecond
	// MaxBatch 1 bounds what the writer can absorb beyond the queue to a
	// single in-flight frame, making the observable bound deterministic;
	// a large budget keeps the link in reconnecting (not closed) state
	// for the duration of the test.
	cfg.MaxBatch = 1
	cfg.RetryBudget = 100000
	net, home, _, _ := fedPair(t, cfg)

	net.SetDown("cloud-addr", true)
	link := home.linkTo("cloud-bus")
	link.mu.Lock()
	conn := link.conn
	link.mu.Unlock()
	conn.Close()
	waitFor(t, func() bool {
		st := home.LinkStatus()
		return len(st) == 1 && st[0].State == LinkReconnecting
	}, "reconnecting state")

	// Fill the queue (the writer may hold one batch in flight, so allow a
	// few extra) and require a bounded-time backpressure failure.
	var sawBackpressure bool
	start := time.Now()
	for i := 0; i < cfg.QueueLen+3; i++ {
		if err := link.enqueue([]byte("frame-" + strconv.Itoa(i))); err != nil {
			if !errors.Is(err, ErrBackpressure) {
				t.Fatalf("enqueue error = %v, want ErrBackpressure", err)
			}
			sawBackpressure = true
			break
		}
	}
	if !sawBackpressure {
		t.Fatal("queue accepted more frames than its bound")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("backpressure took %v, want bounded by SendTimeout", elapsed)
	}
}

// TestLinkReplaceFailsPending is the regression test for the addLink bug:
// replacing a live link to the same peer used to strand the old link's
// pending request channels until their 10s timeout. They must fail
// immediately with ErrLinkDown.
func TestLinkReplaceFailsPending(t *testing.T) {
	net, home, _, _ := fedPair(t, fastLinkConfig())
	link := home.linkTo("cloud-bus")

	// A request the peer will never answer: "result" frames with unknown
	// IDs are dispatched into the void.
	errCh := make(chan error, 1)
	go func() {
		_, err := link.request(LinkFrame{Kind: "result", OK: true})
		errCh <- err
	}()
	waitFor(t, func() bool {
		link.mu.Lock()
		defer link.mu.Unlock()
		return len(link.pending) == 1
	}, "pending registration")

	// The peer redials: a replacement link for the same peer is installed.
	if _, err := home.LinkTo(net, "cloud-addr"); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-errCh:
		if !errors.Is(err, ErrLinkDown) {
			t.Fatalf("stranded request error = %v, want ErrLinkDown", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("pending request still stranded after link replacement")
	}
}

// TestConnectDuringOutageCompletesAfterResume: a Connect issued while the
// link is reconnecting queues its handshake and completes once the session
// resumes (pipelining through the outage).
func TestConnectDuringOutageCompletesAfterResume(t *testing.T) {
	net, home, cloud, _ := fedPair(t, fastLinkConfig())

	if _, err := home.Register("ann-monitor", "hospital", annCtx(), nil,
		EndpointSpec{Name: "out", Dir: Source, Schema: vitalsSchema()}); err != nil {
		t.Fatal(err)
	}
	rec2 := &sinkRecorder{}
	if _, err := cloud.Register("ann-archive", "hospital", annCtx(), rec2.handler(),
		EndpointSpec{Name: "in", Dir: Sink, Schema: vitalsSchema()}); err != nil {
		t.Fatal(err)
	}

	net.SetDown("cloud-addr", true)
	link := home.linkTo("cloud-bus")
	link.mu.Lock()
	conn := link.conn
	link.mu.Unlock()
	conn.Close()
	waitFor(t, func() bool {
		st := home.LinkStatus()
		return len(st) == 1 && st[0].State == LinkReconnecting
	}, "reconnecting state")

	var connected atomic.Bool
	go func() {
		if err := home.Connect("hospital", "ann-monitor.out", "cloud-bus:ann-archive.in"); err == nil {
			connected.Store(true)
		}
	}()
	time.Sleep(20 * time.Millisecond) // let the connect frame queue
	net.SetDown("cloud-addr", false)
	waitFor(t, connected.Load, "connect completion after resume")

	mon, _ := home.Component("ann-monitor")
	if _, err := mon.Publish("out", vitalsMessage("ann", 64)); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return rec2.count() == 1 }, "delivery on channel connected mid-outage")
}

// TestEgressBatchingCoalesces: a burst of messages published while the
// writer is busy crosses the wire in fewer transport frames than messages.
func TestEgressBatchingCoalesces(t *testing.T) {
	net, home, _, rec := fedPair(t, fastLinkConfig())
	net.SetLatency(2 * time.Millisecond) // hold the writer per round trip
	defer net.SetLatency(0)

	annDev, _ := home.Component("ann-device")
	const burst = 50
	for i := 0; i < burst; i++ {
		if _, err := annDev.Publish("out", vitalsMessage("ann", float64(i))); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, func() bool { return rec.count() == burst }, "burst delivery")
	// With 2ms per transport frame, 50 unbatched frames would need 100ms+.
	// This is inherently timing-ish, so only assert the queue drained and
	// everything arrived; the batching win shows up in B12.
	if st := home.LinkStatus(); st[0].QueueDepth != 0 {
		t.Fatalf("queue not drained: %+v", st[0])
	}
}
