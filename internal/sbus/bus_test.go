package sbus

import (
	"errors"
	"sync"
	"testing"

	"lciot/internal/ac"
	"lciot/internal/audit"
	"lciot/internal/ifc"
	"lciot/internal/msg"
)

// vitalsSchema is the home-monitoring message type used across tests.
func vitalsSchema() *msg.Schema {
	return msg.MustSchema("vitals", ifc.EmptyLabel,
		msg.Field{Name: "patient", Type: msg.TString, Required: true},
		msg.Field{Name: "heart-rate", Type: msg.TFloat, Required: true},
	)
}

// openACL grants everything to everyone; individual tests tighten it.
func openACL() *ac.ACL {
	var a ac.ACL
	a.DefineRole(ac.Role{Name: "any", Grants: []ac.Permission{{Action: "*", Resource: "**"}}})
	for _, p := range []ifc.PrincipalID{"hospital", "policy-engine", "mallory"} {
		_ = a.Assign(ac.Assignment{Principal: p, Role: "any", Args: map[string]string{}})
	}
	return &a
}

// restrictedACL authorises only the hospital and policy-engine principals.
func restrictedACL() *ac.ACL {
	var a ac.ACL
	a.DefineRole(ac.Role{Name: "admin", Grants: []ac.Permission{{Action: "*", Resource: "**"}}})
	_ = a.Assign(ac.Assignment{Principal: "hospital", Role: "admin", Args: map[string]string{}})
	_ = a.Assign(ac.Assignment{Principal: "policy-engine", Role: "admin", Args: map[string]string{}})
	return &a
}

// sinkRecorder collects deliveries.
type sinkRecorder struct {
	mu         sync.Mutex
	messages   []*msg.Message
	deliveries []Delivery
}

func (r *sinkRecorder) handler() Handler {
	return func(m *msg.Message, d Delivery) {
		r.mu.Lock()
		defer r.mu.Unlock()
		r.messages = append(r.messages, m)
		r.deliveries = append(r.deliveries, d)
	}
}

func (r *sinkRecorder) count() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.messages)
}

func (r *sinkRecorder) last() (*msg.Message, Delivery) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.messages) == 0 {
		return nil, Delivery{}
	}
	return r.messages[len(r.messages)-1], r.deliveries[len(r.deliveries)-1]
}

// annCtx / zebCtx / annAnalyserCtx are the Fig. 4 security contexts.
func annCtx() ifc.SecurityContext {
	return ifc.MustContext([]ifc.Tag{"medical", "ann"}, []ifc.Tag{"hosp-dev", "consent"})
}

func zebCtx() ifc.SecurityContext {
	return ifc.MustContext([]ifc.Tag{"medical", "zeb"}, []ifc.Tag{"zeb-dev", "consent"})
}

func vitalsMessage(patient string, hr float64) *msg.Message {
	m := msg.New("vitals").Set("patient", msg.Str(patient)).Set("heart-rate", msg.Float(hr))
	m.DataID = "reading-" + patient
	return m
}

// newHomeBus builds a bus with Ann's device, Zeb's device and Ann's
// analyser registered.
func newHomeBus(t *testing.T) (*Bus, *sinkRecorder) {
	t.Helper()
	bus := NewBus("hospital-bus", openACL(), nil, nil)
	rec := &sinkRecorder{}
	if _, err := bus.Register("ann-device", "hospital", annCtx(), nil,
		EndpointSpec{Name: "out", Dir: Source, Schema: vitalsSchema()}); err != nil {
		t.Fatal(err)
	}
	if _, err := bus.Register("zeb-device", "hospital", zebCtx(), nil,
		EndpointSpec{Name: "out", Dir: Source, Schema: vitalsSchema()}); err != nil {
		t.Fatal(err)
	}
	if _, err := bus.Register("ann-analyser", "hospital", annCtx(), rec.handler(),
		EndpointSpec{Name: "in", Dir: Sink, Schema: vitalsSchema()}); err != nil {
		t.Fatal(err)
	}
	return bus, rec
}

func TestRegisterValidation(t *testing.T) {
	bus := NewBus("b", nil, nil, nil)
	if _, err := bus.Register("", "p", ifc.SecurityContext{}, nil); err == nil {
		t.Fatal("empty name accepted")
	}
	if _, err := bus.Register("has.dot", "p", ifc.SecurityContext{}, nil); err == nil {
		t.Fatal("dotted name accepted")
	}
	if _, err := bus.Register("c", "p", ifc.SecurityContext{}, nil,
		EndpointSpec{Name: "", Schema: vitalsSchema()}); err == nil {
		t.Fatal("unnamed endpoint accepted")
	}
	if _, err := bus.Register("c", "p", ifc.SecurityContext{}, nil,
		EndpointSpec{Name: "e", Dir: Source, Schema: nil}); err == nil {
		t.Fatal("schemaless endpoint accepted")
	}
	if _, err := bus.Register("c", "p", ifc.SecurityContext{}, nil,
		EndpointSpec{Name: "e", Dir: Source, Schema: vitalsSchema()},
		EndpointSpec{Name: "e", Dir: Sink, Schema: vitalsSchema()}); err == nil {
		t.Fatal("duplicate endpoint accepted")
	}
	if _, err := bus.Register("ok", "p", ifc.SecurityContext{}, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := bus.Register("ok", "p", ifc.SecurityContext{}, nil); !errors.Is(err, ErrDupComponent) {
		t.Fatalf("duplicate component = %v", err)
	}
	if _, err := bus.Component("ghost"); !errors.Is(err, ErrNoComponent) {
		t.Fatalf("unknown component = %v", err)
	}
}

// TestFig4IllegalFlowPrevented is experiment E4: Ann's data reaches Ann's
// analyser; Zeb's device cannot even connect, failing both halves of the
// IFC rule, and the denial is audited with the reason.
func TestFig4IllegalFlowPrevented(t *testing.T) {
	bus, rec := newHomeBus(t)

	if err := bus.Connect("hospital", "ann-device.out", "ann-analyser.in"); err != nil {
		t.Fatalf("Ann's connect failed: %v", err)
	}
	err := bus.Connect("hospital", "zeb-device.out", "ann-analyser.in")
	if !errors.Is(err, ifc.ErrFlowDenied) {
		t.Fatalf("Zeb's connect = %v, want ErrFlowDenied", err)
	}

	annDev, _ := bus.Component("ann-device")
	if n, err := annDev.Publish("out", vitalsMessage("ann", 72)); err != nil || n != 1 {
		t.Fatalf("Publish = %d, %v", n, err)
	}
	if rec.count() != 1 {
		t.Fatalf("deliveries = %d", rec.count())
	}
	m, d := rec.last()
	if v, _ := m.Get("patient"); v.Str != "ann" {
		t.Fatalf("delivered message = %v", m)
	}
	if d.From != "hospital-bus:ann-device.out" {
		t.Fatalf("delivery From = %q", d.From)
	}

	// The denial must appear in the audit log with the missing tags named.
	denials := bus.Log().Select(func(r audit.Record) bool { return r.Kind == audit.FlowDenied })
	if len(denials) != 1 {
		t.Fatalf("denial records = %d", len(denials))
	}
}

func TestConnectErrors(t *testing.T) {
	bus, _ := newHomeBus(t)
	tests := []struct {
		name     string
		src, dst string
		wantErr  error
	}{
		{"unknown-src-component", "ghost.out", "ann-analyser.in", ErrNoComponent},
		{"unknown-src-endpoint", "ann-device.nope", "ann-analyser.in", ErrNoEndpoint},
		{"wrong-src-direction", "ann-analyser.in", "ann-analyser.in", ErrDirection},
		{"unknown-dst", "ann-device.out", "ghost.in", ErrNoComponent},
		{"wrong-dst-direction", "ann-device.out", "zeb-device.out", ErrDirection},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := bus.Connect("hospital", tt.src, tt.dst); !errors.Is(err, tt.wantErr) {
				t.Fatalf("Connect = %v, want %v", err, tt.wantErr)
			}
		})
	}
	if err := bus.Connect("hospital", "bad-address", "x.in"); err == nil {
		t.Fatal("malformed address accepted")
	}
}

func TestConnectSchemaMismatch(t *testing.T) {
	bus, _ := newHomeBus(t)
	other := msg.MustSchema("other", ifc.EmptyLabel, msg.Field{Name: "x", Type: msg.TInt})
	if _, err := bus.Register("odd", "hospital", annCtx(), nil,
		EndpointSpec{Name: "in", Dir: Sink, Schema: other}); err != nil {
		t.Fatal(err)
	}
	if err := bus.Connect("hospital", "ann-device.out", "odd.in"); !errors.Is(err, ErrSchema) {
		t.Fatalf("schema mismatch = %v", err)
	}
}

func TestConnectDeniedByAC(t *testing.T) {
	bus := NewBus("b", restrictedACL(), nil, nil)
	rec := &sinkRecorder{}
	if _, err := bus.Register("src", "mallory", ifc.SecurityContext{}, nil,
		EndpointSpec{Name: "out", Dir: Source, Schema: vitalsSchema()}); err != nil {
		t.Fatal(err)
	}
	if _, err := bus.Register("dst", "hospital", ifc.SecurityContext{}, rec.handler(),
		EndpointSpec{Name: "in", Dir: Sink, Schema: vitalsSchema()}); err != nil {
		t.Fatal(err)
	}
	if err := bus.Connect("mallory", "src.out", "dst.in"); !errors.Is(err, ac.ErrDenied) {
		t.Fatalf("unauthorised connect = %v", err)
	}
	// The AC denial is audited too.
	denials := bus.Log().Select(func(r audit.Record) bool { return r.Kind == audit.FlowDenied })
	if len(denials) != 1 {
		t.Fatalf("denials = %d", len(denials))
	}
	if err := bus.Connect("hospital", "src.out", "dst.in"); err != nil {
		t.Fatalf("authorised connect failed: %v", err)
	}
}

func TestPublishValidation(t *testing.T) {
	bus, _ := newHomeBus(t)
	annDev, _ := bus.Component("ann-device")

	if _, err := annDev.Publish("nope", vitalsMessage("ann", 1)); !errors.Is(err, ErrNoEndpoint) {
		t.Fatalf("unknown endpoint = %v", err)
	}
	bad := msg.New("vitals").Set("patient", msg.Str("ann")) // missing heart-rate
	if _, err := annDev.Publish("out", bad); !errors.Is(err, msg.ErrMissing) {
		t.Fatalf("invalid message = %v", err)
	}
	analyser, _ := bus.Component("ann-analyser")
	if _, err := analyser.Publish("in", vitalsMessage("ann", 1)); !errors.Is(err, ErrDirection) {
		t.Fatalf("publish on sink = %v", err)
	}
	// Publishing with no channels delivers to nobody but succeeds.
	if n, err := annDev.Publish("out", vitalsMessage("ann", 1)); err != nil || n != 0 {
		t.Fatalf("publish without channels = %d, %v", n, err)
	}
}

// TestContextChangeTearsDownChannel verifies Section 8.2.2's "monitored
// throughout the connection's lifetime, where an entity changing its
// security context triggers re-evaluation".
func TestContextChangeTearsDownChannel(t *testing.T) {
	bus, rec := newHomeBus(t)
	if err := bus.Connect("hospital", "ann-device.out", "ann-analyser.in"); err != nil {
		t.Fatal(err)
	}
	annDev, _ := bus.Component("ann-device")
	if n, _ := annDev.Publish("out", vitalsMessage("ann", 72)); n != 1 {
		t.Fatal("initial delivery failed")
	}

	// The analyser declassifies itself out of Ann's domain (needs privilege).
	analyser, _ := bus.Component("ann-analyser")
	if err := analyser.Entity().GrantPrivileges(ifc.Privileges{
		RemoveSecrecy:   ifc.MustLabel("ann", "medical"),
		RemoveIntegrity: ifc.MustLabel("hosp-dev", "consent"),
	}); err != nil {
		t.Fatal(err)
	}
	if err := analyser.SetContext(ifc.SecurityContext{}); err != nil {
		t.Fatal(err)
	}

	// The channel must be gone: labelled data cannot reach a public sink.
	if len(bus.Channels()) != 0 {
		t.Fatalf("channels = %v", bus.Channels())
	}
	if n, _ := annDev.Publish("out", vitalsMessage("ann", 80)); n != 0 {
		t.Fatal("delivery after teardown")
	}
	if rec.count() != 1 {
		t.Fatalf("deliveries = %d, want 1", rec.count())
	}
	// Teardown is audited.
	teardowns := bus.Log().Select(func(r audit.Record) bool {
		return r.Kind == audit.Reconfiguration && r.Note == "channel torn down: context change made flow illegal"
	})
	if len(teardowns) != 1 {
		t.Fatalf("teardown records = %d", len(teardowns))
	}
}

func TestContextChangeKeepsLegalChannel(t *testing.T) {
	bus, rec := newHomeBus(t)
	if err := bus.Connect("hospital", "ann-device.out", "ann-analyser.in"); err != nil {
		t.Fatal(err)
	}
	// The analyser becomes *more* constrained: still legal.
	analyser, _ := bus.Component("ann-analyser")
	if err := analyser.Entity().GrantPrivileges(ifc.Privileges{
		AddSecrecy: ifc.MustLabel("archive"),
	}); err != nil {
		t.Fatal(err)
	}
	newCtx := analyser.Context()
	newCtx.Secrecy = newCtx.Secrecy.With("archive")
	if err := analyser.SetContext(newCtx); err != nil {
		t.Fatal(err)
	}
	if len(bus.Channels()) != 1 {
		t.Fatal("legal channel torn down")
	}
	annDev, _ := bus.Component("ann-device")
	if n, _ := annDev.Publish("out", vitalsMessage("ann", 72)); n != 1 {
		t.Fatal("delivery failed after legal context change")
	}
	if rec.count() != 1 {
		t.Fatal("missing delivery")
	}
}

func TestDisconnect(t *testing.T) {
	bus, _ := newHomeBus(t)
	if err := bus.Connect("hospital", "ann-device.out", "ann-analyser.in"); err != nil {
		t.Fatal(err)
	}
	if err := bus.Disconnect("hospital", "ann-device.out", "ann-analyser.in"); err != nil {
		t.Fatal(err)
	}
	if len(bus.Channels()) != 0 {
		t.Fatal("channel survived disconnect")
	}
	if err := bus.Disconnect("hospital", "ann-device.out", "ann-analyser.in"); !errors.Is(err, ErrNoChannel) {
		t.Fatalf("double disconnect = %v", err)
	}
}

func TestQuarantine(t *testing.T) {
	bus, rec := newHomeBus(t)
	if err := bus.Connect("hospital", "ann-device.out", "ann-analyser.in"); err != nil {
		t.Fatal(err)
	}
	if err := bus.Quarantine("policy-engine", "ann-device", true); err != nil {
		t.Fatal(err)
	}
	annDev, _ := bus.Component("ann-device")
	if _, err := annDev.Publish("out", vitalsMessage("ann", 72)); !errors.Is(err, ErrQuarantined) {
		t.Fatalf("quarantined publish = %v", err)
	}
	// A quarantined component cannot be connected either.
	if err := bus.Connect("hospital", "ann-device.out", "ann-analyser.in"); !errors.Is(err, ErrQuarantined) {
		t.Fatalf("connect from quarantined = %v", err)
	}
	// Release restores service.
	if err := bus.Quarantine("policy-engine", "ann-device", false); err != nil {
		t.Fatal(err)
	}
	if n, err := annDev.Publish("out", vitalsMessage("ann", 72)); err != nil || n != 1 {
		t.Fatalf("post-release publish = %d, %v", n, err)
	}
	if rec.count() != 1 {
		t.Fatal("missing post-release delivery")
	}
}

func TestQuarantinedSinkRefusesDelivery(t *testing.T) {
	bus, rec := newHomeBus(t)
	if err := bus.Connect("hospital", "ann-device.out", "ann-analyser.in"); err != nil {
		t.Fatal(err)
	}
	if err := bus.Quarantine("policy-engine", "ann-analyser", true); err != nil {
		t.Fatal(err)
	}
	annDev, _ := bus.Component("ann-device")
	if n, err := annDev.Publish("out", vitalsMessage("ann", 72)); err != nil || n != 0 {
		t.Fatalf("publish to quarantined sink = %d, %v", n, err)
	}
	if rec.count() != 0 {
		t.Fatal("quarantined sink received message")
	}
}

// TestFig8ThirdPartyReconfiguration is experiment E8: a policy engine
// issues a control message that creates a new interaction between two
// components, executed as though they had initiated it themselves.
func TestFig8ThirdPartyReconfiguration(t *testing.T) {
	bus, rec := newHomeBus(t)

	// The policy engine connects A to B via the control plane.
	op := ControlOp{Op: "connect", By: "policy-engine", Src: "ann-device.out", Dst: "ann-analyser.in"}
	if err := bus.Apply(op); err != nil {
		t.Fatal(err)
	}
	annDev, _ := bus.Component("ann-device")
	if n, _ := annDev.Publish("out", vitalsMessage("ann", 72)); n != 1 || rec.count() != 1 {
		t.Fatal("resulting interaction did not happen")
	}

	// An unauthorised principal cannot reconfigure.
	busR := NewBus("b2", restrictedACL(), nil, nil)
	if _, err := busR.Register("s", "hospital", ifc.SecurityContext{}, nil,
		EndpointSpec{Name: "out", Dir: Source, Schema: vitalsSchema()}); err != nil {
		t.Fatal(err)
	}
	if _, err := busR.Register("d", "hospital", ifc.SecurityContext{}, nil,
		EndpointSpec{Name: "in", Dir: Sink, Schema: vitalsSchema()}); err != nil {
		t.Fatal(err)
	}
	err := busR.Apply(ControlOp{Op: "connect", By: "mallory", Src: "s.out", Dst: "d.in"})
	if !errors.Is(err, ac.ErrDenied) {
		t.Fatalf("mallory's reconfiguration = %v", err)
	}
}

func TestControlSetContextAndGrant(t *testing.T) {
	bus, _ := newHomeBus(t)

	// Grant the sanitiser-style privileges, then relabel via control plane.
	if err := bus.Apply(ControlOp{
		Op: "grant", By: "policy-engine", Component: "zeb-device",
		AddSecrecy: ifc.MustLabel("extra"),
	}); err != nil {
		t.Fatal(err)
	}
	zeb, _ := bus.Component("zeb-device")
	newCtx := zeb.Context()
	newCtx.Secrecy = newCtx.Secrecy.With("extra")
	if err := bus.Apply(ControlOp{
		Op: "setcontext", By: "policy-engine", Component: "zeb-device",
		Secrecy: newCtx.Secrecy, Integrity: newCtx.Integrity,
	}); err != nil {
		t.Fatal(err)
	}
	if !zeb.Context().Secrecy.Has("extra") {
		t.Fatal("context not changed")
	}
	// Without privileges the transition fails even for authorised parties.
	if err := bus.Apply(ControlOp{
		Op: "setcontext", By: "policy-engine", Component: "ann-device",
	}); !errors.Is(err, ifc.ErrPrivilege) {
		t.Fatalf("unprivileged relabel = %v", err)
	}
	// Unknown op.
	if err := bus.Apply(ControlOp{Op: "explode", By: "policy-engine"}); err == nil {
		t.Fatal("unknown op accepted")
	}
	// Audit captured the grant and the context change.
	grants := bus.Log().Select(func(r audit.Record) bool { return r.Kind == audit.PrivilegeGrant })
	changes := bus.Log().Select(func(r audit.Record) bool { return r.Kind == audit.ContextChange })
	if len(grants) != 1 || len(changes) != 1 {
		t.Fatalf("audit: %d grants, %d changes", len(grants), len(changes))
	}
}

// TestFig10MessageLayerTags is experiment E10: message-layer tags above the
// OS-level context, enforced by the substrate with source quenching.
func TestFig10MessageLayerTags(t *testing.T) {
	// The person schema's "name" attribute carries tag C; the type carries
	// {A,B}.
	person := msg.MustSchema("person", ifc.MustLabel("A", "B"),
		msg.Field{Name: "name", Type: msg.TString, Secrecy: ifc.MustLabel("C")},
		msg.Field{Name: "country", Type: msg.TString},
	)
	bus := NewBus("b", openACL(), nil, nil)
	if _, err := bus.Register("app", "hospital", ifc.SecurityContext{}, nil,
		EndpointSpec{Name: "out", Dir: Source, Schema: person}); err != nil {
		t.Fatal(err)
	}
	full := &sinkRecorder{}
	partial := &sinkRecorder{}
	none := &sinkRecorder{}
	for _, c := range []struct {
		name      string
		rec       *sinkRecorder
		clearance ifc.Label
	}{
		{"analyser-full", full, ifc.MustLabel("A", "B", "C")},
		{"analyser-partial", partial, ifc.MustLabel("A", "B")},
		{"analyser-none", none, ifc.MustLabel("A")},
	} {
		comp, err := bus.Register(c.name, "hospital", ifc.SecurityContext{}, c.rec.handler(),
			EndpointSpec{Name: "in", Dir: Sink, Schema: person})
		if err != nil {
			t.Fatal(err)
		}
		comp.SetClearance(c.clearance)
		if err := bus.Connect("hospital", "app.out", c.name+".in"); err != nil {
			t.Fatal(err)
		}
	}

	app, _ := bus.Component("app")
	m := msg.New("person").Set("name", msg.Str("ann")).Set("country", msg.Str("uk"))
	n, err := app.Publish("out", m)
	if err != nil {
		t.Fatal(err)
	}
	// Delivered to full and partial; denied entirely to none (type tags).
	if n != 2 {
		t.Fatalf("delivered = %d, want 2", n)
	}
	fm, _ := full.last()
	if v, ok := fm.Get("name"); !ok || v.Str != "ann" {
		t.Fatal("fully cleared receiver lost the name")
	}
	pm, pd := partial.last()
	if _, ok := pm.Get("name"); ok {
		t.Fatal("partially cleared receiver saw the sensitive attribute")
	}
	if len(pd.Quenched) != 1 || pd.Quenched[0] != "name" {
		t.Fatalf("quenched = %v", pd.Quenched)
	}
	if none.count() != 0 {
		t.Fatal("uncleared receiver got the message")
	}
	// The type-level denial is audited.
	denials := bus.Log().Select(func(r audit.Record) bool { return r.Kind == audit.FlowDenied })
	if len(denials) != 1 {
		t.Fatalf("denials = %d", len(denials))
	}
}

func TestDirectionString(t *testing.T) {
	if Source.String() != "source" || Sink.String() != "sink" {
		t.Fatal("direction strings")
	}
	if Direction(9).String() != "Direction(9)" {
		t.Fatal("unknown direction")
	}
}

func TestComponentsAndEndpointsListing(t *testing.T) {
	bus, _ := newHomeBus(t)
	comps := bus.Components()
	if len(comps) != 3 || comps[0] != "ann-analyser" {
		t.Fatalf("components = %v", comps)
	}
	annDev, _ := bus.Component("ann-device")
	if eps := annDev.Endpoints(); len(eps) != 1 || eps[0] != "out" {
		t.Fatalf("endpoints = %v", eps)
	}
	if annDev.Principal() != "hospital" {
		t.Fatalf("principal = %q", annDev.Principal())
	}
}
