// Package sbus is the reconfigurable messaging middleware of Section 8.1,
// modelled on SBUS, extended with the CamFlow-style IFC enforcement of
// Section 8.2.2. It provides:
//
//   - Components with strongly-typed endpoints (package msg schemas).
//   - Channel establishment gated by access control at message-type
//     granularity *and* by IFC: "a channel is only established if the
//     policy allows, i.e. the tags of the components accord".
//   - Continuous monitoring: a component changing its security context
//     triggers re-evaluation of its channels; channels that are no longer
//     legal are torn down and the teardown audited.
//   - Message-layer tags above the OS-level context (Fig. 10's tag C), with
//     source quenching of individual attributes whose tags the receiver
//     lacks.
//   - Third-party reconfiguration (Fig. 8): privileged principals send
//     control messages that connect, disconnect, relabel or quarantine
//     components, "executed as though the application had initiated them".
//   - Cross-bus links over package transport, so two machines' substrates
//     enforce co-operatively (Fig. 9): the sender's bus checks egress, the
//     receiver's bus re-checks ingress against its own view. Links speak
//     the batched binary wire protocol v2 (wire.go) through a bounded,
//     backpressured per-peer egress queue, and dialed links self-heal:
//     reconnect with exponential backoff, then resume the session by
//     replaying every egress channel's connect handshake (link.go).
//
// # Sharded core
//
// The bus partitions its routing state into N shards (NewShardedBus;
// NewBus is the single-shard special case). A component's home shard is a
// pure function of its name (FNV-1a hash), so placement is deterministic
// and discoverable via Bus.ShardOf before registration. Each shard owns:
//
//   - an independent copy-on-write routing snapshot (components, channels
//     keyed by owning source, by-component channel index), read lock-free
//     by the hot path and cloned under the shard's own mutex by mutations;
//   - a bounded handoff ring and a dispatcher goroutine (started only when
//     N > 1) that delivers messages whose sink lives on that shard.
//
// A channel is owned by its source's shard. Deliveries whose sink shares
// the source's shard run inline in the publisher's goroutine, exactly as
// on a single-shard bus. Cross-shard deliveries enqueue a handoff onto
// the sink shard's ring — lock-free, never blocking the publisher — and
// the sink shard's dispatcher applies the full enforcement pipeline
// (generation-stamp check, flow re-check, quenching, audit). If a ring is
// full, or the bus has been Closed (so no dispatcher will drain the
// ring), the publisher delivers inline instead, trading ordering for
// liveness; the ring-full fallback is counted in ShardStats.
//
// Ordering semantics: deliveries on one channel from one publishing
// goroutine are FIFO while the sink shard's ring has capacity (one
// dispatcher drains each ring in arrival order). Cross-channel and
// cross-publisher ordering is unspecified, as it already was on the
// single-shard bus. Under overload the inline fallback weakens even the
// per-channel guarantee: the overflowed message can overtake older
// messages still queued on the ring, and the sink handler can run on the
// publisher's goroutine concurrently with the dispatcher — handlers on a
// multi-shard bus must tolerate both. Because a handoff retains the
// published message after Publish returns, messages are immutable once
// published; see Component.Publish.
//
// Shard affinity is the scaling contract: operations touch only the home
// shards of the components involved. Registration, connection, teardown
// and context re-evaluation on one shard never contend with publishes or
// reconfiguration on another; SetContext re-evaluates only the channels
// indexed on the component's home shard. Cross-bus links and the
// obligations egress gate sit above the shards and are unaffected by N.
//
// Every attempted flow — permitted or denied — is appended to the bus's
// audit log.
package sbus
