// Package sbus is the reconfigurable messaging middleware of Section 8.1,
// modelled on SBUS, extended with the CamFlow-style IFC enforcement of
// Section 8.2.2. It provides:
//
//   - Components with strongly-typed endpoints (package msg schemas).
//   - Channel establishment gated by access control at message-type
//     granularity *and* by IFC: "a channel is only established if the
//     policy allows, i.e. the tags of the components accord".
//   - Continuous monitoring: a component changing its security context
//     triggers re-evaluation of its channels; channels that are no longer
//     legal are torn down and the teardown audited.
//   - Message-layer tags above the OS-level context (Fig. 10's tag C), with
//     source quenching of individual attributes whose tags the receiver
//     lacks.
//   - Third-party reconfiguration (Fig. 8): privileged principals send
//     control messages that connect, disconnect, relabel or quarantine
//     components, "executed as though the application had initiated them".
//   - Cross-bus links over package transport, so two machines' substrates
//     enforce co-operatively (Fig. 9): the sender's bus checks egress, the
//     receiver's bus re-checks ingress against its own view. Links speak
//     the batched binary wire protocol v2 (wire.go) through a bounded,
//     backpressured per-peer egress queue, and dialed links self-heal:
//     reconnect with exponential backoff, then resume the session by
//     replaying every egress channel's connect handshake (link.go).
//
// Every attempted flow — permitted or denied — is appended to the bus's
// audit log.
package sbus
