package sbus

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"strconv"
	"testing"

	"lciot/internal/ac"
	"lciot/internal/ifc"
	"lciot/internal/msg"
)

func permissiveACL() *ac.ACL {
	var a ac.ACL
	a.DefineRole(ac.Role{Name: "any", Grants: []ac.Permission{{Action: "*", Resource: "**"}}})
	if err := a.Assign(ac.Assignment{Principal: "p", Role: "any", Args: map[string]string{}}); err != nil {
		panic(err)
	}
	return &a
}

// TestReevaluateIndexedMatchesBruteForce builds randomized topologies, walks
// the components through random context transitions, and after every change
// compares the bus's surviving channel set against a brute-force model that
// re-checks every channel's flow legality from scratch. It runs at several
// shard counts: the aggregated channel listing and the per-shard byComp
// indexes must agree with the model regardless of how components hash
// across shards.
func TestReevaluateIndexedMatchesBruteForce(t *testing.T) {
	for _, shards := range []int{1, 4} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			testReevaluateIndexedMatchesBruteForce(t, shards)
		})
	}
}

func testReevaluateIndexedMatchesBruteForce(t *testing.T, shards int) {
	schema := msg.MustSchema("m", ifc.EmptyLabel, msg.Field{Name: "v", Type: msg.TFloat})
	// A small lattice of contexts over tags {a, b}: public ⊑ {a} ⊑ {a,b}.
	ctxs := []ifc.SecurityContext{
		{},
		ifc.MustContext([]ifc.Tag{"a"}, nil),
		ifc.MustContext([]ifc.Tag{"a", "b"}, nil),
	}

	for seed := int64(0); seed < 30; seed++ {
		r := rand.New(rand.NewSource(seed))
		bus := NewShardedBus("bench", shards, permissiveACL(), nil, nil)
		defer bus.Close()

		nComp := r.Intn(8) + 4
		comps := make([]*Component, nComp)
		compCtx := make([]int, nComp)
		for i := range comps {
			compCtx[i] = r.Intn(len(ctxs))
			c, err := bus.Register("c"+strconv.Itoa(i), "p", ctxs[compCtx[i]], nil,
				EndpointSpec{Name: "out", Dir: Source, Schema: schema},
				EndpointSpec{Name: "in", Dir: Sink, Schema: schema})
			if err != nil {
				t.Fatal(err)
			}
			// Full privileges over the tag universe so any transition is legal.
			if err := c.Entity().GrantPrivileges(ifc.OwnerPrivileges("a", "b")); err != nil {
				t.Fatal(err)
			}
			comps[i] = c
		}

		// model maps "src -> dst" to the (srcIdx, dstIdx) pair of a live channel.
		type pair struct{ src, dst int }
		model := map[string]pair{}
		for tries := 0; tries < nComp*3; tries++ {
			si, di := r.Intn(nComp), r.Intn(nComp)
			if si == di {
				continue
			}
			src := comps[si].Name() + ".out"
			dst := comps[di].Name() + ".in"
			err := bus.Connect("p", src, dst)
			legal := ctxs[compCtx[si]].CanFlowTo(ctxs[compCtx[di]])
			if legal != (err == nil) {
				t.Fatalf("seed %d: connect %s->%s err=%v, model says legal=%v", seed, src, dst, err, legal)
			}
			if err == nil {
				model[src+" -> "+dst] = pair{si, di}
			}
		}

		for step := 0; step < 40; step++ {
			ci := r.Intn(nComp)
			to := r.Intn(len(ctxs))
			if err := comps[ci].SetContext(ctxs[to]); err != nil {
				t.Fatalf("seed %d step %d: SetContext: %v", seed, step, err)
			}
			compCtx[ci] = to

			// Brute force: a channel survives iff its endpoint contexts still
			// permit the flow. (Channels not touching ci cannot have changed,
			// but the reference deliberately re-checks everything.)
			var want []string
			for name, p := range model {
				if !ctxs[compCtx[p.src]].CanFlowTo(ctxs[compCtx[p.dst]]) {
					delete(model, name)
					continue
				}
				want = append(want, name)
			}
			sort.Strings(want)
			if want == nil {
				want = []string{}
			}
			got := bus.Channels()
			if got == nil {
				got = []string{}
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("seed %d step %d: after SetContext(c%d -> %v):\nbus:   %v\nmodel: %v",
					seed, step, ci, ctxs[to], got, want)
			}
		}
	}
}

// TestReevaluateSkipsUnaffectedChannels proves the byComp index prunes work:
// tearing through a context flip on one component must not re-check
// channels between other components. The observable proxy is the verified
// stamp — spectator channels keep their original stamp pointer identity.
func TestReevaluateSkipsUnaffectedChannels(t *testing.T) {
	schema := msg.MustSchema("m", ifc.EmptyLabel, msg.Field{Name: "v", Type: msg.TFloat})
	bus := NewBus("bench", permissiveACL(), nil, nil)
	ctxA := ifc.MustContext([]ifc.Tag{"a"}, nil)
	ctxAB := ifc.MustContext([]ifc.Tag{"a", "b"}, nil)

	mk := func(name string, ctx ifc.SecurityContext) *Component {
		c, err := bus.Register(name, "p", ctx, nil,
			EndpointSpec{Name: "out", Dir: Source, Schema: schema},
			EndpointSpec{Name: "in", Dir: Sink, Schema: schema})
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Entity().GrantPrivileges(ifc.OwnerPrivileges("a", "b")); err != nil {
			t.Fatal(err)
		}
		return c
	}
	hot := mk("hot", ctxA)
	mk("hotsink", ctxAB)
	mk("s1", ctxA)
	mk("s2", ctxA)
	for _, conn := range [][2]string{{"hot.out", "hotsink.in"}, {"s1.out", "s2.in"}} {
		if err := bus.Connect("p", conn[0], conn[1]); err != nil {
			t.Fatal(err)
		}
	}

	spectator := bus.channelByKey(channelKey{src: "s1.out", dst: "s2.in"})
	before := spectator.verified.Load()

	for i := 0; i < 10; i++ {
		target := ctxAB
		if i%2 == 1 {
			target = ctxA
		}
		if err := hot.SetContext(target); err != nil {
			t.Fatal(err)
		}
	}
	if got := len(bus.Channels()); got != 2 {
		t.Fatalf("channels fell to %d", got)
	}
	if spectator.verified.Load() != before {
		t.Fatal("spectator channel was re-stamped; reevaluate visited an unaffected channel")
	}
}

// TestReevaluateNoOpContextChangeSkipsChecks: transitioning to the identical
// context advances no generation, so even the component's own channels keep
// their stamps.
func TestReevaluateNoOpContextChangeSkipsChecks(t *testing.T) {
	schema := msg.MustSchema("m", ifc.EmptyLabel, msg.Field{Name: "v", Type: msg.TFloat})
	bus := NewBus("bench", permissiveACL(), nil, nil)
	ctxA := ifc.MustContext([]ifc.Tag{"a"}, nil)
	src, err := bus.Register("src", "p", ctxA, nil,
		EndpointSpec{Name: "out", Dir: Source, Schema: schema})
	if err != nil {
		t.Fatal(err)
	}
	if err := src.Entity().GrantPrivileges(ifc.OwnerPrivileges("a")); err != nil {
		t.Fatal(err)
	}
	if _, err := bus.Register("dst", "p", ctxA, nil,
		EndpointSpec{Name: "in", Dir: Sink, Schema: schema}); err != nil {
		t.Fatal(err)
	}
	if err := bus.Connect("p", "src.out", "dst.in"); err != nil {
		t.Fatal(err)
	}
	ch := bus.channelByKey(channelKey{src: "src.out", dst: "dst.in"})
	before := ch.verified.Load()
	if err := src.SetContext(ctxA); err != nil { // identical context
		t.Fatal(err)
	}
	if ch.verified.Load() != before {
		t.Fatal("no-op context change re-stamped the channel")
	}
	if got := fmt.Sprint(bus.Channels()); got != "[src.out -> dst.in]" {
		t.Fatalf("channels = %s", got)
	}
}
