package sbus

import (
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"time"

	"lciot/internal/audit"
	"lciot/internal/ifc"
	"lciot/internal/msg"
	"lciot/internal/transport"
)

// This file implements cross-bus links: the Fig. 9 architecture where each
// machine's messaging substrate enforces IFC in its dealings with the
// substrates of other machines. The sender's bus validates egress at
// connection time; the receiver's bus re-validates ingress on every
// message against its *own* current view of the destination — neither side
// trusts the other's enforcement blindly.

// ErrLinkDown is returned when a cross-bus operation has no live link.
var ErrLinkDown = errors.New("sbus: link down")

// linkFrame is the wire protocol between buses.
type linkFrame struct {
	Kind string `json:"kind"` // hello, connect, result, message, disconnect
	ID   uint64 `json:"id,omitempty"`
	Bus  string `json:"bus,omitempty"`

	Src string `json:"src,omitempty"` // fully qualified "bus:comp.ep"
	Dst string `json:"dst,omitempty"` // receiver-local "comp.ep"

	SrcSecrecy   ifc.Label `json:"src_s,omitempty"`
	SrcIntegrity ifc.Label `json:"src_i,omitempty"`

	Schema  string `json:"schema,omitempty"`
	Payload []byte `json:"payload,omitempty"` // msg.EncodeBinary

	OK  bool   `json:"ok,omitempty"`
	Err string `json:"err,omitempty"`

	Agent ifc.PrincipalID `json:"agent,omitempty"`
}

// A link is a live connection to a peer bus.
type link struct {
	bus    *Bus
	peer   string
	conn   transport.Conn
	sendMu sync.Mutex

	mu      sync.Mutex
	nextID  uint64
	pending map[uint64]chan linkFrame

	// ingress records remotely-established channels into this bus:
	// key = {remote src full addr, local dst}.
	ingress map[channelKey]struct{}
}

// connectTimeout bounds cross-bus connect handshakes.
const connectTimeout = 10 * time.Second

// LinkTo dials a peer bus and performs the hello exchange. It returns the
// peer's bus name.
func (b *Bus) LinkTo(network transport.Network, addr string) (string, error) {
	conn, err := network.Dial(addr)
	if err != nil {
		return "", err
	}
	if err := sendFrame(conn, linkFrame{Kind: "hello", Bus: b.name}); err != nil {
		conn.Close()
		return "", err
	}
	f, err := recvFrame(conn)
	if err != nil {
		conn.Close()
		return "", err
	}
	if f.Kind != "hello" || f.Bus == "" {
		conn.Close()
		return "", fmt.Errorf("sbus: bad hello from %s", addr)
	}
	l := b.addLink(f.Bus, conn)
	go l.readLoop()
	return f.Bus, nil
}

// ServeLink handles one inbound link connection (blocking until the hello
// completes; the read loop then runs in the background).
func (b *Bus) ServeLink(conn transport.Conn) error {
	f, err := recvFrame(conn)
	if err != nil {
		conn.Close()
		return err
	}
	if f.Kind != "hello" || f.Bus == "" {
		conn.Close()
		return fmt.Errorf("sbus: bad hello")
	}
	if err := sendFrame(conn, linkFrame{Kind: "hello", Bus: b.name}); err != nil {
		conn.Close()
		return err
	}
	l := b.addLink(f.Bus, conn)
	go l.readLoop()
	return nil
}

// Serve accepts link connections until the listener closes.
func (b *Bus) Serve(listener transport.Listener) {
	for {
		conn, err := listener.Accept()
		if err != nil {
			return
		}
		// Handshake errors on one connection must not stop the accept loop.
		go func() { _ = b.ServeLink(conn) }()
	}
}

// addLink registers a link, replacing any prior link to the same peer.
func (b *Bus) addLink(peer string, conn transport.Conn) *link {
	l := &link{
		bus:     b,
		peer:    peer,
		conn:    conn,
		pending: make(map[uint64]chan linkFrame),
		ingress: make(map[channelKey]struct{}),
	}
	b.writeMu.Lock()
	cur := b.routing.Load()
	if old, ok := cur.links[peer]; ok {
		old.conn.Close()
	}
	next := cur.clone()
	next.links[peer] = l
	b.routing.Store(next)
	b.writeMu.Unlock()
	return l
}

// linkFor returns the live link to a peer.
func (b *Bus) linkFor(peer string) (*link, error) {
	l, ok := b.routing.Load().links[peer]
	if !ok {
		return nil, fmt.Errorf("%w: no link to bus %q", ErrLinkDown, peer)
	}
	return l, nil
}

// Links lists connected peer bus names.
func (b *Bus) Links() []string {
	r := b.routing.Load()
	out := make([]string, 0, len(r.links))
	for p := range r.links {
		out = append(out, p)
	}
	return out
}

// connectRemote establishes a channel whose sink lives on a peer bus. The
// remote bus performs the authoritative ingress checks and replies.
func (b *Bus) connectRemote(by ifc.PrincipalID, srcComp *Component, srcEP EndpointSpec,
	src, remoteBus, remoteDst string) error {
	l, err := b.linkFor(remoteBus)
	if err != nil {
		return err
	}
	ctx := srcComp.Context()
	resp, err := l.request(linkFrame{
		Kind:         "connect",
		Src:          b.name + ":" + src,
		Dst:          remoteDst,
		SrcSecrecy:   ctx.Secrecy,
		SrcIntegrity: ctx.Integrity,
		Schema:       srcEP.Schema.Name,
		Agent:        by,
	})
	if err != nil {
		return err
	}
	if !resp.OK {
		return fmt.Errorf("sbus: remote bus %q refused connect: %s", remoteBus, resp.Err)
	}
	key := channelKey{src: src, dst: remoteBus + ":" + remoteDst}
	ch := &channel{key: key, srcComp: srcComp, remoteBus: remoteBus, remoteDst: remoteDst}
	b.writeMu.Lock()
	next := b.routing.Load().clone()
	next.addChannel(ch)
	b.routing.Store(next)
	b.writeMu.Unlock()
	b.log.Append(audit.Record{
		Kind: audit.Reconfiguration, Layer: audit.LayerMessaging, Domain: b.name,
		Src: srcComp.entity.ID(), Dst: ifc.EntityID(remoteBus + ":" + remoteDst),
		SrcCtx: ctx, Agent: by, Note: "cross-bus channel established",
	})
	return nil
}

// sendRemote ships one message down a cross-bus channel. The sender stamps
// the message with the source's *current* security context; the receiver
// enforces against it.
func (b *Bus) sendRemote(srcComp *Component, srcEP EndpointSpec, remoteBus, remoteDst string, m *msg.Message) error {
	l, err := b.linkFor(remoteBus)
	if err != nil {
		return err
	}
	payload, err := msg.EncodeBinary(m)
	if err != nil {
		return err
	}
	ctx := srcComp.Context()
	if err := l.send(linkFrame{
		Kind:         "message",
		Src:          b.name + ":" + srcComp.Name() + "." + srcEP.Name,
		Dst:          remoteDst,
		SrcSecrecy:   ctx.Secrecy,
		SrcIntegrity: ctx.Integrity,
		Schema:       srcEP.Schema.Name,
		Payload:      payload,
		Agent:        srcComp.principal,
	}); err != nil {
		return err
	}
	b.log.AppendAsync(audit.Record{
		Kind: audit.FlowAllowed, Layer: audit.LayerMessaging, Domain: b.name,
		Src: srcComp.entity.ID(), Dst: ifc.EntityID(remoteBus + ":" + remoteDst),
		SrcCtx: ctx, DataID: m.DataID, Agent: srcComp.principal,
		Note: "egress to peer bus",
	})
	return nil
}

// request performs a round trip over the link.
func (l *link) request(f linkFrame) (linkFrame, error) {
	l.mu.Lock()
	l.nextID++
	f.ID = l.nextID
	ch := make(chan linkFrame, 1)
	l.pending[f.ID] = ch
	l.mu.Unlock()

	defer func() {
		l.mu.Lock()
		delete(l.pending, f.ID)
		l.mu.Unlock()
	}()

	if err := l.send(f); err != nil {
		return linkFrame{}, err
	}
	select {
	case resp := <-ch:
		return resp, nil
	case <-time.After(connectTimeout):
		return linkFrame{}, fmt.Errorf("%w: request timed out", ErrLinkDown)
	}
}

// send serialises one frame.
func (l *link) send(f linkFrame) error {
	l.sendMu.Lock()
	defer l.sendMu.Unlock()
	return sendFrame(l.conn, f)
}

func sendFrame(conn transport.Conn, f linkFrame) error {
	b, err := json.Marshal(f)
	if err != nil {
		return fmt.Errorf("sbus: encode frame: %w", err)
	}
	return conn.Send(b)
}

func recvFrame(conn transport.Conn) (linkFrame, error) {
	raw, err := conn.Recv()
	if err != nil {
		return linkFrame{}, err
	}
	var f linkFrame
	if err := json.Unmarshal(raw, &f); err != nil {
		return linkFrame{}, fmt.Errorf("sbus: decode frame: %w", err)
	}
	return f, nil
}

// readLoop dispatches inbound frames until the connection dies.
func (l *link) readLoop() {
	for {
		f, err := recvFrame(l.conn)
		if err != nil {
			l.bus.dropLink(l)
			return
		}
		switch f.Kind {
		case "result":
			l.mu.Lock()
			ch, ok := l.pending[f.ID]
			l.mu.Unlock()
			if ok {
				ch <- f
			}
		case "connect":
			resp := linkFrame{Kind: "result", ID: f.ID, OK: true}
			if err := l.acceptIngress(f); err != nil {
				resp.OK = false
				resp.Err = err.Error()
			}
			_ = l.send(resp)
		case "message":
			l.deliverIngress(f)
		}
	}
}

// dropLink removes a dead link.
func (b *Bus) dropLink(l *link) {
	b.writeMu.Lock()
	cur := b.routing.Load()
	if live, ok := cur.links[l.peer]; ok && live == l {
		next := cur.clone()
		delete(next.links, l.peer)
		b.routing.Store(next)
	}
	b.writeMu.Unlock()
	l.conn.Close()
}

// acceptIngress validates a remote connect request against the local sink:
// schema compatibility and IFC from the advertised remote context into the
// local component's context.
func (l *link) acceptIngress(f linkFrame) error {
	b := l.bus
	dstComp, dstEP, err := b.resolveLocal(f.Dst, Sink)
	if err != nil {
		return err
	}
	if dstComp.Quarantined() {
		return fmt.Errorf("%w: %q", ErrQuarantined, dstComp.Name())
	}
	if dstEP.Schema.Name != f.Schema {
		return fmt.Errorf("%w: remote emits %q, local accepts %q", ErrSchema, f.Schema, dstEP.Schema.Name)
	}
	srcCtx := ifc.SecurityContext{Secrecy: f.SrcSecrecy, Integrity: f.SrcIntegrity}
	if err := b.admit(srcCtx); err != nil {
		b.auditDenied(ifc.EntityID(f.Src), dstComp.entity.ID(), srcCtx, dstComp.Context(),
			f.Agent, "", "ingress connect refused by admission policy: "+err.Error())
		return err
	}
	if err := ifc.EnforceFlow(srcCtx, dstComp.Context()); err != nil {
		b.auditDenied(ifc.EntityID(f.Src), dstComp.entity.ID(), srcCtx, dstComp.Context(),
			f.Agent, "", "ingress connect denied by IFC: "+err.Error())
		return err
	}
	l.mu.Lock()
	l.ingress[channelKey{src: f.Src, dst: f.Dst}] = struct{}{}
	l.mu.Unlock()
	b.log.Append(audit.Record{
		Kind: audit.Reconfiguration, Layer: audit.LayerMessaging, Domain: b.name,
		Src: ifc.EntityID(f.Src), Dst: dstComp.entity.ID(),
		SrcCtx: srcCtx, DstCtx: dstComp.Context(), Agent: f.Agent,
		Note: "cross-bus ingress accepted",
	})
	return nil
}

// deliverIngress enforces and delivers one inbound cross-bus message.
func (l *link) deliverIngress(f linkFrame) {
	b := l.bus
	l.mu.Lock()
	_, established := l.ingress[channelKey{src: f.Src, dst: f.Dst}]
	l.mu.Unlock()

	dstComp, dstEP, err := b.resolveLocal(f.Dst, Sink)
	if err != nil {
		return
	}
	srcCtx := ifc.SecurityContext{Secrecy: f.SrcSecrecy, Integrity: f.SrcIntegrity}
	dstCtx := dstComp.Context()

	if !established {
		b.auditDenied(ifc.EntityID(f.Src), dstComp.entity.ID(), srcCtx, dstCtx,
			f.Agent, "", "ingress denied: no established channel")
		return
	}
	if dstComp.Quarantined() {
		b.auditDenied(ifc.EntityID(f.Src), dstComp.entity.ID(), srcCtx, dstCtx,
			f.Agent, "", "ingress denied: destination quarantined")
		return
	}
	// The sender's context may have changed since the connect; re-admit it.
	if err := b.admit(srcCtx); err != nil {
		b.auditDenied(ifc.EntityID(f.Src), dstComp.entity.ID(), srcCtx, dstCtx,
			f.Agent, "", "ingress refused by admission policy: "+err.Error())
		return
	}
	// Ingress IFC re-check with the sender's *current* context.
	if err := ifc.EnforceFlow(srcCtx, dstCtx); err != nil {
		b.auditDenied(ifc.EntityID(f.Src), dstComp.entity.ID(), srcCtx, dstCtx,
			f.Agent, "", "ingress denied by IFC: "+err.Error())
		return
	}
	m, err := msg.DecodeBinary(f.Payload)
	if err != nil {
		b.auditDenied(ifc.EntityID(f.Src), dstComp.entity.ID(), srcCtx, dstCtx,
			f.Agent, "", "ingress denied: undecodable payload")
		return
	}
	// Message-layer enforcement against the local schema definition.
	clearance := dstComp.Clearance()
	if !dstEP.Schema.Secrecy.Subset(clearance) {
		b.auditDenied(ifc.EntityID(f.Src), dstComp.entity.ID(), srcCtx, dstCtx,
			f.Agent, m.DataID, "ingress denied: type tags exceed clearance")
		return
	}
	out, quenched := dstEP.Schema.Quench(m, clearance)

	b.log.AppendAsync(audit.Record{
		Kind: audit.FlowAllowed, Layer: audit.LayerMessaging, Domain: b.name,
		Src: ifc.EntityID(f.Src), Dst: dstComp.entity.ID(),
		SrcCtx: srcCtx, DstCtx: dstCtx, DataID: m.DataID, Agent: f.Agent,
		Note: deliveryNote(quenched),
	})
	if dstComp.handler != nil {
		dstComp.handler(out, Delivery{From: f.Src, Endpoint: dstEP.Name, Quenched: quenched})
	}
}
