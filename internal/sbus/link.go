package sbus

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"lciot/internal/audit"
	"lciot/internal/fault"
	"lciot/internal/ifc"
	"lciot/internal/msg"
	"lciot/internal/telemetry"
	"lciot/internal/transport"
)

// fpLinkSend is the chaos seam in the link writer, checked once per
// coalesced batch before the transport send. A delay stalls the writer
// (frames pile onto the bounded queue and exert backpressure); an error
// simulates the connection dying mid-send (the batch is retained and
// retransmitted after reconnect); Drop discards the batch outright — the
// silent mid-batch frame loss at-least-once delivery must tolerate.
var fpLinkSend = fault.New("sbus.link.send")

// This file implements cross-bus links: the Fig. 9 architecture where each
// machine's messaging substrate enforces IFC in its dealings with the
// substrates of other machines. The sender's bus validates egress at
// connection time; the receiver's bus re-validates ingress on every
// message against its *own* current view of the destination — neither side
// trusts the other's enforcement blindly.
//
// Link protocol v2 (see wire.go for the frame encoding) adds the
// machine-to-machine resilience the v1 JSON protocol lacked:
//
//   - One writer goroutine per link drains a bounded send queue and
//     coalesces bursts into batched transport frames (pipelining: a
//     publisher never waits for a network round trip, and a burst costs
//     one syscall, not one per message).
//   - The bounded queue applies backpressure: when the peer cannot drain
//     fast enough, enqueueing blocks up to LinkConfig.SendTimeout and then
//     fails with ErrBackpressure instead of buffering without bound.
//   - Outbound (dialed) links are self-healing: when the connection dies
//     the supervisor redials with exponential backoff and, on success,
//     resumes the session — replaying the connect handshake for every
//     egress channel routed to the peer *before* any queued traffic, so
//     the receiving bus re-validates ingress exactly as it did originally.
//     ErrLinkDown is only reported once the retry budget is exhausted.
//
// Delivery across a reconnect is at-least-once: a batch whose send failed
// mid-flight is retransmitted on the next connection, so a frame that did
// reach the peer before the failure can be delivered twice. The receiving
// bus enforces (and audits) each copy independently.

// ErrLinkDown is returned when a cross-bus operation has no live link and
// no prospect of one: the peer was never linked, the retry budget is
// exhausted, or the link was replaced or closed.
var ErrLinkDown = errors.New("sbus: link down")

// ErrBackpressure is returned when a link's bounded send queue stays full
// for longer than LinkConfig.SendTimeout — the peer (or the network) is
// not draining egress fast enough.
var ErrBackpressure = errors.New("sbus: link send queue full")

// ErrResidency is returned when link egress would move
// residency-constrained data to a peer bus outside the data's allowed
// jurisdictions (or to one that declared none). Denials are audited like
// any other flow denial.
var ErrResidency = errors.New("sbus: residency violation")

// connectTimeout bounds cross-bus connect handshakes.
const connectTimeout = 10 * time.Second

// maxBatchBytes caps the payload bytes coalesced into one transport frame
// so a batch normally stays far below transport.MaxFrameSize.
const maxBatchBytes = 1 << 20

// maxEgressFrame is the largest single encoded frame a link accepts:
// anything bigger could never cross the transport, so it is rejected at
// enqueue time instead of poisoning a coalesced batch at send time.
const maxEgressFrame = transport.MaxFrameSize - batchHeaderLen

// LinkConfig tunes link behaviour for a bus. The zero value selects the
// defaults; set it with Bus.SetLinkConfig before establishing links.
type LinkConfig struct {
	// QueueLen bounds the per-link egress queue, in frames (default 1024).
	QueueLen int
	// SendTimeout is how long an egress operation may wait for queue space
	// before failing with ErrBackpressure (default 2s).
	SendTimeout time.Duration
	// MaxBatch caps the frames coalesced into one transport frame
	// (default 64).
	MaxBatch int
	// RetryBudget is the number of consecutive failed reconnect attempts
	// after which an outbound link gives up and reports ErrLinkDown
	// (default 8).
	RetryBudget int
	// BackoffBase and BackoffMax shape the exponential reconnect backoff
	// (defaults 50ms and 5s).
	BackoffBase time.Duration
	BackoffMax  time.Duration
}

// withDefaults fills zero fields with the default tuning.
func (c LinkConfig) withDefaults() LinkConfig {
	if c.QueueLen <= 0 {
		c.QueueLen = 1024
	}
	if c.SendTimeout <= 0 {
		c.SendTimeout = 2 * time.Second
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 64
	}
	if c.RetryBudget <= 0 {
		c.RetryBudget = 8
	}
	if c.BackoffBase <= 0 {
		c.BackoffBase = 50 * time.Millisecond
	}
	if c.BackoffMax <= 0 {
		c.BackoffMax = 5 * time.Second
	}
	return c
}

// SetLinkConfig installs the link tuning used by links established from
// now on; existing links keep the configuration they were created with.
func (b *Bus) SetLinkConfig(cfg LinkConfig) {
	c := cfg.withDefaults()
	b.linkCfg.Store(&c)
}

// linkConfig returns the bus's current link tuning.
func (b *Bus) linkConfig() LinkConfig {
	if c := b.linkCfg.Load(); c != nil {
		return *c
	}
	return LinkConfig{}.withDefaults()
}

// LinkState is the lifecycle state of a link.
type LinkState int

const (
	// LinkUp: a live connection is attached.
	LinkUp LinkState = iota
	// LinkReconnecting: the connection died and the supervisor is redialing.
	LinkReconnecting
	// LinkClosed: the link was replaced, closed, or gave up reconnecting.
	LinkClosed
)

// String renders the state for status displays.
func (s LinkState) String() string {
	switch s {
	case LinkUp:
		return "up"
	case LinkReconnecting:
		return "reconnecting"
	case LinkClosed:
		return "closed"
	}
	return fmt.Sprintf("LinkState(%d)", int(s))
}

// LinkStatus is a point-in-time snapshot of one link, for operators
// (lciotd logs it) and tests.
type LinkStatus struct {
	// Peer is the remote bus name.
	Peer string
	// Addr is the dial address for outbound links, the remote address of
	// the accepted connection otherwise.
	Addr string
	// Dialer reports whether this side dialed the link (and therefore owns
	// reconnection); accepted links heal when the peer redials.
	Dialer bool
	// State is the current lifecycle state.
	State LinkState
	// QueueDepth and QueueCap describe the egress queue; QueueHighWater
	// is the deepest the queue has ever been on this link — sustained
	// values near QueueCap forewarn of ErrBackpressure.
	QueueDepth     int
	QueueCap       int
	QueueHighWater uint64
	// Reconnects counts successful session resumptions.
	Reconnects uint64
	// PeerJurisdiction is the jurisdiction set the peer declared in its
	// hello (empty = undeclared: residency-constrained egress is denied).
	PeerJurisdiction ifc.Label
}

// A link is a connection to a peer bus. For outbound links the identity is
// stable across reconnects: the conn changes underneath while the send
// queue, pending requests and routing entry survive, so traffic buffered
// during an outage flows once the session resumes.
type link struct {
	bus  *Bus
	peer string
	cfg  LinkConfig

	// network/addr are the dialer's reconnect coordinates; network is nil
	// for accepted (inbound) links, which cannot redial — the peer does.
	network transport.Network
	addr    string

	// sendQ carries encoded frames (no batch header) to the writer.
	sendQ chan []byte
	// done is closed on shutdown to release enqueuers and the writer.
	done chan struct{}

	mu   sync.Mutex
	cond *sync.Cond
	// conn is the live connection, nil while reconnecting.
	conn   transport.Conn
	state  LinkState
	closed bool
	nextID uint64
	// peerJur is the jurisdiction set the peer declared in its hello,
	// refreshed on every (re)connect; the egress residency gate reads it.
	peerJur ifc.Label
	// pending maps request IDs to reply channels; closed (not replied) when
	// the link shuts down so callers fail fast instead of timing out.
	pending map[uint64]chan LinkFrame
	// ingress records remotely-established channels into this bus:
	// key = {remote src full addr, local dst}.
	ingress    map[channelKey]struct{}
	reconnects uint64

	// highWater tracks the deepest the send queue has been — the overload
	// indicator operators watch (LinkStatus.QueueHighWater): a depth that
	// keeps touching QueueCap means egress is about to hit backpressure.
	highWater atomic.Uint64

	// wireVer is the link protocol version negotiated with the peer at
	// hello time (refreshed on every reconnect): frames queue in v5 form
	// and the writer truncates their trailers down to what this version
	// carries (v4 loses the egress bytes, v3 the whole trailer).
	wireVer atomic.Uint32

	// txBytes/rxBytes/batchFrames are the link's telemetry instruments
	// (bytes on and off the wire, frames per coalesced batch); stageHop is
	// the per-peer link_egress→ingress stage edge, observed at ingress
	// from the v5 egress timestamp.
	txBytes     *telemetry.Counter
	rxBytes     *telemetry.Counter
	batchFrames *telemetry.Histogram
	stageHop    *telemetry.Histogram
}

// noteDepth folds the current queue depth into the high-water mark; called
// after each successful enqueue.
func (l *link) noteDepth() {
	d := uint64(len(l.sendQ))
	for {
		hw := l.highWater.Load()
		if d <= hw || l.highWater.CompareAndSwap(hw, d) {
			return
		}
	}
}

// wireVersion reads the negotiated protocol version (v3 until a hello
// says otherwise).
func (l *link) wireVersion() byte {
	if v := l.wireVer.Load(); v >= linkVersionMin {
		return byte(v)
	}
	return linkVersionMin
}

// newLink builds a link shell (no connection attached yet).
func (b *Bus) newLink(peer string, network transport.Network, addr string) *link {
	cfg := b.linkConfig()
	l := &link{
		bus:     b,
		peer:    peer,
		cfg:     cfg,
		network: network,
		addr:    addr,
		sendQ:   make(chan []byte, cfg.QueueLen),
		done:    make(chan struct{}),
		state:   LinkReconnecting,
		pending: make(map[uint64]chan LinkFrame),
		ingress: make(map[channelKey]struct{}),
	}
	l.cond = sync.NewCond(&l.mu)
	reg := telemetry.Default()
	l.txBytes = reg.Counter("sbus_link_tx_bytes_total", "bus", b.name, "peer", peer)
	l.rxBytes = reg.Counter("sbus_link_rx_bytes_total", "bus", b.name, "peer", peer)
	l.batchFrames = reg.Histogram("sbus_link_batch_frames", "bus", b.name, "peer", peer)
	l.stageHop = reg.Histogram("stage_link_hop_ns", "bus", b.name, "peer", peer)
	// Queue depth, high water and reconnects are state the link keeps
	// anyway: registered func-backed, they cost the data path nothing. A
	// replacement link to the same peer re-registers the series and takes
	// them over.
	reg.GaugeFunc("sbus_link_queue_depth", func() float64 { return float64(len(l.sendQ)) },
		"bus", b.name, "peer", peer)
	reg.GaugeFunc("sbus_link_queue_cap", func() float64 { return float64(cap(l.sendQ)) },
		"bus", b.name, "peer", peer)
	reg.GaugeFunc("sbus_link_queue_highwater", func() float64 { return float64(l.highWater.Load()) },
		"bus", b.name, "peer", peer)
	reg.CounterFunc("sbus_link_reconnects_total", func() float64 {
		l.mu.Lock()
		defer l.mu.Unlock()
		return float64(l.reconnects)
	}, "bus", b.name, "peer", peer)
	return l
}

// negotiateWire folds a hello's version advertisement (the hello frame's
// ID field; zero from a v3 build, which advertised nothing) into the
// session version: min(ours, theirs), clamped to the supported range.
func negotiateWire(local byte, advert uint64) byte {
	theirs := byte(linkVersionMin)
	if advert >= linkVersionMin && advert <= 0xFF {
		theirs = byte(advert)
	}
	if theirs < local {
		return theirs
	}
	return local
}

// dialHello dials a peer and performs the hello exchange, returning the
// live connection, the peer's bus name, its declared jurisdiction and the
// negotiated link protocol version.
func dialHello(b *Bus, network transport.Network, addr string) (transport.Conn, string, ifc.Label, byte, error) {
	conn, err := network.Dial(addr)
	if err != nil {
		return nil, "", ifc.EmptyLabel, 0, err
	}
	hello := LinkFrame{Kind: "hello", ID: uint64(b.maxWire()), Bus: b.name, SrcJurisdiction: b.Jurisdiction()}
	buf, err := encodeSingle(&hello)
	if err != nil {
		conn.Close()
		return nil, "", ifc.EmptyLabel, 0, err
	}
	if err := conn.Send(buf); err != nil {
		conn.Close()
		return nil, "", ifc.EmptyLabel, 0, err
	}
	raw, err := conn.Recv()
	if err != nil {
		conn.Close()
		return nil, "", ifc.EmptyLabel, 0, err
	}
	frames, err := DecodeBatch(raw)
	if err != nil {
		conn.Close()
		return nil, "", ifc.EmptyLabel, 0, fmt.Errorf("sbus: hello from %s: %w", addr, err)
	}
	if len(frames) != 1 || frames[0].Kind != "hello" || frames[0].Bus == "" {
		conn.Close()
		return nil, "", ifc.EmptyLabel, 0, fmt.Errorf("%w: bad hello from %s", ErrProtocol, addr)
	}
	return conn, frames[0].Bus, frames[0].SrcJurisdiction, negotiateWire(b.maxWire(), frames[0].ID), nil
}

// LinkTo dials a peer bus, performs the hello exchange and starts the
// link's writer and supervisor. It returns the peer's bus name. Any egress
// channels already routed to that peer (from an earlier link) are replayed
// so the session resumes where it left off.
func (b *Bus) LinkTo(network transport.Network, addr string) (string, error) {
	conn, peer, peerJur, wireVer, err := dialHello(b, network, addr)
	if err != nil {
		return "", err
	}
	l := b.newLink(peer, network, addr)
	l.peerJur = peerJur
	l.wireVer.Store(uint32(wireVer))
	// Replay any surviving egress channels *before* addLink makes the
	// link routable: once publishers can reach the queue, their message
	// frames must never get ahead of the connect handshakes.
	l.replayEgress(conn)
	l.setConn(conn)
	b.addLink(l)
	go l.writeLoop()
	go l.supervise(conn)
	return peer, nil
}

// ServeLink handles one inbound link connection (blocking until the hello
// completes; the read loop then runs in the background). A peer speaking
// an incompatible protocol version — including legacy v1 JSON — is
// rejected with ErrProtocol.
func (b *Bus) ServeLink(conn transport.Conn) error {
	raw, err := conn.Recv()
	if err != nil {
		conn.Close()
		return err
	}
	frames, err := DecodeBatch(raw)
	if err != nil {
		conn.Close()
		return fmt.Errorf("sbus: link handshake: %w", err)
	}
	if len(frames) != 1 || frames[0].Kind != "hello" || frames[0].Bus == "" {
		conn.Close()
		return fmt.Errorf("%w: handshake did not open with hello", ErrProtocol)
	}
	reply := LinkFrame{Kind: "hello", ID: uint64(b.maxWire()), Bus: b.name, SrcJurisdiction: b.Jurisdiction()}
	buf, err := encodeSingle(&reply)
	if err != nil {
		conn.Close()
		return err
	}
	if err := conn.Send(buf); err != nil {
		conn.Close()
		return err
	}
	l := b.newLink(frames[0].Bus, nil, conn.RemoteAddr())
	l.peerJur = frames[0].SrcJurisdiction
	l.wireVer.Store(uint32(negotiateWire(b.maxWire(), frames[0].ID)))
	// As in LinkTo: re-establish this bus's own egress channels over the
	// fresh inbound link before it becomes routable.
	l.replayEgress(conn)
	l.setConn(conn)
	b.addLink(l)
	go l.writeLoop()
	go l.supervise(conn)
	return nil
}

// Serve accepts link connections until the listener closes. Handshake
// failures (version mismatches, malformed hellos) are audited; they never
// stop the accept loop.
func (b *Bus) Serve(listener transport.Listener) {
	for {
		conn, err := listener.Accept()
		if err != nil {
			return
		}
		go func() {
			if err := b.ServeLink(conn); err != nil {
				b.log.Append(audit.Record{
					Kind: audit.FlowDenied, Layer: audit.LayerMessaging, Domain: b.name,
					Note: "link handshake rejected: " + err.Error(),
				})
			}
		}()
	}
}

// addLink publishes a link, replacing any prior link to the same peer. The
// replaced link is shut down: its pending requests fail immediately with
// ErrLinkDown rather than waiting out their timeouts.
func (b *Bus) addLink(l *link) {
	b.linkMu.Lock()
	cur := *b.links.Load()
	old := cur[l.peer]
	next := make(map[string]*link, len(cur)+1)
	for k, v := range cur {
		next[k] = v
	}
	next[l.peer] = l
	b.links.Store(&next)
	b.linkMu.Unlock()
	if old != nil {
		old.shutdown()
	}
	b.log.Append(audit.Record{
		Kind: audit.Reconfiguration, Layer: audit.LayerMessaging, Domain: b.name,
		Dst: ifc.EntityID(l.peer), Note: "link established to peer bus",
	})
}

// removeLink retires a dead link: it is dropped from routing (unless a
// replacement already took its slot) and shut down. Channels routed to the
// peer stay in the table — a later LinkTo resumes them.
func (b *Bus) removeLink(l *link, note string) {
	b.linkMu.Lock()
	cur := *b.links.Load()
	if live, ok := cur[l.peer]; ok && live == l {
		next := make(map[string]*link, len(cur))
		for k, v := range cur {
			if k != l.peer {
				next[k] = v
			}
		}
		b.links.Store(&next)
	}
	b.linkMu.Unlock()
	l.shutdown()
	b.log.Append(audit.Record{
		Kind: audit.Reconfiguration, Layer: audit.LayerMessaging, Domain: b.name,
		Dst: ifc.EntityID(l.peer), Note: "link closed: " + note,
	})
}

// shutdown closes the link: the conn is torn down, enqueuers and the
// writer are released, and every pending request fails fast.
func (l *link) shutdown() {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return
	}
	l.closed = true
	l.state = LinkClosed
	conn := l.conn
	l.conn = nil
	for id, ch := range l.pending {
		close(ch)
		delete(l.pending, id)
	}
	l.cond.Broadcast()
	l.mu.Unlock()
	close(l.done)
	if conn != nil {
		conn.Close()
	}
}

// setConn attaches a live connection and wakes the writer.
func (l *link) setConn(conn transport.Conn) {
	l.mu.Lock()
	l.conn = conn
	l.state = LinkUp
	l.cond.Broadcast()
	l.mu.Unlock()
}

// noteConnDead detaches conn if it is still current and closes it, moving
// the link to reconnecting; idempotent across the writer and reader both
// observing the same failure.
func (l *link) noteConnDead(conn transport.Conn) {
	l.mu.Lock()
	if l.conn == conn {
		l.conn = nil
		if !l.closed {
			l.state = LinkReconnecting
		}
	}
	l.mu.Unlock()
	conn.Close()
}

// waitConn blocks until a live connection is attached, returning nil once
// the link is closed.
func (l *link) waitConn() transport.Conn {
	l.mu.Lock()
	defer l.mu.Unlock()
	for l.conn == nil && !l.closed {
		l.cond.Wait()
	}
	return l.conn
}

// status snapshots the link for LinkStatus.
func (l *link) status() LinkStatus {
	l.mu.Lock()
	defer l.mu.Unlock()
	return LinkStatus{
		Peer:             l.peer,
		Addr:             l.addr,
		Dialer:           l.network != nil,
		State:            l.state,
		QueueDepth:       len(l.sendQ),
		QueueCap:         cap(l.sendQ),
		QueueHighWater:   l.highWater.Load(),
		Reconnects:       l.reconnects,
		PeerJurisdiction: l.peerJur,
	}
}

// peerJurisdiction reads the peer's declared jurisdiction.
func (l *link) peerJurisdiction() ifc.Label {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.peerJur
}

// linkFor returns the link to a peer (which may be mid-reconnect: egress
// enqueued then flows when the session resumes).
func (b *Bus) linkFor(peer string) (*link, error) {
	l, ok := (*b.links.Load())[peer]
	if !ok {
		return nil, fmt.Errorf("%w: no link to bus %q", ErrLinkDown, peer)
	}
	return l, nil
}

// linkTo returns the live link to a peer, or nil (internal; tests).
func (b *Bus) linkTo(peer string) *link {
	return (*b.links.Load())[peer]
}

// Links lists connected peer bus names.
func (b *Bus) Links() []string {
	m := *b.links.Load()
	out := make([]string, 0, len(m))
	for p := range m {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// LinkHealthFingerprint folds every link's peer name and state into one
// value that changes whenever link health changes. Unlike LinkStatus it
// never allocates, so health polls can consult it cheaply and rebuild the
// full status only when something actually moved.
func (b *Bus) LinkHealthFingerprint() uint64 {
	const (
		fnvOffset = 14695981039346656037
		fnvPrime  = 1099511628211
	)
	// Per-link hashes are summed, not chained: map iteration order is
	// random, and the fingerprint must not depend on it.
	var h uint64
	for peer, l := range *b.links.Load() {
		ph := uint64(fnvOffset)
		for i := 0; i < len(peer); i++ {
			ph = (ph ^ uint64(peer[i])) * fnvPrime
		}
		l.mu.Lock()
		st := l.state
		l.mu.Unlock()
		ph = (ph ^ (uint64(st) + 1)) * fnvPrime
		h += ph
	}
	return h
}

// LinkStatus snapshots every link, sorted by peer name.
func (b *Bus) LinkStatus() []LinkStatus {
	m := *b.links.Load()
	out := make([]LinkStatus, 0, len(m))
	for _, l := range m {
		out = append(out, l.status())
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Peer < out[j].Peer })
	return out
}

// --- egress ---

// enqueue hands one encoded frame to the writer, blocking up to
// SendTimeout for queue space (backpressure) before failing.
func (l *link) enqueue(frame []byte) error {
	if len(frame) > maxEgressFrame {
		return fmt.Errorf("%w: %d byte frame", transport.ErrFrameSize, len(frame))
	}
	select {
	case <-l.done:
		return fmt.Errorf("%w: to bus %q", ErrLinkDown, l.peer)
	default:
	}
	select {
	case l.sendQ <- frame:
		l.noteDepth()
		return nil
	default:
	}
	t := time.NewTimer(l.cfg.SendTimeout)
	defer t.Stop()
	select {
	case l.sendQ <- frame:
		l.noteDepth()
		return nil
	case <-l.done:
		return fmt.Errorf("%w: to bus %q", ErrLinkDown, l.peer)
	case <-t.C:
		return fmt.Errorf("%w: bus %q has not drained %d frames in %v",
			ErrBackpressure, l.peer, cap(l.sendQ), l.cfg.SendTimeout)
	}
}

// sendFrame encodes one frame (v5 form; the writer strips the trailer
// suffixes for v4/v3 peers) and enqueues it.
func (l *link) sendFrame(f *LinkFrame) error {
	buf, err := appendLinkFrameV5(nil, f)
	if err != nil {
		return err
	}
	return l.enqueue(buf)
}

// writeLoop is the link's single writer: it drains the queue, coalesces
// bursts into one batched transport frame, and retransmits a batch whose
// send failed once the supervisor attaches a fresh connection.
func (l *link) writeLoop() {
	var batch [][]byte
	// carry holds a frame taken off the queue that would overflow the
	// current batch; it opens the next one.
	var carry []byte
	var buf []byte
	for {
		// Wait for a live conn *before* draining the queue: while the link
		// is reconnecting, frames stay on the bounded queue where they
		// exert backpressure, instead of hiding in the writer's batch.
		conn := l.waitConn()
		if conn == nil {
			return // link closed
		}
		if len(batch) == 0 {
			if carry != nil {
				batch = append(batch, carry)
				carry = nil
			} else {
				select {
				case f := <-l.sendQ:
					batch = append(batch, f)
				case <-l.done:
					return
				}
			}
			size := len(batch[0])
		coalesce:
			for len(batch) < l.cfg.MaxBatch && size < maxBatchBytes {
				select {
				case f := <-l.sendQ:
					// Enqueue bounds each frame to maxEgressFrame, so any
					// single frame fits in a batch of one; a frame that
					// would push this batch past the transport limit waits
					// in carry and opens the next one.
					if size+len(f) > maxEgressFrame {
						carry = f
						break coalesce
					}
					batch = append(batch, f)
					size += len(f)
				default:
					break coalesce
				}
			}
		}
		if act := fpLinkSend.Check(); act != nil {
			act.Wait() // stall: queued frames back up and exert backpressure
			if act.Drop {
				// Mid-batch frame drop: the coalesced batch vanishes without
				// ever reaching the transport.
				batch = batch[:0]
				continue
			}
			if act.Err != nil {
				// Injected connection death: keep the batch and let the
				// supervisor redial, exercising the retransmit path.
				l.noteConnDead(conn)
				continue
			}
		}
		// Queued frames carry the full v5 trailer; emit them as-is to a
		// v5 peer, with the egress bytes truncated to a v4 peer, or with
		// the whole fixed-size trailer truncated (traces and stage stamps
		// dropped cleanly, nothing re-encoded) to a v3 peer. The version
		// is re-read per batch: a reconnect may have renegotiated it.
		ver := l.wireVersion()
		buf = appendBatchHeaderV(buf[:0], ver, len(batch))
		for _, f := range batch {
			switch {
			case ver < 4:
				f = f[:len(f)-trailerLenV5]
			case ver < 5:
				f = f[:len(f)-egressTrailerLen]
			}
			buf = append(buf, f...)
		}
		if err := conn.Send(buf); err != nil {
			// The conn died mid-send: keep the batch for retransmission on
			// the next connection and kick the supervisor via the closed
			// conn (its Recv fails immediately).
			l.noteConnDead(conn)
			continue
		}
		l.txBytes.Add(uint64(len(buf)))
		l.batchFrames.Observe(int64(len(batch)))
		batch = batch[:0]
	}
}

// --- reconnect & resume ---

// supervise owns the link's connection lifecycle: it runs the read loop
// until the conn dies, then — for outbound links — redials with backoff
// and resumes the session. Inbound links are retired on failure; the peer
// owns redialing.
func (l *link) supervise(conn transport.Conn) {
	for {
		l.readLoop(conn)
		l.mu.Lock()
		closed := l.closed
		l.mu.Unlock()
		if closed {
			return
		}
		if l.network == nil {
			l.bus.removeLink(l, "peer connection lost")
			return
		}
		l.bus.log.Append(audit.Record{
			Kind: audit.Reconfiguration, Layer: audit.LayerMessaging, Domain: l.bus.name,
			Dst: ifc.EntityID(l.peer), Note: "link lost, reconnecting",
		})
		next, attempts, err := l.redial()
		if next == nil {
			detail := "link retry budget exhausted"
			if err != nil {
				detail += ": " + err.Error()
			}
			l.bus.removeLink(l, detail)
			return
		}
		l.mu.Lock()
		l.reconnects++
		nth := l.reconnects
		l.mu.Unlock()
		replayed := l.replayEgress(next)
		l.setConn(next)
		l.bus.log.Append(audit.Record{
			Kind: audit.Reconfiguration, Layer: audit.LayerMessaging, Domain: l.bus.name,
			Dst: ifc.EntityID(l.peer),
			Note: fmt.Sprintf("link resumed after %d attempts (reconnect #%d), %d channels replayed",
				attempts, nth, replayed),
		})
		conn = next
	}
}

// redial attempts to re-establish the connection with exponential backoff,
// up to the retry budget.
func (l *link) redial() (transport.Conn, int, error) {
	backoff := l.cfg.BackoffBase
	var lastErr error
	for attempt := 1; attempt <= l.cfg.RetryBudget; attempt++ {
		select {
		case <-l.done:
			return nil, attempt - 1, nil
		case <-time.After(backoff):
		}
		backoff *= 2
		if backoff > l.cfg.BackoffMax {
			backoff = l.cfg.BackoffMax
		}
		conn, peer, peerJur, wireVer, err := dialHello(l.bus, l.network, l.addr)
		if err != nil {
			lastErr = err
			continue
		}
		if peer != l.peer {
			conn.Close()
			lastErr = fmt.Errorf("address %q now answers as bus %q, expected %q", l.addr, peer, l.peer)
			continue
		}
		l.mu.Lock()
		l.peerJur = peerJur // the peer may have redeclared (e.g. migrated)
		l.mu.Unlock()
		l.wireVer.Store(uint32(wireVer)) // the peer may have up/downgraded
		return conn, attempt, nil
	}
	return nil, l.cfg.RetryBudget, lastErr
}

// replayEgress re-establishes every egress channel routed to this peer by
// replaying its connect handshake, so the remote bus re-runs its ingress
// validation (admission, schema, IFC) against current state. The frames
// are written directly to conn before the writer is released (and before
// a fresh link is even routable), so traffic queued during an outage —
// or published concurrently — can never arrive ahead of the channels it
// needs. Channels the peer now refuses are torn down and audited.
// Returns the number of channels replayed.
func (l *link) replayEgress(conn transport.Conn) int {
	b := l.bus
	type waiter struct {
		key channelKey
		ch  chan LinkFrame
	}
	var frames []LinkFrame
	var waiters []waiter
	var ids []uint64
	for _, ch := range b.ownedChannels() {
		if ch.remoteBus != l.peer {
			continue
		}
		ctx := ch.srcComp.Context()
		f := LinkFrame{
			Kind:            "connect",
			Src:             b.name + ":" + ch.key.src,
			Dst:             ch.remoteDst,
			SrcSecrecy:      ctx.Secrecy,
			SrcIntegrity:    ctx.Integrity,
			SrcJurisdiction: ctx.Jurisdiction,
			SrcPurpose:      ctx.Purpose,
			Schema:          ch.srcEP.Schema.Name,
			Agent:           ch.agent,
		}
		l.mu.Lock()
		if l.closed {
			l.mu.Unlock()
			return 0
		}
		l.nextID++
		f.ID = l.nextID
		rc := make(chan LinkFrame, 1)
		l.pending[f.ID] = rc
		l.mu.Unlock()
		frames = append(frames, f)
		waiters = append(waiters, waiter{key: ch.key, ch: rc})
		ids = append(ids, f.ID)
	}
	if len(frames) == 0 {
		return 0
	}
	// Chunk the handshakes into writer-sized batches — a federation can
	// route more channels than one transport frame (or the u16 batch
	// count) holds. A send failure closes the conn so the supervisor's
	// read loop fails immediately and the next reconnect replays from
	// scratch — never a half-resumed session that looks up. Unencodable
	// connects (>64KiB field) are skipped; their waiters time out.
	count := 0
	ver := l.wireVersion()
	var body []byte
	flush := func() bool {
		if count == 0 {
			return true
		}
		packed := appendBatchHeaderV(nil, ver, count)
		packed = append(packed, body...)
		if err := conn.Send(packed); err != nil {
			conn.Close()
			count, body = 0, body[:0]
			return false
		}
		l.txBytes.Add(uint64(len(packed)))
		count, body = 0, body[:0]
		return true
	}
	appendFrame := AppendLinkFrame
	switch {
	case ver >= 5:
		appendFrame = appendLinkFrameV5
	case ver >= 4:
		appendFrame = appendLinkFrameV4
	}
	for i := range frames {
		next, err := appendFrame(body, &frames[i])
		if err != nil {
			continue
		}
		body = next
		count++
		if count >= l.cfg.MaxBatch || len(body) >= maxBatchBytes {
			if !flush() {
				break
			}
		}
	}
	flush()
	go func() {
		defer func() {
			l.mu.Lock()
			for _, id := range ids {
				delete(l.pending, id)
			}
			l.mu.Unlock()
		}()
		timeout := time.After(connectTimeout)
		for _, w := range waiters {
			select {
			case resp, ok := <-w.ch:
				if ok && !resp.OK {
					// The peer's current state refuses this channel: keeping
					// it routed would silently drop every message.
					if b.uninstallChannel(w.key, nil) {
						b.log.Append(audit.Record{
							Kind: audit.Reconfiguration, Layer: audit.LayerMessaging, Domain: b.name,
							Src: ifc.EntityID(b.name + ":" + w.key.src), Dst: ifc.EntityID(w.key.dst),
							Note: "cross-bus channel torn down: resume refused: " + resp.Err,
						})
					}
				}
			case <-timeout:
				return
			case <-l.done:
				return
			}
		}
	}()
	return len(frames)
}

// checkEgressResidency is the residency gate on link egress: data whose
// context constrains jurisdiction may only leave for a peer bus that
// declared itself inside the allowed set in its federation hello. The
// denial is audited like an ordinary flow denial — "data never leaves an
// allowed region" is precisely the evidence a regulator asks for.
func (b *Bus) checkEgressResidency(l *link, src ifc.EntityID, ctx ifc.SecurityContext,
	agent ifc.PrincipalID, dataID string) error {
	if ctx.Jurisdiction.IsEmpty() {
		return nil
	}
	peerJur := l.peerJurisdiction()
	if !peerJur.IsEmpty() && peerJur.Subset(ctx.Jurisdiction) {
		return nil
	}
	declared := peerJur.String()
	if peerJur.IsEmpty() {
		declared = "none"
	}
	b.auditDenied(src, ifc.EntityID(l.peer), ctx, ifc.SecurityContext{Jurisdiction: peerJur},
		agent, dataID, fmt.Sprintf("egress denied: residency restricted to %s, peer bus %q declares %s",
			ctx.Jurisdiction, l.peer, declared))
	return fmt.Errorf("%w: data restricted to %s, peer bus %q declares %s",
		ErrResidency, ctx.Jurisdiction, l.peer, declared)
}

// connectRemote establishes a channel whose sink lives on a peer bus. The
// remote bus performs the authoritative ingress checks and replies; the
// local bus enforces residency before the request even leaves.
func (b *Bus) connectRemote(by ifc.PrincipalID, srcComp *Component, srcEP EndpointSpec,
	src, remoteBus, remoteDst string) error {
	l, err := b.linkFor(remoteBus)
	if err != nil {
		return err
	}
	ctx := srcComp.Context()
	if err := b.checkEgressResidency(l, srcComp.entity.ID(), ctx, by, ""); err != nil {
		return err
	}
	resp, err := l.request(LinkFrame{
		Kind:            "connect",
		Src:             b.name + ":" + src,
		Dst:             remoteDst,
		SrcSecrecy:      ctx.Secrecy,
		SrcIntegrity:    ctx.Integrity,
		SrcJurisdiction: ctx.Jurisdiction,
		SrcPurpose:      ctx.Purpose,
		Schema:          srcEP.Schema.Name,
		Agent:           by,
	})
	if err != nil {
		return err
	}
	if !resp.OK {
		return fmt.Errorf("sbus: remote bus %q refused connect: %s", remoteBus, resp.Err)
	}
	key := channelKey{src: src, dst: remoteBus + ":" + remoteDst}
	ch := &channel{
		key: key, srcComp: srcComp, srcEP: srcEP, agent: by,
		remoteBus: remoteBus, remoteDst: remoteDst,
	}
	b.installChannel(ch)
	b.log.Append(audit.Record{
		Kind: audit.Reconfiguration, Layer: audit.LayerMessaging, Domain: b.name,
		Src: srcComp.entity.ID(), Dst: ifc.EntityID(remoteBus + ":" + remoteDst),
		SrcCtx: ctx, Agent: by, Note: "cross-bus channel established",
	})
	return nil
}

// sendRemote ships one message down a cross-bus channel. The sender stamps
// the message with the source's *current* security context; the receiver
// enforces against it. The frame — header fields and the message's binary
// payload — is encoded in one pass into a single buffer that the writer
// goroutine takes ownership of.
func (b *Bus) sendRemote(srcComp *Component, srcEP EndpointSpec, remoteBus, remoteDst string, m *msg.Message) error {
	l, err := b.linkFor(remoteBus)
	if err != nil {
		return err
	}
	ctx := srcComp.Context()
	// Residency gate: constrained data never leaves an allowed region,
	// checked per message because the source's context (and the peer's
	// declaration, across reconnects) may have changed since connect.
	if err := b.checkEgressResidency(l, srcComp.entity.ID(), ctx, srcComp.principal, m.DataID); err != nil {
		return err
	}
	f := LinkFrame{
		Kind:            "message",
		Src:             b.name + ":" + srcComp.Name() + "." + srcEP.Name,
		Dst:             remoteDst,
		SrcSecrecy:      ctx.Secrecy,
		SrcIntegrity:    ctx.Integrity,
		SrcJurisdiction: ctx.Jurisdiction,
		SrcPurpose:      ctx.Purpose,
		Schema:          srcEP.Schema.Name,
		Agent:           srcComp.principal,
		Trace:           m.Trace,
	}
	if m.Stage != nil {
		// Stage-attributed flow: stamp link egress so the receiver can
		// observe the link-hop edge and resume the stage clock (v5 trailer;
		// older peers never see the stamp — writeLoop strips it).
		f.EgressNs = uint64(time.Now().UnixNano())
	}
	buf, err := appendMessageFrame(nil, &f, m)
	if err != nil {
		return err
	}
	if err := l.enqueue(buf); err != nil {
		return err
	}
	if !m.Trace.IsZero() { // guard: skip the dst formatting for untraced flows
		telemetry.RecordSpan(m.Trace, b.name, "egress", f.Src, remoteBus+":"+remoteDst, "")
	}
	b.log.AppendAsync(audit.Record{
		Kind: audit.FlowAllowed, Layer: audit.LayerMessaging, Domain: b.name,
		Src: srcComp.entity.ID(), Dst: ifc.EntityID(remoteBus + ":" + remoteDst),
		SrcCtx: ctx, DataID: m.DataID, Agent: srcComp.principal,
		Note: "egress to peer bus", TraceID: m.Trace.ID.String(),
	})
	return nil
}

// request performs a round trip over the link. It fails fast — not by
// timeout — when the link shuts down while the reply is pending.
func (l *link) request(f LinkFrame) (LinkFrame, error) {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return LinkFrame{}, fmt.Errorf("%w: to bus %q", ErrLinkDown, l.peer)
	}
	l.nextID++
	f.ID = l.nextID
	ch := make(chan LinkFrame, 1)
	l.pending[f.ID] = ch
	l.mu.Unlock()

	defer func() {
		l.mu.Lock()
		delete(l.pending, f.ID)
		l.mu.Unlock()
	}()

	if err := l.sendFrame(&f); err != nil {
		return LinkFrame{}, err
	}
	select {
	case resp, ok := <-ch:
		if !ok {
			return LinkFrame{}, fmt.Errorf("%w: link to bus %q closed awaiting reply", ErrLinkDown, l.peer)
		}
		return resp, nil
	case <-time.After(connectTimeout):
		return LinkFrame{}, fmt.Errorf("%w: request timed out", ErrLinkDown)
	}
}

// readLoop dispatches inbound frames until the connection dies.
func (l *link) readLoop(conn transport.Conn) {
	for {
		raw, err := conn.Recv()
		if err != nil {
			l.noteConnDead(conn)
			return
		}
		l.rxBytes.Add(uint64(len(raw)))
		frames, err := DecodeBatch(raw)
		if err != nil {
			// Mid-session garbage: drop the conn; the supervisor (or the
			// peer) re-establishes a clean session.
			l.noteConnDead(conn)
			return
		}
		for i := range frames {
			l.dispatch(conn, &frames[i])
		}
	}
}

// dispatch handles one inbound frame read from conn.
func (l *link) dispatch(conn transport.Conn, f *LinkFrame) {
	switch f.Kind {
	case "result":
		l.mu.Lock()
		if ch, ok := l.pending[f.ID]; ok {
			select {
			case ch <- *f:
			default:
			}
		}
		l.mu.Unlock()
	case "connect":
		resp := LinkFrame{Kind: "result", ID: f.ID, OK: true}
		if err := l.acceptIngress(*f); err != nil {
			resp.OK = false
			resp.Err = err.Error()
		}
		// Reply directly on the conn the request arrived on (transports
		// serialise concurrent Sends): control-plane replies must not
		// contend with — or be dropped by — the backpressured data queue,
		// where a full queue would stall this read loop and strand the
		// peer's request until its timeout.
		if buf, err := encodeSingle(&resp); err == nil {
			if err := conn.Send(buf); err != nil {
				l.noteConnDead(conn)
			}
		}
	case "message":
		l.deliverIngress(*f)
	}
}

// acceptIngress validates a remote connect request against the local sink:
// schema compatibility and IFC from the advertised remote context into the
// local component's context.
func (l *link) acceptIngress(f LinkFrame) error {
	b := l.bus
	dstComp, dstEP, err := b.resolveLocal(f.Dst, Sink)
	if err != nil {
		return err
	}
	if dstComp.Quarantined() {
		return fmt.Errorf("%w: %q", ErrQuarantined, dstComp.Name())
	}
	if dstEP.Schema.Name != f.Schema {
		return fmt.Errorf("%w: remote emits %q, local accepts %q", ErrSchema, f.Schema, dstEP.Schema.Name)
	}
	srcCtx := ifc.SecurityContext{
		Secrecy: f.SrcSecrecy, Integrity: f.SrcIntegrity,
		Jurisdiction: f.SrcJurisdiction, Purpose: f.SrcPurpose,
	}
	if err := b.admit(srcCtx); err != nil {
		b.auditDenied(ifc.EntityID(f.Src), dstComp.entity.ID(), srcCtx, dstComp.Context(),
			f.Agent, "", "ingress connect refused by admission policy: "+err.Error())
		return err
	}
	if err := ifc.EnforceFlow(srcCtx, dstComp.Context()); err != nil {
		b.auditDenied(ifc.EntityID(f.Src), dstComp.entity.ID(), srcCtx, dstComp.Context(),
			f.Agent, "", "ingress connect denied by IFC: "+err.Error())
		return err
	}
	l.mu.Lock()
	l.ingress[channelKey{src: f.Src, dst: f.Dst}] = struct{}{}
	l.mu.Unlock()
	b.log.Append(audit.Record{
		Kind: audit.Reconfiguration, Layer: audit.LayerMessaging, Domain: b.name,
		Src: ifc.EntityID(f.Src), Dst: dstComp.entity.ID(),
		SrcCtx: srcCtx, DstCtx: dstComp.Context(), Agent: f.Agent,
		Note: "cross-bus ingress accepted",
	})
	return nil
}

// deliverIngress enforces and delivers one inbound cross-bus message.
func (l *link) deliverIngress(f LinkFrame) {
	b := l.bus
	l.mu.Lock()
	_, established := l.ingress[channelKey{src: f.Src, dst: f.Dst}]
	l.mu.Unlock()

	// A traced frame continues its trace here, one hop deeper: the hop
	// counter increments at link ingress, so a two-link relay path reads
	// 0/1/2 across the three buses.
	var tc telemetry.TraceContext
	if !f.Trace.IsZero() {
		tc = telemetry.TraceContext{ID: f.Trace.ID, Hop: f.Trace.Hop + 1}
	}

	dstComp, dstEP, err := b.resolveLocal(f.Dst, Sink)
	if err != nil {
		return
	}
	srcCtx := ifc.SecurityContext{
		Secrecy: f.SrcSecrecy, Integrity: f.SrcIntegrity,
		Jurisdiction: f.SrcJurisdiction, Purpose: f.SrcPurpose,
	}
	dstCtx := dstComp.Context()

	if !established {
		b.auditDeniedTrace(tc, ifc.EntityID(f.Src), dstComp.entity.ID(), srcCtx, dstCtx,
			f.Agent, "", "ingress denied: no established channel")
		return
	}
	if dstComp.Quarantined() {
		b.auditDeniedTrace(tc, ifc.EntityID(f.Src), dstComp.entity.ID(), srcCtx, dstCtx,
			f.Agent, "", "ingress denied: destination quarantined")
		return
	}
	// The sender's context may have changed since the connect; re-admit it.
	if err := b.admit(srcCtx); err != nil {
		b.auditDeniedTrace(tc, ifc.EntityID(f.Src), dstComp.entity.ID(), srcCtx, dstCtx,
			f.Agent, "", "ingress refused by admission policy: "+err.Error())
		return
	}
	// Ingress IFC re-check with the sender's *current* context.
	if err := ifc.EnforceFlow(srcCtx, dstCtx); err != nil {
		b.auditDeniedTrace(tc, ifc.EntityID(f.Src), dstComp.entity.ID(), srcCtx, dstCtx,
			f.Agent, "", "ingress denied by IFC: "+err.Error())
		return
	}
	m, err := msg.DecodeBinary(f.Payload)
	if err != nil {
		b.auditDeniedTrace(tc, ifc.EntityID(f.Src), dstComp.entity.ID(), srcCtx, dstCtx,
			f.Agent, "", "ingress denied: undecodable payload")
		return
	}
	m.Trace = tc
	if f.EgressNs != 0 {
		// Stage-attributed frame: observe the link-hop edge (sender egress
		// to local ingress — wall clocks, so cross-host skew shifts it) and
		// resume the stage clock so downstream edges attribute locally.
		now := time.Now().UnixNano()
		l.stageHop.Observe(now - int64(f.EgressNs))
		m.Stage = telemetry.ResumeStageClock(now)
	}
	// Message-layer enforcement against the local schema definition.
	clearance := dstComp.Clearance()
	if !dstEP.Schema.Secrecy.Subset(clearance) {
		b.auditDeniedTrace(tc, ifc.EntityID(f.Src), dstComp.entity.ID(), srcCtx, dstCtx,
			f.Agent, m.DataID, "ingress denied: type tags exceed clearance")
		return
	}
	out, quenched := dstEP.Schema.Quench(m, clearance)

	if !tc.IsZero() {
		telemetry.RecordSpan(tc, b.name, "ingress", f.Src, string(dstComp.entity.ID()), "")
	}
	b.log.AppendAsync(audit.Record{
		Kind: audit.FlowAllowed, Layer: audit.LayerMessaging, Domain: b.name,
		Src: ifc.EntityID(f.Src), Dst: dstComp.entity.ID(),
		SrcCtx: srcCtx, DstCtx: dstCtx, DataID: m.DataID, Agent: f.Agent,
		Note: deliveryNote(quenched), TraceID: tc.ID.String(),
	})
	if dstComp.handler != nil {
		if !tc.IsZero() {
			telemetry.RecordSpan(tc, b.name, "deliver", f.Src, string(dstComp.entity.ID()), "")
		}
		dstComp.delivered.Add(1)
		out.Stage.MarkDeliver()
		dstComp.handler(out, Delivery{From: f.Src, Endpoint: dstEP.Name, Quenched: quenched})
	}
}
