package sbus

import (
	"sync"
	"sync/atomic"

	"lciot/internal/fault"
	"lciot/internal/lanehash"
	"lciot/internal/msg"
)

// fpHandoff is the chaos seam for the handoff rings: an armed program
// forces the overflow path — the delivery is refused as if the ring were
// full, so the publisher falls back to inline execution. Drills use it to
// provoke the relaxed ordering semantics overload produces without having
// to actually fill a 4096-slot ring.
var fpHandoff = fault.New("sbus.shard.handoff")

// handoffRingSize bounds each shard's cross-shard delivery ring. While the
// ring has free slots, handoffs preserve per-source FIFO order; when it is
// full the publisher delivers inline instead (see publish), trading
// ordering for liveness under overload: the inline message can overtake
// older messages for the same channel still queued on the ring, and the
// sink's handler can run on the publisher's goroutine concurrently with
// the shard's dispatcher. Sink handlers on a multi-shard bus must
// tolerate both (see the package documentation's ordering semantics).
const handoffRingSize = 4096

// maxShards bounds the shard count a bus can be built with. The cap is a
// sanity limit, not a tuning recommendation: useful shard counts track the
// host's core count (see the README scaling guide).
const maxShards = 1024

// A handoff is one cross-shard delivery parked on the destination shard's
// ring, carrying everything deliverLocal needs.
type handoff struct {
	srcComp *Component
	srcEP   EndpointSpec
	ch      *channel
	m       *msg.Message
}

// A shard owns a horizontal slice of the bus: the components whose names
// hash to it, every channel whose *source* component lives here, and the
// byComp re-evaluation index entries for its own components (including
// entries for channels owned by other shards whose sink lives here). Each
// shard has its own copy-on-write routing snapshot, its own write lock,
// and — on multi-shard buses — its own dispatch goroutine draining the
// handoff ring. Reconfiguration on one shard therefore never serialises
// publishes or re-evaluations on another.
type shard struct {
	idx int

	// mu serialises this shard's routing mutations; routing holds the
	// shard's immutable snapshot, read lock-free by the message path.
	mu      sync.Mutex
	routing atomic.Pointer[routing]

	// ring receives cross-shard deliveries destined for this shard's
	// components; drained by the shard's dispatch goroutine.
	ring chan handoff

	// enqMu fences ring enqueues against Close. Publishers hold the read
	// side across the closed-flag check and the enqueue; Close sets the
	// flag and then takes the write side once as a barrier, after which no
	// new handoff can reach the ring — everything the ring holds was
	// accepted before the barrier and is drained by the dispatcher's
	// shutdown pass.
	enqMu sync.RWMutex

	// Stats, all monotonic.
	delivered  atomic.Uint64 // successful deliveries to sinks on this shard
	handoffsIn atomic.Uint64 // cross-shard deliveries accepted onto the ring
	overflow   atomic.Uint64 // handoffs delivered inline because the ring was full
	reevals    atomic.Uint64 // context re-evaluations of this shard's components
}

// dispatch drains the shard's handoff ring until the bus closes, then
// drains whatever is already queued and exits. It is the only reader of
// the ring, so ring order — per-source publish order while the ring has
// capacity — is delivery order.
func (sh *shard) dispatch(b *Bus) {
	for {
		select {
		case h := <-sh.ring:
			b.deliverLocal(h.srcComp, h.srcEP, h.ch, h.m)
		case <-b.quit:
			for {
				select {
				case h := <-sh.ring:
					b.deliverLocal(h.srcComp, h.srcEP, h.ch, h.m)
				default:
					return
				}
			}
		}
	}
}

// tryHandoff attempts to park a cross-shard delivery on the shard's ring,
// reporting whether the shard's dispatcher now owns it. It refuses — and
// the caller must deliver inline — when the bus is closed (no dispatcher
// will drain the ring again) or the ring is full. The read lock pairs
// with the write-side barrier in Close: an enqueue that wins the race
// against Close lands on the ring before the barrier completes, so the
// dispatcher's shutdown drain still delivers it; an enqueue that loses
// observes the closed flag and falls back.
func (sh *shard) tryHandoff(b *Bus, h handoff) bool {
	if act := fpHandoff.Check(); act != nil {
		act.Wait()
		sh.overflow.Add(1)
		return false // forced overflow: caller delivers inline
	}
	sh.enqMu.RLock()
	defer sh.enqMu.RUnlock()
	if b.closed.Load() {
		return false
	}
	select {
	case sh.ring <- h:
		sh.handoffsIn.Add(1)
		return true
	default:
		sh.overflow.Add(1)
		return false
	}
}

// shardIdxFor maps a component name to a shard by the shared FNV-1a
// placement hash (internal/lanehash — the same function the CEP and
// policy dispatch lanes use, so a component's deliveries, detections and
// rule dispatch stay on one lane index). The mapping is pure: a
// component's shard is a function of its name and the bus's shard count
// only, so callers can predict placement (shard affinity) and tests can
// construct names that land on chosen shards.
func shardIdxFor(name string, n int) int {
	return lanehash.Index(name, n)
}

// shardIdx returns the index of the shard owning the named component.
func (b *Bus) shardIdx(component string) int {
	return shardIdxFor(component, len(b.shards))
}

// shardFor returns the shard owning the named component.
func (b *Bus) shardFor(component string) *shard {
	return b.shards[b.shardIdx(component)]
}

// NumShards returns the bus's shard count (>= 1).
func (b *Bus) NumShards() int { return len(b.shards) }

// HealthTotals sums delivered and overflow counts across shards without
// allocating (the health fingerprint path polls it every few seconds;
// ShardStats allocates a snapshot and is for tooling).
func (b *Bus) HealthTotals() (delivered, overflow uint64) {
	for _, sh := range b.shards {
		delivered += sh.delivered.Load()
		overflow += sh.overflow.Load()
	}
	return delivered, overflow
}

// ShardOf reports which shard the named component maps to. The mapping is
// stable for the life of the bus, whether or not the component is
// registered yet.
func (b *Bus) ShardOf(component string) int { return b.shardIdx(component) }

// ShardStats is a point-in-time view of one shard, for operators and
// tests watching how load spreads across the bus.
type ShardStats struct {
	// Shard is the shard index.
	Shard int
	// Components and Channels count what the shard currently owns.
	Components int
	Channels   int
	// Delivered counts successful deliveries to sinks homed on this shard
	// (whether executed inline or by the shard's dispatcher).
	Delivered uint64
	// HandoffsIn counts cross-shard deliveries accepted onto the ring.
	HandoffsIn uint64
	// Overflow counts handoffs delivered inline on the publisher's
	// goroutine because the ring was full.
	Overflow uint64
	// Reevaluations counts context re-evaluations of this shard's
	// components.
	Reevaluations uint64
}

// ShardStats snapshots every shard. Each shard's routing counts are
// individually consistent; the slice as a whole is not a cross-shard
// atomic snapshot.
func (b *Bus) ShardStats() []ShardStats {
	out := make([]ShardStats, len(b.shards))
	for i, sh := range b.shards {
		r := sh.routing.Load()
		out[i] = ShardStats{
			Shard:         i,
			Components:    len(r.components),
			Channels:      len(r.channels),
			Delivered:     sh.delivered.Load(),
			HandoffsIn:    sh.handoffsIn.Load(),
			Overflow:      sh.overflow.Load(),
			Reevaluations: sh.reevals.Load(),
		}
	}
	return out
}

// Close stops the shard dispatchers after draining deliveries already
// accepted onto the rings. Close is idempotent and only affects
// cross-shard dispatch: the bus remains usable, with cross-shard
// deliveries falling back to inline execution on the publisher's
// goroutine (publishers observe the closed flag and never enqueue onto
// an undrained ring). Links are shut down separately (Unlink/removeLink).
func (b *Bus) Close() {
	b.closeOnce.Do(func() {
		b.closed.Store(true)
		// Barrier: wait out every in-flight tryHandoff. Once every write
		// lock is held, every publisher sees the closed flag before
		// touching a ring, so the rings only hold handoffs accepted before
		// this point — all of which the dispatchers' shutdown drain below
		// delivers.
		for _, sh := range b.shards {
			sh.enqMu.Lock()
		}
		close(b.quit)
		for _, sh := range b.shards {
			sh.enqMu.Unlock()
		}
	})
}

// mutate1 clones shard i's snapshot, applies fn, and publishes the result
// if fn reports success — the single-shard copy-on-write step.
func (b *Bus) mutate1(i int, fn func(r *routing) bool) bool {
	sh := b.shards[i]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	next := sh.routing.Load().clone()
	if !fn(next) {
		return false
	}
	sh.routing.Store(next)
	return true
}

// mutate2 locks shards i and j (possibly equal) in index order, clones
// both snapshots, applies fn, and publishes the clones fn mutated if it
// reports success. When i == j, ri and rj are the same clone. Locking in
// index order makes concurrent two-shard mutations deadlock-free.
func (b *Bus) mutate2(i, j int, fn func(ri, rj *routing) bool) bool {
	if i == j {
		return b.mutate1(i, func(r *routing) bool { return fn(r, r) })
	}
	lo, hi := i, j
	if lo > hi {
		lo, hi = hi, lo
	}
	b.shards[lo].mu.Lock()
	defer b.shards[lo].mu.Unlock()
	b.shards[hi].mu.Lock()
	defer b.shards[hi].mu.Unlock()
	ri := b.shards[i].routing.Load().clone()
	rj := b.shards[j].routing.Load().clone()
	if !fn(ri, rj) {
		return false
	}
	b.shards[i].routing.Store(ri)
	b.shards[j].routing.Store(rj)
	return true
}

// mutateN locks every shard in idxs (which must be sorted ascending and
// duplicate-free — the same ascending order mutate1/mutate2 use, keeping
// all three deadlock-free against each other), clones each snapshot,
// applies fn to the clones, and publishes them all if fn reports success.
// Bulk operations use it when retire-and-replace of many keys must be
// atomic with respect to concurrent single-channel mutations on the same
// keys.
func (b *Bus) mutateN(idxs []int, fn func(rs map[int]*routing) bool) bool {
	for _, i := range idxs {
		b.shards[i].mu.Lock()
	}
	defer func() {
		for _, i := range idxs {
			b.shards[i].mu.Unlock()
		}
	}()
	rs := make(map[int]*routing, len(idxs))
	for _, i := range idxs {
		rs[i] = b.shards[i].routing.Load().clone()
	}
	if !fn(rs) {
		return false
	}
	for _, i := range idxs {
		b.shards[i].routing.Store(rs[i])
	}
	return true
}

// channelShards returns the shard indexes a channel key touches: the
// source component's home shard (which owns the channel) and, for local
// sinks, the destination component's home shard (which indexes it for
// re-evaluation). For remote sinks j == i.
func (b *Bus) channelShards(key channelKey) (i, j int, srcName, dstName string) {
	srcName, _, _ = splitEndpointAddr(key.src)
	i = b.shardIdx(srcName)
	j = i
	if remote, rest := splitRemoteAddr(key.dst); remote == "" {
		dstName, _, _ = splitEndpointAddr(rest)
		j = b.shardIdx(dstName)
	}
	return i, j, srcName, dstName
}

// installChannel publishes ch into the owning shard's channel table and
// source index and into the byComp index of every touched component's
// home shard, atomically replacing any predecessor with the same key.
// Both shards' snapshots swap while both locks are held, so readers never
// see the channel in one index but not the other.
func (b *Bus) installChannel(ch *channel) {
	i, j, srcName, dstName := b.channelShards(ch.key)
	ch.srcShard, ch.dstShard = i, j
	b.mutate2(i, j, func(ri, rj *routing) bool {
		if old := ri.removeOwned(ch.key); old != nil {
			ri.removeByComp(srcName, old)
			if dstName != "" && dstName != srcName {
				rj.removeByComp(dstName, old)
			}
		}
		ri.addOwned(ch)
		ri.addByComp(srcName, ch)
		if dstName != "" && dstName != srcName {
			rj.addByComp(dstName, ch)
		}
		return true
	})
}

// uninstallChannel removes the channel with the given key from every
// index, reporting whether it existed. When expect is non-nil the removal
// only proceeds if the routed channel is still that exact channel —
// re-evaluation uses this so it can condemn a channel outside the shard
// lock without tearing down a replacement connected in the interim.
func (b *Bus) uninstallChannel(key channelKey, expect *channel) bool {
	i, j, srcName, dstName := b.channelShards(key)
	removed := false
	b.mutate2(i, j, func(ri, rj *routing) bool {
		if expect != nil && ri.channels[key] != expect {
			return false
		}
		old := ri.removeOwned(key)
		if old == nil {
			return false
		}
		ri.removeByComp(srcName, old)
		if dstName != "" && dstName != srcName {
			rj.removeByComp(dstName, old)
		}
		removed = true
		return true
	})
	return removed
}

// ownedChannels collects every channel from every shard's snapshot. Each
// shard's contribution is individually consistent; the slice as a whole
// is not a cross-shard atomic snapshot (callers — link replay, listings —
// tolerate that).
func (b *Bus) ownedChannels() []*channel {
	var out []*channel
	for _, sh := range b.shards {
		r := sh.routing.Load()
		for _, ch := range r.channels {
			out = append(out, ch)
		}
	}
	return out
}

// channelByKey looks a channel up in its owning shard (internal; tests).
func (b *Bus) channelByKey(key channelKey) *channel {
	srcName, _, _ := splitEndpointAddr(key.src)
	return b.shardFor(srcName).routing.Load().channels[key]
}
