package sbus

import (
	"errors"
	"strings"
	"testing"

	"lciot/internal/audit"
	"lciot/internal/ifc"
	"lciot/internal/transport"
)

// euCtx is a context carrying a residency constraint: the data may only
// reside in eu or uk.
func euCtx() ifc.SecurityContext {
	return annCtx().WithJurisdiction(ifc.MustLabel("eu", "uk"))
}

// residencyPair builds home←→cloud with the cloud bus declaring the given
// jurisdiction in its hello, and an eu/uk-constrained source on home.
func residencyPair(t *testing.T, cloudJur ifc.Label) (home, cloud *Bus, rec *sinkRecorder) {
	t.Helper()
	net := transport.NewMemNetwork()
	home = NewBus("home-bus", openACL(), nil, nil)
	home.SetLinkConfig(fastLinkConfig())
	home.SetJurisdiction(ifc.MustLabel("eu"))
	cloud = NewBus("cloud-bus", openACL(), nil, nil)
	cloud.SetLinkConfig(fastLinkConfig())
	cloud.SetJurisdiction(cloudJur)

	listener, err := net.Listen("cloud-addr")
	if err != nil {
		t.Fatal(err)
	}
	go cloud.Serve(listener)
	t.Cleanup(func() { listener.Close() })

	if _, err := home.Register("ann-device", "hospital", euCtx(), nil,
		EndpointSpec{Name: "out", Dir: Source, Schema: vitalsSchema()}); err != nil {
		t.Fatal(err)
	}
	rec = &sinkRecorder{}
	// The sink declares it resides in eu, within the data's allowed set.
	sinkCtx := annCtx().WithJurisdiction(ifc.MustLabel("eu"))
	if _, err := cloud.Register("ann-analyser", "hospital", sinkCtx, rec.handler(),
		EndpointSpec{Name: "in", Dir: Sink, Schema: vitalsSchema()}); err != nil {
		t.Fatal(err)
	}
	if _, err := home.LinkTo(net, "cloud-addr"); err != nil {
		t.Fatal(err)
	}
	return home, cloud, rec
}

// TestResidencyEgressAllowedInRegion: a peer declaring a jurisdiction
// inside the allowed set receives constrained data normally.
func TestResidencyEgressAllowedInRegion(t *testing.T) {
	home, _, rec := residencyPair(t, ifc.MustLabel("eu"))
	if err := home.Connect("hospital", "ann-device.out", "cloud-bus:ann-analyser.in"); err != nil {
		t.Fatal(err)
	}
	annDev, _ := home.Component("ann-device")
	if _, err := annDev.Publish("out", vitalsMessage("ann", 72)); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return rec.count() == 1 }, "in-region delivery")
	if st := home.LinkStatus(); len(st) != 1 || !st[0].PeerJurisdiction.Equal(ifc.MustLabel("eu")) {
		t.Fatalf("peer jurisdiction not recorded: %+v", st)
	}
}

// TestResidencyEgressBlocksOutOfRegion: the same constrained data never
// leaves for a us-declared peer — the connect is refused locally with
// ErrResidency and the denial is audited.
func TestResidencyEgressBlocksOutOfRegion(t *testing.T) {
	home, _, rec := residencyPair(t, ifc.MustLabel("us"))
	err := home.Connect("hospital", "ann-device.out", "cloud-bus:ann-analyser.in")
	if !errors.Is(err, ErrResidency) {
		t.Fatalf("out-of-region connect = %v, want ErrResidency", err)
	}
	if rec.count() != 0 {
		t.Fatal("constrained data reached out-of-region peer")
	}
	home.log.Flush()
	denials := home.log.Select(func(r audit.Record) bool {
		return r.Kind == audit.FlowDenied && strings.Contains(r.Note, "residency")
	})
	if len(denials) == 0 {
		t.Fatal("residency denial not audited")
	}
	if got := denials[0].Note; !strings.Contains(got, `peer bus "cloud-bus"`) {
		t.Fatalf("denial note = %q", got)
	}
}

// TestResidencyEgressBlocksUndeclaredPeer: a peer that never declared a
// jurisdiction fails closed for constrained data.
func TestResidencyEgressBlocksUndeclaredPeer(t *testing.T) {
	home, _, _ := residencyPair(t, ifc.EmptyLabel)
	err := home.Connect("hospital", "ann-device.out", "cloud-bus:ann-analyser.in")
	if !errors.Is(err, ErrResidency) {
		t.Fatalf("undeclared-peer connect = %v, want ErrResidency", err)
	}
	if !strings.Contains(err.Error(), "declares none") {
		t.Fatalf("error = %v", err)
	}
}

// TestResidencyPerMessageRecheck: a source whose context acquires a
// constraint after connect is stopped at the next publish, not just at
// establishment.
func TestResidencyPerMessageRecheck(t *testing.T) {
	home, _, rec := residencyPair(t, ifc.MustLabel("us"))
	annDev, _ := home.Component("ann-device")
	// Widening a facet is a declassification-class operation: it needs the
	// remove privilege over the facet tags (granted here by the domain
	// authority). Drop the constraint, connect, then re-adopt it: the
	// per-message gate must catch the change.
	if err := home.GrantPrivileges("hospital", "ann-device",
		ifc.Privileges{RemoveSecrecy: ifc.MustLabel("eu", "uk")}); err != nil {
		t.Fatal(err)
	}
	if err := annDev.SetContext(annCtx()); err != nil {
		t.Fatal(err)
	}
	if err := home.Connect("hospital", "ann-device.out", "cloud-bus:ann-analyser.in"); err != nil {
		t.Fatal(err)
	}
	if _, err := annDev.Publish("out", vitalsMessage("ann", 70)); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return rec.count() == 1 }, "unconstrained delivery")
	if err := annDev.SetContext(euCtx()); err != nil {
		t.Fatal(err)
	}
	// Publish reports per-channel outcomes as a delivery count; the
	// constrained message must not count (and must not arrive), with the
	// denial audited.
	n, err := annDev.Publish("out", vitalsMessage("ann", 71))
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("constrained publish delivered to %d channels", n)
	}
	home.log.Flush()
	if got := home.log.Select(func(r audit.Record) bool {
		return r.Kind == audit.FlowDenied && strings.Contains(r.Note, "residency")
	}); len(got) == 0 {
		t.Fatal("per-message residency denial not audited")
	}
	if rec.count() != 1 {
		t.Fatalf("out-of-region peer received %d messages, want 1", rec.count())
	}
}
