package sbus

import (
	"testing"

	"lciot/internal/audit"
	"lciot/internal/msg"
	"lciot/internal/telemetry"
	"lciot/internal/transport"
)

// traceTestSetup turns on head sampling for every publish and restores the
// quiet default (plus an empty span buffer) when the test ends.
func traceTestSetup(t *testing.T) {
	t.Helper()
	telemetry.ResetSpans()
	telemetry.SetTraceSampling(1)
	t.Cleanup(func() {
		telemetry.SetTraceSampling(0)
		telemetry.ResetSpans()
	})
}

// relayChain builds three buses federated in a line over an in-memory
// network — tr-alpha → tr-beta → tr-gamma — where tr-beta's relay
// component republishes every delivery, so a message published on
// tr-alpha crosses two links before reaching the recorder on tr-gamma.
func relayChain(t *testing.T) (alpha *Bus, beta *Bus, gamma *Bus, rec *sinkRecorder) {
	t.Helper()
	netw := transport.NewMemNetwork()

	alpha = NewBus("tr-alpha", openACL(), nil, nil)
	beta = NewBus("tr-beta", openACL(), nil, nil)
	gamma = NewBus("tr-gamma", openACL(), nil, nil)

	for addr, b := range map[string]*Bus{"beta-addr": beta, "gamma-addr": gamma} {
		ln, err := netw.Listen(addr)
		if err != nil {
			t.Fatal(err)
		}
		go b.Serve(ln)
		t.Cleanup(func() { ln.Close() })
	}
	if _, err := alpha.LinkTo(netw, "beta-addr"); err != nil {
		t.Fatal(err)
	}
	if _, err := beta.LinkTo(netw, "gamma-addr"); err != nil {
		t.Fatal(err)
	}

	if _, err := alpha.Register("dev", "hospital", annCtx(), nil,
		EndpointSpec{Name: "out", Dir: Source, Schema: vitalsSchema()}); err != nil {
		t.Fatal(err)
	}
	// The relay republishes on its own source endpoint, preserving the
	// message (and, with it, the trace context stamped at ingress).
	var relay *Component
	relay, err := beta.Register("relay", "hospital", annCtx(),
		func(m *msg.Message, _ Delivery) {
			if _, err := relay.Publish("out", m); err != nil {
				t.Errorf("relay publish: %v", err)
			}
		},
		EndpointSpec{Name: "in", Dir: Sink, Schema: vitalsSchema()},
		EndpointSpec{Name: "out", Dir: Source, Schema: vitalsSchema()})
	if err != nil {
		t.Fatal(err)
	}
	rec = &sinkRecorder{}
	if _, err := gamma.Register("sink", "hospital", annCtx(), rec.handler(),
		EndpointSpec{Name: "in", Dir: Sink, Schema: vitalsSchema()}); err != nil {
		t.Fatal(err)
	}

	if err := alpha.Connect("hospital", "dev.out", "tr-beta:relay.in"); err != nil {
		t.Fatal(err)
	}
	if err := beta.Connect("hospital", "relay.out", "tr-gamma:sink.in"); err != nil {
		t.Fatal(err)
	}
	return alpha, beta, gamma, rec
}

// TestTraceRelayTwoHops is the acceptance scenario: a message published on
// node A and relayed through B to C yields one trace whose hop counter
// reads 0/1/2 across the three nodes and whose trace ID appears in the
// audit records at each node.
func TestTraceRelayTwoHops(t *testing.T) {
	traceTestSetup(t)
	alpha, beta, gamma, rec := relayChain(t)

	dev, _ := alpha.Component("dev")
	if n, err := dev.Publish("out", vitalsMessage("ann", 72)); err != nil || n != 1 {
		t.Fatalf("publish = %d, %v", n, err)
	}
	waitFor(t, func() bool { return rec.count() == 1 }, "two-hop relay delivery")

	// The trace ID is read where provenance meets performance: the audit
	// record of the final delivery.
	final := gamma.Log().Select(func(r audit.Record) bool {
		return r.Kind == audit.FlowAllowed && r.Note == "delivered"
	})
	if len(final) != 1 {
		t.Fatalf("final delivery records = %d", len(final))
	}
	id, ok := telemetry.ParseTraceID(final[0].TraceID)
	if !ok {
		t.Fatalf("final audit record carries no trace ID (%q)", final[0].TraceID)
	}

	// One trace, hops counting up monotonically across the nodes.
	hops := map[string]uint8{}
	kinds := map[string]bool{}
	for _, s := range telemetry.Spans() {
		if s.Trace != id {
			continue
		}
		hops[s.Node] = s.Hop
		kinds[s.Node+"/"+s.Kind] = true
	}
	want := map[string]uint8{"tr-alpha": 0, "tr-beta": 1, "tr-gamma": 2}
	for node, hop := range want {
		got, ok := hops[node]
		if !ok || got != hop {
			t.Errorf("node %s: hop = %d (recorded %v), want %d", node, got, ok, hop)
		}
	}
	for _, k := range []string{"tr-alpha/publish", "tr-alpha/egress", "tr-beta/ingress",
		"tr-beta/relay", "tr-beta/egress", "tr-gamma/ingress", "tr-gamma/deliver"} {
		if !kinds[k] {
			t.Errorf("missing span %s (got %v)", k, kinds)
		}
	}

	// Every bus on the path stamped the ID into its audit trail.
	for _, b := range []*Bus{alpha, beta, gamma} {
		n := len(b.Log().Select(func(r audit.Record) bool {
			return r.Kind == audit.FlowAllowed && r.TraceID == id.String()
		}))
		if n == 0 {
			t.Errorf("bus %s: no audit record carries trace %s", b.Name(), id)
		}
	}
}

// TestLinkNegotiationV3V4 links a current (v4) bus to one capped at
// protocol v3: every frame must flow (nothing rejected), and the trace
// trailer is dropped cleanly at the wire, so deliveries on the v3 side
// arrive untraced.
func TestLinkNegotiationV3V4(t *testing.T) {
	traceTestSetup(t)
	netw := transport.NewMemNetwork()

	v4 := NewBus("neg-v4", openACL(), nil, nil)
	v3 := NewBus("neg-v3", openACL(), nil, nil)
	v3.maxWireVer = 3 // simulate a peer built before the trace trailer

	ln, err := netw.Listen("v3-addr")
	if err != nil {
		t.Fatal(err)
	}
	go v3.Serve(ln)
	t.Cleanup(func() { ln.Close() })

	if _, err := v4.LinkTo(netw, "v3-addr"); err != nil {
		t.Fatal(err)
	}
	if l := v4.linkTo("neg-v3"); l == nil || l.wireVersion() != 3 {
		t.Fatalf("negotiated version = %v, want 3", l.wireVersion())
	}

	if _, err := v4.Register("dev", "hospital", annCtx(), nil,
		EndpointSpec{Name: "out", Dir: Source, Schema: vitalsSchema()}); err != nil {
		t.Fatal(err)
	}
	rec := &sinkRecorder{}
	if _, err := v3.Register("sink", "hospital", annCtx(), rec.handler(),
		EndpointSpec{Name: "in", Dir: Sink, Schema: vitalsSchema()}); err != nil {
		t.Fatal(err)
	}
	if err := v4.Connect("hospital", "dev.out", "neg-v3:sink.in"); err != nil {
		t.Fatal(err)
	}

	dev, _ := v4.Component("dev")
	const sent = 10
	for i := 0; i < sent; i++ {
		if n, err := dev.Publish("out", vitalsMessage("ann", 72)); err != nil || n != 1 {
			t.Fatalf("publish %d = %d, %v", i, n, err)
		}
	}
	waitFor(t, func() bool { return rec.count() == sent }, "v3 deliveries")

	// The sender traced its publishes and egress...
	egress := v4.Log().Select(func(r audit.Record) bool {
		return r.Kind == audit.FlowAllowed && r.Note == "egress to peer bus"
	})
	if len(egress) != sent {
		t.Fatalf("egress records = %d, want %d", len(egress), sent)
	}
	for _, r := range egress {
		if r.TraceID == "" {
			t.Fatal("v4 side should have traced its egress")
		}
	}
	// ...but the v3 peer received plain frames: no rejected frames, no
	// trace IDs, deliveries intact.
	delivered := v3.Log().Select(func(r audit.Record) bool {
		return r.Kind == audit.FlowAllowed && r.Note == "delivered"
	})
	if len(delivered) != sent {
		t.Fatalf("v3 deliveries audited = %d, want %d", len(delivered), sent)
	}
	for _, r := range delivered {
		if r.TraceID != "" {
			t.Fatalf("trace ID %q crossed a v3 link", r.TraceID)
		}
	}
}

// TestLinkNegotiationCurrentBoth confirms two current buses negotiate the
// newest protocol and keep the trailer: the trace ID survives the link and
// lands in the peer's audit records.
func TestLinkNegotiationCurrentBoth(t *testing.T) {
	traceTestSetup(t)
	home, cloud, rec := linkedBuses(t)
	if l := home.linkTo("cloud-bus"); l == nil || l.wireVersion() != linkVersion {
		t.Fatalf("negotiated version = %v, want %d", l.wireVersion(), linkVersion)
	}
	if err := home.Connect("hospital", "ann-device.out", "cloud-bus:ann-analyser.in"); err != nil {
		t.Fatal(err)
	}
	dev, _ := home.Component("ann-device")
	if n, err := dev.Publish("out", vitalsMessage("ann", 72)); err != nil || n != 1 {
		t.Fatalf("publish = %d, %v", n, err)
	}
	waitFor(t, func() bool { return rec.count() == 1 }, "cross-bus delivery")
	delivered := cloud.Log().Select(func(r audit.Record) bool {
		return r.Kind == audit.FlowAllowed && r.Note == "delivered"
	})
	if len(delivered) != 1 || delivered[0].TraceID == "" {
		t.Fatalf("v4 peer should audit the trace ID, got %+v", delivered)
	}
	m, _ := rec.last()
	if m.Trace.IsZero() || m.Trace.Hop != 1 {
		t.Fatalf("delivered message trace = %+v, want hop 1", m.Trace)
	}
}
