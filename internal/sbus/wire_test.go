package sbus

import (
	"encoding/json"
	"errors"
	"reflect"
	"testing"

	"lciot/internal/ifc"
	"lciot/internal/msg"
)

func testFrame() LinkFrame {
	return LinkFrame{
		Kind:         "message",
		ID:           42,
		Bus:          "home-bus",
		Src:          "home-bus:ann-device.out",
		Dst:          "ann-analyser.in",
		SrcSecrecy:   ifc.MustLabel("medical", "ann"),
		SrcIntegrity: ifc.MustLabel("hosp-dev"),
		Schema:       "vitals",
		Payload:      []byte{1, 2, 3, 4},
		OK:           true,
		Err:          "nope",
		Agent:        "hospital",
	}
}

func TestWireFrameRoundTrip(t *testing.T) {
	frames := []LinkFrame{
		testFrame(),
		{Kind: "hello", Bus: "b"},
		{Kind: "connect", ID: 7, Src: "a:x.out", Dst: "y.in", Schema: "s", Agent: "p"},
		{Kind: "result", ID: 7, OK: false, Err: "denied"},
		{Kind: "disconnect"},
	}
	buf := AppendBatchHeader(nil, len(frames))
	for i := range frames {
		var err error
		if buf, err = AppendLinkFrame(buf, &frames[i]); err != nil {
			t.Fatal(err)
		}
	}
	got, err := DecodeBatch(buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(frames) {
		t.Fatalf("decoded %d frames, want %d", len(got), len(frames))
	}
	for i := range frames {
		if !reflect.DeepEqual(got[i], frames[i]) {
			t.Fatalf("frame %d: got %+v, want %+v", i, got[i], frames[i])
		}
	}
}

func TestWireMessageFrameMatchesGeneric(t *testing.T) {
	m := msg.New("vitals").Set("patient", msg.Str("ann")).Set("heart-rate", msg.Float(72))
	f := testFrame()
	payload, err := msg.EncodeBinary(m)
	if err != nil {
		t.Fatal(err)
	}
	f.Payload = payload
	generic, err := appendLinkFrameV5(nil, &f)
	if err != nil {
		t.Fatal(err)
	}
	f2 := f
	f2.Payload = nil
	direct, err := appendMessageFrame(nil, &f2, m)
	if err != nil {
		t.Fatal(err)
	}
	if string(generic) != string(direct) {
		t.Fatal("single-pass message encoding differs from the generic frame encoding")
	}
}

func TestWireTruncationRejected(t *testing.T) {
	f := testFrame()
	buf := AppendBatchHeader(nil, 1)
	buf, err := AppendLinkFrame(buf, &f)
	if err != nil {
		t.Fatal(err)
	}
	for cut := 1; cut < len(buf); cut++ {
		if _, err := DecodeBatch(buf[:cut]); err == nil {
			t.Fatalf("truncation at %d/%d accepted", cut, len(buf))
		}
	}
	// Trailing garbage is rejected too.
	if _, err := DecodeBatch(append(buf, 0xFF)); err == nil {
		t.Fatal("trailing bytes accepted")
	}
}

func TestWireRejectsLegacyJSONCleanly(t *testing.T) {
	f := testFrame()
	v1, err := json.Marshal(&f)
	if err != nil {
		t.Fatal(err)
	}
	_, err = DecodeBatch(v1)
	if !errors.Is(err, ErrProtocol) {
		t.Fatalf("v1 JSON frame: err = %v, want ErrProtocol", err)
	}
	if got := err.Error(); got == "" || !containsAll(got, "v1", "v3") {
		t.Fatalf("rejection message should name both versions, got %q", got)
	}
}

func TestWireRejectsFutureVersion(t *testing.T) {
	buf := AppendBatchHeader(nil, 0)
	buf[1] = 9 // pretend v9
	_, err := DecodeBatch(buf)
	if !errors.Is(err, ErrProtocol) {
		t.Fatalf("v9 batch: err = %v, want ErrProtocol", err)
	}
}

func TestWireRejectsBadMagicAndKind(t *testing.T) {
	if _, err := DecodeBatch([]byte{0x00, 2, 0, 0}); !errors.Is(err, ErrWire) {
		t.Fatalf("bad magic: err = %v, want ErrWire", err)
	}
	if _, err := DecodeBatch(nil); !errors.Is(err, ErrWire) {
		t.Fatalf("empty: err = %v, want ErrWire", err)
	}
	buf := AppendBatchHeader(nil, 1)
	buf = append(buf, 0xEE) // unknown kind byte
	if _, err := DecodeBatch(buf); !errors.Is(err, ErrWire) {
		t.Fatalf("unknown kind: err = %v, want ErrWire", err)
	}
	if _, err := AppendLinkFrame(nil, &LinkFrame{Kind: "bogus"}); !errors.Is(err, ErrWire) {
		t.Fatalf("encode unknown kind: err = %v, want ErrWire", err)
	}
}

func containsAll(s string, subs ...string) bool {
	for _, sub := range subs {
		found := false
		for i := 0; i+len(sub) <= len(s); i++ {
			if s[i:i+len(sub)] == sub {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}
