package sbus

import (
	"encoding/binary"
	"errors"
	"fmt"

	"lciot/internal/ifc"
	"lciot/internal/msg"
	"lciot/internal/telemetry"
)

// This file is link protocol v2: the binary wire form of cross-bus frames.
//
// Protocol v1 shipped one JSON object per transport frame. v2 replaces it
// with a compact binary encoding in the msg.AppendBinary append style plus
// *batching*: one transport frame carries a batch of link frames, so the
// per-peer writer goroutine (link.go) can coalesce a burst of messages into
// a single syscall/packet. Layout (all integers big-endian):
//
//	batch  := u8 magic 'L' | u8 version (3) | u16 count | count × frame
//	frame  := u8 kind | u64 id | u8 flags |
//	          str16 bus | str16 src | str16 dst |
//	          str16 srcSecrecy | str16 srcIntegrity |   (canonical label form)
//	          str16 srcJurisdiction | str16 srcPurpose |
//	          str16 schema | str16 agent | str16 err |
//	          bytes32 payload
//	str16  := u16 len | bytes      bytes32 := u32 len | bytes
//
// v3 extends v2 with the obligation facets (jurisdiction and purpose) of
// the source context on every frame; on hello frames the jurisdiction
// field carries the *bus's* declared jurisdiction, which the peer's
// egress path uses to enforce residency before data leaves a region.
//
// Labels travel as their canonical String form (a pointer read on interned
// labels) and are re-interned by ifc.ParseLabel on decode — the same idiom
// as audit's binary record codec.
//
// v4 extends v3 with flow tracing: every frame in a version-4 batch ends
// with a fixed 17-byte trace trailer (16-byte trace ID, big-endian Hi then
// Lo, plus a hop count byte; all zero when the flow is unsampled). The
// trailer is a suffix so the two layouts share every other byte: the link
// writer encodes queued frames in the newest form and simply truncates the
// trailer when the peer negotiated v3, dropping traces cleanly without
// re-encoding.
//
// v5 extends the v4 trailer with stage attribution: 8 more bytes carrying
// the sender's egress wall-clock (big-endian UnixNano; 0 when the message
// carries no stage clock). Ingress observes now−egress into the per-peer
// stage_link_hop_ns histogram and resumes the stage clock on the decoded
// message. The trailer remains a pure suffix — trace bytes first, egress
// bytes last — so the writer serves a v4 peer by truncating the 8 egress
// bytes and a v3 peer by truncating the whole 25-byte trailer.
//
// Version negotiation: the first batch on a connection must contain
// exactly one hello frame. Hello batches are always sent in v3 form — the
// newest layout both sides are guaranteed to parse — and each side
// advertises the highest version it speaks in the hello frame's ID field
// (a v3 build leaves ID zero, which reads as an advertisement of v3).
// Both sides then speak min(local, advertised) for the rest of the
// session, so v5↔v4↔v3 pairs interoperate with no frames rejected. The
// magic and version bytes come first so an acceptor can reject a truly
// incompatible peer before parsing anything else; a v1 peer's JSON
// ('{' = 0x7B) is detected explicitly and refused with a clear error
// rather than a decode failure.

const (
	// linkMagic is the first byte of every v2+ batch ('L' for link).
	linkMagic = 0x4C
	// linkVersion is the newest protocol version this bus speaks;
	// linkVersionMin is the oldest it still accepts and emits (for v3
	// peers, negotiated at hello time).
	linkVersion    = 5
	linkVersionMin = 3
	// batchHeaderLen is magic + version + count.
	batchHeaderLen = 4
	// traceTrailerLen is the per-frame trace suffix introduced in v4:
	// 16-byte trace ID + 1 hop byte.
	traceTrailerLen = 17
	// egressTrailerLen is the stage-attribution suffix v5 adds after the
	// trace bytes: the sender's egress UnixNano.
	egressTrailerLen = 8
	// trailerLenV5 is the full v5 per-frame suffix.
	trailerLenV5 = traceTrailerLen + egressTrailerLen
)

// Frame kinds. The wire carries the byte; LinkFrame carries the string
// (stable across v1/v2, and what tests and switch statements read).
const (
	kindHello      = 1
	kindConnect    = 2
	kindResult     = 3
	kindMessage    = 4
	kindDisconnect = 5
)

// frame flag bits.
const flagOK = 1 << 0

// Errors reported by the wire codec.
var (
	// ErrWire is the sentinel for malformed v2 wire data.
	ErrWire = errors.New("sbus: malformed link frame")
	// ErrProtocol is returned when a peer speaks an incompatible link
	// protocol version (including legacy v1 JSON).
	ErrProtocol = errors.New("sbus: link protocol mismatch")
)

// A LinkFrame is one unit of the cross-bus wire protocol. The JSON tags are
// the legacy v1 wire schema, retained so the benchharness can measure the
// v1 baseline against the v2 binary codec honestly.
type LinkFrame struct {
	Kind string `json:"kind"` // hello, connect, result, message, disconnect
	ID   uint64 `json:"id,omitempty"`
	Bus  string `json:"bus,omitempty"`

	Src string `json:"src,omitempty"` // fully qualified "bus:comp.ep"
	Dst string `json:"dst,omitempty"` // receiver-local "comp.ep"

	SrcSecrecy   ifc.Label `json:"src_s,omitempty"`
	SrcIntegrity ifc.Label `json:"src_i,omitempty"`
	// SrcJurisdiction and SrcPurpose are the obligation facets of the
	// source context; on hello frames SrcJurisdiction is the sending bus's
	// declared jurisdiction.
	SrcJurisdiction ifc.Label `json:"src_j,omitempty"`
	SrcPurpose      ifc.Label `json:"src_p,omitempty"`

	Schema  string `json:"schema,omitempty"`
	Payload []byte `json:"payload,omitempty"` // msg.AppendBinary

	OK  bool   `json:"ok,omitempty"`
	Err string `json:"err,omitempty"`

	Agent ifc.PrincipalID `json:"agent,omitempty"`

	// Trace is the flow-tracing context carried in the v4 frame trailer
	// (zero when unsampled or when the peer negotiated v3). Not part of
	// the legacy v1 JSON schema.
	Trace telemetry.TraceContext `json:"-"`

	// EgressNs is the sender's egress wall-clock (UnixNano) carried in the
	// v5 trailer; 0 when the message carries no stage clock or the peer
	// negotiated v3/v4. Not part of the legacy v1 JSON schema.
	EgressNs uint64 `json:"-"`
}

// kindByte maps the frame kind string to its wire byte.
func kindByte(kind string) (byte, error) {
	switch kind {
	case "hello":
		return kindHello, nil
	case "connect":
		return kindConnect, nil
	case "result":
		return kindResult, nil
	case "message":
		return kindMessage, nil
	case "disconnect":
		return kindDisconnect, nil
	}
	return 0, fmt.Errorf("%w: unknown kind %q", ErrWire, kind)
}

// kindString is the inverse of kindByte.
func kindString(k byte) (string, error) {
	switch k {
	case kindHello:
		return "hello", nil
	case kindConnect:
		return "connect", nil
	case kindResult:
		return "result", nil
	case kindMessage:
		return "message", nil
	case kindDisconnect:
		return "disconnect", nil
	}
	return "", fmt.Errorf("%w: unknown kind byte %d", ErrWire, k)
}

// AppendBatchHeader appends a v3 batch header for count frames (frames
// without trace trailers — the handshake and single-frame helpers). The
// link writer stamps v4 headers itself once the peer has negotiated v4.
func AppendBatchHeader(dst []byte, count int) []byte {
	return appendBatchHeaderV(dst, linkVersionMin, count)
}

// appendBatchHeaderV appends a batch header carrying an explicit version.
func appendBatchHeaderV(dst []byte, version byte, count int) []byte {
	dst = append(dst, linkMagic, version)
	return binary.BigEndian.AppendUint16(dst, uint16(count))
}

// appendTraceTrailer appends the fixed v4 trace suffix.
func appendTraceTrailer(dst []byte, tc telemetry.TraceContext) []byte {
	dst = binary.BigEndian.AppendUint64(dst, tc.ID.Hi)
	dst = binary.BigEndian.AppendUint64(dst, tc.ID.Lo)
	return append(dst, tc.Hop)
}

// appendFramePrefix appends every frame field up to (but excluding) the
// payload.
func appendFramePrefix(dst []byte, f *LinkFrame) ([]byte, error) {
	k, err := kindByte(f.Kind)
	if err != nil {
		return dst, err
	}
	dst = append(dst, k)
	dst = binary.BigEndian.AppendUint64(dst, f.ID)
	var flags byte
	if f.OK {
		flags |= flagOK
	}
	dst = append(dst, flags)
	for _, s := range [...]string{
		f.Bus, f.Src, f.Dst,
		f.SrcSecrecy.String(), f.SrcIntegrity.String(),
		f.SrcJurisdiction.String(), f.SrcPurpose.String(),
		f.Schema, string(f.Agent), f.Err,
	} {
		if len(s) > 0xFFFF {
			return dst, fmt.Errorf("%w: field of %d bytes exceeds 64 KiB", ErrWire, len(s))
		}
		dst = binary.BigEndian.AppendUint16(dst, uint16(len(s)))
		dst = append(dst, s...)
	}
	return dst, nil
}

// AppendLinkFrame appends the v3 binary form of f to dst and returns the
// extended slice. Encoding into a caller-owned buffer keeps the steady
// state allocation-free; the writer goroutine reuses one batch buffer for
// its whole life.
func AppendLinkFrame(dst []byte, f *LinkFrame) ([]byte, error) {
	dst, err := appendFramePrefix(dst, f)
	if err != nil {
		return dst, err
	}
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(f.Payload)))
	dst = append(dst, f.Payload...)
	return dst, nil
}

// appendLinkFrameV4 is AppendLinkFrame plus the v4 trace trailer (replay
// re-encoding for peers that negotiated exactly v4).
func appendLinkFrameV4(dst []byte, f *LinkFrame) ([]byte, error) {
	dst, err := AppendLinkFrame(dst, f)
	if err != nil {
		return dst, err
	}
	return appendTraceTrailer(dst, f.Trace), nil
}

// appendLinkFrameV5 is AppendLinkFrame plus the full v5 trailer (trace
// bytes, then the egress timestamp). Every frame handed to a link's send
// queue is encoded in this form; the writer truncates the fixed-size
// suffixes when the peer negotiated v4 or v3.
func appendLinkFrameV5(dst []byte, f *LinkFrame) ([]byte, error) {
	dst, err := AppendLinkFrame(dst, f)
	if err != nil {
		return dst, err
	}
	dst = appendTraceTrailer(dst, f.Trace)
	return binary.BigEndian.AppendUint64(dst, f.EgressNs), nil
}

// appendMessageFrame is AppendLinkFrame with the payload encoded straight
// from the message: the frame fields and msg.AppendBinary land in one
// buffer in one pass, with the payload length backfilled — no intermediate
// payload slice on the per-message egress path.
// The frame is produced in v5 form (trace trailer from the message's own
// context, egress timestamp from f.EgressNs) ready for the writer's
// per-version emit.
func appendMessageFrame(dst []byte, f *LinkFrame, m *msg.Message) ([]byte, error) {
	dst, err := appendFramePrefix(dst, f)
	if err != nil {
		return dst, err
	}
	lenAt := len(dst)
	dst = append(dst, 0, 0, 0, 0)
	dst, err = msg.AppendBinary(dst, m)
	if err != nil {
		return dst, err
	}
	binary.BigEndian.PutUint32(dst[lenAt:], uint32(len(dst)-lenAt-4))
	dst = appendTraceTrailer(dst, m.Trace)
	return binary.BigEndian.AppendUint64(dst, f.EgressNs), nil
}

// wireDecoder is a bounds-checked cursor over one received batch; ver is
// the batch header version, which decides whether frames carry the v4
// trace trailer.
type wireDecoder struct {
	buf []byte
	off int
	ver byte
}

func (d *wireDecoder) need(n int) error {
	if d.off+n > len(d.buf) {
		return fmt.Errorf("%w: truncated at offset %d", ErrWire, d.off)
	}
	return nil
}

func (d *wireDecoder) byte() (byte, error) {
	if err := d.need(1); err != nil {
		return 0, err
	}
	b := d.buf[d.off]
	d.off++
	return b, nil
}

func (d *wireDecoder) uint16() (uint16, error) {
	if err := d.need(2); err != nil {
		return 0, err
	}
	v := binary.BigEndian.Uint16(d.buf[d.off:])
	d.off += 2
	return v, nil
}

func (d *wireDecoder) uint64() (uint64, error) {
	if err := d.need(8); err != nil {
		return 0, err
	}
	v := binary.BigEndian.Uint64(d.buf[d.off:])
	d.off += 8
	return v, nil
}

func (d *wireDecoder) string16() (string, error) {
	n, err := d.uint16()
	if err != nil {
		return "", err
	}
	if err := d.need(int(n)); err != nil {
		return "", err
	}
	s := string(d.buf[d.off : d.off+int(n)])
	d.off += int(n)
	return s, nil
}

// decodeFrame parses one frame at the cursor.
func (d *wireDecoder) decodeFrame() (LinkFrame, error) {
	var f LinkFrame
	k, err := d.byte()
	if err != nil {
		return f, err
	}
	if f.Kind, err = kindString(k); err != nil {
		return f, err
	}
	if f.ID, err = d.uint64(); err != nil {
		return f, err
	}
	flags, err := d.byte()
	if err != nil {
		return f, err
	}
	f.OK = flags&flagOK != 0
	if f.Bus, err = d.string16(); err != nil {
		return f, err
	}
	if f.Src, err = d.string16(); err != nil {
		return f, err
	}
	if f.Dst, err = d.string16(); err != nil {
		return f, err
	}
	srcS, err := d.string16()
	if err != nil {
		return f, err
	}
	if f.SrcSecrecy, err = ifc.ParseLabel(srcS); err != nil {
		return f, fmt.Errorf("%w: src secrecy: %v", ErrWire, err)
	}
	srcI, err := d.string16()
	if err != nil {
		return f, err
	}
	if f.SrcIntegrity, err = ifc.ParseLabel(srcI); err != nil {
		return f, fmt.Errorf("%w: src integrity: %v", ErrWire, err)
	}
	srcJ, err := d.string16()
	if err != nil {
		return f, err
	}
	if f.SrcJurisdiction, err = ifc.ParseLabel(srcJ); err != nil {
		return f, fmt.Errorf("%w: src jurisdiction: %v", ErrWire, err)
	}
	srcP, err := d.string16()
	if err != nil {
		return f, err
	}
	if f.SrcPurpose, err = ifc.ParseLabel(srcP); err != nil {
		return f, fmt.Errorf("%w: src purpose: %v", ErrWire, err)
	}
	if f.Schema, err = d.string16(); err != nil {
		return f, err
	}
	agent, err := d.string16()
	if err != nil {
		return f, err
	}
	f.Agent = ifc.PrincipalID(agent)
	if f.Err, err = d.string16(); err != nil {
		return f, err
	}
	if err := d.need(4); err != nil {
		return f, err
	}
	n := binary.BigEndian.Uint32(d.buf[d.off:])
	d.off += 4
	if err := d.need(int(n)); err != nil {
		return f, err
	}
	if n > 0 {
		// The payload escapes the read buffer (handlers may retain the
		// decoded message's bytes), so copy it out.
		f.Payload = make([]byte, n)
		copy(f.Payload, d.buf[d.off:])
	}
	d.off += int(n)
	if d.ver >= 4 {
		if err := d.need(traceTrailerLen); err != nil {
			return f, err
		}
		f.Trace.ID.Hi = binary.BigEndian.Uint64(d.buf[d.off:])
		f.Trace.ID.Lo = binary.BigEndian.Uint64(d.buf[d.off+8:])
		f.Trace.Hop = d.buf[d.off+16]
		d.off += traceTrailerLen
	}
	if d.ver >= 5 {
		if err := d.need(egressTrailerLen); err != nil {
			return f, err
		}
		f.EgressNs = binary.BigEndian.Uint64(d.buf[d.off:])
		d.off += egressTrailerLen
	}
	return f, nil
}

// DecodeBatch parses one received transport frame into its link frames.
// Version mismatches — including a legacy v1 JSON peer — are reported as
// ErrProtocol with an actionable message; anything else malformed is
// ErrWire.
func DecodeBatch(data []byte) ([]LinkFrame, error) {
	if len(data) == 0 {
		return nil, fmt.Errorf("%w: empty frame", ErrWire)
	}
	if data[0] != linkMagic {
		if data[0] == '{' {
			return nil, fmt.Errorf("%w: peer speaks legacy JSON link protocol v1; this bus accepts v%d-v%d",
				ErrProtocol, linkVersionMin, linkVersion)
		}
		return nil, fmt.Errorf("%w: bad magic byte 0x%02x", ErrWire, data[0])
	}
	if len(data) < batchHeaderLen {
		return nil, fmt.Errorf("%w: short batch header", ErrWire)
	}
	if v := data[1]; v < linkVersionMin || v > linkVersion {
		return nil, fmt.Errorf("%w: peer speaks link protocol v%d, this bus accepts v%d-v%d",
			ErrProtocol, v, linkVersionMin, linkVersion)
	}
	count := int(binary.BigEndian.Uint16(data[2:]))
	d := &wireDecoder{buf: data, off: batchHeaderLen, ver: data[1]}
	frames := make([]LinkFrame, 0, count)
	for i := 0; i < count; i++ {
		f, err := d.decodeFrame()
		if err != nil {
			return nil, err
		}
		frames = append(frames, f)
	}
	if d.off != len(data) {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrWire, len(data)-d.off)
	}
	return frames, nil
}

// encodeSingle packs one frame as a one-element batch (handshake helpers
// and tests; the data path batches through the writer goroutine).
func encodeSingle(f *LinkFrame) ([]byte, error) {
	buf := AppendBatchHeader(nil, 1)
	return AppendLinkFrame(buf, f)
}
