package sbus

import (
	"errors"
	"testing"
	"time"

	"lciot/internal/audit"
	"lciot/internal/ifc"
	"lciot/internal/msg"
	"lciot/internal/transport"
)

// linkedBuses builds two buses joined over an in-memory network:
// "home-bus" (Ann's device) and "cloud-bus" (Ann's analyser), the Fig. 9
// two-machine layout.
func linkedBuses(t *testing.T) (home, cloud *Bus, rec *sinkRecorder) {
	t.Helper()
	net := transport.NewMemNetwork()

	home = NewBus("home-bus", openACL(), nil, nil)
	cloud = NewBus("cloud-bus", openACL(), nil, nil)

	listener, err := net.Listen("cloud-addr")
	if err != nil {
		t.Fatal(err)
	}
	go cloud.Serve(listener)
	t.Cleanup(func() { listener.Close() })

	peer, err := home.LinkTo(net, "cloud-addr")
	if err != nil {
		t.Fatal(err)
	}
	if peer != "cloud-bus" {
		t.Fatalf("peer = %q", peer)
	}

	if _, err := home.Register("ann-device", "hospital", annCtx(), nil,
		EndpointSpec{Name: "out", Dir: Source, Schema: vitalsSchema()}); err != nil {
		t.Fatal(err)
	}
	rec = &sinkRecorder{}
	if _, err := cloud.Register("ann-analyser", "hospital", annCtx(), rec.handler(),
		EndpointSpec{Name: "in", Dir: Sink, Schema: vitalsSchema()}); err != nil {
		t.Fatal(err)
	}
	return home, cloud, rec
}

// waitFor polls until the condition holds or the deadline passes.
func waitFor(t *testing.T, cond func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestFig9CrossMachineFlow is experiment E9: kernel-equivalent context
// travels with the message; the receiving substrate enforces on ingress.
func TestFig9CrossMachineFlow(t *testing.T) {
	home, cloud, rec := linkedBuses(t)

	if err := home.Connect("hospital", "ann-device.out", "cloud-bus:ann-analyser.in"); err != nil {
		t.Fatalf("cross-bus connect: %v", err)
	}
	annDev, _ := home.Component("ann-device")
	if n, err := annDev.Publish("out", vitalsMessage("ann", 72)); err != nil || n != 1 {
		t.Fatalf("publish = %d, %v", n, err)
	}
	waitFor(t, func() bool { return rec.count() == 1 }, "cross-bus delivery")

	m, d := rec.last()
	if v, _ := m.Get("heart-rate"); v.Float != 72 {
		t.Fatalf("delivered = %v", m)
	}
	if d.From != "home-bus:ann-device.out" {
		t.Fatalf("From = %q", d.From)
	}
	// Both substrates audited the flow (Fig. 9: enforcement at each side).
	egress := home.Log().Select(func(r audit.Record) bool {
		return r.Kind == audit.FlowAllowed && r.Note == "egress to peer bus"
	})
	ingress := cloud.Log().Select(func(r audit.Record) bool {
		return r.Kind == audit.FlowAllowed && r.Note == "delivered"
	})
	if len(egress) != 1 || len(ingress) != 1 {
		t.Fatalf("egress records = %d, ingress records = %d", len(egress), len(ingress))
	}
}

func TestCrossBusConnectRefusedByIFC(t *testing.T) {
	home, cloud, _ := linkedBuses(t)

	// Register Zeb's device on the home bus; the cloud analyser is Ann's.
	if _, err := home.Register("zeb-device", "hospital", zebCtx(), nil,
		EndpointSpec{Name: "out", Dir: Source, Schema: vitalsSchema()}); err != nil {
		t.Fatal(err)
	}
	err := home.Connect("hospital", "zeb-device.out", "cloud-bus:ann-analyser.in")
	if err == nil {
		t.Fatal("illegal cross-bus connect succeeded")
	}
	// The remote bus recorded the denial.
	denials := cloud.Log().Select(func(r audit.Record) bool { return r.Kind == audit.FlowDenied })
	if len(denials) != 1 {
		t.Fatalf("remote denials = %d", len(denials))
	}
}

// TestCrossBusIngressRecheck verifies that the *receiving* bus re-evaluates
// every message: when the remote sink's context changes after the channel
// was established, in-flight messages are refused at ingress.
func TestCrossBusIngressRecheck(t *testing.T) {
	home, cloud, rec := linkedBuses(t)
	if err := home.Connect("hospital", "ann-device.out", "cloud-bus:ann-analyser.in"); err != nil {
		t.Fatal(err)
	}
	annDev, _ := home.Component("ann-device")
	if _, err := annDev.Publish("out", vitalsMessage("ann", 72)); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return rec.count() == 1 }, "first delivery")

	// The analyser declassifies to public: Ann's data must no longer enter.
	analyser, _ := cloud.Component("ann-analyser")
	if err := analyser.Entity().GrantPrivileges(ifc.Privileges{
		RemoveSecrecy:   ifc.MustLabel("ann", "medical"),
		RemoveIntegrity: ifc.MustLabel("hosp-dev", "consent"),
	}); err != nil {
		t.Fatal(err)
	}
	if err := analyser.SetContext(ifc.SecurityContext{}); err != nil {
		t.Fatal(err)
	}

	if _, err := annDev.Publish("out", vitalsMessage("ann", 99)); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool {
		denied := cloud.Log().Select(func(r audit.Record) bool {
			return r.Kind == audit.FlowDenied && r.Note == "ingress denied by IFC: "+ifc.EnforceFlow(annCtx(), ifc.SecurityContext{}).Error()
		})
		return len(denied) == 1
	}, "ingress denial")
	if rec.count() != 1 {
		t.Fatalf("deliveries = %d, want 1 (second message refused)", rec.count())
	}
}

func TestCrossBusMessageWithoutChannelDropped(t *testing.T) {
	home, cloud, rec := linkedBuses(t)
	// Bypass Connect: send a raw message frame down the link.
	l, err := home.linkFor("cloud-bus")
	if err != nil {
		t.Fatal(err)
	}
	payload, err := msg.EncodeBinary(vitalsMessage("ann", 1))
	if err != nil {
		t.Fatal(err)
	}
	ctx := annCtx()
	if err := l.sendFrame(&LinkFrame{
		Kind: "message", Src: "home-bus:ann-device.out", Dst: "ann-analyser.in",
		SrcSecrecy: ctx.Secrecy, SrcIntegrity: ctx.Integrity,
		Schema: "vitals", Payload: payload,
	}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool {
		denied := cloud.Log().Select(func(r audit.Record) bool {
			return r.Kind == audit.FlowDenied && r.Note == "ingress denied: no established channel"
		})
		return len(denied) == 1
	}, "channel-less ingress denial")
	if rec.count() != 0 {
		t.Fatal("message delivered without a channel")
	}
}

func TestCrossBusConnectToUnlinkedBus(t *testing.T) {
	home, _, _ := linkedBuses(t)
	err := home.Connect("hospital", "ann-device.out", "mars-bus:x.in")
	if !errors.Is(err, ErrLinkDown) {
		t.Fatalf("connect to unlinked bus = %v", err)
	}
}

func TestCrossBusSchemaMismatch(t *testing.T) {
	home, cloud, _ := linkedBuses(t)
	other := msg.MustSchema("other", ifc.EmptyLabel, msg.Field{Name: "x", Type: msg.TInt})
	if _, err := cloud.Register("odd", "hospital", annCtx(), nil,
		EndpointSpec{Name: "in", Dir: Sink, Schema: other}); err != nil {
		t.Fatal(err)
	}
	err := home.Connect("hospital", "ann-device.out", "cloud-bus:odd.in")
	if err == nil {
		t.Fatal("cross-bus schema mismatch accepted")
	}
}

func TestLinkListing(t *testing.T) {
	home, cloud, _ := linkedBuses(t)
	if links := home.Links(); len(links) != 1 || links[0] != "cloud-bus" {
		t.Fatalf("home links = %v", links)
	}
	if links := cloud.Links(); len(links) != 1 || links[0] != "home-bus" {
		t.Fatalf("cloud links = %v", links)
	}
}

func TestCrossBusQuench(t *testing.T) {
	net := transport.NewMemNetwork()
	home := NewBus("home-bus", openACL(), nil, nil)
	cloud := NewBus("cloud-bus", openACL(), nil, nil)
	listener, err := net.Listen("cloud")
	if err != nil {
		t.Fatal(err)
	}
	go cloud.Serve(listener)
	t.Cleanup(func() { listener.Close() })
	if _, err := home.LinkTo(net, "cloud"); err != nil {
		t.Fatal(err)
	}

	person := msg.MustSchema("person", ifc.EmptyLabel,
		msg.Field{Name: "name", Type: msg.TString, Secrecy: ifc.MustLabel("C")},
		msg.Field{Name: "country", Type: msg.TString},
	)
	if _, err := home.Register("app", "hospital", ifc.SecurityContext{}, nil,
		EndpointSpec{Name: "out", Dir: Source, Schema: person}); err != nil {
		t.Fatal(err)
	}
	rec := &sinkRecorder{}
	if _, err := cloud.Register("analyser", "hospital", ifc.SecurityContext{}, rec.handler(),
		EndpointSpec{Name: "in", Dir: Sink, Schema: person}); err != nil {
		t.Fatal(err)
	}
	// No clearance for C on the receiving side.
	if err := home.Connect("hospital", "app.out", "cloud-bus:analyser.in"); err != nil {
		t.Fatal(err)
	}
	app, _ := home.Component("app")
	m := msg.New("person").Set("name", msg.Str("ann")).Set("country", msg.Str("uk"))
	if _, err := app.Publish("out", m); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return rec.count() == 1 }, "quenched delivery")
	got, d := rec.last()
	if _, ok := got.Get("name"); ok {
		t.Fatal("sensitive attribute crossed the link")
	}
	if len(d.Quenched) != 1 || d.Quenched[0] != "name" {
		t.Fatalf("quenched = %v", d.Quenched)
	}
}
