package sbus_test

import (
	"fmt"

	"lciot/internal/ac"
	"lciot/internal/ifc"
	"lciot/internal/msg"
	"lciot/internal/sbus"
)

// Example_shardedBus builds a 4-shard bus, places a sensor and an
// analyser on different shards (placement is a pure function of the
// component name, inspectable via ShardOf before anything is
// registered), publishes one reading across the shard boundary, and
// reads the per-shard stats an operator would watch to see how load
// spreads — the workflow the README's scaling guide describes.
func Example_shardedBus() {
	acl := &ac.ACL{}
	acl.DefineRole(ac.Role{Name: "admin", Grants: []ac.Permission{{Action: "*", Resource: "**"}}})
	if err := acl.Assign(ac.Assignment{Principal: "op", Role: "admin", Args: map[string]string{}}); err != nil {
		panic(err)
	}

	bus := sbus.NewShardedBus("home", 4, acl, nil, nil)
	defer bus.Close()

	// Shard placement is deterministic, so an operator (or a test) can
	// pick names with known affinity: keep renaming the analyser until it
	// lands on a different shard than the sensor.
	sensor, analyser := "sensor", "analyser-0"
	for i := 1; bus.ShardOf(analyser) == bus.ShardOf(sensor); i++ {
		analyser = fmt.Sprintf("analyser-%d", i)
	}

	schema := msg.MustSchema("reading", ifc.EmptyLabel,
		msg.Field{Name: "celsius", Type: msg.TFloat, Required: true})

	got := make(chan float64, 1)
	src, err := bus.Register(sensor, "op", ifc.SecurityContext{}, nil,
		sbus.EndpointSpec{Name: "out", Dir: sbus.Source, Schema: schema})
	if err != nil {
		panic(err)
	}
	if _, err := bus.Register(analyser, "op", ifc.SecurityContext{},
		func(m *msg.Message, _ sbus.Delivery) {
			v, _ := m.Get("celsius")
			got <- v.Float
		},
		sbus.EndpointSpec{Name: "in", Dir: sbus.Sink, Schema: schema}); err != nil {
		panic(err)
	}
	if err := bus.Connect("op", sensor+".out", analyser+".in"); err != nil {
		panic(err)
	}

	// The delivery crosses a shard boundary: Publish enqueues a handoff
	// and the analyser shard's dispatcher runs the enforcement pipeline
	// (IFC re-check, clearance, quenching, audit) on its own goroutine.
	if _, err := src.Publish("out", msg.New("reading").Set("celsius", msg.Float(21.5))); err != nil {
		panic(err)
	}
	fmt.Printf("delivered %.1f\n", <-got)

	// Per-shard stats show where the work landed; a delivery is recorded
	// before its handler runs, so the stats are current once the reading
	// arrives.
	sinkShard := bus.ShardOf(analyser)
	s := bus.ShardStats()[sinkShard]
	fmt.Printf("sink shard: components=%d delivered=%d handoffs=%d\n",
		s.Components, s.Delivered, s.HandoffsIn)
	fmt.Printf("shards=%d crossShard=%v\n", bus.NumShards(), bus.ShardOf(sensor) != sinkShard)

	// Output:
	// delivered 21.5
	// sink shard: components=1 delivered=1 handoffs=1
	// shards=4 crossShard=true
}
