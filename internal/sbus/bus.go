package sbus

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"lciot/internal/ac"
	"lciot/internal/audit"
	"lciot/internal/ctxmodel"
	"lciot/internal/ifc"
	"lciot/internal/msg"
)

// A channelKey identifies a channel by its fully-qualified endpoints.
type channelKey struct {
	src, dst string // "component.endpoint" (local) or "bus:component.endpoint"
}

// A channel is an established flow path from a source endpoint to a sink.
type channel struct {
	key channelKey
	// remoteBus is non-empty when the sink lives on a linked bus.
	remoteBus string
}

// A Bus is one messaging substrate instance: the per-machine process that
// mediates all component interactions (Fig. 9). It owns the component
// table, the channel table, the audit log, and the links to other buses.
type Bus struct {
	name  string
	acl   *ac.ACL
	store *ctxmodel.Store
	log   *audit.Log

	mu         sync.RWMutex
	components map[string]*Component
	channels   map[channelKey]*channel
	links      map[string]*link
	// admission, when non-nil, is consulted with the advertised security
	// context of every cross-bus ingress (connect and message): federated
	// peers may present tags this domain has never seen, and the admission
	// policy decides whether they are meaningful here (Challenge 1 —
	// typically by resolving each tag through the global namespace).
	admission func(ifc.SecurityContext) error
}

// NewBus builds a bus. The ACL governs the control plane (who may
// reconfigure what); the context store supplies snapshots for contextual
// AC conditions; the audit log receives every enforcement decision.
func NewBus(name string, acl *ac.ACL, store *ctxmodel.Store, log *audit.Log) *Bus {
	if acl == nil {
		acl = &ac.ACL{}
	}
	if store == nil {
		store = ctxmodel.NewStore(nil)
	}
	if log == nil {
		log = audit.NewLog(nil)
	}
	return &Bus{
		name:       name,
		acl:        acl,
		store:      store,
		log:        log,
		components: make(map[string]*Component),
		channels:   make(map[channelKey]*channel),
		links:      make(map[string]*link),
	}
}

// Name returns the bus name (used in cross-bus addresses).
func (b *Bus) Name() string { return b.name }

// SetAdmissionPolicy installs the cross-bus ingress filter (see the
// admission field). A nil policy admits any well-formed context.
func (b *Bus) SetAdmissionPolicy(fn func(ifc.SecurityContext) error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.admission = fn
}

// admit applies the admission policy to an advertised foreign context.
func (b *Bus) admit(ctx ifc.SecurityContext) error {
	b.mu.RLock()
	fn := b.admission
	b.mu.RUnlock()
	if fn == nil {
		return nil
	}
	return fn(ctx)
}

// Log exposes the bus's audit log.
func (b *Bus) Log() *audit.Log { return b.log }

// Store exposes the bus's context store.
func (b *Bus) Store() *ctxmodel.Store { return b.store }

// ACL exposes the bus's access-control list.
func (b *Bus) ACL() *ac.ACL { return b.acl }

// Register attaches a component to the bus.
func (b *Bus) Register(name string, principal ifc.PrincipalID, ctx ifc.SecurityContext,
	handler Handler, endpoints ...EndpointSpec) (*Component, error) {
	if name == "" || strings.ContainsAny(name, ".:") {
		return nil, fmt.Errorf("sbus: invalid component name %q", name)
	}
	c := &Component{
		name:      name,
		bus:       b,
		entity:    ifc.NewEntity(ifc.EntityID(b.name+":"+name), ctx),
		principal: principal,
		handler:   handler,
		endpoints: make(map[string]EndpointSpec, len(endpoints)),
	}
	for _, ep := range endpoints {
		if ep.Name == "" || ep.Schema == nil {
			return nil, fmt.Errorf("sbus: component %q: endpoint needs name and schema", name)
		}
		if _, dup := c.endpoints[ep.Name]; dup {
			return nil, fmt.Errorf("sbus: component %q: duplicate endpoint %q", name, ep.Name)
		}
		c.endpoints[ep.Name] = ep
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if _, dup := b.components[name]; dup {
		return nil, fmt.Errorf("%w: %q", ErrDupComponent, name)
	}
	b.components[name] = c
	return c, nil
}

// Component looks a component up by name.
func (b *Bus) Component(name string) (*Component, error) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	c, ok := b.components[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoComponent, name)
	}
	return c, nil
}

// Components lists component names, sorted.
func (b *Bus) Components() []string {
	b.mu.RLock()
	defer b.mu.RUnlock()
	out := make([]string, 0, len(b.components))
	for n := range b.components {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// splitEndpointAddr parses "component.endpoint".
func splitEndpointAddr(addr string) (comp, ep string, err error) {
	i := strings.LastIndexByte(addr, '.')
	if i <= 0 || i == len(addr)-1 {
		return "", "", fmt.Errorf("sbus: address %q is not component.endpoint", addr)
	}
	return addr[:i], addr[i+1:], nil
}

// splitRemoteAddr parses "bus:component.endpoint"; an empty bus means local.
func splitRemoteAddr(addr string) (bus, rest string) {
	if i := strings.IndexByte(addr, ':'); i >= 0 {
		return addr[:i], addr[i+1:]
	}
	return "", addr
}

// resolveLocal returns the component and endpoint spec for a local address,
// checking the expected direction.
func (b *Bus) resolveLocal(addr string, wantDir Direction) (*Component, EndpointSpec, error) {
	compName, epName, err := splitEndpointAddr(addr)
	if err != nil {
		return nil, EndpointSpec{}, err
	}
	c, err := b.Component(compName)
	if err != nil {
		return nil, EndpointSpec{}, err
	}
	ep, ok := c.Endpoint(epName)
	if !ok {
		return nil, EndpointSpec{}, fmt.Errorf("%w: %q on %q", ErrNoEndpoint, epName, compName)
	}
	if ep.Dir != wantDir {
		return nil, EndpointSpec{}, fmt.Errorf("%w: %q is %s, want %s", ErrDirection, addr, ep.Dir, wantDir)
	}
	return c, ep, nil
}

// Connect establishes a channel from a local source endpoint to a sink,
// which may be local ("comp.ep") or remote ("bus:comp.ep"), on behalf of
// principal "by". Enforcement at establishment (Section 8.2.2):
//
//  1. Access control: "by" must hold connect rights over the channel
//     resource at message-type granularity.
//  2. Schema compatibility between the endpoints.
//  3. IFC: the source component's context must flow to the sink's.
//
// Both success and denial are audited.
func (b *Bus) Connect(by ifc.PrincipalID, src, dst string) error {
	srcComp, srcEP, err := b.resolveLocal(src, Source)
	if err != nil {
		return err
	}
	resource := "channel/" + srcEP.Schema.Name + "/" + src + "/" + dst
	if err := b.acl.Authorize(by, "connect", resource, b.store.Snapshot()); err != nil {
		b.auditDenied(srcComp.entity.ID(), ifc.EntityID(dst), srcComp.Context(),
			ifc.SecurityContext{}, by, "", "connect denied by AC: "+err.Error())
		return err
	}
	if srcComp.Quarantined() {
		return fmt.Errorf("%w: %q", ErrQuarantined, srcComp.Name())
	}

	remoteBus, rest := splitRemoteAddr(dst)
	if remoteBus != "" && remoteBus != b.name {
		return b.connectRemote(by, srcComp, srcEP, src, remoteBus, rest)
	}

	dstComp, dstEP, err := b.resolveLocal(rest, Sink)
	if err != nil {
		return err
	}
	if dstComp.Quarantined() {
		return fmt.Errorf("%w: %q", ErrQuarantined, dstComp.Name())
	}
	if srcEP.Schema.Name != dstEP.Schema.Name {
		return fmt.Errorf("%w: %q emits %q, %q accepts %q",
			ErrSchema, src, srcEP.Schema.Name, dst, dstEP.Schema.Name)
	}
	if err := ifc.EnforceFlow(srcComp.Context(), dstComp.Context()); err != nil {
		b.auditDenied(srcComp.entity.ID(), dstComp.entity.ID(), srcComp.Context(),
			dstComp.Context(), by, "", "connect denied by IFC: "+err.Error())
		return err
	}

	key := channelKey{src: src, dst: rest}
	b.mu.Lock()
	b.channels[key] = &channel{key: key}
	b.mu.Unlock()

	b.log.Append(audit.Record{
		Kind: audit.Reconfiguration, Layer: audit.LayerMessaging, Domain: b.name,
		Src: srcComp.entity.ID(), Dst: dstComp.entity.ID(),
		SrcCtx: srcComp.Context(), DstCtx: dstComp.Context(),
		Agent: by, Note: "channel established",
	})
	return nil
}

// Disconnect removes a channel on behalf of a principal (AC-checked).
func (b *Bus) Disconnect(by ifc.PrincipalID, src, dst string) error {
	if err := b.acl.Authorize(by, "disconnect", "channel/*/"+src+"/"+dst, b.store.Snapshot()); err != nil {
		return err
	}
	_, rest := splitRemoteAddr(dst)
	key := channelKey{src: src, dst: rest}
	if remote, _ := splitRemoteAddr(dst); remote != "" && remote != b.name {
		key.dst = dst
	}
	b.mu.Lock()
	_, ok := b.channels[key]
	if ok {
		delete(b.channels, key)
	}
	b.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %s -> %s", ErrNoChannel, src, dst)
	}
	b.log.Append(audit.Record{
		Kind: audit.Reconfiguration, Layer: audit.LayerMessaging, Domain: b.name,
		Src: ifc.EntityID(b.name + ":" + src), Dst: ifc.EntityID(dst),
		Agent: by, Note: "channel torn down",
	})
	return nil
}

// Channels lists established channels as "src -> dst", sorted.
func (b *Bus) Channels() []string {
	b.mu.RLock()
	defer b.mu.RUnlock()
	out := make([]string, 0, len(b.channels))
	for k := range b.channels {
		out = append(out, k.src+" -> "+k.dst)
	}
	sort.Strings(out)
	return out
}

// publish delivers a message from a source endpoint down every channel.
func (b *Bus) publish(c *Component, endpoint string, m *msg.Message) (int, error) {
	ep, ok := c.Endpoint(endpoint)
	if !ok {
		return 0, fmt.Errorf("%w: %q on %q", ErrNoEndpoint, endpoint, c.Name())
	}
	if ep.Dir != Source {
		return 0, fmt.Errorf("%w: %q is %s", ErrDirection, endpoint, ep.Dir)
	}
	if c.Quarantined() {
		return 0, fmt.Errorf("%w: %q", ErrQuarantined, c.Name())
	}
	if err := ep.Schema.Validate(m); err != nil {
		return 0, err
	}

	src := c.Name() + "." + endpoint
	b.mu.RLock()
	var outs []*channel
	for k, ch := range b.channels {
		if k.src == src {
			outs = append(outs, ch)
		}
	}
	b.mu.RUnlock()

	delivered := 0
	for _, ch := range outs {
		remoteBus, rest := splitRemoteAddr(ch.key.dst)
		if remoteBus != "" && remoteBus != b.name {
			if err := b.sendRemote(c, ep, remoteBus, rest, m); err == nil {
				delivered++
			}
			continue
		}
		if b.deliverLocal(c, ep, ch.key.dst, m) {
			delivered++
		}
	}
	return delivered, nil
}

// deliverLocal enforces per-message policy and invokes the sink handler.
// The delivery pipeline (Section 8.2.2): OS-level IFC re-check (contexts
// may have changed since establishment), message-type clearance, attribute
// quenching, then handler invocation. Every outcome is audited.
func (b *Bus) deliverLocal(srcComp *Component, srcEP EndpointSpec, dst string, m *msg.Message) bool {
	dstComp, dstEP, err := b.resolveLocal(dst, Sink)
	if err != nil {
		return false
	}
	srcCtx, dstCtx := srcComp.Context(), dstComp.Context()

	if dstComp.Quarantined() {
		b.auditDenied(srcComp.entity.ID(), dstComp.entity.ID(), srcCtx, dstCtx,
			srcComp.principal, m.DataID, "delivery denied: destination quarantined")
		return false
	}
	// OS-level IFC re-check on every message.
	if err := ifc.EnforceFlow(srcCtx, dstCtx); err != nil {
		b.auditDenied(srcComp.entity.ID(), dstComp.entity.ID(), srcCtx, dstCtx,
			srcComp.principal, m.DataID, "delivery denied by IFC: "+err.Error())
		return false
	}
	// Message-layer type tags (Fig. 10): whole message needs clearance.
	clearance := dstComp.Clearance()
	if !srcEP.Schema.Secrecy.Subset(clearance) {
		b.auditDenied(srcComp.entity.ID(), dstComp.entity.ID(), srcCtx, dstCtx,
			srcComp.principal, m.DataID,
			fmt.Sprintf("delivery denied: type tags %s exceed clearance %s", srcEP.Schema.Secrecy, clearance))
		return false
	}
	// Attribute-level source quenching.
	out, quenched := srcEP.Schema.Quench(m, clearance)

	b.log.Append(audit.Record{
		Kind: audit.FlowAllowed, Layer: audit.LayerMessaging, Domain: b.name,
		Src: srcComp.entity.ID(), Dst: dstComp.entity.ID(),
		SrcCtx: srcCtx, DstCtx: dstCtx,
		DataID: m.DataID, Agent: srcComp.principal,
		Note: deliveryNote(quenched),
	})
	if dstComp.handler != nil {
		dstComp.handler(out, Delivery{
			From:     b.name + ":" + srcComp.Name() + "." + srcEP.Name,
			Endpoint: dstEP.Name,
			Quenched: quenched,
		})
	}
	_ = dstEP
	return true
}

func deliveryNote(quenched []string) string {
	if len(quenched) == 0 {
		return "delivered"
	}
	return "delivered with quenched attributes: " + strings.Join(quenched, ",")
}

// reevaluate re-checks every channel touching the named component and tears
// down those the current contexts no longer permit.
func (b *Bus) reevaluate(component string) {
	b.mu.Lock()
	var torn []channelKey
	for k := range b.channels {
		srcComp, _, err1 := b.resolveLocalLocked(k.src, Source)
		if err1 != nil {
			continue
		}
		remoteBus, rest := splitRemoteAddr(k.dst)
		if remoteBus != "" && remoteBus != b.name {
			continue // the remote bus re-checks on ingress
		}
		dstComp, _, err2 := b.resolveLocalLocked(rest, Sink)
		if err2 != nil {
			continue
		}
		if srcComp.Name() != component && dstComp.Name() != component {
			continue
		}
		if !srcComp.Context().CanFlowTo(dstComp.Context()) {
			torn = append(torn, k)
		}
	}
	for _, k := range torn {
		delete(b.channels, k)
	}
	b.mu.Unlock()

	for _, k := range torn {
		b.log.Append(audit.Record{
			Kind: audit.Reconfiguration, Layer: audit.LayerMessaging, Domain: b.name,
			Src: ifc.EntityID(b.name + ":" + k.src), Dst: ifc.EntityID(k.dst),
			Note: "channel torn down: context change made flow illegal",
		})
	}
}

// resolveLocalLocked is resolveLocal without re-taking the bus lock.
func (b *Bus) resolveLocalLocked(addr string, wantDir Direction) (*Component, EndpointSpec, error) {
	compName, epName, err := splitEndpointAddr(addr)
	if err != nil {
		return nil, EndpointSpec{}, err
	}
	c, ok := b.components[compName]
	if !ok {
		return nil, EndpointSpec{}, fmt.Errorf("%w: %q", ErrNoComponent, compName)
	}
	ep, ok := c.Endpoint(epName)
	if !ok {
		return nil, EndpointSpec{}, fmt.Errorf("%w: %q on %q", ErrNoEndpoint, epName, compName)
	}
	if ep.Dir != wantDir {
		return nil, EndpointSpec{}, fmt.Errorf("%w: %q is %s", ErrDirection, addr, ep.Dir)
	}
	return c, ep, nil
}

// auditDenied appends a denial record.
func (b *Bus) auditDenied(src, dst ifc.EntityID, srcCtx, dstCtx ifc.SecurityContext,
	agent ifc.PrincipalID, dataID, note string) {
	b.log.Append(audit.Record{
		Kind: audit.FlowDenied, Layer: audit.LayerMessaging, Domain: b.name,
		Src: src, Dst: dst, SrcCtx: srcCtx, DstCtx: dstCtx,
		DataID: dataID, Agent: agent, Note: note,
	})
}
