package sbus

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"lciot/internal/ac"
	"lciot/internal/audit"
	"lciot/internal/ctxmodel"
	"lciot/internal/ifc"
	"lciot/internal/msg"
	"lciot/internal/telemetry"
)

// A channelKey identifies a channel by its fully-qualified endpoints.
type channelKey struct {
	src, dst string // "component.endpoint" (local) or "bus:component.endpoint"
}

// A channel is an established flow path from a source endpoint to a sink.
// The endpoints are resolved once, at establishment: components are never
// deregistered and endpoint specs are immutable after registration, so the
// cached pointers stay valid for the channel's lifetime, and every dynamic
// property (context, clearance, quarantine) is re-read per delivery.
type channel struct {
	key channelKey
	// srcComp is the source component (resolved at establishment).
	srcComp *Component
	// remoteBus/remoteDst are set when the sink lives on a linked bus, along
	// with srcEP and agent, which the link layer needs to replay the connect
	// handshake when a broken link resumes.
	remoteBus string
	remoteDst string
	srcEP     EndpointSpec
	agent     ifc.PrincipalID
	// dstComp/dstEP are set for local sinks.
	dstComp *Component
	dstEP   EndpointSpec
	// srcShard/dstShard cache the home shards of the two endpoints (equal
	// for same-shard and remote channels), so publish decides inline
	// delivery versus ring handoff without hashing.
	srcShard int
	dstShard int
	// verified caches the generations at which this channel's flow legality
	// was last confirmed; see chanStamp. Written by Connect and reevaluate,
	// read by reevaluate to skip checks no generation has invalidated.
	verified atomic.Pointer[chanStamp]
}

// A chanStamp records the invalidation generations a channel-legality check
// was derived from: the two endpoint entities' context generations and the
// process-wide flow-cache generation (which advances on privilege and gate
// changes). While all three are unchanged, the channel's last verdict still
// describes the live configuration and re-evaluation may skip it — the same
// generation-stamping discipline as the ifc flow cache.
type chanStamp struct {
	srcGen, dstGen, flowGen uint64
}

// routing is one shard's immutable routing state. Mutations (component
// registration, channel establishment/teardown) build a new snapshot under
// the shard's write lock and publish it atomically, so the message hot
// path (publish → deliverLocal) reads routing state without taking any
// lock and never contends with reconfiguration — and reconfiguration of
// one shard never contends with any other shard.
type routing struct {
	// components maps the names that hash to this shard to their components.
	components map[string]*Component
	// channels holds the channels this shard owns: those whose source
	// component is homed here.
	channels map[channelKey]*channel
	// bySrc indexes owned channels by their source endpoint
	// ("component.endpoint"), making publish O(fan-out) instead of
	// O(total channels).
	bySrc map[string][]*channel
	// byComp indexes channels by this shard's *components* (source, and
	// local sink when it differs), so a context change re-evaluates only the
	// changed component's channels instead of every channel on the bus. A
	// cross-shard channel therefore appears in its sink's home shard under
	// byComp even though the source's shard owns it.
	byComp map[string][]*channel
}

// clone copies the snapshot's maps (the referenced components and channels
// are shared — they are immutable or internally synchronised). Slice
// values are shared too and copied on first write (see addOwned and
// friends).
func (r *routing) clone() *routing {
	next := &routing{
		components: make(map[string]*Component, len(r.components)+1),
		channels:   make(map[channelKey]*channel, len(r.channels)+1),
		bySrc:      make(map[string][]*channel, len(r.bySrc)+1),
		byComp:     make(map[string][]*channel, len(r.byComp)+1),
	}
	for k, v := range r.components {
		next.components[k] = v
	}
	for k, v := range r.channels {
		next.channels[k] = v
	}
	for k, v := range r.bySrc {
		next.bySrc[k] = v
	}
	for k, v := range r.byComp {
		next.byComp[k] = v
	}
	return next
}

// addOwned inserts ch into the shard's channel table and source index. The
// bySrc slice is copy-on-write: readers may hold the old slice. The caller
// must have removed any predecessor with the same key first.
func (r *routing) addOwned(ch *channel) {
	r.channels[ch.key] = ch
	old := r.bySrc[ch.key.src]
	next := make([]*channel, len(old), len(old)+1)
	copy(next, old)
	r.bySrc[ch.key.src] = append(next, ch)
}

// removeOwned deletes the channel with the given key from the channel
// table and source index, returning it (nil if absent).
func (r *routing) removeOwned(key channelKey) *channel {
	ch, ok := r.channels[key]
	if !ok {
		return nil
	}
	delete(r.channels, key)
	old := r.bySrc[key.src]
	next := make([]*channel, 0, len(old))
	for _, c := range old {
		if c != ch {
			next = append(next, c)
		}
	}
	if len(next) == 0 {
		delete(r.bySrc, key.src)
	} else {
		r.bySrc[key.src] = next
	}
	return ch
}

// addByComp appends ch to the named component's re-evaluation index entry
// (copy-on-write).
func (r *routing) addByComp(name string, ch *channel) {
	old := r.byComp[name]
	next := make([]*channel, len(old), len(old)+1)
	copy(next, old)
	r.byComp[name] = append(next, ch)
}

// removeByComp deletes ch from the named component's re-evaluation entry.
func (r *routing) removeByComp(name string, ch *channel) {
	old := r.byComp[name]
	next := make([]*channel, 0, len(old))
	for _, c := range old {
		if c != ch {
			next = append(next, c)
		}
	}
	if len(next) == 0 {
		delete(r.byComp, name)
	} else {
		r.byComp[name] = next
	}
}

// compNames lists the distinct local component names a channel touches.
func (ch *channel) compNames() []string {
	src := ch.srcComp.Name()
	if ch.dstComp != nil && ch.dstComp.Name() != src {
		return []string{src, ch.dstComp.Name()}
	}
	return []string{src}
}

// A Bus is one messaging substrate instance: the per-machine process that
// mediates all component interactions (Fig. 9). It owns the component
// table, the channel table, the audit log, and the links to other buses.
// The tables are partitioned across shards by component-name hash; see
// the package documentation for the sharding model.
type Bus struct {
	name  string
	acl   *ac.ACL
	store *ctxmodel.Store
	log   *audit.Log
	gates ifc.GateRegistry

	// shards partition routing state and dispatch by component hash.
	// len(shards) >= 1 and is fixed at construction.
	shards []*shard

	// quit, closed by Close, stops the shard dispatchers; closed is the
	// flag publishers consult (under the shard's enqMu read lock) before
	// attempting a ring handoff, so no message is enqueued after the
	// dispatchers' final drain.
	quit      chan struct{}
	closed    atomic.Bool
	closeOnce sync.Once

	// links maps peer bus names to live links. Links are bus-global (a
	// link serves channels from every shard), so they live outside the
	// shard snapshots: linkMu serialises mutations, the pointer is read
	// lock-free.
	linkMu sync.Mutex
	links  atomic.Pointer[map[string]*link]

	// admission, when non-nil, is consulted with the advertised security
	// context of every cross-bus ingress (connect and message): federated
	// peers may present tags this domain has never seen, and the admission
	// policy decides whether they are meaningful here (Challenge 1 —
	// typically by resolving each tag through the global namespace).
	admission atomic.Pointer[func(ifc.SecurityContext) error]

	// linkCfg is the tuning applied to links established by this bus; nil
	// means the defaults (see LinkConfig.withDefaults).
	linkCfg atomic.Pointer[LinkConfig]

	// jurisdiction is the set of jurisdictions this bus (machine) resides
	// in, declared to peers in the federation hello so their link egress
	// can enforce residency obligations before data leaves the region.
	// Empty means undeclared — residency-constrained data will then never
	// be sent to (or accepted by) this bus.
	jurisdiction atomic.Pointer[ifc.Label]

	// pubHist times publish calls end to end (zero cost while telemetry
	// is disabled: Start returns the zero time after one atomic load).
	pubHist *telemetry.Histogram

	// maxWireVer caps the link protocol version this bus advertises in
	// hellos; 0 means the compiled-in maximum. Tests set it before
	// linking to exercise v3 interop against a v4 build.
	maxWireVer int
}

// NewBus builds a single-shard bus. The ACL governs the control plane (who
// may reconfigure what); the context store supplies snapshots for
// contextual AC conditions; the audit log receives every enforcement
// decision. On a single-shard bus every delivery is executed inline on the
// publisher's goroutine, exactly as before sharding existed.
func NewBus(name string, acl *ac.ACL, store *ctxmodel.Store, log *audit.Log) *Bus {
	return NewShardedBus(name, 1, acl, store, log)
}

// NewShardedBus builds a bus whose routing state and dispatch are
// partitioned into the given number of shards (clamped to [1, 1024]).
// Components are assigned to shards by name hash; same-shard deliveries
// run inline on the publisher's goroutine, cross-shard deliveries hand
// off to the destination shard's dispatcher. Call Close to stop the
// dispatchers when the bus is discarded.
func NewShardedBus(name string, shards int, acl *ac.ACL, store *ctxmodel.Store, log *audit.Log) *Bus {
	if acl == nil {
		acl = &ac.ACL{}
	}
	if store == nil {
		store = ctxmodel.NewStore(nil)
	}
	if log == nil {
		log = audit.NewLog(nil)
	}
	if shards < 1 {
		shards = 1
	}
	if shards > maxShards {
		shards = maxShards
	}
	// One audit staging lane per shard: each dispatcher appends hot-path
	// records into its own lane buffer, so audit ingest never serialises
	// parallel deliveries (chain-order is restored at the merge; see
	// audit.Log.AppendAsyncLane).
	log.SetStagingLanes(shards)
	b := &Bus{
		name:  name,
		acl:   acl,
		store: store,
		log:   log,
		quit:  make(chan struct{}),
	}
	empty := map[string]*link{}
	b.links.Store(&empty)
	b.shards = make([]*shard, shards)
	for i := range b.shards {
		sh := &shard{idx: i, ring: make(chan handoff, handoffRingSize)}
		sh.routing.Store(&routing{
			components: map[string]*Component{},
			channels:   map[channelKey]*channel{},
			bySrc:      map[string][]*channel{},
			byComp:     map[string][]*channel{},
		})
		b.shards[i] = sh
	}
	if shards > 1 {
		for _, sh := range b.shards {
			go sh.dispatch(b)
		}
	}
	registerBusMetrics(b)
	return b
}

// Name returns the bus name (used in cross-bus addresses).
func (b *Bus) Name() string { return b.name }

// maxWire is the highest link protocol version this bus advertises in
// hellos (maxWireVer caps it for interop tests; 0 means the compiled-in
// maximum).
func (b *Bus) maxWire() byte {
	if b.maxWireVer >= linkVersionMin && b.maxWireVer < int(linkVersion) {
		return byte(b.maxWireVer)
	}
	return linkVersion
}

// SetJurisdiction declares the jurisdictions this bus resides in. The
// declaration travels in the federation hello (wire protocol v3), where
// peer buses use it to gate egress of residency-constrained data; links
// established before the call keep the jurisdiction they greeted with
// until their next reconnect.
func (b *Bus) SetJurisdiction(l ifc.Label) { b.jurisdiction.Store(&l) }

// Jurisdiction returns the declared jurisdiction set (empty when
// undeclared).
func (b *Bus) Jurisdiction() ifc.Label {
	if l := b.jurisdiction.Load(); l != nil {
		return *l
	}
	return ifc.EmptyLabel
}

// SetAdmissionPolicy installs the cross-bus ingress filter (see the
// admission field). A nil policy admits any well-formed context.
func (b *Bus) SetAdmissionPolicy(fn func(ifc.SecurityContext) error) {
	if fn == nil {
		b.admission.Store(nil)
		return
	}
	b.admission.Store(&fn)
}

// admit applies the admission policy to an advertised foreign context.
func (b *Bus) admit(ctx ifc.SecurityContext) error {
	fn := b.admission.Load()
	if fn == nil {
		return nil
	}
	return (*fn)(ctx)
}

// Log exposes the bus's audit log.
func (b *Bus) Log() *audit.Log { return b.log }

// Store exposes the bus's context store.
func (b *Bus) Store() *ctxmodel.Store { return b.store }

// ACL exposes the bus's access-control list.
func (b *Bus) ACL() *ac.ACL { return b.acl }

// Gates exposes the bus's gate registry (declassifiers/endorsers installed
// in this domain).
func (b *Bus) Gates() *ifc.GateRegistry { return &b.gates }

// Register attaches a component to the bus, homing it on the shard its
// name hashes to.
func (b *Bus) Register(name string, principal ifc.PrincipalID, ctx ifc.SecurityContext,
	handler Handler, endpoints ...EndpointSpec) (*Component, error) {
	if name == "" || strings.ContainsAny(name, ".:") {
		return nil, fmt.Errorf("sbus: invalid component name %q", name)
	}
	idx := b.shardIdx(name)
	c := &Component{
		name:      name,
		bus:       b,
		shard:     idx,
		entity:    ifc.NewEntity(ifc.EntityID(b.name+":"+name), ctx),
		principal: principal,
		handler:   handler,
		endpoints: make(map[string]EndpointSpec, len(endpoints)),
	}
	for _, ep := range endpoints {
		if ep.Name == "" || ep.Schema == nil {
			return nil, fmt.Errorf("sbus: component %q: endpoint needs name and schema", name)
		}
		if _, dup := c.endpoints[ep.Name]; dup {
			return nil, fmt.Errorf("sbus: component %q: duplicate endpoint %q", name, ep.Name)
		}
		c.endpoints[ep.Name] = ep
	}
	var dup bool
	b.mutate1(idx, func(r *routing) bool {
		if _, dup = r.components[name]; dup {
			return false
		}
		r.components[name] = c
		return true
	})
	if dup {
		return nil, fmt.Errorf("%w: %q", ErrDupComponent, name)
	}
	return c, nil
}

// Component looks a component up by name. Names map to exactly one shard,
// so the lookup reads a single snapshot, lock-free.
func (b *Bus) Component(name string) (*Component, error) {
	c, ok := b.shardFor(name).routing.Load().components[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoComponent, name)
	}
	return c, nil
}

// Components lists component names across all shards, sorted.
func (b *Bus) Components() []string {
	var out []string
	for _, sh := range b.shards {
		for n := range sh.routing.Load().components {
			out = append(out, n)
		}
	}
	sort.Strings(out)
	return out
}

// HotComponents returns the k components with the most lifetime deliveries,
// hottest first (ties broken by name for determinism), each tagged with its
// home shard. The scan is lock-free — it reads the routing snapshots and
// each component's delivery counter — so operators can poll it to pinpoint
// which component a skewed lane's load concentrates on.
func (b *Bus) HotComponents(k int) []telemetry.HotComponent {
	if k <= 0 {
		return nil
	}
	var all []telemetry.HotComponent
	for _, sh := range b.shards {
		for name, c := range sh.routing.Load().components {
			if n := c.delivered.Load(); n > 0 {
				all = append(all, telemetry.HotComponent{Name: name, Lane: sh.idx, Deliveries: n})
			}
		}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Deliveries != all[j].Deliveries {
			return all[i].Deliveries > all[j].Deliveries
		}
		return all[i].Name < all[j].Name
	})
	if len(all) > k {
		all = all[:k]
	}
	return all
}

// splitEndpointAddr parses "component.endpoint".
func splitEndpointAddr(addr string) (comp, ep string, err error) {
	i := strings.LastIndexByte(addr, '.')
	if i <= 0 || i == len(addr)-1 {
		return "", "", fmt.Errorf("sbus: address %q is not component.endpoint", addr)
	}
	return addr[:i], addr[i+1:], nil
}

// splitRemoteAddr parses "bus:component.endpoint"; an empty bus means local.
func splitRemoteAddr(addr string) (bus, rest string) {
	if i := strings.IndexByte(addr, ':'); i >= 0 {
		return addr[:i], addr[i+1:]
	}
	return "", addr
}

// resolveLocal returns the component and endpoint spec for a local address,
// checking the expected direction.
func (b *Bus) resolveLocal(addr string, wantDir Direction) (*Component, EndpointSpec, error) {
	compName, epName, err := splitEndpointAddr(addr)
	if err != nil {
		return nil, EndpointSpec{}, err
	}
	c, ok := b.shardFor(compName).routing.Load().components[compName]
	if !ok {
		return nil, EndpointSpec{}, fmt.Errorf("%w: %q", ErrNoComponent, compName)
	}
	ep, ok := c.Endpoint(epName)
	if !ok {
		return nil, EndpointSpec{}, fmt.Errorf("%w: %q on %q", ErrNoEndpoint, epName, compName)
	}
	if ep.Dir != wantDir {
		return nil, EndpointSpec{}, fmt.Errorf("%w: %q is %s, want %s", ErrDirection, addr, ep.Dir, wantDir)
	}
	return c, ep, nil
}

// Connect establishes a channel from a local source endpoint to a sink,
// which may be local ("comp.ep") or remote ("bus:comp.ep"), on behalf of
// principal "by". Enforcement at establishment (Section 8.2.2):
//
//  1. Access control: "by" must hold connect rights over the channel
//     resource at message-type granularity.
//  2. Schema compatibility between the endpoints.
//  3. IFC: the source component's context must flow to the sink's.
//
// Both success and denial are audited.
func (b *Bus) Connect(by ifc.PrincipalID, src, dst string) error {
	srcComp, srcEP, err := b.resolveLocal(src, Source)
	if err != nil {
		return err
	}
	resource := "channel/" + srcEP.Schema.Name + "/" + src + "/" + dst
	if err := b.acl.Authorize(by, "connect", resource, b.store.Snapshot()); err != nil {
		b.auditDenied(srcComp.entity.ID(), ifc.EntityID(dst), srcComp.Context(),
			ifc.SecurityContext{}, by, "", "connect denied by AC: "+err.Error())
		return err
	}
	if srcComp.Quarantined() {
		return fmt.Errorf("%w: %q", ErrQuarantined, srcComp.Name())
	}

	remoteBus, rest := splitRemoteAddr(dst)
	if remoteBus != "" && remoteBus != b.name {
		return b.connectRemote(by, srcComp, srcEP, src, remoteBus, rest)
	}

	ch, err := b.buildLocalChannel(by, srcComp, srcEP, src, rest)
	if err != nil {
		return err
	}
	b.installChannel(ch)

	b.log.Append(audit.Record{
		Kind: audit.Reconfiguration, Layer: audit.LayerMessaging, Domain: b.name,
		Src: srcComp.entity.ID(), Dst: ch.dstComp.entity.ID(),
		SrcCtx: srcComp.Context(), DstCtx: ch.dstComp.Context(),
		Agent: by, Note: "channel established",
	})
	return nil
}

// buildLocalChannel resolves and polices one local channel (schema
// compatibility, quarantine, IFC) and returns it stamped and ready to
// install. Shared by Connect and ConnectMany.
func (b *Bus) buildLocalChannel(by ifc.PrincipalID, srcComp *Component, srcEP EndpointSpec,
	src, rest string) (*channel, error) {
	dstComp, dstEP, err := b.resolveLocal(rest, Sink)
	if err != nil {
		return nil, err
	}
	if dstComp.Quarantined() {
		return nil, fmt.Errorf("%w: %q", ErrQuarantined, dstComp.Name())
	}
	if srcEP.Schema.Name != dstEP.Schema.Name {
		return nil, fmt.Errorf("%w: %q emits %q, %q accepts %q",
			ErrSchema, src, srcEP.Schema.Name, rest, dstEP.Schema.Name)
	}
	// Read the generations before the contexts they stamp: a concurrent
	// SetContext can then only make the stamp stale (forcing a re-check),
	// never let it vouch for a context it did not see.
	srcCtx, srcGen := srcComp.entity.ContextAndGen()
	dstCtx, dstGen := dstComp.entity.ContextAndGen()
	flowGen := ifc.FlowCacheGeneration()
	if err := ifc.EnforceFlow(srcCtx, dstCtx); err != nil {
		note := "connect denied by IFC: " + err.Error()
		if via, ok := b.gates.Route(srcCtx, dstCtx); ok && via != "" {
			note += "; installed gate " + via + " could bridge this flow"
		}
		b.auditDenied(srcComp.entity.ID(), dstComp.entity.ID(), srcCtx,
			dstCtx, by, "", note)
		return nil, err
	}

	ch := &channel{
		key:     channelKey{src: src, dst: rest},
		srcComp: srcComp, dstComp: dstComp, dstEP: dstEP,
	}
	ch.verified.Store(&chanStamp{srcGen: srcGen, dstGen: dstGen, flowGen: flowGen})
	return ch, nil
}

// ConnectMany establishes many local channels in one pass, with one
// routing-snapshot swap per touched shard instead of one per channel —
// the bulk path for bootstrapping large topologies (a million registered
// channels clone each shard's index once, not a million times). Every
// pair is individually policed exactly as Connect polices it (AC, schema,
// IFC, quarantine); the first failure aborts the whole batch before any
// routing state changes. One summary audit record is appended per batch.
//
// The batch holds every touched shard's write lock while it retires
// replaced channels and installs the new ones, so it serialises against
// concurrent Connect/Disconnect on overlapping keys exactly like
// repeated Connect would. Lock-free readers may still briefly observe
// one shard's new snapshot alongside another's old one (snapshots swap
// per shard). Remote destinations are not supported here.
func (b *Bus) ConnectMany(by ifc.PrincipalID, pairs [][2]string) error {
	if len(pairs) == 0 {
		return nil
	}
	snap := b.store.Snapshot()
	chans := make([]*channel, 0, len(pairs))
	authorized := make(map[string]bool, 64)
	for _, p := range pairs {
		src, dst := p[0], p[1]
		srcComp, srcEP, err := b.resolveLocal(src, Source)
		if err != nil {
			return err
		}
		resource := "channel/" + srcEP.Schema.Name + "/" + src + "/" + dst
		if !authorized[resource] {
			if err := b.acl.Authorize(by, "connect", resource, snap); err != nil {
				b.auditDenied(srcComp.entity.ID(), ifc.EntityID(dst), srcComp.Context(),
					ifc.SecurityContext{}, by, "", "connect denied by AC: "+err.Error())
				return err
			}
			authorized[resource] = true
		}
		if srcComp.Quarantined() {
			return fmt.Errorf("%w: %q", ErrQuarantined, srcComp.Name())
		}
		if remote, _ := splitRemoteAddr(dst); remote != "" && remote != b.name {
			return fmt.Errorf("sbus: ConnectMany: remote destination %q not supported", dst)
		}
		_, rest := splitRemoteAddr(dst)
		ch, err := b.buildLocalChannel(by, srcComp, srcEP, src, rest)
		if err != nil {
			return err
		}
		chans = append(chans, ch)
	}

	// Dedup by key (last wins, like repeated Connect).
	byKey := make(map[channelKey]*channel, len(chans))
	ordered := chans[:0]
	for _, ch := range chans {
		if _, dup := byKey[ch.key]; !dup {
			ordered = append(ordered, ch)
		}
		byKey[ch.key] = ch
	}

	// Group the owned-index work by source shard and the byComp work by
	// each touched component's home shard: each touched slice is copied
	// once per batch, then extended in place.
	ownedByShard := make(map[int][]*channel)
	compByShard := make(map[int]map[string][]*channel)
	for _, ch := range ordered {
		ch := byKey[ch.key]
		i, j, _, _ := b.channelShards(ch.key)
		ch.srcShard, ch.dstShard = i, j
		ownedByShard[i] = append(ownedByShard[i], ch)
		for _, name := range ch.compNames() {
			home := b.shardIdx(name)
			m := compByShard[home]
			if m == nil {
				m = make(map[string][]*channel)
				compByShard[home] = m
			}
			m[name] = append(m[name], ch)
		}
	}
	idxs := make(map[int]bool, len(b.shards))
	for i := range ownedByShard {
		idxs[i] = true
	}
	for i := range compByShard {
		idxs[i] = true
	}
	order := make([]int, 0, len(idxs))
	for i := range idxs {
		order = append(order, i)
	}
	sort.Ints(order)

	// Retire predecessors and bulk-install inside ONE critical section
	// spanning every touched shard. A predecessor shares its key — and
	// therefore its shards — with its replacement, so its indexes are all
	// under these locks; doing both halves under them means a concurrent
	// Connect on an overlapping key either completes before the batch (its
	// channel is retired here) or after it (retiring the batch's channel),
	// never interleaving in a way that strands a live bySrc entry.
	b.mutateN(order, func(rs map[int]*routing) bool {
		for _, ch := range ordered {
			ch := byKey[ch.key]
			if old := rs[ch.srcShard].removeOwned(ch.key); old != nil {
				for _, name := range old.compNames() {
					rs[b.shardIdx(name)].removeByComp(name, old)
				}
			}
		}
		for i, adds := range ownedByShard {
			r := rs[i]
			grownSrc := make(map[string][]*channel)
			for _, ch := range adds {
				r.channels[ch.key] = ch
				s, ok := grownSrc[ch.key.src]
				if !ok {
					s = append(make([]*channel, 0, len(r.bySrc[ch.key.src])+4), r.bySrc[ch.key.src]...)
				}
				grownSrc[ch.key.src] = append(s, ch)
			}
			for k, s := range grownSrc {
				r.bySrc[k] = s
			}
		}
		for i, comps := range compByShard {
			r := rs[i]
			for name, chs := range comps {
				s := append(make([]*channel, 0, len(r.byComp[name])+len(chs)), r.byComp[name]...)
				r.byComp[name] = append(s, chs...)
			}
		}
		return true
	})

	b.log.Append(audit.Record{
		Kind: audit.Reconfiguration, Layer: audit.LayerMessaging, Domain: b.name,
		Agent: by, Note: fmt.Sprintf("bulk channel establishment: %d channels", len(chans)),
	})
	return nil
}

// Disconnect removes a channel on behalf of a principal (AC-checked).
func (b *Bus) Disconnect(by ifc.PrincipalID, src, dst string) error {
	if err := b.acl.Authorize(by, "disconnect", "channel/*/"+src+"/"+dst, b.store.Snapshot()); err != nil {
		return err
	}
	_, rest := splitRemoteAddr(dst)
	key := channelKey{src: src, dst: rest}
	if remote, _ := splitRemoteAddr(dst); remote != "" && remote != b.name {
		key.dst = dst
	}
	if !b.uninstallChannel(key, nil) {
		return fmt.Errorf("%w: %s -> %s", ErrNoChannel, src, dst)
	}
	b.log.Append(audit.Record{
		Kind: audit.Reconfiguration, Layer: audit.LayerMessaging, Domain: b.name,
		Src: ifc.EntityID(b.name + ":" + src), Dst: ifc.EntityID(dst),
		Agent: by, Note: "channel torn down",
	})
	return nil
}

// Channels lists established channels across all shards as "src -> dst",
// sorted.
func (b *Bus) Channels() []string {
	var out []string
	for _, sh := range b.shards {
		for k := range sh.routing.Load().channels {
			out = append(out, k.src+" -> "+k.dst)
		}
	}
	sort.Strings(out)
	return out
}

// publish delivers a message from a source endpoint down every channel.
// The owning shard's routing snapshot is read without locks, so
// publication never contends with registration, connection or
// re-evaluation — on any shard. Same-shard sinks are delivered inline on
// the caller's goroutine; sinks homed on another shard are handed off to
// that shard's dispatcher through its ring (counted as delivered when
// accepted; per-message policy is still enforced, and denials audited, on
// the dispatching shard). If a ring is full, or the bus is closed and no
// dispatcher will drain it, the delivery runs inline instead, so
// publishers never block on a slow shard and never lose messages to a
// stopped one.
func (b *Bus) publish(c *Component, endpoint string, m *msg.Message) (int, error) {
	start := b.pubHist.Start()
	ep, ok := c.Endpoint(endpoint)
	if !ok {
		return 0, fmt.Errorf("%w: %q on %q", ErrNoEndpoint, endpoint, c.Name())
	}
	if ep.Dir != Source {
		return 0, fmt.Errorf("%w: %q is %s", ErrDirection, endpoint, ep.Dir)
	}
	if c.Quarantined() {
		return 0, fmt.Errorf("%w: %q", ErrQuarantined, c.Name())
	}
	if err := ep.Schema.Validate(m); err != nil {
		return 0, err
	}

	// Flow tracing: a message that arrives untraced makes the head
	// sampling decision here (hop 0); one that already carries a trace —
	// relayed off a link ingress or re-published by a local component —
	// keeps it, so a federated path stays one trace.
	if m.Trace.IsZero() {
		if tc, ok := telemetry.StartTrace(); ok {
			m.Trace = tc
			telemetry.RecordSpan(tc, b.name, "publish", c.Name()+"."+endpoint, "", "")
		}
	} else {
		telemetry.RecordSpan(m.Trace, b.name, "relay", c.Name()+"."+endpoint, "", "")
	}

	// Stage attribution: arm the per-message stage clock here (hop 0) when
	// sampled; a message that already carries one — relayed off a link
	// ingress or re-published locally — keeps it, so its edges telescope
	// across the whole path. One atomic load when sampling is off. Only
	// assign on a hit: an unconditional nil store would race with clone
	// reads from a prior publish's still-in-flight cross-shard handoffs.
	if m.Stage == nil {
		if sc := telemetry.ArmStageClock(); sc != nil {
			m.Stage = sc
		}
	}

	outs := b.shards[c.shard].routing.Load().bySrc[c.Name()+"."+endpoint]

	delivered := 0
	for _, ch := range outs {
		if ch.remoteBus != "" {
			if err := b.sendRemote(c, ep, ch.remoteBus, ch.remoteDst, m); err == nil {
				delivered++
			}
			continue
		}
		if ch.dstShard == c.shard {
			if b.deliverLocal(c, ep, ch, m) {
				delivered++
			}
			continue
		}
		if b.shards[ch.dstShard].tryHandoff(b, handoff{srcComp: c, srcEP: ep, ch: ch, m: m}) {
			delivered++
		} else if b.deliverLocal(c, ep, ch, m) {
			delivered++
		}
	}
	b.pubHist.ObserveSince(start)
	return delivered, nil
}

// deliverLocal enforces per-message policy and invokes the sink handler.
// The delivery pipeline (Section 8.2.2): OS-level IFC re-check (contexts
// may have changed since establishment), message-type clearance, attribute
// quenching, then handler invocation. Every outcome is audited (the audit
// records are staged per shard off the delivery path; see
// audit.Log.AppendAsyncLane).
// Runs on the publisher's goroutine for same-shard sinks and on the
// destination shard's dispatcher for cross-shard handoffs.
func (b *Bus) deliverLocal(srcComp *Component, srcEP EndpointSpec, ch *channel, m *msg.Message) bool {
	dstComp, dstEP := ch.dstComp, ch.dstEP
	srcCtx, dstCtx := srcComp.Context(), dstComp.Context()

	if dstComp.Quarantined() {
		b.auditDeniedTrace(m.Trace, srcComp.entity.ID(), dstComp.entity.ID(), srcCtx, dstCtx,
			srcComp.principal, m.DataID, "delivery denied: destination quarantined")
		return false
	}
	// OS-level IFC re-check on every message (cached per context pair).
	if err := ifc.EnforceFlow(srcCtx, dstCtx); err != nil {
		b.auditDeniedTrace(m.Trace, srcComp.entity.ID(), dstComp.entity.ID(), srcCtx, dstCtx,
			srcComp.principal, m.DataID, "delivery denied by IFC: "+err.Error())
		return false
	}
	// Message-layer type tags (Fig. 10): whole message needs clearance.
	clearance := dstComp.Clearance()
	if !srcEP.Schema.Secrecy.Subset(clearance) {
		b.auditDeniedTrace(m.Trace, srcComp.entity.ID(), dstComp.entity.ID(), srcCtx, dstCtx,
			srcComp.principal, m.DataID,
			fmt.Sprintf("delivery denied: type tags %s exceed clearance %s", srcEP.Schema.Secrecy, clearance))
		return false
	}
	// Attribute-level source quenching.
	out, quenched := srcEP.Schema.Quench(m, clearance)

	if !m.Trace.IsZero() { // guard: skip the src/dst formatting for untraced flows
		telemetry.RecordSpan(m.Trace, b.name, "deliver",
			srcComp.Name()+"."+srcEP.Name, dstComp.Name()+"."+dstEP.Name, "")
	}
	// Stage the record in the destination shard's audit lane: the lane is
	// uncontended when this runs on that shard's dispatcher, so parallel
	// deliveries never serialise on audit ingest. A stage-attributed
	// message threads its clock through so the decide→audit edge is marked
	// at commit.
	b.log.AppendAsyncLaneStaged(ch.dstShard, audit.Record{
		Kind: audit.FlowAllowed, Layer: audit.LayerMessaging, Domain: b.name,
		Src: srcComp.entity.ID(), Dst: dstComp.entity.ID(),
		SrcCtx: srcCtx, DstCtx: dstCtx,
		DataID: m.DataID, Agent: srcComp.principal,
		Note: deliveryNote(quenched), TraceID: m.Trace.ID.String(),
	}, m.Stage)
	// Count before invoking the handler: the delivery is decided once
	// policy passes, and anything the handler unblocks (tests, examples
	// waiting on a message) must already see it in ShardStats.
	b.shards[ch.dstShard].delivered.Add(1)
	dstComp.delivered.Add(1)
	out.Stage.MarkDeliver()
	if dstComp.handler != nil {
		dstComp.handler(out, Delivery{
			From:     b.name + ":" + srcComp.Name() + "." + srcEP.Name,
			Endpoint: dstEP.Name,
			Quenched: quenched,
		})
	}
	return true
}

func deliveryNote(quenched []string) string {
	if len(quenched) == 0 {
		return "delivered"
	}
	return "delivered with quenched attributes: " + strings.Join(quenched, ",")
}

// reevaluate re-checks the channels touching the named component and tears
// down those the current contexts no longer permit. The byComp index on
// the component's home shard keeps the cost proportional to the
// component's own channels — channels between unaffected components, on
// this shard or any other, are never visited — and the per-channel
// generation stamp skips even a touched channel when no generation it
// depends on has moved (e.g. a SetContext to the identical context). The
// scan itself is lock-free (it reads the immutable snapshot and atomic
// stamps), so concurrent re-evaluations on different components — even on
// the same shard — only contend when a teardown actually mutates routing.
func (b *Bus) reevaluate(component string) {
	sh := b.shardFor(component)
	sh.reevals.Add(1)
	cur := sh.routing.Load()
	var torn []*channel
	for _, ch := range cur.byComp[component] {
		if ch.remoteBus != "" {
			continue // the remote bus re-checks on ingress
		}
		// Generations before contexts: a concurrent change then at worst
		// leaves a stale stamp, never a stamp vouching for unseen contexts.
		srcCtx, srcGen := ch.srcComp.entity.ContextAndGen()
		dstCtx, dstGen := ch.dstComp.entity.ContextAndGen()
		stamp := chanStamp{srcGen: srcGen, dstGen: dstGen, flowGen: ifc.FlowCacheGeneration()}
		if v := ch.verified.Load(); v != nil && *v == stamp {
			continue // legality already confirmed for these exact generations
		}
		if srcCtx.CanFlowTo(dstCtx) {
			ch.verified.Store(&stamp)
		} else {
			torn = append(torn, ch)
		}
	}
	for _, ch := range torn {
		// Identity-checked removal: never tear down a replacement channel
		// connected after this scan condemned the old one.
		if !b.uninstallChannel(ch.key, ch) {
			continue
		}
		b.log.Append(audit.Record{
			Kind: audit.Reconfiguration, Layer: audit.LayerMessaging, Domain: b.name,
			Src: ifc.EntityID(b.name + ":" + ch.key.src), Dst: ifc.EntityID(ch.key.dst),
			Note: "channel torn down: context change made flow illegal",
		})
	}
}

// auditDenied appends a denial record (batched off the enforcement path)
// for a flow that carried no trace context.
func (b *Bus) auditDenied(src, dst ifc.EntityID, srcCtx, dstCtx ifc.SecurityContext,
	agent ifc.PrincipalID, dataID, note string) {
	b.auditDeniedTrace(telemetry.TraceContext{}, src, dst, srcCtx, dstCtx, agent, dataID, note)
}

// auditDeniedTrace appends a denial record, recording a "deny" span first.
// Denials are always traced (a trace ID is minted when the flow carried
// none — always-sample-on-error), and the span's ID is stamped into the
// audit record so the compliance evidence and the performance trace
// correlate.
func (b *Bus) auditDeniedTrace(tc telemetry.TraceContext, src, dst ifc.EntityID,
	srcCtx, dstCtx ifc.SecurityContext, agent ifc.PrincipalID, dataID, note string) {
	id := telemetry.RecordSpan(tc, b.name, "deny", string(src), string(dst), note)
	b.log.AppendAsync(audit.Record{
		Kind: audit.FlowDenied, Layer: audit.LayerMessaging, Domain: b.name,
		Src: src, Dst: dst, SrcCtx: srcCtx, DstCtx: dstCtx,
		DataID: dataID, Agent: agent, Note: note, TraceID: id.String(),
	})
}
