// Lane-load skew: the load-visibility half of stage attribution. The
// parallel plane places components, CEP patterns, policy buckets and audit
// staging on lanes by one shared hash (internal/lanehash), so a hot
// component drags its whole pipeline slice onto one lane. SkewReport rolls
// the per-lane counters each layer already maintains into an operator-
// facing imbalance view: per-lane loads, max/mean, a Gini-style imbalance
// gauge in [0,1), and the hottest components by delivery count. It is the
// measurement prerequisite for load-aware rebalancing (ROADMAP item 2):
// rebalancing without this report would be flying blind.
package telemetry

import "sort"

// A LaneLoad aggregates one lane's work across the pipeline tiers. The
// counts are lifetime totals (monotone), so operators diff scrapes to get
// rates; Load() weighs the tiers equally, which is crude but stable.
type LaneLoad struct {
	Lane int `json:"lane"`
	// Deliveries is the bus shard's delivered count (inline + dispatched).
	Deliveries uint64 `json:"deliveries"`
	// Handoffs is the count of cross-shard deliveries accepted by this
	// lane's dispatch ring.
	Handoffs uint64 `json:"handoffs"`
	// CEPEvals is the number of events evaluated on this CEP lane.
	CEPEvals uint64 `json:"cep_evals"`
	// RuleFirings is the number of policy rules fired from this lane's
	// trigger buckets.
	RuleFirings uint64 `json:"rule_firings"`
	// StagedRecords / StagedBytes are the audit records (and approximate
	// bytes) staged through this lane's ingest buffer.
	StagedRecords uint64 `json:"staged_records"`
	StagedBytes   uint64 `json:"staged_bytes"`
}

// Load is the lane's scalar load used for the skew statistics.
func (l LaneLoad) Load() uint64 {
	return l.Deliveries + l.Handoffs + l.CEPEvals + l.RuleFirings + l.StagedRecords
}

// A HotComponent is one of the busiest components by delivery count,
// with the lane the placement hash homes it on.
type HotComponent struct {
	Name       string `json:"name"`
	Lane       int    `json:"lane"`
	Deliveries uint64 `json:"deliveries"`
}

// A SkewReport summarises lane-load imbalance across the parallel plane.
type SkewReport struct {
	Lanes []LaneLoad `json:"lanes"`
	// MaxLoad and MeanLoad are over LaneLoad.Load().
	MaxLoad  uint64  `json:"max_load"`
	MeanLoad float64 `json:"mean_load"`
	// Imbalance is a Gini-style gauge in [0,1): 0 when every lane carries
	// equal load, approaching 1 when one lane carries everything. A
	// single-lane domain is 0 by construction.
	Imbalance float64 `json:"imbalance"`
	// Hottest lists the top components by delivery count, hottest first.
	Hottest []HotComponent `json:"hottest,omitempty"`
}

// TotalLoad sums the lanes' scalar loads.
func (r SkewReport) TotalLoad() uint64 {
	var t uint64
	for _, l := range r.Lanes {
		t += l.Load()
	}
	return t
}

// ComputeSkew builds a SkewReport from per-lane loads and an optional
// hottest-component list (sorted here, hottest first).
func ComputeSkew(lanes []LaneLoad, hottest []HotComponent) SkewReport {
	r := SkewReport{Lanes: lanes, Hottest: hottest}
	sort.Slice(r.Hottest, func(i, j int) bool {
		if r.Hottest[i].Deliveries != r.Hottest[j].Deliveries {
			return r.Hottest[i].Deliveries > r.Hottest[j].Deliveries
		}
		return r.Hottest[i].Name < r.Hottest[j].Name
	})
	n := len(lanes)
	if n == 0 {
		return r
	}
	loads := make([]float64, n)
	var total float64
	for i, l := range lanes {
		v := float64(l.Load())
		loads[i] = v
		total += v
		if l.Load() > r.MaxLoad {
			r.MaxLoad = l.Load()
		}
	}
	r.MeanLoad = total / float64(n)
	if total == 0 || n == 1 {
		return r
	}
	// Gini coefficient over the sorted loads: G = (2*sum(i*x_i))/(n*total)
	// - (n+1)/n with 1-based i over ascending x.
	sort.Float64s(loads)
	var weighted float64
	for i, v := range loads {
		weighted += float64(i+1) * v
	}
	r.Imbalance = 2*weighted/(float64(n)*total) - float64(n+1)/float64(n)
	if r.Imbalance < 0 {
		r.Imbalance = 0
	}
	return r
}
