package telemetry

import (
	"fmt"
	"io"
	"strconv"
)

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4). Counters and gauges emit one sample per series.
// Histograms emit the native histogram form — cumulative le-labeled
// _bucket samples (occupied buckets only, plus +Inf) with _sum and _count
// — so stage latencies aggregate correctly across nodes; for backward
// compatibility with dashboards built on the earlier summary encoding,
// each histogram family is followed by a <name>_quantile gauge family
// carrying the p50/p90/p99 upper-edge estimates.
func (r *Registry) WritePrometheus(w io.Writer) error {
	snap := r.Snapshot()
	// Series of one name are contiguous in the sorted snapshot; walk the
	// groups so each family's TYPE header is emitted exactly once.
	for i := 0; i < len(snap); {
		j := i
		for j < len(snap) && snap[j].Name == snap[i].Name {
			j++
		}
		group := snap[i:j]
		i = j
		if group[0].Hist != nil {
			if err := writeHistogramFamily(w, group); err != nil {
				return err
			}
			continue
		}
		typ := "gauge"
		if group[0].Kind == KindCounter {
			typ = "counter"
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", group[0].Name, typ); err != nil {
			return err
		}
		for _, m := range group {
			if _, err := fmt.Fprintf(w, "%s%s %s\n",
				m.Name, braced(m.Labels), formatValue(m.Value)); err != nil {
				return err
			}
		}
	}
	return nil
}

// writeHistogramFamily emits one histogram name's series as a native
// text-format histogram family, then the companion _quantile gauge family.
func writeHistogramFamily(w io.Writer, group []Metric) error {
	name := group[0].Name
	if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", name); err != nil {
		return err
	}
	for _, m := range group {
		h := m.Hist
		if h == nil {
			continue
		}
		for _, b := range h.Buckets {
			if _, err := fmt.Fprintf(w, "%s_bucket{%s} %d\n",
				name, withLabel(m.Labels, "le", strconv.FormatInt(b.LE, 10)), b.Count); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{%s} %d\n",
			name, withLabel(m.Labels, "le", "+Inf"), h.Count); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum%s %d\n", name, braced(m.Labels), h.Sum); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_count%s %d\n", name, braced(m.Labels), h.Count); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "# TYPE %s_quantile gauge\n", name); err != nil {
		return err
	}
	for _, m := range group {
		h := m.Hist
		if h == nil {
			continue
		}
		for _, q := range [...]struct {
			q string
			v int64
		}{{"0.5", h.P50}, {"0.9", h.P90}, {"0.99", h.P99}} {
			if _, err := fmt.Fprintf(w, "%s_quantile{%s} %d\n",
				name, withLabel(m.Labels, "quantile", q.q), q.v); err != nil {
				return err
			}
		}
	}
	return nil
}

// withLabel appends one key="value" pair to a canonical label string.
func withLabel(labels, key, value string) string {
	pair := key + `="` + value + `"`
	if labels == "" {
		return pair
	}
	return labels + "," + pair
}

func braced(labels string) string {
	if labels == "" {
		return ""
	}
	return "{" + labels + "}"
}

// formatValue renders integers without an exponent (most series are
// counts) and falls back to shortest-float for the rest.
func formatValue(v float64) string {
	if v == float64(int64(v)) {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
