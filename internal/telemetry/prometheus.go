package telemetry

import (
	"fmt"
	"io"
	"strconv"
)

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4). Counters and gauges emit one sample per series;
// histograms emit the summary form — quantile samples plus _sum and
// _count — because shipping every log-linear bucket would bloat the scrape
// without adding precision a dashboard can use.
func (r *Registry) WritePrometheus(w io.Writer) error {
	snap := r.Snapshot()
	var lastName string
	for _, m := range snap {
		if m.Name != lastName {
			typ := "gauge"
			switch m.Kind {
			case KindCounter:
				typ = "counter"
			case KindHistogram:
				typ = "summary"
			}
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", m.Name, typ); err != nil {
				return err
			}
			lastName = m.Name
		}
		if m.Hist != nil {
			if err := writeSummary(w, m); err != nil {
				return err
			}
			continue
		}
		if _, err := fmt.Fprintf(w, "%s%s %s\n",
			m.Name, braced(m.Labels), formatValue(m.Value)); err != nil {
			return err
		}
	}
	return nil
}

func writeSummary(w io.Writer, m Metric) error {
	h := m.Hist
	for _, q := range [...]struct {
		q string
		v int64
	}{{"0.5", h.P50}, {"0.9", h.P90}, {"0.99", h.P99}} {
		labels := m.Labels
		if labels != "" {
			labels += ","
		}
		labels += `quantile="` + q.q + `"`
		if _, err := fmt.Fprintf(w, "%s{%s} %d\n", m.Name, labels, q.v); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %d\n", m.Name, braced(m.Labels), h.Sum); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", m.Name, braced(m.Labels), h.Count)
	return err
}

func braced(labels string) string {
	if labels == "" {
		return ""
	}
	return "{" + labels + "}"
}

// formatValue renders integers without an exponent (most series are
// counts) and falls back to shortest-float for the rest.
func formatValue(v float64) string {
	if v == float64(int64(v)) {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
