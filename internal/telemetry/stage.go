// Stage attribution: per-message stage clocks that attribute end-to-end
// latency to the pipeline's edges. A StageClock is armed at publish (head
// sampled, like flow traces) and carried on the message next to the trace
// context; each hop point swaps "now" into the clock and records the delta
// since the previous hop into that edge's histogram. Because every edge
// observation is a telescoping difference off one shared clock, the edge
// sums add up exactly to the last hop minus the arm time — a property the
// tests pin — and the dark path (sampling off, the default) costs a single
// atomic load per publish.
//
// The four local edges:
//
//	stage_publish_deliver_ns   publish        → bus delivery (sink handler entry)
//	stage_deliver_detect_ns    bus delivery   → CEP detection fired
//	stage_detect_decide_ns     CEP detection  → policy decision evaluated
//	stage_decide_audit_ns      policy decide  → audit record committed (async)
//
// plus one federated edge per peer, stage_link_hop_ns{bus,peer}, observed
// at link ingress from the egress timestamp the v5 frame trailer carries
// (cross-node wall clocks, so subject to inter-host clock skew — compare
// trends, not absolutes). The decide→audit edge is observed on the audit
// drain goroutine when the staged record commits; commit can race ahead of
// a later mark on a busy pipeline, in which case the clamped-at-zero
// observation still keeps the telescoping sum exact.
package telemetry

import (
	"sync/atomic"
	"time"
)

// Stage-clock head sampling, the same shape as flow-trace sampling: every
// n-th publish arms a clock; 0 (the default) disables arming entirely.
var (
	stageEvery atomic.Uint64
	stageTick  atomic.Uint64
)

// SetStageSampling arms stage attribution on every n-th publish; n <= 0
// disables it (the default — a disabled publish costs one atomic load).
func SetStageSampling(n int) {
	if n <= 0 {
		stageEvery.Store(0)
		return
	}
	stageEvery.Store(uint64(n))
}

// StageSampling reports the current stage-clock sampling rate (0 = off).
func StageSampling() int { return int(stageEvery.Load()) }

// The per-edge histograms. Registered once in the default registry;
// sbus/cep/policy/audit mark into them through StageClock methods.
var (
	stagePublishDeliver = NewHistogram("stage_publish_deliver_ns")
	stageDeliverDetect  = NewHistogram("stage_deliver_detect_ns")
	stageDetectDecide   = NewHistogram("stage_detect_decide_ns")
	stageDecideAudit    = NewHistogram("stage_decide_audit_ns")
)

// StageEdges lists the local edge metric names in pipeline order (the
// per-peer stage_link_hop_ns series are registered per link).
func StageEdges() []string {
	return []string{
		"stage_publish_deliver_ns",
		"stage_deliver_detect_ns",
		"stage_detect_decide_ns",
		"stage_decide_audit_ns",
	}
}

// A StageClock rides one sampled message through the pipeline. All methods
// are nil-receiver safe, so call sites mark unconditionally on the pointer
// they carry. The clock is shared by reference across message clones
// (Quench, relay republish) and across the async audit hand-off, hence the
// atomic last-mark slot.
type StageClock struct {
	armNs int64
	last  atomic.Int64
}

// ArmStageClock returns a clock for this publish, or nil when stage
// sampling is off or this publish falls outside the 1-in-N sample. The
// off path is one atomic load.
func ArmStageClock() *StageClock {
	n := stageEvery.Load()
	if n == 0 {
		return nil
	}
	if n > 1 && stageTick.Add(1)%n != 0 {
		return nil
	}
	return ResumeStageClock(time.Now().UnixNano())
}

// ResumeStageClock builds an armed clock starting at nowNs. Link ingress
// uses it to continue attribution on the receiving node: the sampling
// decision was made at the original publish, so resume bypasses it.
func ResumeStageClock(nowNs int64) *StageClock {
	c := &StageClock{armNs: nowNs}
	c.last.Store(nowNs)
	return c
}

// mark swaps now into the clock and records the delta since the previous
// hop point into h.
func (c *StageClock) mark(h *Histogram) {
	if c == nil {
		return
	}
	now := time.Now().UnixNano()
	prev := c.last.Swap(now)
	h.Observe(now - prev)
}

// MarkDeliver records publish→deliver, at sink handler dispatch.
func (c *StageClock) MarkDeliver() { c.mark(stagePublishDeliver) }

// MarkDetect records deliver→cep_detect, when a pattern fires.
func (c *StageClock) MarkDetect() { c.mark(stageDeliverDetect) }

// MarkDecide records detect→policy_decision, after the trigger bucket is
// evaluated.
func (c *StageClock) MarkDecide() { c.mark(stageDetectDecide) }

// MarkAudit records decision→audit_commit, when the staged record joins
// the hash chain on the drain goroutine.
func (c *StageClock) MarkAudit() { c.mark(stageDecideAudit) }

// ArmNs returns the clock's arm time (UnixNano); 0 on a nil clock.
func (c *StageClock) ArmNs() int64 {
	if c == nil {
		return 0
	}
	return c.armNs
}

// LastNs returns the most recent hop-point time (UnixNano); 0 on a nil
// clock. For a quiesced pipeline, LastNs-ArmNs equals the sum of every
// edge observation this clock produced.
func (c *StageClock) LastNs() int64 {
	if c == nil {
		return 0
	}
	return c.last.Load()
}
