package telemetry

import (
	"encoding/hex"
	"fmt"
	"math/rand/v2"
	"sync"
	"sync/atomic"
	"time"
)

// Flow tracing: a compact trace context — 128-bit trace ID plus a hop
// counter — is stamped on a message at publish (head-based sampling),
// carried in the message metadata and across link protocol v4 frames, and
// recorded as timestamped span events at each bus delivery, link
// egress/ingress and relay forward. Only the head node consults the
// sampling rate: once a message carries a trace, every downstream node
// records spans for it, so a federated path yields one trace whose hops
// count up monotonically across nodes. Error paths always record (with a
// minted trace ID when the message carried none), so denials and
// degradations are visible even at low sampling rates.

// A TraceID is a 128-bit flow identifier, rendered as 32 hex digits.
type TraceID struct {
	Hi, Lo uint64
}

// IsZero reports whether the ID is unset.
func (t TraceID) IsZero() bool { return t.Hi == 0 && t.Lo == 0 }

// String renders the ID as 32 lowercase hex digits.
func (t TraceID) String() string {
	if t.IsZero() {
		return ""
	}
	return fmt.Sprintf("%016x%016x", t.Hi, t.Lo)
}

// MarshalJSON renders the ID as its hex string.
func (t TraceID) MarshalJSON() ([]byte, error) {
	return []byte(`"` + t.String() + `"`), nil
}

// ParseTraceID parses the 32-hex-digit form (as found in audit records).
func ParseTraceID(s string) (TraceID, bool) {
	if len(s) != 32 {
		return TraceID{}, false
	}
	b, err := hex.DecodeString(s)
	if err != nil {
		return TraceID{}, false
	}
	var t TraceID
	for i := 0; i < 8; i++ {
		t.Hi = t.Hi<<8 | uint64(b[i])
		t.Lo = t.Lo<<8 | uint64(b[i+8])
	}
	return t, !t.IsZero()
}

// A TraceContext travels with a message: the trace ID and the number of
// bus hops the message has taken so far (0 at the publishing node,
// incremented at each link ingress).
type TraceContext struct {
	ID  TraceID
	Hop uint8
}

// IsZero reports whether the context carries no trace.
func (c TraceContext) IsZero() bool { return c.ID.IsZero() }

// sampleEvery is the head-sampling rate: 0 disables head sampling, N
// samples one publish in N. sampleTick is the global publish counter the
// rate divides.
var (
	sampleEvery atomic.Uint64
	sampleTick  atomic.Uint64
)

// SetTraceSampling sets the head-based sampling rate: every n-th publish
// starts a trace; n <= 0 disables head sampling (error spans still
// record).
func SetTraceSampling(n int) {
	if n < 0 {
		n = 0
	}
	sampleEvery.Store(uint64(n))
}

// TraceSampling reports the current head-sampling rate.
func TraceSampling() int { return int(sampleEvery.Load()) }

// newTraceID mints a random non-zero ID.
func newTraceID() TraceID {
	for {
		t := TraceID{Hi: rand.Uint64(), Lo: rand.Uint64()}
		if !t.IsZero() {
			return t
		}
	}
}

// StartTrace makes the head sampling decision for one publish: one atomic
// load when sampling is disabled. When sampled it returns a fresh context
// at hop 0.
func StartTrace() (TraceContext, bool) {
	n := sampleEvery.Load()
	if n == 0 {
		return TraceContext{}, false
	}
	if sampleTick.Add(1)%n != 0 {
		return TraceContext{}, false
	}
	return TraceContext{ID: newTraceID()}, true
}

// A Span is one timestamped event on a trace: a publish, bus delivery,
// link egress/ingress, relay forward, or an error.
type Span struct {
	Trace TraceID   `json:"trace"`
	Time  time.Time `json:"time"`
	Node  string    `json:"node"`
	Kind  string    `json:"kind"`
	Src   string    `json:"src,omitempty"`
	Dst   string    `json:"dst,omitempty"`
	Hop   uint8     `json:"hop"`
	Err   string    `json:"err,omitempty"`
}

// spanRingCap bounds the in-memory span buffer; the ring overwrites the
// oldest spans, and spansEvicted counts what scrolled away so /traces can
// report truncation honestly.
const spanRingCap = 4096

var (
	spanMu      sync.Mutex
	spanRing    [spanRingCap]Span
	spanNext    int
	spanCount   int
	spanEvicted uint64
)

// RecordSpan appends a span event for ctx and returns the trace ID it
// recorded under. A zero context records nothing (and returns the zero ID)
// — unless errNote is non-empty, in which case a trace ID is minted so
// errors and degradations are always visible (always-sample-on-error);
// callers stamp the returned ID into the matching audit record. The
// no-trace, no-error case costs no atomics at all.
func RecordSpan(ctx TraceContext, node, kind, src, dst, errNote string) TraceID {
	if ctx.ID.IsZero() {
		if errNote == "" {
			return TraceID{}
		}
		ctx.ID = newTraceID()
	}
	s := Span{
		Trace: ctx.ID, Time: time.Now(), Node: node, Kind: kind,
		Src: src, Dst: dst, Hop: ctx.Hop, Err: errNote,
	}
	spanMu.Lock()
	if spanCount == spanRingCap {
		spanEvicted++
	} else {
		spanCount++
	}
	spanRing[spanNext] = s
	spanNext = (spanNext + 1) % spanRingCap
	spanMu.Unlock()
	return ctx.ID
}

// Spans copies the buffered spans, oldest first.
func Spans() []Span {
	spanMu.Lock()
	defer spanMu.Unlock()
	out := make([]Span, 0, spanCount)
	start := spanNext - spanCount
	if start < 0 {
		start += spanRingCap
	}
	for i := 0; i < spanCount; i++ {
		out = append(out, spanRing[(start+i)%spanRingCap])
	}
	return out
}

// SpansEvicted reports how many spans the bounded buffer has overwritten.
func SpansEvicted() uint64 {
	spanMu.Lock()
	defer spanMu.Unlock()
	return spanEvicted
}

// ResetSpans clears the span buffer (tests; lciotd never calls it).
func ResetSpans() {
	spanMu.Lock()
	spanNext, spanCount, spanEvicted = 0, 0, 0
	spanMu.Unlock()
}

// A Trace groups the buffered spans of one trace ID, ordered as recorded.
type Trace struct {
	ID    TraceID `json:"trace"`
	Spans []Span  `json:"spans"`
}

// Traces groups the span buffer by trace ID, ordered by each trace's first
// buffered span (what /traces serves).
func Traces() []Trace {
	spans := Spans()
	idx := make(map[TraceID]int, len(spans))
	out := make([]Trace, 0, 16)
	for _, s := range spans {
		i, ok := idx[s.Trace]
		if !ok {
			i = len(out)
			idx[s.Trace] = i
			out = append(out, Trace{ID: s.Trace})
		}
		out[i].Spans = append(out[i].Spans, s)
	}
	return out
}
