package telemetry

import (
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

// armed enables the recording gate for one test and restores the previous
// state afterwards.
func armed(t *testing.T) {
	t.Helper()
	prev := Enabled()
	Enable()
	t.Cleanup(func() {
		if !prev {
			Disable()
		}
	})
}

func TestDisabledInstrumentsRecordNothing(t *testing.T) {
	prev := Enabled()
	Disable()
	t.Cleanup(func() {
		if prev {
			Enable()
		}
	})
	r := NewRegistry()
	c := r.Counter("t_c")
	g := r.Gauge("t_g")
	h := r.Histogram("t_h")
	c.Add(5)
	g.Set(7)
	h.Observe(100)
	h.ObserveSince(h.Start()) // Start returns zero time while disabled
	if c.Value() != 0 || g.Value() != 0 || h.stats().Count != 0 {
		t.Fatalf("disabled instruments recorded: c=%d g=%d hist=%d",
			c.Value(), g.Value(), h.stats().Count)
	}
}

// TestConcurrentRecordVsSnapshot hammers every instrument kind from many
// goroutines while snapshots are taken concurrently; run under -race this
// proves the record and read paths are safe together, and the final counter
// total must be exact (no lost striped increments).
func TestConcurrentRecordVsSnapshot(t *testing.T) {
	armed(t)
	r := NewRegistry()
	c := r.Counter("t_conc_c", "side", "a")
	g := r.Gauge("t_conc_g")
	h := r.Histogram("t_conc_h")
	r.GaugeFunc("t_conc_fn", func() float64 { return float64(g.Value()) })

	const workers = 8
	const perWorker = 10000
	var writers, reader sync.WaitGroup
	stop := make(chan struct{})
	reader.Add(1)
	go func() { // concurrent reader
		defer reader.Done()
		for {
			select {
			case <-stop:
				return
			default:
				r.Snapshot()
			}
		}
	}()
	for i := 0; i < workers; i++ {
		writers.Add(1)
		go func() {
			defer writers.Done()
			for j := 0; j < perWorker; j++ {
				c.Add(1)
				g.Add(1)
				h.Observe(int64(j%1000) + 1)
			}
		}()
	}
	writers.Wait()
	close(stop)
	reader.Wait()

	if v := c.Value(); v != workers*perWorker {
		t.Fatalf("counter = %d, want %d", v, workers*perWorker)
	}
	if v := g.Value(); v != workers*perWorker {
		t.Fatalf("gauge = %d, want %d", v, workers*perWorker)
	}
	st := h.stats()
	if st.Count != workers*perWorker {
		t.Fatalf("histogram count = %d, want %d", st.Count, workers*perWorker)
	}
	snap := r.Snapshot()
	if m, ok := Find(snap, "t_conc_fn"); !ok || m.Value != float64(workers*perWorker) {
		t.Fatalf("func gauge = %+v (found %v)", m, ok)
	}
}

func TestHistogramStats(t *testing.T) {
	armed(t)
	r := NewRegistry()
	h := r.Histogram("t_hist")
	var sum uint64
	for v := int64(1); v <= 1000; v++ {
		h.Observe(v)
		sum += uint64(v)
	}
	st := h.stats()
	if st.Count != 1000 || st.Sum != sum {
		t.Fatalf("count/sum = %d/%d, want 1000/%d", st.Count, st.Sum, sum)
	}
	// Quantiles report the upper bucket edge with ≤25% relative error on a
	// log-linear layout; allow a generous band around the true values.
	check := func(name string, got, truth int64) {
		if got < truth || got > truth+truth/2 {
			t.Errorf("%s = %d, want within [%d, %d]", name, got, truth, truth+truth/2)
		}
	}
	check("p50", st.P50, 500)
	check("p90", st.P90, 900)
	check("p99", st.P99, 990)
	if st.Max < 1000 || st.Max > 1500 {
		t.Errorf("max = %d, want ~1000", st.Max)
	}
}

// TestHistogramSampledTiming: a histogram with SampleEvery(3) opens a
// timing window on exactly one call in eight and counts only those.
func TestHistogramSampledTiming(t *testing.T) {
	armed(t)
	r := NewRegistry()
	h := r.Histogram("t_sampled").SampleEvery(3)
	live := 0
	for i := 0; i < 64; i++ {
		s := h.Start()
		if !s.IsZero() {
			live++
		}
		h.ObserveSince(s)
	}
	if live != 8 {
		t.Fatalf("live windows = %d of 64 at 1-in-8, want 8", live)
	}
	if c := h.stats().Count; c != 8 {
		t.Fatalf("sampled count = %d, want 8", c)
	}
}

// TestHistogramBucketMonotone checks the log-linear index and bound
// functions agree: every value lands in a bucket whose bounds contain it.
func TestHistogramBucketMonotone(t *testing.T) {
	for _, v := range []int64{0, 1, 2, 3, 4, 5, 7, 8, 15, 16, 100, 1023, 1024, 1 << 20, 1 << 41} {
		i := histIdx(v)
		lo, hi := histBound(i), histBound(i+1)
		if v < lo || v >= hi {
			t.Errorf("value %d in bucket %d with bounds [%d, %d)", v, i, lo, hi)
		}
	}
}

func TestRegistryReuseAndReplace(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("t_same", "k", "v")
	c2 := r.Counter("t_same", "k", "v")
	if c1 != c2 {
		t.Fatal("same identity should return the same counter")
	}
	// A func-backed registration replaces, and the latest fn owns the series.
	r.GaugeFunc("t_fn", func() float64 { return 1 })
	r.GaugeFunc("t_fn", func() float64 { return 2 })
	if m, ok := Find(r.Snapshot(), "t_fn"); !ok || m.Value != 2 {
		t.Fatalf("replaced func gauge = %+v (found %v)", m, ok)
	}
}

func TestMetricLabel(t *testing.T) {
	r := NewRegistry()
	r.Counter("t_lbl", "bus", "home", "peer", `we"ird\`)
	snap := r.Snapshot()
	m, ok := Find(snap, "t_lbl", "bus", "home", "peer", `we"ird\`)
	if !ok {
		t.Fatalf("series not found in %+v", snap)
	}
	if got := m.Label("bus"); got != "home" {
		t.Errorf("Label(bus) = %q", got)
	}
	if got := m.Label("peer"); got != `we"ird\` {
		t.Errorf("Label(peer) = %q", got)
	}
	if got := m.Label("absent"); got != "" {
		t.Errorf("Label(absent) = %q", got)
	}
}

func TestWritePrometheus(t *testing.T) {
	armed(t)
	r := NewRegistry()
	r.Counter("t_prom_total", "bus", "b").Add(3)
	r.Gauge("t_prom_depth").Set(9)
	h := r.Histogram("t_prom_ns")
	h.Observe(100)
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE t_prom_total counter",
		`t_prom_total{bus="b"} 3`,
		"# TYPE t_prom_depth gauge",
		"t_prom_depth 9",
		"# TYPE t_prom_ns histogram",
		`t_prom_ns_bucket{le="+Inf"} 1`,
		"t_prom_ns_sum 100",
		"t_prom_ns_count 1",
		"# TYPE t_prom_ns_quantile gauge",
		`t_prom_ns_quantile{quantile="0.5"}`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("scrape missing %q in:\n%s", want, out)
		}
	}
}

// TestTraceSamplingRate: at a rate of one-in-ten, any window of 100
// consecutive publishes yields exactly 10 sampled traces, regardless of
// where the global tick counter started.
func TestTraceSamplingRate(t *testing.T) {
	SetTraceSampling(10)
	t.Cleanup(func() { SetTraceSampling(0) })
	sampled := 0
	for i := 0; i < 100; i++ {
		if tc, ok := StartTrace(); ok {
			if tc.ID.IsZero() || tc.Hop != 0 {
				t.Fatalf("sampled context = %+v", tc)
			}
			sampled++
		}
	}
	if sampled != 10 {
		t.Fatalf("sampled %d of 100 at rate 10, want exactly 10", sampled)
	}
	SetTraceSampling(0)
	for i := 0; i < 100; i++ {
		if _, ok := StartTrace(); ok {
			t.Fatal("sampled while head sampling disabled")
		}
	}
}

func TestSpanRingBounded(t *testing.T) {
	ResetSpans()
	t.Cleanup(ResetSpans)
	ctx := TraceContext{ID: TraceID{Hi: 1, Lo: 2}}
	const extra = 100
	for i := 0; i < spanRingCap+extra; i++ {
		RecordSpan(ctx, "node", "publish", "", "", "")
	}
	if n := len(Spans()); n != spanRingCap {
		t.Fatalf("buffered spans = %d, want cap %d", n, spanRingCap)
	}
	if ev := SpansEvicted(); ev != extra {
		t.Fatalf("evicted = %d, want %d", ev, extra)
	}
}

func TestRecordSpanErrorMintsTrace(t *testing.T) {
	ResetSpans()
	t.Cleanup(ResetSpans)
	// A zero context with no error records nothing and returns the zero ID.
	if id := RecordSpan(TraceContext{}, "n", "deliver", "", "", ""); !id.IsZero() {
		t.Fatalf("untraced no-error span minted ID %s", id)
	}
	if len(Spans()) != 0 {
		t.Fatal("untraced no-error span was buffered")
	}
	// A zero context WITH an error mints an ID (always-sample-on-error).
	id := RecordSpan(TraceContext{}, "n", "deny", "a", "b", "denied by IFC")
	if id.IsZero() {
		t.Fatal("error span should mint a trace ID")
	}
	spans := Spans()
	if len(spans) != 1 || spans[0].Trace != id || spans[0].Err != "denied by IFC" {
		t.Fatalf("error span = %+v", spans)
	}
}

// TestSpanRingEvictionVsReadRace wraps the ring repeatedly from several
// writers while readers drain Spans/Traces and a resetter clears it —
// run under -race this pins the eviction path safe against concurrent
// reads (the /traces endpoint scraping mid-incident). Every observed
// snapshot must also be internally consistent: never larger than the
// ring and grouped traces never out of span order.
func TestSpanRingEvictionVsReadRace(t *testing.T) {
	ResetSpans()
	t.Cleanup(ResetSpans)
	const writers = 4
	stop := make(chan struct{})
	var wg sync.WaitGroup
	var recorded atomic.Uint64
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ctx := TraceContext{ID: TraceID{Hi: uint64(w + 1), Lo: 1}}
			for {
				select {
				case <-stop:
					return
				default:
				}
				RecordSpan(ctx, "node", "publish", "src", "dst", "")
				recorded.Add(1)
			}
		}(w)
	}
	for i := 0; i < 200 || recorded.Load() < 2*spanRingCap; i++ {
		if spans := Spans(); len(spans) > spanRingCap {
			t.Errorf("snapshot of %d spans exceeds ring cap %d", len(spans), spanRingCap)
		}
		total := 0
		for _, tr := range Traces() {
			total += len(tr.Spans)
		}
		if total > spanRingCap {
			t.Errorf("traces carry %d spans, ring cap is %d", total, spanRingCap)
		}
		if i%50 == 49 {
			ResetSpans()
		}
	}
	close(stop)
	wg.Wait()
	if recorded.Load() < spanRingCap {
		t.Fatalf("writers recorded only %d spans; the ring (cap %d) was never stressed",
			recorded.Load(), spanRingCap)
	}
}

func TestParseTraceIDRoundTrip(t *testing.T) {
	id := TraceID{Hi: 0xdeadbeef01020304, Lo: 0x05060708090a0b0c}
	got, ok := ParseTraceID(id.String())
	if !ok || got != id {
		t.Fatalf("round trip = %v, %v", got, ok)
	}
	for _, bad := range []string{"", "xyz", strings.Repeat("0", 32), strings.Repeat("g", 32)} {
		if _, ok := ParseTraceID(bad); ok {
			t.Errorf("ParseTraceID(%q) accepted", bad)
		}
	}
}

func TestTracesGroupsByID(t *testing.T) {
	ResetSpans()
	t.Cleanup(ResetSpans)
	a := TraceContext{ID: TraceID{Lo: 1}}
	b := TraceContext{ID: TraceID{Lo: 2}}
	RecordSpan(a, "n1", "publish", "", "", "")
	RecordSpan(b, "n1", "publish", "", "", "")
	RecordSpan(a, "n2", "deliver", "", "", "")
	traces := Traces()
	if len(traces) != 2 {
		t.Fatalf("traces = %d, want 2", len(traces))
	}
	if traces[0].ID != a.ID || len(traces[0].Spans) != 2 {
		t.Fatalf("first trace = %+v", traces[0])
	}
	if traces[1].ID != b.ID || len(traces[1].Spans) != 1 {
		t.Fatalf("second trace = %+v", traces[1])
	}
}
