// Package telemetry is the dependency-free observability core: sharded
// atomic counters, gauges and log-linear latency histograms behind a
// registry with stable names and labels, plus the flow-tracing substrate
// (trace.go). It follows the same discipline as internal/fault: a disabled
// instrument costs one atomic load on the hot path, so the whole layer can
// stay compiled into the data path and be armed only where an operator
// wants it (lciotd arms it at boot; benchmarks leave it dark).
//
// Two kinds of instruments exist:
//
//   - Recording instruments (Counter, Gauge, Histogram) are written on the
//     hot path. Every record operation first consults the global enable
//     gate; when telemetry is disabled the write is a single atomic load
//     and a branch.
//   - Func-backed instruments (CounterFunc, GaugeFunc) read state the
//     subsystem already maintains — shard delivery counters, link queue
//     depths, WAL segment counts — at snapshot time only. They cost the
//     hot path nothing at all, and they report live values even while the
//     recording gate is off.
//
// Snapshot() serves programmatic reads (lciotd's status line, tests,
// benchharness baselines); WritePrometheus (prometheus.go) serves the
// /metrics endpoint. Both are built from the same registry, so the log
// line and the scrape can never disagree.
package telemetry

import (
	"math/bits"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
	"unsafe"
)

// gate is the global enable switch consulted by every recording
// instrument. Default off: a process that never calls Enable pays one
// atomic load per instrumented operation and nothing else.
var gate atomic.Bool

// Enable arms the recording instruments (counters, gauges, histograms).
func Enable() { gate.Store(true) }

// Disable disarms the recording instruments. Func-backed instruments keep
// reporting (they read state the subsystems maintain anyway).
func Disable() { gate.Store(false) }

// Enabled reports whether recording instruments are armed.
func Enabled() bool { return gate.Load() }

// --- counters ---

// counterStripes spreads a counter over cache-line-padded cells so
// concurrent writers (shard dispatchers, link goroutines) do not serialise
// on one line. Must be a power of two.
const counterStripes = 8

type counterCell struct {
	v atomic.Uint64
	_ [56]byte // pad to a cache line
}

// stripeIdx picks a stripe from the address of a stack local: goroutines
// live on distinct stacks, so concurrent writers spread across cells
// without any per-goroutine state or runtime hooks.
func stripeIdx() uint {
	var probe byte
	return uint(uintptr(unsafe.Pointer(&probe))>>9) & (counterStripes - 1)
}

// A Counter is a monotonically increasing striped counter.
type Counter struct {
	cells [counterStripes]counterCell
}

// Add increments the counter. One atomic load when telemetry is disabled.
func (c *Counter) Add(n uint64) {
	if c == nil || !gate.Load() {
		return
	}
	c.cells[stripeIdx()].v.Add(n)
}

// Value sums the stripes.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	var t uint64
	for i := range c.cells {
		t += c.cells[i].v.Load()
	}
	return t
}

// A Gauge is a point-in-time value (queue depth, buffered records).
type Gauge struct {
	v atomic.Int64
}

// Set stores the gauge value. One atomic load when telemetry is disabled.
func (g *Gauge) Set(v int64) {
	if g == nil || !gate.Load() {
		return
	}
	g.v.Store(v)
}

// Add moves the gauge by delta.
func (g *Gauge) Add(delta int64) {
	if g == nil || !gate.Load() {
		return
	}
	g.v.Add(delta)
}

// Value reads the gauge.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// --- histograms ---

// Log-linear bucketing: histSub linear sub-buckets per power of two, so
// the relative error of any reported quantile is bounded by 1/histSub
// (25%) while the whole range 1ns..~2^42ns (~73min) fits in 168 buckets.
// The record path is lock-free: one count, one sum, one bucket increment.
const (
	histSubBits = 2
	histSub     = 1 << histSubBits
	histOctaves = 42
	histBuckets = (histOctaves - 1) * histSub
)

// histIdx maps a non-negative value to its bucket.
func histIdx(v int64) int {
	if v < histSub {
		return int(v)
	}
	o := bits.Len64(uint64(v)) - 1
	idx := (o-histSubBits+1)*histSub + int((uint64(v)>>(o-histSubBits))&(histSub-1))
	if idx >= histBuckets {
		return histBuckets - 1
	}
	return idx
}

// histBound is the inclusive lower bound of bucket i (the upper bound of
// bucket i-1); quantiles report the upper edge of the containing bucket.
func histBound(i int) int64 {
	if i < histSub {
		return int64(i)
	}
	o := i/histSub + histSubBits - 1
	return int64(1)<<o | int64(i%histSub)<<(o-histSubBits)
}

// A Histogram is a lock-free log-linear latency histogram (values in
// nanoseconds by convention; the name should carry the unit, e.g.
// sbus_publish_ns).
type Histogram struct {
	count atomic.Uint64
	sum   atomic.Uint64
	// sampleMask, when non-zero, makes Start open a timing window only on
	// every (mask+1)-th call: the hot path pays one atomic add instead of
	// two clock reads on the unsampled calls. Count then reports sampled
	// observations; quantiles stay statistically valid.
	sampleMask uint64
	tick       atomic.Uint64
	buckets    [histBuckets]atomic.Uint64
}

// SampleEvery makes Start time only one call in every (1 << shift); call
// it once right after registration, before the histogram is shared. Use
// it for per-message paths where two clock reads per operation would be
// the dominant instrument cost.
func (h *Histogram) SampleEvery(shift uint) *Histogram {
	if h != nil {
		h.sampleMask = 1<<shift - 1
	}
	return h
}

// Observe records one value. One atomic load when telemetry is disabled.
func (h *Histogram) Observe(v int64) {
	if h == nil || !gate.Load() {
		return
	}
	h.observe(v)
}

func (h *Histogram) observe(v int64) {
	if v < 0 {
		v = 0
	}
	h.count.Add(1)
	h.sum.Add(uint64(v))
	h.buckets[histIdx(v)].Add(1)
}

// Start opens a timing window: it returns the zero time (and the matching
// ObserveSince is a no-op) when telemetry is disabled, so an unsampled
// timing costs one atomic load and no clock reads.
func (h *Histogram) Start() time.Time {
	if h == nil || !gate.Load() {
		return time.Time{}
	}
	if h.sampleMask != 0 && h.tick.Add(1)&h.sampleMask != 0 {
		return time.Time{}
	}
	return time.Now()
}

// ObserveSince records the elapsed time since a Start that returned a live
// window; it is a no-op for the zero time.
func (h *Histogram) ObserveSince(start time.Time) {
	if start.IsZero() || h == nil {
		return
	}
	h.observe(int64(time.Since(start)))
}

// HistStats summarises a histogram for snapshots. Quantiles are the upper
// edge of the containing log-linear bucket (≤25% relative error).
type HistStats struct {
	Count uint64 `json:"count"`
	Sum   uint64 `json:"sum"`
	P50   int64  `json:"p50"`
	P90   int64  `json:"p90"`
	P99   int64  `json:"p99"`
	Max   int64  `json:"max"`
	// Buckets holds the occupied buckets as (upper edge, cumulative count)
	// pairs, sparse and ascending — the shape a Prometheus-native
	// histogram encoding needs (the encoder appends the +Inf bucket).
	Buckets []HistBucket `json:"buckets,omitempty"`
}

// A HistBucket is one occupied histogram bucket: every observation ≤ LE
// (the bucket's inclusive upper edge) counts toward the cumulative Count.
type HistBucket struct {
	LE    int64  `json:"le"`
	Count uint64 `json:"count"`
}

// stats summarises the histogram from one pass over the buckets. Counts
// are read without a barrier against concurrent records, so a quantile can
// lag an in-flight observation — fine for monitoring.
func (h *Histogram) stats() HistStats {
	s := HistStats{Count: h.count.Load(), Sum: h.sum.Load()}
	if s.Count == 0 {
		return s
	}
	q50 := (s.Count + 1) / 2
	q90 := s.Count - s.Count/10
	q99 := s.Count - s.Count/100
	var cum uint64
	for i := 0; i < histBuckets; i++ {
		n := h.buckets[i].Load()
		if n == 0 {
			continue
		}
		edge := histBound(i + 1)
		if cum < q50 && cum+n >= q50 {
			s.P50 = edge
		}
		if cum < q90 && cum+n >= q90 {
			s.P90 = edge
		}
		if cum < q99 && cum+n >= q99 {
			s.P99 = edge
		}
		cum += n
		s.Max = edge
		s.Buckets = append(s.Buckets, HistBucket{LE: edge, Count: cum})
	}
	return s
}

// --- registry ---

// Kind discriminates instrument types in snapshots.
type Kind string

// Instrument kinds.
const (
	KindCounter   Kind = "counter"
	KindGauge     Kind = "gauge"
	KindHistogram Kind = "histogram"
)

type metricID struct {
	name   string
	labels string
}

type instrument struct {
	id   metricID
	kind Kind
	c    *Counter
	g    *Gauge
	h    *Histogram
	// fn, when set, supplies the value at snapshot time (func-backed
	// counter or gauge); monotone reports counter semantics.
	fn       func() float64
	monotone bool
}

// A Registry holds instruments under stable (name, labels) identities.
// Registering an identity twice returns the existing instrument (tests and
// reconnecting subsystems re-register freely); a func-backed registration
// replaces the previous func, so the latest incarnation of a subsystem
// owns its series.
type Registry struct {
	mu   sync.Mutex
	byID map[metricID]*instrument
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{byID: map[metricID]*instrument{}}
}

// defaultRegistry is the process-wide registry; subsystems register into
// it at construction, Domain.Metrics exposes it.
var defaultRegistry = NewRegistry()

// Default returns the process-wide registry.
func Default() *Registry { return defaultRegistry }

// formatLabels renders alternating key, value pairs canonically
// (`k="v",k2="v2"`, sorted by key). Values are escaped for the Prometheus
// text format.
func formatLabels(kv []string) string {
	if len(kv) == 0 {
		return ""
	}
	type pair struct{ k, v string }
	pairs := make([]pair, 0, len(kv)/2)
	for i := 0; i+1 < len(kv); i += 2 {
		pairs = append(pairs, pair{kv[i], kv[i+1]})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].k < pairs[j].k })
	var b strings.Builder
	for i, p := range pairs {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(p.k)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(p.v))
		b.WriteByte('"')
	}
	return b.String()
}

func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// lookup returns the instrument for id, creating it with make when absent.
// An existing instrument of the same kind is reused; a kind clash (a name
// reused for a different shape) replaces the old series.
func (r *Registry) lookup(name string, kv []string, kind Kind, build func() *instrument) *instrument {
	id := metricID{name: name, labels: formatLabels(kv)}
	r.mu.Lock()
	defer r.mu.Unlock()
	if in, ok := r.byID[id]; ok && in.kind == kind && in.fn == nil {
		return in
	}
	in := build()
	in.id, in.kind = id, kind
	r.byID[id] = in
	return in
}

// Counter registers (or returns the existing) counter under name and
// alternating label key/value pairs.
func (r *Registry) Counter(name string, kv ...string) *Counter {
	return r.lookup(name, kv, KindCounter, func() *instrument {
		return &instrument{c: &Counter{}}
	}).c
}

// Gauge registers (or returns the existing) gauge.
func (r *Registry) Gauge(name string, kv ...string) *Gauge {
	return r.lookup(name, kv, KindGauge, func() *instrument {
		return &instrument{g: &Gauge{}}
	}).g
}

// Histogram registers (or returns the existing) histogram.
func (r *Registry) Histogram(name string, kv ...string) *Histogram {
	return r.lookup(name, kv, KindHistogram, func() *instrument {
		return &instrument{h: &Histogram{}}
	}).h
}

// CounterFunc registers a counter whose value is read from fn at snapshot
// time (for monotone state a subsystem already maintains — shard delivery
// counts, WAL appends). Re-registering the identity replaces fn.
func (r *Registry) CounterFunc(name string, fn func() float64, kv ...string) {
	id := metricID{name: name, labels: formatLabels(kv)}
	r.mu.Lock()
	r.byID[id] = &instrument{id: id, kind: KindCounter, fn: fn, monotone: true}
	r.mu.Unlock()
}

// GaugeFunc registers a gauge whose value is read from fn at snapshot time
// (queue depths, segment counts, backlog sizes).
func (r *Registry) GaugeFunc(name string, fn func() float64, kv ...string) {
	id := metricID{name: name, labels: formatLabels(kv)}
	r.mu.Lock()
	r.byID[id] = &instrument{id: id, kind: KindGauge, fn: fn}
	r.mu.Unlock()
}

// A Metric is one series in a snapshot.
type Metric struct {
	Name   string     `json:"name"`
	Labels string     `json:"labels,omitempty"`
	Kind   Kind       `json:"kind"`
	Value  float64    `json:"value"`
	Hist   *HistStats `json:"hist,omitempty"`
}

// Snapshot reads every instrument, sorted by name then labels. Func-backed
// instruments are invoked here (and only here), outside the registry lock
// so a slow probe cannot block registrations.
func (r *Registry) Snapshot() []Metric {
	r.mu.Lock()
	ins := make([]*instrument, 0, len(r.byID))
	for _, in := range r.byID {
		ins = append(ins, in)
	}
	r.mu.Unlock()
	sort.Slice(ins, func(i, j int) bool {
		if ins[i].id.name != ins[j].id.name {
			return ins[i].id.name < ins[j].id.name
		}
		return ins[i].id.labels < ins[j].id.labels
	})
	out := make([]Metric, 0, len(ins))
	for _, in := range ins {
		m := Metric{Name: in.id.name, Labels: in.id.labels, Kind: in.kind}
		switch {
		case in.fn != nil:
			m.Value = in.fn()
		case in.c != nil:
			m.Value = float64(in.c.Value())
		case in.g != nil:
			m.Value = float64(in.g.Value())
		case in.h != nil:
			st := in.h.stats()
			m.Hist = &st
			m.Value = float64(st.Count)
		}
		out = append(out, m)
	}
	return out
}

// Label extracts one label's value from a snapshot metric's canonical
// label string, undoing the escaping formatLabels applied; it returns ""
// when the label is absent.
func (m Metric) Label(key string) string {
	rest := m.Labels
	for rest != "" {
		eq := strings.Index(rest, `="`)
		if eq < 0 {
			return ""
		}
		k := rest[:eq]
		rest = rest[eq+2:]
		// Walk to the closing quote, unescaping as we go.
		var b strings.Builder
		i := 0
		for i < len(rest) {
			c := rest[i]
			if c == '\\' && i+1 < len(rest) {
				switch rest[i+1] {
				case 'n':
					b.WriteByte('\n')
				default:
					b.WriteByte(rest[i+1])
				}
				i += 2
				continue
			}
			if c == '"' {
				break
			}
			b.WriteByte(c)
			i++
		}
		if k == key {
			return b.String()
		}
		rest = rest[i:]
		if strings.HasPrefix(rest, `",`) {
			rest = rest[2:]
		} else {
			return ""
		}
	}
	return ""
}

// Find locates a series in a snapshot by name and label pairs.
func Find(snap []Metric, name string, kv ...string) (Metric, bool) {
	labels := formatLabels(kv)
	for _, m := range snap {
		if m.Name == name && m.Labels == labels {
			return m, true
		}
	}
	return Metric{}, false
}

// Package-level helpers on the default registry.

// NewCounter registers a counter in the default registry.
func NewCounter(name string, kv ...string) *Counter { return defaultRegistry.Counter(name, kv...) }

// NewGauge registers a gauge in the default registry.
func NewGauge(name string, kv ...string) *Gauge { return defaultRegistry.Gauge(name, kv...) }

// NewHistogram registers a histogram in the default registry.
func NewHistogram(name string, kv ...string) *Histogram {
	return defaultRegistry.Histogram(name, kv...)
}

// RegisterCounterFunc registers a func-backed counter in the default
// registry.
func RegisterCounterFunc(name string, fn func() float64, kv ...string) {
	defaultRegistry.CounterFunc(name, fn, kv...)
}

// RegisterGaugeFunc registers a func-backed gauge in the default registry.
func RegisterGaugeFunc(name string, fn func() float64, kv ...string) {
	defaultRegistry.GaugeFunc(name, fn, kv...)
}

// Snapshot reads the default registry.
func Snapshot() []Metric { return defaultRegistry.Snapshot() }
