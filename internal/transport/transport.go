// Package transport provides the framed, connection-oriented byte transport
// underneath the messaging substrate (Fig. 9's cross-machine path). Two
// implementations share one interface: a real TCP transport (package net)
// for deployment, and an in-memory simulated network with configurable
// latency, loss and partitions for deterministic tests, simulations and
// benchmarks (see DESIGN.md, substitutions).
package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
)

// Errors reported by transports.
var (
	ErrClosed      = errors.New("transport: connection closed")
	ErrNoListener  = errors.New("transport: no listener at address")
	ErrPartitioned = errors.New("transport: network partitioned")
	ErrFrameSize   = errors.New("transport: frame exceeds maximum size")
)

// MaxFrameSize bounds a single frame; larger payloads must be chunked by
// the caller. 16 MiB accommodates any realistic policy or audit transfer.
const MaxFrameSize = 16 << 20

// A Conn is a reliable, ordered, framed duplex connection.
type Conn interface {
	// Send transmits one frame.
	Send(frame []byte) error
	// Recv blocks for the next frame.
	Recv() ([]byte, error)
	// Close tears the connection down; pending Recv calls fail.
	Close() error
	// RemoteAddr names the peer.
	RemoteAddr() string
}

// A Listener accepts inbound connections.
type Listener interface {
	Accept() (Conn, error)
	Close() error
	Addr() string
}

// A Network dials and listens. Addresses are opaque strings: "host:port"
// for TCP, arbitrary names for the in-memory network.
type Network interface {
	Dial(addr string) (Conn, error)
	Listen(addr string) (Listener, error)
}

// --- TCP implementation ---

// TCPNetwork is the production transport over real sockets.
type TCPNetwork struct{}

var _ Network = TCPNetwork{}

// Dial implements Network.
func (TCPNetwork) Dial(addr string) (Conn, error) {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: dial %s: %w", addr, err)
	}
	return &tcpConn{c: c}, nil
}

// Listen implements Network.
func (TCPNetwork) Listen(addr string) (Listener, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	return &tcpListener{l: l}, nil
}

type tcpListener struct{ l net.Listener }

func (t *tcpListener) Accept() (Conn, error) {
	c, err := t.l.Accept()
	if err != nil {
		return nil, fmt.Errorf("transport: accept: %w", err)
	}
	return &tcpConn{c: c}, nil
}

func (t *tcpListener) Close() error { return t.l.Close() }
func (t *tcpListener) Addr() string { return t.l.Addr().String() }

// tcpConn frames with a 4-byte big-endian length prefix.
type tcpConn struct {
	c net.Conn

	sendMu sync.Mutex
	recvMu sync.Mutex
}

func (t *tcpConn) Send(frame []byte) error {
	if len(frame) > MaxFrameSize {
		return fmt.Errorf("%w: %d bytes", ErrFrameSize, len(frame))
	}
	t.sendMu.Lock()
	defer t.sendMu.Unlock()
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(frame)))
	if _, err := t.c.Write(hdr[:]); err != nil {
		return fmt.Errorf("transport: send header: %w", err)
	}
	if _, err := t.c.Write(frame); err != nil {
		return fmt.Errorf("transport: send body: %w", err)
	}
	return nil
}

func (t *tcpConn) Recv() ([]byte, error) {
	t.recvMu.Lock()
	defer t.recvMu.Unlock()
	var hdr [4]byte
	if _, err := io.ReadFull(t.c, hdr[:]); err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, net.ErrClosed) {
			return nil, ErrClosed
		}
		return nil, fmt.Errorf("transport: recv header: %w", err)
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrameSize {
		return nil, fmt.Errorf("%w: peer announced %d bytes", ErrFrameSize, n)
	}
	frame := make([]byte, n)
	if _, err := io.ReadFull(t.c, frame); err != nil {
		return nil, fmt.Errorf("transport: recv body: %w", err)
	}
	return frame, nil
}

func (t *tcpConn) Close() error       { return t.c.Close() }
func (t *tcpConn) RemoteAddr() string { return t.c.RemoteAddr().String() }

var _ Conn = (*tcpConn)(nil)
