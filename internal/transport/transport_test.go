package transport

import (
	"bytes"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

// exerciseNetwork runs the shared conformance suite over any Network.
func exerciseNetwork(t *testing.T, n Network, addr string) {
	t.Helper()
	l, err := n.Listen(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	type result struct {
		frames [][]byte
		err    error
	}
	done := make(chan result, 1)
	go func() {
		c, err := l.Accept()
		if err != nil {
			done <- result{err: err}
			return
		}
		defer c.Close()
		var frames [][]byte
		for i := 0; i < 3; i++ {
			f, err := c.Recv()
			if err != nil {
				done <- result{err: err}
				return
			}
			frames = append(frames, f)
			if err := c.Send(append([]byte("echo:"), f...)); err != nil {
				done <- result{err: err}
				return
			}
		}
		done <- result{frames: frames}
	}()

	c, err := n.Dial(l.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	sent := [][]byte{[]byte("one"), {}, bytes.Repeat([]byte("x"), 70000)}
	for _, f := range sent {
		if err := c.Send(f); err != nil {
			t.Fatal(err)
		}
		echo, err := c.Recv()
		if err != nil {
			t.Fatal(err)
		}
		want := append([]byte("echo:"), f...)
		if !bytes.Equal(echo, want) {
			t.Fatalf("echo = %d bytes, want %d", len(echo), len(want))
		}
	}
	r := <-done
	if r.err != nil {
		t.Fatal(r.err)
	}
	for i, f := range r.frames {
		if !bytes.Equal(f, sent[i]) {
			t.Fatalf("server frame %d corrupted", i)
		}
	}
}

func TestTCPNetworkConformance(t *testing.T) {
	exerciseNetwork(t, TCPNetwork{}, "127.0.0.1:0")
}

func TestMemNetworkConformance(t *testing.T) {
	exerciseNetwork(t, NewMemNetwork(), "node-a")
}

func TestDialUnknownAddress(t *testing.T) {
	n := NewMemNetwork()
	if _, err := n.Dial("ghost"); !errors.Is(err, ErrNoListener) {
		t.Fatalf("Dial(ghost) = %v", err)
	}
	if _, err := (TCPNetwork{}).Dial("127.0.0.1:1"); err == nil {
		t.Fatal("TCP dial to closed port succeeded")
	}
}

func TestMemNetworkDuplicateListen(t *testing.T) {
	n := NewMemNetwork()
	l, err := n.Listen("a")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.Listen("a"); err == nil {
		t.Fatal("duplicate listen succeeded")
	}
	// After closing, the address is reusable.
	l.Close()
	if _, err := n.Listen("a"); err != nil {
		t.Fatalf("re-listen after close: %v", err)
	}
}

func TestMemNetworkPartition(t *testing.T) {
	n := NewMemNetwork()
	l, err := n.Listen("gw")
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		c, err := l.Accept()
		if err != nil {
			return
		}
		for {
			if _, err := c.Recv(); err != nil {
				return
			}
		}
	}()
	c, err := n.Dial("gw")
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Send([]byte("hi")); err != nil {
		t.Fatal(err)
	}

	n.SetDown("gw", true)
	if err := c.Send([]byte("hi")); !errors.Is(err, ErrPartitioned) {
		t.Fatalf("send to downed address = %v", err)
	}
	if _, err := n.Dial("gw"); !errors.Is(err, ErrPartitioned) {
		t.Fatalf("dial to downed address = %v", err)
	}

	n.SetDown("gw", false)
	if err := c.Send([]byte("hi")); err != nil {
		t.Fatalf("send after heal = %v", err)
	}
}

func TestMemNetworkLatency(t *testing.T) {
	n := NewMemNetwork()
	n.SetLatency(20 * time.Millisecond)
	l, err := n.Listen("slow")
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		c, err := l.Accept()
		if err != nil {
			return
		}
		f, err := c.Recv()
		if err != nil {
			return
		}
		_ = c.Send(f)
	}()
	c, err := n.Dial("slow")
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if err := c.Send([]byte("ping")); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Recv(); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 40*time.Millisecond {
		t.Fatalf("round trip %v, want >= 40ms (two hops of 20ms)", elapsed)
	}
}

func TestConnCloseUnblocksRecv(t *testing.T) {
	n := NewMemNetwork()
	l, err := n.Listen("x")
	if err != nil {
		t.Fatal(err)
	}
	accepted := make(chan Conn, 1)
	go func() {
		c, err := l.Accept()
		if err == nil {
			accepted <- c
		}
	}()
	c, err := n.Dial("x")
	if err != nil {
		t.Fatal(err)
	}
	server := <-accepted

	errCh := make(chan error, 1)
	go func() {
		_, err := server.Recv()
		errCh <- err
	}()
	c.Close()
	select {
	case err := <-errCh:
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("Recv after peer close = %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Recv not unblocked by peer close")
	}
	if err := c.Send([]byte("x")); !errors.Is(err, ErrClosed) {
		t.Fatalf("Send on closed conn = %v", err)
	}
}

func TestRecvDrainsBeforeClosedError(t *testing.T) {
	n := NewMemNetwork()
	l, err := n.Listen("y")
	if err != nil {
		t.Fatal(err)
	}
	accepted := make(chan Conn, 1)
	go func() {
		c, err := l.Accept()
		if err == nil {
			accepted <- c
		}
	}()
	c, err := n.Dial("y")
	if err != nil {
		t.Fatal(err)
	}
	server := <-accepted
	if err := c.Send([]byte("last words")); err != nil {
		t.Fatal(err)
	}
	c.Close()
	// The frame sent before close must still be deliverable.
	f, err := server.Recv()
	if err != nil || string(f) != "last words" {
		t.Fatalf("Recv = %q, %v", f, err)
	}
	if _, err := server.Recv(); !errors.Is(err, ErrClosed) {
		t.Fatalf("subsequent Recv = %v", err)
	}
}

func TestFrameSizeLimit(t *testing.T) {
	n := NewMemNetwork()
	l, err := n.Listen("z")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _, _ = l.Accept() }()
	c, err := n.Dial("z")
	if err != nil {
		t.Fatal(err)
	}
	big := make([]byte, MaxFrameSize+1)
	if err := c.Send(big); !errors.Is(err, ErrFrameSize) {
		t.Fatalf("oversized send = %v", err)
	}
}

func TestListenerCloseUnblocksAccept(t *testing.T) {
	n := NewMemNetwork()
	l, err := n.Listen("w")
	if err != nil {
		t.Fatal(err)
	}
	errCh := make(chan error, 1)
	go func() {
		_, err := l.Accept()
		errCh <- err
	}()
	l.Close()
	select {
	case err := <-errCh:
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("Accept after close = %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Accept not unblocked")
	}
}

func TestRemoteAddr(t *testing.T) {
	// In-memory: the remote address is the listener name.
	n := NewMemNetwork()
	l, err := n.Listen("hub")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _, _ = l.Accept() }()
	c, err := n.Dial("hub")
	if err != nil {
		t.Fatal(err)
	}
	if c.RemoteAddr() != "hub" {
		t.Fatalf("mem RemoteAddr = %q", c.RemoteAddr())
	}

	// TCP: a dotted host:port.
	tl, err := (TCPNetwork{}).Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer tl.Close()
	go func() { _, _ = tl.Accept() }()
	tc, err := (TCPNetwork{}).Dial(tl.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer tc.Close()
	if !strings.HasPrefix(tc.RemoteAddr(), "127.0.0.1:") {
		t.Fatalf("tcp RemoteAddr = %q", tc.RemoteAddr())
	}
}

func TestTCPRecvAfterPeerClose(t *testing.T) {
	tl, err := (TCPNetwork{}).Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer tl.Close()
	accepted := make(chan Conn, 1)
	go func() {
		c, err := tl.Accept()
		if err == nil {
			accepted <- c
		}
	}()
	c, err := (TCPNetwork{}).Dial(tl.Addr())
	if err != nil {
		t.Fatal(err)
	}
	server := <-accepted
	c.Close()
	if _, err := server.Recv(); !errors.Is(err, ErrClosed) {
		t.Fatalf("Recv after peer close = %v", err)
	}
}

func TestMemConnConcurrentSend(t *testing.T) {
	n := NewMemNetwork()
	l, err := n.Listen("c")
	if err != nil {
		t.Fatal(err)
	}
	received := make(chan int, 1)
	go func() {
		c, err := l.Accept()
		if err != nil {
			return
		}
		count := 0
		for count < 400 {
			if _, err := c.Recv(); err != nil {
				break
			}
			count++
		}
		received <- count
	}()
	c, err := n.Dial("c")
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				if err := c.Send([]byte("m")); err != nil {
					t.Errorf("Send: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if got := <-received; got != 400 {
		t.Fatalf("received %d frames, want 400", got)
	}
}
