package transport

import (
	"fmt"
	"sync"
	"time"
)

// MemNetwork is an in-memory Network for simulations: it supports latency
// injection and per-address partitioning (an address can be cut off and
// healed), so tests can reproduce the federated, unreliable conditions of a
// wide-scale IoT — mobile things, intermittent gateways, audit gaps —
// without sockets or timing flakiness.
type MemNetwork struct {
	mu        sync.Mutex
	listeners map[string]*memListener
	// latency is charged on each Send (applied as a sleep).
	latency time.Duration
	// down marks listener addresses currently cut off from the network.
	down map[string]bool
}

var _ Network = (*MemNetwork)(nil)

// NewMemNetwork builds an empty in-memory network.
func NewMemNetwork() *MemNetwork {
	return &MemNetwork{
		listeners: make(map[string]*memListener),
		down:      make(map[string]bool),
	}
}

// SetLatency configures the per-frame delivery delay.
func (n *MemNetwork) SetLatency(d time.Duration) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.latency = d
}

// SetDown cuts an address off from the network (true) or heals it (false).
// Frames on existing connections to that address fail with ErrPartitioned;
// new dials fail too.
func (n *MemNetwork) SetDown(addr string, down bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if down {
		n.down[addr] = true
	} else {
		delete(n.down, addr)
	}
}

// reachable reports whether the listener address may currently exchange
// frames.
func (n *MemNetwork) reachable(addr string) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return !n.down[addr]
}

// Listen implements Network.
func (n *MemNetwork) Listen(addr string) (Listener, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, ok := n.listeners[addr]; ok {
		return nil, fmt.Errorf("transport: address %q already in use", addr)
	}
	l := &memListener{net: n, addr: addr, backlog: make(chan *memConn, 16), closed: make(chan struct{})}
	n.listeners[addr] = l
	return l, nil
}

// Dial implements Network.
func (n *MemNetwork) Dial(addr string) (Conn, error) {
	n.mu.Lock()
	l, ok := n.listeners[addr]
	isDown := n.down[addr]
	n.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoListener, addr)
	}
	if isDown {
		return nil, fmt.Errorf("%w: %q is down", ErrPartitioned, addr)
	}
	// The dialer's "address" is synthetic; partitions are keyed on listener
	// addresses, so record the remote on each side.
	clientSide, serverSide := newMemPipe(n, addr)
	select {
	case l.backlog <- serverSide:
		return clientSide, nil
	default:
		return nil, fmt.Errorf("transport: listener %q backlog full", addr)
	}
}

type memListener struct {
	net     *MemNetwork
	addr    string
	backlog chan *memConn

	closeOnce sync.Once
	closed    chan struct{}
}

func (l *memListener) Accept() (Conn, error) {
	select {
	case c := <-l.backlog:
		return c, nil
	case <-l.closed:
		return nil, ErrClosed
	}
}

func (l *memListener) Close() error {
	l.net.mu.Lock()
	delete(l.net.listeners, l.addr)
	l.net.mu.Unlock()
	l.closeOnce.Do(func() { close(l.closed) })
	return nil
}

func (l *memListener) Addr() string { return l.addr }

// memConn is one side of an in-memory duplex pipe.
type memConn struct {
	net    *MemNetwork
	remote string // listener address this pipe is associated with
	in     chan []byte
	out    chan []byte

	closeOnce sync.Once
	closed    chan struct{}
	peer      *memConn
}

// newMemPipe creates the two entangled halves of a connection.
func newMemPipe(n *MemNetwork, listenerAddr string) (client, server *memConn) {
	a2b := make(chan []byte, 256)
	b2a := make(chan []byte, 256)
	client = &memConn{net: n, remote: listenerAddr, in: b2a, out: a2b, closed: make(chan struct{})}
	server = &memConn{net: n, remote: listenerAddr, in: a2b, out: b2a, closed: make(chan struct{})}
	client.peer = server
	server.peer = client
	return client, server
}

func (c *memConn) Send(frame []byte) error {
	if len(frame) > MaxFrameSize {
		return fmt.Errorf("%w: %d bytes", ErrFrameSize, len(frame))
	}
	if !c.net.reachable(c.remote) {
		return ErrPartitioned
	}
	c.net.mu.Lock()
	lat := c.net.latency
	c.net.mu.Unlock()
	if lat > 0 {
		time.Sleep(lat)
	}
	owned := make([]byte, len(frame))
	copy(owned, frame)
	// Check for closure first: a select with a ready buffer would otherwise
	// pick non-deterministically between enqueueing and failing.
	select {
	case <-c.closed:
		return ErrClosed
	case <-c.peer.closed:
		return ErrClosed
	default:
	}
	select {
	case <-c.closed:
		return ErrClosed
	case <-c.peer.closed:
		return ErrClosed
	case c.out <- owned:
		return nil
	}
}

func (c *memConn) Recv() ([]byte, error) {
	select {
	case f := <-c.in:
		return f, nil
	case <-c.closed:
		// Drain anything already delivered before reporting closure.
		select {
		case f := <-c.in:
			return f, nil
		default:
			return nil, ErrClosed
		}
	case <-c.peer.closed:
		select {
		case f := <-c.in:
			return f, nil
		default:
			return nil, ErrClosed
		}
	}
}

func (c *memConn) Close() error {
	c.closeOnce.Do(func() { close(c.closed) })
	return nil
}

func (c *memConn) RemoteAddr() string { return c.remote }

var _ Conn = (*memConn)(nil)
