package cep

import (
	"fmt"
	"sort"
	"sync"
	"testing"
	"time"
)

// namesOnLane returns count source names that hash to the given lane at
// width n, and one that does not (for cross-lane patterns).
func namesOnLane(lane, n, count int) []string {
	var out []string
	for i := 0; len(out) < count; i++ {
		name := fmt.Sprintf("sensor-%d", i)
		if laneIdxFor(name, n) == lane {
			out = append(out, name)
		}
	}
	return out
}

func nameOffLane(lane, n int) string {
	if n <= 1 {
		return "other-0" // width 1: every name is on lane 0 by definition
	}
	for i := 0; ; i++ {
		name := fmt.Sprintf("other-%d", i)
		if laneIdxFor(name, n) != lane {
			return name
		}
	}
}

// laneTestPatterns builds a fresh pattern set exercising every homing
// class: lane-homed thresholds, a cross-lane sequence (broadcast), and a
// sourceless aggregate (broadcast).
func laneTestPatterns(n int) []Pattern {
	onA := namesOnLane(0, n, 2)
	offA := nameOffLane(0, n)
	return []Pattern{
		&Threshold{
			PatternName: "homed-" + onA[0],
			Sources:     []string{onA[0]},
			Count:       2, Window: time.Minute,
		},
		&Threshold{
			PatternName: "homed-pair",
			Sources:     onA, // two sources, same lane: still homed
			Count:       3, Window: time.Minute,
		},
		&Sequence{
			PatternName: "cross-lane-seq",
			Sources:     []string{onA[0], offA}, // spans lanes: broadcast
			Steps: []func(Event) bool{
				func(e Event) bool { return e.Source == onA[0] },
				func(e Event) bool { return e.Source == offA },
			},
			Window: time.Minute,
		},
		&Aggregate{
			PatternName: "global-avg", // no sources: broadcast
			Kind:        AggAvg, Window: time.Minute,
			Limit: 50, Above: true, MinCount: 3,
		},
	}
}

// laneTestEvents interleaves events across lane-homed and off-lane
// sources so every pattern above can fire at least once.
func laneTestEvents(n int) []Event {
	onA := namesOnLane(0, n, 2)
	offA := nameOffLane(0, n)
	var evs []Event
	for i := 0; i < 12; i++ {
		evs = append(evs,
			Event{Source: onA[0], Time: at(float64(i)), Value: 60},
			Event{Source: onA[1], Time: at(float64(i) + 0.1), Value: 70},
			Event{Source: offA, Time: at(float64(i) + 0.2), Value: 80},
		)
	}
	return evs
}

func detKey(d Detection) string {
	return fmt.Sprintf("%s@%s/%g/%d", d.Pattern, d.At.Format(time.RFC3339Nano), d.Value, len(d.Events))
}

// TestShardedEngineMatchesEngine feeds the identical stream through a
// plain Engine and a 4-lane ShardedEngine and requires the same
// detection multiset: partitioned dispatch must be observably identical
// to feeding every pattern every event.
func TestShardedEngineMatchesEngine(t *testing.T) {
	const n = 4
	run := func(feed func([]Pattern, []Event, func(Detection))) []string {
		var keys []string
		feed(laneTestPatterns(n), laneTestEvents(n), func(d Detection) {
			keys = append(keys, detKey(d))
		})
		sort.Strings(keys)
		return keys
	}

	plain := run(func(ps []Pattern, evs []Event, h func(Detection)) {
		e := NewEngine(h)
		for _, p := range ps {
			e.Register(p)
		}
		for _, ev := range evs {
			e.Feed(ev)
		}
	})
	sharded := run(func(ps []Pattern, evs []Event, h func(Detection)) {
		se := NewShardedEngine(n, h)
		for _, p := range ps {
			se.Register(p)
		}
		for _, ev := range evs {
			se.Feed(ev)
		}
	})

	if len(plain) == 0 {
		t.Fatal("reference engine produced no detections; test is vacuous")
	}
	if len(plain) != len(sharded) {
		t.Fatalf("detection count: plain %d, sharded %d\nplain: %v\nsharded: %v",
			len(plain), len(sharded), plain, sharded)
	}
	for i := range plain {
		if plain[i] != sharded[i] {
			t.Fatalf("detection %d differs: plain %q, sharded %q", i, plain[i], sharded[i])
		}
	}
}

// TestShardedEngineSingleLaneOrder requires that a 1-lane sharded engine
// preserves the plain Engine's exact detection order (not just multiset):
// everything lives on lane 0, no broadcast split.
func TestShardedEngineSingleLaneOrder(t *testing.T) {
	var plain, sharded []string
	e := NewEngine(func(d Detection) { plain = append(plain, detKey(d)) })
	se := NewShardedEngine(1, func(d Detection) { sharded = append(sharded, detKey(d)) })
	for _, p := range laneTestPatterns(1) {
		e.Register(p)
	}
	for _, p := range laneTestPatterns(1) {
		se.Register(p)
	}
	for _, ev := range laneTestEvents(1) {
		e.Feed(ev)
		se.Feed(ev)
	}
	if len(plain) == 0 {
		t.Fatal("no detections; test is vacuous")
	}
	if fmt.Sprint(plain) != fmt.Sprint(sharded) {
		t.Fatalf("order differs:\nplain:   %v\nsharded: %v", plain, sharded)
	}
}

// TestShardedEngineConcurrentFeed hammers a multi-lane engine from one
// goroutine per lane plus a concurrent purger and advancer; run under
// -race this is the data-race proof for per-lane locking. Each feeder's
// own detections must all arrive (handler runs on the feeder goroutine).
func TestShardedEngineConcurrentFeed(t *testing.T) {
	const n = 4
	var mu sync.Mutex
	perPattern := map[string]int{}
	se := NewShardedEngine(n, func(d Detection) {
		mu.Lock()
		perPattern[d.Pattern]++
		mu.Unlock()
	})
	// One homed threshold per lane, firing on every event (Count 1).
	sources := make([]string, n)
	for lane := 0; lane < n; lane++ {
		src := namesOnLane(lane, n, 1)[0]
		sources[lane] = src
		se.Register(&Threshold{
			PatternName: "lane-" + src,
			Sources:     []string{src},
			Count:       1, Window: time.Minute,
		})
	}
	// And one broadcast pattern seeing everything.
	se.Register(&Threshold{PatternName: "bcast", Count: 1, Window: time.Minute})

	const perFeeder = 200
	var wg sync.WaitGroup
	for lane := 0; lane < n; lane++ {
		wg.Add(1)
		go func(lane int) {
			defer wg.Done()
			for i := 0; i < perFeeder; i++ {
				se.Feed(Event{Source: sources[lane], Time: at(float64(i)), Value: 1})
			}
		}(lane)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			se.Purge(func(Event) bool { return false })
			se.Advance(at(float64(i)))
		}
	}()
	wg.Wait()

	for lane := 0; lane < n; lane++ {
		if got := perPattern["lane-"+sources[lane]]; got != perFeeder {
			t.Errorf("lane %d pattern fired %d times, want %d", lane, got, perFeeder)
		}
	}
	if got := perPattern["bcast"]; got != n*perFeeder {
		t.Errorf("broadcast pattern fired %d times, want %d", got, n*perFeeder)
	}
}

// TestShardedEnginePurgeFromHandler registers a handler that calls Purge
// — the erase-on-event path in core — and must not deadlock, because
// handlers run outside the lane locks.
func TestShardedEnginePurgeFromHandler(t *testing.T) {
	var se *ShardedEngine
	purged := 0
	se = NewShardedEngine(4, func(d Detection) {
		purged += se.Purge(func(e Event) bool { return true })
	})
	src := namesOnLane(1, 4, 1)[0]
	se.Register(&Threshold{
		PatternName: "erasure-trigger",
		Sources:     []string{src},
		Count:       2, Window: time.Minute,
	})
	// Park an event in another lane's window so the cross-lane purge has
	// something to drop.
	other := nameOffLane(1, 4)
	se.Register(&Threshold{PatternName: "victim", Sources: []string{other}, Count: 100, Window: time.Hour})
	se.Feed(Event{Source: other, Time: at(0), Value: 1})

	done := make(chan struct{})
	go func() {
		se.Feed(Event{Source: src, Time: at(1), Value: 1})
		se.Feed(Event{Source: src, Time: at(2), Value: 1})
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Purge from detection handler deadlocked")
	}
	if purged == 0 {
		t.Fatal("handler's Purge dropped nothing; cross-lane purge untested")
	}
}
