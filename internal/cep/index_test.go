package cep

import (
	"fmt"
	"math/rand"
	"reflect"
	"strconv"
	"testing"
	"time"
)

// untyped hides a pattern's TypedPattern interface, forcing it into the
// engine's catch-all bucket. Feeding a catch-all-only engine is a linear
// walk over every pattern in registration order — the brute-force reference
// the indexed path must match byte for byte.
type untyped struct{ p Pattern }

func (u untyped) Name() string                           { return u.p.Name() }
func (u untyped) OnEvent(e Event) (Detection, bool)      { return u.p.OnEvent(e) }
func (u untyped) OnTick(now time.Time) (Detection, bool) { return u.p.OnTick(now) }

// buildPatterns builds one randomized pattern set twice (identical
// configuration, independent state) so an indexed and a linear engine can
// run the same workload side by side.
func buildPatterns(r *rand.Rand, types []string) (a, b []Pattern) {
	n := r.Intn(12) + 4
	for i := 0; i < n; i++ {
		name := "p" + strconv.Itoa(i)
		// Half the patterns declare a random subset of types; half stay
		// untyped (catch-all).
		var declared []string
		if r.Intn(2) == 0 {
			for _, t := range types {
				if r.Intn(2) == 0 {
					declared = append(declared, t)
				}
			}
		}
		limit := float64(r.Intn(50))
		count := r.Intn(3) + 2
		mk := func() Pattern {
			switch i % 4 {
			case 0:
				return &Threshold{
					PatternName: name, Types: declared,
					Match: func(e Event) bool { return e.Value > limit },
					Count: count, Window: time.Minute,
				}
			case 1:
				step := func(v float64) func(Event) bool {
					return func(e Event) bool { return e.Value > v }
				}
				return &Sequence{
					PatternName: name, Types: declared,
					Steps:  []func(Event) bool{step(limit), step(limit / 2)},
					Window: time.Minute,
				}
			case 2:
				return &Absence{
					PatternName: name, Types: declared,
					Match:   func(e Event) bool { return e.Value > limit },
					Timeout: 30 * time.Second,
				}
			default:
				return &Aggregate{
					PatternName: name, Types: declared,
					Kind: AggAvg, Window: time.Minute, Limit: limit,
					Above: true, MinCount: 2,
				}
			}
		}
		// Same seed state for both engines: the constructors above capture
		// only immutable parameters, so two calls yield identical patterns.
		a = append(a, mk())
		b = append(b, mk())
	}
	return a, b
}

// TestFeedIndexedMatchesLinear feeds identical randomized event streams to
// an indexed engine and a catch-all (linear) engine built from the same
// pattern configuration, and requires identical detection sequences.
func TestFeedIndexedMatchesLinear(t *testing.T) {
	types := []string{"hr", "spo2", "door", "co2"}
	for seed := int64(0); seed < 50; seed++ {
		r := rand.New(rand.NewSource(seed))
		pa, pb := buildPatterns(r, types)

		var got, want []Detection
		indexed := NewEngine(func(d Detection) { got = append(got, d) })
		linear := NewEngine(func(d Detection) { want = append(want, d) })
		for i := range pa {
			indexed.Register(pa[i])
			linear.Register(untyped{p: pb[i]})
		}

		now := time.Unix(0, 0)
		for i := 0; i < 400; i++ {
			now = now.Add(time.Duration(r.Intn(5000)) * time.Millisecond)
			if r.Intn(10) == 0 {
				indexed.Advance(now)
				linear.Advance(now)
				continue
			}
			ev := Event{
				Type:   types[r.Intn(len(types))],
				Source: "s" + strconv.Itoa(r.Intn(3)),
				Time:   now,
				Value:  float64(r.Intn(100)),
			}
			indexed.Feed(ev)
			linear.Feed(ev)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("seed %d: indexed feed diverged from linear walk:\nindexed: %v\nlinear:  %v",
				seed, got, want)
		}
	}
}

// TestFeedSkipsUnsubscribedPatterns proves the index actually prunes work:
// an event of one type must not reach a pattern typed for another.
func TestFeedSkipsUnsubscribedPatterns(t *testing.T) {
	touched := 0
	e := NewEngine(nil)
	for i := 0; i < 100; i++ {
		typ := "t" + strconv.Itoa(i)
		e.Register(&Threshold{
			PatternName: typ, Types: []string{typ},
			Match: func(Event) bool { touched++; return false },
			Count: 1, Window: time.Minute,
		})
	}
	e.Feed(Event{Type: "t7", Time: time.Unix(0, 0), Value: 1})
	if touched != 1 {
		t.Fatalf("event touched %d patterns, want 1", touched)
	}
}

// TestRegisterDuplicateTypesDeliverOnce: a pattern declaring the same type
// twice must still see each event once.
func TestRegisterDuplicateTypesDeliverOnce(t *testing.T) {
	seen := 0
	e := NewEngine(nil)
	e.Register(&Threshold{
		PatternName: "dup", Types: []string{"hr", "hr"},
		Match: func(Event) bool { seen++; return false },
		Count: 100, Window: time.Minute,
	})
	e.Feed(Event{Type: "hr", Time: time.Unix(0, 0), Value: 1})
	if seen != 1 {
		t.Fatalf("duplicate type declaration delivered event %d times", seen)
	}
}

// TestAdvanceDeterministicOrder: tick delivery follows registration order,
// every run, regardless of how patterns were indexed by type.
func TestAdvanceDeterministicOrder(t *testing.T) {
	for run := 0; run < 20; run++ {
		var fired []string
		e := NewEngine(func(d Detection) { fired = append(fired, d.Pattern) })
		var want []string
		for i := 0; i < 30; i++ {
			name := "abs" + strconv.Itoa(i)
			var types []string
			if i%2 == 0 {
				types = []string{fmt.Sprintf("t%d", i)}
			}
			e.Register(&Absence{PatternName: name, Types: types, Timeout: time.Second})
			want = append(want, name)
		}
		t0 := time.Unix(0, 0)
		for i := 0; i < 30; i++ {
			// Arm every absence pattern with a matching (untyped-gate) event
			// of its own type; untyped ones see it too.
			e.Feed(Event{Type: fmt.Sprintf("t%d", i), Time: t0})
		}
		e.Advance(t0.Add(time.Hour))
		if !reflect.DeepEqual(fired, want) {
			t.Fatalf("run %d: tick order %v, want registration order %v", run, fired, want)
		}
	}
}
