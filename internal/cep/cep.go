// Package cep is a small complex-event-processing engine, the "detect" half
// of the paper's detect/respond architecture (Section 5): "actions are taken
// on patterns of events, e.g. detected by complex-event methods". The
// policy engine subscribes to detections and responds with reconfiguration.
//
// The engine is deterministic and single-threaded by design: callers feed
// events and advance time explicitly, so simulations and tests are exactly
// reproducible.
package cep

import (
	"fmt"
	"time"
)

// An Event is one observation: a typed occurrence with a timestamp, a
// source, and a numeric value (vital sign, meter reading, ...).
type Event struct {
	Type   string
	Source string
	Time   time.Time
	Value  float64
}

// A Detection is a matched pattern instance.
type Detection struct {
	// Pattern is the name of the pattern that fired.
	Pattern string
	// At is the event (or clock) time of the match.
	At time.Time
	// Events are the contributing events, oldest first.
	Events []Event
	// Value carries the aggregate value for aggregate patterns.
	Value float64
}

// A Pattern inspects the event stream. Implementations are stateful and not
// safe for concurrent use; the Engine serialises access.
type Pattern interface {
	// Name identifies the pattern in detections.
	Name() string
	// OnEvent observes one event and returns a detection if the pattern
	// completed.
	OnEvent(e Event) (Detection, bool)
	// OnTick observes time passing without events and may fire (absence
	// patterns).
	OnTick(now time.Time) (Detection, bool)
}

// An Engine multiplexes events over registered patterns and delivers
// detections to a handler.
type Engine struct {
	patterns []Pattern
	handler  func(Detection)
}

// NewEngine builds an engine delivering detections to handler.
func NewEngine(handler func(Detection)) *Engine {
	if handler == nil {
		handler = func(Detection) {}
	}
	return &Engine{handler: handler}
}

// Register adds a pattern.
func (e *Engine) Register(p Pattern) {
	e.patterns = append(e.patterns, p)
}

// Feed processes one event through every pattern.
func (e *Engine) Feed(ev Event) {
	for _, p := range e.patterns {
		if d, ok := p.OnEvent(ev); ok {
			e.handler(d)
		}
	}
}

// Advance moves the engine clock forward, giving time-driven patterns a
// chance to fire.
func (e *Engine) Advance(now time.Time) {
	for _, p := range e.patterns {
		if d, ok := p.OnTick(now); ok {
			e.handler(d)
		}
	}
}

// Threshold fires when at least Count events satisfying Match arrive within
// Window. After firing it resets, so sustained conditions re-fire once per
// window's worth of events.
type Threshold struct {
	PatternName string
	Match       func(Event) bool
	Count       int
	Window      time.Duration

	buf []Event
}

var _ Pattern = (*Threshold)(nil)

// Name implements Pattern.
func (t *Threshold) Name() string { return t.PatternName }

// OnEvent implements Pattern.
func (t *Threshold) OnEvent(e Event) (Detection, bool) {
	if t.Match != nil && !t.Match(e) {
		return Detection{}, false
	}
	t.buf = append(t.buf, e)
	// Evict events older than the window relative to the newest.
	cutoff := e.Time.Add(-t.Window)
	i := 0
	for i < len(t.buf) && t.buf[i].Time.Before(cutoff) {
		i++
	}
	t.buf = t.buf[i:]
	if len(t.buf) >= t.Count {
		events := make([]Event, len(t.buf))
		copy(events, t.buf)
		t.buf = t.buf[:0]
		return Detection{Pattern: t.PatternName, At: e.Time, Events: events}, true
	}
	return Detection{}, false
}

// OnTick implements Pattern; thresholds are purely event-driven.
func (t *Threshold) OnTick(time.Time) (Detection, bool) { return Detection{}, false }

// Sequence fires when events matching Steps occur in order within Window of
// the first step. Out-of-order events do not reset progress; expiry does.
type Sequence struct {
	PatternName string
	Steps       []func(Event) bool
	Window      time.Duration

	matched []Event
}

var _ Pattern = (*Sequence)(nil)

// Name implements Pattern.
func (s *Sequence) Name() string { return s.PatternName }

// OnEvent implements Pattern.
func (s *Sequence) OnEvent(e Event) (Detection, bool) {
	if len(s.Steps) == 0 {
		return Detection{}, false
	}
	// Expire a stale partial match.
	if len(s.matched) > 0 && e.Time.Sub(s.matched[0].Time) > s.Window {
		s.matched = s.matched[:0]
	}
	next := len(s.matched)
	if next < len(s.Steps) && s.Steps[next](e) {
		s.matched = append(s.matched, e)
		if len(s.matched) == len(s.Steps) {
			events := make([]Event, len(s.matched))
			copy(events, s.matched)
			s.matched = s.matched[:0]
			return Detection{Pattern: s.PatternName, At: e.Time, Events: events}, true
		}
	}
	return Detection{}, false
}

// OnTick implements Pattern.
func (s *Sequence) OnTick(time.Time) (Detection, bool) { return Detection{}, false }

// Absence fires when no matching event has been seen for Timeout — the
// heartbeat-loss detector ("how to deal with components no longer
// accessible, intermittently connected or mobile?", Challenge 6). It arms on
// the first matching event and re-fires at most once per silence.
type Absence struct {
	PatternName string
	Match       func(Event) bool
	Timeout     time.Duration

	lastSeen time.Time
	armed    bool
}

var _ Pattern = (*Absence)(nil)

// Name implements Pattern.
func (a *Absence) Name() string { return a.PatternName }

// OnEvent implements Pattern.
func (a *Absence) OnEvent(e Event) (Detection, bool) {
	if a.Match != nil && !a.Match(e) {
		return Detection{}, false
	}
	a.lastSeen = e.Time
	a.armed = true
	return Detection{}, false
}

// OnTick implements Pattern.
func (a *Absence) OnTick(now time.Time) (Detection, bool) {
	if !a.armed || now.Sub(a.lastSeen) < a.Timeout {
		return Detection{}, false
	}
	a.armed = false // fire once per silence
	return Detection{Pattern: a.PatternName, At: now}, true
}

// AggKind selects the aggregate function.
type AggKind int

// Aggregate kinds.
const (
	AggAvg AggKind = iota + 1
	AggMin
	AggMax
)

// String implements fmt.Stringer.
func (k AggKind) String() string {
	switch k {
	case AggAvg:
		return "avg"
	case AggMin:
		return "min"
	case AggMax:
		return "max"
	default:
		return fmt.Sprintf("AggKind(%d)", int(k))
	}
}

// Aggregate fires when the aggregate of matching events' values over a
// sliding Window crosses Limit in the direction given by Above. It requires
// at least MinCount events before judging, to avoid firing on a single
// outlier.
type Aggregate struct {
	PatternName string
	Match       func(Event) bool
	Kind        AggKind
	Window      time.Duration
	Limit       float64
	Above       bool
	MinCount    int

	buf []Event
}

var _ Pattern = (*Aggregate)(nil)

// Name implements Pattern.
func (a *Aggregate) Name() string { return a.PatternName }

// OnEvent implements Pattern.
func (a *Aggregate) OnEvent(e Event) (Detection, bool) {
	if a.Match != nil && !a.Match(e) {
		return Detection{}, false
	}
	a.buf = append(a.buf, e)
	cutoff := e.Time.Add(-a.Window)
	i := 0
	for i < len(a.buf) && a.buf[i].Time.Before(cutoff) {
		i++
	}
	a.buf = a.buf[i:]
	minCount := a.MinCount
	if minCount < 1 {
		minCount = 1
	}
	if len(a.buf) < minCount {
		return Detection{}, false
	}
	val := a.buf[0].Value
	sum := 0.0
	for _, ev := range a.buf {
		sum += ev.Value
		switch a.Kind {
		case AggMin:
			if ev.Value < val {
				val = ev.Value
			}
		case AggMax:
			if ev.Value > val {
				val = ev.Value
			}
		}
	}
	if a.Kind == AggAvg {
		val = sum / float64(len(a.buf))
	}
	crossed := (a.Above && val > a.Limit) || (!a.Above && val < a.Limit)
	if !crossed {
		return Detection{}, false
	}
	events := make([]Event, len(a.buf))
	copy(events, a.buf)
	a.buf = a.buf[:0]
	return Detection{Pattern: a.PatternName, At: e.Time, Events: events, Value: val}, true
}

// OnTick implements Pattern.
func (a *Aggregate) OnTick(time.Time) (Detection, bool) { return Detection{}, false }
