package cep

import (
	"fmt"
	"time"

	"lciot/internal/telemetry"
)

// An Event is one observation: a typed occurrence with a timestamp, a
// source, and a numeric value (vital sign, meter reading, ...).
type Event struct {
	Type   string
	Source string
	Time   time.Time
	Value  float64
	// Stage is the stage clock of the message that carried the event (nil
	// for unattributed flows): application sinks that feed the bus into CEP
	// thread it through so the deliver→detect edge is marked when a pattern
	// fires on this event.
	Stage *telemetry.StageClock
}

// A Detection is a matched pattern instance.
type Detection struct {
	// Pattern is the name of the pattern that fired.
	Pattern string
	// At is the event (or clock) time of the match.
	At time.Time
	// Events are the contributing events, oldest first.
	Events []Event
	// Value carries the aggregate value for aggregate patterns.
	Value float64
	// Stage is the stage clock of the event that completed the pattern
	// (nil for unattributed flows), threaded on so the policy layer can
	// mark the detect→decide edge.
	Stage *telemetry.StageClock
}

// A Pattern inspects the event stream. Implementations are stateful and not
// safe for concurrent use; the Engine serialises access.
type Pattern interface {
	// Name identifies the pattern in detections.
	Name() string
	// OnEvent observes one event and returns a detection if the pattern
	// completed.
	OnEvent(e Event) (Detection, bool)
	// OnTick observes time passing without events and may fire (absence
	// patterns).
	OnTick(now time.Time) (Detection, bool)
}

// A TypedPattern is a Pattern that declares the event types it subscribes
// to. The Engine uses the declaration to index the pattern by type, so
// feeding an event costs work proportional to the patterns that can match
// it, not to every registered pattern. An empty (or nil) declaration means
// "all types": the pattern lands in the engine's catch-all bucket and sees
// every event, exactly like a plain Pattern.
//
// Declaring types is a contract: a TypedPattern's OnEvent must ignore
// events whose Type is outside its declaration (the built-in patterns
// enforce this themselves), so indexed delivery is observably identical to
// feeding every pattern linearly.
type TypedPattern interface {
	Pattern
	// EventTypes lists the event types the pattern subscribes to; empty
	// means every type.
	EventTypes() []string
}

// An indexed is one registered pattern plus its registration sequence
// number, which fixes delivery order when merging index buckets.
type indexed struct {
	seq int
	p   Pattern
}

// An Engine multiplexes events over registered patterns and delivers
// detections to a handler. Patterns declaring event types (TypedPattern)
// are indexed by type; the rest live in a catch-all bucket. Feed merges the
// event type's bucket with the catch-all bucket in registration order, so
// detections arrive exactly as they would from a linear walk over every
// pattern.
type Engine struct {
	// patterns holds every registered pattern in registration order; Advance
	// iterates it so tick delivery is deterministic.
	patterns []Pattern
	byType   map[string][]indexed
	catchAll []indexed
	handler  func(Detection)
}

// NewEngine builds an engine delivering detections to handler.
func NewEngine(handler func(Detection)) *Engine {
	if handler == nil {
		handler = func(Detection) {}
	}
	return &Engine{handler: handler, byType: make(map[string][]indexed)}
}

// Register adds a pattern. Patterns implementing TypedPattern with a
// non-empty declaration are indexed under each declared type; all others
// see every event.
func (e *Engine) Register(p Pattern) {
	entry := indexed{seq: len(e.patterns), p: p}
	e.patterns = append(e.patterns, p)
	if tp, ok := p.(TypedPattern); ok {
		types := tp.EventTypes()
		if len(types) > 0 {
			seen := make(map[string]struct{}, len(types))
			for _, t := range types {
				if _, dup := seen[t]; dup {
					continue // a duplicate declaration must not double-deliver
				}
				seen[t] = struct{}{}
				e.byType[t] = append(e.byType[t], entry)
			}
			return
		}
	}
	e.catchAll = append(e.catchAll, entry)
}

// cepFeedHist times Feed end to end — the per-event cost of complex event
// processing (zero-cost while telemetry is disabled).
var cepFeedHist = telemetry.NewHistogram("cep_feed_ns")

// Feed processes one event through the patterns subscribed to its type
// (plus the catch-all bucket), in registration order.
func (e *Engine) Feed(ev Event) {
	start := cepFeedHist.Start()
	typed := e.byType[ev.Type]
	all := e.catchAll
	// Merge the two seq-sorted buckets so delivery order matches a linear
	// walk over every registered pattern.
	i, j := 0, 0
	for i < len(typed) || j < len(all) {
		var p Pattern
		if j >= len(all) || (i < len(typed) && typed[i].seq < all[j].seq) {
			p = typed[i].p
			i++
		} else {
			p = all[j].p
			j++
		}
		if d, ok := p.OnEvent(ev); ok {
			// Stage attribution: the completing event's clock rides on the
			// detection, and the deliver→detect edge closes here (nil-safe).
			d.Stage = ev.Stage
			ev.Stage.MarkDetect()
			e.handler(d)
		}
	}
	cepFeedHist.ObserveSince(start)
}

// Advance moves the engine clock forward, giving time-driven patterns a
// chance to fire. Patterns tick in registration order, so delivery is
// deterministic across runs regardless of how patterns are indexed.
func (e *Engine) Advance(now time.Time) {
	for _, p := range e.patterns {
		if d, ok := p.OnTick(now); ok {
			e.handler(d)
		}
	}
}

// A Purger is a Pattern that can drop buffered events matching a
// predicate. The built-in windowed patterns implement it, so an erasure
// obligation can purge an erased subject's events from live detection
// windows — otherwise a pattern could still fire on (and thereby leak)
// data that is legally gone.
type Purger interface {
	// PurgeEvents drops buffered events the predicate accepts and returns
	// how many were dropped.
	PurgeEvents(match func(Event) bool) int
}

// Purge drops matching events from every registered pattern's window and
// returns the total dropped. Patterns that buffer no events (or do not
// implement Purger) are unaffected.
func (e *Engine) Purge(match func(Event) bool) int {
	n := 0
	for _, p := range e.patterns {
		if pr, ok := p.(Purger); ok {
			n += pr.PurgeEvents(match)
		}
	}
	return n
}

// purgeEvents filters buf in place, dropping events the predicate accepts.
// The freed tail is zeroed so erased event values do not linger in the
// backing array (erasure means gone from memory too, not just unreachable
// through the slice header).
func purgeEvents(buf []Event, match func(Event) bool) ([]Event, int) {
	kept := buf[:0]
	for _, ev := range buf {
		if !match(ev) {
			kept = append(kept, ev)
		}
	}
	n := len(buf) - len(kept)
	clear(buf[len(kept):])
	return kept, n
}

// typeMatch reports whether an event type is within a declaration; an empty
// declaration admits everything.
func typeMatch(types []string, t string) bool {
	if len(types) == 0 {
		return true
	}
	for _, x := range types {
		if x == t {
			return true
		}
	}
	return false
}

// sourceMatch reports whether an event source is within a declaration; an
// empty declaration admits everything.
func sourceMatch(sources []string, s string) bool {
	if len(sources) == 0 {
		return true
	}
	for _, x := range sources {
		if x == s {
			return true
		}
	}
	return false
}

// Threshold fires when at least Count events satisfying Match arrive within
// Window. After firing it resets, so sustained conditions re-fire once per
// window's worth of events.
type Threshold struct {
	PatternName string
	// Types optionally restricts the pattern to these event types; empty
	// means every type. Declared types let the Engine index the pattern.
	Types []string
	// Sources optionally restricts the pattern to events from these
	// sources; empty means every source. Declared sources let the
	// ShardedEngine home the pattern on one dispatch lane.
	Sources []string
	Match   func(Event) bool
	Count   int
	Window  time.Duration

	buf []Event
}

var _ TypedPattern = (*Threshold)(nil)

var _ SourceAffine = (*Threshold)(nil)

// Name implements Pattern.
func (t *Threshold) Name() string { return t.PatternName }

// EventTypes implements TypedPattern.
func (t *Threshold) EventTypes() []string { return t.Types }

// EventSources implements SourceAffine.
func (t *Threshold) EventSources() []string { return t.Sources }

// OnEvent implements Pattern.
func (t *Threshold) OnEvent(e Event) (Detection, bool) {
	if !typeMatch(t.Types, e.Type) {
		return Detection{}, false
	}
	if !sourceMatch(t.Sources, e.Source) {
		return Detection{}, false
	}
	if t.Match != nil && !t.Match(e) {
		return Detection{}, false
	}
	t.buf = append(t.buf, e)
	// Evict events older than the window relative to the newest.
	cutoff := e.Time.Add(-t.Window)
	i := 0
	for i < len(t.buf) && t.buf[i].Time.Before(cutoff) {
		i++
	}
	t.buf = t.buf[i:]
	if len(t.buf) >= t.Count {
		events := make([]Event, len(t.buf))
		copy(events, t.buf)
		t.buf = t.buf[:0]
		return Detection{Pattern: t.PatternName, At: e.Time, Events: events}, true
	}
	return Detection{}, false
}

// OnTick implements Pattern; thresholds are purely event-driven.
func (t *Threshold) OnTick(time.Time) (Detection, bool) { return Detection{}, false }

// PurgeEvents implements Purger.
func (t *Threshold) PurgeEvents(match func(Event) bool) int {
	var n int
	t.buf, n = purgeEvents(t.buf, match)
	return n
}

// Sequence fires when events matching Steps occur in order within Window of
// the first step. Out-of-order events do not reset progress; expiry does.
type Sequence struct {
	PatternName string
	// Types optionally restricts the pattern to these event types; empty
	// means every type. Declared types let the Engine index the pattern.
	Types []string
	// Sources optionally restricts the pattern to events from these
	// sources; empty means every source. Declared sources let the
	// ShardedEngine home the pattern on one dispatch lane.
	Sources []string
	Steps   []func(Event) bool
	Window  time.Duration

	matched []Event
}

var _ TypedPattern = (*Sequence)(nil)

var _ SourceAffine = (*Sequence)(nil)

// Name implements Pattern.
func (s *Sequence) Name() string { return s.PatternName }

// EventTypes implements TypedPattern.
func (s *Sequence) EventTypes() []string { return s.Types }

// EventSources implements SourceAffine.
func (s *Sequence) EventSources() []string { return s.Sources }

// OnEvent implements Pattern.
func (s *Sequence) OnEvent(e Event) (Detection, bool) {
	if !typeMatch(s.Types, e.Type) {
		return Detection{}, false
	}
	if !sourceMatch(s.Sources, e.Source) {
		return Detection{}, false
	}
	if len(s.Steps) == 0 {
		return Detection{}, false
	}
	// Expire a stale partial match.
	if len(s.matched) > 0 && e.Time.Sub(s.matched[0].Time) > s.Window {
		s.matched = s.matched[:0]
	}
	next := len(s.matched)
	if next < len(s.Steps) && s.Steps[next](e) {
		s.matched = append(s.matched, e)
		if len(s.matched) == len(s.Steps) {
			events := make([]Event, len(s.matched))
			copy(events, s.matched)
			s.matched = s.matched[:0]
			return Detection{Pattern: s.PatternName, At: e.Time, Events: events}, true
		}
	}
	return Detection{}, false
}

// OnTick implements Pattern.
func (s *Sequence) OnTick(time.Time) (Detection, bool) { return Detection{}, false }

// PurgeEvents implements Purger. Dropping a matched step resets the whole
// partial match: the remaining steps alone no longer witness the sequence.
func (s *Sequence) PurgeEvents(match func(Event) bool) int {
	for _, ev := range s.matched {
		if match(ev) {
			n := len(s.matched)
			s.matched = s.matched[:0]
			return n
		}
	}
	return 0
}

// Absence fires when no matching event has been seen for Timeout — the
// heartbeat-loss detector ("how to deal with components no longer
// accessible, intermittently connected or mobile?", Challenge 6). It arms on
// the first matching event and re-fires at most once per silence.
type Absence struct {
	PatternName string
	// Types optionally restricts the pattern to these event types; empty
	// means every type. Declared types let the Engine index the pattern.
	Types []string
	// Sources optionally restricts the pattern to events from these
	// sources; empty means every source. Declared sources let the
	// ShardedEngine home the pattern on one dispatch lane.
	Sources []string
	Match   func(Event) bool
	Timeout time.Duration

	lastSeen time.Time
	armed    bool
}

var _ TypedPattern = (*Absence)(nil)

var _ SourceAffine = (*Absence)(nil)

// Name implements Pattern.
func (a *Absence) Name() string { return a.PatternName }

// EventTypes implements TypedPattern.
func (a *Absence) EventTypes() []string { return a.Types }

// EventSources implements SourceAffine.
func (a *Absence) EventSources() []string { return a.Sources }

// OnEvent implements Pattern.
func (a *Absence) OnEvent(e Event) (Detection, bool) {
	if !typeMatch(a.Types, e.Type) {
		return Detection{}, false
	}
	if !sourceMatch(a.Sources, e.Source) {
		return Detection{}, false
	}
	if !sourceMatch(a.Sources, e.Source) {
		return Detection{}, false
	}
	if a.Match != nil && !a.Match(e) {
		return Detection{}, false
	}
	a.lastSeen = e.Time
	a.armed = true
	return Detection{}, false
}

// OnTick implements Pattern.
func (a *Absence) OnTick(now time.Time) (Detection, bool) {
	if !a.armed || now.Sub(a.lastSeen) < a.Timeout {
		return Detection{}, false
	}
	a.armed = false // fire once per silence
	return Detection{Pattern: a.PatternName, At: now}, true
}

// AggKind selects the aggregate function.
type AggKind int

// Aggregate kinds.
const (
	AggAvg AggKind = iota + 1
	AggMin
	AggMax
)

// String implements fmt.Stringer.
func (k AggKind) String() string {
	switch k {
	case AggAvg:
		return "avg"
	case AggMin:
		return "min"
	case AggMax:
		return "max"
	default:
		return fmt.Sprintf("AggKind(%d)", int(k))
	}
}

// Aggregate fires when the aggregate of matching events' values over a
// sliding Window crosses Limit in the direction given by Above. It requires
// at least MinCount events before judging, to avoid firing on a single
// outlier.
type Aggregate struct {
	PatternName string
	// Types optionally restricts the pattern to these event types; empty
	// means every type. Declared types let the Engine index the pattern.
	Types []string
	// Sources optionally restricts the pattern to events from these
	// sources; empty means every source. Declared sources let the
	// ShardedEngine home the pattern on one dispatch lane.
	Sources  []string
	Match    func(Event) bool
	Kind     AggKind
	Window   time.Duration
	Limit    float64
	Above    bool
	MinCount int

	buf []Event
}

var _ TypedPattern = (*Aggregate)(nil)

var _ SourceAffine = (*Aggregate)(nil)

// Name implements Pattern.
func (a *Aggregate) Name() string { return a.PatternName }

// EventTypes implements TypedPattern.
func (a *Aggregate) EventTypes() []string { return a.Types }

// EventSources implements SourceAffine.
func (a *Aggregate) EventSources() []string { return a.Sources }

// OnEvent implements Pattern.
func (a *Aggregate) OnEvent(e Event) (Detection, bool) {
	if !typeMatch(a.Types, e.Type) {
		return Detection{}, false
	}
	if a.Match != nil && !a.Match(e) {
		return Detection{}, false
	}
	a.buf = append(a.buf, e)
	cutoff := e.Time.Add(-a.Window)
	i := 0
	for i < len(a.buf) && a.buf[i].Time.Before(cutoff) {
		i++
	}
	a.buf = a.buf[i:]
	minCount := a.MinCount
	if minCount < 1 {
		minCount = 1
	}
	if len(a.buf) < minCount {
		return Detection{}, false
	}
	val := a.buf[0].Value
	sum := 0.0
	for _, ev := range a.buf {
		sum += ev.Value
		switch a.Kind {
		case AggMin:
			if ev.Value < val {
				val = ev.Value
			}
		case AggMax:
			if ev.Value > val {
				val = ev.Value
			}
		}
	}
	if a.Kind == AggAvg {
		val = sum / float64(len(a.buf))
	}
	crossed := (a.Above && val > a.Limit) || (!a.Above && val < a.Limit)
	if !crossed {
		return Detection{}, false
	}
	events := make([]Event, len(a.buf))
	copy(events, a.buf)
	a.buf = a.buf[:0]
	return Detection{Pattern: a.PatternName, At: e.Time, Events: events, Value: val}, true
}

// OnTick implements Pattern.
func (a *Aggregate) OnTick(time.Time) (Detection, bool) { return Detection{}, false }

// PurgeEvents implements Purger.
func (a *Aggregate) PurgeEvents(match func(Event) bool) int {
	var n int
	a.buf, n = purgeEvents(a.buf, match)
	return n
}
