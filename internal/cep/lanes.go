package cep

import (
	"sync"
	"sync/atomic"
	"time"

	"lciot/internal/lanehash"
)

// A SourceAffine is a Pattern that declares the event sources (component
// names) it subscribes to. The ShardedEngine uses the declaration to home
// the pattern on one dispatch lane: when every declared source hashes to
// the same lane, the pattern lives there and only that lane's lock is
// ever taken to feed it. Patterns without a declaration — or whose
// sources span lanes (cross-shard correlations) — land in the broadcast
// set and see every event.
//
// Declaring sources is a contract, exactly like TypedPattern's type
// declaration: OnEvent must ignore events whose Source is outside the
// declaration (the built-in patterns enforce this themselves), so
// partitioned delivery is observably identical to feeding every pattern.
type SourceAffine interface {
	Pattern
	// EventSources lists the sources the pattern subscribes to; empty
	// means every source.
	EventSources() []string
}

// laneIdxFor maps an event source to a dispatch lane by the shared
// FNV-1a placement hash (internal/lanehash) — the same function the bus
// uses for components, so a component's events are detected on the lane
// whose bus shard delivers them: the shard dispatcher that invokes a
// sink handler feeds the very lane that owns the sink's patterns, and
// never blocks on another shard's detection state.
func laneIdxFor(source string, n int) int {
	return lanehash.Index(source, n)
}

// An engineLane is one dispatch lane: a plain Engine behind its own lock,
// collecting detections into a buffer that Feed/Advance hand to the
// sharded engine's handler after the lock is released.
type engineLane struct {
	mu      sync.Mutex
	eng     *Engine
	pending []Detection
	// npat counts registered patterns; Feed skips the broadcast lane's
	// lock entirely while the broadcast set is empty.
	npat atomic.Int32
	// evals counts events fed to this lane (lifetime), one uncontended
	// atomic add per feed — the lane-load signal skew reports roll up.
	evals atomic.Uint64
}

// take runs fn under the lane lock and returns the detections it
// produced, leaving the buffer empty for the next caller.
func (ln *engineLane) take(fn func(e *Engine)) []Detection {
	ln.mu.Lock()
	fn(ln.eng)
	dets := ln.pending
	ln.pending = nil
	ln.mu.Unlock()
	return dets
}

// A ShardedEngine partitions pattern dispatch across n lanes keyed by the
// event's Source — the same FNV-1a component hash the sharded bus uses —
// so concurrent feeders on different lanes detect in parallel, each lane
// behind its own lock. Patterns homed on a lane (SourceAffine, all
// declared sources on that lane) see only that lane's events; everything
// else lives in a small broadcast lane that sees every event and is the
// only cross-lane serialization point. A 1-lane engine holds every
// pattern on lane 0 and behaves exactly like a plain Engine.
//
// Detections are delivered to the handler after the lane lock is
// released, so the handler may call Purge (erase-on-event does) and may
// itself run concurrently with feeds on other lanes — handlers must be
// safe for concurrent use on multi-lane engines. Within one lane,
// detection order is registration order, exactly as in Engine; ordering
// across lanes is whatever the feeders' concurrency produces.
type ShardedEngine struct {
	handler func(Detection)
	lanes   []*engineLane
	bcast   *engineLane
}

// NewShardedEngine builds an engine with n dispatch lanes (clamped to at
// least 1) delivering detections to handler.
func NewShardedEngine(n int, handler func(Detection)) *ShardedEngine {
	if n < 1 {
		n = 1
	}
	if handler == nil {
		handler = func(Detection) {}
	}
	se := &ShardedEngine{handler: handler, lanes: make([]*engineLane, n)}
	mkLane := func() *engineLane {
		ln := &engineLane{}
		ln.eng = NewEngine(func(d Detection) { ln.pending = append(ln.pending, d) })
		return ln
	}
	for i := range se.lanes {
		se.lanes[i] = mkLane()
	}
	se.bcast = mkLane()
	return se
}

// Lanes returns the engine's lane count.
func (se *ShardedEngine) Lanes() int { return len(se.lanes) }

// LaneEvals returns per-lane lifetime event counts (broadcast-set feeds
// are attributed to the source's numbered lane, where the event was
// counted). Lock-free.
func (se *ShardedEngine) LaneEvals() []uint64 {
	out := make([]uint64, len(se.lanes))
	for i, ln := range se.lanes {
		out[i] = ln.evals.Load()
	}
	return out
}

// LaneOf reports the dispatch lane events from the given source are fed
// to. The mapping is a pure function of the source name and the lane
// count, matching the bus's component placement.
func (se *ShardedEngine) LaneOf(source string) int {
	return laneIdxFor(source, len(se.lanes))
}

// homeLane picks where a pattern lives: the single lane every declared
// source hashes to, or the broadcast lane for undeclared and cross-lane
// patterns.
func (se *ShardedEngine) homeLane(p Pattern) *engineLane {
	if len(se.lanes) == 1 {
		return se.lanes[0] // single lane: exact Engine semantics, no broadcast split
	}
	sa, ok := p.(SourceAffine)
	if !ok {
		return se.bcast
	}
	srcs := sa.EventSources()
	if len(srcs) == 0 {
		return se.bcast
	}
	home := laneIdxFor(srcs[0], len(se.lanes))
	for _, s := range srcs[1:] {
		if laneIdxFor(s, len(se.lanes)) != home {
			return se.bcast // cross-lane correlation: broadcast set
		}
	}
	return se.lanes[home]
}

// Register adds a pattern, homing it by source affinity (see
// SourceAffine). Safe to call while other goroutines feed.
func (se *ShardedEngine) Register(p Pattern) {
	ln := se.homeLane(p)
	ln.mu.Lock()
	ln.eng.Register(p)
	ln.mu.Unlock()
	ln.npat.Add(1)
}

// Feed processes one event through the patterns on its source's lane and
// through the broadcast set, delivering detections (lane first, then
// broadcast, each in registration order) outside the lane locks. Feeders
// for sources on different lanes run in parallel.
func (se *ShardedEngine) Feed(ev Event) {
	ln := se.lanes[laneIdxFor(ev.Source, len(se.lanes))]
	ln.evals.Add(1)
	for _, d := range ln.take(func(e *Engine) { e.Feed(ev) }) {
		se.handler(d)
	}
	if se.bcast.npat.Load() == 0 {
		return
	}
	for _, d := range se.bcast.take(func(e *Engine) { e.Feed(ev) }) {
		se.handler(d)
	}
}

// Advance moves every lane's clock forward in lane order (numbered lanes,
// then broadcast), delivering each lane's detections before ticking the
// next, so time-driven delivery is deterministic for a quiescent engine.
func (se *ShardedEngine) Advance(now time.Time) {
	for _, ln := range se.lanes {
		for _, d := range ln.take(func(e *Engine) { e.Advance(now) }) {
			se.handler(d)
		}
	}
	if se.bcast.npat.Load() == 0 {
		return
	}
	for _, d := range se.bcast.take(func(e *Engine) { e.Advance(now) }) {
		se.handler(d)
	}
}

// Purge drops matching events from every lane's pattern windows and
// returns the total dropped. Lanes are purged one at a time under their
// own locks; no lock is held across lanes, so Purge is safe from inside
// a detection handler (handlers run outside the lane locks).
func (se *ShardedEngine) Purge(match func(Event) bool) int {
	n := 0
	for _, ln := range se.lanes {
		ln.mu.Lock()
		n += ln.eng.Purge(match)
		ln.mu.Unlock()
	}
	se.bcast.mu.Lock()
	n += se.bcast.eng.Purge(match)
	se.bcast.mu.Unlock()
	return n
}
