// Package cep is a small complex-event-processing engine, the "detect" half
// of the paper's detect/respond architecture (Section 5): "actions are taken
// on patterns of events, e.g. detected by complex-event methods". The
// policy engine subscribes to detections and responds with reconfiguration.
//
// The engine is deterministic and single-threaded by design: callers feed
// events and advance time explicitly, so simulations and tests are exactly
// reproducible.
//
// # Type-indexed dispatch
//
// Feeding an event costs work proportional to the patterns that can match
// it, not to every registered pattern. Patterns that implement
// TypedPattern (the built-in Threshold, Sequence, Absence and Aggregate do,
// via their Types field) are indexed by declared event type at Register
// time; patterns without a declaration land in a catch-all bucket that
// sees every event. Feed merges the event type's bucket with the catch-all
// bucket in registration order, so detections are delivered exactly as a
// linear walk over every pattern would deliver them — the index prunes
// work, never reorders or drops it. Advance always ticks patterns in
// registration order, keeping time-driven delivery deterministic too.
package cep
