// Package cep is a small complex-event-processing engine, the "detect" half
// of the paper's detect/respond architecture (Section 5): "actions are taken
// on patterns of events, e.g. detected by complex-event methods". The
// policy engine subscribes to detections and responds with reconfiguration.
//
// The package offers two engines over the same patterns. Engine is
// deterministic and externally serialized: callers feed events and
// advance time explicitly from one goroutine, so simulations and tests
// are exactly reproducible. ShardedEngine partitions dispatch across
// lanes for the domain's parallel pipeline (below); a 1-lane
// ShardedEngine behaves exactly like an Engine.
//
// # Type-indexed dispatch
//
// Feeding an event costs work proportional to the patterns that can match
// it, not to every registered pattern. Patterns that implement
// TypedPattern (the built-in Threshold, Sequence, Absence and Aggregate do,
// via their Types field) are indexed by declared event type at Register
// time; patterns without a declaration land in a catch-all bucket that
// sees every event. Feed merges the event type's bucket with the catch-all
// bucket in registration order, so detections are delivered exactly as a
// linear walk over every pattern would deliver them — the index prunes
// work, never reorders or drops it. Advance always ticks patterns in
// registration order, keeping time-driven delivery deterministic too.
//
// # Source-partitioned lanes
//
// ShardedEngine adds a second axis: patterns that declare their event
// sources (SourceAffine; the built-ins do, via their Sources field) are
// homed on the lane every declared source hashes to — the same FNV-1a
// placement hash the sharded bus uses for components
// (internal/lanehash) — so the bus dispatcher that delivers a
// component's message feeds the very lane that owns the component's
// patterns, under that lane's lock only. Patterns without a source
// declaration, or whose sources span lanes (cross-shard correlations),
// live in a small broadcast set that sees every event and is the single
// cross-lane serialization point. As with the type index, partitioning
// prunes work without changing semantics: source-declared patterns
// ignore events from other sources, so partitioned delivery is
// observably identical to feeding every pattern.
//
// Detections are handed to the ShardedEngine's handler after the lane
// lock is released, so handlers may re-enter the engine (the domain's
// erase-on-event obligation purges windows from inside a handler) and
// must be safe for concurrent use when feeders run in parallel.
package cep
