package cep

import (
	"testing"
	"time"
)

var t0 = time.Unix(1000, 0)

func at(sec float64) time.Time { return t0.Add(time.Duration(sec * float64(time.Second))) }

func collect() (*[]Detection, func(Detection)) {
	var out []Detection
	return &out, func(d Detection) { out = append(out, d) }
}

func TestThresholdFiresWithinWindow(t *testing.T) {
	got, handler := collect()
	e := NewEngine(handler)
	e.Register(&Threshold{
		PatternName: "tachycardia",
		Match:       func(ev Event) bool { return ev.Type == "heart-rate" && ev.Value > 120 },
		Count:       3,
		Window:      time.Minute,
	})

	e.Feed(Event{Type: "heart-rate", Time: at(0), Value: 130})
	e.Feed(Event{Type: "heart-rate", Time: at(1), Value: 80}) // below: ignored
	e.Feed(Event{Type: "heart-rate", Time: at(2), Value: 140})
	if len(*got) != 0 {
		t.Fatal("fired early")
	}
	e.Feed(Event{Type: "heart-rate", Time: at(3), Value: 150})
	if len(*got) != 1 {
		t.Fatalf("detections = %d, want 1", len(*got))
	}
	d := (*got)[0]
	if d.Pattern != "tachycardia" || len(d.Events) != 3 {
		t.Fatalf("detection = %+v", d)
	}
	// After firing the buffer resets: two more highs are not enough.
	e.Feed(Event{Type: "heart-rate", Time: at(4), Value: 150})
	e.Feed(Event{Type: "heart-rate", Time: at(5), Value: 150})
	if len(*got) != 1 {
		t.Fatal("re-fired without a full new window of events")
	}
}

func TestThresholdWindowEviction(t *testing.T) {
	got, handler := collect()
	e := NewEngine(handler)
	e.Register(&Threshold{PatternName: "burst", Count: 3, Window: 10 * time.Second})

	e.Feed(Event{Time: at(0)})
	e.Feed(Event{Time: at(5)})
	e.Feed(Event{Time: at(20)}) // first two expired
	if len(*got) != 0 {
		t.Fatal("fired across expired window")
	}
	e.Feed(Event{Time: at(21)})
	e.Feed(Event{Time: at(22)})
	if len(*got) != 1 {
		t.Fatalf("detections = %d, want 1", len(*got))
	}
}

func TestSequenceOrderedMatch(t *testing.T) {
	got, handler := collect()
	e := NewEngine(handler)
	typeIs := func(want string) func(Event) bool {
		return func(ev Event) bool { return ev.Type == want }
	}
	e.Register(&Sequence{
		PatternName: "door-then-motion-then-silence-breach",
		Steps:       []func(Event) bool{typeIs("door-open"), typeIs("motion"), typeIs("alarm-off")},
		Window:      time.Minute,
	})

	e.Feed(Event{Type: "motion", Time: at(0)}) // wrong first step: ignored
	e.Feed(Event{Type: "door-open", Time: at(1)})
	e.Feed(Event{Type: "motion", Time: at(2)})
	e.Feed(Event{Type: "temperature", Time: at(3)}) // unrelated: no reset
	e.Feed(Event{Type: "alarm-off", Time: at(4)})
	if len(*got) != 1 {
		t.Fatalf("detections = %d, want 1", len(*got))
	}
	if evs := (*got)[0].Events; len(evs) != 3 || evs[0].Type != "door-open" {
		t.Fatalf("events = %+v", evs)
	}
}

func TestSequenceWindowExpiry(t *testing.T) {
	got, handler := collect()
	e := NewEngine(handler)
	typeIs := func(want string) func(Event) bool {
		return func(ev Event) bool { return ev.Type == want }
	}
	e.Register(&Sequence{
		PatternName: "pair",
		Steps:       []func(Event) bool{typeIs("a"), typeIs("b")},
		Window:      10 * time.Second,
	})
	e.Feed(Event{Type: "a", Time: at(0)})
	e.Feed(Event{Type: "b", Time: at(30)}) // too late: partial match expired
	if len(*got) != 0 {
		t.Fatal("fired on expired sequence")
	}
	// The late "b" also did not restart a match; a fresh pair works.
	e.Feed(Event{Type: "a", Time: at(31)})
	e.Feed(Event{Type: "b", Time: at(32)})
	if len(*got) != 1 {
		t.Fatalf("detections = %d, want 1", len(*got))
	}
}

func TestSequenceEmptySteps(t *testing.T) {
	got, handler := collect()
	e := NewEngine(handler)
	e.Register(&Sequence{PatternName: "empty"})
	e.Feed(Event{Type: "x", Time: at(0)})
	if len(*got) != 0 {
		t.Fatal("empty sequence fired")
	}
}

func TestAbsenceDetection(t *testing.T) {
	got, handler := collect()
	e := NewEngine(handler)
	e.Register(&Absence{
		PatternName: "sensor-offline",
		Match:       func(ev Event) bool { return ev.Type == "heartbeat" },
		Timeout:     30 * time.Second,
	})

	// Not armed: silence before any heartbeat does not fire.
	e.Advance(at(100))
	if len(*got) != 0 {
		t.Fatal("fired before arming")
	}

	e.Feed(Event{Type: "heartbeat", Time: at(100)})
	e.Advance(at(120))
	if len(*got) != 0 {
		t.Fatal("fired within timeout")
	}
	e.Advance(at(131))
	if len(*got) != 1 {
		t.Fatalf("detections = %d, want 1", len(*got))
	}
	// Fires once per silence.
	e.Advance(at(200))
	if len(*got) != 1 {
		t.Fatal("re-fired during same silence")
	}
	// A new heartbeat re-arms.
	e.Feed(Event{Type: "heartbeat", Time: at(210)})
	e.Advance(at(300))
	if len(*got) != 2 {
		t.Fatalf("detections = %d, want 2", len(*got))
	}
}

func TestAggregateAverage(t *testing.T) {
	got, handler := collect()
	e := NewEngine(handler)
	e.Register(&Aggregate{
		PatternName: "avg-temp-high",
		Kind:        AggAvg,
		Window:      time.Minute,
		Limit:       30,
		Above:       true,
		MinCount:    3,
	})

	e.Feed(Event{Time: at(0), Value: 40})
	e.Feed(Event{Time: at(1), Value: 35})
	if len(*got) != 0 {
		t.Fatal("fired below MinCount")
	}
	e.Feed(Event{Time: at(2), Value: 33})
	if len(*got) != 1 {
		t.Fatalf("detections = %d, want 1", len(*got))
	}
	if v := (*got)[0].Value; v != 36 {
		t.Fatalf("aggregate value = %v, want 36", v)
	}
}

func TestAggregateMinBelow(t *testing.T) {
	got, handler := collect()
	e := NewEngine(handler)
	e.Register(&Aggregate{
		PatternName: "spo2-low",
		Kind:        AggMin,
		Window:      time.Minute,
		Limit:       90,
		Above:       false,
	})
	e.Feed(Event{Time: at(0), Value: 95})
	if len(*got) != 0 {
		t.Fatal("fired above limit")
	}
	e.Feed(Event{Time: at(1), Value: 88})
	if len(*got) != 1 {
		t.Fatalf("detections = %d, want 1", len(*got))
	}
	if v := (*got)[0].Value; v != 88 {
		t.Fatalf("min = %v", v)
	}
}

func TestAggregateMax(t *testing.T) {
	got, handler := collect()
	e := NewEngine(handler)
	e.Register(&Aggregate{
		PatternName: "spike",
		Kind:        AggMax,
		Window:      time.Minute,
		Limit:       100,
		Above:       true,
	})
	e.Feed(Event{Time: at(0), Value: 50})
	e.Feed(Event{Time: at(1), Value: 150})
	if len(*got) != 1 || (*got)[0].Value != 150 {
		t.Fatalf("detections = %+v", *got)
	}
}

func TestEngineMultiplePatterns(t *testing.T) {
	got, handler := collect()
	e := NewEngine(handler)
	e.Register(&Threshold{PatternName: "p1", Count: 1, Window: time.Minute})
	e.Register(&Threshold{PatternName: "p2", Count: 1, Window: time.Minute})
	e.Feed(Event{Time: at(0)})
	if len(*got) != 2 {
		t.Fatalf("detections = %d, want 2 (both patterns)", len(*got))
	}
}

func TestEngineNilHandler(t *testing.T) {
	e := NewEngine(nil)
	e.Register(&Threshold{PatternName: "p", Count: 1, Window: time.Minute})
	e.Feed(Event{Time: at(0)}) // must not panic
	e.Advance(at(1))
}

func TestAggKindString(t *testing.T) {
	if AggAvg.String() != "avg" || AggMin.String() != "min" || AggMax.String() != "max" {
		t.Fatal("agg kind strings")
	}
	if AggKind(9).String() != "AggKind(9)" {
		t.Fatal("unknown agg kind")
	}
}
