// Package sticky implements the baseline the paper compares its approach
// against (Section 10.2): sticky policies [21, 71], "where data is
// encrypted along with the policy to be applied to that data. To obtain
// the decryption key from a Trusted Authority, a party must agree to
// enforce the policy."
//
// It exists so the comparison is executable rather than rhetorical. The
// paper's two criticisms are reproduced as observable behaviour:
//
//  1. Trust-based enforcement: the authority records an *agreement*, not
//     enforcement. After decryption nothing constrains the data —
//     demonstrated by tests in which an agreeing party re-shares plaintext
//     freely, which the IFC middleware would deny and audit.
//  2. Heavyweight per-datum machinery: every protected datum costs an
//     AES-256-GCM encryption plus an authority round trip for the first
//     access — benchmark B11 compares this with the middleware's label
//     checks.
//
// The implementation uses stdlib AES-GCM with random nonces and per-bundle
// random keys held by the authority.
package sticky

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/rand"
	"encoding/json"
	"errors"
	"fmt"
	"sync"

	"lciot/internal/ifc"
)

// Errors reported by the sticky-policy scheme.
var (
	ErrNoBundle  = errors.New("sticky: unknown bundle")
	ErrNoConsent = errors.New("sticky: party has not agreed to the policy")
	ErrTampered  = errors.New("sticky: bundle fails authentication")
)

// A Policy is the human/machine-readable obligation stuck to the data.
// Unlike IFC labels it has no enforcement semantics — it is a promise the
// recipient agrees to.
type Policy struct {
	// Text states the obligation, e.g. "medical data: do not re-share".
	Text string `json:"text"`
	// AllowedPurposes enumerate what the recipient may do.
	AllowedPurposes []string `json:"allowed_purposes,omitempty"`
}

// A Bundle is the unit that travels: ciphertext with the policy attached in
// the clear (the policy must be readable before agreement).
type Bundle struct {
	ID         string `json:"id"`
	Policy     Policy `json:"policy"`
	Nonce      []byte `json:"nonce"`
	Ciphertext []byte `json:"ciphertext"`
}

// Marshal serialises a bundle for transport.
func (b *Bundle) Marshal() ([]byte, error) { return json.Marshal(b) }

// UnmarshalBundle parses a serialised bundle.
func UnmarshalBundle(data []byte) (*Bundle, error) {
	var b Bundle
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("sticky: parse bundle: %w", err)
	}
	return &b, nil
}

// An Authority is the trusted third party holding decryption keys. It
// releases a bundle's key to any principal that has agreed to the bundle's
// policy — and that is the entirety of the enforcement.
type Authority struct {
	mu sync.Mutex
	// keys holds the per-bundle data keys.
	keys map[string][]byte
	// agreements[bundleID][principal] records who promised what.
	agreements map[string]map[ifc.PrincipalID]struct{}
	// releases counts key hand-outs, for audit-by-counting (the scheme has
	// no flow audit; this is the best it offers).
	releases map[string]int
	nextID   uint64
}

// NewAuthority creates an empty authority.
func NewAuthority() *Authority {
	return &Authority{
		keys:       make(map[string][]byte),
		agreements: make(map[string]map[ifc.PrincipalID]struct{}),
		releases:   make(map[string]int),
	}
}

// Seal encrypts data under a fresh key registered with the authority and
// returns the travelling bundle.
func (a *Authority) Seal(data []byte, p Policy) (*Bundle, error) {
	key := make([]byte, 32)
	if _, err := rand.Read(key); err != nil {
		return nil, fmt.Errorf("sticky: key generation: %w", err)
	}
	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, fmt.Errorf("sticky: %w", err)
	}
	gcm, err := cipher.NewGCM(block)
	if err != nil {
		return nil, fmt.Errorf("sticky: %w", err)
	}
	nonce := make([]byte, gcm.NonceSize())
	if _, err := rand.Read(nonce); err != nil {
		return nil, fmt.Errorf("sticky: nonce generation: %w", err)
	}

	a.mu.Lock()
	a.nextID++
	id := fmt.Sprintf("bundle-%d", a.nextID)
	a.keys[id] = key
	a.agreements[id] = make(map[ifc.PrincipalID]struct{})
	a.mu.Unlock()

	// Bind the policy text into the AEAD so policy-stripping is detected.
	aad, err := json.Marshal(p)
	if err != nil {
		return nil, fmt.Errorf("sticky: encode policy: %w", err)
	}
	ct := gcm.Seal(nil, nonce, data, aad)
	return &Bundle{ID: id, Policy: p, Nonce: nonce, Ciphertext: ct}, nil
}

// Agree records that the principal promises to honour the bundle's policy.
// Nothing verifies the promise, ever — that is the scheme's documented
// weakness.
func (a *Authority) Agree(principal ifc.PrincipalID, bundleID string) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	ag, ok := a.agreements[bundleID]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNoBundle, bundleID)
	}
	ag[principal] = struct{}{}
	return nil
}

// Open releases the plaintext to an agreeing principal. After this call the
// data is entirely outside any control regime.
func (a *Authority) Open(principal ifc.PrincipalID, b *Bundle) ([]byte, error) {
	a.mu.Lock()
	key, ok := a.keys[b.ID]
	if !ok {
		a.mu.Unlock()
		return nil, fmt.Errorf("%w: %q", ErrNoBundle, b.ID)
	}
	if _, agreed := a.agreements[b.ID][principal]; !agreed {
		a.mu.Unlock()
		return nil, fmt.Errorf("%w: %q for %q", ErrNoConsent, b.ID, principal)
	}
	a.releases[b.ID]++
	a.mu.Unlock()

	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, fmt.Errorf("sticky: %w", err)
	}
	gcm, err := cipher.NewGCM(block)
	if err != nil {
		return nil, fmt.Errorf("sticky: %w", err)
	}
	aad, err := json.Marshal(b.Policy)
	if err != nil {
		return nil, fmt.Errorf("sticky: encode policy: %w", err)
	}
	pt, err := gcm.Open(nil, b.Nonce, b.Ciphertext, aad)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrTampered, err)
	}
	return pt, nil
}

// Releases reports how many times a bundle's key has been handed out — the
// only visibility the scheme offers. Compare audit.Log, which records every
// attempted flow including denials.
func (a *Authority) Releases(bundleID string) int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.releases[bundleID]
}
