package sticky

import (
	"bytes"
	"errors"
	"testing"

	"lciot/internal/audit"
	"lciot/internal/ifc"
	"lciot/internal/oskernel"
)

func sealHello(t *testing.T) (*Authority, *Bundle) {
	t.Helper()
	a := NewAuthority()
	b, err := a.Seal([]byte("ann-vitals"), Policy{
		Text:            "medical data: do not re-share",
		AllowedPurposes: []string{"treatment"},
	})
	if err != nil {
		t.Fatal(err)
	}
	return a, b
}

func TestSealAgreeOpen(t *testing.T) {
	a, b := sealHello(t)

	// Without agreement the authority withholds the key.
	if _, err := a.Open("clinic", b); !errors.Is(err, ErrNoConsent) {
		t.Fatalf("open without consent = %v", err)
	}
	if err := a.Agree("clinic", b.ID); err != nil {
		t.Fatal(err)
	}
	pt, err := a.Open("clinic", b)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(pt, []byte("ann-vitals")) {
		t.Fatalf("plaintext = %q", pt)
	}
	if a.Releases(b.ID) != 1 {
		t.Fatalf("releases = %d", a.Releases(b.ID))
	}
}

func TestAgreeUnknownBundle(t *testing.T) {
	a := NewAuthority()
	if err := a.Agree("x", "ghost"); !errors.Is(err, ErrNoBundle) {
		t.Fatalf("agree ghost = %v", err)
	}
	if _, err := a.Open("x", &Bundle{ID: "ghost"}); !errors.Is(err, ErrNoBundle) {
		t.Fatalf("open ghost = %v", err)
	}
}

func TestPolicyStrippingDetected(t *testing.T) {
	a, b := sealHello(t)
	if err := a.Agree("clinic", b.ID); err != nil {
		t.Fatal(err)
	}
	// An intermediary rewrites the policy to something weaker.
	b.Policy.Text = "do whatever you like"
	if _, err := a.Open("clinic", b); !errors.Is(err, ErrTampered) {
		t.Fatalf("stripped policy = %v", err)
	}
}

func TestCiphertextTamperDetected(t *testing.T) {
	a, b := sealHello(t)
	if err := a.Agree("clinic", b.ID); err != nil {
		t.Fatal(err)
	}
	b.Ciphertext[0] ^= 0xFF
	if _, err := a.Open("clinic", b); !errors.Is(err, ErrTampered) {
		t.Fatalf("tampered ciphertext = %v", err)
	}
}

func TestBundleMarshalRoundTrip(t *testing.T) {
	a, b := sealHello(t)
	data, err := b.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalBundle(data)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Agree("clinic", back.ID); err != nil {
		t.Fatal(err)
	}
	if pt, err := a.Open("clinic", back); err != nil || string(pt) != "ann-vitals" {
		t.Fatalf("round-tripped open = %q, %v", pt, err)
	}
	if _, err := UnmarshalBundle([]byte("{")); err == nil {
		t.Fatal("garbage accepted")
	}
}

// TestBaselineComparisonPostDecryptionLeak demonstrates the paper's core
// criticism (Section 10.2): under sticky policies, once data is decrypted
// nothing prevents an agreeing-but-dishonest party from re-sharing it, and
// the authority's view shows nothing wrong. Under the IFC kernel the same
// re-share attempt is denied *and* audited.
func TestBaselineComparisonPostDecryptionLeak(t *testing.T) {
	// --- Sticky world ---
	a, b := sealHello(t)
	if err := a.Agree("dishonest-clinic", b.ID); err != nil {
		t.Fatal(err)
	}
	pt, err := a.Open("dishonest-clinic", b)
	if err != nil {
		t.Fatal(err)
	}
	// The clinic now "re-shares" the plaintext: nothing stops it, nothing
	// records it. The authority still believes one lawful release happened.
	leaked := append([]byte(nil), pt...)
	if len(leaked) == 0 {
		t.Fatal("no plaintext to leak")
	}
	if a.Releases(b.ID) != 1 {
		t.Fatalf("authority sees %d releases despite the leak", a.Releases(b.ID))
	}

	// --- IFC world: the same data, the same dishonest intent ---
	k := oskernel.NewKernel("node", nil)
	clinic := k.Boot("clinic", ifc.MustContext([]ifc.Tag{"medical", "ann"}, nil))
	if err := k.Create(clinic.PID(), "/records/ann"); err != nil {
		t.Fatal(err)
	}
	if err := k.Write(clinic.PID(), "/records/ann", pt); err != nil {
		t.Fatal(err)
	}
	// Re-sharing = writing into a public file: denied and audited.
	public := k.Boot("public-blog", ifc.SecurityContext{})
	if err := k.Create(public.PID(), "/www/post"); err != nil {
		t.Fatal(err)
	}
	if err := k.Write(clinic.PID(), "/www/post", pt); !errors.Is(err, ifc.ErrFlowDenied) {
		t.Fatalf("IFC re-share = %v, want denial", err)
	}
	denials := k.Log().Select(func(r audit.Record) bool { return r.Kind == audit.FlowDenied })
	if len(denials) != 1 {
		t.Fatalf("IFC denials audited = %d", len(denials))
	}
}

func TestConcurrentSealAndOpen(t *testing.T) {
	a := NewAuthority()
	done := make(chan error, 8)
	for i := 0; i < 8; i++ {
		go func() {
			b, err := a.Seal([]byte("x"), Policy{Text: "p"})
			if err != nil {
				done <- err
				return
			}
			if err := a.Agree("p", b.ID); err != nil {
				done <- err
				return
			}
			_, err = a.Open("p", b)
			done <- err
		}()
	}
	for i := 0; i < 8; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}
