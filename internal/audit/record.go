// Package audit provides the accountability plane of the middleware
// (Section 8.3 and Challenge 6): a tamper-evident, append-only log of every
// attempted data flow — permitted or denied — plus the provenance graph
// derived from it (data items, transformation processes and agents, per
// Fig. 11), with the ancestry and taint queries needed to "demonstrate
// compliance and aid accountability".
package audit

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash"
	"sync"
	"time"

	"lciot/internal/ifc"
)

// EventKind classifies audit records.
type EventKind int

// Event kinds. FlowDenied records are as important as FlowAllowed ones: the
// paper stresses recording "all attempted and permitted flows".
const (
	FlowAllowed EventKind = iota + 1
	FlowDenied
	ContextChange
	PrivilegeGrant
	Reconfiguration
	GateCrossing
	BreakGlass
	// ObligationScheduled records a data-management obligation (retention
	// deadline, erasure trigger) being registered for a datum.
	ObligationScheduled
	// ObligationExecuted records an obligation carried out (retention
	// expiry swept, erasure propagated).
	ObligationExecuted
	// ObligationRefused records an obligation the middleware could not
	// carry out (and why) — refusals are evidence too.
	ObligationRefused
	// Redaction records a tombstone being written over an earlier record:
	// the evidence that erasure reached the audit trail itself.
	Redaction
)

// String implements fmt.Stringer.
func (k EventKind) String() string {
	switch k {
	case FlowAllowed:
		return "flow-allowed"
	case FlowDenied:
		return "flow-denied"
	case ContextChange:
		return "context-change"
	case PrivilegeGrant:
		return "privilege-grant"
	case Reconfiguration:
		return "reconfiguration"
	case GateCrossing:
		return "gate-crossing"
	case BreakGlass:
		return "break-glass"
	case ObligationScheduled:
		return "obligation-scheduled"
	case ObligationExecuted:
		return "obligation-executed"
	case ObligationRefused:
		return "obligation-refused"
	case Redaction:
		return "redaction"
	default:
		return fmt.Sprintf("EventKind(%d)", int(k))
	}
}

// Layer identifies which enforcement level produced a record (Fig. 9/10:
// kernel vs messaging substrate vs middleware policy plane).
type Layer int

// Enforcement layers.
const (
	LayerKernel Layer = iota + 1
	LayerMessaging
	LayerPolicy
)

// String implements fmt.Stringer.
func (l Layer) String() string {
	switch l {
	case LayerKernel:
		return "kernel"
	case LayerMessaging:
		return "messaging"
	case LayerPolicy:
		return "policy"
	default:
		return fmt.Sprintf("Layer(%d)", int(l))
	}
}

// A Record is one audit event. Records are immutable once appended.
type Record struct {
	// Seq is the record's position in its log, assigned on append.
	Seq uint64 `json:"seq"`
	// Time is when the event occurred.
	Time time.Time `json:"time"`
	// Kind classifies the event.
	Kind EventKind `json:"kind"`
	// Layer is the enforcement level that produced the record.
	Layer Layer `json:"layer"`
	// Domain is the administrative domain of the enforcement point.
	Domain string `json:"domain,omitempty"`
	// Src and Dst identify the entities on either side of a flow; for
	// context changes Src is the entity and Dst is empty.
	Src ifc.EntityID `json:"src,omitempty"`
	Dst ifc.EntityID `json:"dst,omitempty"`
	// SrcCtx/DstCtx are the security contexts at enforcement time.
	SrcCtx ifc.SecurityContext `json:"src_ctx,omitempty"`
	DstCtx ifc.SecurityContext `json:"dst_ctx,omitempty"`
	// DataID identifies the datum that flowed, when known; provenance
	// derivation keys on it.
	DataID string `json:"data_id,omitempty"`
	// Agent is the principal on whose behalf the event happened.
	Agent ifc.PrincipalID `json:"agent,omitempty"`
	// Note carries a human-readable explanation (e.g. the denial reason).
	Note string `json:"note,omitempty"`
	// TraceID is the hex form of the flow-tracing context the message
	// carried (empty when the flow was unsampled). It correlates this
	// enforcement record with the performance spans in internal/telemetry:
	// the same 128-bit ID appears at every node a traced message crossed.
	TraceID string `json:"trace_id,omitempty"`

	// Redacted marks a chain-preserving tombstone: the record's payload
	// fields were zeroed by an erasure obligation while Seq, PrevHash and
	// the *original* Hash survive, so the chain still links through it.
	// A tombstone's content hash is unverifiable by construction — that is
	// the point — so verifiers check linkage only. Redacted is not part of
	// the hash preimage (the original hash predates the redaction).
	Redacted bool `json:"redacted,omitempty"`

	// PrevHash chains this record to its predecessor; Hash covers the whole
	// record including PrevHash, making any retrospective edit detectable.
	PrevHash [32]byte `json:"prev_hash"`
	Hash     [32]byte `json:"hash"`
}

// Redact returns the chain-preserving tombstone of r: Seq, Time, Kind,
// Layer, Domain, PrevHash and the original Hash survive so the chain still
// verifies end to end, while every payload field — entities, contexts,
// data id, agent, note — is zeroed. note records why ("retention expired",
// "erasure request"), which is obligation evidence, not payload.
func (r Record) Redact(note string) Record {
	return Record{
		Seq: r.Seq, Time: r.Time, Kind: r.Kind, Layer: r.Layer, Domain: r.Domain,
		Note: note, Redacted: true, PrevHash: r.PrevHash, Hash: r.Hash,
	}
}

// ValidTombstone reports whether a redacted record is structurally a
// tombstone: every payload field zeroed, exactly as Redact produces.
// Verifiers enforce this — a tombstone's content hash is unverifiable by
// design, so the Redacted flag may only ever *destroy* content; a record
// carrying payload under the flag is a forgery attempt, not an erasure.
func ValidTombstone(r *Record) bool {
	return r.Redacted && r.Src == "" && r.Dst == "" && r.DataID == "" && r.Agent == "" &&
		r.TraceID == "" && r.SrcCtx.IsPublic() && r.DstCtx.IsPublic()
}

// hashScratch bundles a reusable SHA-256 state with a reusable encoding
// buffer: audit ingest is a hot path, and a fresh hash.Hash plus per-field
// byte conversions would allocate on every record.
type hashScratch struct {
	h   hash.Hash
	buf []byte
}

var hasherPool = sync.Pool{
	New: func() any { return &hashScratch{h: sha256.New(), buf: make([]byte, 0, 512)} },
}

// computeHash derives the record's chained hash. Labels are interned with
// their canonical strings (package ifc), so the context fields hash without
// re-rendering; the whole computation is allocation-free in steady state.
//
// The hash preimage layout is an internal detail of this package version:
// chains and exported segments verify against the code that produced them,
// and the layout may change between versions (it is not a cross-version
// archival format). Offloaded segments that must stay verifiable across
// upgrades should pin the verifier version alongside the segment.
func computeHash(r *Record) [32]byte {
	s := hasherPool.Get().(*hashScratch)
	b := s.buf[:0]
	b = binary.BigEndian.AppendUint64(b, r.Seq)
	b = binary.BigEndian.AppendUint64(b, uint64(r.Time.Unix()))
	b = binary.BigEndian.AppendUint32(b, uint32(r.Time.Nanosecond()))
	b = append(b, byte(r.Kind), byte(r.Layer))
	for _, f := range [...]string{
		r.Domain, string(r.Src), string(r.Dst),
		r.SrcCtx.Secrecy.String(), r.SrcCtx.Integrity.String(),
		r.SrcCtx.Jurisdiction.String(), r.SrcCtx.Purpose.String(),
		r.DstCtx.Secrecy.String(), r.DstCtx.Integrity.String(),
		r.DstCtx.Jurisdiction.String(), r.DstCtx.Purpose.String(),
		r.DataID, string(r.Agent), r.Note, r.TraceID,
	} {
		b = binary.BigEndian.AppendUint32(b, uint32(len(f)))
		b = append(b, f...)
	}
	b = append(b, r.PrevHash[:]...)
	s.h.Reset()
	s.h.Write(b)
	var out [32]byte
	s.h.Sum(out[:0])
	s.buf = b
	hasherPool.Put(s)
	return out
}

// MarshalJSON gives records a stable wire form (hashes hex-encoded by the
// default array encoding is fine; we keep the default).
func (r Record) String() string {
	b, err := json.Marshal(r)
	if err != nil {
		return fmt.Sprintf("audit.Record{seq=%d, unprintable: %v}", r.Seq, err)
	}
	return string(b)
}
