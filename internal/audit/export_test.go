package audit

import (
	"testing"
)

func TestExportImportRoundTrip(t *testing.T) {
	l := NewLog(testClock())
	l.Append(flowRecord("a", "b", true))
	l.Append(flowRecord("b", "c", false))

	data, err := ExportJSON(l)
	if err != nil {
		t.Fatal(err)
	}
	recs, err := ImportRecords(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("imported %d records", len(recs))
	}
	// Hashes survive the round trip, so the chain verifies offline.
	if err := VerifySegment(recs, nil); err != nil {
		t.Fatalf("imported segment: %v", err)
	}
	if recs[1].Kind != FlowDenied || recs[1].Src != "b" {
		t.Fatalf("record content lost: %+v", recs[1])
	}
	// Hashes are preserved bit-for-bit, not recomputed on import.
	orig := l.Select(nil)
	for i := range orig {
		if recs[i].Hash != orig[i].Hash || recs[i].PrevHash != orig[i].PrevHash {
			t.Fatalf("record %d hashes changed across the round trip", i)
		}
	}
	// Tampering with an imported record is detected.
	recs[0].Note = "doctored"
	if err := VerifySegment(recs, nil); err == nil {
		t.Fatal("tampered import verified")
	}
	if _, err := ImportRecords([]byte("{")); err == nil {
		t.Fatal("garbage accepted")
	}
}

// TestPrunedSegmentExportImportVerify covers the offload path end to end:
// a pruned segment exported to JSON and re-imported still verifies —
// both against itself and against the first record the log retained —
// while any tampering with the imported copy is rejected.
func TestPrunedSegmentExportImportVerify(t *testing.T) {
	l := NewLog(testClock())
	for i := 0; i < 6; i++ {
		l.Append(flowRecord("a", "b", i%2 == 0))
	}
	segment := l.Prune(4)
	if len(segment) != 4 {
		t.Fatalf("pruned %d records", len(segment))
	}

	data, err := ExportJSONRecords(segment)
	if err != nil {
		t.Fatal(err)
	}
	imported, err := ImportRecords(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(imported) != 4 {
		t.Fatalf("imported %d records", len(imported))
	}

	// The imported segment verifies on its own...
	if err := VerifySegment(imported, nil); err != nil {
		t.Fatalf("pruned-then-imported segment: %v", err)
	}
	// ...and against the retained chain's first record, proving the
	// offloaded history and the live log are one continuous chain.
	retained := l.Select(nil)
	if err := VerifySegment(imported, &retained[0]); err != nil {
		t.Fatalf("segment does not chain into retained log: %v", err)
	}

	// Tampering anywhere in the imported copy is rejected: content...
	doctored := append([]Record(nil), imported...)
	doctored[2].Note = "doctored"
	if err := VerifySegment(doctored, nil); err == nil {
		t.Fatal("content-tampered segment verified")
	}
	// ...linkage...
	doctored = append([]Record(nil), imported...)
	doctored[2].PrevHash[0] ^= 1
	if err := VerifySegment(doctored, nil); err == nil {
		t.Fatal("linkage-tampered segment verified")
	}
	// ...and a segment spliced in front of the wrong follower.
	if err := VerifySegment(imported[:3], &retained[0]); err == nil {
		t.Fatal("mis-spliced segment verified against retained log")
	}
}
