package audit

import (
	"testing"
)

func TestExportImportRoundTrip(t *testing.T) {
	l := NewLog(testClock())
	l.Append(flowRecord("a", "b", true))
	l.Append(flowRecord("b", "c", false))

	data, err := ExportJSON(l)
	if err != nil {
		t.Fatal(err)
	}
	recs, err := ImportRecords(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("imported %d records", len(recs))
	}
	// Hashes survive the round trip, so the chain verifies offline.
	if err := VerifySegment(recs, nil); err != nil {
		t.Fatalf("imported segment: %v", err)
	}
	if recs[1].Kind != FlowDenied || recs[1].Src != "b" {
		t.Fatalf("record content lost: %+v", recs[1])
	}
	// Tampering with an imported record is detected.
	recs[0].Note = "doctored"
	if err := VerifySegment(recs, nil); err == nil {
		t.Fatal("tampered import verified")
	}
	if _, err := ImportRecords([]byte("{")); err == nil {
		t.Fatal("garbage accepted")
	}
}
