package audit

import (
	"encoding/binary"
	"errors"
	"fmt"
	"time"

	"lciot/internal/ifc"
)

// This file is the binary wire form of a Record for durable storage
// (internal/store) and any other consumer that needs a compact, canonical
// encoding with the hashes preserved. It follows the zero-alloc append
// style of msg.AppendBinary: the encoder appends to a caller-owned buffer,
// so steady-state encoding allocates nothing.
//
// Layout (all integers big-endian):
//
//	u8  version (recordWireV3)
//	u64 seq | s64 unixSec | u32 nsec | u8 kind | u8 layer | u8 flags
//	15 × (u32 len | bytes): domain, src, dst,
//	                        srcS, srcI, srcJ, srcP, dstS, dstI, dstJ, dstP,
//	                        dataID, agent, note, traceID
//	32B prevHash | 32B hash
//
// v2 extended v1 with the obligation facet labels of both contexts and a
// flags byte whose low bit marks a chain-preserving tombstone (a record
// redacted in place by an erasure obligation). v3 extends v2 with the
// flow-tracing ID, which is part of the hash preimage like every other
// payload field.
//
// Security-context labels travel as their canonical String forms (labels
// are interned, so String is a pointer read) and are re-interned by
// ifc.ParseLabel on decode; the hashes are carried verbatim, so a decoded
// record verifies against the same chain it was encoded from.

// recordWireV3 is the current binary record version byte.
const recordWireV3 = 3

// recordFlagRedacted marks a tombstone in the record flags byte.
const recordFlagRedacted = 1 << 0

// ErrRecordCodec is the sentinel for malformed binary records.
var ErrRecordCodec = errors.New("audit: malformed binary record")

// HashRecord recomputes the chained hash of r from its content and
// PrevHash. Verifiers that stream records from storage use it to check
// each record without materialising a whole segment.
func HashRecord(r *Record) [32]byte { return computeHash(r) }

// AppendRecordBinary appends the binary form of r to dst and returns the
// extended slice.
func AppendRecordBinary(dst []byte, r *Record) []byte {
	dst = append(dst, recordWireV3)
	dst = binary.BigEndian.AppendUint64(dst, r.Seq)
	dst = binary.BigEndian.AppendUint64(dst, uint64(r.Time.Unix()))
	dst = binary.BigEndian.AppendUint32(dst, uint32(r.Time.Nanosecond()))
	var flags byte
	if r.Redacted {
		flags |= recordFlagRedacted
	}
	dst = append(dst, byte(r.Kind), byte(r.Layer), flags)
	for _, f := range [...]string{
		r.Domain, string(r.Src), string(r.Dst),
		r.SrcCtx.Secrecy.String(), r.SrcCtx.Integrity.String(),
		r.SrcCtx.Jurisdiction.String(), r.SrcCtx.Purpose.String(),
		r.DstCtx.Secrecy.String(), r.DstCtx.Integrity.String(),
		r.DstCtx.Jurisdiction.String(), r.DstCtx.Purpose.String(),
		r.DataID, string(r.Agent), r.Note, r.TraceID,
	} {
		dst = binary.BigEndian.AppendUint32(dst, uint32(len(f)))
		dst = append(dst, f...)
	}
	dst = append(dst, r.PrevHash[:]...)
	dst = append(dst, r.Hash[:]...)
	return dst
}

// DecodeRecordBinary parses one binary record produced by
// AppendRecordBinary, consuming the whole input.
func DecodeRecordBinary(data []byte) (Record, error) {
	var r Record
	if len(data) < 1 {
		return r, fmt.Errorf("%w: empty record", ErrRecordCodec)
	}
	if data[0] != recordWireV3 {
		// The hash preimage changes with the record layout (see record.go),
		// so a cross-version decode could never chain-verify anyway: stores
		// written by another version must be read with that version.
		return r, fmt.Errorf("%w: record version %d, this build reads v%d (verify old stores with the lciot version that wrote them)",
			ErrRecordCodec, data[0], recordWireV3)
	}
	off := 1
	need := func(n int) error {
		if off+n > len(data) {
			return fmt.Errorf("%w: truncated at offset %d", ErrRecordCodec, off)
		}
		return nil
	}
	if err := need(8 + 8 + 4 + 3); err != nil {
		return r, err
	}
	r.Seq = binary.BigEndian.Uint64(data[off:])
	off += 8
	sec := int64(binary.BigEndian.Uint64(data[off:]))
	off += 8
	nsec := binary.BigEndian.Uint32(data[off:])
	off += 4
	r.Time = time.Unix(sec, int64(nsec)).UTC()
	r.Kind = EventKind(data[off])
	r.Layer = Layer(data[off+1])
	r.Redacted = data[off+2]&recordFlagRedacted != 0
	off += 3

	var fields [15]string
	for i := range fields {
		if err := need(4); err != nil {
			return r, err
		}
		n := int(binary.BigEndian.Uint32(data[off:]))
		off += 4
		if err := need(n); err != nil {
			return r, err
		}
		fields[i] = string(data[off : off+n])
		off += n
	}
	r.Domain = fields[0]
	r.Src = ifc.EntityID(fields[1])
	r.Dst = ifc.EntityID(fields[2])
	for i, dst := range [...]*ifc.Label{
		&r.SrcCtx.Secrecy, &r.SrcCtx.Integrity, &r.SrcCtx.Jurisdiction, &r.SrcCtx.Purpose,
		&r.DstCtx.Secrecy, &r.DstCtx.Integrity, &r.DstCtx.Jurisdiction, &r.DstCtx.Purpose,
	} {
		l, err := ifc.ParseLabel(fields[3+i])
		if err != nil {
			return r, fmt.Errorf("%w: context label %d: %v", ErrRecordCodec, i, err)
		}
		*dst = l
	}
	r.DataID = fields[11]
	r.Agent = ifc.PrincipalID(fields[12])
	r.Note = fields[13]
	r.TraceID = fields[14]

	if err := need(64); err != nil {
		return r, err
	}
	copy(r.PrevHash[:], data[off:off+32])
	copy(r.Hash[:], data[off+32:off+64])
	off += 64
	if off != len(data) {
		return r, fmt.Errorf("%w: %d trailing bytes", ErrRecordCodec, len(data)-off)
	}
	return r, nil
}
