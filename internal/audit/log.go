package audit

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"lciot/internal/fault"
	"lciot/internal/telemetry"
)

// fpSinkStall is the chaos seam in the async ingest pipeline: an armed
// delay stalls the hasher goroutine once per drained batch — publishers
// on the AppendAsync hot path then back up against the bounded staging
// lanes, which is exactly the backpressure behaviour soak drills verify.
var fpSinkStall = fault.New("audit.sink.stall")

// Errors reported by Log.
var (
	ErrChainBroken = errors.New("audit: hash chain broken")
	ErrPruned      = errors.New("audit: range pruned")
)

// A Log is a tamper-evident, append-only audit log. Every record's hash
// covers its content and its predecessor's hash; Verify detects any
// retrospective modification. Logs may be pruned from the front once a
// segment has been offloaded (Challenge 6: "can logs be offloaded to others
// for distributed audit?"), retaining the chain head so continuity remains
// checkable.
//
// Ingest has two paths. Append hashes and commits synchronously and
// returns the completed record. AppendAsync — the enforcement hot path —
// stages the record into a bounded per-lane buffer and returns
// immediately; a background hasher goroutine collects the staged lanes,
// merges them by arrival ticket, and commits the batch, assigning
// sequence numbers and chaining hashes. Flush blocks until every staged
// record is committed. Every read-side method (Len, Get, Select, Verify,
// HeadHash, Prune) flushes first, so observers always see a complete,
// verifiable chain; the tamper-evidence guarantees are identical on both
// paths.
//
// Staging is sharded: SetStagingLanes(n) gives the log n independent
// staging buffers, each behind its own lock, so concurrent producers
// (e.g. the bus's per-shard dispatchers) never contend on one ingest
// mutex. AppendAsyncLane stages into a chosen lane; AppendAsync uses
// lane 0. Chain head assignment stays serialized — only the hasher
// assigns Seq/PrevHash/Hash, in arrival-ticket order — so the sharded
// staging changes who waits where, never what the chain looks like:
// records staged by one goroutine always commit in that goroutine's
// program order, whatever lane mix it used.
//
// The zero value is ready to use (one staging lane).
type Log struct {
	mu      sync.Mutex
	records []Record
	// firstSeq is the sequence number of records[0]; it advances on prune.
	firstSeq uint64
	nextSeq  uint64
	// lastHash is the hash of the most recent record (or the pruned
	// checkpoint's hash).
	lastHash [32]byte
	now      func() time.Time
	// sinks receive a copy of each appended record (e.g. a domain-wide
	// collector, or a durable store). They must not block for long, and
	// must not call back into this log's blocking methods (Append, Flush
	// or any read-side method): async-path sinks run on the hasher
	// goroutine, where such a call would self-deadlock. Appending to a
	// *different* log is fine.
	sinks []func(Record)
	// sinkMu serialises commit+deliver so sinks observe records in exactly
	// chain order even under concurrent Append calls — durable sinks
	// (internal/store) rely on this to persist a contiguous chain.
	sinkMu sync.Mutex

	// lanes holds the per-shard staging buffers (lazily a single lane for
	// zero-value logs; see SetStagingLanes).
	lanes atomic.Pointer[[]stageLane]
	// tickets issues one arrival ticket per staged record, taken under the
	// staging lane's lock so each lane's buffer is ticket-ordered. The
	// hasher merges lanes by ticket, which defines chain order.
	tickets atomic.Uint64
	// draining is true while a hasher goroutine is live. The goroutine is
	// started on demand and exits when every lane empties, so idle logs
	// hold no background resources.
	draining atomic.Bool
	// flushMu guards completed; Flush waits on the watermark — completed
	// catching up with tickets-issued-as-of-the-call — not on full
	// quiescence, so it stays bounded under sustained ingest.
	flushMu   sync.Mutex
	flushCond *sync.Cond
	completed uint64
}

// A staged record is one AppendAsync payload parked in a lane buffer with
// the arrival ticket that fixes its place in the chain, plus the stage
// clock of the message that produced it (nil for unattributed flows): the
// hasher marks the decide→audit edge at commit.
type staged struct {
	ticket uint64
	rec    Record
	stage  *telemetry.StageClock
}

// A stageLane is one staging buffer: its own lock, its own backpressure
// condition, its own slice — plus lifetime ingest counters (records and
// approximate bytes staged), maintained under the same lock the producer
// already holds, so lane-load accounting costs no extra synchronisation.
// Producers on different lanes never touch the same lock.
type stageLane struct {
	mu      sync.Mutex
	cond    *sync.Cond
	buf     []staged
	records uint64
	bytes   uint64
}

// condLocked lazily builds the lane's backpressure condition variable;
// the lane's mu must be held.
func (ln *stageLane) condLocked() *sync.Cond {
	if ln.cond == nil {
		ln.cond = sync.NewCond(&ln.mu)
	}
	return ln.cond
}

// maxPending bounds each staging lane; enqueueing beyond it blocks until
// the hasher catches up (backpressure rather than unbounded memory).
const maxPending = 4096

// NewLog builds an empty log. A nil clock means time.Now.
func NewLog(clock func() time.Time) *Log {
	if clock == nil {
		clock = time.Now
	}
	return &Log{now: clock}
}

// clock returns the log's time source (zero-value logs use time.Now).
func (l *Log) clock() time.Time {
	if l.now == nil {
		return time.Now()
	}
	return l.now()
}

// AddSink registers a callback invoked for each appended record (on the
// appending goroutine for Append, on the hasher goroutine for AppendAsync).
// Sinks enable hierarchical collection: a thing's log forwards into its
// domain's log. See the Log doc comment for what sinks must not do.
func (l *Log) AddSink(sink func(Record)) {
	l.Flush()
	l.mu.Lock()
	defer l.mu.Unlock()
	l.sinks = append(l.sinks, sink)
}

// Append adds a record synchronously, assigning its sequence number,
// timestamp (when zero) and chained hash, and returns the completed record.
// Any records already enqueued via AppendAsync are committed first, so the
// chain reflects arrival order.
func (l *Log) Append(r Record) Record {
	l.Flush()
	if r.Time.IsZero() {
		r.Time = l.clock()
	}
	l.sinkMu.Lock()
	l.mu.Lock()
	l.commitLocked(&r)
	sinks := l.sinks
	l.mu.Unlock()

	for _, s := range sinks {
		s(r)
	}
	l.sinkMu.Unlock()
	return r
}

// SetStagingLanes resizes the async staging tier to n independent lanes
// (clamped to at least 1). Growing the lane count is what the sharded bus
// does at construction so each shard dispatcher stages on its own lock;
// a request smaller than the current count is a no-op, so two buses
// sharing a log keep the larger tier. Call before concurrent ingest
// begins: the resize flushes, and records staged after it land in the
// new lanes.
func (l *Log) SetStagingLanes(n int) {
	if n < 1 {
		n = 1
	}
	if cur := l.lanes.Load(); cur != nil && len(*cur) >= n {
		return
	}
	l.Flush()
	lanes := make([]stageLane, n)
	l.lanes.Store(&lanes)
}

// StagingLanes reports the current staging lane count.
func (l *Log) StagingLanes() int { return len(*l.getLanes()) }

// getLanes returns the staging lanes, lazily installing a single lane so
// the zero-value Log stays ready to use.
func (l *Log) getLanes() *[]stageLane {
	if lanes := l.lanes.Load(); lanes != nil {
		return lanes
	}
	fresh := make([]stageLane, 1)
	l.lanes.CompareAndSwap(nil, &fresh)
	return l.lanes.Load()
}

// AppendAsync stages a record for batched, background hashing on lane 0
// and returns immediately. See AppendAsyncLane.
func (l *Log) AppendAsync(r Record) { l.AppendAsyncLane(0, r) }

// AppendAsyncLane stages a record for batched, background hashing on the
// given staging lane (reduced modulo the lane count) and returns
// immediately. The record's timestamp is assigned now (when zero); its
// sequence number and chained hash are assigned by the hasher in
// arrival-ticket order. Callers running on distinct lanes contend on
// nothing but the arrival-ticket counter. Call Flush to wait for
// commitment; read-side methods flush implicitly.
func (l *Log) AppendAsyncLane(lane int, r Record) {
	l.AppendAsyncLaneStaged(lane, r, nil)
}

// AppendAsyncLaneStaged is AppendAsyncLane threading the stage clock of the
// message that produced the record (nil for unattributed flows): the hasher
// marks the clock's decide→audit edge when the record commits, closing the
// last pipeline stage.
func (l *Log) AppendAsyncLaneStaged(lane int, r Record, stage *telemetry.StageClock) {
	if r.Time.IsZero() {
		r.Time = l.clock()
	}
	lanes := *l.getLanes()
	if lane < 0 {
		lane = -lane
	}
	ln := &lanes[lane%len(lanes)]
	ln.mu.Lock()
	for len(ln.buf) >= maxPending {
		ln.condLocked().Wait()
	}
	// Ticket under the lane lock: each lane's buffer stays ticket-ordered,
	// and a goroutine's consecutive appends get ascending tickets, so the
	// hasher's merged order preserves every producer's program order.
	ln.buf = append(ln.buf, staged{ticket: l.tickets.Add(1), rec: r, stage: stage})
	ln.records++
	ln.bytes += approxRecordSize(&r)
	ln.mu.Unlock()
	if l.draining.CompareAndSwap(false, true) {
		go l.drain()
	}
}

// approxRecordSize estimates a record's in-memory footprint for lane-load
// accounting: the fixed struct size plus the variable string payloads. An
// estimate is enough — skew reports compare lanes against each other, so
// only relative weight matters.
func approxRecordSize(r *Record) uint64 {
	const fixed = 256 // struct fields, hashes, label headers
	return uint64(fixed +
		len(r.Domain) + len(r.Src) + len(r.Dst) + len(r.DataID) +
		len(r.Agent) + len(r.Note) + len(r.TraceID))
}

// A LaneIngest summarises one staging lane's lifetime async ingest: how
// many records were staged there and their approximate size. The counters
// are cumulative — they survive drains — so two snapshots diff cleanly.
type LaneIngest struct {
	Records uint64
	Bytes   uint64
}

// LaneStats returns per-lane lifetime ingest counters, indexed by staging
// lane. It takes each lane's lock briefly; producers on other lanes are
// unaffected.
func (l *Log) LaneStats() []LaneIngest {
	lanes := *l.getLanes()
	out := make([]LaneIngest, len(lanes))
	for i := range lanes {
		ln := &lanes[i]
		ln.mu.Lock()
		out[i] = LaneIngest{Records: ln.records, Bytes: ln.bytes}
		ln.mu.Unlock()
	}
	return out
}

// IngestDepth reports how many AppendAsync records are staged but not
// yet hashed and committed — the async ingest queue depth the telemetry
// layer surfaces.
func (l *Log) IngestDepth() int {
	issued := l.tickets.Load()
	l.flushMu.Lock()
	defer l.flushMu.Unlock()
	return int(issued - l.completed)
}

// Flush blocks until every record staged via AppendAsync/AppendAsyncLane
// before the call has been hashed, chained and delivered to sinks.
// Records staged after the call are not waited for, so Flush is bounded
// even while other goroutines keep appending.
func (l *Log) Flush() {
	target := l.tickets.Load()
	l.flushMu.Lock()
	for l.completed < target {
		l.flushCondLocked().Wait()
	}
	l.flushMu.Unlock()
}

// flushCondLocked lazily builds the watermark condition variable (so the
// zero-value Log stays ready to use). Callers must hold flushMu.
func (l *Log) flushCondLocked() *sync.Cond {
	if l.flushCond == nil {
		l.flushCond = sync.NewCond(&l.flushMu)
	}
	return l.flushCond
}

// collectStaged swaps out every lane's staged buffer, wakes producers
// blocked on lane backpressure, and returns the batch merged into
// arrival-ticket order — the order the chain will record.
func (l *Log) collectStaged() []staged {
	lanes := *l.getLanes()
	var batch []staged
	for i := range lanes {
		ln := &lanes[i]
		ln.mu.Lock()
		if len(ln.buf) > 0 {
			batch = append(batch, ln.buf...)
			ln.buf = nil
			ln.condLocked().Broadcast() // release writers blocked on backpressure
		}
		ln.mu.Unlock()
	}
	// Each lane's contribution is already ticket-sorted (tickets are taken
	// under the lane lock), so this is a k-way merge; sort.Slice keeps it
	// simple and the batch is bounded by lanes x maxPending.
	sort.Slice(batch, func(i, j int) bool { return batch[i].ticket < batch[j].ticket })
	return batch
}

// anyStaged reports whether any lane holds staged records.
func (l *Log) anyStaged() bool {
	lanes := *l.getLanes()
	for i := range lanes {
		ln := &lanes[i]
		ln.mu.Lock()
		n := len(ln.buf)
		ln.mu.Unlock()
		if n > 0 {
			return true
		}
	}
	return false
}

// drain is the background hasher: it repeatedly collects the staged lanes
// into one ticket-ordered batch and commits it under the chain lock, then
// exits once every lane stays empty. Chain head assignment happens only
// here — staging is sharded, sequencing is not.
func (l *Log) drain() {
	for {
		batch := l.collectStaged()
		if len(batch) == 0 {
			l.draining.Store(false)
			// A producer may have staged between the collect and the flag
			// store; re-arm and keep draining if we win the flag back.
			if !l.anyStaged() || !l.draining.CompareAndSwap(false, true) {
				return
			}
			continue
		}

		if act := fpSinkStall.Check(); act != nil {
			act.Wait()
		}
		l.sinkMu.Lock()
		l.mu.Lock()
		for i := range batch {
			l.commitLocked(&batch[i].rec)
		}
		sinks := l.sinks
		l.mu.Unlock()
		// Close the decide→audit stage edge now that the records are in the
		// chain (nil-safe; most records carry no clock).
		for i := range batch {
			batch[i].stage.MarkAudit()
		}
		for _, s := range sinks {
			for i := range batch {
				s(batch[i].rec)
			}
		}
		l.sinkMu.Unlock()

		l.flushMu.Lock()
		l.completed += uint64(len(batch))
		l.flushCondLocked().Broadcast() // advance the Flush watermark
		l.flushMu.Unlock()
	}
}

// commitLocked assigns seq, chains and stores one record; l.mu must be held.
func (l *Log) commitLocked(r *Record) {
	r.Seq = l.nextSeq
	r.PrevHash = l.lastHash
	r.Hash = computeHash(r)
	l.records = append(l.records, *r)
	l.nextSeq++
	l.lastHash = r.Hash
}

// Restore primes an empty log with a recovery checkpoint: the next
// sequence number to assign and the hash of the last record committed
// before the process died. Subsequent appends continue the persisted
// chain exactly as Prune-retained logs do — the first new record carries
// lastHash as its PrevHash, so the chain verifies across the restart
// boundary. Restoring a log that has already committed records is an
// error; recovery happens before ingest begins.
func (l *Log) Restore(nextSeq uint64, lastHash [32]byte) error {
	l.Flush()
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.nextSeq != 0 || len(l.records) != 0 {
		return errors.New("audit: Restore on a log that already has records")
	}
	l.firstSeq = nextSeq
	l.nextSeq = nextSeq
	l.lastHash = lastHash
	return nil
}

// Checkpoint returns the log's chain head: the next sequence number and
// the hash of the last committed record (the pruned checkpoint's hash when
// everything has been pruned). A durable store resuming this chain after a
// restart feeds these back through Restore.
func (l *Log) Checkpoint() (nextSeq uint64, lastHash [32]byte) {
	l.Flush()
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.nextSeq, l.lastHash
}

// Len returns the number of retained records.
func (l *Log) Len() int {
	l.Flush()
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.records)
}

// HeadHash returns the hash of the latest record.
func (l *Log) HeadHash() [32]byte {
	l.Flush()
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.lastHash
}

// Get returns the record with the given sequence number.
func (l *Log) Get(seq uint64) (Record, error) {
	l.Flush()
	l.mu.Lock()
	defer l.mu.Unlock()
	if seq < l.firstSeq {
		return Record{}, fmt.Errorf("%w: seq %d < first retained %d", ErrPruned, seq, l.firstSeq)
	}
	idx := seq - l.firstSeq
	if idx >= uint64(len(l.records)) {
		return Record{}, fmt.Errorf("audit: seq %d beyond head %d", seq, l.nextSeq)
	}
	return l.records[idx], nil
}

// Select returns a copy of all retained records matching the filter; a nil
// filter selects everything.
func (l *Log) Select(filter func(Record) bool) []Record {
	l.Flush()
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Record, 0, len(l.records))
	for _, r := range l.records {
		if filter == nil || filter(r) {
			out = append(out, r)
		}
	}
	return out
}

// Verify walks the retained chain, checking every record's hash and
// linkage. It returns the sequence number of the first bad record, or -1
// with a nil error when the chain is intact. Tombstones (Redacted records)
// are checked for linkage only: their payload is gone by design, but they
// still carry the original hash, so the chain continues through them.
func (l *Log) Verify() (int64, error) {
	l.Flush()
	l.mu.Lock()
	defer l.mu.Unlock()
	prev := [32]byte{}
	for i := range l.records {
		r := l.records[i]
		if i == 0 {
			prev = r.PrevHash // trust the checkpoint after pruning
		}
		if r.PrevHash != prev {
			return int64(r.Seq), fmt.Errorf("%w: record %d links to wrong predecessor", ErrChainBroken, r.Seq)
		}
		if r.Redacted {
			// A tombstone must actually be one: payload fields zeroed. The
			// flag exempts a record from the content-hash check, so any
			// surviving payload under it is a forgery, not an erasure.
			if !ValidTombstone(&r) {
				return int64(r.Seq), fmt.Errorf("%w: record %d marked redacted but carries payload", ErrChainBroken, r.Seq)
			}
		} else if computeHash(&r) != r.Hash {
			return int64(r.Seq), fmt.Errorf("%w: record %d content hash mismatch", ErrChainBroken, r.Seq)
		}
		prev = r.Hash
	}
	return -1, nil
}

// Redact replaces the retained record with the given sequence number by
// its chain-preserving tombstone (see Record.Redact): the payload fields
// are zeroed while linkage survives, so Verify still passes end to end.
// Redacting an already-redacted record is a no-op. This is the in-memory
// half of erasure; the disk tier redacts through store.AuditStore.
func (l *Log) Redact(seq uint64, note string) error {
	l.Flush()
	l.mu.Lock()
	defer l.mu.Unlock()
	if seq < l.firstSeq {
		return fmt.Errorf("%w: seq %d < first retained %d", ErrPruned, seq, l.firstSeq)
	}
	idx := seq - l.firstSeq
	if idx >= uint64(len(l.records)) {
		return fmt.Errorf("audit: seq %d beyond head %d", seq, l.nextSeq)
	}
	if !l.records[idx].Redacted {
		l.records[idx] = l.records[idx].Redact(note)
	}
	return nil
}

// RedactMany tombstones every listed retained record with one flush and
// one lock acquisition (a batch erasure would otherwise pay a hasher
// round trip per record). Sequence numbers outside the retained window
// and already-redacted records are skipped. Returns the number of records
// newly tombstoned.
func (l *Log) RedactMany(seqs []uint64, note string) int {
	l.Flush()
	l.mu.Lock()
	defer l.mu.Unlock()
	n := 0
	for _, seq := range seqs {
		if seq < l.firstSeq {
			continue
		}
		idx := seq - l.firstSeq
		if idx >= uint64(len(l.records)) {
			continue
		}
		if !l.records[idx].Redacted {
			l.records[idx] = l.records[idx].Redact(note)
			n++
		}
	}
	return n
}

// Prune discards records with Seq < upto, returning the discarded segment
// for offload. The chain head remains verifiable because the first retained
// record still carries the hash of the last pruned one.
func (l *Log) Prune(upto uint64) []Record {
	l.Flush()
	l.mu.Lock()
	defer l.mu.Unlock()
	if upto <= l.firstSeq {
		return nil
	}
	if upto > l.nextSeq {
		upto = l.nextSeq
	}
	n := upto - l.firstSeq
	segment := make([]Record, n)
	copy(segment, l.records[:n])
	l.records = append([]Record(nil), l.records[n:]...)
	l.firstSeq = upto
	return segment
}

// VerifySegment checks an offloaded segment against itself and, when the
// follower's first retained record is supplied, against the retained chain.
// Tombstones verify by linkage only, as in Log.Verify.
func VerifySegment(segment []Record, next *Record) error {
	for i := 1; i < len(segment); i++ {
		if segment[i].PrevHash != segment[i-1].Hash {
			return fmt.Errorf("%w: segment break at %d", ErrChainBroken, segment[i].Seq)
		}
	}
	for i := range segment {
		r := segment[i]
		if r.Redacted {
			if !ValidTombstone(&r) {
				return fmt.Errorf("%w: segment record %d marked redacted but carries payload", ErrChainBroken, r.Seq)
			}
			continue
		}
		if computeHash(&r) != r.Hash {
			return fmt.Errorf("%w: segment record %d hash mismatch", ErrChainBroken, r.Seq)
		}
	}
	if next != nil && len(segment) > 0 {
		if next.PrevHash != segment[len(segment)-1].Hash {
			return fmt.Errorf("%w: retained log does not follow segment", ErrChainBroken)
		}
	}
	return nil
}
