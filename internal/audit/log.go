package audit

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// Errors reported by Log.
var (
	ErrChainBroken = errors.New("audit: hash chain broken")
	ErrPruned      = errors.New("audit: range pruned")
)

// A Log is a tamper-evident, append-only audit log. Every record's hash
// covers its content and its predecessor's hash; Verify detects any
// retrospective modification. Logs may be pruned from the front once a
// segment has been offloaded (Challenge 6: "can logs be offloaded to others
// for distributed audit?"), retaining the chain head so continuity remains
// checkable.
//
// The zero value is ready to use.
type Log struct {
	mu      sync.RWMutex
	records []Record
	// firstSeq is the sequence number of records[0]; it advances on prune.
	firstSeq uint64
	nextSeq  uint64
	// lastHash is the hash of the most recent record (or the pruned
	// checkpoint's hash).
	lastHash [32]byte
	now      func() time.Time
	// sinks receive a copy of each appended record (e.g. a domain-wide
	// collector); they must not block.
	sinks []func(Record)
}

// NewLog builds an empty log. A nil clock means time.Now.
func NewLog(clock func() time.Time) *Log {
	if clock == nil {
		clock = time.Now
	}
	return &Log{now: clock}
}

// AddSink registers a callback invoked (synchronously) for each appended
// record. Sinks enable hierarchical collection: a thing's log forwards into
// its domain's log.
func (l *Log) AddSink(sink func(Record)) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.sinks = append(l.sinks, sink)
}

// Append adds a record, assigning its sequence number, timestamp (when
// zero) and chained hash, and returns the completed record.
func (l *Log) Append(r Record) Record {
	l.mu.Lock()
	if r.Time.IsZero() {
		r.Time = l.now()
	}
	r.Seq = l.nextSeq
	r.PrevHash = l.lastHash
	r.Hash = computeHash(&r)
	l.records = append(l.records, r)
	l.nextSeq++
	l.lastHash = r.Hash
	sinks := l.sinks
	l.mu.Unlock()

	for _, s := range sinks {
		s(r)
	}
	return r
}

// Len returns the number of retained records.
func (l *Log) Len() int {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return len(l.records)
}

// HeadHash returns the hash of the latest record.
func (l *Log) HeadHash() [32]byte {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.lastHash
}

// Get returns the record with the given sequence number.
func (l *Log) Get(seq uint64) (Record, error) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	if seq < l.firstSeq {
		return Record{}, fmt.Errorf("%w: seq %d < first retained %d", ErrPruned, seq, l.firstSeq)
	}
	idx := seq - l.firstSeq
	if idx >= uint64(len(l.records)) {
		return Record{}, fmt.Errorf("audit: seq %d beyond head %d", seq, l.nextSeq)
	}
	return l.records[idx], nil
}

// Select returns a copy of all retained records matching the filter; a nil
// filter selects everything.
func (l *Log) Select(filter func(Record) bool) []Record {
	l.mu.RLock()
	defer l.mu.RUnlock()
	out := make([]Record, 0, len(l.records))
	for _, r := range l.records {
		if filter == nil || filter(r) {
			out = append(out, r)
		}
	}
	return out
}

// Verify walks the retained chain, checking every record's hash and
// linkage. It returns the sequence number of the first bad record, or -1
// with a nil error when the chain is intact.
func (l *Log) Verify() (int64, error) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	prev := [32]byte{}
	for i := range l.records {
		r := l.records[i]
		if i == 0 {
			prev = r.PrevHash // trust the checkpoint after pruning
		}
		if r.PrevHash != prev {
			return int64(r.Seq), fmt.Errorf("%w: record %d links to wrong predecessor", ErrChainBroken, r.Seq)
		}
		if computeHash(&r) != r.Hash {
			return int64(r.Seq), fmt.Errorf("%w: record %d content hash mismatch", ErrChainBroken, r.Seq)
		}
		prev = r.Hash
	}
	return -1, nil
}

// Prune discards records with Seq < upto, returning the discarded segment
// for offload. The chain head remains verifiable because the first retained
// record still carries the hash of the last pruned one.
func (l *Log) Prune(upto uint64) []Record {
	l.mu.Lock()
	defer l.mu.Unlock()
	if upto <= l.firstSeq {
		return nil
	}
	if upto > l.nextSeq {
		upto = l.nextSeq
	}
	n := upto - l.firstSeq
	segment := make([]Record, n)
	copy(segment, l.records[:n])
	l.records = append([]Record(nil), l.records[n:]...)
	l.firstSeq = upto
	return segment
}

// VerifySegment checks an offloaded segment against itself and, when the
// follower's first retained record is supplied, against the retained chain.
func VerifySegment(segment []Record, next *Record) error {
	for i := 1; i < len(segment); i++ {
		if segment[i].PrevHash != segment[i-1].Hash {
			return fmt.Errorf("%w: segment break at %d", ErrChainBroken, segment[i].Seq)
		}
	}
	for i := range segment {
		r := segment[i]
		if computeHash(&r) != r.Hash {
			return fmt.Errorf("%w: segment record %d hash mismatch", ErrChainBroken, r.Seq)
		}
	}
	if next != nil && len(segment) > 0 {
		if next.PrevHash != segment[len(segment)-1].Hash {
			return fmt.Errorf("%w: retained log does not follow segment", ErrChainBroken)
		}
	}
	return nil
}
