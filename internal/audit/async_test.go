package audit

import (
	"errors"
	"sync"
	"testing"
)

// TestAppendAsyncChainsInOrder checks that batched background hashing
// produces exactly the chain a synchronous log would: dense sequence
// numbers, correct linkage, Verify clean.
func TestAppendAsyncChainsInOrder(t *testing.T) {
	l := NewLog(testClock())
	for i := 0; i < 100; i++ {
		l.AppendAsync(flowRecord("a", "b", i%3 != 0))
	}
	l.Flush()
	if l.Len() != 100 {
		t.Fatalf("len = %d, want 100", l.Len())
	}
	if bad, err := l.Verify(); err != nil || bad != -1 {
		t.Fatalf("Verify = %d, %v", bad, err)
	}
	for i := 0; i < 100; i++ {
		r, err := l.Get(uint64(i))
		if err != nil {
			t.Fatal(err)
		}
		if r.Seq != uint64(i) || r.Time.IsZero() {
			t.Fatalf("record %d: seq=%d time=%v", i, r.Seq, r.Time)
		}
	}
}

// TestAppendAsyncInterleavesWithSyncAppend mixes both ingest paths: the
// synchronous path flushes first, so its record lands after everything
// already enqueued, and the combined chain verifies.
func TestAppendAsyncInterleavesWithSyncAppend(t *testing.T) {
	l := NewLog(testClock())
	for i := 0; i < 10; i++ {
		l.AppendAsync(flowRecord("async", "x", true))
	}
	r := l.Append(flowRecord("sync", "y", true))
	if r.Seq != 10 {
		t.Fatalf("sync append seq = %d, want 10 (after the enqueued batch)", r.Seq)
	}
	if r.Hash == ([32]byte{}) {
		t.Fatal("sync append returned an unhashed record")
	}
	if bad, err := l.Verify(); err != nil || bad != -1 {
		t.Fatalf("Verify = %d, %v", bad, err)
	}
}

// TestAsyncTamperDetected: the tamper-evidence guarantee must be identical
// on the batched path — doctoring any record breaks Verify.
func TestAsyncTamperDetected(t *testing.T) {
	l := NewLog(testClock())
	for i := 0; i < 50; i++ {
		l.AppendAsync(flowRecord("a", "b", true))
	}
	l.Flush()
	l.mu.Lock()
	l.records[17].Note = "doctored"
	l.mu.Unlock()
	bad, err := l.Verify()
	if !errors.Is(err, ErrChainBroken) || bad != 17 {
		t.Fatalf("Verify after tamper = %d, %v; want seq 17, ErrChainBroken", bad, err)
	}
}

// TestAppendAsyncConcurrent drives the ring from many goroutines (well
// past the backpressure bound) and checks the committed chain.
func TestAppendAsyncConcurrent(t *testing.T) {
	l := NewLog(nil)
	var wg sync.WaitGroup
	const writers, each = 8, 2000
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < each; j++ {
				l.AppendAsync(flowRecord("a", "b", true))
			}
		}()
	}
	wg.Wait()
	if got := l.Len(); got != writers*each {
		t.Fatalf("len = %d, want %d", got, writers*each)
	}
	if bad, err := l.Verify(); err != nil || bad != -1 {
		t.Fatalf("Verify = %d, %v", bad, err)
	}
}

// TestAsyncSinkForwarding: sinks fire for batched records too (on the
// hasher goroutine), preserving hierarchical collection.
func TestAsyncSinkForwarding(t *testing.T) {
	collector := NewLog(testClock())
	thing := NewLog(testClock())
	thing.AddSink(func(r Record) {
		r.Domain = "collected"
		collector.Append(r)
	})
	for i := 0; i < 20; i++ {
		thing.AppendAsync(flowRecord("a", "b", true))
	}
	thing.Flush()
	if collector.Len() != 20 {
		t.Fatalf("collector len = %d, want 20", collector.Len())
	}
	if bad, err := collector.Verify(); err != nil || bad != -1 {
		t.Fatalf("collector Verify = %d, %v", bad, err)
	}
}

// TestZeroValueLog: the documented zero-value readiness, on both paths.
func TestZeroValueLog(t *testing.T) {
	var l Log
	l.AppendAsync(flowRecord("a", "b", true))
	r := l.Append(flowRecord("b", "c", true))
	if r.Seq != 1 || r.Time.IsZero() {
		t.Fatalf("zero-value log append = %+v", r)
	}
	if bad, err := l.Verify(); err != nil || bad != -1 {
		t.Fatalf("Verify = %d, %v", bad, err)
	}
}
