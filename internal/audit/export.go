package audit

import (
	"encoding/json"
	"fmt"
	"time"

	"lciot/internal/ifc"
)

// ExportJSON serialises the log's retained records for offload or
// inspection by external tooling (the paper used Neo4J/Cytoscape; any
// JSON consumer works).
func ExportJSON(l *Log) ([]byte, error) {
	return json.MarshalIndent(l.Select(nil), "", "  ")
}

// ExportJSONRecords serialises an explicit record slice (e.g. a pruned
// segment being offloaded).
func ExportJSONRecords(recs []Record) ([]byte, error) {
	return json.MarshalIndent(recs, "", "  ")
}

// ImportRecords parses records previously produced by ExportJSON. The
// records retain their original hashes, so VerifySegment can check the
// chain independently of any Log instance.
func ImportRecords(data []byte) ([]Record, error) {
	var recs []Record
	if err := json.Unmarshal(data, &recs); err != nil {
		return nil, fmt.Errorf("audit: parse records: %w", err)
	}
	return recs, nil
}

// RetentionCompliance is the regulator-facing proof obligation for one tag:
// "all data under tag T older than D is gone or tombstoned". It is built by
// RetentionReport over a full record set (in-memory log, durable store, or
// an export) and lists every violation it finds, so a clean report is
// positive evidence and a dirty one is an actionable worklist.
type RetentionCompliance struct {
	Tag    string    `json:"tag"`
	Cutoff time.Time `json:"cutoff"`
	// Checked counts records older than the cutoff that carry a DataID.
	Checked int `json:"checked"`
	// UnderTag counts checked records whose either context carried the tag.
	UnderTag int `json:"under_tag"`
	// Tombstoned counts redacted records older than the cutoff.
	Tombstoned int `json:"tombstoned"`
	// Violations are live (non-tombstoned) data records under the tag older
	// than the cutoff — each one is a retention breach.
	Violations []Record `json:"violations,omitempty"`
	Compliant  bool     `json:"compliant"`
}

// RetentionReport proves (or refutes) that every datum that flowed under
// the given tag before the cutoff has been erased: a data record (one with
// a DataID) older than the cutoff whose source or destination context
// carried the tag must be tombstoned. Records redacted in place no longer
// reveal their tags — that is what erasure means — and count as
// tombstoned.
func RetentionReport(recs []Record, tag ifc.Tag, cutoff time.Time) RetentionCompliance {
	rep := RetentionCompliance{Tag: string(tag), Cutoff: cutoff}
	for _, r := range recs {
		if !r.Time.Before(cutoff) {
			continue
		}
		if r.Redacted {
			rep.Checked++
			rep.Tombstoned++
			continue
		}
		if r.DataID == "" {
			continue
		}
		rep.Checked++
		if r.SrcCtx.Secrecy.Has(tag) || r.DstCtx.Secrecy.Has(tag) {
			rep.UnderTag++
			rep.Violations = append(rep.Violations, r)
		}
	}
	rep.Compliant = len(rep.Violations) == 0
	return rep
}
