package audit

import (
	"encoding/json"
	"fmt"
)

// ExportJSON serialises the log's retained records for offload or
// inspection by external tooling (the paper used Neo4J/Cytoscape; any
// JSON consumer works).
func ExportJSON(l *Log) ([]byte, error) {
	return json.MarshalIndent(l.Select(nil), "", "  ")
}

// ExportJSONRecords serialises an explicit record slice (e.g. a pruned
// segment being offloaded).
func ExportJSONRecords(recs []Record) ([]byte, error) {
	return json.MarshalIndent(recs, "", "  ")
}

// ImportRecords parses records previously produced by ExportJSON. The
// records retain their original hashes, so VerifySegment can check the
// chain independently of any Log instance.
func ImportRecords(data []byte) ([]Record, error) {
	var recs []Record
	if err := json.Unmarshal(data, &recs); err != nil {
		return nil, fmt.Errorf("audit: parse records: %w", err)
	}
	return recs, nil
}
