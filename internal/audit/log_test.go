package audit

import (
	"errors"
	"sync"
	"testing"
	"time"

	"lciot/internal/ifc"
)

func testClock() func() time.Time {
	t := time.Unix(1700000000, 0)
	return func() time.Time {
		t = t.Add(time.Millisecond)
		return t
	}
}

func flowRecord(src, dst ifc.EntityID, allowed bool) Record {
	kind := FlowAllowed
	if !allowed {
		kind = FlowDenied
	}
	return Record{
		Kind: kind, Layer: LayerMessaging, Domain: "hospital",
		Src: src, Dst: dst, DataID: "d-" + string(src),
	}
}

func TestLogAppendAssignsSequenceAndChain(t *testing.T) {
	l := NewLog(testClock())
	r1 := l.Append(flowRecord("a", "b", true))
	r2 := l.Append(flowRecord("b", "c", true))

	if r1.Seq != 0 || r2.Seq != 1 {
		t.Fatalf("seqs = %d, %d", r1.Seq, r2.Seq)
	}
	if r2.PrevHash != r1.Hash {
		t.Fatal("records not chained")
	}
	if r1.Time.IsZero() || r2.Time.IsZero() {
		t.Fatal("timestamps not assigned")
	}
	if l.HeadHash() != r2.Hash {
		t.Fatal("head hash wrong")
	}
	if bad, err := l.Verify(); err != nil || bad != -1 {
		t.Fatalf("Verify = %d, %v", bad, err)
	}
}

func TestLogDetectsTampering(t *testing.T) {
	l := NewLog(testClock())
	for i := 0; i < 10; i++ {
		l.Append(flowRecord("a", "b", true))
	}
	// Reach into the log and modify a record (simulated attacker).
	l.mu.Lock()
	l.records[4].Note = "doctored"
	l.mu.Unlock()

	bad, err := l.Verify()
	if !errors.Is(err, ErrChainBroken) {
		t.Fatalf("Verify err = %v, want ErrChainBroken", err)
	}
	if bad != 4 {
		t.Fatalf("first bad seq = %d, want 4", bad)
	}
}

func TestLogDetectsRelink(t *testing.T) {
	l := NewLog(testClock())
	for i := 0; i < 5; i++ {
		l.Append(flowRecord("a", "b", true))
	}
	// Replace a record wholesale with a self-consistent one: linkage to the
	// successor must still break.
	l.mu.Lock()
	forged := flowRecord("x", "y", true)
	forged.Seq = 2
	forged.Time = time.Unix(1, 0)
	forged.PrevHash = l.records[1].Hash
	forged.Hash = computeHash(&forged)
	l.records[2] = forged
	l.mu.Unlock()

	bad, err := l.Verify()
	if !errors.Is(err, ErrChainBroken) {
		t.Fatalf("Verify err = %v", err)
	}
	if bad != 3 {
		t.Fatalf("first bad seq = %d, want 3 (successor unlinked)", bad)
	}
}

func TestLogGetAndSelect(t *testing.T) {
	l := NewLog(testClock())
	l.Append(flowRecord("a", "b", true))
	l.Append(flowRecord("m", "n", false))
	l.Append(flowRecord("x", "y", true))

	r, err := l.Get(1)
	if err != nil {
		t.Fatal(err)
	}
	if r.Kind != FlowDenied {
		t.Fatalf("Get(1).Kind = %v", r.Kind)
	}
	if _, err := l.Get(99); err == nil {
		t.Fatal("Get beyond head succeeded")
	}
	denied := l.Select(func(r Record) bool { return r.Kind == FlowDenied })
	if len(denied) != 1 || denied[0].Src != "m" {
		t.Fatalf("Select denied = %v", denied)
	}
	if got := len(l.Select(nil)); got != 3 {
		t.Fatalf("Select(nil) = %d records", got)
	}
}

func TestLogPruneAndOffload(t *testing.T) {
	l := NewLog(testClock())
	for i := 0; i < 10; i++ {
		l.Append(flowRecord("a", "b", true))
	}
	segment := l.Prune(6)
	if len(segment) != 6 {
		t.Fatalf("pruned %d records, want 6", len(segment))
	}
	if l.Len() != 4 {
		t.Fatalf("retained %d records, want 4", l.Len())
	}
	// Retained chain still verifies.
	if bad, err := l.Verify(); err != nil || bad != -1 {
		t.Fatalf("retained Verify = %d, %v", bad, err)
	}
	// Pruned range is no longer accessible.
	if _, err := l.Get(3); !errors.Is(err, ErrPruned) {
		t.Fatalf("Get(pruned) = %v, want ErrPruned", err)
	}
	// Offloaded segment verifies and links to the retained log.
	first, err := l.Get(6)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifySegment(segment, &first); err != nil {
		t.Fatalf("segment verification failed: %v", err)
	}
	// A tampered segment is detected.
	segment[2].Note = "doctored"
	if err := VerifySegment(segment, &first); !errors.Is(err, ErrChainBroken) {
		t.Fatalf("tampered segment = %v, want ErrChainBroken", err)
	}
	// Pruning nothing returns nil.
	if seg := l.Prune(2); seg != nil {
		t.Fatalf("redundant prune returned %d records", len(seg))
	}
	// Pruning beyond the head clamps.
	if seg := l.Prune(1000); len(seg) != 4 {
		t.Fatalf("clamped prune returned %d records, want 4", len(seg))
	}
}

func TestVerifySegmentBreaks(t *testing.T) {
	l := NewLog(testClock())
	for i := 0; i < 4; i++ {
		l.Append(flowRecord("a", "b", true))
	}
	seg := l.Prune(4)
	// Break internal linkage.
	seg[2].PrevHash = [32]byte{0xff}
	if err := VerifySegment(seg, nil); !errors.Is(err, ErrChainBroken) {
		t.Fatalf("broken segment = %v", err)
	}
	if err := VerifySegment(nil, nil); err != nil {
		t.Fatalf("empty segment = %v", err)
	}
}

func TestLogSinkForwarding(t *testing.T) {
	domainLog := NewLog(testClock())
	thingLog := NewLog(testClock())
	thingLog.AddSink(func(r Record) {
		r.Domain = "collected"
		domainLog.Append(r)
	})
	thingLog.Append(flowRecord("a", "b", true))
	thingLog.Append(flowRecord("c", "d", false))

	if domainLog.Len() != 2 {
		t.Fatalf("domain log has %d records", domainLog.Len())
	}
	got := domainLog.Select(nil)
	if got[0].Domain != "collected" {
		t.Fatalf("sink record domain = %q", got[0].Domain)
	}
	// The collector re-chains with its own hashes.
	if bad, err := domainLog.Verify(); err != nil || bad != -1 {
		t.Fatalf("domain Verify = %d, %v", bad, err)
	}
}

func TestLogConcurrentAppend(t *testing.T) {
	l := NewLog(nil)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				l.Append(flowRecord("a", "b", true))
			}
		}()
	}
	wg.Wait()
	if l.Len() != 800 {
		t.Fatalf("len = %d, want 800", l.Len())
	}
	if bad, err := l.Verify(); err != nil || bad != -1 {
		t.Fatalf("concurrent Verify = %d, %v", bad, err)
	}
}

func TestEventKindLayerStrings(t *testing.T) {
	kinds := map[EventKind]string{
		FlowAllowed: "flow-allowed", FlowDenied: "flow-denied",
		ContextChange: "context-change", PrivilegeGrant: "privilege-grant",
		Reconfiguration: "reconfiguration", GateCrossing: "gate-crossing",
		BreakGlass: "break-glass", EventKind(42): "EventKind(42)",
	}
	for k, want := range kinds {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(k), k.String(), want)
		}
	}
	layers := map[Layer]string{
		LayerKernel: "kernel", LayerMessaging: "messaging",
		LayerPolicy: "policy", Layer(9): "Layer(9)",
	}
	for l, want := range layers {
		if l.String() != want {
			t.Errorf("layer %d String() = %q, want %q", int(l), l.String(), want)
		}
	}
}
