// Package audit implements the paper's audit plane (Section 8.3): a
// tamper-evident, hash-chained log of every enforcement decision, and the
// provenance graph derived from it — "the logs generated during IFC
// enforcement are a natural source of provenance information" — following
// the Open Provenance Model conventions of Fig. 11.
//
// # Incremental provenance
//
// Graphs are built for querying: Ancestry and Descendants memoize each
// node's reachability set, stamped with a graph epoch that advances on
// every AddEdge. The first query after a topology change walks the
// history; repeats are served from the memo in time proportional to the
// answer, not to the history depth. Graph.Append ingests new audit
// records into an existing graph — the build-once/append-many path — so a
// growing log never forces a full rebuild: append the new batch, let the
// epoch retire the memo, and pay one walk per queried node per batch
// rather than per query.
package audit
