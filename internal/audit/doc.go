// Package audit implements the paper's audit plane (Section 8.3): a
// tamper-evident, hash-chained log of every enforcement decision, and the
// provenance graph derived from it — "the logs generated during IFC
// enforcement are a natural source of provenance information" — following
// the Open Provenance Model conventions of Fig. 11.
//
// # Chain-ordered ingest from parallel staging lanes
//
// The Log's hash chain needs a total order — every record names its
// predecessor's hash — but the hot producers (the sharded bus's
// dispatchers, one per shard) must not serialize on a single pending
// list. AppendAsyncLane stages records into per-lane buffers: a lane
// append takes a global ticket and the lane's lock only, so dispatchers
// on different lanes never contend. A single on-demand hasher goroutine
// merges staged records across lanes by ticket order and commits them
// under the chain lock — chain-head assignment stays serialized, which
// is what makes the chain a total order — and delivers each committed
// batch to the registered sinks in sequence. Tickets are issued under
// the lane lock, so one goroutine's appends can never commit out of
// program order, and Flush's watermark (tickets issued vs records
// committed) is exact. Append remains the synchronous path for records
// whose sequence number the caller needs immediately; SetStagingLanes
// grows the lane set (the sharded bus sizes it to its shard count).
//
// # Incremental provenance
//
// Graphs are built for querying: Ancestry and Descendants memoize each
// node's reachability set, stamped with a graph epoch that advances on
// every AddEdge. The first query after a topology change walks the
// history; repeats are served from the memo in time proportional to the
// answer, not to the history depth. Graph.Append ingests new audit
// records into an existing graph — the build-once/append-many path — so a
// growing log never forces a full rebuild: append the new batch, let the
// epoch retire the memo, and pay one walk per queried node per batch
// rather than per query.
package audit
