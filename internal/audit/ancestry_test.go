package audit

import (
	"fmt"
	"math/rand"
	"reflect"
	"strconv"
	"sync"
	"testing"

	"lciot/internal/ifc"
)

// bruteReach recomputes a reachability set from scratch, bypassing the
// memo — the reference the memoized path must match after any interleaving
// of mutations and queries.
func bruteReach(g *Graph, id string, outgoing bool) []string {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.walkLocked(id, outgoing)
}

// TestAncestryMemoMatchesBruteForce interleaves random node/edge insertions
// with ancestry and descendants queries, checking every memoized answer
// against a fresh walk.
func TestAncestryMemoMatchesBruteForce(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		r := rand.New(rand.NewSource(seed))
		g := &Graph{}
		var ids []string
		addNode := func() {
			id := "n" + strconv.Itoa(len(ids))
			g.AddNode(Node{ID: id, Kind: NodeData})
			ids = append(ids, id)
		}
		for i := 0; i < 5; i++ {
			addNode()
		}
		for step := 0; step < 300; step++ {
			switch r.Intn(5) {
			case 0:
				addNode()
			case 1, 2:
				src := ids[r.Intn(len(ids))]
				dst := ids[r.Intn(len(ids))]
				if err := g.AddEdge(Edge{Src: src, Dst: dst, Kind: EdgeDerivedFrom}); err != nil {
					t.Fatal(err)
				}
			default:
				id := ids[r.Intn(len(ids))]
				outgoing := r.Intn(2) == 0
				var got []string
				var err error
				if outgoing {
					got, err = g.Ancestry(id)
				} else {
					got, err = g.Descendants(id)
				}
				if err != nil {
					t.Fatal(err)
				}
				want := bruteReach(g, id, outgoing)
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("seed %d step %d: query(%s, out=%v) = %v, brute force %v",
						seed, step, id, outgoing, got, want)
				}
				// Query again: the memoized answer must be identical.
				var again []string
				if outgoing {
					again, _ = g.Ancestry(id)
				} else {
					again, _ = g.Descendants(id)
				}
				if !reflect.DeepEqual(again, want) {
					t.Fatalf("seed %d step %d: memoized repeat diverged: %v vs %v", seed, step, again, want)
				}
			}
		}
	}
}

// TestAncestryMemoInvalidatedByAddEdge: an ancestry set computed before an
// AddEdge must not be served after it.
func TestAncestryMemoInvalidatedByAddEdge(t *testing.T) {
	g := &Graph{}
	for _, id := range []string{"a", "b", "c"} {
		g.AddNode(Node{ID: id, Kind: NodeData})
	}
	if err := g.AddEdge(Edge{Src: "a", Dst: "b", Kind: EdgeDerivedFrom}); err != nil {
		t.Fatal(err)
	}
	anc, err := g.Ancestry("a")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(anc, []string{"b"}) {
		t.Fatalf("ancestry before extension = %v", anc)
	}
	if err := g.AddEdge(Edge{Src: "b", Dst: "c", Kind: EdgeDerivedFrom}); err != nil {
		t.Fatal(err)
	}
	anc, err = g.Ancestry("a")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(anc, []string{"b", "c"}) {
		t.Fatalf("ancestry after extension = %v (stale memo served?)", anc)
	}
}

// TestAncestryResultIsACopy: mutating a returned set must not corrupt the
// memo for subsequent callers.
func TestAncestryResultIsACopy(t *testing.T) {
	g := &Graph{}
	for _, id := range []string{"a", "b", "c"} {
		g.AddNode(Node{ID: id, Kind: NodeData})
	}
	for _, e := range []Edge{{Src: "a", Dst: "b"}, {Src: "a", Dst: "c"}} {
		e.Kind = EdgeDerivedFrom
		if err := g.AddEdge(e); err != nil {
			t.Fatal(err)
		}
	}
	first, _ := g.Ancestry("a")
	first[0] = "corrupted"
	second, _ := g.Ancestry("a")
	if !reflect.DeepEqual(second, []string{"b", "c"}) {
		t.Fatalf("memo corrupted through a returned slice: %v", second)
	}
}

// TestAppendMatchesBuildGraph: building once and appending in batches must
// yield a graph answering identically to a full rebuild.
func TestAppendMatchesBuildGraph(t *testing.T) {
	mkRecords := func(n, off int) []Record {
		var recs []Record
		for i := 0; i < n; i++ {
			recs = append(recs, Record{
				Kind:   FlowAllowed,
				Src:    entityID("p", off+i),
				Dst:    entityID("p", off+i+1),
				DataID: "d" + strconv.Itoa(off+i),
				Agent:  "agent",
			})
		}
		return recs
	}
	batch1, batch2 := mkRecords(20, 0), mkRecords(20, 20)

	incremental := BuildGraph(batch1)
	// Interleave queries so the memo is warm when batch2 lands.
	if _, err := incremental.Ancestry("p20"); err != nil {
		t.Fatal(err)
	}
	incremental.Append(batch2)

	full := BuildGraph(append(append([]Record(nil), batch1...), batch2...))

	in, ie := incremental.Len()
	fn, fe := full.Len()
	if in != fn || ie != fe {
		t.Fatalf("incremental graph %d/%d, full rebuild %d/%d", in, ie, fn, fe)
	}
	for _, probe := range []string{"p40", "p0", "d39", "agent"} {
		a, err := incremental.Ancestry(probe)
		if err != nil {
			t.Fatal(err)
		}
		b, err := full.Ancestry(probe)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("ancestry(%s): incremental %v, full %v", probe, a, b)
		}
		da, _ := incremental.Descendants(probe)
		db, _ := full.Descendants(probe)
		if !reflect.DeepEqual(da, db) {
			t.Fatalf("descendants(%s): incremental %v, full %v", probe, da, db)
		}
	}
}

func entityID(prefix string, i int) ifc.EntityID {
	return ifc.EntityID(fmt.Sprintf("%s%d", prefix, i))
}

// TestAncestryConcurrentQueriesAndAppends: memo fills and epoch bumps under
// concurrent load must be race-clean (run with -race).
func TestAncestryConcurrentQueriesAndAppends(t *testing.T) {
	g := &Graph{}
	for i := 0; i < 50; i++ {
		g.AddNode(Node{ID: "n" + strconv.Itoa(i), Kind: NodeProcess})
	}
	for i := 0; i < 49; i++ {
		if err := g.AddEdge(Edge{Src: "n" + strconv.Itoa(i), Dst: "n" + strconv.Itoa(i+1), Kind: EdgeInformedBy}); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < 200; i++ {
				switch {
				case w == 0 && i%10 == 0:
					_ = g.AddEdge(Edge{
						Src:  "n" + strconv.Itoa(r.Intn(50)),
						Dst:  "n" + strconv.Itoa(r.Intn(50)),
						Kind: EdgeInformedBy,
					})
				case i%2 == 0:
					if _, err := g.Ancestry("n" + strconv.Itoa(r.Intn(50))); err != nil {
						t.Error(err)
						return
					}
				default:
					if _, err := g.Descendants("n" + strconv.Itoa(r.Intn(50))); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
}
