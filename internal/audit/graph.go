package audit

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// NodeKind distinguishes the three node types of the paper's Fig. 11 audit
// graph, which follow the Open Provenance Model: data items (F), processes
// (P) and agents (A).
type NodeKind int

// Node kinds.
const (
	NodeData NodeKind = iota + 1
	NodeProcess
	NodeAgent
)

// String implements fmt.Stringer.
func (k NodeKind) String() string {
	switch k {
	case NodeData:
		return "data"
	case NodeProcess:
		return "process"
	case NodeAgent:
		return "agent"
	default:
		return fmt.Sprintf("NodeKind(%d)", int(k))
	}
}

// EdgeKind labels provenance relations.
type EdgeKind int

// Edge kinds (OPM/PROV-flavoured, as in Fig. 11).
const (
	EdgeGeneratedBy  EdgeKind = iota + 1 // data  -> process that produced it
	EdgeUsed                             // process -> data it consumed
	EdgeInformedBy                       // process -> process (information flow)
	EdgeControlledBy                     // process -> agent managing it
	EdgeDerivedFrom                      // data  -> data it was derived from
)

// String implements fmt.Stringer.
func (k EdgeKind) String() string {
	switch k {
	case EdgeGeneratedBy:
		return "wasGeneratedBy"
	case EdgeUsed:
		return "used"
	case EdgeInformedBy:
		return "wasInformedBy"
	case EdgeControlledBy:
		return "wasControlledBy"
	case EdgeDerivedFrom:
		return "wasDerivedFrom"
	default:
		return fmt.Sprintf("EdgeKind(%d)", int(k))
	}
}

// A Node is a provenance graph vertex.
type Node struct {
	ID   string
	Kind NodeKind
	// Attrs carries free-form metadata (labels at creation time, owner...).
	Attrs map[string]string
}

// An Edge is a directed provenance relation from Src to Dst.
type Edge struct {
	Src, Dst string
	Kind     EdgeKind
}

// ErrUnknownNode is returned by queries over absent nodes.
var ErrUnknownNode = errors.New("audit: unknown node")

// A Graph is a provenance graph. The zero value is ready to use.
//
// Reachability queries (Ancestry, Descendants, and everything built on
// them) are memoized: the first query for a node walks the graph, repeated
// queries return the memoized set in time proportional to the answer, not
// to the history. The memo is epoch-stamped — AddEdge advances the graph
// epoch, and a memo from an older epoch is discarded wholesale on the next
// query — so audit workloads that build once (or append in bursts) and then
// query repeatedly never pay the walk twice for the same topology.
type Graph struct {
	mu    sync.RWMutex
	nodes map[string]Node
	// out[src] lists edges leaving src; in[dst] lists edges entering dst.
	out map[string][]Edge
	in  map[string][]Edge
	// epoch advances on every AddEdge; reachability memos are only valid
	// while their stamped epoch matches.
	epoch uint64
	// anc and desc memoize Ancestry and Descendants results per node.
	anc  reachMemo
	desc reachMemo
}

// A reachMemo holds reachability sets computed at one graph epoch.
type reachMemo struct {
	epoch uint64
	sets  map[string][]string
}

// lookup returns the memoized set for id, if still valid at epoch.
func (m *reachMemo) lookup(epoch uint64, id string) ([]string, bool) {
	if m.epoch != epoch || m.sets == nil {
		return nil, false
	}
	s, ok := m.sets[id]
	return s, ok
}

// store records a computed set, discarding any stale-epoch memo first.
func (m *reachMemo) store(epoch uint64, id string, set []string) {
	if m.epoch != epoch || m.sets == nil {
		m.epoch = epoch
		m.sets = make(map[string][]string)
	}
	m.sets[id] = set
}

// AddNode inserts or updates a node.
func (g *Graph) AddNode(n Node) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.nodes == nil {
		g.nodes = make(map[string]Node)
		g.out = make(map[string][]Edge)
		g.in = make(map[string][]Edge)
	}
	g.nodes[n.ID] = n
}

// AddEdge inserts a directed edge; both endpoints must exist. Adding an
// edge advances the graph epoch, retiring every memoized reachability set.
func (g *Graph) AddEdge(e Edge) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.addEdgeLocked(e)
}

func (g *Graph) addEdgeLocked(e Edge) error {
	if _, ok := g.nodes[e.Src]; !ok {
		return fmt.Errorf("%w: %q", ErrUnknownNode, e.Src)
	}
	if _, ok := g.nodes[e.Dst]; !ok {
		return fmt.Errorf("%w: %q", ErrUnknownNode, e.Dst)
	}
	g.out[e.Src] = append(g.out[e.Src], e)
	g.in[e.Dst] = append(g.in[e.Dst], e)
	g.epoch++
	return nil
}

// RemoveNodes deletes the given nodes and every edge touching them — the
// provenance half of erasure: an erased datum must not remain queryable
// from live state (tombstoned records no longer back it, and the graph
// must agree). Removal advances the epoch, retiring memoized reachability
// sets. Returns the number of nodes removed.
func (g *Graph) RemoveNodes(ids map[string]bool) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	removed := 0
	dropTouching := func(edges []Edge) []Edge {
		kept := edges[:0]
		for _, e := range edges {
			if !ids[e.Src] && !ids[e.Dst] {
				kept = append(kept, e)
			}
		}
		clear(edges[len(kept):])
		return kept
	}
	for id := range ids {
		if _, ok := g.nodes[id]; !ok {
			continue
		}
		delete(g.nodes, id)
		removed++
		for _, e := range g.out[id] {
			if !ids[e.Dst] {
				g.in[e.Dst] = dropTouching(g.in[e.Dst])
			}
		}
		for _, e := range g.in[id] {
			if !ids[e.Src] {
				g.out[e.Src] = dropTouching(g.out[e.Src])
			}
		}
		delete(g.out, id)
		delete(g.in, id)
	}
	if removed > 0 {
		g.epoch++
	}
	return removed
}

// Node returns the node with the given ID.
func (g *Graph) Node(id string) (Node, bool) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	n, ok := g.nodes[id]
	return n, ok
}

// Len returns the node and edge counts.
func (g *Graph) Len() (nodes, edges int) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	for _, es := range g.out {
		edges += len(es)
	}
	return len(g.nodes), edges
}

// Ancestry returns every node reachable from id along outgoing edges — for
// a data item: the processes that generated it, the data they used, and so
// on back to the sources. This answers "how was this file generated?". The
// first query for a node walks the history; repeats are served from the
// epoch-stamped memo until the next AddEdge.
func (g *Graph) Ancestry(id string) ([]string, error) {
	return g.reach(id, &g.anc, true)
}

// Descendants returns every node that transitively depends on id (walks
// incoming edges). This answers "where did this sensor's data end up?" —
// the taint/impact query behind Concern 5. Memoized like Ancestry.
func (g *Graph) Descendants(id string) ([]string, error) {
	return g.reach(id, &g.desc, false)
}

// reach serves one reachability query through the given memo, computing and
// memoizing the set on a miss. Callers receive a fresh copy, so memoized
// sets are never aliased by callers.
func (g *Graph) reach(id string, memo *reachMemo, outgoing bool) ([]string, error) {
	g.mu.RLock()
	if _, ok := g.nodes[id]; !ok {
		g.mu.RUnlock()
		return nil, fmt.Errorf("%w: %q", ErrUnknownNode, id)
	}
	if set, hit := memo.lookup(g.epoch, id); hit {
		g.mu.RUnlock()
		return append([]string(nil), set...), nil
	}
	g.mu.RUnlock()

	g.mu.Lock()
	defer g.mu.Unlock()
	// Another goroutine may have filled the memo while we upgraded the lock.
	if set, hit := memo.lookup(g.epoch, id); hit {
		return append([]string(nil), set...), nil
	}
	set := g.walkLocked(id, outgoing)
	memo.store(g.epoch, id, set)
	return append([]string(nil), set...), nil
}

// walkLocked BFSes from id (excluding id itself) over out- or in-edges.
// The caller holds g.mu.
func (g *Graph) walkLocked(id string, outgoing bool) []string {
	adj := g.out
	if !outgoing {
		adj = g.in
	}
	seen := map[string]struct{}{id: {}}
	frontier := []string{id}
	var out []string
	for len(frontier) > 0 {
		var next []string
		for _, n := range frontier {
			for _, e := range adj[n] {
				// e.Dst is the far endpoint of an out-edge, e.Src of an
				// in-edge; the comparison picks it regardless of direction.
				other := e.Dst
				if other == n {
					other = e.Src
				}
				if _, dup := seen[other]; dup {
					continue
				}
				seen[other] = struct{}{}
				out = append(out, other)
				next = append(next, other)
			}
		}
		frontier = next
	}
	sort.Strings(out)
	return out
}

// PathExists reports whether dst is in src's ancestry closure.
func (g *Graph) PathExists(src, dst string) (bool, error) {
	anc, err := g.Ancestry(src)
	if err != nil {
		return false, err
	}
	for _, n := range anc {
		if n == dst {
			return true, nil
		}
	}
	return false, nil
}

// Agents returns the agents controlling any process in id's ancestry — the
// "who is responsible?" query for apportioning liability.
func (g *Graph) Agents(id string) ([]string, error) {
	anc, err := g.Ancestry(id)
	if err != nil {
		return nil, err
	}
	anc = append(anc, id)
	var out []string
	seen := make(map[string]struct{})
	g.mu.RLock()
	defer g.mu.RUnlock()
	for _, n := range anc {
		if node, ok := g.nodes[n]; ok && node.Kind == NodeAgent {
			if _, dup := seen[n]; !dup {
				seen[n] = struct{}{}
				out = append(out, n)
			}
		}
	}
	sort.Strings(out)
	return out, nil
}
