package audit

import (
	"encoding/json"
	"errors"
	"reflect"
	"strings"
	"testing"

	"lciot/internal/ifc"
)

// fig11Graph reconstructs the audit-graph fragment of Fig. 11: data items
// F1..F4, processes P1, P2, agents A1, A2. P1 used F1 and F2 and generated
// F3; P2 used F3 and generated F4; P2 was informed by P1; A1 controls P1,
// A2 controls P2.
func fig11Graph(t *testing.T) *Graph {
	t.Helper()
	g := &Graph{}
	for _, f := range []string{"F1", "F2", "F3", "F4"} {
		g.AddNode(Node{ID: f, Kind: NodeData})
	}
	for _, p := range []string{"P1", "P2"} {
		g.AddNode(Node{ID: p, Kind: NodeProcess})
	}
	for _, a := range []string{"A1", "A2"} {
		g.AddNode(Node{ID: a, Kind: NodeAgent})
	}
	edges := []Edge{
		{Src: "P1", Dst: "F1", Kind: EdgeUsed},
		{Src: "P1", Dst: "F2", Kind: EdgeUsed},
		{Src: "F3", Dst: "P1", Kind: EdgeGeneratedBy},
		{Src: "P2", Dst: "F3", Kind: EdgeUsed},
		{Src: "F4", Dst: "P2", Kind: EdgeGeneratedBy},
		{Src: "P2", Dst: "P1", Kind: EdgeInformedBy},
		{Src: "P1", Dst: "A1", Kind: EdgeControlledBy},
		{Src: "P2", Dst: "A2", Kind: EdgeControlledBy},
	}
	for _, e := range edges {
		if err := g.AddEdge(e); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

// TestFig11AuditGraph is experiment E11: the forensic queries of Section
// 8.3 over the Fig. 11 fragment.
func TestFig11AuditGraph(t *testing.T) {
	g := fig11Graph(t)

	// "How was F4 generated?" — its ancestry must reach back to F1 and F2.
	anc, err := g.Ancestry("F4")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"A1", "A2", "F1", "F2", "F3", "P1", "P2"}
	if !reflect.DeepEqual(anc, want) {
		t.Fatalf("Ancestry(F4) = %v, want %v", anc, want)
	}

	// "Who is responsible for F4?" — both agents.
	agents, err := g.Agents("F4")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(agents, []string{"A1", "A2"}) {
		t.Fatalf("Agents(F4) = %v", agents)
	}

	// "Where did F1's data end up?" — descendants include F3 and F4.
	desc, err := g.Descendants("F1")
	if err != nil {
		t.Fatal(err)
	}
	for _, must := range []string{"F3", "F4", "P1", "P2"} {
		if !containsString(desc, must) {
			t.Errorf("Descendants(F1) = %v, missing %s", desc, must)
		}
	}
	// F2's consumption does not taint F1.
	if containsString(desc, "F2") {
		t.Errorf("Descendants(F1) = %v wrongly includes F2", desc)
	}

	ok, err := g.PathExists("F4", "F1")
	if err != nil || !ok {
		t.Fatalf("PathExists(F4, F1) = %v, %v", ok, err)
	}
	ok, err = g.PathExists("F1", "F4")
	if err != nil || ok {
		t.Fatalf("PathExists(F1, F4) = %v (ancestry is directed)", ok)
	}
}

func containsString(list []string, s string) bool {
	for _, x := range list {
		if x == s {
			return true
		}
	}
	return false
}

func TestGraphUnknownNodeErrors(t *testing.T) {
	g := fig11Graph(t)
	if _, err := g.Ancestry("nope"); !errors.Is(err, ErrUnknownNode) {
		t.Fatalf("Ancestry(unknown) = %v", err)
	}
	if _, err := g.Descendants("nope"); !errors.Is(err, ErrUnknownNode) {
		t.Fatalf("Descendants(unknown) = %v", err)
	}
	if err := g.AddEdge(Edge{Src: "nope", Dst: "F1"}); !errors.Is(err, ErrUnknownNode) {
		t.Fatalf("AddEdge(unknown src) = %v", err)
	}
	if err := g.AddEdge(Edge{Src: "F1", Dst: "nope"}); !errors.Is(err, ErrUnknownNode) {
		t.Fatalf("AddEdge(unknown dst) = %v", err)
	}
}

func TestGraphLen(t *testing.T) {
	g := fig11Graph(t)
	nodes, edges := g.Len()
	if nodes != 8 || edges != 8 {
		t.Fatalf("Len = %d nodes, %d edges; want 8, 8", nodes, edges)
	}
}

func TestBuildGraphFromLog(t *testing.T) {
	l := NewLog(testClock())
	l.Append(Record{
		Kind: FlowAllowed, Src: "sensor", Dst: "analyser",
		DataID: "reading-1", Agent: ifc.PrincipalID("hospital"),
	})
	l.Append(Record{Kind: FlowDenied, Src: "sensor", Dst: "advertiser", DataID: "reading-1"})
	l.Append(Record{Kind: FlowAllowed, Src: "analyser", Dst: "archive", DataID: "reading-1"})

	g := BuildGraph(l.Select(nil))

	// Denied flows must not contribute provenance.
	if _, ok := g.Node("advertiser"); ok {
		t.Fatal("denied flow created a node")
	}
	// The datum's descendants include both hops.
	desc, err := g.Descendants("reading-1")
	if err != nil {
		t.Fatal(err)
	}
	if !containsString(desc, "analyser") {
		t.Fatalf("Descendants(reading-1) = %v", desc)
	}
	// The analyser's ancestry reaches the controlling agent.
	agents, err := g.Agents("analyser")
	if err != nil {
		t.Fatal(err)
	}
	if !containsString(agents, "hospital") {
		t.Fatalf("Agents(analyser) = %v", agents)
	}
}

func TestGraphDOTExport(t *testing.T) {
	g := fig11Graph(t)
	dot := g.DOT()
	for _, frag := range []string{
		"digraph provenance",
		`"F1" [shape=ellipse]`,
		`"P1" [shape=box]`,
		`"A1" [shape=diamond]`,
		`"F3" -> "P1" [label="wasGeneratedBy"]`,
		`"P2" -> "P1" [label="wasInformedBy"]`,
	} {
		if !strings.Contains(dot, frag) {
			t.Errorf("DOT output missing %q", frag)
		}
	}
	// Deterministic output.
	if dot != g.DOT() {
		t.Error("DOT output not deterministic")
	}
}

func TestGraphJSONExport(t *testing.T) {
	g := fig11Graph(t)
	b, err := json.Marshal(g)
	if err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		Nodes []struct {
			ID   string `json:"id"`
			Kind string `json:"kind"`
		} `json:"nodes"`
		Edges []struct {
			Src, Dst, Kind string
		} `json:"edges"`
	}
	if err := json.Unmarshal(b, &decoded); err != nil {
		t.Fatal(err)
	}
	if len(decoded.Nodes) != 8 || len(decoded.Edges) != 8 {
		t.Fatalf("exported %d nodes, %d edges", len(decoded.Nodes), len(decoded.Edges))
	}
}

func TestComplianceReport(t *testing.T) {
	l := NewLog(testClock())
	l.Append(flowRecord("a", "b", true))
	l.Append(flowRecord("a", "x", false))
	l.Append(Record{Kind: BreakGlass, Src: "policy-engine", Note: "emergency override"})

	rep := Report(l)
	if rep.Total != 3 {
		t.Fatalf("Total = %d", rep.Total)
	}
	if rep.ByKind["flow-denied"] != 1 || rep.ByKind["break-glass"] != 1 {
		t.Fatalf("ByKind = %v", rep.ByKind)
	}
	if len(rep.Denials) != 1 || rep.Denials[0].Dst != "x" {
		t.Fatalf("Denials = %v", rep.Denials)
	}
	if len(rep.BreakGlass) != 1 {
		t.Fatalf("BreakGlass = %v", rep.BreakGlass)
	}
	if !rep.ChainIntact || rep.FirstBadSeq != -1 {
		t.Fatalf("chain report = %v, %d", rep.ChainIntact, rep.FirstBadSeq)
	}
}

func TestNodeEdgeKindStrings(t *testing.T) {
	if NodeData.String() != "data" || NodeProcess.String() != "process" || NodeAgent.String() != "agent" {
		t.Fatal("node kind strings")
	}
	if NodeKind(9).String() != "NodeKind(9)" {
		t.Fatal("unknown node kind")
	}
	if EdgeKind(9).String() != "EdgeKind(9)" {
		t.Fatal("unknown edge kind")
	}
}
