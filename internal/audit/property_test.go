package audit

import (
	"math/rand"
	"testing"
	"testing/quick"

	"lciot/internal/ifc"
)

// randomRecord builds a record with fuzzable content fields.
func randomRecord(r *rand.Rand) Record {
	kinds := []EventKind{FlowAllowed, FlowDenied, ContextChange, Reconfiguration, BreakGlass}
	words := []string{"sensor", "analyser", "gateway", "cloud", "team", ""}
	pick := func() string { return words[r.Intn(len(words))] }
	return Record{
		Kind:   kinds[r.Intn(len(kinds))],
		Layer:  Layer(r.Intn(3) + 1),
		Domain: pick(),
		Src:    ifc.EntityID(pick()),
		Dst:    ifc.EntityID(pick()),
		DataID: pick(),
		Agent:  ifc.PrincipalID(pick()),
		Note:   pick(),
	}
}

// TestPropertyChainDetectsAnyMutation: for any log of random records,
// mutating any single content field of any record breaks verification.
func TestPropertyChainDetectsAnyMutation(t *testing.T) {
	f := func(seed int64, nRaw uint8, victimRaw uint8, fieldRaw uint8) bool {
		r := rand.New(rand.NewSource(seed))
		n := int(nRaw%16) + 2 // 2..17 records
		l := NewLog(testClock())
		for i := 0; i < n; i++ {
			l.Append(randomRecord(r))
		}
		if bad, err := l.Verify(); err != nil || bad != -1 {
			return false // untampered log must verify
		}
		victim := int(victimRaw) % n
		l.mu.Lock()
		rec := &l.records[victim]
		switch fieldRaw % 5 {
		case 0:
			rec.Note += "!"
		case 1:
			rec.Src += "x"
		case 2:
			rec.DataID += "y"
		case 3:
			if rec.Kind == FlowAllowed {
				rec.Kind = FlowDenied
			} else {
				rec.Kind = FlowAllowed
			}
		case 4:
			rec.Agent += "z"
		}
		l.mu.Unlock()
		bad, err := l.Verify()
		return err != nil && bad == int64(victim)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error("mutation escaped the hash chain:", err)
	}
}

// TestPropertyPruneKeepsVerifiability: pruning any prefix leaves both the
// segment and the retained log verifiable, and they link.
func TestPropertyPruneKeepsVerifiability(t *testing.T) {
	f := func(seed int64, nRaw, cutRaw uint8) bool {
		r := rand.New(rand.NewSource(seed))
		n := int(nRaw%20) + 3
		cut := uint64(cutRaw) % uint64(n)
		l := NewLog(testClock())
		for i := 0; i < n; i++ {
			l.Append(randomRecord(r))
		}
		segment := l.Prune(cut)
		if err := VerifySegment(segment, nil); err != nil {
			return false
		}
		if bad, err := l.Verify(); err != nil || bad != -1 {
			return false
		}
		if cut > 0 && l.Len() > 0 {
			first, err := l.Get(cut)
			if err != nil {
				return false
			}
			if err := VerifySegment(segment, &first); err != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error("prune broke verifiability:", err)
	}
}

// TestPropertyExportImportPreservesChain: JSON round trips never break the
// chain.
func TestPropertyExportImportPreservesChain(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		r := rand.New(rand.NewSource(seed))
		l := NewLog(testClock())
		for i := 0; i < int(nRaw%10)+1; i++ {
			l.Append(randomRecord(r))
		}
		data, err := ExportJSON(l)
		if err != nil {
			return false
		}
		recs, err := ImportRecords(data)
		if err != nil {
			return false
		}
		return VerifySegment(recs, nil) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error("export/import broke the chain:", err)
	}
}
