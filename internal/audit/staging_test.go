package audit

import (
	"fmt"
	"sync"
	"testing"
)

// TestStagingLanesChainOrder drives concurrent per-lane staging — G
// goroutines, each appending a numbered sequence into its own lane — and
// checks the three properties the merge must preserve: nothing is lost,
// the hash chain verifies, and each goroutine's records appear in its
// own program order (tickets are taken under the lane lock, so a
// goroutine's later append can never commit before its earlier one).
func TestStagingLanesChainOrder(t *testing.T) {
	const (
		lanes = 8
		gs    = 8
		per   = 200
	)
	l := NewLog(nil)
	l.SetStagingLanes(lanes)

	var wg sync.WaitGroup
	for g := 0; g < gs; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				l.AppendAsyncLane(g%lanes, Record{
					Kind: FlowAllowed, Layer: LayerMessaging,
					Note: fmt.Sprintf("g%d-%d", g, i),
				})
			}
		}(g)
	}
	wg.Wait()
	l.Flush()

	if got := l.Len(); got != gs*per {
		t.Fatalf("log has %d records, want %d", got, gs*per)
	}
	if seq, err := l.Verify(); err != nil {
		t.Fatalf("chain broken at %d: %v", seq, err)
	}
	// Program order per goroutine: note indexes strictly increase.
	last := make(map[string]int)
	for _, r := range l.Select(nil) {
		var g, i int
		if _, err := fmt.Sscanf(r.Note, "g%d-%d", &g, &i); err != nil {
			t.Fatalf("unexpected note %q", r.Note)
		}
		key := fmt.Sprintf("g%d", g)
		if prev, ok := last[key]; ok && i <= prev {
			t.Fatalf("goroutine %d: record %d committed after %d", g, i, prev)
		}
		last[key] = i
	}
	// Sequence numbers are dense and monotonic.
	recs := l.Select(nil)
	for i := 1; i < len(recs); i++ {
		if recs[i].Seq != recs[i-1].Seq+1 {
			t.Fatalf("sequence gap: %d then %d", recs[i-1].Seq, recs[i].Seq)
		}
	}
}

// TestStagingLanesSinkOrder verifies sinks observe the same merged order
// the chain records, under concurrent multi-lane staging.
func TestStagingLanesSinkOrder(t *testing.T) {
	l := NewLog(nil)
	l.SetStagingLanes(4)
	var mu sync.Mutex
	var seqs []uint64
	l.AddSink(func(r Record) {
		mu.Lock()
		seqs = append(seqs, r.Seq)
		mu.Unlock()
	})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				l.AppendAsyncLane(g, Record{Kind: FlowAllowed, Layer: LayerMessaging})
			}
		}(g)
	}
	wg.Wait()
	l.Flush()
	mu.Lock()
	defer mu.Unlock()
	if len(seqs) != 400 {
		t.Fatalf("sink saw %d records, want 400", len(seqs))
	}
	for i := 1; i < len(seqs); i++ {
		if seqs[i] != seqs[i-1]+1 {
			t.Fatalf("sink order broken: %d then %d", seqs[i-1], seqs[i])
		}
	}
}

// TestStagingLanesGrowOnly: shrinking is refused (records may be staged
// in high lanes), growing drains first so nothing strands.
func TestStagingLanesGrowOnly(t *testing.T) {
	l := NewLog(nil)
	l.SetStagingLanes(4)
	l.AppendAsyncLane(3, Record{Kind: FlowAllowed, Layer: LayerMessaging})
	l.SetStagingLanes(2) // no-op
	l.SetStagingLanes(8)
	l.AppendAsyncLane(7, Record{Kind: FlowAllowed, Layer: LayerMessaging})
	l.Flush()
	if got := l.Len(); got != 2 {
		t.Fatalf("log has %d records, want 2", got)
	}
	if _, err := l.Verify(); err != nil {
		t.Fatal(err)
	}
}

// TestAppendAsyncZeroValueLog: a log never configured for lanes still
// accepts AppendAsync (lazy single lane), as every pre-sharding caller
// expects.
func TestAppendAsyncZeroValueLog(t *testing.T) {
	l := NewLog(nil)
	for i := 0; i < 10; i++ {
		l.AppendAsync(Record{Kind: FlowAllowed, Layer: LayerMessaging})
	}
	l.Flush()
	if got := l.Len(); got != 10 {
		t.Fatalf("log has %d records, want 10", got)
	}
}
