package audit

import (
	"errors"
	"strings"
	"testing"
)

func redactTestLog(t *testing.T, n int) *Log {
	t.Helper()
	l := NewLog(nil)
	for i := 0; i < n; i++ {
		l.Append(Record{
			Kind: FlowAllowed, Layer: LayerMessaging, Domain: "d",
			Src: "sensor", Dst: "analyser", DataID: "datum", Note: "delivered",
		})
	}
	return l
}

// TestLogRedactKeepsChainVerifiable: tombstoning keeps the chain intact
// while the payload is gone.
func TestLogRedactKeepsChainVerifiable(t *testing.T) {
	l := redactTestLog(t, 5)
	if err := l.Redact(2, "retention expired"); err != nil {
		t.Fatal(err)
	}
	if bad, err := l.Verify(); err != nil {
		t.Fatalf("chain broken at %d: %v", bad, err)
	}
	r, err := l.Get(2)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Redacted || r.DataID != "" || r.Src != "" || !strings.Contains(r.Note, "retention") {
		t.Fatalf("tombstone = %+v", r)
	}
	if err := VerifySegment(l.Select(nil), nil); err != nil {
		t.Fatalf("VerifySegment: %v", err)
	}
	// RedactMany skips out-of-range and already-redacted seqs.
	if n := l.RedactMany([]uint64{0, 2, 99}, "x"); n != 1 {
		t.Fatalf("RedactMany tombstoned %d, want 1", n)
	}
	if bad, err := l.Verify(); err != nil {
		t.Fatalf("chain broken at %d after RedactMany: %v", bad, err)
	}
}

// TestForgedTombstoneDetected: the Redacted flag exempts a record from
// the content-hash check, so verifiers must reject a "tombstone" that
// still carries payload — otherwise flipping the flag would allow
// arbitrary record forgery under an intact chain.
func TestForgedTombstoneDetected(t *testing.T) {
	l := redactTestLog(t, 4)
	recs := l.Select(nil)
	forged := append([]Record(nil), recs...)
	forged[1].Redacted = true
	forged[1].Note = "it never happened"
	// (payload fields Src/Dst/DataID deliberately kept)
	err := VerifySegment(forged, nil)
	if err == nil || !errors.Is(err, ErrChainBroken) {
		t.Fatalf("forged tombstone accepted: %v", err)
	}
	if !strings.Contains(err.Error(), "carries payload") {
		t.Fatalf("error = %v", err)
	}
	// A well-formed tombstone with a lying linkage is still caught.
	broken := append([]Record(nil), recs...)
	broken[2] = broken[2].Redact("x")
	broken[2].Hash[0] ^= 0xFF
	if err := VerifySegment(broken, nil); err == nil {
		t.Fatal("tombstone with broken linkage accepted")
	}
}
