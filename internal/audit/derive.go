package audit

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
)

// BuildGraph derives a provenance graph from flow records, the paper's
// observation that "the logs generated during IFC enforcement are a natural
// source of provenance information". Each allowed flow with a DataID
// contributes: the datum (F node), the endpoint processes (P nodes), a
// used/generatedBy pair, and an informedBy edge between the processes.
// Agents attach via wasControlledBy when the record names one.
func BuildGraph(records []Record) *Graph {
	g := &Graph{}
	g.Append(records)
	return g
}

// Append ingests more flow records into an existing graph — the
// build-once/append-many path. Instead of rebuilding the whole graph when
// the audit log grows, callers derive it once with BuildGraph and Append
// each new batch; queries between batches are then served from the
// reachability memo, and only records appended since the last query force
// a recomputation. The whole batch is ingested under one lock acquisition.
func (g *Graph) Append(records []Record) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.nodes == nil {
		g.nodes = make(map[string]Node)
		g.out = make(map[string][]Edge)
		g.in = make(map[string][]Edge)
	}
	ensure := func(id string, kind NodeKind, attrs map[string]string) {
		if _, ok := g.nodes[id]; !ok {
			g.nodes[id] = Node{ID: id, Kind: kind, Attrs: attrs}
		}
	}
	for _, r := range records {
		if r.Kind != FlowAllowed && r.Kind != GateCrossing {
			continue
		}
		src, dst := string(r.Src), string(r.Dst)
		if src == "" || dst == "" {
			continue
		}
		ensure(src, NodeProcess, map[string]string{"ctx": r.SrcCtx.String()})
		ensure(dst, NodeProcess, map[string]string{"ctx": r.DstCtx.String()})
		// Process-to-process information flow.
		_ = g.addEdgeLocked(Edge{Src: dst, Dst: src, Kind: EdgeInformedBy})
		if r.DataID != "" {
			ensure(r.DataID, NodeData, nil)
			_ = g.addEdgeLocked(Edge{Src: src, Dst: r.DataID, Kind: EdgeUsed})
			_ = g.addEdgeLocked(Edge{Src: r.DataID, Dst: dst, Kind: EdgeGeneratedBy})
		}
		if r.Agent != "" {
			ensure(string(r.Agent), NodeAgent, nil)
			_ = g.addEdgeLocked(Edge{Src: src, Dst: string(r.Agent), Kind: EdgeControlledBy})
		}
	}
}

// DOT renders the graph in Graphviz format, with the Fig. 11 conventions:
// data items as ellipses, processes as boxes, agents as diamonds.
func (g *Graph) DOT() string {
	g.mu.RLock()
	defer g.mu.RUnlock()

	ids := make([]string, 0, len(g.nodes))
	for id := range g.nodes {
		ids = append(ids, id)
	}
	sort.Strings(ids)

	var b strings.Builder
	b.WriteString("digraph provenance {\n")
	for _, id := range ids {
		n := g.nodes[id]
		shape := "box"
		switch n.Kind {
		case NodeData:
			shape = "ellipse"
		case NodeAgent:
			shape = "diamond"
		}
		fmt.Fprintf(&b, "  %q [shape=%s];\n", id, shape)
	}
	for _, src := range ids {
		edges := append([]Edge(nil), g.out[src]...)
		sort.Slice(edges, func(i, j int) bool {
			if edges[i].Dst != edges[j].Dst {
				return edges[i].Dst < edges[j].Dst
			}
			return edges[i].Kind < edges[j].Kind
		})
		for _, e := range edges {
			fmt.Fprintf(&b, "  %q -> %q [label=%q];\n", e.Src, e.Dst, e.Kind.String())
		}
	}
	b.WriteString("}\n")
	return b.String()
}

// jsonGraph is the export schema.
type jsonGraph struct {
	Nodes []jsonNode `json:"nodes"`
	Edges []jsonEdge `json:"edges"`
}

type jsonNode struct {
	ID    string            `json:"id"`
	Kind  string            `json:"kind"`
	Attrs map[string]string `json:"attrs,omitempty"`
}

type jsonEdge struct {
	Src  string `json:"src"`
	Dst  string `json:"dst"`
	Kind string `json:"kind"`
}

// MarshalJSON exports the graph for external tools (the paper used Neo4J
// and Cytoscape; any JSON-consuming tool works here).
func (g *Graph) MarshalJSON() ([]byte, error) {
	g.mu.RLock()
	defer g.mu.RUnlock()

	out := jsonGraph{}
	ids := make([]string, 0, len(g.nodes))
	for id := range g.nodes {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		n := g.nodes[id]
		out.Nodes = append(out.Nodes, jsonNode{ID: n.ID, Kind: n.Kind.String(), Attrs: n.Attrs})
		for _, e := range g.out[id] {
			out.Edges = append(out.Edges, jsonEdge{Src: e.Src, Dst: e.Dst, Kind: e.Kind.String()})
		}
	}
	return json.Marshal(out)
}

// ComplianceReport summarises a log for a regulator: totals by kind, denial
// details, break-glass activations, and the erasure evidence (obligation
// actions and tombstones).
type ComplianceReport struct {
	Total       int            `json:"total"`
	ByKind      map[string]int `json:"by_kind"`
	Denials     []Record       `json:"denials,omitempty"`
	BreakGlass  []Record       `json:"break_glass,omitempty"`
	Obligations []Record       `json:"obligations,omitempty"`
	// Redacted counts chain-preserving tombstones in the log.
	Redacted    int   `json:"redacted"`
	ChainIntact bool  `json:"chain_intact"`
	FirstBadSeq int64 `json:"first_bad_seq"` // -1 when intact
}

// Report builds a compliance report over the log's retained records.
func Report(l *Log) ComplianceReport {
	rep := ComplianceReport{ByKind: make(map[string]int), FirstBadSeq: -1}
	for _, r := range l.Select(nil) {
		rep.Total++
		rep.ByKind[r.Kind.String()]++
		if r.Redacted {
			rep.Redacted++
		}
		switch r.Kind {
		case FlowDenied:
			rep.Denials = append(rep.Denials, r)
		case BreakGlass:
			rep.BreakGlass = append(rep.BreakGlass, r)
		case ObligationScheduled, ObligationExecuted, ObligationRefused, Redaction:
			rep.Obligations = append(rep.Obligations, r)
		}
	}
	bad, err := l.Verify()
	rep.ChainIntact = err == nil
	rep.FirstBadSeq = bad
	return rep
}
