// Package gateway implements the subsystem gateways of Section 2.1: hubs
// that front closed or constrained subsystems and "manage interactions on
// behalf of the subsystems they front". Constrained devices cannot carry
// IFC labels themselves, so the gateway assigns each device's readings a
// security context from its device table at ingress — the delegation of
// policy enforcement that Challenge 5 calls for ("gateway components could
// be used to mediate data flows") — and store-and-forwards when the uplink
// is down (Challenge 6's intermittently-connected things).
package gateway

import (
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"time"

	"lciot/internal/audit"
	"lciot/internal/device"
	"lciot/internal/ifc"
	"lciot/internal/msg"
	"lciot/internal/sbus"
	"lciot/internal/store"
)

// Errors reported by gateways.
var (
	ErrUnknownDevice = errors.New("gateway: device not in table")
	ErrBufferFull    = errors.New("gateway: store-and-forward buffer full")
)

// A DeviceEntry maps a constrained device to the security context its data
// carries and the schema it emits.
type DeviceEntry struct {
	DeviceID string
	Ctx      ifc.SecurityContext
	// Consent records whether the data subject has consented to collection
	// (Concern 1); without it the gateway refuses the device's data.
	Consent bool
}

// ReadingSchema is the message type gateways emit for sensor readings.
var ReadingSchema = msg.MustSchema("reading", ifc.EmptyLabel,
	msg.Field{Name: "device", Type: msg.TString, Required: true},
	msg.Field{Name: "metric", Type: msg.TString, Required: true},
	msg.Field{Name: "value", Type: msg.TFloat, Required: true},
	msg.Field{Name: "seq", Type: msg.TInt, Required: true},
)

// A Gateway bridges constrained devices onto a bus. It owns a bus component
// with a "readings" source endpoint; Ingest labels and forwards readings.
type Gateway struct {
	comp *sbus.Component
	log  *audit.Log

	mu      sync.Mutex
	table   map[string]DeviceEntry
	buffer  []pendingReading
	bufMax  int
	uplinkU bool
	// journal, when non-nil, persists the store-and-forward buffer so an
	// outage that outlives the gateway process no longer loses readings.
	journal *store.WAL
}

type pendingReading struct {
	r   device.Reading
	ctx ifc.SecurityContext
	// jseq is the reading's journal sequence number (meaningful only while
	// a journal is enabled); Flush prunes the journal up to the last
	// forwarded reading's jseq.
	jseq uint64
}

// journalEntry is the JSON wire form of one buffered reading. Labels
// travel as their canonical String forms and are re-interned on decode.
// An entry with Erased set is an erasure marker: every earlier journaled
// reading of the device is void, so recovery drops rather than replays it.
type journalEntry struct {
	Device    string  `json:"device"`
	Metric    string  `json:"metric,omitempty"`
	Value     float64 `json:"value,omitempty"`
	AtNano    int64   `json:"at,omitempty"`
	Seq       uint64  `json:"seq,omitempty"`
	Secrecy   string  `json:"secrecy,omitempty"`
	Integrity string  `json:"integrity,omitempty"`
	Erased    bool    `json:"erased,omitempty"`
}

// New registers a gateway component on the bus and returns the gateway.
// bufMax bounds the store-and-forward buffer (0 means 1024).
func New(bus *sbus.Bus, name string, principal ifc.PrincipalID, ctx ifc.SecurityContext, bufMax int) (*Gateway, error) {
	comp, err := bus.Register(name, principal, ctx, nil,
		sbus.EndpointSpec{Name: "readings", Dir: sbus.Source, Schema: ReadingSchema})
	if err != nil {
		return nil, err
	}
	if bufMax <= 0 {
		bufMax = 1024
	}
	return &Gateway{
		comp:    comp,
		log:     bus.Log(),
		table:   make(map[string]DeviceEntry),
		bufMax:  bufMax,
		uplinkU: true,
	}, nil
}

// Component exposes the gateway's bus component (for connecting channels).
func (g *Gateway) Component() *sbus.Component { return g.comp }

// AddDevice installs a device table entry.
func (g *Gateway) AddDevice(e DeviceEntry) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.table[e.DeviceID] = e
}

// RemoveDevice drops a device from the table; subsequent readings are
// refused.
func (g *Gateway) RemoveDevice(id string) {
	g.mu.Lock()
	defer g.mu.Unlock()
	delete(g.table, id)
}

// SetUplink marks the gateway's uplink as up or down. While down, ingested
// readings buffer locally; on recovery, Flush forwards them in order.
func (g *Gateway) SetUplink(up bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.uplinkU = up
}

// EnableJournal opens (creating or recovering) a durable journal for the
// store-and-forward buffer in dir. Readings journaled by a previous
// process — buffered when it died — are recovered into the buffer and
// forwarded on the next Flush, so an uplink outage that outlives the
// gateway process no longer loses data (Challenge 6's intermittently
// connected things, made restart-proof). It returns the number of
// readings recovered.
//
// Delivery is at-least-once: the journal is pruned at segment
// granularity after a successful Flush, so a crash between forwarding and
// pruning can re-forward readings on restart. Readings carry stable
// DataIDs (device/metric/seq), so downstream provenance deduplicates.
func (g *Gateway) EnableJournal(dir string) (int, error) {
	w, err := store.Open(dir, store.Options{SegmentBytes: 256 << 10})
	if err != nil {
		return 0, err
	}
	var recovered []pendingReading
	err = w.ReadSeq(0, 0, func(e store.Entry) error {
		var je journalEntry
		if err := json.Unmarshal(e.Payload, &je); err != nil {
			return fmt.Errorf("gateway: journal entry %d: %w", e.Seq, err)
		}
		if je.Erased {
			// Erasure marker: journaled readings of the device up to here
			// are legally gone — drop them instead of replaying them.
			kept := recovered[:0]
			for _, p := range recovered {
				if p.r.DeviceID != je.Device {
					kept = append(kept, p)
				}
			}
			clear(recovered[len(kept):])
			recovered = kept
			return nil
		}
		secrecy, err := ifc.ParseLabel(je.Secrecy)
		if err != nil {
			return fmt.Errorf("gateway: journal entry %d: %w", e.Seq, err)
		}
		integrity, err := ifc.ParseLabel(je.Integrity)
		if err != nil {
			return fmt.Errorf("gateway: journal entry %d: %w", e.Seq, err)
		}
		recovered = append(recovered, pendingReading{
			r: device.Reading{
				DeviceID: je.Device, Metric: je.Metric, Value: je.Value,
				At: time.Unix(0, je.AtNano), Seq: je.Seq,
			},
			ctx:  ifc.SecurityContext{Secrecy: secrecy, Integrity: integrity},
			jseq: e.Seq,
		})
		return nil
	})
	if err != nil {
		w.Close()
		return 0, err
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.journal != nil {
		w.Close()
		return 0, errors.New("gateway: journal already enabled")
	}
	g.journal = w
	g.buffer = append(recovered, g.buffer...)
	return len(recovered), nil
}

// CloseJournal syncs and closes the journal (no-op without one).
func (g *Gateway) CloseJournal() error {
	g.mu.Lock()
	j := g.journal
	g.journal = nil
	g.mu.Unlock()
	if j == nil {
		return nil
	}
	return j.Close()
}

// journalLocked persists one buffered reading; g.mu must be held. The
// Sync makes the reading durable before Ingest returns — buffering only
// happens while the uplink is down, where disk latency is irrelevant.
func (g *Gateway) journalLocked(p *pendingReading) error {
	je := journalEntry{
		Device: p.r.DeviceID, Metric: p.r.Metric, Value: p.r.Value,
		AtNano: p.r.At.UnixNano(), Seq: p.r.Seq,
		Secrecy:   p.ctx.Secrecy.String(),
		Integrity: p.ctx.Integrity.String(),
	}
	payload, err := json.Marshal(je)
	if err != nil {
		return fmt.Errorf("gateway: journal encode: %w", err)
	}
	seq, err := g.journal.Append(p.r.At, payload)
	if err != nil {
		return err
	}
	p.jseq = seq
	return g.journal.Sync()
}

// EraseDevice executes an erasure obligation against the gateway's live
// state: buffered (store-and-forward) readings of the device are dropped,
// and — when a journal is enabled — its journaled readings are redacted
// in place (payloads rewritten to erasure markers, segments rewritten via
// the WAL's batched redaction), so neither a restart nor the journal
// files themselves can resurrect the values. The device table entry is
// untouched: erasure removes collected data, not the enrollment. Returns
// the number of buffered readings dropped.
func (g *Gateway) EraseDevice(deviceID string) (int, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	kept := g.buffer[:0]
	dropped := 0
	for _, p := range g.buffer {
		if p.r.DeviceID == deviceID {
			dropped++
			continue
		}
		kept = append(kept, p)
	}
	clear(g.buffer[len(kept):]) // erased readings must not linger in memory
	g.buffer = kept
	redacted := 0
	if g.journal != nil {
		marker, err := json.Marshal(journalEntry{Device: deviceID, Erased: true})
		if err != nil {
			return dropped, fmt.Errorf("gateway: erasure marker: %w", err)
		}
		// Find every journaled reading of the device and rewrite its
		// payload to the marker — recovery then skips it, and the
		// plaintext values are gone from the segment files too.
		var seqs []uint64
		err = g.journal.ReadSeq(0, 0, func(e store.Entry) error {
			var je journalEntry
			if jerr := json.Unmarshal(e.Payload, &je); jerr != nil {
				return fmt.Errorf("gateway: journal entry %d: %w", e.Seq, jerr)
			}
			if je.Device == deviceID && !je.Erased {
				seqs = append(seqs, e.Seq)
			}
			return nil
		})
		if err != nil {
			return dropped, err
		}
		if err := g.journal.RedactMany(seqs, func(uint64, []byte) ([]byte, error) {
			return marker, nil
		}); err != nil {
			return dropped, err
		}
		redacted = len(seqs)
	}
	g.log.Append(audit.Record{
		Kind: audit.ObligationExecuted, Layer: audit.LayerMessaging,
		Src: ifc.EntityID(deviceID), Dst: g.comp.Entity().ID(),
		Note: fmt.Sprintf("gateway erasure: %d buffered readings dropped, %d journal entries redacted",
			dropped, redacted),
	})
	return dropped, nil
}

// Buffered returns the number of readings waiting for the uplink.
func (g *Gateway) Buffered() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.buffer)
}

// Ingest accepts one reading from a constrained device: it looks the device
// up, verifies consent, adopts the device's security context for the
// message, and forwards (or buffers) it. The gateway is the enforcement
// point for devices that cannot enforce anything themselves.
func (g *Gateway) Ingest(r device.Reading) error {
	g.mu.Lock()
	entry, ok := g.table[r.DeviceID]
	up := g.uplinkU
	g.mu.Unlock()

	if !ok {
		g.log.Append(audit.Record{
			Kind: audit.FlowDenied, Layer: audit.LayerMessaging,
			Src: ifc.EntityID(r.DeviceID), Dst: g.comp.Entity().ID(),
			DataID: r.DataID(), Note: "gateway refused: device not in table",
		})
		return fmt.Errorf("%w: %q", ErrUnknownDevice, r.DeviceID)
	}
	if !entry.Consent {
		g.log.Append(audit.Record{
			Kind: audit.FlowDenied, Layer: audit.LayerMessaging,
			Src: ifc.EntityID(r.DeviceID), Dst: g.comp.Entity().ID(),
			DataID: r.DataID(), Note: "gateway refused: no consent recorded",
		})
		return fmt.Errorf("gateway: device %q has no recorded consent", r.DeviceID)
	}

	if !up {
		g.mu.Lock()
		defer g.mu.Unlock()
		if len(g.buffer) >= g.bufMax {
			return fmt.Errorf("%w: %d readings", ErrBufferFull, len(g.buffer))
		}
		p := pendingReading{r: r, ctx: entry.Ctx}
		if g.journal != nil {
			if err := g.journalLocked(&p); err != nil {
				return err
			}
		}
		g.buffer = append(g.buffer, p)
		return nil
	}
	return g.forward(r, entry.Ctx)
}

// Flush forwards buffered readings after an uplink recovery, preserving
// order. It stops at the first error, leaving the remainder buffered.
func (g *Gateway) Flush() (int, error) {
	g.mu.Lock()
	pending := g.buffer
	g.buffer = nil
	journal := g.journal
	g.mu.Unlock()

	for i, p := range pending {
		if err := g.forward(p.r, p.ctx); err != nil {
			g.mu.Lock()
			g.buffer = append(pending[i:], g.buffer...)
			g.mu.Unlock()
			return i, err
		}
	}
	if journal != nil && len(pending) > 0 {
		// Everything up to the last forwarded reading is delivered; drop
		// the sealed journal segments covering it. Readings buffered while
		// we were forwarding have higher jseqs and survive.
		if _, err := journal.Prune(pending[len(pending)-1].jseq + 1); err != nil {
			return len(pending), err
		}
	}
	return len(pending), nil
}

// forward adopts the device's context and publishes the reading. The
// gateway component must hold privileges covering the transition between
// device contexts (granted by the domain authority at provisioning).
func (g *Gateway) forward(r device.Reading, ctx ifc.SecurityContext) error {
	if !g.comp.Context().Equal(ctx) {
		if err := g.comp.SetContext(ctx); err != nil {
			return fmt.Errorf("gateway: adopting device context: %w", err)
		}
	}
	m := msg.New("reading").
		Set("device", msg.Str(r.DeviceID)).
		Set("metric", msg.Str(r.Metric)).
		Set("value", msg.Float(r.Value)).
		Set("seq", msg.Int(int64(r.Seq)))
	m.DataID = r.DataID()
	_, err := g.comp.Publish("readings", m)
	return err
}
