// Package gateway implements the subsystem gateways of Section 2.1: hubs
// that front closed or constrained subsystems and "manage interactions on
// behalf of the subsystems they front". Constrained devices cannot carry
// IFC labels themselves, so the gateway assigns each device's readings a
// security context from its device table at ingress — the delegation of
// policy enforcement that Challenge 5 calls for ("gateway components could
// be used to mediate data flows") — and store-and-forwards when the uplink
// is down (Challenge 6's intermittently-connected things).
package gateway

import (
	"errors"
	"fmt"
	"sync"

	"lciot/internal/audit"
	"lciot/internal/device"
	"lciot/internal/ifc"
	"lciot/internal/msg"
	"lciot/internal/sbus"
)

// Errors reported by gateways.
var (
	ErrUnknownDevice = errors.New("gateway: device not in table")
	ErrBufferFull    = errors.New("gateway: store-and-forward buffer full")
)

// A DeviceEntry maps a constrained device to the security context its data
// carries and the schema it emits.
type DeviceEntry struct {
	DeviceID string
	Ctx      ifc.SecurityContext
	// Consent records whether the data subject has consented to collection
	// (Concern 1); without it the gateway refuses the device's data.
	Consent bool
}

// ReadingSchema is the message type gateways emit for sensor readings.
var ReadingSchema = msg.MustSchema("reading", ifc.EmptyLabel,
	msg.Field{Name: "device", Type: msg.TString, Required: true},
	msg.Field{Name: "metric", Type: msg.TString, Required: true},
	msg.Field{Name: "value", Type: msg.TFloat, Required: true},
	msg.Field{Name: "seq", Type: msg.TInt, Required: true},
)

// A Gateway bridges constrained devices onto a bus. It owns a bus component
// with a "readings" source endpoint; Ingest labels and forwards readings.
type Gateway struct {
	comp *sbus.Component
	log  *audit.Log

	mu      sync.Mutex
	table   map[string]DeviceEntry
	buffer  []pendingReading
	bufMax  int
	uplinkU bool
}

type pendingReading struct {
	r   device.Reading
	ctx ifc.SecurityContext
}

// New registers a gateway component on the bus and returns the gateway.
// bufMax bounds the store-and-forward buffer (0 means 1024).
func New(bus *sbus.Bus, name string, principal ifc.PrincipalID, ctx ifc.SecurityContext, bufMax int) (*Gateway, error) {
	comp, err := bus.Register(name, principal, ctx, nil,
		sbus.EndpointSpec{Name: "readings", Dir: sbus.Source, Schema: ReadingSchema})
	if err != nil {
		return nil, err
	}
	if bufMax <= 0 {
		bufMax = 1024
	}
	return &Gateway{
		comp:    comp,
		log:     bus.Log(),
		table:   make(map[string]DeviceEntry),
		bufMax:  bufMax,
		uplinkU: true,
	}, nil
}

// Component exposes the gateway's bus component (for connecting channels).
func (g *Gateway) Component() *sbus.Component { return g.comp }

// AddDevice installs a device table entry.
func (g *Gateway) AddDevice(e DeviceEntry) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.table[e.DeviceID] = e
}

// RemoveDevice drops a device from the table; subsequent readings are
// refused.
func (g *Gateway) RemoveDevice(id string) {
	g.mu.Lock()
	defer g.mu.Unlock()
	delete(g.table, id)
}

// SetUplink marks the gateway's uplink as up or down. While down, ingested
// readings buffer locally; on recovery, Flush forwards them in order.
func (g *Gateway) SetUplink(up bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.uplinkU = up
}

// Buffered returns the number of readings waiting for the uplink.
func (g *Gateway) Buffered() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.buffer)
}

// Ingest accepts one reading from a constrained device: it looks the device
// up, verifies consent, adopts the device's security context for the
// message, and forwards (or buffers) it. The gateway is the enforcement
// point for devices that cannot enforce anything themselves.
func (g *Gateway) Ingest(r device.Reading) error {
	g.mu.Lock()
	entry, ok := g.table[r.DeviceID]
	up := g.uplinkU
	g.mu.Unlock()

	if !ok {
		g.log.Append(audit.Record{
			Kind: audit.FlowDenied, Layer: audit.LayerMessaging,
			Src: ifc.EntityID(r.DeviceID), Dst: g.comp.Entity().ID(),
			DataID: r.DataID(), Note: "gateway refused: device not in table",
		})
		return fmt.Errorf("%w: %q", ErrUnknownDevice, r.DeviceID)
	}
	if !entry.Consent {
		g.log.Append(audit.Record{
			Kind: audit.FlowDenied, Layer: audit.LayerMessaging,
			Src: ifc.EntityID(r.DeviceID), Dst: g.comp.Entity().ID(),
			DataID: r.DataID(), Note: "gateway refused: no consent recorded",
		})
		return fmt.Errorf("gateway: device %q has no recorded consent", r.DeviceID)
	}

	if !up {
		g.mu.Lock()
		defer g.mu.Unlock()
		if len(g.buffer) >= g.bufMax {
			return fmt.Errorf("%w: %d readings", ErrBufferFull, len(g.buffer))
		}
		g.buffer = append(g.buffer, pendingReading{r: r, ctx: entry.Ctx})
		return nil
	}
	return g.forward(r, entry.Ctx)
}

// Flush forwards buffered readings after an uplink recovery, preserving
// order. It stops at the first error, leaving the remainder buffered.
func (g *Gateway) Flush() (int, error) {
	g.mu.Lock()
	pending := g.buffer
	g.buffer = nil
	g.mu.Unlock()

	for i, p := range pending {
		if err := g.forward(p.r, p.ctx); err != nil {
			g.mu.Lock()
			g.buffer = append(pending[i:], g.buffer...)
			g.mu.Unlock()
			return i, err
		}
	}
	return len(pending), nil
}

// forward adopts the device's context and publishes the reading. The
// gateway component must hold privileges covering the transition between
// device contexts (granted by the domain authority at provisioning).
func (g *Gateway) forward(r device.Reading, ctx ifc.SecurityContext) error {
	if !g.comp.Context().Equal(ctx) {
		if err := g.comp.SetContext(ctx); err != nil {
			return fmt.Errorf("gateway: adopting device context: %w", err)
		}
	}
	m := msg.New("reading").
		Set("device", msg.Str(r.DeviceID)).
		Set("metric", msg.Str(r.Metric)).
		Set("value", msg.Float(r.Value)).
		Set("seq", msg.Int(int64(r.Seq)))
	m.DataID = r.DataID()
	_, err := g.comp.Publish("readings", m)
	return err
}
