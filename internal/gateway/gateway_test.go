package gateway

import (
	"errors"
	"sync"
	"testing"
	"time"

	"lciot/internal/ac"
	"lciot/internal/audit"
	"lciot/internal/device"
	"lciot/internal/ifc"
	"lciot/internal/msg"
	"lciot/internal/sbus"
)

func openACL() *ac.ACL {
	var a ac.ACL
	a.DefineRole(ac.Role{Name: "any", Grants: []ac.Permission{{Action: "*", Resource: "**"}}})
	_ = a.Assign(ac.Assignment{Principal: "hospital", Role: "any", Args: map[string]string{}})
	return &a
}

type recorder struct {
	mu   sync.Mutex
	msgs []*msg.Message
}

func (r *recorder) handler() sbus.Handler {
	return func(m *msg.Message, _ sbus.Delivery) {
		r.mu.Lock()
		defer r.mu.Unlock()
		r.msgs = append(r.msgs, m)
	}
}

func (r *recorder) count() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.msgs)
}

func annDeviceCtx() ifc.SecurityContext {
	return ifc.MustContext([]ifc.Tag{"medical", "ann"}, nil)
}

// newTestGateway wires gateway -> analyser on one bus, with the gateway
// holding owner privileges over the tags it mediates.
func newTestGateway(t *testing.T) (*Gateway, *recorder, *sbus.Bus) {
	t.Helper()
	bus := sbus.NewBus("home", openACL(), nil, nil)
	gw, err := New(bus, "gw", "hospital", annDeviceCtx(), 4)
	if err != nil {
		t.Fatal(err)
	}
	// The domain authority grants the gateway the right to move between the
	// contexts of the devices it fronts.
	if err := gw.Component().Entity().GrantPrivileges(ifc.OwnerPrivileges("medical", "ann", "zeb")); err != nil {
		t.Fatal(err)
	}
	rec := &recorder{}
	if _, err := bus.Register("analyser", "hospital", annDeviceCtx(), rec.handler(),
		sbus.EndpointSpec{Name: "in", Dir: sbus.Sink, Schema: ReadingSchema}); err != nil {
		t.Fatal(err)
	}
	if err := bus.Connect("hospital", "gw.readings", "analyser.in"); err != nil {
		t.Fatal(err)
	}
	gw.AddDevice(DeviceEntry{DeviceID: "ann-sensor", Ctx: annDeviceCtx(), Consent: true})
	return gw, rec, bus
}

func reading(dev string, seq uint64) device.Reading {
	return device.Reading{DeviceID: dev, Metric: "heart-rate", Value: 72, Seq: seq, At: time.Unix(0, 0)}
}

func TestIngestForwardsLabelledReading(t *testing.T) {
	gw, rec, _ := newTestGateway(t)
	if err := gw.Ingest(reading("ann-sensor", 0)); err != nil {
		t.Fatal(err)
	}
	if rec.count() != 1 {
		t.Fatalf("deliveries = %d", rec.count())
	}
	rec.mu.Lock()
	m := rec.msgs[0]
	rec.mu.Unlock()
	if v, _ := m.Get("device"); v.Str != "ann-sensor" {
		t.Fatalf("message = %v", m)
	}
	if m.DataID != "ann-sensor/heart-rate/0" {
		t.Fatalf("DataID = %q", m.DataID)
	}
}

func TestIngestRefusesUnknownDevice(t *testing.T) {
	gw, rec, bus := newTestGateway(t)
	if err := gw.Ingest(reading("rogue", 0)); !errors.Is(err, ErrUnknownDevice) {
		t.Fatalf("unknown device = %v", err)
	}
	if rec.count() != 0 {
		t.Fatal("rogue reading forwarded")
	}
	denials := bus.Log().Select(func(r audit.Record) bool { return r.Kind == audit.FlowDenied })
	if len(denials) != 1 {
		t.Fatalf("denials = %d", len(denials))
	}
}

func TestIngestRequiresConsent(t *testing.T) {
	gw, rec, _ := newTestGateway(t)
	gw.AddDevice(DeviceEntry{DeviceID: "no-consent", Ctx: annDeviceCtx(), Consent: false})
	if err := gw.Ingest(reading("no-consent", 0)); err == nil {
		t.Fatal("consentless reading accepted")
	}
	if rec.count() != 0 {
		t.Fatal("consentless reading forwarded")
	}
}

func TestRemoveDevice(t *testing.T) {
	gw, _, _ := newTestGateway(t)
	gw.RemoveDevice("ann-sensor")
	if err := gw.Ingest(reading("ann-sensor", 1)); !errors.Is(err, ErrUnknownDevice) {
		t.Fatalf("removed device = %v", err)
	}
}

func TestStoreAndForward(t *testing.T) {
	gw, rec, _ := newTestGateway(t)
	gw.SetUplink(false)
	for i := uint64(0); i < 3; i++ {
		if err := gw.Ingest(reading("ann-sensor", i)); err != nil {
			t.Fatal(err)
		}
	}
	if rec.count() != 0 {
		t.Fatal("delivered while uplink down")
	}
	if gw.Buffered() != 3 {
		t.Fatalf("buffered = %d", gw.Buffered())
	}

	gw.SetUplink(true)
	n, err := gw.Flush()
	if err != nil || n != 3 {
		t.Fatalf("Flush = %d, %v", n, err)
	}
	if rec.count() != 3 {
		t.Fatalf("deliveries after flush = %d", rec.count())
	}
	// In-order delivery.
	rec.mu.Lock()
	defer rec.mu.Unlock()
	for i, m := range rec.msgs {
		if v, _ := m.Get("seq"); v.Int != int64(i) {
			t.Fatalf("out of order: msg %d has seq %d", i, v.Int)
		}
	}
}

func TestBufferOverflow(t *testing.T) {
	gw, _, _ := newTestGateway(t)
	gw.SetUplink(false)
	for i := uint64(0); i < 4; i++ {
		if err := gw.Ingest(reading("ann-sensor", i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := gw.Ingest(reading("ann-sensor", 99)); !errors.Is(err, ErrBufferFull) {
		t.Fatalf("overflow = %v", err)
	}
}

func TestFlushStopsOnForwardError(t *testing.T) {
	gw, _, _ := newTestGateway(t)
	gw.SetUplink(false)
	// Two readings from Ann, then one from a device whose context the
	// gateway has no privileges for: the forward of that reading fails.
	locked := ifc.MustContext([]ifc.Tag{"locked-domain"}, nil)
	gw.AddDevice(DeviceEntry{DeviceID: "locked-sensor", Ctx: locked, Consent: true})
	if err := gw.Ingest(reading("ann-sensor", 0)); err != nil {
		t.Fatal(err)
	}
	if err := gw.Ingest(device.Reading{DeviceID: "locked-sensor", Metric: "m", Seq: 1}); err != nil {
		t.Fatal(err)
	}
	if err := gw.Ingest(reading("ann-sensor", 2)); err != nil {
		t.Fatal(err)
	}
	gw.SetUplink(true)
	n, err := gw.Flush()
	if err == nil {
		t.Fatal("flush should fail on the unprivileged context switch")
	}
	if n != 1 {
		t.Fatalf("forwarded %d before failing, want 1", n)
	}
	// The failed reading and its successor remain buffered, in order.
	if gw.Buffered() != 2 {
		t.Fatalf("buffered = %d, want 2", gw.Buffered())
	}
}

func TestGatewayRegisterNameCollision(t *testing.T) {
	bus := sbus.NewBus("b", openACL(), nil, nil)
	if _, err := New(bus, "gw", "hospital", annDeviceCtx(), 0); err != nil {
		t.Fatal(err)
	}
	if _, err := New(bus, "gw", "hospital", annDeviceCtx(), 0); err == nil {
		t.Fatal("duplicate gateway name accepted")
	}
}

func TestGatewayAdoptsDeviceContext(t *testing.T) {
	gw, _, bus := newTestGateway(t)
	zebCtx := ifc.MustContext([]ifc.Tag{"medical", "zeb"}, nil)
	gw.AddDevice(DeviceEntry{DeviceID: "zeb-sensor", Ctx: zebCtx, Consent: true})

	// Forwarding Zeb's reading forces the gateway into Zeb's context; the
	// channel to Ann's analyser becomes illegal and is torn down, so the
	// reading is not delivered there.
	if err := gw.Ingest(reading("zeb-sensor", 0)); err != nil {
		t.Fatal(err)
	}
	if !gw.Component().Context().Equal(zebCtx) {
		t.Fatalf("gateway context = %v", gw.Component().Context())
	}
	if got := len(bus.Channels()); got != 0 {
		t.Fatalf("channels after context switch = %d", got)
	}
}

// TestJournalSurvivesRestart simulates a gateway process dying while the
// uplink is down: the buffered readings live in the journal, and a new
// gateway over the same directory recovers and forwards them in order.
func TestJournalSurvivesRestart(t *testing.T) {
	dir := t.TempDir()

	gw, rec, _ := newTestGateway(t)
	if n, err := gw.EnableJournal(dir); err != nil || n != 0 {
		t.Fatalf("EnableJournal = %d, %v", n, err)
	}
	gw.SetUplink(false)
	for i := uint64(0); i < 3; i++ {
		if err := gw.Ingest(reading("ann-sensor", i)); err != nil {
			t.Fatal(err)
		}
	}
	if rec.count() != 0 {
		t.Fatal("delivered while uplink down")
	}
	// The process dies without flushing: no Close, no Flush. The journal
	// was synced on every buffered ingest, so nothing is lost.

	gw2, rec2, _ := newTestGateway(t)
	n, err := gw2.EnableJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("recovered %d readings, want 3", n)
	}
	if gw2.Buffered() != 3 {
		t.Fatalf("buffered after recovery = %d", gw2.Buffered())
	}
	if fn, err := gw2.Flush(); err != nil || fn != 3 {
		t.Fatalf("Flush = %d, %v", fn, err)
	}
	if rec2.count() != 3 {
		t.Fatalf("deliveries after recovery = %d", rec2.count())
	}
	rec2.mu.Lock()
	for i, m := range rec2.msgs {
		if v, _ := m.Get("seq"); v.Int != int64(i) {
			t.Fatalf("out of order after recovery: msg %d has seq %d", i, v.Int)
		}
		if m.DataID == "" {
			t.Fatal("recovered reading lost its DataID")
		}
	}
	rec2.mu.Unlock()
	if err := gw2.CloseJournal(); err != nil {
		t.Fatal(err)
	}
}

// TestJournalPruneAfterFlush checks that a full flush prunes delivered
// readings so they are not re-forwarded by the next recovery.
func TestJournalPruneAfterFlush(t *testing.T) {
	dir := t.TempDir()
	gw, _, _ := newTestGateway(t)
	if _, err := gw.EnableJournal(dir); err != nil {
		t.Fatal(err)
	}
	gw.SetUplink(false)
	for i := uint64(0); i < 3; i++ {
		if err := gw.Ingest(reading("ann-sensor", i)); err != nil {
			t.Fatal(err)
		}
	}
	gw.SetUplink(true)
	if n, err := gw.Flush(); err != nil || n != 3 {
		t.Fatalf("Flush = %d, %v", n, err)
	}
	if err := gw.CloseJournal(); err != nil {
		t.Fatal(err)
	}

	// Prune is segment-granular, so recovery may legitimately re-buffer a
	// suffix of delivered readings (at-least-once) — but after a full
	// flush with the default small segments nothing should remain.
	gw2, _, _ := newTestGateway(t)
	n, err := gw2.EnableJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("recovered %d readings after clean flush, want 0", n)
	}
}
