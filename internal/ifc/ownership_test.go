package ifc

import (
	"errors"
	"reflect"
	"sync"
	"testing"
)

func TestOwnershipCreateAndOwner(t *testing.T) {
	var o Ownership
	p, err := o.CreateTag("hospital", "medical")
	if err != nil {
		t.Fatal(err)
	}
	if !p.Equal(OwnerPrivileges("medical")) {
		t.Fatalf("creator privileges = %v", p)
	}
	owner, err := o.Owner("medical")
	if err != nil || owner != "hospital" {
		t.Fatalf("Owner = %q, %v", owner, err)
	}
	if _, err := o.CreateTag("other", "medical"); !errors.Is(err, ErrTagExists) {
		t.Fatalf("duplicate creation = %v, want ErrTagExists", err)
	}
	if _, err := o.CreateTag("x", "bad tag"); err == nil {
		t.Fatal("invalid tag accepted")
	}
	if _, err := o.Owner("nope"); !errors.Is(err, ErrTagUnowned) {
		t.Fatalf("Owner(unknown) = %v, want ErrTagUnowned", err)
	}
}

func TestOwnershipDelegation(t *testing.T) {
	var o Ownership
	if _, err := o.CreateTag("hospital", "medical"); err != nil {
		t.Fatal(err)
	}

	grant := Privileges{RemoveSecrecy: MustLabel("medical")}
	if err := o.Delegate("hospital", "stats-svc", "medical", grant); err != nil {
		t.Fatal(err)
	}
	got := o.PrivilegesOf("stats-svc")
	if !got.Equal(grant) {
		t.Fatalf("delegated privileges = %v, want %v", got, grant)
	}

	// Sub-delegation of held privileges is allowed...
	if err := o.Delegate("stats-svc", "helper", "medical", grant); err != nil {
		t.Fatalf("sub-delegation of held privileges failed: %v", err)
	}
	// ...but amplification is not.
	bigger := Privileges{AddIntegrity: MustLabel("medical")}
	if err := o.Delegate("stats-svc", "helper", "medical", bigger); !errors.Is(err, ErrNotAuthorty) {
		t.Fatalf("amplifying delegation = %v, want ErrNotAuthorty", err)
	}
	// Delegating an unowned tag fails.
	if err := o.Delegate("hospital", "x", "unknown", grant); !errors.Is(err, ErrTagUnowned) {
		t.Fatalf("delegation of unowned tag = %v, want ErrTagUnowned", err)
	}
}

func TestOwnershipRevocation(t *testing.T) {
	var o Ownership
	if _, err := o.CreateTag("hospital", "medical"); err != nil {
		t.Fatal(err)
	}
	grant := Privileges{RemoveSecrecy: MustLabel("medical")}
	if err := o.Delegate("hospital", "svc", "medical", grant); err != nil {
		t.Fatal(err)
	}
	if err := o.Revoke("svc", "svc", "medical"); !errors.Is(err, ErrNotAuthorty) {
		t.Fatalf("non-owner revoke = %v, want ErrNotAuthorty", err)
	}
	if err := o.Revoke("hospital", "svc", "medical"); err != nil {
		t.Fatal(err)
	}
	if got := o.PrivilegesOf("svc"); !got.IsEmpty() {
		t.Fatalf("privileges after revocation = %v, want empty", got)
	}
	if err := o.Revoke("hospital", "svc", "unknown"); !errors.Is(err, ErrTagUnowned) {
		t.Fatalf("revoke unowned = %v, want ErrTagUnowned", err)
	}
}

func TestOwnershipPrivilegesOfAggregates(t *testing.T) {
	var o Ownership
	if _, err := o.CreateTag("ann", "ann-data"); err != nil {
		t.Fatal(err)
	}
	if _, err := o.CreateTag("hospital", "medical"); err != nil {
		t.Fatal(err)
	}
	if err := o.Delegate("hospital", "ann", "medical",
		Privileges{AddSecrecy: MustLabel("medical")}); err != nil {
		t.Fatal(err)
	}
	got := o.PrivilegesOf("ann")
	want := OwnerPrivileges("ann-data").Union(Privileges{AddSecrecy: MustLabel("medical")})
	if !got.Equal(want) {
		t.Fatalf("aggregated privileges = %v, want %v", got, want)
	}
}

func TestOwnershipTagsSorted(t *testing.T) {
	var o Ownership
	for _, tag := range []Tag{"zeta", "alpha", "mid"} {
		if _, err := o.CreateTag("p", tag); err != nil {
			t.Fatal(err)
		}
	}
	want := []Tag{"alpha", "mid", "zeta"}
	if got := o.Tags(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Tags() = %v, want %v", got, want)
	}
}

func TestOwnershipConcurrent(t *testing.T) {
	var o Ownership
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			tag := Tag(rune('a'+n)) + "-tag"
			if _, err := o.CreateTag(PrincipalID("p"), tag); err != nil {
				t.Errorf("CreateTag: %v", err)
				return
			}
			_ = o.PrivilegesOf("p")
			_, _ = o.Owner(tag)
			_ = o.Tags()
		}(i)
	}
	wg.Wait()
	if len(o.Tags()) != 8 {
		t.Fatalf("expected 8 tags, got %d", len(o.Tags()))
	}
}
