package ifc

import (
	"sort"
	"sync"
	"sync/atomic"

	"lciot/internal/telemetry"
)

// Flow-check caching. CheckFlow is on the hot path of every message
// delivery and every channel (re-)evaluation, so its decisions are cached
// in a small, bounded, lock-free direct-mapped table keyed by the interned
// label keys of the two contexts. Because labels are hash-consed, a key
// tuple identifies the exact tag sets involved, so a cached entry can never
// be applied to the wrong contexts.
//
// The table is generation-stamped: InvalidateFlowCache bumps the global
// generation, instantly retiring every cached decision. The pure flow rule
// itself never changes, but the layers above cache *derived* decisions
// (entity transition authorisations, gate routes, bus channel legality)
// whose validity ends when privileges are granted or revoked or gates are
// installed or removed — the control planes in sbus/core call
// InvalidateFlowCache on those events so every stamped cache in the process
// turns over together.

// flowKey identifies an ordered pair of security contexts by interned label
// keys (secrecy, integrity, jurisdiction and purpose of src, then of dst).
type flowKey struct {
	ss, si, sj, sp uint64
	ds, di, dj, dp uint64
}

// flowEntry is one cached decision. Entries are immutable once published.
type flowEntry struct {
	key flowKey
	gen uint64
	d   FlowDecision
}

// flowTableSize bounds the decision cache; must be a power of two.
const flowTableSize = 1024

var (
	flowTable [flowTableSize]atomic.Pointer[flowEntry]
	flowGen   atomic.Uint64
)

// contextKey builds the cache key for a src→dst check.
func contextKey(src, dst SecurityContext) flowKey {
	return flowKey{
		ss: src.Secrecy.key(), si: src.Integrity.key(),
		sj: src.Jurisdiction.key(), sp: src.Purpose.key(),
		ds: dst.Secrecy.key(), di: dst.Integrity.key(),
		dj: dst.Jurisdiction.key(), dp: dst.Purpose.key(),
	}
}

// slot hashes the key into the direct-mapped table. The facet keys are
// folded in with their own multipliers; facet-free contexts contribute
// zeros, so their distribution is unchanged.
func (k flowKey) slot() *atomic.Pointer[flowEntry] {
	h := k.ss*0x9e3779b97f4a7c15 ^ k.si*0xc2b2ae3d27d4eb4f ^
		k.ds*0x165667b19e3779f9 ^ k.di*0x27d4eb2f165667c5 ^
		k.sj*0x85ebca77c2b2ae63 ^ k.sp*0xff51afd7ed558ccd ^
		k.dj*0xc4ceb9fe1a85ec53 ^ k.dp*0x2545f4914f6cdd1d
	h ^= h >> 29
	return &flowTable[h&(flowTableSize-1)]
}

// FlowCacheGeneration returns the current flow-cache generation, advancing
// whenever InvalidateFlowCache is called. Layers that maintain their own
// stamped caches may observe it to expire entries in lockstep.
func FlowCacheGeneration() uint64 { return flowGen.Load() }

// InvalidateFlowCache retires every cached flow decision in the process by
// advancing the generation. Control planes call it whenever privileges or
// gates change, so that any decision derived from the old configuration is
// re-evaluated.
func InvalidateFlowCache() { flowGen.Add(1) }

// A GateRegistry holds the gates installed in one enforcement domain and
// answers (cached) routability queries: whether data can move between two
// security contexts either directly under the flow rule or through one
// installed gate. Installing or removing a gate invalidates the route cache
// (its generation advances), so a previously cached deny becomes
// re-derivable as an allow the moment a bridging gate appears.
//
// The zero value is ready to use.
type GateRegistry struct {
	mu     sync.RWMutex
	gates  map[string]*Gate
	gen    uint64
	routes map[flowKey]routeEntry
}

// routeEntry is one cached routability decision.
type routeEntry struct {
	gen uint64
	via string
	ok  bool
}

// maxRouteCache bounds the per-registry route cache.
const maxRouteCache = 1024

// Install adds a gate under its name, replacing any previous gate with the
// same name, and invalidates cached routes (both the registry's own route
// cache and, via InvalidateFlowCache, every stamped cache in the process).
func (r *GateRegistry) Install(g *Gate) {
	r.mu.Lock()
	if r.gates == nil {
		r.gates = make(map[string]*Gate)
	}
	r.gates[g.Name] = g
	r.gen++
	r.mu.Unlock()
	InvalidateFlowCache()
}

// Remove deletes a gate by name, reporting whether it existed, and
// invalidates cached routes.
func (r *GateRegistry) Remove(name string) bool {
	r.mu.Lock()
	_, ok := r.gates[name]
	if ok {
		delete(r.gates, name)
		r.gen++
	}
	r.mu.Unlock()
	if ok {
		InvalidateFlowCache()
	}
	return ok
}

// Gate returns an installed gate by name.
func (r *GateRegistry) Gate(name string) (*Gate, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	g, ok := r.gates[name]
	return g, ok
}

// Names lists installed gate names, sorted.
func (r *GateRegistry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.gates))
	for n := range r.gates {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Generation returns the registry's route-cache generation; it advances on
// every Install and Remove.
func (r *GateRegistry) Generation() uint64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.gen
}

// Route reports whether data may move from src to dst: directly under the
// flow rule (via == "", ok == true) or through a single installed gate
// (via == the gate's name). Decisions are cached per context pair and
// invalidated when gates change.
func (r *GateRegistry) Route(src, dst SecurityContext) (via string, ok bool) {
	k := contextKey(src, dst)
	r.mu.RLock()
	e, hit := r.routes[k]
	gen := r.gen
	r.mu.RUnlock()
	if hit && e.gen == gen {
		return e.via, e.ok
	}

	via, ok = "", src.CanFlowTo(dst)
	if !ok {
		r.mu.RLock()
		for name, g := range r.gates {
			if src.CanFlowTo(g.Input) && g.Output.CanFlowTo(dst) {
				// Prefer the lexically smallest bridging gate so the
				// decision is deterministic across map iteration orders.
				if !ok || name < via {
					via, ok = name, true
				}
			}
		}
		r.mu.RUnlock()
	}

	r.mu.Lock()
	if r.gen == gen { // don't cache a decision derived from a stale gate set
		if r.routes == nil {
			r.routes = make(map[flowKey]routeEntry)
		}
		if len(r.routes) >= maxRouteCache {
			clear(r.routes)
		}
		r.routes[k] = routeEntry{gen: gen, via: via, ok: ok}
	}
	r.mu.Unlock()
	return via, ok
}

// Flow-cache effectiveness counters. A cold or churning cache (context
// changes bump the generation, invalidating every entry) shows up as a
// rising miss rate long before it shows up as delivery latency. Gated:
// one atomic load each while telemetry is disabled.
var (
	flowCacheHits   = telemetry.NewCounter("ifc_flowcache_hits_total")
	flowCacheMisses = telemetry.NewCounter("ifc_flowcache_misses_total")
)
