package ifc

import (
	"errors"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

// Generate implements quick.Generator for SecurityContext.
func (SecurityContext) Generate(r *rand.Rand, _ int) reflect.Value {
	return reflect.ValueOf(SecurityContext{Secrecy: genLabel(r), Integrity: genLabel(r)})
}

func TestCanFlowToBasic(t *testing.T) {
	public := SecurityContext{}
	medical := MustContext([]Tag{"medical"}, nil)
	medicalAnn := MustContext([]Tag{"medical", "ann"}, nil)
	endorsed := MustContext(nil, []Tag{"hosp-dev"})

	tests := []struct {
		name     string
		src, dst SecurityContext
		want     bool
	}{
		{"public-to-public", public, public, true},
		{"public-to-secret", public, medical, true},
		{"secret-to-public", medical, public, false},
		{"secret-to-more-secret", medical, medicalAnn, true},
		{"more-secret-to-less", medicalAnn, medical, false},
		{"same-domain", medicalAnn, medicalAnn, true},
		{"integrity-demanded-not-held", public, endorsed, false},
		{"integrity-held-to-undemanding", endorsed, public, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.src.CanFlowTo(tt.dst); got != tt.want {
				t.Fatalf("CanFlowTo(%v -> %v) = %v, want %v", tt.src, tt.dst, got, tt.want)
			}
		})
	}
}

// TestFig3FlowMatrix reproduces experiment E3: the allowed and prevented
// flows in Fig. 3 of the paper. Data labelled S={s1} may flow to S={s1,s2}
// but not to S={s3} nor to the endorser's I={i1} domain; once in {s1,s2}
// it stays there.
func TestFig3FlowMatrix(t *testing.T) {
	s1 := MustContext([]Tag{"s1"}, nil)
	s1s2 := MustContext([]Tag{"s1", "s2"}, nil)
	s3 := MustContext([]Tag{"s3"}, nil)
	i1 := MustContext(nil, []Tag{"i1"})

	allowed := [][2]SecurityContext{
		{s1, s1s2}, // into the more constrained domain
	}
	prevented := [][2]SecurityContext{
		{s1, s3},   // disjoint secrecy domain
		{s1s2, s1}, // cannot flow back out (confinement)
		{s1, i1},   // destination demands integrity i1 the source lacks
		{s3, s1s2}, // s3 not covered downstream
	}
	for _, f := range allowed {
		if !f[0].CanFlowTo(f[1]) {
			t.Errorf("Fig3: flow %v -> %v should be allowed", f[0], f[1])
		}
	}
	for _, f := range prevented {
		if f[0].CanFlowTo(f[1]) {
			t.Errorf("Fig3: flow %v -> %v should be prevented", f[0], f[1])
		}
	}
}

// TestFig4HomeMonitoringFlows reproduces the label arithmetic of Fig. 4:
// Ann's sensors may feed Ann's analyser; Zeb's sensors fail both the
// secrecy and the integrity half of the rule.
func TestFig4HomeMonitoringFlows(t *testing.T) {
	annDevice := MustContext([]Tag{"medical", "ann"}, []Tag{"hosp-dev", "consent"})
	annAnalyser := MustContext([]Tag{"medical", "ann"}, []Tag{"hosp-dev", "consent"})
	zebDevice := MustContext([]Tag{"medical", "zeb"}, []Tag{"zeb-dev", "consent"})

	if !annDevice.CanFlowTo(annAnalyser) {
		t.Fatal("Ann's data must flow to Ann's analyser")
	}

	d := CheckFlow(zebDevice, annAnalyser)
	if d.Allowed {
		t.Fatal("Zeb's data must not flow to Ann's analyser")
	}
	if want := MustLabel("zeb"); !d.MissingSecrecy.Equal(want) {
		t.Errorf("missing secrecy = %v, want %v (destination S has no zeb)", d.MissingSecrecy, want)
	}
	if want := MustLabel("hosp-dev"); !d.MissingIntegrity.Equal(want) {
		t.Errorf("missing integrity = %v, want %v (source I has no hosp-dev)", d.MissingIntegrity, want)
	}
}

func TestEnforceFlowError(t *testing.T) {
	src := MustContext([]Tag{"medical", "zeb"}, []Tag{"zeb-dev"})
	dst := MustContext([]Tag{"medical", "ann"}, []Tag{"hosp-dev"})
	err := EnforceFlow(src, dst)
	if err == nil {
		t.Fatal("expected denial")
	}
	if !errors.Is(err, ErrFlowDenied) {
		t.Fatal("error must match ErrFlowDenied")
	}
	var fe *FlowError
	if !errors.As(err, &fe) {
		t.Fatal("error must be a *FlowError")
	}
	msg := err.Error()
	for _, frag := range []string{"flow denied", "zeb", "hosp-dev"} {
		if !strings.Contains(msg, frag) {
			t.Errorf("error message %q missing %q", msg, frag)
		}
	}
	if err := EnforceFlow(dst, dst); err != nil {
		t.Fatalf("same-domain flow denied: %v", err)
	}
}

func TestMergeContexts(t *testing.T) {
	ann := MustContext([]Tag{"medical", "ann"}, []Tag{"hosp-dev", "consent"})
	zeb := MustContext([]Tag{"medical", "zeb"}, []Tag{"hosp-dev", "consent"})
	bob := MustContext([]Tag{"medical", "bob"}, []Tag{"consent"})

	merged := MergeContexts(ann, zeb, bob)
	wantS := MustLabel("ann", "bob", "medical", "zeb")
	wantI := MustLabel("consent")
	if !merged.Secrecy.Equal(wantS) {
		t.Errorf("merged secrecy = %v, want %v", merged.Secrecy, wantS)
	}
	if !merged.Integrity.Equal(wantI) {
		t.Errorf("merged integrity = %v, want %v", merged.Integrity, wantI)
	}
	// Every input must be able to flow into the merge.
	for _, c := range []SecurityContext{ann, zeb, bob} {
		if !c.CanFlowTo(merged) {
			t.Errorf("%v cannot flow into merged context %v", c, merged)
		}
	}
	if got := MergeContexts(); !got.Equal(SecurityContext{}) {
		t.Errorf("MergeContexts() = %v, want zero", got)
	}
}

func TestCheckFlowAllowedAllocatesNothing(t *testing.T) {
	a := MustContext([]Tag{"medical"}, []Tag{"consent"})
	b := MustContext([]Tag{"medical", "ann"}, nil)
	allocs := testing.AllocsPerRun(100, func() {
		if d := CheckFlow(a, b); !d.Allowed {
			t.Fatal("flow should be allowed")
		}
	})
	if allocs != 0 {
		t.Errorf("CheckFlow allocated %.1f times per allowed check, want 0", allocs)
	}
}

// Property: the flow relation is a preorder (reflexive and transitive).
// Confinement depends on transitivity: if A cannot reach C directly, it must
// not be able to reach it through B either.
func TestFlowPropertyPreorder(t *testing.T) {
	if err := quick.Check(func(a SecurityContext) bool { return a.CanFlowTo(a) }, nil); err != nil {
		t.Error("flow not reflexive:", err)
	}
	if err := quick.Check(func(a, b, c SecurityContext) bool {
		if a.CanFlowTo(b) && b.CanFlowTo(c) {
			return a.CanFlowTo(c)
		}
		return true
	}, nil); err != nil {
		t.Error("flow not transitive:", err)
	}
}

// Property: adding a secrecy tag to the source only ever removes flows;
// adding an integrity requirement to the destination likewise.
func TestFlowPropertyMonotonicity(t *testing.T) {
	if err := quick.Check(func(a, b SecurityContext) bool {
		restricted := a
		restricted.Secrecy = a.Secrecy.With("extra-secret")
		if restricted.CanFlowTo(b) && !a.CanFlowTo(b) {
			return false // restriction added a flow: impossible
		}
		return true
	}, nil); err != nil {
		t.Error("secrecy restriction not monotone:", err)
	}
	if err := quick.Check(func(a, b SecurityContext) bool {
		demanding := b
		demanding.Integrity = b.Integrity.With("extra-integrity")
		if a.CanFlowTo(demanding) && !a.CanFlowTo(b) {
			return false
		}
		return true
	}, nil); err != nil {
		t.Error("integrity demand not monotone:", err)
	}
}

// Property: CheckFlow's explanation is exact — the flow is allowed iff both
// missing sets are empty, and removing the reported missing tags from the
// source secrecy (or adding to destination) repairs that half of the rule.
func TestFlowPropertyDecisionExact(t *testing.T) {
	if err := quick.Check(func(a, b SecurityContext) bool {
		d := CheckFlow(a, b)
		if d.Allowed != (d.MissingSecrecy.IsEmpty() && d.MissingIntegrity.IsEmpty()) {
			return false
		}
		if d.Allowed {
			return a.CanFlowTo(b)
		}
		// Repair: grant the destination the missing secrecy clearance and
		// the source the missing integrity guarantees.
		repairedDst := b
		repairedDst.Secrecy = b.Secrecy.Union(d.MissingSecrecy)
		repairedSrc := a
		repairedSrc.Integrity = a.Integrity.Union(d.MissingIntegrity)
		fixed := SecurityContext{Secrecy: repairedSrc.Secrecy, Integrity: repairedSrc.Integrity}
		return fixed.CanFlowTo(repairedDst)
	}, nil); err != nil {
		t.Error("flow decision not exact:", err)
	}
}

// Property: MergeContexts is the least upper bound for the inputs — every
// input flows into it, and it flows into any other context all inputs flow
// into.
func TestMergePropertyLeastUpperBound(t *testing.T) {
	if err := quick.Check(func(a, b, other SecurityContext) bool {
		m := MergeContexts(a, b)
		if !a.CanFlowTo(m) || !b.CanFlowTo(m) {
			return false
		}
		if a.CanFlowTo(other) && b.CanFlowTo(other) {
			return m.CanFlowTo(other)
		}
		return true
	}, nil); err != nil {
		t.Error("merge not a least upper bound:", err)
	}
}

func TestContextString(t *testing.T) {
	c := MustContext([]Tag{"medical", "ann"}, []Tag{"hosp-dev"})
	want := "S={ann,medical} I={hosp-dev}"
	if got := c.String(); got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
	if got, want := (SecurityContext{}).String(), "S=∅ I=∅"; got != want {
		t.Fatalf("zero String() = %q, want %q", got, want)
	}
}

func TestCreationContextInheritsLabels(t *testing.T) {
	parent := MustContext([]Tag{"medical"}, []Tag{"consent"})
	child := CreationContext(parent)
	if !child.Equal(parent) {
		t.Fatalf("creation context %v, want %v", child, parent)
	}
}
