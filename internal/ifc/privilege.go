package ifc

import (
	"errors"
	"fmt"
	"strings"
)

// Privileges are the four privilege tag sets an active entity may hold in
// addition to its security context (Section 6, "Privileges for label
// change"): the rights to add or remove specific tags to or from its own
// secrecy and integrity labels.
//
//   - Removing a secrecy tag (using RemoveSecrecy) declassifies.
//   - Adding an integrity tag (using AddIntegrity) endorses.
//
// The zero value holds no privileges. Privileges are never inherited on
// creation; they are passed explicitly, typically encoded in attribute
// certificates (see package pki) or granted by a domain's tag authority.
type Privileges struct {
	AddSecrecy      Label // tags the holder may add to S (confine itself further)
	RemoveSecrecy   Label // tags the holder may remove from S (declassify)
	AddIntegrity    Label // tags the holder may add to I (endorse)
	RemoveIntegrity Label // tags the holder may remove from I
}

// NoPrivileges is the empty privilege set.
var NoPrivileges = Privileges{}

// ErrPrivilege is the sentinel wrapped by PrivilegeError.
var ErrPrivilege = errors.New("ifc: missing privilege")

// PrivilegeError reports a label transition that the holder's privileges do
// not authorise. It wraps ErrPrivilege.
type PrivilegeError struct {
	// Op names the offending operation: "add-secrecy", "remove-secrecy",
	// "add-integrity" or "remove-integrity".
	Op string
	// Tags are the tags the transition needed but the privileges lack.
	Tags Label
}

// Error implements error.
func (e *PrivilegeError) Error() string {
	return fmt.Sprintf("ifc: missing privilege %s for tags %s", e.Op, e.Tags)
}

// Unwrap lets errors.Is match ErrPrivilege.
func (e *PrivilegeError) Unwrap() error { return ErrPrivilege }

// IsEmpty reports whether the set confers no rights at all.
func (p Privileges) IsEmpty() bool {
	return p.AddSecrecy.IsEmpty() && p.RemoveSecrecy.IsEmpty() &&
		p.AddIntegrity.IsEmpty() && p.RemoveIntegrity.IsEmpty()
}

// Union returns the combined privileges of p and other.
func (p Privileges) Union(other Privileges) Privileges {
	return Privileges{
		AddSecrecy:      p.AddSecrecy.Union(other.AddSecrecy),
		RemoveSecrecy:   p.RemoveSecrecy.Union(other.RemoveSecrecy),
		AddIntegrity:    p.AddIntegrity.Union(other.AddIntegrity),
		RemoveIntegrity: p.RemoveIntegrity.Union(other.RemoveIntegrity),
	}
}

// Restrict returns the privileges of p limited to those also held by other,
// used when delegating: a delegator may pass on at most what it holds.
func (p Privileges) Restrict(other Privileges) Privileges {
	return Privileges{
		AddSecrecy:      p.AddSecrecy.Intersect(other.AddSecrecy),
		RemoveSecrecy:   p.RemoveSecrecy.Intersect(other.RemoveSecrecy),
		AddIntegrity:    p.AddIntegrity.Intersect(other.AddIntegrity),
		RemoveIntegrity: p.RemoveIntegrity.Intersect(other.RemoveIntegrity),
	}
}

// AuthoriseTransition checks whether these privileges permit an entity to
// move from one security context to another. Every tag added or removed on
// either label must be covered by the corresponding privilege set. It
// returns nil when the transition is authorised and a *PrivilegeError
// describing the first uncovered change otherwise.
func (p Privileges) AuthoriseTransition(from, to SecurityContext) error {
	if added := to.Secrecy.Diff(from.Secrecy); !added.Subset(p.AddSecrecy) {
		return &PrivilegeError{Op: "add-secrecy", Tags: added.Diff(p.AddSecrecy)}
	}
	if removed := from.Secrecy.Diff(to.Secrecy); !removed.Subset(p.RemoveSecrecy) {
		return &PrivilegeError{Op: "remove-secrecy", Tags: removed.Diff(p.RemoveSecrecy)}
	}
	if added := to.Integrity.Diff(from.Integrity); !added.Subset(p.AddIntegrity) {
		return &PrivilegeError{Op: "add-integrity", Tags: added.Diff(p.AddIntegrity)}
	}
	if removed := from.Integrity.Diff(to.Integrity); !removed.Subset(p.RemoveIntegrity) {
		return &PrivilegeError{Op: "remove-integrity", Tags: removed.Diff(p.RemoveIntegrity)}
	}
	// Obligation facets: narrowing is free (self-confinement), widening
	// sheds a legal constraint and therefore rides the declassification
	// privilege on the facet tags being allowed anew (see facet.go).
	if err := authoriseFacet("widen-jurisdiction", from.Jurisdiction, to.Jurisdiction, p.RemoveSecrecy); err != nil {
		return err
	}
	if err := authoriseFacet("widen-purpose", from.Purpose, to.Purpose, p.RemoveSecrecy); err != nil {
		return err
	}
	return nil
}

// CanDeclassify reports whether the holder may remove the tag from its
// secrecy label.
func (p Privileges) CanDeclassify(t Tag) bool { return p.RemoveSecrecy.Has(t) }

// CanEndorse reports whether the holder may add the tag to its integrity
// label.
func (p Privileges) CanEndorse(t Tag) bool { return p.AddIntegrity.Has(t) }

// String renders a compact human-readable form such as
// "S+{a} S-{b} I+{c} I-∅".
func (p Privileges) String() string {
	var b strings.Builder
	b.WriteString("S+")
	b.WriteString(p.AddSecrecy.String())
	b.WriteString(" S-")
	b.WriteString(p.RemoveSecrecy.String())
	b.WriteString(" I+")
	b.WriteString(p.AddIntegrity.String())
	b.WriteString(" I-")
	b.WriteString(p.RemoveIntegrity.String())
	return b.String()
}

// OwnerPrivileges returns the full privilege set over the given tags: the
// right to add and remove each of them on both labels. Tag creation confers
// ownership (Section 6, "Tag Ownership"), and ownership confers these
// rights, which the owner may then delegate piecemeal.
func OwnerPrivileges(tags ...Tag) Privileges {
	l := newLabelUnchecked(tags)
	return Privileges{AddSecrecy: l, RemoveSecrecy: l, AddIntegrity: l, RemoveIntegrity: l}
}
