package ifc

import (
	"strings"
	"sync"
)

// Label interning (hash-consing). Every distinct tag set is represented by
// exactly one shared, immutable labelRec, so that
//
//   - equality is a pointer (or key) comparison,
//   - the canonical string form is rendered once, ever, per distinct label
//     (audit hashing and error messages reuse it for free), and
//   - flow-check caches can key on compact uint64 label keys instead of
//     rescanning tag sets.
//
// Tags are likewise interned into dense uint32 IDs; a label carries the IDs
// of its tags aligned with its sorted tag slice, letting the set operations
// (Subset, Union, Intersect, Diff) detect per-position equality with an
// integer compare and fall back to a string compare only to decide order at
// genuine mismatches.
//
// The tables grow with the number of distinct tags and labels ever seen in
// the process. Tags name security concerns, which are few and long-lived in
// the paper's model, so the tables are effectively bounded in practice; the
// per-decision flow caches built on top of them are strictly bounded.

// labelRec is the shared representation of one distinct label. Immutable
// after construction.
type labelRec struct {
	tags []Tag    // sorted ascending, deduplicated
	ids  []uint32 // ids[i] is the intern ID of tags[i]
	key  uint64   // unique per distinct label; 0 is reserved for the empty label
	str  string   // canonical form "{a,b,c}", also the intern-table key
}

var interned = struct {
	mu     sync.RWMutex
	tagIDs map[Tag]uint32
	labels map[string]*labelRec
	// nextTag/nextLabel are the next IDs to assign; 0 values are reserved.
	nextTag   uint32
	nextLabel uint64
}{
	tagIDs: make(map[Tag]uint32),
	labels: make(map[string]*labelRec),
}

// canonicalString renders the canonical "{a,b,c}" form of a sorted tag set.
func canonicalString(tags []Tag) string {
	var b strings.Builder
	n := 1 + len(tags)
	for _, t := range tags {
		n += len(t)
	}
	b.Grow(n)
	b.WriteByte('{')
	for i, t := range tags {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(string(t))
	}
	b.WriteByte('}')
	return b.String()
}

// internLabel returns the shared record for the given sorted, deduplicated
// tag set, creating it on first sight. ids, when non-nil, must be aligned
// with tags (callers that merged two interned labels already know them);
// nil means "look them up". The caller must not retain or mutate tags after
// the call: on first sight the slice is adopted into the shared record.
func internLabel(tags []Tag, ids []uint32) *labelRec {
	if len(tags) == 0 {
		return nil
	}
	str := canonicalString(tags)
	interned.mu.RLock()
	rec := interned.labels[str]
	interned.mu.RUnlock()
	if rec != nil {
		return rec
	}
	interned.mu.Lock()
	defer interned.mu.Unlock()
	if rec := interned.labels[str]; rec != nil {
		return rec
	}
	if ids == nil {
		ids = make([]uint32, len(tags))
		for i, t := range tags {
			ids[i] = internTagLocked(t)
		}
	}
	interned.nextLabel++
	rec = &labelRec{tags: tags, ids: ids, key: interned.nextLabel, str: str}
	interned.labels[str] = rec
	return rec
}

// internTagLocked assigns (or returns) the intern ID of a tag. Callers must
// hold interned.mu for writing.
func internTagLocked(t Tag) uint32 {
	if id, ok := interned.tagIDs[t]; ok {
		return id
	}
	interned.nextTag++
	interned.tagIDs[t] = interned.nextTag
	return interned.nextTag
}
