package ifc

import (
	"errors"
	"fmt"
	"sync"
	"testing"
)

// TestInterningInvariants pins the hash-consing contract the caches key on:
// equal labels share one record, distinct labels never do.
func TestInterningInvariants(t *testing.T) {
	a := MustLabel("medical", "ann")
	b := MustLabel("ann", "medical", "ann") // different order, duplicate
	if a.rec == nil || a.rec != b.rec {
		t.Fatal("equal labels not hash-consed to one record")
	}
	if a.key() == 0 {
		t.Fatal("non-empty label has the reserved empty key")
	}
	c := MustLabel("medical")
	if c.rec == a.rec || c.key() == a.key() {
		t.Fatal("distinct labels share a record or key")
	}
	u := c.Union(MustLabel("ann"))
	if u.rec != a.rec {
		t.Fatal("derived label not canonicalised to the shared record")
	}
	if got := a.String(); got != "{ann,medical}" {
		t.Fatalf("canonical form = %q", got)
	}
	var zero Label
	if zero.key() != 0 || !zero.Equal(EmptyLabel) {
		t.Fatal("zero-value label is not the empty label")
	}
}

// TestCheckFlowCachedMatchesUncached cross-checks the cached CheckFlow
// against the direct rule evaluation over a spread of context pairs,
// exercising both cold and hot cache states.
func TestCheckFlowCachedMatchesUncached(t *testing.T) {
	var ctxs []SecurityContext
	for i := 0; i < 6; i++ {
		var s, in []Tag
		for j := 0; j <= i; j++ {
			s = append(s, Tag(fmt.Sprintf("s%d", j)))
		}
		for j := i; j < 4; j++ {
			in = append(in, Tag(fmt.Sprintf("i%d", j)))
		}
		ctxs = append(ctxs, MustContext(s, in))
	}
	ctxs = append(ctxs, SecurityContext{})
	for round := 0; round < 2; round++ { // second round hits the cache
		for _, src := range ctxs {
			for _, dst := range ctxs {
				got := CheckFlow(src, dst)
				want := checkFlowUncached(src, dst)
				if got.Allowed != want.Allowed ||
					!got.MissingSecrecy.Equal(want.MissingSecrecy) ||
					!got.MissingIntegrity.Equal(want.MissingIntegrity) {
					t.Fatalf("CheckFlow(%s, %s) = %+v, want %+v", src, dst, got, want)
				}
			}
		}
	}
}

// TestPrivilegeChangeInvalidatesCachedTransition is the privilege half of
// the cache-invalidation contract: a transition decision served from the
// entity's cache must flip as soon as privileges are granted, and flip
// back when they are revoked.
func TestPrivilegeChangeInvalidatesCachedTransition(t *testing.T) {
	secret := MustContext([]Tag{"medical"}, nil)
	public := SecurityContext{}
	e := NewEntity("declassifier", secret)

	// Prime the cache with a denial (twice, so the second answer is the
	// cached one).
	for i := 0; i < 2; i++ {
		if err := e.SetContext(public); !errors.Is(err, ErrPrivilege) {
			t.Fatalf("unprivileged declassification = %v, want ErrPrivilege", err)
		}
	}

	// Granting the declassification privilege must retire the cached deny.
	if err := e.GrantPrivileges(Privileges{
		RemoveSecrecy: MustLabel("medical"),
		AddSecrecy:    MustLabel("medical"),
	}); err != nil {
		t.Fatal(err)
	}
	if err := e.SetContext(public); err != nil {
		t.Fatalf("privileged declassification denied by stale cache: %v", err)
	}

	// And revoking must retire the cached allow.
	if err := e.SetContext(secret); err != nil {
		t.Fatal(err)
	}
	e.DropPrivileges(Privileges{RemoveSecrecy: MustLabel("medical")})
	if err := e.SetContext(public); !errors.Is(err, ErrPrivilege) {
		t.Fatalf("revoked declassification = %v, want ErrPrivilege (stale cached allow?)", err)
	}
}

// TestGateInstallInvalidatesCachedRoute is the gate half of the contract:
// a cached "no route" between two contexts must flip to routable the
// moment a bridging gate is installed, and back when it is removed.
func TestGateInstallInvalidatesCachedRoute(t *testing.T) {
	var reg GateRegistry
	med := MustContext([]Tag{"medical", "ann"}, nil)
	research := MustContext([]Tag{"research"}, nil)

	for i := 0; i < 2; i++ { // second call is served from the route cache
		if _, ok := reg.Route(med, research); ok {
			t.Fatal("declassifying route allowed without a gate")
		}
	}

	reg.Install(&Gate{Name: "anonymiser", Input: med, Output: research})
	via, ok := reg.Route(med, research)
	if !ok || via != "anonymiser" {
		t.Fatalf("Route after gate install = %q, %v; cached deny not invalidated", via, ok)
	}

	reg.Remove("anonymiser")
	if _, ok := reg.Route(med, research); ok {
		t.Fatal("route survived gate removal; cached allow not invalidated")
	}

	// Direct flows never need a gate and report via == "".
	if via, ok := reg.Route(research, research); !ok || via != "" {
		t.Fatalf("identity route = %q, %v", via, ok)
	}
}

// TestFlowCacheInvalidationUnderRace hammers cached checks while
// privileges are granted/revoked and gates installed/removed, so the
// generation machinery runs under the race detector. Decisions observed
// after the final mutation must reflect it.
func TestFlowCacheInvalidationUnderRace(t *testing.T) {
	med := MustContext([]Tag{"medical"}, nil)
	pub := SecurityContext{}
	var reg GateRegistry
	var wg sync.WaitGroup

	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			e := NewEntity(EntityID(fmt.Sprintf("worker%d", w)), med)
			for i := 0; i < 500; i++ {
				CheckFlow(med, pub)
				CheckFlow(pub, med)
				reg.Route(med, pub)
				switch i % 4 {
				case 0:
					_ = e.GrantPrivileges(Privileges{RemoveSecrecy: MustLabel("medical")})
				case 1:
					_ = e.SetContext(pub)
				case 2:
					e.DropPrivileges(Privileges{RemoveSecrecy: MustLabel("medical")})
				case 3:
					_ = e.AuthoriseTransition(med, pub)
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			reg.Install(&Gate{Name: "g", Input: med, Output: pub})
			reg.Remove("g")
		}
	}()
	wg.Wait()

	if d := CheckFlow(med, pub); d.Allowed {
		t.Fatal("secret -> public allowed")
	}
	if _, ok := reg.Route(med, pub); ok {
		t.Fatal("route allowed after final gate removal")
	}
	reg.Install(&Gate{Name: "g", Input: med, Output: pub})
	if via, ok := reg.Route(med, pub); !ok || via != "g" {
		t.Fatalf("route after reinstall = %q, %v", via, ok)
	}
}
