package ifc

import (
	"errors"
	"fmt"
)

// A SecurityContext is the pair of labels carried by every entity: S for
// secrecy and I for integrity. The zero value (both labels empty) is the
// public, unendorsed context.
type SecurityContext struct {
	Secrecy   Label
	Integrity Label
}

// NewContext builds a security context from secrecy and integrity tags.
func NewContext(secrecy, integrity []Tag) (SecurityContext, error) {
	s, err := NewLabel(secrecy...)
	if err != nil {
		return SecurityContext{}, fmt.Errorf("secrecy label: %w", err)
	}
	i, err := NewLabel(integrity...)
	if err != nil {
		return SecurityContext{}, fmt.Errorf("integrity label: %w", err)
	}
	return SecurityContext{Secrecy: s, Integrity: i}, nil
}

// MustContext is like NewContext but panics on invalid tags; for literals
// in tests and examples.
func MustContext(secrecy, integrity []Tag) SecurityContext {
	c, err := NewContext(secrecy, integrity)
	if err != nil {
		panic(err)
	}
	return c
}

// Equal reports whether both contexts carry identical labels, i.e. belong
// to the same security context domain.
func (c SecurityContext) Equal(other SecurityContext) bool {
	return c.Secrecy.Equal(other.Secrecy) && c.Integrity.Equal(other.Integrity)
}

// IsPublic reports whether the context is entirely unconstrained.
func (c SecurityContext) IsPublic() bool {
	return c.Secrecy.IsEmpty() && c.Integrity.IsEmpty()
}

// CanFlowTo applies the paper's flow rule:
//
//	A → B  ⇔  S(A) ⊆ S(B) ∧ I(B) ⊆ I(A)
//
// Data moves only towards equally or more constrained entities.
func (c SecurityContext) CanFlowTo(dst SecurityContext) bool {
	return c.Secrecy.Subset(dst.Secrecy) && dst.Integrity.Subset(c.Integrity)
}

// String renders the context in the paper's figure notation,
// e.g. "S={ann,medical} I={consent,hosp-dev}".
func (c SecurityContext) String() string {
	return "S=" + c.Secrecy.String() + " I=" + c.Integrity.String()
}

// FlowDecision explains the outcome of a flow check between two contexts.
// When the flow is denied it records exactly which tags failed which half
// of the rule, which is what audit records and error messages need.
type FlowDecision struct {
	Allowed bool
	// MissingSecrecy holds tags in S(src) absent from S(dst): the
	// destination is not cleared for these concerns.
	MissingSecrecy Label
	// MissingIntegrity holds tags in I(dst) absent from I(src): the source
	// does not carry the guarantees the destination demands.
	MissingIntegrity Label
}

// ErrFlowDenied is the sentinel wrapped by FlowError.
var ErrFlowDenied = errors.New("ifc: flow denied")

// FlowError is returned when a flow violates the IFC constraint. It wraps
// ErrFlowDenied, so callers may test errors.Is(err, ifc.ErrFlowDenied).
type FlowError struct {
	Src, Dst SecurityContext
	Decision FlowDecision
}

// Error implements error with an explanation mirroring Fig. 4 of the paper
// ("destination S has no zeb; source I has no hosp-dev").
func (e *FlowError) Error() string {
	msg := "ifc: flow denied: " + e.Src.String() + " -> " + e.Dst.String()
	if !e.Decision.MissingSecrecy.IsEmpty() {
		msg += "; destination S lacks " + e.Decision.MissingSecrecy.String()
	}
	if !e.Decision.MissingIntegrity.IsEmpty() {
		msg += "; source I lacks " + e.Decision.MissingIntegrity.String()
	}
	return msg
}

// Unwrap lets errors.Is match ErrFlowDenied.
func (e *FlowError) Unwrap() error { return ErrFlowDenied }

// CheckFlow evaluates the flow rule from src to dst and returns a full
// decision. Decisions are served from a bounded, generation-stamped cache
// keyed by the interned labels of both contexts (see flowcache.go); a hit
// costs a hash and one atomic load and never allocates.
func CheckFlow(src, dst SecurityContext) FlowDecision {
	k := contextKey(src, dst)
	slot := k.slot()
	gen := flowGen.Load()
	if e := slot.Load(); e != nil && e.key == k && e.gen == gen {
		return e.d
	}
	d := checkFlowUncached(src, dst)
	slot.Store(&flowEntry{key: k, gen: gen, d: d})
	return d
}

// checkFlowUncached evaluates the flow rule without consulting the cache.
func checkFlowUncached(src, dst SecurityContext) FlowDecision {
	if src.CanFlowTo(dst) {
		return FlowDecision{Allowed: true}
	}
	return FlowDecision{
		Allowed:          false,
		MissingSecrecy:   src.Secrecy.Diff(dst.Secrecy),
		MissingIntegrity: dst.Integrity.Diff(src.Integrity),
	}
}

// EnforceFlow returns nil when src may flow to dst and a *FlowError
// otherwise.
func EnforceFlow(src, dst SecurityContext) error {
	d := CheckFlow(src, dst)
	if d.Allowed {
		return nil
	}
	return &FlowError{Src: src, Dst: dst, Decision: d}
}

// CreationContext returns the context a newly created entity inherits from
// its creator: the creator's exact labels (Section 6, "Creation flows").
// Privileges are deliberately not part of the result; they must be passed
// explicitly.
func CreationContext(creator SecurityContext) SecurityContext {
	return creator // labels are immutable, so sharing is safe
}

// MergeContexts returns the least restrictive context into which data from
// all the given contexts may legally flow: the union of the secrecy labels
// and the intersection of the integrity labels. This is the context an
// aggregator (Fig. 6's statistics generator input side) must adopt.
func MergeContexts(contexts ...SecurityContext) SecurityContext {
	if len(contexts) == 0 {
		return SecurityContext{}
	}
	merged := contexts[0]
	for _, c := range contexts[1:] {
		merged.Secrecy = merged.Secrecy.Union(c.Secrecy)
		merged.Integrity = merged.Integrity.Intersect(c.Integrity)
	}
	return merged
}
