package ifc

import (
	"errors"
	"fmt"
)

// A SecurityContext is the set of labels carried by every entity: S for
// secrecy, I for integrity, plus the two obligation facets J (jurisdiction)
// and P (purpose) — see facet.go. The zero value (all labels empty) is the
// public, unendorsed, unconstrained context.
type SecurityContext struct {
	Secrecy   Label
	Integrity Label
	// Jurisdiction is the set of jurisdictions the data may reside in (an
	// entity declares the jurisdictions it occupies). Empty means
	// unconstrained; see facet.go for the flow semantics.
	Jurisdiction Label
	// Purpose is the set of purposes the data may be processed for (an
	// entity declares the purposes it processes for). Empty means
	// unconstrained.
	Purpose Label
}

// NewContext builds a security context from secrecy and integrity tags.
func NewContext(secrecy, integrity []Tag) (SecurityContext, error) {
	s, err := NewLabel(secrecy...)
	if err != nil {
		return SecurityContext{}, fmt.Errorf("secrecy label: %w", err)
	}
	i, err := NewLabel(integrity...)
	if err != nil {
		return SecurityContext{}, fmt.Errorf("integrity label: %w", err)
	}
	return SecurityContext{Secrecy: s, Integrity: i}, nil
}

// MustContext is like NewContext but panics on invalid tags; for literals
// in tests and examples.
func MustContext(secrecy, integrity []Tag) SecurityContext {
	c, err := NewContext(secrecy, integrity)
	if err != nil {
		panic(err)
	}
	return c
}

// Equal reports whether both contexts carry identical labels, i.e. belong
// to the same security context domain.
func (c SecurityContext) Equal(other SecurityContext) bool {
	return c.Secrecy.Equal(other.Secrecy) && c.Integrity.Equal(other.Integrity) &&
		c.Jurisdiction.Equal(other.Jurisdiction) && c.Purpose.Equal(other.Purpose)
}

// IsPublic reports whether the context is entirely unconstrained.
func (c SecurityContext) IsPublic() bool {
	return c.Secrecy.IsEmpty() && c.Integrity.IsEmpty() &&
		c.Jurisdiction.IsEmpty() && c.Purpose.IsEmpty()
}

// CanFlowTo applies the paper's flow rule, extended with the obligation
// facets:
//
//	A → B  ⇔  S(A) ⊆ S(B) ∧ I(B) ⊆ I(A)
//	        ∧ (J(A) = ∅ ∨ (J(B) ≠ ∅ ∧ J(B) ⊆ J(A)))
//	        ∧ (P(A) = ∅ ∨ (P(B) ≠ ∅ ∧ P(B) ⊆ P(A)))
//
// Data moves only towards equally or more constrained entities, and a
// residency or purpose constraint only towards entities declaring facets
// within the allowed sets.
func (c SecurityContext) CanFlowTo(dst SecurityContext) bool {
	return c.Secrecy.Subset(dst.Secrecy) && dst.Integrity.Subset(c.Integrity) &&
		facetOK(c.Jurisdiction, dst.Jurisdiction) && facetOK(c.Purpose, dst.Purpose)
}

// String renders the context in the paper's figure notation,
// e.g. "S={ann,medical} I={consent,hosp-dev}". The obligation facets are
// appended only when set, so facet-free contexts render exactly as before.
func (c SecurityContext) String() string {
	s := "S=" + c.Secrecy.String() + " I=" + c.Integrity.String()
	if !c.Jurisdiction.IsEmpty() {
		s += " J=" + c.Jurisdiction.String()
	}
	if !c.Purpose.IsEmpty() {
		s += " P=" + c.Purpose.String()
	}
	return s
}

// FlowDecision explains the outcome of a flow check between two contexts.
// When the flow is denied it records exactly which tags failed which half
// of the rule, which is what audit records and error messages need.
type FlowDecision struct {
	Allowed bool
	// MissingSecrecy holds tags in S(src) absent from S(dst): the
	// destination is not cleared for these concerns.
	MissingSecrecy Label
	// MissingIntegrity holds tags in I(dst) absent from I(src): the source
	// does not carry the guarantees the destination demands.
	MissingIntegrity Label
	// DisallowedJurisdiction holds the destination jurisdictions outside
	// the source's allowed residency set — or, when the destination
	// declares no jurisdiction at all, the unmet allowed set itself.
	DisallowedJurisdiction Label
	// DisallowedPurpose is the same for the purpose-limitation facet.
	DisallowedPurpose Label
}

// ErrFlowDenied is the sentinel wrapped by FlowError.
var ErrFlowDenied = errors.New("ifc: flow denied")

// FlowError is returned when a flow violates the IFC constraint. It wraps
// ErrFlowDenied, so callers may test errors.Is(err, ifc.ErrFlowDenied).
type FlowError struct {
	Src, Dst SecurityContext
	Decision FlowDecision
}

// Error implements error with an explanation mirroring Fig. 4 of the paper
// ("destination S has no zeb; source I has no hosp-dev").
func (e *FlowError) Error() string {
	msg := "ifc: flow denied: " + e.Src.String() + " -> " + e.Dst.String()
	if !e.Decision.MissingSecrecy.IsEmpty() {
		msg += "; destination S lacks " + e.Decision.MissingSecrecy.String()
	}
	if !e.Decision.MissingIntegrity.IsEmpty() {
		msg += "; source I lacks " + e.Decision.MissingIntegrity.String()
	}
	if !e.Decision.DisallowedJurisdiction.IsEmpty() {
		msg += "; residency restricted to " + e.Src.Jurisdiction.String() +
			", destination declares " + e.Dst.Jurisdiction.String()
	}
	if !e.Decision.DisallowedPurpose.IsEmpty() {
		msg += "; purpose limited to " + e.Src.Purpose.String() +
			", destination processes for " + e.Dst.Purpose.String()
	}
	return msg
}

// Unwrap lets errors.Is match ErrFlowDenied.
func (e *FlowError) Unwrap() error { return ErrFlowDenied }

// CheckFlow evaluates the flow rule from src to dst and returns a full
// decision. Decisions are served from a bounded, generation-stamped cache
// keyed by the interned labels of both contexts (see flowcache.go); a hit
// costs a hash and one atomic load and never allocates.
func CheckFlow(src, dst SecurityContext) FlowDecision {
	k := contextKey(src, dst)
	slot := k.slot()
	gen := flowGen.Load()
	if e := slot.Load(); e != nil && e.key == k && e.gen == gen {
		flowCacheHits.Add(1)
		return e.d
	}
	flowCacheMisses.Add(1)
	d := checkFlowUncached(src, dst)
	slot.Store(&flowEntry{key: k, gen: gen, d: d})
	return d
}

// checkFlowUncached evaluates the flow rule without consulting the cache.
func checkFlowUncached(src, dst SecurityContext) FlowDecision {
	if src.CanFlowTo(dst) {
		return FlowDecision{Allowed: true}
	}
	d := FlowDecision{
		Allowed:          false,
		MissingSecrecy:   src.Secrecy.Diff(dst.Secrecy),
		MissingIntegrity: dst.Integrity.Diff(src.Integrity),
	}
	if !facetOK(src.Jurisdiction, dst.Jurisdiction) {
		d.DisallowedJurisdiction = facetViolation(src.Jurisdiction, dst.Jurisdiction)
	}
	if !facetOK(src.Purpose, dst.Purpose) {
		d.DisallowedPurpose = facetViolation(src.Purpose, dst.Purpose)
	}
	return d
}

// EnforceFlow returns nil when src may flow to dst and a *FlowError
// otherwise.
func EnforceFlow(src, dst SecurityContext) error {
	d := CheckFlow(src, dst)
	if d.Allowed {
		return nil
	}
	return &FlowError{Src: src, Dst: dst, Decision: d}
}

// CreationContext returns the context a newly created entity inherits from
// its creator: the creator's exact labels (Section 6, "Creation flows").
// Privileges are deliberately not part of the result; they must be passed
// explicitly.
func CreationContext(creator SecurityContext) SecurityContext {
	return creator // labels are immutable, so sharing is safe
}

// MergeContexts returns the least restrictive context into which data from
// all the given contexts may legally flow: the union of the secrecy labels
// and the intersection of the integrity labels. This is the context an
// aggregator (Fig. 6's statistics generator input side) must adopt. The
// obligation facets merge by narrowing — constrained sets intersect, and
// disjoint constraints collapse to {~none} (allowed nowhere) — so merged
// data never silently sheds a residency or purpose obligation.
func MergeContexts(contexts ...SecurityContext) SecurityContext {
	if len(contexts) == 0 {
		return SecurityContext{}
	}
	merged := contexts[0]
	for _, c := range contexts[1:] {
		merged.Secrecy = merged.Secrecy.Union(c.Secrecy)
		merged.Integrity = merged.Integrity.Intersect(c.Integrity)
		merged.Jurisdiction = MergeFacet(merged.Jurisdiction, c.Jurisdiction)
		merged.Purpose = MergeFacet(merged.Purpose, c.Purpose)
	}
	return merged
}
