package ifc

// Obligation facets. Beyond secrecy and integrity, every security context
// carries two *data-management* facets derived from legal obligations
// (Singh et al. §3/§7: residency and purpose limitation):
//
//   - Jurisdiction is the set of jurisdictions the data may reside in
//     (for passive data and the components holding it) or that a platform
//     declares it resides in. Empty means unconstrained.
//   - Purpose is the set of purposes the data may be processed for, or
//     that a component declares it processes for. Empty means
//     unconstrained.
//
// Both facets are *allowed sets* that may only narrow as data flows: a
// destination must declare facets within the source's allowed sets, so a
// residency or purpose violation is denied by CheckFlow exactly like a
// secrecy violation — same cache, same audit treatment. Facet labels are
// interned Labels, so the extended flow rule still costs integer compares
// on the hot path.

// FacetNone is the sentinel jurisdiction/purpose tag meaning "allowed
// nowhere / for nothing": merging two contexts whose allowed sets are
// disjoint yields it, so over-merged data can no longer flow anywhere
// rather than silently losing its constraints.
const FacetNone Tag = "~none"

// facetNoneLabel is the interned {~none} label.
var facetNoneLabel = MustLabel(FacetNone)

// facetOK applies the facet half of the flow rule: data whose allowed set
// is src may flow to an entity declaring dst iff src is unconstrained, or
// dst declares a non-empty set within src. An entity that declares nothing
// cannot receive constrained data (fail closed: accepting it would drop
// the constraint).
func facetOK(src, dst Label) bool {
	if src.IsEmpty() {
		return true
	}
	return !dst.IsEmpty() && dst.Subset(src)
}

// facetViolation explains a facetOK failure: the destination facet tags
// outside the allowed set, or — when the destination declares nothing —
// the unmet allowed set itself.
func facetViolation(src, dst Label) Label {
	if dst.IsEmpty() {
		return src
	}
	return dst.Diff(src)
}

// MergeFacet combines two allowed-set facets — the single home of the
// facet-merge law, used by MergeContexts here and by the obligation
// compiler when attaching per-tag constraints: unconstrained adopts the
// other side's constraint; two constraints intersect; disjoint
// constraints collapse to {~none} — the merged data may not reside
// anywhere (or be used for anything), which is the only sound reading.
func MergeFacet(a, b Label) Label {
	if a.IsEmpty() {
		return b
	}
	if b.IsEmpty() {
		return a
	}
	m := a.Intersect(b)
	if m.IsEmpty() {
		return facetNoneLabel
	}
	return m
}

// WithJurisdiction returns a copy of the context with the jurisdiction
// facet replaced.
func (c SecurityContext) WithJurisdiction(l Label) SecurityContext {
	c.Jurisdiction = l
	return c
}

// WithPurpose returns a copy of the context with the purpose facet
// replaced.
func (c SecurityContext) WithPurpose(l Label) SecurityContext {
	c.Purpose = l
	return c
}

// authoriseFacet checks a from→to facet change under the transition
// discipline: narrowing (tightening the constraint) is always permitted —
// self-confinement is safe — while widening drops a legal constraint, a
// declassification-class operation. Each facet tag allowed anew (and, when
// clearing the facet entirely, every previously allowed tag) must be
// covered by the remove privilege, exactly as removing a secrecy tag
// would be.
func authoriseFacet(op string, from, to, remove Label) error {
	if from.IsEmpty() {
		return nil // unconstrained → anything is narrowing
	}
	if to.IsEmpty() {
		if !from.Subset(remove) {
			return &PrivilegeError{Op: op, Tags: from.Diff(remove)}
		}
		return nil
	}
	if widened := to.Diff(from); !widened.Subset(remove) {
		return &PrivilegeError{Op: op, Tags: widened.Diff(remove)}
	}
	return nil
}
